(* The paper's main worked example: blocking right-looking Cholesky
   factorization (Sections 4-6).

     dune exec examples/cholesky_blocking.exe                              *)

module Ast = Loopir.Ast
module Specs = Experiments.Specs
module Legality = Shackle.Legality
module Span = Shackle.Span

let () =
  let prog = Kernels.Builders.cholesky_right () in
  print_endline "--- right-looking Cholesky (Figure 1(ii)) ---";
  print_string (Ast.program_to_string prog);

  (* Section 6.1: there are six ways to pick one reference to A per
     statement; test them all. *)
  print_endline "\n--- the six single-factor shackles ---";
  List.iter
    (fun choices ->
      let spec =
        [ Shackle.Spec.factor
            (Shackle.Blocking.blocks_2d ~array:"A" ~size:64)
            choices ]
      in
      let label =
        String.concat "; "
          (List.map
             (fun (l, r) ->
               Printf.sprintf "%s:%s" l
                 (Format.asprintf "%a" Loopir.Fexpr.pp_ref r))
             choices)
      in
      Printf.printf "%-55s %s\n%!" label
        (if Legality.is_legal prog spec then "legal" else "ILLEGAL"))
    (Legality.enumerate_choices prog ~array:"A");

  (* The write shackle produces the partially blocked Figure 7 code. *)
  let write_spec = Specs.cholesky_write ~size:64 in
  print_endline "\n--- write shackle, generated code (Figure 7) ---";
  print_string (Ast.program_to_string (Codegen.Tighten.generate prog write_spec));

  (* Theorem 2 explains why it is only partial: S3's reads are not bounded
     by the block. *)
  let unconstrained = Span.unconstrained_refs prog write_spec in
  Printf.printf "\nunconstrained references under the write shackle: %s\n"
    (String.concat ", "
       (List.map
          (fun ((s : Ast.stmt), r) ->
            Printf.sprintf "%s:%s" s.Ast.label
              (Format.asprintf "%a" Loopir.Fexpr.pp_ref r))
          unconstrained));

  (* The product with the read shackle constrains everything and gives the
     fully blocked factorization (Section 6.1). *)
  let full = Specs.cholesky_fully_blocked ~size:64 in
  Printf.printf "fully constrained after the product: %b\n"
    (Span.fully_constrained prog full);
  (match Legality.check prog full with
   | Legality.Legal -> print_endline "product shackle is LEGAL"
   | Legality.Illegal _ | Legality.Unknown _ ->
     print_endline "product shackle is ILLEGAL");

  (* Verify and simulate. *)
  let n = 120 in
  let init = Kernels.Inits.for_kernel "cholesky_right" ~n in
  let blocked = Codegen.Tighten.generate prog full in
  Printf.printf "max |difference| at N=%d: %g\n" n
    (Exec.Verify.max_diff prog blocked ~params:[ ("N", n) ] ~init);
  let n = 240 in
  let init = Kernels.Inits.for_kernel "cholesky_right" ~n in
  let sim p quality =
    Machine.Model.simulate ~machine:Machine.Model.sp2_like ~quality p
      ~params:[ ("N", n) ] ~init
  in
  Format.printf "@.input    : %a@." Machine.Model.pp_result
    (sim prog Machine.Model.untuned);
  Format.printf "blocked  : %a@." Machine.Model.pp_result
    (sim blocked Machine.Model.untuned);
  Format.printf "blocked, DGEMM-quality inner loops: %a@."
    Machine.Model.pp_result
    (sim blocked Machine.Model.tuned)
