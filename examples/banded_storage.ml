(* Banded Cholesky (Section 7, Figure 15): the same shackle that blocks
   dense Cholesky is applied to the band-restricted point code, and the
   generated program runs unchanged over LAPACK-style band storage — the
   paper's "data transformation applied as a post-processing step".

     dune exec examples/banded_storage.exe                                 *)

module Ast = Loopir.Ast
module Model = Machine.Model

let () =
  let prog = Kernels.Builders.cholesky_banded () in
  print_endline "--- banded right-looking Cholesky (point code) ---";
  print_string (Ast.program_to_string prog);

  let spec = Experiments.Specs.cholesky_banded_write ~size:32 in
  (match Shackle.Legality.check prog spec with
   | Shackle.Legality.Legal -> print_endline "\nwrite shackle: LEGAL"
   | Shackle.Legality.Illegal _ | Shackle.Legality.Unknown _ ->
     print_endline "\nwrite shackle: ILLEGAL");
  let blocked = Codegen.Tighten.generate prog spec in

  let n = 300 in
  List.iter
    (fun bw ->
      let dense = Kernels.Inits.for_kernel "cholesky_banded" ~n in
      let init name idx =
        if abs (idx.(0) - idx.(1)) > bw then 0.0 else dense name idx
      in
      let params = [ ("N", n); ("BW", bw) ] in
      let layouts = [ ("A", Exec.Store.Banded bw) ] in
      (* correctness on band storage *)
      let diff = Exec.Verify.max_diff ~layouts prog blocked ~params ~init in
      let sim p quality =
        Model.simulate ~layouts ~machine:Model.sp2_like ~quality p ~params ~init
      in
      let compiler = sim blocked Model.untuned in
      let tuned = sim blocked Model.tuned in
      Format.printf
        "bw=%3d  diff=%g  compiler: %.1f MFlops  tuned(BLAS3-like): %.1f MFlops@."
        bw diff compiler.Model.r_mflops tuned.Model.r_mflops)
    [ 4; 16; 64; 128 ]
