(* Multi-level blocking (Section 6.3, Figure 10): a product of products
   blocks matmul for two cache levels at once.

     dune exec examples/multilevel.exe                                     *)

module Ast = Loopir.Ast
module Model = Machine.Model
module Specs = Experiments.Specs

let () =
  let prog = Kernels.Builders.matmul () in
  let two_level = Specs.matmul_two_level ~outer:96 ~inner:16 in
  (match Shackle.Legality.check prog two_level with
   | Shackle.Legality.Legal -> print_endline "two-level product: LEGAL"
   | Shackle.Legality.Illegal _ | Shackle.Legality.Unknown _ ->
     print_endline "two-level product: ILLEGAL");
  let blocked = Codegen.Tighten.generate prog two_level in
  print_endline "--- two-level blocked matmul (Figure 10 shape) ---";
  print_string (Ast.program_to_string blocked);

  let n = 250 in
  let init = Kernels.Inits.for_kernel "matmul" ~n in
  Printf.printf "\nmax |difference| at N=%d: %g\n" 70
    (Exec.Verify.max_diff prog blocked ~params:[ ("N", 70) ]
       ~init:(Kernels.Inits.for_kernel "matmul" ~n:70));

  (* On a machine with two cache levels, one-level blocking helps the level
     it targets; the product of products helps both. *)
  let one_level = Codegen.Tighten.generate prog (Specs.matmul_ca ~size:96) in
  let sim p =
    Model.simulate ~machine:Model.two_level ~quality:Model.untuned p
      ~params:[ ("N", n) ] ~init
  in
  List.iter
    (fun (label, p) ->
      Format.printf "%-18s %a@." label Model.pp_result (sim p))
    [ ("unblocked", prog); ("one-level 96", one_level);
      ("two-level 96/16", blocked) ]
