(* Quickstart: shackle matrix multiplication, check legality, generate
   blocked code, verify it, and measure its locality on the simulated
   machine.

     dune exec examples/quickstart.exe                                     *)

module Ast = Loopir.Ast
module E = Loopir.Expr
module Fexpr = Loopir.Fexpr
module Blocking = Shackle.Blocking
module Spec = Shackle.Spec

let () =
  (* 1. An input program: C(I,J) += A(I,K)*B(K,J), Figure 1(i). *)
  let prog = Kernels.Builders.matmul () in
  print_endline "--- input program ---";
  print_string (Ast.program_to_string prog);

  (* 2. A data shackle: cut C into 25x25 blocks (Figure 4) and shackle the
     reference C(I,J) of statement S1 to it; then take the Cartesian
     product with the same blocking of A via A(I,K) (Section 6). *)
  let spec =
    [ Spec.factor
        (Blocking.blocks_2d ~array:"C" ~size:25)
        [ ("S1", Fexpr.ref_ "C" [ E.var "I"; E.var "J" ]) ];
      Spec.factor
        (Blocking.blocks_2d ~array:"A" ~size:25)
        [ ("S1", Fexpr.ref_ "A" [ E.var "I"; E.var "K" ]) ] ]
  in

  (* 3. Theorem 1: every dependence must see its blocks in order. *)
  (match Shackle.Legality.check prog spec with
   | Shackle.Legality.Legal -> print_endline "\nshackle is LEGAL"
   | Shackle.Legality.Illegal _ | Shackle.Legality.Unknown _ ->
     print_endline "\nshackle is ILLEGAL");

  (* 4. Theorem 2: are all references bounded per block? *)
  Printf.printf "all references constrained: %b\n"
    (Shackle.Span.fully_constrained prog spec);

  (* 5. Generate blocked code (the paper's Figure 3). *)
  let blocked = Codegen.Tighten.generate prog spec in
  print_endline "\n--- generated blocked code ---";
  print_string (Ast.program_to_string blocked);

  (* 6. Verify: same answers as the original program. *)
  let n = 60 in
  let init = Kernels.Inits.for_kernel "matmul" ~n in
  let diff = Exec.Verify.max_diff prog blocked ~params:[ ("N", n) ] ~init in
  Printf.printf "\nmax |original - blocked| at N=%d: %g\n" n diff;

  (* 7. Simulate both on the SP-2 stand-in. *)
  let n = 150 in
  let init = Kernels.Inits.for_kernel "matmul" ~n in
  let sim p =
    Machine.Model.simulate ~machine:Machine.Model.sp2_like
      ~quality:Machine.Model.untuned p ~params:[ ("N", n) ] ~init
  in
  Format.printf "@.original: %a@." Machine.Model.pp_result (sim prog);
  Format.printf "blocked : %a@." Machine.Model.pp_result (sim blocked)
