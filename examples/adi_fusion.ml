(* Loop fusion + interchange as a degenerate data shackle (Section 7,
   Figure 14): blocking B into 1x1 blocks visited in storage order and
   shackling both statements to B(i-1,k) turns the two k-loops of the ADI
   kernel into one fused, interchanged loop nest with stride-1 accesses.

     dune exec examples/adi_fusion.exe                                     *)

module Ast = Loopir.Ast
module Model = Machine.Model

let () =
  let prog = Kernels.Builders.adi () in
  print_endline "--- ADI input code (Figure 14(i)) ---";
  print_string (Ast.program_to_string prog);

  let spec = Experiments.Specs.adi_fused () in
  (match Shackle.Legality.check prog spec with
   | Shackle.Legality.Legal -> print_endline "\n1x1 storage-order shackle: LEGAL"
   | Shackle.Legality.Illegal _ | Shackle.Legality.Unknown _ ->
     print_endline "\nshackle: ILLEGAL");
  let fused = Codegen.Tighten.generate prog spec in
  print_endline "--- transformed code (Figure 14(ii)) ---";
  print_string (Ast.program_to_string fused);

  let n = 400 in
  let init = Kernels.Inits.for_kernel "adi" ~n in
  Printf.printf "\nmax |difference| at N=%d: %g\n" n
    (Exec.Verify.max_diff prog fused ~params:[ ("N", n) ] ~init);

  let n = 1000 in
  let init = Kernels.Inits.for_kernel "adi" ~n in
  let sim p =
    Model.simulate ~machine:Model.sp2_like ~quality:Model.untuned p
      ~params:[ ("N", n) ] ~init
  in
  let before = sim prog and after = sim fused in
  Format.printf "@.input : %a@." Model.pp_result before;
  Format.printf "fused : %a@." Model.pp_result after;
  Printf.printf "speedup (cycles): %.2fx  (paper reports 8.9x at n=1000)\n"
    (before.Model.r_cycles /. after.Model.r_cycles)
