module Ast = Loopir.Ast
module Dom = Loopir.Domain
module Expr = Loopir.Expr
module Fexpr = Loopir.Fexpr
module A = Polyhedra.Affine
module C = Polyhedra.Constr
module S = Polyhedra.System
module B = Bigint
module Q = Ratio
module Spec = Shackle.Spec
module Blocking = Shackle.Blocking

type level = {
  lv_name : string;
  lv_line : int;
  lv_capacity : int;
  lv_lines : int;
}

let levels_of ~line_elems caps =
  let _, levels =
    List.fold_left
      (fun (cum, acc) (name, cap) ->
        let cum = cum + cap in
        ( cum,
          { lv_name = name;
            lv_line = line_elems;
            lv_capacity = cum;
            lv_lines = cum / line_elems }
          :: acc ))
      (0, []) caps
  in
  List.rev levels

(* Integer division helpers for possibly-negative numerators (divisor
   always positive). *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let cdiv a b = if a >= 0 then (a + b - 1) / b else -(-a / b)

(* Largest r >= 0 with r^q <= x. *)
let iroot x q =
  if q = 1 || B.compare x B.one <= 0 then (if B.sign x < 0 then B.zero else x)
  else begin
    let rec grow r = if B.compare (B.pow r q) x <= 0 then grow (B.mul r B.two) else r in
    let hi = grow B.two in
    (* invariant: lo^q <= x < hi^q *)
    let rec bs lo hi =
      if B.compare (B.sub hi lo) B.one <= 0 then lo
      else
        let mid = B.fdiv (B.add lo hi) B.two in
        if B.compare (B.pow mid q) x <= 0 then bs mid hi else bs lo mid
    in
    bs B.one hi
  end

module Lp = struct
  let dot a x =
    let acc = ref Q.zero in
    Array.iteri (fun i ai -> acc := Q.add !acc (Q.mul ai x.(i))) a;
    !acc

  (* Square rational system [m . x = b] by Gauss-Jordan; None if singular. *)
  let solve_square m b =
    let n = Array.length b in
    let a = Array.map Array.copy m and b = Array.copy b in
    let singular = ref false in
    (try
       for col = 0 to n - 1 do
         let piv = ref (-1) in
         for r = col to n - 1 do
           if !piv < 0 && not (Q.is_zero a.(r).(col)) then piv := r
         done;
         if !piv < 0 then begin
           singular := true;
           raise Exit
         end;
         if !piv <> col then begin
           let t = a.(col) in
           a.(col) <- a.(!piv);
           a.(!piv) <- t;
           let t = b.(col) in
           b.(col) <- b.(!piv);
           b.(!piv) <- t
         end;
         let inv = Q.inv a.(col).(col) in
         for r = 0 to n - 1 do
           if r <> col && not (Q.is_zero a.(r).(col)) then begin
             let f = Q.mul a.(r).(col) inv in
             for c = col to n - 1 do
               a.(r).(c) <- Q.sub a.(r).(c) (Q.mul f a.(col).(c))
             done;
             b.(r) <- Q.sub b.(r) (Q.mul f b.(col))
           end
         done
       done
     with Exit -> ());
    if !singular then None
    else Some (Array.init n (fun i -> Q.div b.(i) a.(i).(i)))

  let optimize ~maximize ~dim ~objective rows =
    let rows = Array.of_list rows in
    let n = Array.length rows in
    let feasible x =
      Array.for_all (fun (a, b) -> Q.compare (dot a x) b <= 0) rows
    in
    if dim = 0 then
      if feasible [||] then Some (Q.zero, [||]) else None
    else begin
      let best = ref None in
      let consider x =
        if feasible x then begin
          let v = dot objective x in
          match !best with
          | Some (bv, _) when (if maximize then Q.compare v bv <= 0
                               else Q.compare v bv >= 0) ->
            ()
          | _ -> best := Some (v, x)
        end
      in
      (* every dim-subset of rows, taken as an equality system *)
      let chosen = Array.make dim 0 in
      let rec pick k lo =
        if k = dim then begin
          let m = Array.map (fun i -> fst rows.(i)) chosen in
          let b = Array.map (fun i -> snd rows.(i)) chosen in
          match solve_square m b with
          | None -> ()
          | Some x -> consider x
        end
        else
          for i = lo to n - 1 do
            chosen.(k) <- i;
            pick (k + 1) (i + 1)
          done
      in
      if n >= dim then pick 0 0;
      !best
    end
end

(* ------------------------------------------------------------------ *)
(* Integer point counting over param-substituted constraint rows.      *)
(* ------------------------------------------------------------------ *)

(* One constraint over the loop variables only: [rcs . x + rc0 {>=,=} 0]. *)
type row = { req : bool; rcs : int array; rc0 : int }

(* Convert an affine form over (params ++ loops) into loop coefficients
   and a constant with the parameters substituted. *)
let subst_affine ~pc ~d ~pvals aff =
  let cs = Array.init d (fun i -> B.to_int_exn (A.coeff aff (pc + i))) in
  let c0 = ref (A.const_of aff) in
  for p = 0 to pc - 1 do
    c0 := B.add !c0 (B.mul_int (A.coeff aff p) pvals.(p))
  done;
  (cs, B.to_int_exn !c0)

let row_of_constr ~pc ~d ~pvals (c : C.t) =
  let cs, c0 = subst_affine ~pc ~d ~pvals c.C.aff in
  { req = (c.C.kind = C.Eq); rcs = cs; rc0 = c0 }

(* Exact count of integer points satisfying [rows], plus per-variable
   min/max over the satisfying set.  Variables are scanned outermost
   first; every constraint becomes decidable at its deepest variable
   (loop bounds and guards only reference enclosing variables, and
   window bands bind whatever their deepest subscript variable is). *)
let wstats ~d rows =
  let buckets = Array.make (max d 1) [] in
  let infeasible = ref false in
  List.iter
    (fun r ->
      let lvl = ref (-1) in
      for i = 0 to d - 1 do
        if r.rcs.(i) <> 0 then lvl := i
      done;
      if !lvl < 0 then begin
        if (r.req && r.rc0 <> 0) || ((not r.req) && r.rc0 < 0) then
          infeasible := true
      end
      else buckets.(!lvl) <- r :: buckets.(!lvl))
    rows;
  if !infeasible then None
  else if d = 0 then Some (1, [||], [||])
  else begin
    let env = Array.make d 0 in
    let mins = Array.make d max_int and maxs = Array.make d min_int in
    let count = ref 0 in
    let range i =
      let lo = ref min_int and hi = ref max_int in
      List.iter
        (fun r ->
          let k = r.rcs.(i) in
          let rest = ref r.rc0 in
          for j = 0 to i - 1 do
            if r.rcs.(j) <> 0 then rest := !rest + (r.rcs.(j) * env.(j))
          done;
          if r.req then
            (* k * x + rest = 0 *)
            if -(!rest) mod k <> 0 then begin
              lo := 1;
              hi := 0
            end
            else begin
              let v = -(!rest) / k in
              if v > !lo then lo := v;
              if v < !hi then hi := v
            end
          else if k > 0 then begin
            let b = cdiv (- !rest) k in
            if b > !lo then lo := b
          end
          else begin
            let b = fdiv !rest (-k) in
            if b < !hi then hi := b
          end)
        buckets.(i);
      if !lo = min_int || !hi = max_int then
        failwith "Bounds: unbounded loop variable";
      (!lo, !hi)
    in
    let rec go i =
      let lo, hi = range i in
      if lo <= hi then
        if i = d - 1 then begin
          count := !count + (hi - lo + 1);
          if lo < mins.(i) then mins.(i) <- lo;
          if hi > maxs.(i) then maxs.(i) <- hi;
          for j = 0 to d - 2 do
            if env.(j) < mins.(j) then mins.(j) <- env.(j);
            if env.(j) > maxs.(j) then maxs.(j) <- env.(j)
          done
        end
        else
          for v = lo to hi do
            env.(i) <- v;
            go (i + 1)
          done
    in
    go 0;
    if !count = 0 then None else Some (!count, mins, maxs)
  end

(* ------------------------------------------------------------------ *)
(* Per-statement analysis.                                             *)
(* ------------------------------------------------------------------ *)

type ref_info = {
  ri_array : string;
  ri_fiber : int list option;
      (* loop variables outside the support, when the support submatrix
         has full column rank (access injective on support coords);
         None when rank-deficient — such a ref gives no distinct-data
         bound *)
}

(* Membership band of one blocking plane through one statement's chosen
   reference: value [wcs . x + wc0] falls in [o + (z-1)w, o + zw - 1]
   when the point lies in block z of that plane. *)
type plane_band = { wcs : int array; wc0 : int; wb_width : int; wb_offset : int }

type stmt_data = {
  sd_label : string;
  sd_d : int;
  sd_rows : row list;
  sd_refs : ref_info list;
  sd_count : int;
  sd_extents : int array;
  sd_sigma : Q.t;
  (* HBL cover: total exponent on available data, plus (extent, exponent)
     factors for loops covered directly; None when no cover was found *)
  sd_cover : (Q.t * (int * Q.t) list) option;
  (* per spec factor, the plane bands of this statement's chosen ref *)
  sd_bands : plane_band list list;
}

type stmt_info = {
  si_label : string;
  si_depth : int;
  si_iterations : int;
  si_sigma : Q.t;
}

type t = {
  an_stmts : stmt_data list;
  an_distinct : int;
  (* per block-coordinate prefix: distinct-data bound of each nonempty
     window (possibly truncated — a partial sum stays a lower bound) *)
  an_windows : int list list;
}

let q_one = Q.one

(* Fractional-cover LP for one statement: supports of the injective refs
   plus singleton "loop extent" covers.  Returns (sigma, cover). *)
let solve_cover ~d supports =
  if d = 0 then (Q.zero, Some (Q.zero, []))
  else begin
    let nj = List.length supports in
    (* primal: max sum x_i  s.t.  sum_{i in S_j} x_i <= 1, 0 <= x_i <= 1 *)
    let rows =
      List.map
        (fun s ->
          (Array.init d (fun i -> if List.mem i s then q_one else Q.zero), q_one))
        supports
      @ List.init d (fun i ->
            (Array.init d (fun j -> if j = i then q_one else Q.zero), q_one))
      @ List.init d (fun i ->
            (Array.init d (fun j -> if j = i then Q.neg q_one else Q.zero), Q.zero))
    in
    let sigma =
      match
        Lp.optimize ~maximize:true ~dim:d ~objective:(Array.make d q_one) rows
      with
      | Some (v, _) -> v
      | None -> Q.of_int d
    in
    (* dual: min sum y + sum z  s.t.
       forall i: sum_{j : i in S_j} y_j + z_i >= 1, y >= 0, z >= 0 *)
    let du = nj + d in
    let cover_rows =
      List.init d (fun i ->
          let a = Array.make du Q.zero in
          List.iteri (fun j s -> if List.mem i s then a.(j) <- Q.neg q_one) supports;
          a.(nj + i) <- Q.neg q_one;
          (a, Q.neg q_one))
      @ List.init du (fun k ->
            (Array.init du (fun j -> if j = k then Q.neg q_one else Q.zero), Q.zero))
    in
    let cover =
      match
        Lp.optimize ~maximize:false ~dim:du ~objective:(Array.make du q_one)
          cover_rows
      with
      | None -> None
      | Some (_, u) ->
        let sum_y = ref Q.zero in
        for j = 0 to nj - 1 do
          sum_y := Q.add !sum_y u.(j)
        done;
        Some (!sum_y, List.init d (fun i -> u.(nj + i)))
    in
    (sigma, cover)
  end

let dedup_refs refs =
  List.fold_left
    (fun acc r -> if List.exists (Fexpr.ref_equal r) acc then acc else acc @ [ r ])
    [] refs

exception Drop_spec

let analyze ?spec ~params prog =
  let pval name =
    match List.assoc_opt name params with
    | Some v -> v
    | None -> failwith ("Bounds.analyze: missing parameter " ^ name)
  in
  let extents_of array =
    match List.find_opt (fun a -> String.equal a.Ast.a_name array) prog.Ast.arrays with
    | None -> failwith ("Bounds.analyze: unknown array " ^ array)
    | Some a -> List.map (Expr.eval pval) a.Ast.extents
  in
  let factors = match spec with Some s -> s | None -> [] in
  let dropped = ref false in
  let stmts =
    List.map
      (fun (ctx, (s : Ast.stmt)) ->
        let sp = Dom.space_of prog ctx in
        let pc = sp.Dom.param_count in
        let d = Dom.depth sp in
        let pvals = Array.init pc (fun i -> pval sp.Dom.names.(i)) in
        let rows =
          List.map (row_of_constr ~pc ~d ~pvals)
            (S.constraints (Dom.domain_of prog ctx))
        in
        let count, extents =
          match wstats ~d rows with
          | None -> (0, Array.make d 0)
          | Some (n, mins, maxs) ->
            (n, Array.init d (fun i -> maxs.(i) - mins.(i) + 1))
        in
        let refs = dedup_refs (s.Ast.lhs :: Fexpr.reads s.Ast.rhs) in
        let ref_infos =
          List.map
            (fun (r : Fexpr.ref_) ->
              let affs = Dom.access sp r in
              let supp =
                List.filter
                  (fun i ->
                    List.exists (fun a -> not (B.is_zero (A.coeff a (pc + i)))) affs)
                  (List.init d (fun i -> i))
              in
              let sub =
                Array.of_list
                  (List.map
                     (fun a -> Array.of_list (List.map (fun i -> A.coeff a (pc + i)) supp))
                     affs)
              in
              let injective = Linalg.Mat.rank sub = List.length supp in
              { ri_array = r.Fexpr.array;
                ri_fiber =
                  (if injective then
                     Some (List.filter (fun i -> not (List.mem i supp)) (List.init d (fun i -> i)))
                   else None) })
            refs
        in
        let supports =
          (* covering LP uses only injective refs with nonempty support *)
          List.filter_map
            (fun (r : Fexpr.ref_) ->
              let affs = Dom.access sp r in
              let supp =
                List.filter
                  (fun i ->
                    List.exists (fun a -> not (B.is_zero (A.coeff a (pc + i)))) affs)
                  (List.init d (fun i -> i))
              in
              let sub =
                Array.of_list
                  (List.map
                     (fun a -> Array.of_list (List.map (fun i -> A.coeff a (pc + i)) supp))
                     affs)
              in
              if supp <> [] && Linalg.Mat.rank sub = List.length supp then Some supp
              else None)
            refs
        in
        let sigma, raw_cover = solve_cover ~d supports in
        let cover =
          match raw_cover with
          | None -> None
          | Some (sum_y, zs) ->
            Some
              ( sum_y,
                List.mapi (fun i z -> (extents.(i), z)) zs
                |> List.filter (fun (_, z) -> Q.sign z > 0) )
        in
        let bands =
          try
            List.map
              (fun (f : Spec.factor) ->
                let r =
                  try Spec.choice_for f s with Not_found -> raise Drop_spec
                in
                let point = Dom.access sp r in
                if List.length point <> f.Spec.blocking.Blocking.rank then
                  raise Drop_spec;
                List.map
                  (fun (p : Blocking.plane) ->
                    let aff =
                      List.fold_left2
                        (fun acc n a -> A.add acc (A.scale_int n a))
                        (A.zero (pc + d))
                        p.Blocking.normal point
                    in
                    let cs, c0 = subst_affine ~pc ~d ~pvals aff in
                    { wcs = cs;
                      wc0 = c0;
                      wb_width = p.Blocking.width;
                      wb_offset = p.Blocking.offset })
                  f.Spec.blocking.Blocking.planes)
              factors
          with Drop_spec ->
            dropped := true;
            []
        in
        { sd_label = s.Ast.label;
          sd_d = d;
          sd_rows = rows;
          sd_refs = ref_infos;
          sd_count = count;
          sd_extents = extents;
          sd_sigma = sigma;
          sd_cover = cover;
          sd_bands = bands })
      (Ast.statements prog)
  in
  let live = List.filter (fun sd -> sd.sd_count > 0) stmts in
  (* distinct data touched by the whole trace, per array the best single
     statement's bound, summed over arrays *)
  let dw_of stats_of =
    let per_array = Hashtbl.create 8 in
    List.iter
      (fun sd ->
        match stats_of sd with
        | None -> ()
        | Some (cnt, mins, maxs) ->
          List.iter
            (fun ri ->
              match ri.ri_fiber with
              | None -> ()
              | Some fib ->
                let fiber =
                  List.fold_left
                    (fun acc v -> acc * (maxs.(v) - mins.(v) + 1))
                    1 fib
                in
                let dlb = cdiv cnt fiber in
                let prev =
                  Option.value (Hashtbl.find_opt per_array ri.ri_array) ~default:0
                in
                if dlb > prev then Hashtbl.replace per_array ri.ri_array dlb)
            sd.sd_refs)
      live;
    Hashtbl.fold (fun _ v acc -> acc + v) per_array 0
  in
  let an_distinct = dw_of (fun sd -> wstats ~d:sd.sd_d sd.sd_rows) in
  let an_windows =
    match spec with
    | None -> []
    | Some _ when !dropped -> []
    | Some s ->
      (* coordinate ranges per factor plane, shared by all statements *)
      let ranges =
        List.map
          (fun (f : Spec.factor) ->
            let extents =
              List.map Expr.int (extents_of f.Spec.blocking.Blocking.array)
            in
            List.map
              (fun (lo, hi) -> (Expr.eval pval lo, Expr.eval pval hi))
              (Blocking.coord_ranges f.Spec.blocking ~extents))
          s
      in
      let nf = List.length s in
      let prefix_windows f =
        (* flat list of (lo, hi) over the first f factors' planes *)
        let flat = List.concat (List.filteri (fun i _ -> i < f) ranges) in
        let budget = ref 4096 in
        let dws = ref [] in
        let rec go zs = function
          | [] ->
            if !budget > 0 then begin
              decr budget;
              let zrev = Array.of_list (List.rev zs) in
              let dw =
                dw_of (fun sd ->
                    (* rows of this statement's window: two band rows per
                       plane of the first f factors *)
                    let rows = ref sd.sd_rows in
                    let k = ref 0 in
                    List.iteri
                      (fun fi bands ->
                        if fi < f then
                          List.iter
                            (fun pb ->
                              let z = zrev.(!k) in
                              incr k;
                              let w = pb.wb_width and o = pb.wb_offset in
                              (* o + (z-1)w <= band <= o + zw - 1 *)
                              rows :=
                                { req = false;
                                  rcs = pb.wcs;
                                  rc0 = pb.wc0 - (o + ((z - 1) * w)) }
                                :: { req = false;
                                     rcs = Array.map (fun c -> -c) pb.wcs;
                                     rc0 = o + (z * w) - 1 - pb.wc0 }
                                :: !rows)
                            bands)
                      sd.sd_bands;
                    wstats ~d:sd.sd_d !rows)
              in
              if dw > 0 then dws := dw :: !dws
            end
          | (lo, hi) :: tl ->
            for z = lo to hi do
              if !budget > 0 then go (z :: zs) tl
            done
        in
        go [] flat;
        !dws
      in
      List.filter_map
        (fun f ->
          match prefix_windows f with [] -> None | dws -> Some dws)
        (List.init nf (fun i -> i + 1))
  in
  { an_stmts = live; an_distinct; an_windows }

let stmts t =
  List.map
    (fun sd ->
      { si_label = sd.sd_label;
        si_depth = sd.sd_d;
        si_iterations = sd.sd_count;
        si_sigma = sd.sd_sigma })
    t.an_stmts

let distinct t = t.an_distinct

(* HBL phase bound for one statement at one level: phases of [lv_lines]
   misses see at most [avail = capacity + lines*line] elements, so at
   most [avail^sum_y * prod extents^z_i] instances execute per phase. *)
let hbl_stmt sd lv =
  match sd.sd_cover with
  | None -> 0
  | Some (sum_y, zs) ->
    if sd.sd_count = 0 || sd.sd_d = 0 then 0
    else begin
      let avail = lv.lv_capacity + (lv.lv_lines * lv.lv_line) in
      let q =
        List.fold_left
          (fun acc (_, z) -> B.to_int_exn (B.lcm (B.of_int acc) (Q.den z)))
          (B.to_int_exn (Q.den sum_y))
          zs
      in
      let ipow_q r =
        (* numerator of r * q, exact by construction *)
        B.to_int_exn (B.divexact (B.mul_int (Q.num r) q) (Q.den r))
      in
      let cap =
        List.fold_left
          (fun acc (ext, z) -> B.mul acc (B.pow (B.of_int (max ext 1)) (ipow_q z)))
          (B.pow (B.of_int avail) (ipow_q sum_y))
          zs
      in
      if B.is_zero cap then 0
      else begin
        let phases =
          iroot (B.fdiv (B.pow (B.of_int sd.sd_count) q) cap) q
        in
        match B.to_int_opt phases with
        | None -> max_int / 2
        | Some p -> max 0 (lv.lv_lines * (p - 1))
      end
    end

let compulsory t lv = cdiv t.an_distinct lv.lv_line

let windowed t lv =
  List.fold_left
    (fun best dws ->
      let sum =
        List.fold_left
          (fun acc dw -> acc + max 0 (cdiv dw lv.lv_line - lv.lv_lines))
          0 dws
      in
      max best sum)
    0 t.an_windows

let hbl t lv =
  List.fold_left (fun best sd -> max best (hbl_stmt sd lv)) 0 t.an_stmts

let misses t lv = max (compulsory t lv) (max (windowed t lv) (hbl t lv))

type level_bound = {
  lb_level : string;
  lb_compulsory : int;
  lb_windowed : int;
  lb_hbl : int;
  lb_misses : int;
}

let level_bounds t levels =
  List.map
    (fun lv ->
      let c = compulsory t lv and w = windowed t lv and h = hbl t lv in
      { lb_level = lv.lv_name;
        lb_compulsory = c;
        lb_windowed = w;
        lb_hbl = h;
        lb_misses = max c (max w h) })
    levels
