(** Analytic communication lower bounds for perfectly-shackled programs.

    This module derives, entirely in exact rational arithmetic, a lower
    bound on the number of cache misses any execution order of a loop
    nest's statement instances must incur at each level of a memory
    hierarchy.  Three independent arguments are combined (the bound is
    their maximum, each being individually sound):

    - {b Compulsory}: every distinct memory line touched by the trace is
      cold-missed at least once at {e every} level of the hierarchy,
      because caches start empty and the first access to a line cannot
      be forwarded (forwarding requires a back-to-back repeat of the
      same address, which implies the line was already touched).  The
      count of distinct elements is itself lower-bounded per array as
      [ceil (instances / fiber)] where [fiber] bounds the number of loop
      instances that can share one element — the product of the window
      ranges of the loops outside the reference's support, valid
      whenever the access matrix restricted to the support has full
      column rank (the map is then injective on the support
      coordinates).

    - {b Windowed} (only when a {!Shackle.Spec.t} is supplied): the
      generated blocked code iterates block coordinates outermost, so
      execution is partitioned in {e time} into one contiguous segment
      per block-coordinate prefix value.  In each segment the cache can
      initially hold at most [lv_lines] lines, so the segment incurs at
      least [lines_touched - lv_lines] misses.  Summing over segments
      (any subset of them — a truncated sum is still a lower bound)
      gives the per-candidate bound that separates block sizes: small
      blocks touch little per segment but pay the [- lv_lines] slack
      many times, large blocks overflow the cache inside one segment.

    - {b HBL phase bound} (Hong–Kung partitioning with a
      Hölder/Brascamp–Lieb iteration cap, after Dinh–Demmel): cut the
      miss sequence of level [l] into phases of [lv_lines] misses each.
      During a phase at most [lv_capacity + lv_lines * lv_line = 2M]
      elements are available, so by the discrete HBL inequality at most
      [prod_j (2M)^(y_j) * prod_i (R_i)^(z_i)] statement instances can
      execute, for any fractional cover [(y, z)] of the loop directions
      by reference supports ([y]) and plain loop extents ([z]).  The
      cover is found by exact vertex enumeration of the covering LP;
      only references whose support submatrix has full column rank
      participate (their footprint equals the coordinate projection).
      This argument is valid for {e any} execution order, so it applies
      to every candidate unchanged.

    All three arguments count misses of the {e probe stream without
    forwarding}; per-level miss counts are forwarding-invariant (a
    forwarded access would have been an L1 hit to the most-recently-used
    line, leaving both counters and replacement state untouched), so the
    bounds transfer to forwarding-enabled simulations as well.

    Nothing here depends on the concrete machine model: callers convert
    a cache hierarchy into {!level} records (see {!levels_of}) in
    whatever element units they use. *)

type level = {
  lv_name : string;  (** label used in reports, e.g. ["L1"] *)
  lv_line : int;  (** elements per cache line *)
  lv_capacity : int;
      (** elements resident in levels 1..this one combined (cumulative):
          a line absent from every level up to and including this one
          must miss here *)
  lv_lines : int;  (** [lv_capacity / lv_line] — cumulative line count *)
}

val levels_of : line_elems:int -> (string * int) list -> level list
(** [levels_of ~line_elems caps] builds the cumulative {!level} list
    from per-level [(name, capacity_in_elements)] pairs ordered from
    the level closest to the processor outward.  All levels share one
    line size, as both reference machines do. *)

(** Exact rational linear programming by vertex enumeration — small
    systems only (a handful of variables), as arise from per-statement
    covering LPs. *)
module Lp : sig
  val optimize :
    maximize:bool ->
    dim:int ->
    objective:Ratio.t array ->
    (Ratio.t array * Ratio.t) list ->
    (Ratio.t * Ratio.t array) option
  (** [optimize ~maximize ~dim ~objective rows] optimizes
      [objective . x] over the polyhedron [{ x | a . x <= b }] for each
      [(a, b)] in [rows].  Every [dim]-subset of rows is solved as an
      equality system; feasible solutions are compared exactly.  Returns
      [None] when no subset yields a feasible vertex (infeasible, or a
      non-pointed feasible region).  The optimum of a bounded LP over a
      pointed region is always attained at such a vertex. *)
end

type stmt_info = {
  si_label : string;  (** statement label *)
  si_depth : int;  (** number of enclosing loops *)
  si_iterations : int;  (** exact instance count at the given parameters *)
  si_sigma : Ratio.t;
      (** optimal HBL exponent: instances executable with [D] data
          available grow as [D^sigma] (matmul: 3/2) *)
}

type t
(** The communication analysis of one (program, optional spec,
    parameter binding) triple. *)

val analyze :
  ?spec:Shackle.Spec.t ->
  params:(string * int) list ->
  Loopir.Ast.program ->
  t
(** Computes all order-independent quantities once: per-statement
    iteration counts, supports, covers and extents, the whole-trace
    distinct-data bound, and — when [spec] is given — the per-window
    distinct-data bounds for every block-coordinate prefix of the spec.
    Raises {!Loopir.Domain.Not_affine} on non-affine programs and
    [Failure] if [params] misses a program parameter. *)

val stmts : t -> stmt_info list
val distinct : t -> int
(** Lower bound on the number of distinct elements the trace touches. *)

val misses : t -> level -> int
(** [misses t lv] — the headline result: no execution of the analyzed
    program (reordered by the analyzed spec or not) incurs fewer misses
    at [lv].  Maximum of the three arguments above; at least 1 whenever
    the program touches memory at all. *)

type level_bound = {
  lb_level : string;
  lb_compulsory : int;  (** distinct-lines cold-miss bound *)
  lb_windowed : int;  (** best block-coordinate-prefix partition bound *)
  lb_hbl : int;  (** best per-statement phase bound *)
  lb_misses : int;  (** max of the three — equals {!misses} *)
}

val level_bounds : t -> level list -> level_bound list
(** Per-level decomposition of {!misses}, for reports. *)
