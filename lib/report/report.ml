(* The schema registry: one version reader, one migrator, one validator
   for every JSON artifact the tools write.  Writers live next to the
   types they serialize (tune, fuzz driver, daemon, bench); this module
   owns only the contract, so `--check-json` in shacklec, bench and fuzz
   is one implementation and old artifacts keep validating after a
   schema bump. *)

module Json = Observe.Json
module Metrics = Observe.Metrics

let tune_report = "tune-report/4"
let fuzz_report = "fuzz-report/8"
let fuzz_checkpoint = "fuzz-checkpoint/1"
let shackled_stats = "shackled-stats/2"
let shackled_cache_report = "shackled-cache-report/1"
let bounds_report = "bounds-report/1"
let server_load_report = "server-load-report/1"
let bench = "bench/1"

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Field helpers                                                       *)
(* ------------------------------------------------------------------ *)

let str_field k j =
  match Json.member k j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string field %S" k)

let int_field k j =
  match Json.member k j with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing or non-int field %S" k)

let bool_field k j =
  match Json.member k j with
  | Some (Json.Bool _) -> Ok ()
  | _ -> Error (Printf.sprintf "missing or non-bool field %S" k)

let int_or_null_field k j =
  match Json.member k j with
  | Some (Json.Int _ | Json.Null) -> Ok ()
  | _ -> Error (Printf.sprintf "field %S must be an int or null" k)

let list_field k j =
  match Json.member k j with
  | Some (Json.List l) -> Ok l
  | _ -> Error (Printf.sprintf "missing or non-list field %S" k)

let obj_field k j =
  match Json.member k j with
  | Some (Json.Obj o) -> Ok o
  | _ -> Error (Printf.sprintf "missing or non-object field %S" k)

let all f l = List.fold_left (fun acc x -> let* () = acc in f x) (Ok ()) l

let all_int_fields ks j = all (fun k -> Result.map ignore (int_field k j)) ks

(* ------------------------------------------------------------------ *)
(* Version                                                             *)
(* ------------------------------------------------------------------ *)

let version j =
  match Json.member "schema" j with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error "\"schema\" must be a string"
  | None -> (
    match Json.member "schema_version" j with
    | Some (Json.Int v) -> Ok (Printf.sprintf "bench/%d" v)
    | Some _ -> Error "\"schema_version\" must be an integer"
    | None -> Error "no \"schema\" or \"schema_version\" field — not a report")

(* ------------------------------------------------------------------ *)
(* Migration                                                           *)
(* ------------------------------------------------------------------ *)

(* Replace key [k] (or append it when absent) in an object. *)
let set_field k v = function
  | Json.Obj fields ->
    if List.mem_assoc k fields then
      Json.Obj (List.map (fun (k', v') -> if String.equal k' k then (k', v) else (k', v')) fields)
    else Json.Obj (fields @ [ (k, v) ])
  | j -> j

let default_field k v = function
  | Json.Obj fields when not (List.mem_assoc k fields) ->
    Json.Obj (fields @ [ (k, v) ])
  | j -> j

let map_field k f = function
  | Json.Obj fields ->
    Json.Obj
      (List.map (fun (k', v) -> if String.equal k' k then (k', f v) else (k', v)) fields)
  | j -> j

let current =
  [ tune_report; fuzz_report; fuzz_checkpoint; shackled_stats;
    shackled_cache_report; bounds_report; server_load_report; bench ]

let migrate j =
  let* tag = version j in
  if List.mem tag current then Ok j
  else
    match tag with
    | "tune-report/3" ->
      (* /4 added bound pruning: the options flag, the counter, and the
         per-candidate lower-bound/headroom columns.  A /3 report simply
         never pruned by bound and never computed a bound. *)
      Ok
        (j
        |> set_field "schema" (Json.Str tune_report)
        |> default_field "prune_bounds" (Json.Bool false)
        |> map_field "counts" (default_field "pruned_by_bound" (Json.Int 0))
        |> map_field "table" (function
             | Json.List rows ->
               Json.List
                 (List.map
                    (fun row ->
                      row
                      |> default_field "lower_bounds" (Json.List [])
                      |> default_field "headroom" (Json.List []))
                    rows)
             | v -> v))
    | "fuzz-report/6" ->
      (* /7 added the bound oracle layer and its counter; /8 the chaos
         layer.  A /6 report checked neither. *)
      Ok
        (j
        |> set_field "schema" (Json.Str fuzz_report)
        |> default_field "bound_checked" (Json.Int 0)
        |> default_field "chaos_checked" (Json.Int 0))
    | "fuzz-report/7" ->
      (* /8 added the chaos layer (dribbled frames, mid-frame abandons)
         under the wire storm and its counter. *)
      Ok
        (j
        |> set_field "schema" (Json.Str fuzz_report)
        |> default_field "chaos_checked" (Json.Int 0))
    | "shackled-stats/1" ->
      (* /2 added the per-error-code breakdown, the overload counters and
         per-op p99.9.  A /1 daemon never shed or evicted; its best p99.9
         estimate is its max. *)
      let add_p999 = function
        | Json.Obj fields when not (List.mem_assoc "p999_ms" fields) ->
          let v =
            match List.assoc_opt "max_ms" fields with
            | Some v -> v
            | None -> Json.Float 0.0
          in
          Json.Obj (fields @ [ ("p999_ms", v) ])
        | v -> v
      in
      Ok
        (j
        |> set_field "schema" (Json.Str shackled_stats)
        |> map_field "server" (fun server ->
               server
               |> default_field "error_codes" (Json.Obj [])
               |> default_field "shed" (Json.Int 0)
               |> default_field "evicted" (Json.Int 0)
               |> map_field "ops" (function
                    | Json.Obj ops ->
                      Json.Obj (List.map (fun (k, v) -> (k, add_p999 v)) ops)
                    | v -> v)))
    | _ -> Error (Printf.sprintf "unknown report schema %S" tag)

(* ------------------------------------------------------------------ *)
(* Per-family validators (current versions only; migrate first)        *)
(* ------------------------------------------------------------------ *)

let check_tune j =
  let* _ = str_field "kernel" j in
  let* _ = str_field "mode" j in
  let* counts =
    match Json.member "counts" j with
    | Some (Json.Obj _ as c) -> Ok c
    | _ -> Error "missing or non-object field \"counts\""
  in
  let* () =
    all_int_fields
      [ "enumerated"; "pruned"; "illegal"; "unknown"; "legal"; "variants";
        "pruned_by_bound" ]
      counts
    |> Result.map_error (fun e -> "counts: " ^ e)
  in
  let* () =
    match Json.member "solver" j with
    | Some s -> Result.map ignore (Metrics.solver_of_json s)
    | None -> Error "missing field \"solver\""
  in
  let* _ = int_field "solves_per_sweep" j in
  let* table = list_field "table" j in
  let* () =
    all
      (fun row ->
        let* () =
          match (Json.member "spec" row, Json.member "cycles" row) with
          | Some (Json.Str _), Some (Json.Float _ | Json.Int _) -> Ok ()
          | _ -> Error "table row: missing \"spec\" or \"cycles\""
        in
        match (Json.member "lower_bounds" row, Json.member "headroom" row) with
        | Some (Json.List _), Some (Json.List _) -> Ok ()
        | _ -> Error "table row: missing \"lower_bounds\" or \"headroom\"")
      table
  in
  let* () =
    match Json.member "best" j with
    | Some (Json.Str _ | Json.Null) -> Ok ()
    | _ -> Error "missing field \"best\""
  in
  let* failures = list_field "failures" j in
  let* () =
    all
      (fun row ->
        match (Json.member "spec" row, Json.member "reason" row) with
        | Some (Json.Str _), Some (Json.Str _) -> Ok ()
        | _ -> Error "failure row: missing \"spec\" or \"reason\"")
      failures
  in
  let* metrics = list_field "metrics" j in
  all (fun m -> Result.map ignore (Metrics.sim_of_json m)) metrics

(* Mirrors Oracle.kind_string; duplicated here so report depends only on
   observe (the fuzz library itself links report's callers, not report). *)
let fuzz_kinds =
  [ "roundtrip"; "legality"; "codegen"; "replay"; "tune"; "par"; "wire";
    "stage"; "bound"; "crash"; "timeout" ]

let check_fuzz_failure row =
  let* kind = str_field "kind" row in
  let* () =
    if List.mem kind fuzz_kinds then Ok ()
    else Error (Printf.sprintf "failure row: unknown kind %S" kind)
  in
  let* _ = int_field "seed" row in
  let* _ = str_field "detail" row in
  let* _ = str_field "repro" row in
  bool_field "injected" row

let check_fuzz j =
  let* () =
    all_int_fields
      [ "first_seed"; "seeds"; "specs"; "legal_specs"; "verified"; "skipped";
        "tune_checked"; "par_checked"; "wire_checked"; "stage_checked";
        "bound_checked"; "chaos_checked"; "gave_up" ]
      j
  in
  let* () = bool_field "quick" j in
  let* () = int_or_null_field "timeout_ms" j in
  let* () = int_or_null_field "fuel" j in
  let* _ = str_field "inject" j in
  let* failures = list_field "failures" j in
  all check_fuzz_failure failures

let check_fuzz_checkpoint j =
  let* () = all_int_fields [ "first_seed"; "seeds" ] j in
  let* () =
    all (fun k -> bool_field k j)
      [ "quick"; "tune"; "par"; "wire"; "stage"; "bound" ]
  in
  let* () = int_or_null_field "timeout_ms" j in
  let* () = int_or_null_field "fuel" j in
  Result.map ignore (str_field "inject" j)

let num_field k j =
  match Json.member k j with
  | Some (Json.Float _ | Json.Int _) -> Ok ()
  | _ -> Error (Printf.sprintf "missing or non-numeric field %S" k)

let check_int_obj what = function
  | Json.Obj fields ->
    all
      (fun (k, v) ->
        match v with
        | Json.Int _ -> Ok ()
        | _ -> Error (Printf.sprintf "%s: non-int count for %S" what k))
      fields
  | _ -> Error (Printf.sprintf "%s must be an object" what)

(* One latency-series object: count plus the percentile ladder. *)
let check_series what s =
  let* () =
    Result.map_error (fun e -> what ^ ": " ^ e) (Result.map ignore (int_field "count" s))
  in
  all
    (fun k -> Result.map_error (fun e -> what ^ ": " ^ e) (num_field k s))
    [ "p50_ms"; "p99_ms"; "p999_ms"; "max_ms"; "mean_ms" ]

let check_ops what j =
  match Json.member "ops" j with
  | Some (Json.Obj ops) ->
    all (fun (op, s) -> check_series (what ^ " op " ^ op) s) ops
  | _ -> Error (Printf.sprintf "%s: missing or non-object field \"ops\"" what)

let check_server_obj server =
  let* () =
    all_int_fields
      [ "requests"; "errors"; "batch_collapses"; "connections"; "shed";
        "evicted" ]
      server
    |> Result.map_error (fun e -> "server: " ^ e)
  in
  let* () =
    match Json.member "error_codes" server with
    | Some ec -> check_int_obj "server.error_codes" ec
    | None -> Error "server: missing field \"error_codes\""
  in
  check_ops "server" server

let check_shackled_stats j =
  let* server = obj_field "server" j in
  let* () = check_server_obj (Json.Obj server) in
  let* () =
    match Json.member "solver" j with
    | Some s -> Result.map ignore (Metrics.solver_of_json s)
    | None -> Error "missing field \"solver\""
  in
  let* _ = int_field "solves" j in
  match Json.member "diskcache" j with
  | Some Json.Null -> Ok ()
  | Some dc -> Result.map ignore (Metrics.diskcache_of_json dc)
  | None -> Error "missing field \"diskcache\""

let check_server_load j =
  let* () =
    all_int_fields
      [ "seed"; "clients"; "requests"; "completed"; "retries"; "shed";
        "deadline_exceeded" ]
      j
  in
  let* () =
    match Json.member "errors" j with
    | Some e -> check_int_obj "errors" e
    | None -> Error "missing field \"errors\""
  in
  let* chaos = obj_field "chaos" j in
  let* () =
    all_int_fields [ "stalls"; "partial_writes"; "disconnects" ] (Json.Obj chaos)
    |> Result.map_error (fun e -> "chaos: " ^ e)
  in
  let* () = check_ops "load" j in
  let check_phase k =
    match Json.member k j with
    | Some Json.Null -> Ok ()
    | Some phase ->
      let* () =
        num_field "duration_ms" phase
        |> Result.map_error (fun e -> k ^ ": " ^ e)
      in
      all_int_fields [ "disk_hits"; "solves" ] phase
      |> Result.map_error (fun e -> k ^ ": " ^ e)
    | None -> Error (Printf.sprintf "missing field %S (object or null)" k)
  in
  let* () = check_phase "cold" in
  check_phase "warm"

let check_shackled_cache j =
  let* _ = str_field "file" j in
  all_int_fields [ "entries"; "bytes"; "dropped_bytes" ] j

let check_bounds j =
  let* _ = str_field "kernel" j in
  let* params = obj_field "params" j in
  let* () =
    all
      (fun (k, v) ->
        match v with
        | Json.Int _ -> Ok ()
        | _ -> Error (Printf.sprintf "params: non-int value for %S" k))
      params
  in
  let* stmts = list_field "stmts" j in
  let* () =
    all
      (fun s ->
        let* _ = str_field "label" s in
        let* _ = str_field "sigma" s in
        all_int_fields [ "depth"; "iterations" ] s)
      stmts
  in
  let* _ = int_field "distinct" j in
  let* machines = obj_field "machines" j in
  all
    (fun (m, levels) ->
      match levels with
      | Json.Obj lvs ->
        all
          (fun (_, lv) ->
            all_int_fields [ "misses"; "compulsory"; "windowed"; "phase" ] lv
            |> Result.map_error (fun e -> Printf.sprintf "machine %S: %s" m e))
          lvs
      | _ -> Error (Printf.sprintf "machine %S: levels must be an object" m))
    machines

let check_bench j =
  let* figs =
    match Json.member "figures" j with
    | Some (Json.List (_ :: _ as figs)) -> Ok figs
    | _ -> Error "figures must be a non-empty list"
  in
  all
    (fun fig ->
      match (Json.member "id" fig, Json.member "rows" fig) with
      | Some (Json.Str id), Some (Json.List rows) ->
        if rows = [] then Error ("figure " ^ id ^ " has no rows")
        else
          let* ms =
            list_field "metrics" fig
            |> Result.map_error (fun _ -> "figure " ^ id ^ " lacks a metrics list")
          in
          all
            (fun m ->
              Metrics.sim_of_json m
              |> Result.map ignore
              |> Result.map_error (fun e -> "figure " ^ id ^ ": bad metrics: " ^ e))
            ms
      | _ -> Error "figure lacks a string id or a rows list")
    figs

(* ------------------------------------------------------------------ *)
(* The shared entry point                                              *)
(* ------------------------------------------------------------------ *)

let check j =
  let* j = migrate j in
  let* tag = version j in
  let* () =
    if String.equal tag tune_report then check_tune j
    else if String.equal tag fuzz_report then check_fuzz j
    else if String.equal tag fuzz_checkpoint then check_fuzz_checkpoint j
    else if String.equal tag shackled_stats then check_shackled_stats j
    else if String.equal tag shackled_cache_report then check_shackled_cache j
    else if String.equal tag bounds_report then check_bounds j
    else if String.equal tag server_load_report then check_server_load j
    else if String.equal tag bench then check_bench j
    else Error (Printf.sprintf "unknown report schema %S" tag)
  in
  Ok tag
