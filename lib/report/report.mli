(** One home for every JSON report schema the tools emit.

    Every artifact this repo writes — tune reports, fuzz campaign reports
    and checkpoint metas, daemon stats, disk-cache reports, bounds
    reports, bench trajectories — carries a schema tag, and every
    [--check-json] flag used to carry its own hand-rolled validator next
    to the writer.  This module is the single registry: one {!version}
    reader, one {!migrate} that upgrades known older versions on read,
    and one {!check} that validates the (migrated) document against the
    current schema.  The writers stay where they are, next to the types
    they serialize; what is shared is the contract.

    Tagging convention: every report is an object with either a
    ["schema"] string field ([<family>/<version>], e.g. [tune-report/4])
    or — for bench trajectories, which predate the convention — an
    integer ["schema_version"], surfaced here as the synthetic tag
    [bench/1]. *)

val tune_report : string
(** ["tune-report/4"] — [shacklec tune --json]. *)

val fuzz_report : string
(** ["fuzz-report/8"] — [fuzz --json]. *)

val fuzz_checkpoint : string
(** ["fuzz-checkpoint/1"] — first line of a [fuzz --checkpoint] file. *)

val shackled_stats : string
(** ["shackled-stats/2"] — the daemon's stats RPC / [shackled report --socket]. *)

val shackled_cache_report : string
(** ["shackled-cache-report/1"] — [shackled report --cache-dir]. *)

val bounds_report : string
(** ["bounds-report/1"] — [shacklec bounds --json]. *)

val server_load_report : string
(** ["server-load-report/1"] — [shackled replay --json]: per-op
    client-observed latency percentiles (p50/p99/p99.9), shed / retry /
    deadline-exceeded / chaos counts, and a cold-vs-warm phase
    comparison. *)

val bench : string
(** ["bench/1"] — bench trajectory envelopes ([BENCH_*.json]). *)

val version : Observe.Json.t -> (string, string) result
(** The document's schema tag, as written: the ["schema"] string, or
    [bench/N] synthesized from an integer ["schema_version"].  [Error]
    when neither field is present — the document is not a report. *)

val migrate : Observe.Json.t -> (Observe.Json.t, string) result
(** Upgrade a report written by an older schema version to the current
    one, defaulting the fields the old writer did not know about
    ([tune-report/3] gains [prune_bounds:false], zero
    [counts.pruned_by_bound] and empty per-row [lower_bounds]/[headroom];
    [fuzz-report/6] and [/7] gain [bound_checked:0] / [chaos_checked:0];
    [shackled-stats/1] gains empty [server.error_codes], zero
    [server.shed] / [server.evicted], and per-op [p999_ms] defaulted to
    the op's [max_ms]).  Identity on documents already at the current
    version; [Error] on unknown tags. *)

val check : Observe.Json.t -> (string, string) result
(** Migrate-on-read, then structurally validate against the current
    schema for the document's family.  Returns the canonical (current)
    tag on success, so callers can both report what they validated and
    gate on the family they expect. *)
