(** Dependence analysis over the loop IR.

    A dependence between statement instances [(S1, i)] (executed first) and
    [(S2, j)] is represented by a polyhedral system per lexicographic
    precedence level ("disjunct"), over the pair space
    [params ++ S1's loop variables ++ S2's loop variables].
    Systems are filtered with the Omega test, so every disjunct kept is
    genuinely realizable.  Theorem 1 of the paper then reduces legality of a
    shackle to: no disjunct stays satisfiable once "blocks visited in the
    wrong order" is added. *)

type kind = Flow | Anti | Output

type pair_space = {
  names : string array;
  param_count : int;
  src_depth : int;
  dst_depth : int;
}

type t = {
  kind : kind;
  src : Loopir.Ast.stmt;
  src_ctx : Loopir.Ast.context;
  dst : Loopir.Ast.stmt;
  dst_ctx : Loopir.Ast.context;
  src_ref : Loopir.Fexpr.ref_;
  dst_ref : Loopir.Fexpr.ref_;
  space : pair_space;
  disjuncts : Polyhedra.System.t list;
}

val src_var : pair_space -> int -> int
(** Pair-space index of the [k]-th (outermost-first) source loop variable. *)

val dst_var : pair_space -> int -> int

val analyze :
  ?params:(string * int) list ->
  ?ctx:Polyhedra.Omega.Ctx.t ->
  Loopir.Ast.program ->
  t list
(** All flow, anti and output dependences of the program.  [params] fixes
    symbolic parameters to concrete values (e.g. [("N", 100)]); unfixed
    parameters are left symbolic, constrained only to be >= 1.  [ctx] is
    the solver context charged for the disjunct-realizability queries
    (default: the process-global [Omega.Ctx.default]). *)

val kind_string : kind -> string
val pp : Format.formatter -> t -> unit
