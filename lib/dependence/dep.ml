module Ast = Loopir.Ast
module Fexpr = Loopir.Fexpr
module Domain = Loopir.Domain
module A = Polyhedra.Affine
module C = Polyhedra.Constr
module S = Polyhedra.System
module Omega = Polyhedra.Omega

type kind = Flow | Anti | Output

type pair_space = {
  names : string array;
  param_count : int;
  src_depth : int;
  dst_depth : int;
}

type t = {
  kind : kind;
  src : Ast.stmt;
  src_ctx : Ast.context;
  dst : Ast.stmt;
  dst_ctx : Ast.context;
  src_ref : Fexpr.ref_;
  dst_ref : Fexpr.ref_;
  space : pair_space;
  disjuncts : S.t list;
}

let src_var sp k = sp.param_count + k
let dst_var sp k = sp.param_count + sp.src_depth + k

let make_pair_space (prog : Ast.program) c1 c2 =
  let sv = Ast.loop_vars c1 and dv = Ast.loop_vars c2 in
  let names =
    Array.of_list
      (prog.params
      @ List.map (fun v -> "s." ^ v) sv
      @ List.map (fun v -> "d." ^ v) dv)
  in
  { names;
    param_count = List.length prog.params;
    src_depth = List.length sv;
    dst_depth = List.length dv }

(* Renaming permutation from a statement space (params ++ loops) into the
   pair space. *)
let perm_into sp ~dst stmt_space_size =
  Array.init stmt_space_size (fun i ->
      if i < sp.param_count then i
      else if dst then dst_var sp (i - sp.param_count)
      else src_var sp (i - sp.param_count))

(* Longest common prefix of enclosing loops and the textual order of the two
   statements at their divergence point. *)
let common_loops c1 c2 =
  let entries, (i1, i2) = Ast.common_prefix c1 c2 in
  let c =
    List.length
      (List.filter (function Ast.Eloop _ -> true | Ast.Eif _ -> false) entries)
  in
  (c, i1 < i2)

let dedup_refs refs =
  List.fold_left
    (fun acc r ->
      if List.exists (fun r' -> Fexpr.ref_equal r r') acc then acc
      else r :: acc)
    [] refs
  |> List.rev

let analyze ?(params = []) ?ctx (prog : Ast.program) =
  let stmts = Ast.statements prog in
  let param_positive sp =
    List.init sp.param_count (fun i ->
        let v = A.var (Array.length sp.names) i in
        match List.assoc_opt sp.names.(i) params with
        | Some value -> C.eq_of v (A.const (Array.length sp.names) (Bigint.of_int value))
        | None -> C.ge_of v (A.of_int (Array.length sp.names) 1))
  in
  let deps = ref [] in
  List.iter
    (fun (c1, (s1 : Ast.stmt)) ->
      List.iter
        (fun (c2, (s2 : Ast.stmt)) ->
          let sp = make_pair_space prog c1 c2 in
          let dim = Array.length sp.names in
          let sp1 = Domain.space_of prog c1 and sp2 = Domain.space_of prog c2 in
          let perm1 = perm_into sp ~dst:false (Array.length sp1.Domain.names) in
          let perm2 = perm_into sp ~dst:true (Array.length sp2.Domain.names) in
          let base =
            S.universe sp.names
            |> (fun t -> S.add_list t (param_positive sp))
            |> S.rename_into (Domain.domain_of prog c1) perm1
            |> S.rename_into (Domain.domain_of prog c2) perm2
          in
          let c, textual_before = common_loops c1 c2 in
          let precedence_disjuncts =
            let eqs k =
              List.init k (fun j ->
                  C.eq_of (A.var dim (src_var sp j)) (A.var dim (dst_var sp j)))
            in
            let strict k =
              C.lt_of (A.var dim (src_var sp k)) (A.var dim (dst_var sp k))
            in
            List.init c (fun k -> eqs k @ [ strict k ])
            @ (if textual_before then [ eqs c ] else [])
          in
          let refs1 =
            (s1.lhs, true)
            :: List.map (fun r -> (r, false)) (dedup_refs (Fexpr.reads s1.rhs))
          in
          let refs2 =
            (s2.lhs, true)
            :: List.map (fun r -> (r, false)) (dedup_refs (Fexpr.reads s2.rhs))
          in
          List.iter
            (fun (r1, w1) ->
              List.iter
                (fun ((r2 : Fexpr.ref_), w2) ->
                  if String.equal r1.Fexpr.array r2.array && (w1 || w2) then begin
                    let kind =
                      if w1 && w2 then Output else if w1 then Flow else Anti
                    in
                    let acc1 =
                      List.map (fun a -> A.rename a perm1 dim)
                        (Domain.access sp1 r1)
                    in
                    let acc2 =
                      List.map (fun a -> A.rename a perm2 dim)
                        (Domain.access sp2 r2)
                    in
                    let same_cell = List.map2 C.eq_of acc1 acc2 in
                    let with_conflict = S.add_list base same_cell in
                    let disjuncts =
                      List.filter_map
                        (fun prec ->
                          let sys = S.add_list with_conflict prec in
                          if Omega.satisfiable ?ctx sys then Some sys else None)
                        precedence_disjuncts
                    in
                    if disjuncts <> [] then
                      deps :=
                        { kind; src = s1; src_ctx = c1; dst = s2; dst_ctx = c2;
                          src_ref = r1; dst_ref = r2; space = sp; disjuncts }
                        :: !deps
                  end)
                refs2)
            refs1)
        stmts)
    stmts;
  List.rev !deps

let kind_string = function Flow -> "flow" | Anti -> "anti" | Output -> "output"

let pp fmt d =
  Format.fprintf fmt "%s: %s[%a] -> %s[%a] (%d case%s)" (kind_string d.kind)
    d.src.Ast.label Fexpr.pp_ref d.src_ref d.dst.Ast.label Fexpr.pp_ref
    d.dst_ref (List.length d.disjuncts)
    (if List.length d.disjuncts = 1 then "" else "s")
