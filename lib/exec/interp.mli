(** A compiled interpreter for the loop IR.

    Programs are compiled to closures over an integer frame (one slot per
    variable name), so running blocked code on realistic sizes is cheap
    enough to drive the memory-hierarchy simulator.  Every array element
    access can be reported to a {!Trace.sink} with its element address;
    reads are reported left-to-right, then the write — the access order the
    paper's machine would perform.

    The sink is matched once when the program is compiled, so the default
    [No_trace] path pays nothing per access; [Callback] reproduces the old
    per-access closure interface; [Record] feeds a chunked trace recorder
    for the record-once / replay-many pipeline. *)

type trace = write:bool -> addr:int -> unit
(** The per-access callback shape used by [Trace.Callback]. *)

val run :
  ?sink:Trace.sink ->
  Store.t ->
  Loopir.Ast.program ->
  params:(string * int) list ->
  int
(** Executes the program in place on the store; returns the number of
    floating-point operations performed (adds, subs, muls, divs, sqrts,
    negations).  [sink] defaults to [Trace.No_trace]. *)

type prepared
(** A compiled program whose parameter bindings can be rebound cheaply
    between invocations — the block scheduler compiles each task body once
    per worker and re-invokes it with fresh block-coordinate bindings.
    Single-domain mutable state (frame, flop counter): one [prepared] per
    worker. *)

val prepare : ?sink:Trace.sink -> Store.t -> Loopir.Ast.program -> prepared

val invoke : prepared -> params:(string * int) list -> int
(** Runs the compiled body under the given bindings (parameters and any
    free loop variables); returns the flops performed by this invocation
    alone.  Slots not rebound keep their previous values, so callers must
    bind every free variable on every call.
    @raise Invalid_argument on a binding for a name the program never
    mentions — a silent drop here turns a caller's typo into a stale
    previous value. *)
