let run_program ?layouts ?sink prog ~params ~init =
  let store = Store.create ?layouts prog ~params ~init in
  let flops = Interp.run ?sink store prog ~params in
  (store, flops)

let max_diff ?layouts p1 p2 ~params ~init =
  let s1, _ = run_program ?layouts p1 ~params ~init in
  let s2, _ = run_program ?layouts p2 ~params ~init in
  Store.max_abs_diff s1 s2

let equivalent ?(tol = 1e-9) ?layouts p1 p2 ~params ~init =
  max_diff ?layouts p1 p2 ~params ~init <= tol
