module Ast = Loopir.Ast
module E = Loopir.Expr
module Fexpr = Loopir.Fexpr

type trace = write:bool -> addr:int -> unit

(* Variable slots: one per distinct name.  Loop variable names may repeat
   across sibling loops (disjoint lifetimes), so sharing a slot is safe. *)
type env = { slots : (string, int) Hashtbl.t; mutable count : int }

let slot env name =
  match Hashtbl.find_opt env.slots name with
  | Some i -> i
  | None ->
    let i = env.count in
    env.count <- env.count + 1;
    Hashtbl.add env.slots name i;
    i

let fdiv_int a d =
  let q = a / d and r = a mod d in
  if r < 0 then q - 1 else q

let rec compile_iexpr env (e : E.t) : int array -> int =
  match e with
  | E.Var s ->
    let i = slot env s in
    fun frame -> frame.(i)
  | E.Const n -> fun _ -> n
  | E.Add (a, b) ->
    let ca = compile_iexpr env a and cb = compile_iexpr env b in
    fun f -> ca f + cb f
  | E.Sub (a, b) ->
    let ca = compile_iexpr env a and cb = compile_iexpr env b in
    fun f -> ca f - cb f
  | E.Mul (k, a) ->
    let ca = compile_iexpr env a in
    fun f -> k * ca f
  | E.FloorDiv (a, d) ->
    let ca = compile_iexpr env a in
    fun f -> fdiv_int (ca f) d
  | E.CeilDiv (a, d) ->
    let ca = compile_iexpr env a in
    fun f -> -fdiv_int (-ca f) d
  | E.Max (a, b) ->
    let ca = compile_iexpr env a and cb = compile_iexpr env b in
    fun f -> max (ca f) (cb f)
  | E.Min (a, b) ->
    let ca = compile_iexpr env a and cb = compile_iexpr env b in
    fun f -> min (ca f) (cb f)

(* Resolve a reference to (array, offset); the caller reports the access to
   the trace so reads and writes are distinguished. *)
let compile_ref env store (r : Fexpr.ref_) =
  let arr = Store.find store r.array in
  let idx_fns = Array.of_list (List.map (compile_iexpr env) r.idx) in
  let nidx = Array.length idx_fns in
  let buf = Array.make nidx 0 in
  fun frame ->
    for d = 0 to nidx - 1 do
      buf.(d) <- idx_fns.(d) frame
    done;
    (arr, Store.offset arr buf)

let rec compile_fexpr env store sink flops (e : Fexpr.t) : int array -> float =
  match e with
  | Fexpr.Ref r ->
    let cr = compile_ref env store r in
    (* the sink is matched once, at compile time, so the no-trace fast
       path carries no per-access dispatch *)
    (match sink with
     | Trace.No_trace ->
       fun frame ->
         let arr, off = cr frame in
         arr.Store.data.(off)
     | Trace.Callback t ->
       fun frame ->
         let arr, off = cr frame in
         t ~write:false ~addr:(arr.Store.base + off);
         arr.Store.data.(off)
     | Trace.Record rc ->
       fun frame ->
         let arr, off = cr frame in
         Trace.emit rc ~write:false ~addr:(arr.Store.base + off);
         arr.Store.data.(off))
  | Fexpr.Const x -> fun _ -> x
  | Fexpr.Neg a ->
    let ca = compile_fexpr env store sink flops a in
    fun f ->
      incr flops;
      -.ca f
  | Fexpr.Sqrt a ->
    let ca = compile_fexpr env store sink flops a in
    fun f ->
      incr flops;
      sqrt (ca f)
  | Fexpr.Bin (op, a, b) ->
    let ca = compile_fexpr env store sink flops a
    and cb = compile_fexpr env store sink flops b in
    let g =
      match op with
      | Fexpr.Fadd -> ( +. )
      | Fexpr.Fsub -> ( -. )
      | Fexpr.Fmul -> ( *. )
      | Fexpr.Fdiv -> ( /. )
    in
    (* force left-to-right evaluation so the memory trace reads operands in
       textual order *)
    fun f ->
      incr flops;
      let x = ca f in
      let y = cb f in
      g x y

let compile_guard env (g : Ast.guard) =
  let cl = compile_iexpr env g.g_lhs and cr = compile_iexpr env g.g_rhs in
  match g.g_rel with
  | Ast.Le -> fun f -> cl f <= cr f
  | Ast.Lt -> fun f -> cl f < cr f
  | Ast.Ge -> fun f -> cl f >= cr f
  | Ast.Gt -> fun f -> cl f > cr f
  | Ast.Eq -> fun f -> cl f = cr f

let rec compile_node env store sink flops (node : Ast.t) : int array -> unit =
  match node with
  | Ast.Stmt s ->
    let rhs = compile_fexpr env store sink flops s.rhs in
    let lhs = compile_ref env store s.lhs in
    (match sink with
     | Trace.No_trace ->
       fun frame ->
         let v = rhs frame in
         let arr, off = lhs frame in
         arr.Store.data.(off) <- v
     | Trace.Callback t ->
       fun frame ->
         let v = rhs frame in
         let arr, off = lhs frame in
         t ~write:true ~addr:(arr.Store.base + off);
         arr.Store.data.(off) <- v
     | Trace.Record rc ->
       fun frame ->
         let v = rhs frame in
         let arr, off = lhs frame in
         Trace.emit rc ~write:true ~addr:(arr.Store.base + off);
         arr.Store.data.(off) <- v)
  | Ast.If (gs, body) ->
    let cgs = Array.of_list (List.map (compile_guard env) gs) in
    let cbody = compile_body env store sink flops body in
    fun frame ->
      if Array.for_all (fun g -> g frame) cgs then cbody frame
  | Ast.Loop l ->
    let lo = compile_iexpr env l.lo and hi = compile_iexpr env l.hi in
    let sl = slot env l.var in
    let cbody = compile_body env store sink flops l.body in
    fun frame ->
      let a = lo frame and b = hi frame in
      for v = a to b do
        frame.(sl) <- v;
        cbody frame
      done

and compile_body env store sink flops body =
  let cs = Array.of_list (List.map (compile_node env store sink flops) body) in
  fun frame -> Array.iter (fun c -> c frame) cs

type prepared = {
  p_env : env;
  p_main : int array -> unit;
  p_frame : int array;
  p_flops : int ref;
}

let prepare ?(sink = Trace.No_trace) store (prog : Ast.program) =
  let env = { slots = Hashtbl.create 16; count = 0 } in
  let flops = ref 0 in
  (* reserve slots for params first *)
  List.iter (fun p -> ignore (slot env p)) prog.params;
  let main = compile_body env store sink flops prog.body in
  (* env.count is final once compile_body returns: one slot per distinct
     name, no more *)
  let frame = Array.make env.count 0 in
  { p_env = env; p_main = main; p_frame = frame; p_flops = flops }

let invoke p ~params =
  List.iter
    (fun (name, value) ->
      match Hashtbl.find_opt p.p_env.slots name with
      | Some i -> p.p_frame.(i) <- value
      | None ->
        invalid_arg
          (Printf.sprintf "Exec.Interp.invoke: unknown parameter %s" name))
    params;
  let before = !(p.p_flops) in
  p.p_main p.p_frame;
  !(p.p_flops) - before

let run ?sink store (prog : Ast.program) ~params =
  invoke (prepare ?sink store prog) ~params
