(** End-to-end verification: run two programs over the same initial data and
    compare every array element.  Used to check that shackled code computes
    exactly what the original program computes (the instance sets are equal
    and only the order differs, so results agree up to floating-point
    reassociation). *)

val run_program :
  ?layouts:(string * Store.layout) list ->
  ?sink:Trace.sink ->
  Loopir.Ast.program ->
  params:(string * int) list ->
  init:(string -> int array -> float) ->
  Store.t * int
(** Fresh store, execute, return (final store, flop count).  [sink]
    receives every element access (default [Trace.No_trace]). *)

val max_diff :
  ?layouts:(string * Store.layout) list ->
  Loopir.Ast.program ->
  Loopir.Ast.program ->
  params:(string * int) list ->
  init:(string -> int array -> float) ->
  float
(** Largest elementwise difference between the two final stores. *)

val equivalent :
  ?tol:float ->
  ?layouts:(string * Store.layout) list ->
  Loopir.Ast.program ->
  Loopir.Ast.program ->
  params:(string * int) list ->
  init:(string -> int array -> float) ->
  bool
(** [max_diff <= tol] (default [1e-9], scaled for reassociation noise). *)
