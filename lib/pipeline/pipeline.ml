(* The one front door to the compiler: parse -> dependence analysis ->
   legality -> code generation -> execution/simulation.

   A [t] pairs a program with a solver context ([Omega.Ctx]) and a cached
   dependence analysis.  Everything downstream threads that one context, so
   (a) all Omega traffic for the program is visible in one place, and (b)
   when the context carries a memo table, legality queries across many
   candidate shackles share it — which is exactly the autotuner's workload
   (products reuse their factors' systems). *)

module Ast = Loopir.Ast
module Dep = Dependence.Dep
module Omega = Polyhedra.Omega

type t = {
  prog : Ast.program;
  solver : Omega.Ctx.t;
  mutable deps : Dep.t list option;
  mutable gen_cache : (string * Ast.program) list;
      (* symbolic codegen per (naive, collapse, spec) — the once-per-spec
         derivation that specialization instantiates per size *)
  lock : Mutex.t;
}

let create ?solver prog =
  let solver =
    match solver with Some c -> c | None -> Omega.Ctx.create ~cache:true ()
  in
  { prog; solver; deps = None; gen_cache = []; lock = Mutex.create () }

let parse ?solver text =
  match Loopir.Parser.program text with
  | prog -> Ok (create ?solver prog)
  | exception Loopir.Parser.Parse_error (line, msg) ->
    Error (Printf.sprintf "line %d: %s" line msg)

let program t = t.prog
let solver t = t.solver

let deps t =
  Mutex.protect t.lock (fun () ->
      match t.deps with
      | Some ds -> ds
      | None ->
        let ds = Dep.analyze ~ctx:t.solver t.prog in
        t.deps <- Some ds;
        ds)

let deps_at t ~params = Dep.analyze ~params ~ctx:t.solver t.prog

let check t spec = Shackle.Legality.check_deps ~ctx:t.solver t.prog spec (deps t)

let is_legal t spec =
  Shackle.Legality.is_legal_deps ~ctx:t.solver t.prog spec (deps t)

let is_legal_deps t spec ~deps =
  Shackle.Legality.is_legal_deps ~ctx:t.solver t.prog spec deps

let probe t spec = Shackle.Legality.probe_deps ~ctx:t.solver t.prog spec (deps t)

let probe_deps t spec ~deps =
  Shackle.Legality.probe_deps ~ctx:t.solver t.prog spec deps

let choices t ~array = Shackle.Legality.enumerate_choices t.prog ~array

let codegen ?(naive = false) ?collapse ?stages t spec =
  if naive then Codegen.Naive.generate ?stages t.prog spec
  else Codegen.Tighten.generate ?collapse ?stages ~solver:t.solver t.prog spec

(* Spec.pp renders the blocking and every per-statement choice, so its
   output is a faithful structural key. *)
let spec_key ~naive ~collapse spec =
  Printf.sprintf "naive=%b collapse=%b %s" naive collapse
    (Format.asprintf "%a" Shackle.Spec.pp spec)

let codegen_cached ?(naive = false) ?(collapse = true) t spec =
  let key = spec_key ~naive ~collapse spec in
  match
    Mutex.protect t.lock (fun () -> List.assoc_opt key t.gen_cache)
  with
  | Some prog -> prog
  | None ->
    let prog = codegen ~naive ~collapse t spec in
    Mutex.protect t.lock (fun () ->
        if not (List.mem_assoc key t.gen_cache) then
          t.gen_cache <- (key, prog) :: t.gen_cache);
    prog

let variant ?collapse t = function
  | None -> t.prog
  | Some spec -> codegen ?collapse t spec

let specialize ?naive ?collapse ?spec t ~params =
  let symbolic =
    match spec with
    | None -> t.prog
    | Some spec -> codegen_cached ?naive ?collapse t spec
  in
  Loopir.Stages.specialize ~params symbolic

let record ?layouts ?chunk_words ?spec t ~params ~init =
  Machine.Model.record ?layouts ?chunk_words (variant t spec) ~params ~init

(* One execution yielding both the replayable recording and the final
   store — the sequential half of a par=seq equivalence check, where
   executing twice would double the cost of every oracle probe. *)
let record_full ?layouts ?chunk_words ?spec t ~params ~init =
  let r = Trace.create_recorder ?chunk_words ~keep:true () in
  let store, flops =
    Exec.Verify.run_program ?layouts ~sink:(Trace.Record r) (variant t spec)
      ~params ~init
  in
  ({ Machine.Model.rec_trace = Trace.finish r; rec_flops = flops }, store)

let consume = Machine.Model.consume

let simulate ?layouts ?spec t ~machine ~quality ~params ~init =
  Machine.Model.simulate ?layouts ~machine ~quality (variant t spec) ~params
    ~init

let run ?layouts ?sink ?spec t ~params ~init =
  Exec.Verify.run_program ?layouts ?sink (variant t spec) ~params ~init

let verify ?layouts ?spec t ~params ~init =
  Exec.Verify.max_diff ?layouts t.prog (variant t spec) ~params ~init
