(** The single public entry point to the compiler pipeline:
    parse -> dependence analysis -> shackle legality -> code generation ->
    execution / cache simulation.

    A {!t} binds a program to one {!Polyhedra.Omega.Ctx} solver context and
    caches the program's symbolic dependence analysis.  All downstream
    phases charge their Omega queries to that context; by default it is
    created with the legality memo table enabled, so checking many
    candidate shackles of the same program (the autotuner's workload) hits
    the cache on shared constraint systems. *)

type t

val create : ?solver:Polyhedra.Omega.Ctx.t -> Loopir.Ast.program -> t
(** Wrap an already-parsed program.  [solver] defaults to a fresh
    [Omega.Ctx.create ~cache:true ()]. *)

val parse : ?solver:Polyhedra.Omega.Ctx.t -> string -> (t, string) result
(** Parse concrete syntax; errors are ["line %d: %s"]. *)

val program : t -> Loopir.Ast.program
val solver : t -> Polyhedra.Omega.Ctx.t

val deps : t -> Dependence.Dep.t list
(** Symbolic dependence analysis, computed once per pipeline (thread-safe;
    safe to call from parallel workers sharing one [t], though legality and
    codegen are normally run sequentially). *)

val deps_at : t -> params:(string * int) list -> Dependence.Dep.t list
(** Dependences at concrete parameter bindings — not cached. *)

val check : t -> Shackle.Spec.t -> Shackle.Legality.verdict
(** Theorem 1 verdict against the cached symbolic dependences. *)

val is_legal : t -> Shackle.Spec.t -> bool

val is_legal_deps : t -> Shackle.Spec.t -> deps:Dependence.Dep.t list -> bool
(** Legality with caller-supplied dependences (e.g. [deps_at]). *)

val probe : t -> Shackle.Spec.t -> Shackle.Verdict.t
(** Three-valued legality against the cached symbolic dependences: when the
    pipeline's solver context carries a budget, [Unknown] distinguishes
    "gave up" from the proved [Illegal] (both collapse to [false] in
    {!is_legal}).  Stops at the first proved violation, so an [Illegal]
    witness list holds exactly that one.  Render with
    {!Shackle.Verdict.to_string} — the spelling shared by [shacklec] and
    the shackled wire protocol. *)

val probe_deps :
  t -> Shackle.Spec.t -> deps:Dependence.Dep.t list -> Shackle.Verdict.t

val choices :
  t -> array:string -> (string * Loopir.Fexpr.ref_) list list
(** Per-statement reference choices for shackling [array]
    (see {!Shackle.Legality.enumerate_choices}). *)

val codegen :
  ?naive:bool ->
  ?collapse:bool ->
  ?stages:Loopir.Stages.stage list ->
  t ->
  Shackle.Spec.t ->
  Loopir.Ast.program
(** Blocked code for a legal spec; [naive] (default false) selects the
    Figure-5 form instead of the tightened form.  [stages] composes extra
    named simplifier stages after the generator's standard post-pass. *)

val codegen_cached :
  ?naive:bool -> ?collapse:bool -> t -> Shackle.Spec.t -> Loopir.Ast.program
(** Like {!codegen}, but memoized per (naive, collapse, spec) on this
    pipeline — the single symbolic derivation (legality systems, Omega
    pruning, bound tightening) that an entire N sweep shares.  Thread-safe;
    concurrent first calls may both generate, one result is kept. *)

val variant : ?collapse:bool -> t -> Shackle.Spec.t option -> Loopir.Ast.program
(** The original program for [None], tightened blocked code for [Some]. *)

val specialize :
  ?naive:bool ->
  ?collapse:bool ->
  ?spec:Shackle.Spec.t ->
  t ->
  params:(string * int) list ->
  Loopir.Ast.program
(** The chosen variant instantiated at concrete parameter values: symbolic
    codegen comes from {!codegen_cached} (one Omega derivation per (kernel,
    spec) across a sweep), then {!Loopir.Stages.specialize} substitutes
    [params] and runs the solver-free specialization pipeline — entailed
    guards vanish and inner loops become straight-line index arithmetic,
    with the access trace bit-identical to the symbolic program's.  The
    result keeps its [params] list, so {!Exec.Interp} invocations bind the
    same names as the unspecialized variant. *)

val record :
  ?layouts:(string * Exec.Store.layout) list ->
  ?chunk_words:int ->
  ?spec:Shackle.Spec.t ->
  t ->
  params:(string * int) list ->
  init:(string -> int array -> float) ->
  Machine.Model.recording
(** Execute the chosen variant once, capturing the full access trace
    (machine/quality independent — replay it with {!consume}). *)

val record_full :
  ?layouts:(string * Exec.Store.layout) list ->
  ?chunk_words:int ->
  ?spec:Shackle.Spec.t ->
  t ->
  params:(string * int) list ->
  init:(string -> int array -> float) ->
  Machine.Model.recording * Exec.Store.t
(** Like {!record}, but also returns the final store from the same single
    execution — the sequential reference for a par=seq equivalence check
    (store, trace and flops all from one run). *)

val consume :
  machine:Machine.Model.t ->
  quality:Machine.Model.quality ->
  Machine.Model.recording ->
  Machine.Model.result
(** Re-exported {!Machine.Model.consume}. *)

val simulate :
  ?layouts:(string * Exec.Store.layout) list ->
  ?spec:Shackle.Spec.t ->
  t ->
  machine:Machine.Model.t ->
  quality:Machine.Model.quality ->
  params:(string * int) list ->
  init:(string -> int array -> float) ->
  Machine.Model.result
(** One-shot simulation of the chosen variant. *)

val run :
  ?layouts:(string * Exec.Store.layout) list ->
  ?sink:Trace.sink ->
  ?spec:Shackle.Spec.t ->
  t ->
  params:(string * int) list ->
  init:(string -> int array -> float) ->
  Exec.Store.t * int
(** Execute the chosen variant; returns (final store, flop count). *)

val verify :
  ?layouts:(string * Exec.Store.layout) list ->
  ?spec:Shackle.Spec.t ->
  t ->
  params:(string * int) list ->
  init:(string -> int array -> float) ->
  float
(** Largest elementwise difference between original and variant. *)
