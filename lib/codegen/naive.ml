module Ast = Loopir.Ast
module E = Loopir.Expr
module Spec = Shackle.Spec
module Blocking = Shackle.Blocking

let array_extents (prog : Ast.program) name =
  match List.find_opt (fun (d : Ast.array_decl) -> String.equal d.a_name name) prog.arrays with
  | Some d -> d.extents
  | None -> invalid_arg ("Codegen: unknown array " ^ name)

let coord_loop_ranges prog (spec : Spec.t) =
  let names = Spec.coord_names spec in
  let ranges =
    List.concat_map
      (fun (f : Spec.factor) ->
        Blocking.coord_ranges f.blocking
          ~extents:(array_extents prog f.blocking.Blocking.array))
      spec
  in
  List.map2 (fun n (lo, hi) -> (n, lo, hi)) names ranges

let all_vars prog =
  let vs = ref [] in
  List.iter
    (fun (ctx, _) -> vs := Ast.loop_vars ctx @ !vs)
    (Ast.statements prog);
  List.sort_uniq String.compare (prog.Ast.params @ !vs)

let generate ?(stages = []) prog spec =
  (match Spec.validate prog spec with
   | Ok () -> ()
   | Error e -> invalid_arg ("Codegen.Naive.generate: " ^ e));
  let coord_names = Spec.coord_names spec in
  let existing = all_vars prog in
  List.iter
    (fun n ->
      if List.mem n existing then
        invalid_arg ("Codegen.Naive.generate: name collision on " ^ n))
    coord_names;
  (* Guards for one statement: membership of each factor's chosen reference
     in the factor's current block. *)
  let guards_for (s : Ast.stmt) =
    let _, gs =
      List.fold_left
        (fun (offset, acc) (f : Spec.factor) ->
          let r = Spec.choice_for f s in
          let nb = Blocking.coords_dim f.blocking in
          let coords =
            List.init nb (fun i -> E.var (List.nth coord_names (offset + i)))
          in
          (offset + nb,
           acc @ Blocking.membership_guards f.blocking r.Loopir.Fexpr.idx ~coords))
        (0, []) spec
    in
    gs
  in
  let rec wrap node =
    match node with
    | Ast.Stmt s -> Ast.If (guards_for s, [ node ])
    | Ast.If (gs, body) -> Ast.If (gs, List.map wrap body)
    | Ast.Loop l -> Ast.Loop { l with body = List.map wrap l.body }
  in
  let inner = List.map wrap prog.body in
  let body =
    List.fold_right
      (fun (n, lo, hi) acc -> [ Ast.loop n lo hi acc ])
      (coord_loop_ranges prog spec) inner
  in
  let result = { prog with Ast.p_name = prog.p_name ^ "_naive_shackled"; body } in
  (* Figure-5 form stays structurally intact: the naive pipeline only folds
     constants; callers may compose further stages after it. *)
  Loopir.Stages.run (Loopir.Stages.naive_pipeline @ stages) result
