module Ast = Loopir.Ast
module E = Loopir.Expr
module Fexpr = Loopir.Fexpr
module Dom = Loopir.Domain
module Spec = Shackle.Spec
module Blocking = Shackle.Blocking
module A = Polyhedra.Affine
module C = Polyhedra.Constr
module S = Polyhedra.System
module Fm = Polyhedra.Fm
module Omega = Polyhedra.Omega
module B = Bigint
module Stages = Loopir.Stages

type info = {
  stmt : Ast.stmt;
  names : string array;  (* params ++ t-coords ++ loop vars (outer first) *)
  pc : int;              (* parameter count *)
  m : int;               (* block-coordinate count *)
  depth : int;           (* loop depth *)
  sys : S.t;             (* the statement's full shackled system F_S *)
  solver : Omega.Ctx.t;  (* context charged for all pruning queries *)
  bounds : (int, (E.t * (B.t * A.t) list) * (E.t * (B.t * A.t) list)) Hashtbl.t;
      (* per space variable: ((lower expr, pruned lower pieces),
                              (upper expr, pruned upper pieces)) *)
}

let dim_of info = Array.length info.names

(* ------------------------------------------------------------------ *)
(* Building F_S                                                        *)
(* ------------------------------------------------------------------ *)

let build_info ~solver prog spec coord_names (ctx, (stmt : Ast.stmt)) =
  let params = prog.Ast.params in
  let pc = List.length params in
  let m = List.length coord_names in
  let loops = Ast.loop_vars ctx in
  let names = Array.of_list (params @ coord_names @ loops) in
  let dim = Array.length names in
  let stmt_space = Dom.space_of prog ctx in
  let stmt_dim = Array.length stmt_space.Dom.names in
  let perm =
    Array.init stmt_dim (fun i -> if i < pc then i else pc + m + (i - pc))
  in
  let domain = S.rename_into (Dom.domain_of prog ctx) perm (S.universe names) in
  let extent_affs_of (f : Spec.factor) =
    let decl =
      List.find
        (fun (d : Ast.array_decl) ->
          String.equal d.a_name f.Spec.blocking.Blocking.array)
        prog.Ast.arrays
    in
    List.map
      (fun e ->
        let lookup n =
          let rec find j =
            if j >= dim then None
            else if String.equal names.(j) n then Some j
            else find (j + 1)
          in
          find 0
        in
        match E.to_affine ~lookup ~dim e with
        | Some a -> a
        | None -> raise (Dom.Not_affine (E.to_string e)))
      decl.extents
  in
  let _, membership =
    List.fold_left
      (fun (offset, acc) (f : Spec.factor) ->
        let r = Spec.choice_for f stmt in
        let point =
          List.map (fun a -> A.rename a perm dim) (Dom.access stmt_space r)
        in
        let nb = Blocking.coords_dim f.Spec.blocking in
        let coord_vars = List.init nb (fun i -> pc + offset + i) in
        ( offset + nb,
          acc
          @ Blocking.membership_constraints f.Spec.blocking ~point ~coord_vars
          @ Blocking.range_constraints f.Spec.blocking
              ~extent_affs:(extent_affs_of f) ~coord_vars ))
      (0, []) spec
  in
  let sys = Fm.compress (S.add_list domain membership) in
  { stmt; names; pc; m; depth = List.length loops; sys; solver;
    bounds = Hashtbl.create 8 }

(* ------------------------------------------------------------------ *)
(* Per-variable bounds with redundant-piece pruning                    *)
(* ------------------------------------------------------------------ *)

(* Drop pieces that are implied by the remaining ones in the context of the
   projected system (e.g. the original "i >= 2" under "i >= t2+1, t2 >= 1"),
   so the emitted min/max are as small as the paper's figures. *)
let prune_pieces ~solver proj k ~is_lower pieces =
  let dim = S.dim proj in
  let x = A.var dim k in
  (* the exact context for the outer variables is the projection of the
     system along x, not just the constraints that happen to omit x *)
  let outer = S.constraints (Fm.eliminate proj k) in
  let piece_constr (coef, form) =
    if is_lower then C.ge_of (A.scale coef x) form
    else C.le_of (A.scale coef x) form
  in
  let violates (coef, form) =
    if is_lower then C.lt_of (A.scale coef x) form
    else C.gt_of (A.scale coef x) form
  in
  let rec go kept = function
    | [] -> List.rev kept
    | p :: rest ->
      let others = List.rev_append kept rest in
      if others = [] then go (p :: kept) rest
      else begin
        let sys =
          S.make (S.names proj)
            (outer @ List.map piece_constr others @ [ violates p ])
        in
        if Omega.satisfiable ~ctx:solver sys then go (p :: kept) rest
        else go kept rest
      end
  in
  go [] pieces

let piece_to_expr names ~is_lower (coef, form) =
  let e = E.of_affine ~names form in
  if B.equal coef B.one then e
  else begin
    let c = B.to_int_exn coef in
    if is_lower then E.CeilDiv (e, c) else E.FloorDiv (e, c)
  end

let bounds_for info k =
  match Hashtbl.find_opt info.bounds k with
  | Some b -> b
  | None ->
    let dim = dim_of info in
    let inner = List.init (dim - k - 1) (fun i -> k + 1 + i) in
    let proj = Fm.eliminate_list info.sys inner in
    let lowers, uppers = Fm.bounds_of proj k in
    let as_pairs =
      List.map (fun (b : Fm.bound) -> (b.Fm.coef, b.Fm.form))
    in
    let lowers =
      prune_pieces ~solver:info.solver proj k ~is_lower:true (as_pairs lowers)
    in
    let uppers =
      prune_pieces ~solver:info.solver proj k ~is_lower:false (as_pairs uppers)
    in
    if lowers = [] || uppers = [] then
      failwith
        (Printf.sprintf "Codegen.Tighten: variable %s of %s is unbounded"
           info.names.(k) info.stmt.Ast.label);
    let le =
      Stages.fold_expr
        (E.max_list (List.map (piece_to_expr info.names ~is_lower:true) lowers))
    in
    let ue =
      Stages.fold_expr
        (E.min_list (List.map (piece_to_expr info.names ~is_lower:false) uppers))
    in
    let b = ((le, lowers), (ue, uppers)) in
    Hashtbl.add info.bounds k b;
    b

(* ------------------------------------------------------------------ *)
(* Guard reconstruction                                                *)
(* ------------------------------------------------------------------ *)

(* Render [aff >= 0] as [positive part >= negated negative part] for
   readability. *)
let constr_to_guard names (c : C.t) =
  let dim = A.dim c.aff in
  let pos = ref (A.zero dim) and neg = ref (A.zero dim) in
  for i = 0 to dim - 1 do
    let co = A.coeff c.aff i in
    if B.sign co > 0 then pos := A.set_coeff !pos i co
    else if B.sign co < 0 then neg := A.set_coeff !neg i (B.neg co)
  done;
  let cst = A.const_of c.aff in
  if B.sign cst > 0 then pos := A.add_const !pos cst
  else if B.sign cst < 0 then neg := A.add_const !neg (B.neg cst);
  let lhs = E.of_affine ~names !pos and rhs = E.of_affine ~names !neg in
  match c.kind with
  | C.Ge -> Ast.guard lhs Ast.Ge rhs
  | C.Eq -> Ast.guard lhs Ast.Eq rhs

(* ------------------------------------------------------------------ *)
(* Union-bound pruning                                                 *)
(*                                                                     *)
(* A loop shared by several statements gets the union of their ranges: *)
(* min of the lower bounds, max of the uppers.  Many pieces are        *)
(* dominated under the constraints already established by outer loops  *)
(* (e.g. min(t1, 1) = 1 once t1 >= 1); we prove domination with the    *)
(* Omega test and drop them.                                           *)
(* ------------------------------------------------------------------ *)

let rec max_args = function
  | E.Max (a, b) -> max_args a @ max_args b
  | e -> [ e ]

let rec min_args = function
  | E.Min (a, b) -> min_args a @ min_args b
  | e -> [ e ]

(* The context is a list of one-sided facts (var, expr, is_lower) collected
   from already-emitted loops with unambiguous affine bounds. *)
type ctx_fact = string * E.t * bool

let lookup_in names n =
  let dim = Array.length names in
  let rec find j =
    if j >= dim then None
    else if String.equal names.(j) n then Some j
    else find (j + 1)
  in
  find 0

let ctx_le ~solver (ctx : ctx_fact list) names a b =
  let dim = Array.length names in
  let lookup = lookup_in names in
  match (E.to_affine ~lookup ~dim a, E.to_affine ~lookup ~dim b) with
  | Some fa, Some fb ->
    let cs =
      List.filter_map
        (fun (v, e, is_lower) ->
          match (lookup v, E.to_affine ~lookup ~dim e) with
          | Some vi, Some fe ->
            Some
              (if is_lower then C.ge_of (A.var dim vi) fe
               else C.le_of (A.var dim vi) fe)
          | _ -> None)
        ctx
    in
    Omega.implies ~ctx:solver (S.make names cs) (C.le_of fa fb)
  | _ -> false

(* B <= A for lower-bound pieces: every max-arg of B is below some max-arg
   of A. *)
let piece_le ~solver ctx names b a =
  List.for_all
    (fun bb ->
      List.exists (fun aa -> ctx_le ~solver ctx names bb aa) (max_args a))
    (max_args b)

(* B >= A for upper-bound pieces. *)
let piece_ge ~solver ctx names b a =
  List.for_all
    (fun bb ->
      List.exists (fun aa -> ctx_le ~solver ctx names aa bb) (min_args a))
    (min_args b)

let prune_union ~keep_if_dominates ctx names pieces =
  let rec go kept = function
    | [] -> List.rev kept
    | p :: rest ->
      let others = List.rev_append kept rest in
      if List.exists (fun q -> keep_if_dominates ctx names q p) others then
        go kept rest
      else go (p :: kept) rest
  in
  go [] pieces

(* ------------------------------------------------------------------ *)
(* The generator                                                       *)
(* ------------------------------------------------------------------ *)

let generate ?(collapse = true) ?(stages = []) ?solver prog spec =
  (match Spec.validate prog spec with
   | Ok () -> ()
   | Error e -> invalid_arg ("Codegen.Tighten.generate: " ^ e));
  let solver =
    match solver with Some c -> c | None -> Omega.Ctx.default
  in
  let coord_names = Spec.coord_names spec in
  let m = List.length coord_names in
  let pc = List.length prog.Ast.params in
  let stmts = Ast.statements prog in
  let infos =
    List.map (fun cs -> build_info ~solver prog spec coord_names cs) stmts
  in
  let info_of id = List.find (fun i -> i.stmt.Ast.id = id) infos in
  (* (stmt id, space var) -> (lower enforced, upper enforced) *)
  let enforced : (int * int, bool * bool) Hashtbl.t = Hashtbl.create 32 in
  (* Emit a loop over the variable at space index [k] (same for every
     statement in [members]); returns the bound expressions. *)
  let emitted_bounds ctx members k =
    let names = (List.hd members).names in
    let collect proj =
      List.fold_left
        (fun acc i ->
          let e = proj (bounds_for i k) in
          if List.exists (E.equal e) acc then acc else acc @ [ e ])
        [] members
    in
    let los =
      prune_union ~keep_if_dominates:(piece_le ~solver) ctx names
        (collect (fun ((le, _), _) -> le))
    in
    let his =
      prune_union ~keep_if_dominates:(piece_ge ~solver) ctx names
        (collect (fun (_, (ue, _)) -> ue))
    in
    let lo = Stages.fold_expr (E.min_list los) in
    let hi = Stages.fold_expr (E.max_list his) in
    List.iter
      (fun i ->
        let (le, _), (ue, _) = bounds_for i k in
        (* the emitted loop enforces this statement's own bound if it is at
           least as strong; after pruning, test entailment, not equality *)
        let lo_ok = E.equal lo le || piece_le ~solver ctx names le lo in
        let hi_ok = E.equal hi ue || piece_ge ~solver ctx names ue hi in
        Hashtbl.replace enforced (i.stmt.Ast.id, k) (lo_ok, hi_ok))
      members;
    (lo, hi)
  in
  let extend_ctx ctx var (lo, hi) =
    let ctx = match max_args lo with [ _ ] -> (var, lo, true) :: ctx | _ -> ctx in
    match min_args hi with [ _ ] -> (var, hi, false) :: ctx | _ -> ctx
  in
  let rec descendants node =
    match node with
    | Ast.Stmt s -> [ info_of s.id ]
    | Ast.If (_, body) | Ast.Loop { body; _ } ->
      List.concat_map descendants body
  in
  (* Residual guards for one statement. *)
  let residual_guards info =
    let dim = dim_of info in
    let e_s = ref [] in
    for k = pc to dim - 1 do
      match Hashtbl.find_opt enforced (info.stmt.Ast.id, k) with
      | None -> ()
      | Some (lo_ok, hi_ok) ->
        let (_, lows), (_, ups) = bounds_for info k in
        let x = A.var dim k in
        if lo_ok then
          e_s :=
            List.map (fun (c, f) -> C.ge_of (A.scale c x) f) lows @ !e_s;
        if hi_ok then
          e_s := List.map (fun (c, f) -> C.le_of (A.scale c x) f) ups @ !e_s
    done;
    let candidates = S.constraints info.sys in
    let rec prune kept = function
      | [] -> List.rev kept
      | g :: rest ->
        let context =
          S.make info.names (!e_s @ List.rev_append kept rest)
        in
        if Omega.implies ~ctx:info.solver context g then prune kept rest
        else prune (g :: kept) rest
    in
    prune [] candidates
  in
  (* Rebuild the original structure under the block loops. *)
  let rec build ctx node =
    match node with
    | Ast.Stmt s ->
      let info = info_of s.id in
      let gs = List.map (constr_to_guard info.names) (residual_guards info) in
      if gs = [] then [ node ] else [ Ast.If (gs, [ node ]) ]
    | Ast.If (_, body) ->
      (* original guards live in F_S; re-emitted per statement if needed *)
      List.concat_map (build ctx) body
    | Ast.Loop l ->
      let members = descendants node in
      let k =
        (* position of this loop among the enclosing loops of any member *)
        let i = List.hd members in
        let rec find j =
          if j >= Array.length i.names then
            invalid_arg "Tighten: loop variable not in space"
          else if String.equal i.names.(j) l.var then j
          else find (j + 1)
        in
        find (pc + m)
      in
      let lo, hi = emitted_bounds ctx members k in
      let ctx' = extend_ctx ctx l.var (lo, hi) in
      [ Ast.Loop { l with lo; hi; body = List.concat_map (build ctx') l.body } ]
  in
  (* Parameters are at least 1; block loops come first (they contain every
     statement). *)
  let ctx0 =
    List.map (fun p -> (p, E.Const 1, true)) prog.Ast.params
  in
  let ctx, block_loops =
    List.fold_left
      (fun (ctx, acc) (i, name) ->
        let bounds = emitted_bounds ctx infos (pc + i) in
        (extend_ctx ctx name bounds, acc @ [ (name, bounds) ]))
      (ctx0, [])
      (List.mapi (fun i n -> (i, n)) coord_names)
  in
  let inner = List.concat_map (build ctx) prog.Ast.body in
  let body =
    List.fold_right
      (fun (name, (lo, hi)) acc -> [ Ast.loop name lo hi acc ])
      block_loops inner
  in
  let result =
    { prog with Ast.p_name = prog.Ast.p_name ^ "_shackled"; body }
  in
  (* The post-pass is the staged pipeline: guard hoisting and degenerate
     collapse exactly as before (golden output is byte-identical), plus any
     caller-composed stages (e.g. the --stages flag). *)
  Stages.run (Stages.tighten_pipeline ~collapse @ stages) result

let stats prog =
  let loops = ref 0 and guards = ref 0 in
  let rec go = function
    | Ast.Stmt _ -> ()
    | Ast.If (gs, body) ->
      guards := !guards + List.length gs;
      List.iter go body
    | Ast.Loop l ->
      incr loops;
      List.iter go l.body
  in
  List.iter go prog.Ast.body;
  (!loops, !guards)
