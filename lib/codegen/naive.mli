(** Naive code generation for a data shackle: block-coordinate loops around
    the original program, with every statement guarded by the conditions
    "the data touched by its chosen reference lies in the current block" —
    exactly Figure 5 of the paper.  Inefficient but trivially correct; the
    semantic reference for the simplifier. *)

val generate :
  ?stages:Loopir.Stages.stage list ->
  Loopir.Ast.program ->
  Shackle.Spec.t ->
  Loopir.Ast.program
(** The result has the coordinate loops [t1..tm] outermost (bounds derived
    from the blocked arrays' extents) and is directly executable.  The
    post-pass is {!Loopir.Stages.naive_pipeline} (constant folding only)
    followed by [stages].
    @raise Invalid_argument if a coordinate name collides with an existing
    variable or a choice is missing. *)

val coord_loop_ranges :
  Loopir.Ast.program -> Shackle.Spec.t -> (string * Loopir.Expr.t * Loopir.Expr.t) list
(** The [t]-loop bounds used by [generate]. *)
