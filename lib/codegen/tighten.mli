(** Simplified code generation: Fourier-Motzkin bound tightening plus
    integer-implication guard elimination.

    Plays the role of the Omega calculator in the paper (Section 4.1: "the
    conditionals are affine conditions ... they can be simplified using any
    polyhedral algebra tool"): the naive Figure-5 form is turned into the
    Figure-6/7/10 form.  The transformation is semantics-preserving by
    construction — per statement, the set of executed instances provably
    equals the statement's shackled instance set — and is additionally
    cross-checked against the naive form and the reference semantics in the
    test suite. *)

val generate :
  ?collapse:bool ->
  ?stages:Loopir.Stages.stage list ->
  ?solver:Polyhedra.Omega.Ctx.t ->
  Loopir.Ast.program ->
  Shackle.Spec.t ->
  Loopir.Ast.program
(** Blocked program with tightened loop bounds and minimized guards.
    [collapse] (default true) substitutes away loops whose range is a single
    affine point, as the paper does for the ADI kernel (Figure 14).  The
    post-pass is {!Loopir.Stages.tighten_pipeline} followed by [stages]
    (default none) — extra named stages composed after the standard ones.
    [solver] is the context charged for the Omega pruning queries (default
    [Omega.Ctx.default]); the generated program does not depend on it. *)

val stats : Loopir.Ast.program -> int * int
(** (loops, guards) in a generated program — used by tests and benches to
    compare code complexity. *)
