(** A small Domain-based work pool for embarrassingly parallel experiment
    points.

    Every simulation point of the evaluation harness is an independent
    (program, size, quality) triple, so the experiment layer fans them out
    across OCaml 5 domains.  The pool hands out work by an atomic index and
    writes each result back into its input slot, so result order is always
    the input order regardless of how the scheduler interleaves domains.

    Workers must be self-contained: a task must build any mutable state it
    needs (simulator instances, caches, stores) itself rather than closing
    over shared mutable structures. *)

val default_domains : unit -> int
(** Recommended domain count for this machine
    ([Domain.recommended_domain_count]), at least 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] is [List.map f xs] computed by up to [domains]
    domains (the calling domain included).  Results are returned in input
    order.  [~domains:1] (the default) runs sequentially in the calling
    domain with no spawns at all — the safe fallback for single-core
    machines or debugging.

    If any task raises, the first raising index's exception is re-raised
    (with its backtrace) after all domains have joined; later results are
    discarded. *)

val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [mapi] is [map] with the input position passed to the task. *)

val run_all : ?domains:int -> (unit -> 'a) list -> 'a list
(** [run_all ~domains tasks] runs each thunk, in input order, across the
    pool.  Convenience wrapper over [map]. *)
