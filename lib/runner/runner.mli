(** A small Domain-based work pool for embarrassingly parallel experiment
    points.

    Every simulation point of the evaluation harness is an independent
    (program, size, quality) triple, so the experiment layer fans them out
    across OCaml 5 domains.  The pool hands out work by an atomic index and
    writes each result back into its input slot, so result order is always
    the input order regardless of how the scheduler interleaves domains.

    Workers must be self-contained: a task must build any mutable state it
    needs (simulator instances, caches, stores) itself rather than closing
    over shared mutable structures. *)

val default_domains : unit -> int
(** Recommended domain count for this machine
    ([Domain.recommended_domain_count]), at least 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] is [List.map f xs] computed by up to [domains]
    domains (the calling domain included).  Results are returned in input
    order.  [~domains:1] (the default) runs sequentially in the calling
    domain with no spawns at all — the safe fallback for single-core
    machines or debugging.

    If any task raises, the first raising index's exception is re-raised
    (with its backtrace) after all domains have joined; later results are
    discarded. *)

val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [mapi] is [map] with the input position passed to the task. *)

val run_all : ?domains:int -> (unit -> 'a) list -> 'a list
(** [run_all ~domains tasks] runs each thunk, in input order, across the
    pool.  Convenience wrapper over [map]. *)

(** {2 Work-stealing deque}

    The per-worker task queue of the block scheduler's dynamic mode.  The
    owner pushes and pops at the bottom (LIFO — depth-first over freshly
    enabled blocks); thieves steal from the top (FIFO — the oldest task).
    Mutex-per-operation: deque traffic is negligible next to the work one
    shackle block represents.  All operations are safe from any domain. *)

module Deque : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option  (** owner end (newest). *)

  val steal : 'a t -> 'a option  (** thief end (oldest). *)

  val length : 'a t -> int
end

(** {2 Supervised execution}

    [map] is fail-fast: one raising task aborts the whole batch.  Campaign
    workloads (fuzzing, autotuning) instead want per-task outcomes — a
    pathological item is reported and the batch completes.  Cancellation is
    cooperative because OCaml domains cannot be killed: each attempt gets a
    {!Token.t} which the task polls, directly ({!Token.check}) or by wiring
    {!Token.cancelled} into a solver context's cancel hook. *)

module Token : sig
  type t

  exception Expired
  (** Raised by {!check}; {!map_outcomes} turns it into [Timed_out]. *)

  val none : unit -> t
  (** A token that never expires (still cancellable). *)

  val with_deadline_ms : int -> t
  (** A token that expires this many milliseconds from now. *)

  val cancel : t -> unit

  val cancelled : t -> bool
  (** True once cancelled or past the deadline — the polling hook to thread
      into [Omega.Ctx.create ~cancel]. *)

  val check : t -> unit
  (** Raise {!Expired} if {!cancelled}. *)
end

type 'b outcome =
  | Ok of 'b
  | Failed of exn * Printexc.raw_backtrace
      (** the task's last attempt raised; the backtrace is the raise site's *)
  | Timed_out  (** the task observed its token expired and bailed out *)

val map_outcomes :
  ?domains:int ->
  ?timeout_ms:int ->
  ?retries:int ->
  ?backoff_ms:int ->
  ?on_outcome:(int -> 'b outcome -> unit) ->
  (Token.t -> 'a -> 'b) ->
  'a list ->
  'b outcome list
(** [map_outcomes ~domains ~timeout_ms ~retries f xs] runs [f token x] for
    every item across the pool and returns one {!outcome} per item, in
    input order regardless of domain count or scheduling — exceptions are
    captured per-slot, never re-raised.

    Each attempt receives a fresh token carrying the [timeout_ms] deadline
    (no deadline when omitted).  An attempt that raises [Token.Expired] is
    [Timed_out], terminally — a deadline is not a transient fault.  Any
    other exception is retried up to [retries] (default 0) times with
    deterministic jittered exponential backoff starting at [backoff_ms]
    (default 20); the last attempt's exception and backtrace become
    [Failed].

    [on_outcome i o] is invoked under an internal mutex as each item
    completes (completion order, not input order) — the hook checkpoint
    writers use.  It must not raise. *)
