let default_domains () = max 1 (Domain.recommended_domain_count ())

(* Each completed slot holds either the task's value or the exception it
   raised; slots are written by exactly one worker (the one that claimed
   the index), so plain array stores are race-free. *)
type 'b slot =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let mapi ?(domains = 1) f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f 0 x ]
  | _ when domains <= 1 -> List.mapi f xs
  | _ ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let out = Array.make n Pending in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (out.(i) <-
           (match f i input.(i) with
            | y -> Done y
            | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
        worker ()
      end
    in
    (* The calling domain is worker number [domains]; spawn the rest. *)
    let spawned = List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map
         (function
           | Done y -> y
           | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
           | Pending -> assert false)
         out)

let map ?domains f xs = mapi ?domains (fun _ x -> f x) xs
let run_all ?domains tasks = map ?domains (fun t -> t ()) tasks
