let default_domains () = max 1 (Domain.recommended_domain_count ())

(* Each completed slot holds either the task's value or the exception it
   raised; slots are written by exactly one worker (the one that claimed
   the index), so plain array stores are race-free. *)
type 'b slot =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let mapi ?(domains = 1) f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f 0 x ]
  | _ when domains <= 1 -> List.mapi f xs
  | _ ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let out = Array.make n Pending in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (out.(i) <-
           (match f i input.(i) with
            | y -> Done y
            | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
        worker ()
      end
    in
    (* The calling domain is worker number [domains]; spawn the rest. *)
    let spawned = List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map
         (function
           | Done y -> y
           | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
           | Pending -> assert false)
         out)

let map ?domains f xs = mapi ?domains (fun _ x -> f x) xs
let run_all ?domains tasks = map ?domains (fun t -> t ()) tasks

(* ------------------------------------------------------------------ *)
(* Work-stealing deque                                                  *)
(* ------------------------------------------------------------------ *)

(* A mutex-protected ring-buffer deque.  The owner pushes and pops at the
   bottom (LIFO — depth-first over freshly enabled work, cache-friendly);
   thieves steal from the top (FIFO — they take the oldest, largest-grain
   task).  A lock per operation is plenty here: tasks are whole shackle
   blocks, so deque traffic is orders of magnitude rarer than the work a
   task represents. *)
module Deque = struct
  type 'a t = {
    lock : Mutex.t;
    mutable ring : 'a option array;
    mutable head : int;  (* index of oldest element *)
    mutable size : int;
  }

  let create () =
    { lock = Mutex.create (); ring = Array.make 16 None; head = 0; size = 0 }

  let grow d =
    let cap = Array.length d.ring in
    let ring' = Array.make (2 * cap) None in
    for i = 0 to d.size - 1 do
      ring'.(i) <- d.ring.((d.head + i) mod cap)
    done;
    d.ring <- ring';
    d.head <- 0

  let push d x =
    Mutex.protect d.lock (fun () ->
        if d.size = Array.length d.ring then grow d;
        d.ring.((d.head + d.size) mod Array.length d.ring) <- Some x;
        d.size <- d.size + 1)

  let pop d =
    Mutex.protect d.lock (fun () ->
        if d.size = 0 then None
        else begin
          let i = (d.head + d.size - 1) mod Array.length d.ring in
          let x = d.ring.(i) in
          d.ring.(i) <- None;
          d.size <- d.size - 1;
          x
        end)

  let steal d =
    Mutex.protect d.lock (fun () ->
        if d.size = 0 then None
        else begin
          let x = d.ring.(d.head) in
          d.ring.(d.head) <- None;
          d.head <- (d.head + 1) mod Array.length d.ring;
          d.size <- d.size - 1;
          x
        end)

  let length d = Mutex.protect d.lock (fun () -> d.size)
end

(* ------------------------------------------------------------------ *)
(* Supervised execution                                                 *)
(* ------------------------------------------------------------------ *)

(* Cancellation is cooperative: OCaml domains cannot be killed, so a
   "timeout" is a deadline the task itself polls — directly via
   [Token.check] between work items, or indirectly by wiring
   [Token.cancelled] into a solver context's cancel hook.  A task that
   never polls runs to completion and counts as [Ok]. *)
module Token = struct
  type t = { deadline : float; (* infinity = none *) flag : bool Atomic.t }

  exception Expired

  let none () = { deadline = infinity; flag = Atomic.make false }

  let with_deadline_ms ms =
    { deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.);
      flag = Atomic.make false }

  let cancel t = Atomic.set t.flag true

  let cancelled t =
    Atomic.get t.flag
    || (t.deadline < infinity && Unix.gettimeofday () > t.deadline)

  let check t = if cancelled t then raise Expired
end

type 'b outcome =
  | Ok of 'b
  | Failed of exn * Printexc.raw_backtrace
  | Timed_out

(* Deterministic jittered exponential backoff: the delay for retry [k] of
   slot [i] is [backoff_ms * 2^(k-1)] scaled by a jitter in [0.75, 1.25)
   derived from (i, k) — reproducible across runs, yet de-synchronized
   across slots so retried workers do not stampede in lockstep. *)
let backoff_sleep ~backoff_ms ~index ~attempt =
  let base = float_of_int (backoff_ms * (1 lsl (attempt - 1))) /. 1000. in
  let jitter =
    float_of_int (Hashtbl.hash (index, attempt) land 0xff) /. 512.
  in
  Unix.sleepf (base *. (0.75 +. jitter))

let map_outcomes ?(domains = 1) ?timeout_ms ?(retries = 0) ?(backoff_ms = 20)
    ?on_outcome f xs =
  let lock = Mutex.create () in
  let notify i o =
    match on_outcome with
    | None -> ()
    | Some g -> Mutex.protect lock (fun () -> g i o)
  in
  let fresh_token () =
    match timeout_ms with
    | None -> Token.none ()
    | Some ms -> Token.with_deadline_ms ms
  in
  (* Every attempt gets a fresh token, so a retry is not born expired.
     [Token.Expired] is terminal — a deadline is not a transient fault —
     while any other exception retries up to [retries] times. *)
  let run_one i x =
    let rec attempt k =
      let tok = fresh_token () in
      match f tok x with
      | y -> Ok y
      | exception Token.Expired -> Timed_out
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        if k < retries then begin
          backoff_sleep ~backoff_ms ~index:i ~attempt:(k + 1);
          attempt (k + 1)
        end
        else Failed (e, bt)
    in
    let o = attempt 0 in
    notify i o;
    o
  in
  match xs with
  | [] -> []
  | _ when domains <= 1 -> List.mapi run_one xs
  | _ ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        out.(i) <- Some (run_one i input.(i));
        worker ()
      end
    in
    let spawned =
      List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map (function Some o -> o | None -> assert false) out)
