(** First-class, machine-readable observations of the simulation layer.

    Every call into the cache simulator yields a [sim] record: per-level
    hits/misses/evictions, flop and statement-instance counts, the cycle
    model's outputs, and the wall-clock time the simulation itself took.
    Records are gathered through a domain-local collector so that
    experiment points fanned out over a {!Runner}-style pool each
    accumulate their own metrics without sharing mutable state; the
    per-task collections are merged by the caller in deterministic task
    order. *)

type level = {
  lv_name : string;
  lv_accesses : int;
  lv_hits : int;
  lv_misses : int;
  lv_evictions : int;
}

(** Trace-pipeline accounting for one simulation row.  [tr_executions] is
    1 on the row whose series triggered the interpreter execution and 0 on
    rows that reused the shared recording, so summing it over a figure's
    metrics counts the real interpreter executions — the quantity the
    record-once / replay-many pipeline is supposed to shrink to one per
    (program variant, size) point. *)
type trace_info = {
  tr_executions : int;  (** interpreter executions this row triggered *)
  tr_length : int;  (** accesses in the shared trace *)
  tr_chunks : int;  (** chunks the recorder flushed *)
  tr_bytes : int;  (** peak bytes held by the stored trace *)
  tr_record_seconds : float;  (** 0 on rows that reused the recording *)
  tr_replay_seconds : float;  (** wall-clock of this row's replay *)
}

(** Block-scheduler accounting for one simulation row ([--par-exec]).
    Structural fields (tasks, edges, wavefronts, width, mode) are
    deterministic functions of the plan; [sc_steals] and [sc_stalls] are
    dynamic scheduling events that vary run to run — diff tooling
    normalizes the whole record away before comparing, like wall-clock. *)
type sched_info = {
  sc_tasks : int;
  sc_edges : int;
  sc_wavefronts : int;
  sc_max_width : int;  (** widest wavefront level *)
  sc_domains : int;  (** workers that executed the plan *)
  sc_mode : string;  (** "sequential" / "wavefront" / "steal" *)
  sc_serialized : bool;  (** conservative chain fallback engaged *)
  sc_steals : int;  (** dynamic; excluded from diffs *)
  sc_stalls : int;  (** dynamic; excluded from diffs *)
}

type sim = {
  sim_label : string;  (** e.g. ["cholesky_right/N=60/input"] *)
  sim_machine : string;
  sim_quality : string;
  sim_flops : int;
  sim_instances : int;
  sim_accesses : int;
  sim_levels : level list;
  sim_cycles : float;
  sim_mflops : float;
  sim_seconds : float;  (** wall-clock of this one simulation *)
  sim_trace : trace_info option;
      (** present on rows produced by the record/replay pipeline *)
  sim_sched : sched_info option;
      (** present on the recording row of a [--par-exec] run *)
}

val of_result :
  label:string ->
  machine:string ->
  quality:string ->
  seconds:float ->
  ?trace:trace_info ->
  ?sched:sched_info ->
  Machine.Model.result ->
  sim

val sim_to_json : sim -> Json.t
val sim_of_json : Json.t -> (sim, string) result
(** Inverse of [sim_to_json]; [Error] names the first missing or
    ill-typed field. *)

(** {2 Solver-context statistics}

    A snapshot of one {!Polyhedra.Omega.Ctx}'s counters, for embedding in
    reports: total satisfiability queries, splinter recursions, fuel spent
    and budget exhaustions ([so_unknowns]), and — when the context
    memoizes — legality-cache hits/misses and table size.  A non-zero
    [so_unknowns] marks a degraded report: some verdicts mean "gave up",
    not "proved". *)

type solver = {
  so_queries : int;
  so_splinters : int;
  so_fuel_spent : int;
  so_unknowns : int;
  so_cache_hits : int;
  so_cache_misses : int;
  so_backing_hits : int;
      (** verdicts answered by an external store (the daemon's disk cache)
          rather than the in-process memo or a fresh solve *)
  so_cache_size : int;
  so_cache_enabled : bool;
}

val solver_of_ctx : Polyhedra.Omega.Ctx.t -> solver
val solver_to_json : solver -> Json.t

val solver_of_json : Json.t -> (solver, string) result
(** Inverse of [solver_to_json]; [Error] names the first bad field. *)

val solver_solves : solver -> int
(** Queries that actually ran the Omega test:
    queries - memo hits - backing hits.  Zero on a fully warm cache. *)

(** {2 Disk-cache metrics}

    Counters of one {!Server.Diskcache} handle (the daemon's persistent
    legality store), for the [stats] RPC and bench reports. *)

type diskcache = {
  dc_entries : int;  (** distinct digests resident *)
  dc_bytes : int;  (** valid on-disk bytes (header + records) *)
  dc_hits : int;
  dc_misses : int;
  dc_appended : int;  (** records written by this handle *)
  dc_dropped : int;  (** torn-tail bytes truncated at open *)
}

val diskcache_to_json : diskcache -> Json.t

val diskcache_of_json : Json.t -> (diskcache, string) result
(** Inverse of [diskcache_to_json]; [Error] names the first bad field. *)

(** {2 Wall-clock helpers} *)

val now_s : unit -> float
(** [Unix.gettimeofday], re-exported so other libraries need no direct
    unix dependency. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] is [(f (), elapsed_wall_clock_seconds)]. *)

(** {2 Domain-local collection} *)

val record : sim -> unit
(** Append to the current domain's active collection (a no-op when no
    {!collect} is in flight in this domain). *)

val collect : (unit -> 'a) -> 'a * sim list
(** [collect f] runs [f] with a fresh collection installed for the
    current domain and returns everything {!record}ed during the call, in
    record order.  Nests: the enclosing collection is restored afterwards
    (also on exceptions) and does {e not} see the inner records. *)
