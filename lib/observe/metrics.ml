module Model = Machine.Model

type level = {
  lv_name : string;
  lv_accesses : int;
  lv_hits : int;
  lv_misses : int;
  lv_evictions : int;
}

(* Trace-pipeline accounting for one simulation row.  [tr_executions] is
   1 on the row whose series triggered the interpreter execution and 0 on
   rows that reused the shared recording, so summing it over a figure
   counts real executions. *)
type trace_info = {
  tr_executions : int;
  tr_length : int;
  tr_chunks : int;
  tr_bytes : int;
  tr_record_seconds : float;
  tr_replay_seconds : float;
}

(* Block-scheduler accounting for one simulation row.  The structural
   fields (tasks, edges, wavefronts, width, mode) are deterministic;
   [sc_steals]/[sc_stalls] are dynamic scheduling events that vary run to
   run, which is why diff tooling normalizes the whole record away before
   comparing (like wall-clock). *)
type sched_info = {
  sc_tasks : int;
  sc_edges : int;
  sc_wavefronts : int;
  sc_max_width : int;
  sc_domains : int;
  sc_mode : string;
  sc_serialized : bool;
  sc_steals : int;
  sc_stalls : int;
}

type sim = {
  sim_label : string;
  sim_machine : string;
  sim_quality : string;
  sim_flops : int;
  sim_instances : int;
  sim_accesses : int;
  sim_levels : level list;
  sim_cycles : float;
  sim_mflops : float;
  sim_seconds : float;
  sim_trace : trace_info option;
  sim_sched : sched_info option;
}

let of_result ~label ~machine ~quality ~seconds ?trace ?sched
    (r : Model.result) =
  { sim_label = label;
    sim_machine = machine;
    sim_quality = quality;
    sim_flops = r.Model.r_flops;
    sim_instances = r.Model.r_instances;
    sim_accesses = r.Model.r_accesses;
    sim_levels =
      List.map
        (fun (s : Model.level_stat) ->
          { lv_name = s.Model.s_name;
            lv_accesses = s.Model.s_accesses;
            lv_hits = s.Model.s_hits;
            lv_misses = s.Model.s_misses;
            lv_evictions = s.Model.s_evictions })
        r.Model.r_levels;
    sim_cycles = r.Model.r_cycles;
    sim_mflops = r.Model.r_mflops;
    sim_seconds = seconds;
    sim_trace = trace;
    sim_sched = sched }

let level_to_json l =
  Json.Obj
    [ ("name", Json.Str l.lv_name);
      ("accesses", Json.Int l.lv_accesses);
      ("hits", Json.Int l.lv_hits);
      ("misses", Json.Int l.lv_misses);
      ("evictions", Json.Int l.lv_evictions) ]

let trace_info_to_json t =
  Json.Obj
    [ ("executions", Json.Int t.tr_executions);
      ("length", Json.Int t.tr_length);
      ("chunks", Json.Int t.tr_chunks);
      ("bytes", Json.Int t.tr_bytes);
      ("record_seconds", Json.Float t.tr_record_seconds);
      ("replay_seconds", Json.Float t.tr_replay_seconds) ]

let sched_info_to_json s =
  Json.Obj
    [ ("tasks", Json.Int s.sc_tasks);
      ("edges", Json.Int s.sc_edges);
      ("wavefronts", Json.Int s.sc_wavefronts);
      ("max_width", Json.Int s.sc_max_width);
      ("domains", Json.Int s.sc_domains);
      ("mode", Json.Str s.sc_mode);
      ("serialized", Json.Bool s.sc_serialized);
      ("steals", Json.Int s.sc_steals);
      ("stalls", Json.Int s.sc_stalls) ]

(* The "trace"/"sched" keys are appended only when present, so rows
   produced by the legacy callback path keep the schema-version-1 byte
   layout. *)
let sim_to_json s =
  Json.Obj
    ([ ("label", Json.Str s.sim_label);
       ("machine", Json.Str s.sim_machine);
       ("quality", Json.Str s.sim_quality);
       ("flops", Json.Int s.sim_flops);
       ("instances", Json.Int s.sim_instances);
       ("accesses", Json.Int s.sim_accesses);
       ("levels", Json.List (List.map level_to_json s.sim_levels));
       ("cycles", Json.Float s.sim_cycles);
       ("mflops", Json.Float s.sim_mflops);
       ("seconds", Json.Float s.sim_seconds) ]
    @ (match s.sim_trace with
       | None -> []
       | Some t -> [ ("trace", trace_info_to_json t) ])
    @
    match s.sim_sched with
    | None -> []
    | Some sc -> [ ("sched", sched_info_to_json sc) ])

(* Field accessors used by [sim_of_json]; each names the offending field
   on failure so malformed BENCH files fail loudly in CI. *)
let str_field j k =
  match Json.member k j with
  | Some (Json.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing or non-string field %S" k)

let int_field j k =
  match Json.member k j with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing or non-int field %S" k)

let float_field j k =
  match Json.member k j with
  | Some (Json.Float x) -> Ok x
  | Some (Json.Int i) -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "missing or non-number field %S" k)

let ( let* ) r f = Result.bind r f

let level_of_json j =
  let* lv_name = str_field j "name" in
  let* lv_accesses = int_field j "accesses" in
  let* lv_hits = int_field j "hits" in
  let* lv_misses = int_field j "misses" in
  let* lv_evictions = int_field j "evictions" in
  Ok { lv_name; lv_accesses; lv_hits; lv_misses; lv_evictions }

let trace_info_of_json j =
  let* tr_executions = int_field j "executions" in
  let* tr_length = int_field j "length" in
  let* tr_chunks = int_field j "chunks" in
  let* tr_bytes = int_field j "bytes" in
  let* tr_record_seconds = float_field j "record_seconds" in
  let* tr_replay_seconds = float_field j "replay_seconds" in
  Ok
    { tr_executions;
      tr_length;
      tr_chunks;
      tr_bytes;
      tr_record_seconds;
      tr_replay_seconds }

let sched_info_of_json j =
  let* sc_tasks = int_field j "tasks" in
  let* sc_edges = int_field j "edges" in
  let* sc_wavefronts = int_field j "wavefronts" in
  let* sc_max_width = int_field j "max_width" in
  let* sc_domains = int_field j "domains" in
  let* sc_mode = str_field j "mode" in
  let* sc_serialized =
    match Json.member "serialized" j with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "missing or non-bool field \"serialized\""
  in
  let* sc_steals = int_field j "steals" in
  let* sc_stalls = int_field j "stalls" in
  Ok
    { sc_tasks;
      sc_edges;
      sc_wavefronts;
      sc_max_width;
      sc_domains;
      sc_mode;
      sc_serialized;
      sc_steals;
      sc_stalls }

let sim_of_json j =
  let* sim_label = str_field j "label" in
  let* sim_machine = str_field j "machine" in
  let* sim_quality = str_field j "quality" in
  let* sim_flops = int_field j "flops" in
  let* sim_instances = int_field j "instances" in
  let* sim_accesses = int_field j "accesses" in
  let* levels =
    match Json.member "levels" j with
    | Some (Json.List ls) ->
      List.fold_left
        (fun acc l ->
          let* acc = acc in
          let* lv = level_of_json l in
          Ok (lv :: acc))
        (Ok []) ls
      |> Result.map List.rev
    | _ -> Error "missing or non-list field \"levels\""
  in
  let* sim_cycles = float_field j "cycles" in
  let* sim_mflops = float_field j "mflops" in
  let* sim_seconds = float_field j "seconds" in
  let* sim_trace =
    match Json.member "trace" j with
    | None -> Ok None
    | Some t -> Result.map Option.some (trace_info_of_json t)
  in
  let* sim_sched =
    match Json.member "sched" j with
    | None -> Ok None
    | Some t -> Result.map Option.some (sched_info_of_json t)
  in
  Ok
    { sim_label;
      sim_machine;
      sim_quality;
      sim_flops;
      sim_instances;
      sim_accesses;
      sim_levels = levels;
      sim_cycles;
      sim_mflops;
      sim_seconds;
      sim_trace;
      sim_sched }

(* ------------------------------------------------------------------ *)
(* Solver-context statistics                                           *)
(* ------------------------------------------------------------------ *)

type solver = {
  so_queries : int;
  so_splinters : int;
  so_fuel_spent : int;
  so_unknowns : int;
  so_cache_hits : int;
  so_cache_misses : int;
  so_backing_hits : int;
  so_cache_size : int;
  so_cache_enabled : bool;
}

let solver_of_ctx c =
  let module Ctx = Polyhedra.Omega.Ctx in
  { so_queries = Ctx.queries c;
    so_splinters = Ctx.splinters c;
    so_fuel_spent = Ctx.fuel_spent c;
    so_unknowns = Ctx.unknowns c;
    so_cache_hits = Ctx.cache_hits c;
    so_cache_misses = Ctx.cache_misses c;
    so_backing_hits = Ctx.backing_hits c;
    so_cache_size = Ctx.cache_size c;
    so_cache_enabled = Ctx.cache_enabled c }

let solver_solves s = s.so_queries - s.so_cache_hits - s.so_backing_hits

let solver_to_json s =
  Json.Obj
    [ ("queries", Json.Int s.so_queries);
      ("splinters", Json.Int s.so_splinters);
      ("fuel_spent", Json.Int s.so_fuel_spent);
      ("unknowns", Json.Int s.so_unknowns);
      ("cache_hits", Json.Int s.so_cache_hits);
      ("cache_misses", Json.Int s.so_cache_misses);
      ("backing_hits", Json.Int s.so_backing_hits);
      ("cache_size", Json.Int s.so_cache_size);
      ("cache_enabled", Json.Bool s.so_cache_enabled) ]

let bool_field j k =
  match Json.member k j with
  | Some (Json.Bool b) -> Ok b
  | _ -> Error (Printf.sprintf "missing or non-bool field %S" k)

(* Lenient: absent means 0, so reports written before the budget counters
   existed still parse. *)
let int_field_default j k =
  match Json.member k j with
  | Some (Json.Int i) -> Ok i
  | None -> Ok 0
  | Some _ -> Error (Printf.sprintf "non-int field %S" k)

let solver_of_json j =
  let* so_queries = int_field j "queries" in
  let* so_splinters = int_field j "splinters" in
  let* so_fuel_spent = int_field_default j "fuel_spent" in
  let* so_unknowns = int_field_default j "unknowns" in
  let* so_cache_hits = int_field j "cache_hits" in
  let* so_cache_misses = int_field j "cache_misses" in
  let* so_backing_hits = int_field_default j "backing_hits" in
  let* so_cache_size = int_field j "cache_size" in
  let* so_cache_enabled = bool_field j "cache_enabled" in
  Ok
    { so_queries;
      so_splinters;
      so_fuel_spent;
      so_unknowns;
      so_cache_hits;
      so_cache_misses;
      so_backing_hits;
      so_cache_size;
      so_cache_enabled }

(* ------------------------------------------------------------------ *)
(* Disk-cache metrics                                                  *)
(* ------------------------------------------------------------------ *)

type diskcache = {
  dc_entries : int;
  dc_bytes : int;
  dc_hits : int;
  dc_misses : int;
  dc_appended : int;
  dc_dropped : int;
}

let diskcache_to_json d =
  Json.Obj
    [ ("entries", Json.Int d.dc_entries);
      ("bytes", Json.Int d.dc_bytes);
      ("hits", Json.Int d.dc_hits);
      ("misses", Json.Int d.dc_misses);
      ("appended", Json.Int d.dc_appended);
      ("dropped_bytes", Json.Int d.dc_dropped) ]

let diskcache_of_json j =
  let* dc_entries = int_field j "entries" in
  let* dc_bytes = int_field j "bytes" in
  let* dc_hits = int_field j "hits" in
  let* dc_misses = int_field j "misses" in
  let* dc_appended = int_field j "appended" in
  let* dc_dropped = int_field_default j "dropped_bytes" in
  Ok { dc_entries; dc_bytes; dc_hits; dc_misses; dc_appended; dc_dropped }

(* ------------------------------------------------------------------ *)
(* Wall clock                                                          *)
(* ------------------------------------------------------------------ *)

let now_s () = Unix.gettimeofday ()

let timed f =
  let t0 = now_s () in
  let y = f () in
  (y, now_s () -. t0)

(* ------------------------------------------------------------------ *)
(* Domain-local collection                                             *)
(* ------------------------------------------------------------------ *)

(* [None] = no collect in flight in this domain, so [record] is a no-op.
   Domain-local storage keeps concurrently running tasks from ever
   touching each other's collections. *)
let collector : sim list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let record s =
  match Domain.DLS.get collector with
  | None -> ()
  | Some r -> r := s :: !r

let collect f =
  let saved = Domain.DLS.get collector in
  let fresh = ref [] in
  Domain.DLS.set collector (Some fresh);
  match f () with
  | y ->
    Domain.DLS.set collector saved;
    (y, List.rev !fresh)
  | exception e ->
    Domain.DLS.set collector saved;
    raise e
