(** A minimal JSON tree with a deterministic serializer and a strict
    parser.  Hand-rolled on purpose: the repo takes no new dependencies,
    and the `BENCH_*.json` trajectory files must be schema-stable and
    byte-reproducible across runs so CI can diff them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize.  With [~pretty:true] (the default is compact) objects and
    lists are indented two spaces per level.  Output is deterministic:
    object fields keep their construction order, floats are printed with
    the shortest representation that round-trips ([%.15g] widened to
    [%.17g] when needed) and always carry a ['.'] or exponent so they
    re-parse as floats.  Serializing a NaN or infinite float raises
    [Invalid_argument] — they have no JSON spelling. *)

val of_string : string -> (t, string) result
(** Strict parser for the subset produced by [to_string] (which is plain
    standard JSON: no comments, no trailing commas).  Numbers with a
    fraction or exponent parse as [Float], others as [Int].  [Error msg]
    carries a byte offset. *)

val member : string -> t -> t option
(** [member k j] looks up field [k] when [j] is an [Obj]. *)

val equal : t -> t -> bool
(** Structural equality; [Float] fields compare by bit pattern so that
    round-tripping can be tested exactly. *)
