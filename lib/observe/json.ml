type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let float_repr x =
  if Float.is_nan x || Float.abs x = Float.infinity then
    invalid_arg "Json.to_string: NaN/infinity has no JSON representation";
  let s = Printf.sprintf "%.15g" x in
  let s = if float_of_string s = x then s else Printf.sprintf "%.17g" x in
  (* force a float spelling so the value re-parses as Float, not Int *)
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_string ?(pretty = false) j =
  let b = Buffer.create 1024 in
  let indent depth =
    if pretty then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (2 * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float x -> Buffer.add_string b (float_repr x)
    | Str s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          indent (depth + 1);
          go (depth + 1) x)
        xs;
      indent depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          indent (depth + 1);
          escape_string b k;
          Buffer.add_char b ':';
          if pretty then Buffer.add_char b ' ';
          go (depth + 1) v)
        fields;
      indent depth;
      Buffer.add_char b '}'
  in
  go 0 j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code b u =
    if u < 0x80 then Buffer.add_char b (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let u =
             try int_of_string ("0x" ^ hex)
             with _ -> fail "bad \\u escape"
           in
           utf8_of_code b u
         | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some x -> Float x
      | None -> fail ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail ("bad number " ^ tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let parse_field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let f = parse_field () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields (f :: acc)
          | Some '}' -> advance (); Obj (List.rev (f :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (off, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" off msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Str x, Str y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
         xs ys
  | _ -> false
