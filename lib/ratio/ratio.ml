module B = Bigint

(* Invariant: den > 0 and gcd (|num|) den = 1. *)
type t = { num : B.t; den : B.t }

let make num den =
  if B.is_zero den then raise Division_by_zero;
  let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
  if B.is_zero num then { num = B.zero; den = B.one }
  else begin
    let g = B.gcd num den in
    { num = B.divexact num g; den = B.divexact den g }
  end

let of_bigint n = { num = n; den = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints n d = make (B.of_int n) (B.of_int d)
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num x = x.num
let den x = x.den
let sign x = B.sign x.num
let is_zero x = B.is_zero x.num
let is_integer x = B.equal x.den B.one
let neg x = { x with num = B.neg x.num }
let abs x = { x with num = B.abs x.num }

let inv x =
  if is_zero x then raise Division_by_zero;
  if B.sign x.num > 0 then { num = x.den; den = x.num }
  else { num = B.neg x.den; den = B.neg x.num }

let add a b = make (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)
let sub a b = add a (neg b)
let mul a b = make (B.mul a.num b.num) (B.mul a.den b.den)
let div a b = mul a (inv b)
let compare a b = B.compare (B.mul a.num b.den) (B.mul b.num a.den)
let equal a b = B.equal a.num b.num && B.equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let floor x = B.fdiv x.num x.den
let ceil x = B.cdiv x.num x.den

let to_float x =
  (* Good enough for diagnostics: convert through strings only when the
     components fit a float exactly is not guaranteed, but polyhedral
     rationals stay tiny compared to 2^53. *)
  float_of_string (B.to_string x.num) /. float_of_string (B.to_string x.den)

let of_float f =
  if not (Float.is_finite f) then
    invalid_arg "Ratio.of_float: not a finite float";
  if f = 0.0 then zero
  else begin
    (* every finite float is a dyadic rational: f = m * 2^e with
       m * 2^53 integral, so the conversion is exact *)
    let m, e = Float.frexp f in
    let num = B.of_int (int_of_float (Float.ldexp m 53)) in
    let e = Stdlib.( - ) e 53 in
    if Stdlib.( >= ) e 0 then of_bigint (B.mul num (B.pow B.two e))
    else make num (B.pow B.two (Stdlib.( ~- ) e))
  end

let to_string x =
  if is_integer x then B.to_string x.num
  else B.to_string x.num ^ "/" ^ B.to_string x.den

let pp fmt x = Format.pp_print_string fmt (to_string x)
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
