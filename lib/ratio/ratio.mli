(** Exact rational numbers over {!Bigint}.

    Used by the rational Fourier-Motzkin projector and by the machine cost
    model.  Values are kept in canonical form: positive denominator and
    coprime numerator/denominator, so structural operations like [equal] and
    [compare] are cheap and total. *)

type t

val zero : t
val one : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the canonical rational [num/den].
    @raise Division_by_zero when [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t
val of_ints : int -> int -> t

val num : t -> Bigint.t
val den : t -> Bigint.t
(** [den] is always positive. *)

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on zero divisor. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val floor : t -> Bigint.t
val ceil : t -> Bigint.t

val of_float : float -> t
(** Exact conversion: every finite float is a dyadic rational.
    @raise Invalid_argument on NaN or infinities. *)

val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
