(** The one three-valued legality verdict, shared by the whole stack.

    {!Legality.check}, {!Pipeline.probe}, the autotuner's pruner and the
    daemon's legal/probe replies all answer the same question — "is this
    shackle legal?" — with the same three outcomes.  They used to answer it
    with three structurally identical types converted by hand; this module
    is the single definition they now share.  {!Legality} re-exports the
    constructors, so [Legality.Legal] and [Verdict.Legal] are the same
    value. *)

type witness = {
  dep : Dependence.Dep.t;
  level : int;  (** block-coordinate position at which the order breaks *)
}

type t =
  | Legal  (** every violation system refuted (exact) *)
  | Illegal of witness list
      (** at least one violation system proved satisfiable (exact; the
          list holds only proved violations and may be truncated to the
          first when the caller stopped early) *)
  | Unknown of string
      (** no proved violation, but the solver budget ran out before every
          system was refuted — conservatively treated as illegal by the
          boolean entry points.  The payload is the solver's reason
          (["fuel"], ["deadline"], ["cancelled"]). *)

val is_legal : t -> bool
(** [true] iff {!Legal} — the conservative boolean collapse
    ([Unknown -> false]). *)

val to_string : t -> string
(** ["legal"], ["illegal"] or ["unknown:REASON"] — the wire spelling used
    by the daemon's verdict replies.  Witness payloads do not survive the
    round-trip. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string} up to witness payloads: ["illegal"] comes back
    as [Illegal []]. *)

val pp : Format.formatter -> t -> unit
(** Human rendering, with witness details when present. *)
