(** Theorem 1: a data shackle is legal iff for every dependence
    [(S1,i) -> (S2,j)] it is impossible that the block visiting [ (S2,j)]
    comes strictly before the block visiting [(S1,i)].  Each "wrong order"
    case is one integer linear system; the shackle is legal iff all of them
    are unsatisfiable (Section 5). *)

type violation = Verdict.witness = {
  dep : Dependence.Dep.t;
  level : int;  (** block-coordinate position at which the order breaks *)
}
(** Re-export of {!Verdict.witness}: the two spellings are interchangeable. *)

type verdict = Verdict.t =
  | Legal  (** every violation system refuted (exact) *)
  | Illegal of violation list
      (** at least one violation system proved satisfiable (exact; the list
          holds only proved violations) *)
  | Unknown of string
      (** no proved violation, but the solver budget ran out before every
          system was refuted — conservatively treated as illegal by the
          boolean entry points.  The payload is the solver's reason
          (["fuel"], ["deadline"], ["cancelled"]). *)
(** Re-export of {!Verdict.t}, so [Legality.Legal] and [Verdict.Legal] are
    the same constructor. *)

val check :
  ?params:(string * int) list ->
  ?ctx:Polyhedra.Omega.Ctx.t ->
  Loopir.Ast.program ->
  Spec.t ->
  verdict
(** Analyzes dependences and tests every (dependence, disjunct, level)
    system with the Omega test.  [ctx] is the solver context charged for
    every query; a context created with [Omega.Ctx.create ~cache:true]
    memoizes the verdicts, which pays off when checking many candidate
    shackles of one program (the autotuner's workload). *)

val check_deps :
  ?ctx:Polyhedra.Omega.Ctx.t ->
  Loopir.Ast.program ->
  Spec.t ->
  Dependence.Dep.t list ->
  verdict
(** Same, with dependences precomputed (they do not depend on the shackle). *)

val is_legal :
  ?params:(string * int) list ->
  ?ctx:Polyhedra.Omega.Ctx.t ->
  Loopir.Ast.program ->
  Spec.t ->
  bool

val probe_deps :
  ?ctx:Polyhedra.Omega.Ctx.t ->
  Loopir.Ast.program ->
  Spec.t ->
  Dependence.Dep.t list ->
  Verdict.t
(** Three-valued yes/no with precomputed dependences, stopping at the first
    proved violation — cheaper than {!check_deps} on illegal shackles, where
    the remaining (often expensive, unsatisfiable) systems need not be
    decided.  [Illegal] is only answered on a proved violation (the witness
    list holds exactly the one that stopped the scan); [Unknown] means the
    solver budget ran out with no violation proved. *)

val is_legal_deps :
  ?ctx:Polyhedra.Omega.Ctx.t ->
  Loopir.Ast.program ->
  Spec.t ->
  Dependence.Dep.t list ->
  bool
(** [probe_deps] collapsed to a boolean: true iff [Legal].  The collapse
    [Unknown -> false] is conservative — a starved budget can reject a
    legal shackle but never admit an illegal one.  With an unlimited budget
    this agrees with [check_deps = Legal]. *)

type pair_system = {
  ps_system : Polyhedra.System.t;
      (** one dependence disjunct, extended with both sides'
          block-coordinate binding constraints *)
  ps_src_base : int;  (** index of the first source block coordinate *)
  ps_dst_base : int;  (** index of the first destination block coordinate *)
  ps_coords : int;  (** number of block coordinates per side *)
  ps_params : (string * int) list;
      (** program parameter name -> variable index, for fixing sizes *)
}

val block_pair_systems :
  Loopir.Ast.program -> Spec.t -> Dependence.Dep.t -> pair_system list
(** The systems the legality test quantifies over, without any ordering
    constraint: a solution is a (source instance, destination instance)
    pair related by the dependence together with the block coordinates of
    both sides.  The parallel scheduler probes these for the feasible range
    of [zd_k - zs_k] to build its block-task DAG; on a legal shackle every
    solution has [zs <=lex zd], so the induced edges always point
    lexicographically forward. *)

val enumerate_choices :
  Loopir.Ast.program -> array:string -> (string * Loopir.Fexpr.ref_) list list
(** All ways of picking one reference to [array] from every statement
    (Section 6.1 enumerates these six for right-looking Cholesky).
    Statements with no reference to [array] make the result empty; add a
    dummy reference first. *)

val pp_verdict : Format.formatter -> verdict -> unit
