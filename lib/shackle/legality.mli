(** Theorem 1: a data shackle is legal iff for every dependence
    [(S1,i) -> (S2,j)] it is impossible that the block visiting [ (S2,j)]
    comes strictly before the block visiting [(S1,i)].  Each "wrong order"
    case is one integer linear system; the shackle is legal iff all of them
    are unsatisfiable (Section 5). *)

type violation = {
  dep : Dependence.Dep.t;
  level : int;  (** block-coordinate position at which the order breaks *)
}

type verdict = Legal | Illegal of violation list

val check :
  ?params:(string * int) list ->
  ?ctx:Polyhedra.Omega.Ctx.t ->
  Loopir.Ast.program ->
  Spec.t ->
  verdict
(** Analyzes dependences and tests every (dependence, disjunct, level)
    system with the Omega test.  [ctx] is the solver context charged for
    every query; a context created with [Omega.Ctx.create ~cache:true]
    memoizes the verdicts, which pays off when checking many candidate
    shackles of one program (the autotuner's workload). *)

val check_deps :
  ?ctx:Polyhedra.Omega.Ctx.t ->
  Loopir.Ast.program ->
  Spec.t ->
  Dependence.Dep.t list ->
  verdict
(** Same, with dependences precomputed (they do not depend on the shackle). *)

val is_legal :
  ?params:(string * int) list ->
  ?ctx:Polyhedra.Omega.Ctx.t ->
  Loopir.Ast.program ->
  Spec.t ->
  bool

val is_legal_deps :
  ?ctx:Polyhedra.Omega.Ctx.t ->
  Loopir.Ast.program ->
  Spec.t ->
  Dependence.Dep.t list ->
  bool
(** Yes/no verdict with precomputed dependences, stopping at the first
    violated system — cheaper than {!check_deps} on illegal shackles, where
    the remaining (often expensive, unsatisfiable) systems need not be
    decided.  Agrees with [check_deps = Legal]. *)

val enumerate_choices :
  Loopir.Ast.program -> array:string -> (string * Loopir.Fexpr.ref_) list list
(** All ways of picking one reference to [array] from every statement
    (Section 6.1 enumerates these six for right-looking Cholesky).
    Statements with no reference to [array] make the result empty; add a
    dummy reference first. *)

val pp_verdict : Format.formatter -> verdict -> unit
