module Ast = Loopir.Ast
module Fexpr = Loopir.Fexpr
module Dom = Loopir.Domain
module Dep = Dependence.Dep
module A = Polyhedra.Affine
module C = Polyhedra.Constr
module S = Polyhedra.System
module Omega = Polyhedra.Omega

(* The verdict type lives in {!Verdict} so every layer (pipeline, tuner,
   daemon protocol) shares one definition; re-exporting the constructors
   keeps [Legality.Legal] et al. valid. *)
type violation = Verdict.witness = { dep : Dep.t; level : int }

type verdict = Verdict.t =
  | Legal
  | Illegal of violation list
  | Unknown of string

(* Block-coordinate binding constraints for one side of a dependence.
   [perm] renames the statement space (params ++ loops) into the extended
   pair space; [base] is the index of this side's first coordinate
   variable. *)
let side_constraints prog ctx stmt spec ~dim ~perm ~base =
  let sp = Dom.space_of prog ctx in
  let _, cs =
    List.fold_left
      (fun (offset, acc) (f : Spec.factor) ->
        let r = Spec.choice_for f stmt in
        let point =
          List.map (fun a -> A.rename a perm dim) (Dom.access sp r)
        in
        let nb = Blocking.coords_dim f.Spec.blocking in
        let coord_vars = List.init nb (fun i -> base + offset + i) in
        ( offset + nb,
          acc @ Blocking.membership_constraints f.Spec.blocking ~point ~coord_vars ))
      (0, []) spec
  in
  cs

type pair_system = {
  ps_system : Polyhedra.System.t;
  ps_src_base : int;
  ps_dst_base : int;
  ps_coords : int;
  ps_params : (string * int) list;
}

(* The block-pair systems of one dependence under a spec: each disjunct of
   the dependence, extended with both sides' block-coordinate binding
   constraints.  A solution assigns source instance, destination instance,
   and the block coordinates [zs], [zd] of both — exactly the space the
   legality test quantifies over, minus any ordering constraint.  The
   scheduler probes these systems for the feasible range of [zd - zs]. *)
let block_pair_systems prog spec (d : Dep.t) =
  let m = Spec.coords_dim spec in
  let sp = d.Dep.space in
  let dim0 = Array.length sp.Dep.names in
  let dim = dim0 + (2 * m) in
  let names =
    Array.append sp.Dep.names
      (Array.init (2 * m) (fun i ->
           if i < m then "zs" ^ string_of_int (i + 1)
           else "zd" ^ string_of_int (i - m + 1)))
  in
  let src_base = dim0 and dst_base = dim0 + m in
  let perm_src =
    Array.init (sp.Dep.param_count + sp.Dep.src_depth) (fun i ->
        if i < sp.Dep.param_count then i
        else Dep.src_var sp (i - sp.Dep.param_count))
  in
  let perm_dst =
    Array.init (sp.Dep.param_count + sp.Dep.dst_depth) (fun i ->
        if i < sp.Dep.param_count then i
        else Dep.dst_var sp (i - sp.Dep.param_count))
  in
  let binding =
    side_constraints prog d.Dep.src_ctx d.Dep.src spec ~dim ~perm:perm_src
      ~base:src_base
    @ side_constraints prog d.Dep.dst_ctx d.Dep.dst spec ~dim ~perm:perm_dst
      ~base:dst_base
  in
  let params =
    List.init sp.Dep.param_count (fun i -> (sp.Dep.names.(i), i))
  in
  List.map
    (fun disjunct ->
      let extended =
        S.make names
          (List.map (fun c -> C.extend c dim) (S.constraints disjunct))
      in
      { ps_system = S.add_list extended binding;
        ps_src_base = src_base;
        ps_dst_base = dst_base;
        ps_coords = m;
        ps_params = params })
    d.Dep.disjuncts

exception Stop

(* All (dependence, disjunct, level) systems, in order.  With [stop_early]
   the search aborts at the first satisfiable one — enough for a yes/no
   verdict and much cheaper on illegal shackles, whose remaining systems
   (often the expensive unsatisfiable ones) need not be decided at all.
   Also returns the reason of the first budget-exhausted query, if any: a
   violation is only recorded for a system the solver *proved* satisfiable,
   so with a bounded context the outcome is (violations, gave_up) and the
   caller distinguishes "proved illegal" from "could not decide". *)
let violations_of ?ctx ~stop_early prog spec deps =
  let m = Spec.coords_dim spec in
  let violations = ref [] in
  let gave_up = ref None in
  (try
     List.iter
       (fun (d : Dep.t) ->
         List.iter
           (fun ps ->
             let dim = S.dim ps.ps_system in
             let src_base = ps.ps_src_base and dst_base = ps.ps_dst_base in
             let violated_at k =
               (* zd_j = zs_j for j < k, and zd_k < zs_k *)
               List.init k (fun j ->
                   C.eq_of (A.var dim (dst_base + j)) (A.var dim (src_base + j)))
               @ [ C.lt_of (A.var dim (dst_base + k)) (A.var dim (src_base + k)) ]
             in
             for k = 0 to m - 1 do
               if
                 not
                   (List.exists (fun v -> v.dep == d && v.level = k) !violations)
               then
                 match
                   Omega.decide ?ctx (S.add_list ps.ps_system (violated_at k))
                 with
                 | Omega.Sat ->
                   violations := { dep = d; level = k } :: !violations;
                   if stop_early then raise Stop
                 | Omega.Unsat -> ()
                 | Omega.Unknown reason ->
                   (* undecided is not a proof of violation; remember that the
                      verdict is degraded and move on *)
                   if !gave_up = None then gave_up := Some reason
             done)
           (block_pair_systems prog spec d))
       deps
   with Stop -> ());
  (List.rev !violations, !gave_up)

let rec check_deps ?ctx prog spec deps =
  (* Fast path (Section 6 of the paper): a product of shackles that are each
     legal by themselves is always legal.  Check factors individually first;
     only a product with an illegal factor needs the full lexicographic
     test, because an outer factor can carry the dependence that troubles an
     inner one.  With a caching [ctx] this path is also where the memo
     table earns its keep: products share factors, so their per-factor
     systems repeat across candidates. *)
  if List.length spec > 1
     && List.for_all (fun f -> check_deps ?ctx prog [ f ] deps = Legal) spec
  then Legal
  else
    match violations_of ?ctx ~stop_early:false prog spec deps with
    | [], None -> Legal
    | [], Some reason -> Unknown reason
    | vs, _ -> Illegal vs

(* Three-valued yes/no with precomputed dependences: [Illegal] only on a
   proved violation, [Unknown] when the budget ran out before all systems
   were refuted.  Stops at the first proved violation (so the witness list
   holds exactly the one that stopped the scan); budget-exhausted systems
   are cheap by definition (they gave up), so the scan continues past them
   looking for a definite answer. *)
let rec probe_deps ?ctx prog spec deps : Verdict.t =
  if List.length spec > 1
     && List.for_all (fun f -> probe_deps ?ctx prog [ f ] deps = Legal) spec
  then Legal
  else
    match violations_of ?ctx ~stop_early:true prog spec deps with
    | (_ :: _ as vs), _ -> Illegal vs
    | [], Some reason -> Unknown reason
    | [], None -> Legal

(* The conservative boolean collapse: only a shackle with every violation
   system *refuted* counts as legal, so [Unknown -> false] — a degraded
   verdict can reject a legal shackle but never admit an illegal one. *)
let is_legal_deps ?ctx prog spec deps =
  Verdict.is_legal (probe_deps ?ctx prog spec deps)

let check ?params ?ctx prog spec =
  check_deps ?ctx prog spec (Dep.analyze ?params ?ctx prog)

let is_legal ?params ?ctx prog spec =
  is_legal_deps ?ctx prog spec (Dep.analyze ?params ?ctx prog)

let enumerate_choices prog ~array =
  let stmts = Ast.statements prog in
  let refs_of (s : Ast.stmt) =
    let all = s.lhs :: Fexpr.reads s.rhs in
    let on_array =
      List.filter (fun (r : Fexpr.ref_) -> String.equal r.array array) all
    in
    List.fold_left
      (fun acc r ->
        if List.exists (Fexpr.ref_equal r) acc then acc else acc @ [ r ])
      [] on_array
  in
  List.fold_left
    (fun partials (_, s) ->
      let opts = refs_of s in
      List.concat_map
        (fun partial -> List.map (fun r -> partial @ [ (s.Ast.label, r) ]) opts)
        partials)
    [ [] ] stmts

let pp_verdict = Verdict.pp
