(** Automatic derivation of data shackles — the search procedure sketched
    in Section 8 ("implement a search method that enumerates over plausible
    data shackles, evaluates each one and picks the best"):

    - candidates are built from every way of choosing one reference to a
      blocked array per statement (Section 6.1's enumeration),
    - illegal candidates are discarded with the Theorem 1 test,
    - products of legal factors (always legal, Section 6) are formed until
      every reference is constrained, using Theorem 2 both as the stopping
      rule ("no benefit in extending the product") and as the ranking
      signal,
    - ties can be broken by actually simulating the generated code.

    Orientation and traversal order follow the paper's defaults: axis
    aligned cutting planes, top-to-bottom / left-to-right. *)

type candidate = {
  spec : Spec.t;
  fully_constrained : bool;
  factors : int;
}

val default_arrays : Loopir.Ast.program -> string list
(** Rank-2 arrays referenced by every statement — exactly those that can be
    shackled with [Blocking.blocks_2d] without dummy references.  The
    default candidate-array set for {!search} and the autotuner. *)

val singles :
  Loopir.Ast.program ->
  deps:Dependence.Dep.t list ->
  array:string ->
  size:int ->
  Spec.t list
(** All legal single-factor shackles of [array] with square [size] blocks.
    Empty when some statement has no reference to [array] (add a dummy
    reference by hand in that case, Section 5.3). *)

val search :
  ?arrays:string list ->
  Loopir.Ast.program ->
  size:int ->
  candidate list
(** Legal single factors over the given arrays (default: every array that
    appears in all statements) plus all pairwise products; sorted with
    fully-constrained candidates first, then fewer factors.  Every returned
    spec is legal. *)

val best :
  ?arrays:string list ->
  Loopir.Ast.program ->
  size:int ->
  Spec.t option
(** The head of [search], if any candidate exists. *)

val rank : candidates:candidate list -> cost:(Spec.t -> float) -> (candidate * float) list
(** Sort candidates by a caller-supplied cost (cheapest first) — in
    practice the simulated cycle count of the generated code; see
    [Experiments.Autotune]. *)
