module Dep = Dependence.Dep

type witness = { dep : Dep.t; level : int }

type t = Legal | Illegal of witness list | Unknown of string

let is_legal = function Legal -> true | Illegal _ | Unknown _ -> false

let to_string = function
  | Legal -> "legal"
  | Illegal _ -> "illegal"
  | Unknown reason -> "unknown:" ^ reason

let of_string s =
  let unknown_prefix = "unknown" in
  let plen = String.length unknown_prefix in
  if String.equal s "legal" then Ok Legal
  else if String.equal s "illegal" then Ok (Illegal [])
  else if String.equal s unknown_prefix then Ok (Unknown "")
  else if
    String.length s > plen
    && String.equal (String.sub s 0 (plen + 1)) (unknown_prefix ^ ":")
  then Ok (Unknown (String.sub s (plen + 1) (String.length s - plen - 1)))
  else Error (Printf.sprintf "not a verdict: %S" s)

let pp fmt = function
  | Legal -> Format.pp_print_string fmt "legal"
  | Unknown reason ->
    Format.fprintf fmt "unknown (solver gave up: %s) — treated as illegal"
      reason
  | Illegal vs ->
    Format.fprintf fmt "@[<v>illegal (%d violations):@,%a@]" (List.length vs)
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt v ->
           Format.fprintf fmt "  level %d: %a" v.level Dep.pp v.dep))
      vs
