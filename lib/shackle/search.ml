module Ast = Loopir.Ast
module Fexpr = Loopir.Fexpr
module Dep = Dependence.Dep

type candidate = {
  spec : Spec.t;
  fully_constrained : bool;
  factors : int;
}

let singles prog ~deps ~array ~size =
  let blocking = Blocking.blocks_2d ~array ~size in
  Legality.enumerate_choices prog ~array
  |> List.filter_map (fun choices ->
         let spec = [ Spec.factor blocking choices ] in
         match Legality.check_deps prog spec deps with
         | Legality.Legal -> Some spec
         | Legality.Illegal _ | Legality.Unknown _ -> None)

(* Arrays referenced by every statement can be blocked without dummy
   references. *)
let default_arrays prog =
  let stmts = Ast.statements prog in
  let arrays_of (s : Ast.stmt) =
    List.sort_uniq String.compare
      (List.map
         (fun (r : Fexpr.ref_) -> r.array)
         (s.lhs :: Fexpr.reads s.rhs))
  in
  match stmts with
  | [] -> []
  | (_, s0) :: rest ->
    List.filter
      (fun a ->
        List.for_all (fun (_, s) -> List.mem a (arrays_of s)) rest
        (* rank-2 arrays only: blocks_2d *)
        && (match
              List.find_opt
                (fun (d : Ast.array_decl) -> String.equal d.a_name a)
                prog.arrays
            with
           | Some d -> List.length d.extents = 2
           | None -> false))
      (arrays_of s0)

let search ?arrays prog ~size =
  let arrays = match arrays with Some a -> a | None -> default_arrays prog in
  let deps = Dep.analyze prog in
  let legal_singles =
    List.concat_map (fun array -> singles prog ~deps ~array ~size) arrays
  in
  let mk spec =
    { spec;
      fully_constrained = Span.fully_constrained prog spec;
      factors = List.length spec }
  in
  (* products of two legal factors are legal (Section 6); only keep pairs
     that improve on both factors by fully constraining the references *)
  let products =
    List.concat_map
      (fun s1 ->
        List.filter_map
          (fun s2 ->
            if s1 == s2 then None
            else begin
              let p = Spec.product s1 s2 in
              if Span.fully_constrained prog p then Some (mk p) else None
            end)
          legal_singles)
      legal_singles
  in
  let all = List.map mk legal_singles @ products in
  let score c = ((if c.fully_constrained then 0 else 1), c.factors) in
  List.stable_sort (fun a b -> compare (score a) (score b)) all

let best ?arrays prog ~size =
  match search ?arrays prog ~size with [] -> None | c :: _ -> Some c.spec

let rank ~candidates ~cost =
  List.map (fun c -> (c, cost c.spec)) candidates
  |> List.stable_sort (fun (_, a) (_, b) -> Float.compare a b)
