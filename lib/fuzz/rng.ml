(* Splitmix64 (Steele, Lea, Flood 2014): a 64-bit state advanced by a Weyl
   increment and finalized with two xor-shift-multiplies.  Fast, passes
   BigCrush, and — unlike [Random] — identical on every platform and OCaml
   version, which is what makes "reproduce with --seed K" a real promise. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.mul (Int64.of_int seed) 0x2545F4914F6CDD1DL }

let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = Int64.logxor (next t) 0xD1B54A32D192ED03L }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* The modulo bias over 2^63 is far below anything a fuzzer can notice. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.equal (Int64.logand (next t) 1L) 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))
