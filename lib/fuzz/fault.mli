(** Deterministic fault injection for campaign supervision testing.

    A plan maps seeds to faults; the driver consults it at fixed points, so
    an injected run is exactly reproducible from the plan text (which the
    repro command embeds via [--inject]).  Three fault shapes cover the
    three degradation paths: a crash exercises per-task failure capture, a
    delay (combined with [--timeout-ms]) exercises cooperative timeout, and
    fuel starvation exercises three-valued solver degradation. *)

type action =
  | Crash  (** raise {!Injected} before the seed's oracle runs *)
  | Delay_ms of int  (** sleep this long before the seed's oracle runs *)
  | Starve of int
      (** force zero solver fuel from this 0-based query index on (wired to
          [Omega.Ctx.create ~starve_after]) *)

type plan

exception Injected of int
(** Carried by an injected crash; the payload is the seed. *)

val none : plan

val is_none : plan -> bool

val parse : string -> (plan, string) result
(** Grammar: comma-separated [crash:SEED], [delay:SEED:MS], [starve:SEED:K].
    The empty string is {!none}. *)

val to_string : plan -> string
(** Canonical text accepted by {!parse} (round-trips). *)

val actions : plan -> seed:int -> action list

val restrict : plan -> seed:int -> plan
(** The sub-plan with only this seed's faults — what a single-seed repro
    command needs to pass to [--inject]. *)

val is_faulty : plan -> seed:int -> bool
(** True when the plan injects anything at this seed — such a seed's
    failure row is expected, and does not fail an injected campaign. *)

val apply_pre : plan -> seed:int -> unit
(** Run the pre-oracle faults for this seed: sleep every [Delay_ms], then
    raise {!Injected} if a [Crash] is planned. *)

val starve_for : plan -> seed:int -> int option
(** The seed's [Starve] threshold, if any. *)
