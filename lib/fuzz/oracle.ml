module Ast = Loopir.Ast
module Dep = Dependence.Dep
module Spec = Shackle.Spec
module Verdict = Shackle.Verdict
module Blocking = Shackle.Blocking
module Search = Shackle.Search
module Verify = Exec.Verify
module Store = Exec.Store
module Model = Machine.Model

type kind =
  | Roundtrip
  | Legality
  | Codegen
  | Replay
  | Tune
  | Par
  | Wire
  | Stage
  | Bound
  | Crash
  | Timeout

type failure = { kind : kind; detail : string; spec_text : string option }

type hooks = {
  legality : Pipeline.t -> Spec.t -> deps:Dep.t list -> Verdict.t;
}

let default_hooks =
  { legality = (fun pipe spec ~deps -> Pipeline.probe_deps pipe spec ~deps) }

let always_legal_hooks = { legality = (fun _ _ ~deps:_ -> Verdict.Legal) }

(* Solver bounds for one oracle run, carried into the pipeline's context:
   [fuel]/[starve_after] map onto the context budget, [token] becomes its
   cooperative cancel hook (and is polled between phases, so an expired
   task bails out promptly with [Runner.Token.Expired]). *)
type budget = {
  fuel : int option;
  starve_after : int option;
  token : Runner.Token.t option;
}

let no_budget = { fuel = None; starve_after = None; token = None }

let solver_of_budget b =
  Polyhedra.Omega.Ctx.create ~cache:true ?fuel:b.fuel
    ?starve_after:b.starve_after
    ?cancel:
      (match b.token with
      | None -> None
      | Some t -> Some (fun () -> Runner.Token.cancelled t))
    ()

type config = {
  ns : int list;
  verify_ns : int list;
  block_sizes : int list;
  max_specs : int;
}

let quick = { ns = [ 2; 3 ]; verify_ns = [ 3; 4 ]; block_sizes = [ 2 ]; max_specs = 12 }

let thorough =
  { ns = [ 2; 3; 4 ]; verify_ns = [ 3; 5 ]; block_sizes = [ 2; 3 ]; max_specs = 32 }

type stats = {
  specs : int;
  legal_specs : int;
  verified : int;
  skipped : int;
  tune_checked : int;
  par_checked : int;
  wire_checked : int;
  chaos_checked : int;
  stage_checked : int;
  bound_checked : int;
  gave_up : int;
}

let zero_stats =
  { specs = 0;
    legal_specs = 0;
    verified = 0;
    skipped = 0;
    tune_checked = 0;
    par_checked = 0;
    wire_checked = 0;
    chaos_checked = 0;
    stage_checked = 0;
    bound_checked = 0;
    gave_up = 0 }

let add_stats a b =
  { specs = a.specs + b.specs;
    legal_specs = a.legal_specs + b.legal_specs;
    verified = a.verified + b.verified;
    skipped = a.skipped + b.skipped;
    tune_checked = a.tune_checked + b.tune_checked;
    par_checked = a.par_checked + b.par_checked;
    wire_checked = a.wire_checked + b.wire_checked;
    chaos_checked = a.chaos_checked + b.chaos_checked;
    stage_checked = a.stage_checked + b.stage_checked;
    bound_checked = a.bound_checked + b.bound_checked;
    gave_up = a.gave_up + b.gave_up }

let kind_string = function
  | Roundtrip -> "roundtrip"
  | Legality -> "legality"
  | Codegen -> "codegen"
  | Replay -> "replay"
  | Tune -> "tune"
  | Par -> "par"
  | Wire -> "wire"
  | Stage -> "stage"
  | Bound -> "bound"
  | Crash -> "crash"
  | Timeout -> "timeout"

let kind_of_string = function
  | "roundtrip" -> Some Roundtrip
  | "legality" -> Some Legality
  | "codegen" -> Some Codegen
  | "replay" -> Some Replay
  | "tune" -> Some Tune
  | "par" -> Some Par
  | "wire" -> Some Wire
  | "stage" -> Some Stage
  | "bound" -> Some Bound
  | "crash" -> Some Crash
  | "timeout" -> Some Timeout
  | _ -> None

exception Fail of failure

let fail ?spec_text kind detail = raise (Fail { kind; detail; spec_text })

(* Deterministic pseudo-random initial data: positive, bounded away from
   zero, different per array and per element.  Both programs of a
   verification pair use the same init, so only the identity of the function
   matters, not its distribution. *)
let init name idx =
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 131) + Char.code c) land 0xFFFFF) name;
  Array.iter (fun i -> h := ((!h * 131) + i + 7) land 0xFFFFF) idx;
  0.25 +. (float_of_int (!h mod 101) /. 101.0)

let first_line_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | x :: xs, y :: ys when String.equal x y -> go (i + 1) (xs, ys)
    | x :: _, y :: _ -> Printf.sprintf "line %d: %S vs %S" i x y
    | x :: _, [] -> Printf.sprintf "line %d: %S vs end of text" i x
    | [], y :: _ -> Printf.sprintf "line %d: end of text vs %S" i y
    | [], [] -> "texts equal"
  in
  go 1 (la, lb)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take (n - 1) xs

let enumerate cfg pipe =
  let prog = Pipeline.program pipe in
  let specs =
    List.concat_map
      (fun array ->
        let choices = Pipeline.choices pipe ~array in
        List.concat_map
          (fun size ->
            List.concat_map
              (fun blocking ->
                List.map (fun ch -> [ Spec.factor blocking ch ]) choices)
              [ Blocking.blocks_2d ~array ~size;
                Blocking.blocks_2d_colmajor ~array ~size ])
          cfg.block_sizes)
      (Search.default_arrays prog)
  in
  take cfg.max_specs specs

(* 4th oracle layer: record/replay cache simulation vs the direct
   per-access callback path.  A tiny chunk size forces many flush
   boundaries, and every (machine x quality) pair is replayed from ONE
   recording — both the stored-trace [consume] path and the streaming
   [stream] tee must reproduce the direct [simulate] result exactly
   (structural equality: every counter, level stat, and the closed-form
   cycle/MFlops floats). *)
let variants =
  [ (Model.sp2_like, Model.untuned);
    (Model.sp2_like, Model.tuned);
    (Model.two_level, Model.untuned);
    (Model.two_level, Model.tuned) ]

let check_replay ?spec_text prog ~n =
  let params = [ ("N", n) ] in
  let failf fmt =
    Printf.ksprintf (fun detail -> fail ?spec_text Replay detail) fmt
  in
  let result_string r = Format.asprintf "%a" Model.pp_result r in
  let direct =
    List.map
      (fun (machine, quality) ->
        Model.simulate ~machine ~quality prog ~params ~init)
      variants
  in
  let recording =
    try Model.record ~chunk_words:64 prog ~params ~init
    with e -> failf "Model.record raised %s at N=%d" (Printexc.to_string e) n
  in
  List.iter2
    (fun (machine, quality) want ->
      let got = Model.consume ~machine ~quality recording in
      if got <> want then
        failf
          "consume(record) diverges from direct simulation at N=%d on %s/%s:\n\
           direct: %s\nreplay: %s"
          n machine.Model.m_name quality.Model.q_name (result_string want)
          (result_string got))
    variants direct;
  let streamed = Model.stream ~chunk_words:64 prog ~params ~init variants in
  List.iter2
    (fun ((machine, quality), want) got ->
      if got <> want then
        failf
          "streaming tee diverges from direct simulation at N=%d on %s/%s:\n\
           direct: %s\nstream: %s"
          n machine.Model.m_name quality.Model.q_name (result_string want)
          (result_string got))
    (List.combine variants direct)
    streamed

(* Bit-level store comparison shared by the par and stage layers: Int64
   bit patterns, so -0.0 vs 0.0 and NaN payloads count as divergence. *)
let stores_diverge a b =
  let arrs s =
    List.sort (fun (x : Store.arr) y -> compare x.Store.name y.Store.name)
      (Store.arrays s)
  in
  List.exists2
    (fun (x : Store.arr) (y : Store.arr) ->
      x.Store.name <> y.Store.name
      || Array.length x.Store.data <> Array.length y.Store.data
      ||
      let diverged = ref false in
      Array.iteri
        (fun i v ->
          if Int64.bits_of_float v <> Int64.bits_of_float y.Store.data.(i)
          then diverged := true)
        x.Store.data;
      !diverged)
    (arrs a) (arrs b)

(* 8th oracle layer: per-size specialization vs the symbolic program.
   [Loopir.Stages.specialize] substitutes the size parameters and re-runs
   the simplification stages; every stage's obligation is trace
   preservation, so the two end-to-end executions must agree bit for bit:
   stores as Int64 bit patterns, flop counts exactly, and the recorded
   access trace word for word including chunk accounting (a tiny chunk
   size forces many flush boundaries). *)
let check_stage ?spec_text prog ~ns =
  let failf fmt =
    Printf.ksprintf (fun detail -> fail ?spec_text Stage detail) fmt
  in
  List.iter
    (fun n ->
      let params = [ ("N", n) ] in
      let specialized =
        try Loopir.Stages.specialize ~params prog
        with e ->
          failf "Stages.specialize raised %s at N=%d" (Printexc.to_string e) n
      in
      let execute label p =
        let r = Trace.create_recorder ~chunk_words:64 ~keep:true () in
        match Verify.run_program ~sink:(Trace.Record r) p ~params ~init with
        | store, flops -> (store, flops, Trace.finish r)
        | exception e ->
          failf "%s program raised %s at N=%d" label (Printexc.to_string e) n
      in
      let store_s, flops_s, trace_s = execute "symbolic" prog in
      let store_z, flops_z, trace_z = execute "specialized" specialized in
      if stores_diverge store_s store_z then
        failf "specialized store diverges from symbolic at N=%d" n;
      if flops_z <> flops_s then
        failf "specialized flop count %d <> symbolic %d at N=%d" flops_z
          flops_s n;
      if not (Trace.equal trace_z trace_s) then
        failf
          "specialized trace diverges from symbolic at N=%d (%d vs %d \
           accesses)"
          n (Trace.length trace_z) (Trace.length trace_s);
      if
        Trace.num_chunks trace_z <> Trace.num_chunks trace_s
        || Trace.bytes trace_z <> Trace.bytes trace_s
      then
        failf
          "specialized trace accounting diverges at N=%d: %d chunks/%d \
           bytes vs %d chunks/%d bytes"
          n (Trace.num_chunks trace_z) (Trace.bytes trace_z)
          (Trace.num_chunks trace_s) (Trace.bytes trace_s))
    ns;
  List.length ns

(* 9th oracle layer: analytic communication lower bounds vs the cache
   simulator.  The {!Bounds} analysis is sound for any execution order
   (and, given a spec, any order consistent with the spec's block
   partition), so its per-level miss bound must never exceed the
   simulated miss count of an actual execution — here the original
   program, and below the generated code of the first legal blocked
   variant, across every (machine x quality) pair.  Programs outside
   the affine class the analysis covers are skipped, not failed. *)
let bound_levels (machine : Model.t) =
  match machine.Model.levels with
  | [] -> None
  | l0 :: _ ->
    let elem = machine.Model.elem_bytes in
    let line_elems =
      max 1 (l0.Model.l_cache.Machine.Cache.line_bytes / elem)
    in
    Some
      (Bounds.levels_of ~line_elems
         (List.map
            (fun (l : Model.level_spec) ->
              (l.Model.l_name, l.Model.l_cache.Machine.Cache.size_bytes / elem))
            machine.Model.levels))

let check_bound ?spec_text ?spec ~sim_prog prog ~n =
  let params = [ ("N", n) ] in
  match Bounds.analyze ?spec ~params prog with
  | exception (Loopir.Domain.Not_affine _ | Failure _) -> 0
  | t ->
    let failf fmt =
      Printf.ksprintf (fun detail -> fail ?spec_text Bound detail) fmt
    in
    List.iter
      (fun (machine, quality) ->
        match bound_levels machine with
        | None -> ()
        | Some levels ->
          let r = Model.simulate ~machine ~quality sim_prog ~params ~init in
          List.iter2
            (fun lv (st : Model.level_stat) ->
              let b = Bounds.misses t lv in
              if st.Model.s_misses < b then
                failf
                  "analytic bound says >= %d misses at %s of %s/%s, but the \
                   simulator counted %d at N=%d"
                  b lv.Bounds.lv_name machine.Model.m_name
                  quality.Model.q_name st.Model.s_misses n)
            levels r.Model.r_levels)
      variants;
    List.length variants

(* 6th oracle layer: parallel block execution vs sequential.  One
   sequential execution ([Pipeline.record_full]) provides the reference
   store, trace and flop count; the scheduler then executes the same
   variant's block-task DAG over 1, 2 and 3 workers.  Everything is
   compared at the bit level: stores word for word (Int64 bit patterns,
   so -0.0 vs 0.0 and NaN payloads count as divergence), the merged trace
   word for word including chunk accounting, and the flop count.  The
   shared-L2 multicore replay must also be a pure function of the plan —
   identical across worker counts.  A tiny chunk size forces many
   per-task recorder flushes through the deterministic merge. *)
let check_par ?spec_text pipe ~spec ~n ~domains_list =
  let params = [ ("N", n) ] in
  let failf fmt =
    Printf.ksprintf (fun detail -> fail ?spec_text Par detail) fmt
  in
  let seq_rec, seq_store =
    Pipeline.record_full ~chunk_words:64 ?spec pipe ~params ~init
  in
  let plan =
    try Sched.plan pipe ~spec ~params
    with e -> failf "Sched.plan raised %s at N=%d" (Printexc.to_string e) n
  in
  let smp_reference = ref None in
  List.iter
    (fun domains ->
      let recording, res =
        try Sched.record ~domains ~chunk_words:64 plan ~init
        with e ->
          failf "Sched.record raised %s at N=%d over %d domains"
            (Printexc.to_string e) n domains
      in
      if stores_diverge seq_store res.Sched.x_store then
        failf
          "parallel store diverges from sequential at N=%d over %d domains \
           (%d tasks, %s mode)"
          n domains (Sched.tasks plan)
          (Sched.mode_string (Sched.mode plan));
      if recording.Model.rec_flops <> seq_rec.Model.rec_flops then
        failf "parallel flop count %d <> sequential %d at N=%d over %d domains"
          recording.Model.rec_flops seq_rec.Model.rec_flops n domains;
      let tp = recording.Model.rec_trace and ts = seq_rec.Model.rec_trace in
      if not (Trace.equal tp ts) then
        failf
          "merged parallel trace diverges from sequential at N=%d over %d \
           domains (%d vs %d accesses)"
          n domains (Trace.length tp) (Trace.length ts);
      if
        Trace.num_chunks tp <> Trace.num_chunks ts
        || Trace.bytes tp <> Trace.bytes ts
      then
        failf
          "merged trace accounting diverges at N=%d over %d domains: %d \
           chunks/%d bytes vs %d chunks/%d bytes"
          n domains (Trace.num_chunks tp) (Trace.bytes tp)
          (Trace.num_chunks ts) (Trace.bytes ts);
      let smp = Sched.smp ~cores:2 plan res in
      match !smp_reference with
      | None -> smp_reference := Some (domains, smp)
      | Some (d0, smp0) ->
        if smp <> smp0 then
          failf
            "shared-L2 multicore replay differs between %d and %d domains at \
             N=%d"
            d0 domains n)
    domains_list;
  List.length domains_list

let check_exn hooks ~tune ~par ~wire ~stage ~bound ~budget cfg prog =
  let poll () = Option.iter Runner.Token.check budget.token in
  (* 1. the printed text is a fixpoint of print-parse-print — the parse
     goes through the Pipeline facade, which also gives us the memoizing
     solver context every later layer charges its Omega queries to; the
     context carries this run's budget, so every legality query below is
     bounded and cancellable *)
  let s = Ast.program_to_string prog in
  let pipe =
    match Pipeline.parse ~solver:(solver_of_budget budget) s with
    | Ok pipe -> pipe
    | Error msg -> fail Roundtrip (Printf.sprintf "parse error at %s" msg)
  in
  let s' = Ast.program_to_string (Pipeline.program pipe) in
  if not (String.equal s s') then
    fail Roundtrip ("print-parse-print is not a fixpoint: " ^ first_line_diff s s');
  let prog = Pipeline.program pipe in
  let deps_sym = Pipeline.deps pipe in
  let deps_n =
    List.map (fun n -> (n, Pipeline.deps_at pipe ~params:[ ("N", n) ])) cfg.ns
  in
  let baselines = Hashtbl.create 4 in
  let baseline n =
    match Hashtbl.find_opt baselines n with
    | Some b -> b
    | None ->
      let store, _ = Pipeline.run pipe ~params:[ ("N", n) ] ~init in
      let maxabs =
        List.fold_left
          (fun m (a : Store.arr) ->
            Array.fold_left (fun m x -> Float.max m (Float.abs x)) m a.Store.data)
          0.0 (Store.arrays store)
      in
      Hashtbl.add baselines n (store, maxabs);
      (store, maxabs)
  in
  (* 4. record/replay equivalence on the original program, plus (below)
     the first legal blocked variant — once each, at the smallest
     verification size, to bound the per-program cost *)
  let replay_n = List.hd cfg.verify_ns in
  check_replay prog ~n:replay_n;
  let replayed_blocked = ref false in
  let stats = ref zero_stats in
  (* 6. parallel execution equivalence (opt-in): on the original program
     here, and on the first legal blocked variant below — once each, like
     the replay layer, to bound the per-program cost *)
  let par_domains = [ 1; 2; 3 ] in
  if par then begin
    let k = check_par pipe ~spec:None ~n:replay_n ~domains_list:par_domains in
    stats := { !stats with par_checked = !stats.par_checked + k }
  end;
  (* 8. specialization equivalence (opt-in): on the original program here,
     and on the first legal blocked variant below — the blocked one is
     where specialization actually simplifies (block bounds, min/max
     envelopes, degenerate loops), so it carries the real weight *)
  if stage then begin
    let k = check_stage prog ~ns:cfg.verify_ns in
    stats := { !stats with stage_checked = !stats.stage_checked + k }
  end;
  (* 9. analytic-bound layer (opt-in): the order-free communication lower
     bound must not exceed simulated misses — on the original program
     here, and on the first legal blocked variant below, where the
     windowed per-spec bound engages *)
  if bound then begin
    let k = check_bound ~sim_prog:prog prog ~n:replay_n in
    stats := { !stats with bound_checked = !stats.bound_checked + k }
  end;
  let check_spec spec =
    let st = lazy (Format.asprintf "%a" Spec.pp spec) in
    let failf ?(with_spec = true) kind fmt =
      Printf.ksprintf
        (fun detail ->
          fail ?spec_text:(if with_spec then Some (Lazy.force st) else None) kind detail)
        fmt
    in
    poll ();
    stats := { !stats with specs = !stats.specs + 1 };
    (* 2. legality: symbolic and per-N verdicts vs exhaustive enumeration.
       An [Unknown] verdict is a budget artifact, not a bug: it is counted
       in [gave_up], excluded from the differential comparison (a starved
       checker is allowed to reject anything), and treated as illegal
       downstream — the conservative collapse. *)
    let record_gave_up () =
      stats := { !stats with gave_up = !stats.gave_up + 1 }
    in
    let sym = hooks.legality pipe spec ~deps:deps_sym in
    (match sym with
    | Verdict.Unknown _ -> record_gave_up ()
    | Verdict.Legal | Verdict.Illegal _ -> ());
    List.iter
      (fun (n, dn) ->
        let brute = Brute.first_violation prog spec ~params:[ ("N", n) ] in
        (match hooks.legality pipe spec ~deps:dn with
        | Verdict.Unknown _ -> record_gave_up ()
        | Verdict.Legal -> (
          match brute with
          | Some (src, dst) ->
            failf Legality
              "checker says legal at N=%d, but [%s] then [%s] touch the same element with block order inverted"
              n (Brute.access_string src) (Brute.access_string dst)
          | None -> ())
        | Verdict.Illegal _ ->
          if brute = None then
            failf Legality
              "checker says illegal at N=%d, but exhaustive enumeration finds no violated pair"
              n);
        match brute with
        | Some (src, dst) when Verdict.is_legal sym ->
          failf Legality
            "symbolic verdict is legal, but at N=%d [%s] then [%s] invert the block order"
            n (Brute.access_string src) (Brute.access_string dst)
        | _ -> ())
      deps_n;
    (* 3. codegen: legal specs must preserve the computed store *)
    if Verdict.is_legal sym then begin
      stats := { !stats with legal_specs = !stats.legal_specs + 1 };
      let blocked =
        try Pipeline.codegen pipe spec
        with e -> failf Codegen "Pipeline.codegen raised %s" (Printexc.to_string e)
      in
      if not !replayed_blocked then begin
        replayed_blocked := true;
        check_replay ~spec_text:(Lazy.force st) blocked ~n:replay_n;
        if par then begin
          let k =
            check_par ~spec_text:(Lazy.force st) pipe ~spec:(Some spec)
              ~n:replay_n ~domains_list:par_domains
          in
          stats := { !stats with par_checked = !stats.par_checked + k }
        end;
        if stage then begin
          let k =
            check_stage ~spec_text:(Lazy.force st) blocked ~ns:cfg.verify_ns
          in
          stats := { !stats with stage_checked = !stats.stage_checked + k }
        end;
        if bound then begin
          let k =
            check_bound ~spec_text:(Lazy.force st) ~spec ~sim_prog:blocked
              prog ~n:replay_n
          in
          stats := { !stats with bound_checked = !stats.bound_checked + k }
        end
      end;
      List.iter
        (fun n ->
          let base, maxabs = baseline n in
          if (not (Float.is_finite maxabs)) || maxabs > 1e12 then
            stats := { !stats with skipped = !stats.skipped + 1 }
          else begin
            let blk, _ =
              try Verify.run_program blocked ~params:[ ("N", n) ] ~init
              with e ->
                failf Codegen "blocked program raised %s at N=%d"
                  (Printexc.to_string e) n
            in
            let diff = Store.max_abs_diff base blk in
            let tol = 1e-7 *. (1.0 +. maxabs) in
            if not (diff <= tol) then
              failf Codegen
                "blocked program differs from original at N=%d: max |diff| = %g (tol %g)"
                n diff tol;
            stats := { !stats with verified = !stats.verified + 1 }
          end)
        cfg.verify_ns;
      true
    end
    else false
  in
  let specs = enumerate cfg pipe in
  let legal = List.filter check_spec specs in
  (* a two-factor product exercises lexicographic concatenation of block
     coordinate vectors (Section 6 of the paper) *)
  (match legal with
  | s1 :: s2 :: _ -> ignore (check_spec (Spec.product s1 s2))
  | _ -> ());
  (* 5. tuner layer (opt-in): the memoized and cache-less solver contexts
     must agree on every legality verdict of the program's spec lattice.
     Run unbudgeted: the consistency property only holds for exact
     verdicts, and a starved run would compare two artifacts. *)
  if tune && budget.fuel = None && budget.starve_after = None then begin
    poll ();
    match Tune.consistency_step ~sizes:cfg.block_sizes ~max_specs:8 prog with
    | Ok n -> stats := { !stats with tune_checked = !stats.tune_checked + n }
    | Error msg -> fail Tune msg
  end;
  (* 7. wire-protocol layer (opt-in): a seeded mutation storm against an
     in-process daemon serving this very program — the session must stay
     total, structured and deterministic whatever bytes arrive.  The
     storm seed derives from the program text, so a seed's storm is
     reproducible without threading campaign state here. *)
  if wire then begin
    poll ();
    let storm_seed = Hashtbl.hash s in
    match Wire.storm ~seed:storm_seed prog with
    | Ok (n, chaos) ->
      stats :=
        { !stats with
          wire_checked = !stats.wire_checked + n;
          chaos_checked = !stats.chaos_checked + chaos }
    | Error msg -> fail Wire msg
  end;
  Ok !stats

let check ?(hooks = default_hooks) ?(tune = false) ?(par = false)
    ?(wire = false) ?(stage = false) ?(bound = false) ?(budget = no_budget)
    cfg prog =
  try check_exn hooks ~tune ~par ~wire ~stage ~bound ~budget cfg prog with
  | Fail f -> Error f
  | Runner.Token.Expired ->
    (* not a verdict on the program: the supervisor converts this into the
       task's [Timed_out] outcome *)
    raise Runner.Token.Expired
  | e ->
    Error
      { kind = Crash; detail = Printexc.to_string e; spec_text = None }
