(** A tiny deterministic pseudo-random stream (splitmix64).

    The fuzzer must be reproducible from a single integer seed across runs,
    machines and domain counts, so it cannot use [Random] (whose state is
    global and whose sequence is not part of any compatibility promise).
    Every generator takes an explicit stream and mutates it. *)

type t

val create : int -> t
(** A fresh stream from a seed.  Equal seeds give equal streams. *)

val copy : t -> t

val split : t -> t
(** An independent stream derived from (and advancing) this one. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)
