(** Campaign driver: generate, check, shrink and report over a seed range.

    One seed is one self-contained unit of work (its own {!Rng} stream, its
    own program, its own oracle run), so seeds fan out over
    {!Runner.map_outcomes} and the report is identical for any domain
    count.  Supervision means one pathological seed — a crash, a hang past
    [timeout_ms], a starved solver — becomes a structured failure row while
    the campaign completes; an optional append-only checkpoint file makes a
    killed campaign resumable with a byte-identical final report. *)

type failure_report = {
  seed : int;
  kind : Oracle.kind;
  detail : string;
  spec_text : string option;
  program_text : string;  (** the minimized program, ready to paste; [""]
                              for crash/timeout rows, which have none *)
  original_stmts : int;
  minimized_stmts : int;
  injected : bool;
      (** true when the fault plan targets this seed — an expected failure
          that does not make the campaign itself a failure *)
  repro : string;
      (** full single-seed repro command, including [--timeout-ms],
          [--fuel] and [--inject] when active *)
}

type report = {
  first_seed : int;
  seeds : int;
  quick : bool;
  timeout_ms : int option;
  fuel : int option;
  inject : string;  (** canonical fault-plan text ([""] when none) *)
  stats : Oracle.stats;
  failures : failure_report list;  (** in seed order *)
}

val run_seed :
  ?hooks:Oracle.hooks ->
  ?tune:bool ->
  ?par:bool ->
  ?wire:bool ->
  ?stage:bool ->
  ?bound:bool ->
  ?timeout_ms:int ->
  ?fuel:int ->
  ?inject:Fault.plan ->
  ?token:Runner.Token.t ->
  config:Oracle.config ->
  quick:bool ->
  int ->
  (Oracle.stats, failure_report) result
(** Generate the program for one seed, apply the seed's pre-oracle faults,
    run the (budgeted) oracle, and on failure shrink greedily while the
    same failure kind reproduces.  Raises {!Fault.Injected} for an injected
    crash and [Runner.Token.Expired] for an expired token — the supervisor
    in {!run} converts both into failure rows.  [timeout_ms] only labels
    the repro command; the deadline itself lives on [token]. *)

val run :
  ?hooks:Oracle.hooks ->
  ?tune:bool ->
  ?par:bool ->
  ?wire:bool ->
  ?stage:bool ->
  ?bound:bool ->
  ?domains:int ->
  ?timeout_ms:int ->
  ?fuel:int ->
  ?retries:int ->
  ?inject:Fault.plan ->
  ?checkpoint:string ->
  ?resume:bool ->
  quick:bool ->
  seeds:int ->
  first_seed:int ->
  unit ->
  report
(** Run the campaign to completion, whatever individual seeds do:
    - a seed whose task raises becomes a [Crash] failure row (backtrace in
      [detail]; [injected = true] if it was the fault plan's crash);
    - a seed that exceeds [timeout_ms] (cooperatively, via the token wired
      into the solver) becomes a [Timeout] row;
    - transient crashes are retried [retries] times (default 0) with
      jittered backoff before the row is written.

    With [checkpoint], every completed seed is appended (and batch-fsynced)
    to the file; with [resume:true], seeds already in a checkpoint written
    by the {e same} campaign configuration are skipped, and the final
    report is byte-identical to an uninterrupted run.  A checkpoint from a
    different configuration raises {!Resume_mismatch}. *)

exception Resume_mismatch of string

val unexpected_failures : report -> failure_report list
(** Failures not explained by the fault plan — the ones that should fail
    CI.  An injected campaign with only injected rows is a success. *)

val summary : report -> string
(** One line, e.g.
    [200 seeds: 512 specs (200 legal), 380 runs verified, 2 skipped, 0 failures]. *)

val failure_to_string : failure_report -> string
(** Multi-line self-contained repro: seed, reproduction command line, the
    failing spec and the minimized program. *)

val to_json : report -> Observe.Json.t
(** Schema [fuzz-report/7] (adds the bound layer's [bound_checked]
    counter). *)
