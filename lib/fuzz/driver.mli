(** Campaign driver: generate, check, shrink and report over a seed range.

    One seed is one self-contained unit of work (its own {!Rng} stream, its
    own program, its own oracle run), so seeds fan out over domains with
    {!Runner.map} and the report is identical for any domain count. *)

type failure_report = {
  seed : int;
  kind : Oracle.kind;
  detail : string;
  spec_text : string option;
  program_text : string;  (** the minimized program, ready to paste *)
  original_stmts : int;
  minimized_stmts : int;
}

type report = {
  first_seed : int;
  seeds : int;
  quick : bool;
  stats : Oracle.stats;
  failures : failure_report list;  (** in seed order *)
}

val run_seed :
  ?hooks:Oracle.hooks ->
  ?tune:bool ->
  config:Oracle.config ->
  quick:bool ->
  int ->
  (Oracle.stats, failure_report) result
(** Generate the program for one seed, run the oracle, and on failure shrink
    greedily while the same failure kind reproduces.  [tune] (default false)
    enables the {!Tune.consistency_step} oracle layer. *)

val run :
  ?hooks:Oracle.hooks ->
  ?tune:bool ->
  ?domains:int ->
  quick:bool ->
  seeds:int ->
  first_seed:int ->
  unit ->
  report

val summary : report -> string
(** One line, e.g.
    [200 seeds: 512 specs (200 legal), 380 runs verified, 2 skipped, 0 failures]. *)

val failure_to_string : failure_report -> string
(** Multi-line self-contained repro: seed, reproduction command line, the
    failing spec and the minimized program. *)

val to_json : report -> Observe.Json.t
