module Ast = Loopir.Ast
module Json = Observe.Json

type failure_report = {
  seed : int;
  kind : Oracle.kind;
  detail : string;
  spec_text : string option;
  program_text : string;
  original_stmts : int;
  minimized_stmts : int;
  injected : bool;
  repro : string;
}

type report = {
  first_seed : int;
  seeds : int;
  quick : bool;
  timeout_ms : int option;
  fuel : int option;
  inject : string;
  stats : Oracle.stats;
  failures : failure_report list;
}

let stmt_count prog = List.length (Ast.statements prog)

(* The full command line that re-runs exactly one seed under the same
   budget and fault plan — every flag that can change the outcome is
   spelled out, so a report line is copy-paste reproducible. *)
let repro_command ~quick ~tune ~par ~wire ~stage ~bound ~timeout_ms ~fuel
    ~inject seed =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "fuzz --seed %d --seeds 1" seed);
  if quick then Buffer.add_string buf " --quick";
  if tune then Buffer.add_string buf " --tune";
  if par then Buffer.add_string buf " --par-exec";
  if wire then Buffer.add_string buf " --wire";
  if stage then Buffer.add_string buf " --stage";
  if bound then Buffer.add_string buf " --bound";
  (match timeout_ms with
  | Some t -> Buffer.add_string buf (Printf.sprintf " --timeout-ms %d" t)
  | None -> ());
  (match fuel with
  | Some f -> Buffer.add_string buf (Printf.sprintf " --fuel %d" f)
  | None -> ());
  (let sub = Fault.restrict inject ~seed in
   if not (Fault.is_none sub) then
     Buffer.add_string buf
       (Printf.sprintf " --inject %s" (Fault.to_string sub)));
  Buffer.contents buf

let run_seed ?(hooks = Oracle.default_hooks) ?(tune = false) ?(par = false)
    ?(wire = false) ?(stage = false) ?(bound = false) ?timeout_ms ?fuel
    ?(inject = Fault.none) ?token ~config ~quick seed =
  let repro =
    repro_command ~quick ~tune ~par ~wire ~stage ~bound ~timeout_ms ~fuel
      ~inject seed
  in
  (* pre-oracle faults first: an injected crash/delay hits before any real
     work, like a worker dying on startup would *)
  Fault.apply_pre inject ~seed;
  Option.iter Runner.Token.check token;
  let budget =
    { Oracle.fuel; starve_after = Fault.starve_for inject ~seed; token }
  in
  let prog = Gen.program ~quick (Rng.create seed) in
  match
    Oracle.check ~hooks ~tune ~par ~wire ~stage ~bound ~budget config prog
  with
  | Ok stats -> Ok stats
  | Error f ->
    let keep p =
      match
        Oracle.check ~hooks ~tune ~par ~wire ~stage ~bound ~budget config p
      with
      | Error f' -> f'.Oracle.kind = f.Oracle.kind
      | Ok _ -> false
    in
    let minimized = Shrink.minimize ~keep prog in
    (* re-run for the failure details of the minimized program *)
    let f =
      match
        Oracle.check ~hooks ~tune ~par ~wire ~stage ~bound ~budget config
          minimized
      with
      | Error f' -> f'
      | Ok _ -> f (* cannot happen: [keep] accepted [minimized] *)
    in
    Error
      { seed;
        kind = f.Oracle.kind;
        detail = f.Oracle.detail;
        spec_text = f.Oracle.spec_text;
        program_text = Ast.program_to_string minimized;
        original_stmts = stmt_count prog;
        minimized_stmts = stmt_count minimized;
        injected = false;
        repro }

(* ------------------------------------------------------------------ *)
(* Checkpoint file                                                     *)
(* ------------------------------------------------------------------ *)

(* Append-only JSONL: the first line states the campaign configuration (a
   resume refuses a file written by a different one), then one line per
   completed seed, written as tasks finish and fsynced every
   [checkpoint_batch] rows.  A kill can truncate the last line mid-write;
   the loader drops any unparseable line, which merely re-runs that seed. *)

let checkpoint_batch = 8

type row = Row_ok of Oracle.stats | Row_fail of failure_report

let stats_to_json (s : Oracle.stats) =
  Json.Obj
    [ ("specs", Json.Int s.Oracle.specs);
      ("legal_specs", Json.Int s.Oracle.legal_specs);
      ("verified", Json.Int s.Oracle.verified);
      ("skipped", Json.Int s.Oracle.skipped);
      ("tune_checked", Json.Int s.Oracle.tune_checked);
      ("par_checked", Json.Int s.Oracle.par_checked);
      ("wire_checked", Json.Int s.Oracle.wire_checked);
      ("chaos_checked", Json.Int s.Oracle.chaos_checked);
      ("stage_checked", Json.Int s.Oracle.stage_checked);
      ("bound_checked", Json.Int s.Oracle.bound_checked);
      ("gave_up", Json.Int s.Oracle.gave_up) ]

let stats_of_json j =
  let int k =
    match Json.member k j with Some (Json.Int i) -> Some i | _ -> None
  in
  (* lenient: absent means 0, so checkpoints written before the par, wire,
     stage and bound layers existed still parse *)
  let par_checked = Option.value ~default:0 (int "par_checked") in
  let wire_checked = Option.value ~default:0 (int "wire_checked") in
  let chaos_checked = Option.value ~default:0 (int "chaos_checked") in
  let stage_checked = Option.value ~default:0 (int "stage_checked") in
  let bound_checked = Option.value ~default:0 (int "bound_checked") in
  match
    ( int "specs", int "legal_specs", int "verified", int "skipped",
      int "tune_checked", int "gave_up" )
  with
  | Some specs, Some legal_specs, Some verified, Some skipped,
    Some tune_checked, Some gave_up ->
    Some
      { Oracle.specs; legal_specs; verified; skipped; tune_checked;
        par_checked; wire_checked; chaos_checked; stage_checked;
        bound_checked; gave_up }
  | _ -> None

let failure_to_json f =
  Json.Obj
    [ ("seed", Json.Int f.seed);
      ("kind", Json.Str (Oracle.kind_string f.kind));
      ("detail", Json.Str f.detail);
      ("spec", match f.spec_text with Some s -> Json.Str s | None -> Json.Null);
      ("program", Json.Str f.program_text);
      ("original_stmts", Json.Int f.original_stmts);
      ("minimized_stmts", Json.Int f.minimized_stmts);
      ("injected", Json.Bool f.injected);
      ("repro", Json.Str f.repro) ]

let failure_of_json j =
  let int k =
    match Json.member k j with Some (Json.Int i) -> Some i | _ -> None
  in
  let str k =
    match Json.member k j with Some (Json.Str s) -> Some s | _ -> None
  in
  let bool k =
    match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None
  in
  let spec_text =
    match Json.member "spec" j with Some (Json.Str s) -> Some s | _ -> None
  in
  match
    ( int "seed",
      Option.bind (str "kind") Oracle.kind_of_string,
      str "detail", str "program", int "original_stmts",
      int "minimized_stmts", bool "injected", str "repro" )
  with
  | Some seed, Some kind, Some detail, Some program_text, Some original_stmts,
    Some minimized_stmts, Some injected, Some repro ->
    Some
      { seed; kind; detail; spec_text; program_text; original_stmts;
        minimized_stmts; injected; repro }
  | _ -> None

let row_to_json seed = function
  | Row_ok s ->
    Json.Obj
      [ ("seed", Json.Int seed);
        ("outcome", Json.Str "ok");
        ("stats", stats_to_json s) ]
  | Row_fail f ->
    Json.Obj
      [ ("seed", Json.Int seed);
        ("outcome", Json.Str "fail");
        ("failure", failure_to_json f) ]

let row_of_json j =
  match (Json.member "seed" j, Json.member "outcome" j) with
  | Some (Json.Int seed), Some (Json.Str "ok") ->
    Option.map
      (fun s -> (seed, Row_ok s))
      (Option.bind (Json.member "stats" j) stats_of_json)
  | Some (Json.Int seed), Some (Json.Str "fail") ->
    Option.map
      (fun f -> (seed, Row_fail f))
      (Option.bind (Json.member "failure" j) failure_of_json)
  | _ -> None

let opt_int = function Some i -> Json.Int i | None -> Json.Null

let meta_json ~first_seed ~seeds ~quick ~tune ~par ~wire ~stage ~bound
    ~timeout_ms ~fuel ~inject =
  Json.Obj
    [ ("schema", Json.Str "fuzz-checkpoint/1");
      ("first_seed", Json.Int first_seed);
      ("seeds", Json.Int seeds);
      ("quick", Json.Bool quick);
      ("tune", Json.Bool tune);
      ("par", Json.Bool par);
      ("wire", Json.Bool wire);
      ("stage", Json.Bool stage);
      ("bound", Json.Bool bound);
      ("timeout_ms", opt_int timeout_ms);
      ("fuel", opt_int fuel);
      ("inject", Json.Str (Fault.to_string inject)) ]

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let load_checkpoint path ~meta =
  if not (Sys.file_exists path) then Ok []
  else
    match read_lines path with
    | [] -> Ok []
    | m :: rest -> (
      match Json.of_string m with
      | Ok j when Json.equal j meta ->
        Ok
          (List.filter_map
             (fun line ->
               match Json.of_string line with
               | Ok j -> row_of_json j
               | Error _ -> None)
             rest)
      | Ok _ ->
        Error
          (path
          ^ ": checkpoint was written by a different campaign configuration")
      | Error e -> Error (Printf.sprintf "%s: unreadable checkpoint meta (%s)" path e))

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

exception Resume_mismatch of string

let run ?(hooks = Oracle.default_hooks) ?(tune = false) ?(par = false)
    ?(wire = false) ?(stage = false) ?(bound = false) ?(domains = 1)
    ?timeout_ms ?fuel ?(retries = 0) ?(inject = Fault.none) ?checkpoint
    ?(resume = false) ~quick ~seeds ~first_seed () =
  let config = if quick then Oracle.quick else Oracle.thorough in
  let seed_list = List.init seeds (fun i -> first_seed + i) in
  let meta =
    meta_json ~first_seed ~seeds ~quick ~tune ~par ~wire ~stage ~bound
      ~timeout_ms ~fuel ~inject
  in
  let completed : (int, row) Hashtbl.t = Hashtbl.create 64 in
  (match checkpoint with
  | Some path when resume -> (
    match load_checkpoint path ~meta with
    | Ok rows -> List.iter (fun (s, r) -> Hashtbl.replace completed s r) rows
    | Error msg -> raise (Resume_mismatch msg))
  | _ -> ());
  let pending_seeds =
    List.filter (fun s -> not (Hashtbl.mem completed s)) seed_list
  in
  let sink =
    match checkpoint with
    | None -> None
    | Some path ->
      let appending = resume && Sys.file_exists path in
      let oc =
        if appending then open_out_gen [ Open_append; Open_wronly ] 0o644 path
        else open_out path
      in
      if not appending then begin
        output_string oc (Json.to_string meta);
        output_char oc '\n'
      end;
      Some (ref 0, oc)
  in
  let flush_sink () =
    match sink with
    | None -> ()
    | Some (pending, oc) ->
      pending := 0;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc)
  in
  let write_row seed row =
    match sink with
    | None -> ()
    | Some (pending, oc) ->
      output_string oc (Json.to_string (row_to_json seed row));
      output_char oc '\n';
      incr pending;
      if !pending >= checkpoint_batch then flush_sink ()
  in
  let row_of_outcome seed (o : _ Runner.outcome) =
    let blank_failure kind detail injected =
      { seed; kind; detail; spec_text = None; program_text = "";
        original_stmts = 0; minimized_stmts = 0; injected;
        repro =
          repro_command ~quick ~tune ~par ~wire ~stage ~bound ~timeout_ms
            ~fuel ~inject seed }
    in
    match o with
    | Runner.Ok (Ok stats) -> Row_ok stats
    | Runner.Ok (Error f) -> Row_fail f
    | Runner.Failed (Fault.Injected _, _) ->
      Row_fail (blank_failure Oracle.Crash "injected crash (fault plan)" true)
    | Runner.Failed (e, bt) ->
      Row_fail
        (blank_failure Oracle.Crash
           (Printf.sprintf "%s\n%s" (Printexc.to_string e)
              (Printexc.raw_backtrace_to_string bt))
           false)
    | Runner.Timed_out ->
      Row_fail
        (blank_failure Oracle.Timeout
           (match timeout_ms with
           | Some t -> Printf.sprintf "no result within %d ms" t
           | None -> "cancelled")
           (Fault.is_faulty inject ~seed))
  in
  let pending_arr = Array.of_list pending_seeds in
  let outcomes =
    Runner.map_outcomes ~domains ?timeout_ms ~retries
      ~on_outcome:(fun i o ->
        let seed = pending_arr.(i) in
        write_row seed (row_of_outcome seed o))
      (fun token seed ->
        run_seed ~hooks ~tune ~par ~wire ~stage ~bound ?timeout_ms ?fuel
          ~inject ~token ~config ~quick seed)
      pending_seeds
  in
  flush_sink ();
  (match sink with None -> () | Some (_, oc) -> close_out oc);
  List.iter2
    (fun seed o -> Hashtbl.replace completed seed (row_of_outcome seed o))
    pending_seeds outcomes;
  (* fold in seed order so the final report — and its JSON — is identical
     whether the campaign ran straight through or was killed and resumed *)
  let stats, failures_rev =
    List.fold_left
      (fun (stats, fails) seed ->
        match Hashtbl.find_opt completed seed with
        | Some (Row_ok s) -> (Oracle.add_stats stats s, fails)
        | Some (Row_fail f) -> (stats, f :: fails)
        | None -> (stats, fails))
      (Oracle.zero_stats, []) seed_list
  in
  { first_seed;
    seeds;
    quick;
    timeout_ms;
    fuel;
    inject = Fault.to_string inject;
    stats;
    failures = List.rev failures_rev }

let unexpected_failures r = List.filter (fun f -> not f.injected) r.failures

let summary r =
  let tune =
    if r.stats.Oracle.tune_checked > 0 then
      Printf.sprintf ", %d tune-checked" r.stats.Oracle.tune_checked
    else ""
  in
  let par =
    if r.stats.Oracle.par_checked > 0 then
      Printf.sprintf ", %d par-checked" r.stats.Oracle.par_checked
    else ""
  in
  let wire =
    if r.stats.Oracle.wire_checked > 0 then
      Printf.sprintf ", %d wire-checked" r.stats.Oracle.wire_checked
    else ""
  in
  let chaos =
    if r.stats.Oracle.chaos_checked > 0 then
      Printf.sprintf ", %d chaos-checked" r.stats.Oracle.chaos_checked
    else ""
  in
  let stage =
    if r.stats.Oracle.stage_checked > 0 then
      Printf.sprintf ", %d stage-checked" r.stats.Oracle.stage_checked
    else ""
  in
  let bound =
    if r.stats.Oracle.bound_checked > 0 then
      Printf.sprintf ", %d bound-checked" r.stats.Oracle.bound_checked
    else ""
  in
  let gave_up =
    if r.stats.Oracle.gave_up > 0 then
      Printf.sprintf ", %d gave-up" r.stats.Oracle.gave_up
    else ""
  in
  let injected =
    let n = List.length r.failures - List.length (unexpected_failures r) in
    if n > 0 then Printf.sprintf " (%d injected)" n else ""
  in
  Printf.sprintf
    "%d seeds: %d specs (%d legal), %d runs verified, %d skipped%s%s%s%s%s%s%s, %d failures%s"
    r.seeds r.stats.Oracle.specs r.stats.Oracle.legal_specs
    r.stats.Oracle.verified r.stats.Oracle.skipped tune par wire chaos stage
    bound gave_up (List.length r.failures) injected

let indent text =
  String.split_on_char '\n' text
  |> List.map (fun l -> if String.equal l "" then l else "    " ^ l)
  |> String.concat "\n"

let failure_to_string f =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%s (%s) at seed %d\n"
       (if f.injected then "INJECTED FAILURE" else "FAILURE")
       (Oracle.kind_string f.kind) f.seed);
  Buffer.add_string buf (Printf.sprintf "  reproduce: %s\n" f.repro);
  Buffer.add_string buf (Printf.sprintf "  %s\n" f.detail);
  (match f.spec_text with
  | Some s -> Buffer.add_string buf (Printf.sprintf "  spec: %s\n" s)
  | None -> ());
  if not (String.equal f.program_text "") then
    Buffer.add_string buf
      (Printf.sprintf "  minimized program (%d statements, down from %d):\n%s"
         f.minimized_stmts f.original_stmts
         (indent f.program_text));
  Buffer.contents buf

let to_json r =
  Json.Obj
    [ ("schema", Json.Str "fuzz-report/8");
      ("first_seed", Json.Int r.first_seed);
      ("seeds", Json.Int r.seeds);
      ("quick", Json.Bool r.quick);
      ("timeout_ms", opt_int r.timeout_ms);
      ("fuel", opt_int r.fuel);
      ("inject", Json.Str r.inject);
      ("specs", Json.Int r.stats.Oracle.specs);
      ("legal_specs", Json.Int r.stats.Oracle.legal_specs);
      ("verified", Json.Int r.stats.Oracle.verified);
      ("skipped", Json.Int r.stats.Oracle.skipped);
      ("tune_checked", Json.Int r.stats.Oracle.tune_checked);
      ("par_checked", Json.Int r.stats.Oracle.par_checked);
      ("wire_checked", Json.Int r.stats.Oracle.wire_checked);
      ("chaos_checked", Json.Int r.stats.Oracle.chaos_checked);
      ("stage_checked", Json.Int r.stats.Oracle.stage_checked);
      ("bound_checked", Json.Int r.stats.Oracle.bound_checked);
      ("gave_up", Json.Int r.stats.Oracle.gave_up);
      ("failures", Json.List (List.map failure_to_json r.failures)) ]
