module Ast = Loopir.Ast
module Json = Observe.Json

type failure_report = {
  seed : int;
  kind : Oracle.kind;
  detail : string;
  spec_text : string option;
  program_text : string;
  original_stmts : int;
  minimized_stmts : int;
}

type report = {
  first_seed : int;
  seeds : int;
  quick : bool;
  stats : Oracle.stats;
  failures : failure_report list;
}

let stmt_count prog = List.length (Ast.statements prog)

let run_seed ?(hooks = Oracle.default_hooks) ?(tune = false) ~config ~quick seed =
  let prog = Gen.program ~quick (Rng.create seed) in
  match Oracle.check ~hooks ~tune config prog with
  | Ok stats -> Ok stats
  | Error f ->
    let keep p =
      match Oracle.check ~hooks ~tune config p with
      | Error f' -> f'.Oracle.kind = f.Oracle.kind
      | Ok _ -> false
    in
    let minimized = Shrink.minimize ~keep prog in
    (* re-run for the failure details of the minimized program *)
    let f =
      match Oracle.check ~hooks ~tune config minimized with
      | Error f' -> f'
      | Ok _ -> f (* cannot happen: [keep] accepted [minimized] *)
    in
    Error
      { seed;
        kind = f.Oracle.kind;
        detail = f.Oracle.detail;
        spec_text = f.Oracle.spec_text;
        program_text = Ast.program_to_string minimized;
        original_stmts = stmt_count prog;
        minimized_stmts = stmt_count minimized }

let run ?(hooks = Oracle.default_hooks) ?(tune = false) ?(domains = 1) ~quick ~seeds
    ~first_seed () =
  let config = if quick then Oracle.quick else Oracle.thorough in
  let seed_list = List.init seeds (fun i -> first_seed + i) in
  let results = Runner.map ~domains (run_seed ~hooks ~tune ~config ~quick) seed_list in
  let stats, failures =
    List.fold_left
      (fun (stats, fails) -> function
        | Ok s -> (Oracle.add_stats stats s, fails)
        | Error f -> (stats, f :: fails))
      (Oracle.zero_stats, []) results
  in
  { first_seed; seeds; quick; stats; failures = List.rev failures }

let summary r =
  let tune =
    if r.stats.Oracle.tune_checked > 0 then
      Printf.sprintf ", %d tune-checked" r.stats.Oracle.tune_checked
    else ""
  in
  Printf.sprintf "%d seeds: %d specs (%d legal), %d runs verified, %d skipped%s, %d failures"
    r.seeds r.stats.Oracle.specs r.stats.Oracle.legal_specs r.stats.Oracle.verified
    r.stats.Oracle.skipped tune (List.length r.failures)

let indent text =
  String.split_on_char '\n' text
  |> List.map (fun l -> if String.equal l "" then l else "    " ^ l)
  |> String.concat "\n"

let failure_to_string f =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "FAILURE (%s) at seed %d\n" (Oracle.kind_string f.kind) f.seed);
  Buffer.add_string buf
    (Printf.sprintf "  reproduce: fuzz --seed %d --seeds 1\n" f.seed);
  Buffer.add_string buf (Printf.sprintf "  %s\n" f.detail);
  (match f.spec_text with
  | Some s -> Buffer.add_string buf (Printf.sprintf "  spec: %s\n" s)
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "  minimized program (%d statements, down from %d):\n%s"
       f.minimized_stmts f.original_stmts
       (indent f.program_text));
  Buffer.contents buf

let to_json r =
  let failure f =
    Json.Obj
      [ ("seed", Json.Int f.seed);
        ("kind", Json.Str (Oracle.kind_string f.kind));
        ("detail", Json.Str f.detail);
        ("spec", match f.spec_text with Some s -> Json.Str s | None -> Json.Null);
        ("program", Json.Str f.program_text);
        ("original_stmts", Json.Int f.original_stmts);
        ("minimized_stmts", Json.Int f.minimized_stmts) ]
  in
  Json.Obj
    [ ("schema", Json.Str "fuzz-report/2");
      ("first_seed", Json.Int r.first_seed);
      ("seeds", Json.Int r.seeds);
      ("quick", Json.Bool r.quick);
      ("specs", Json.Int r.stats.Oracle.specs);
      ("legal_specs", Json.Int r.stats.Oracle.legal_specs);
      ("verified", Json.Int r.stats.Oracle.verified);
      ("skipped", Json.Int r.stats.Oracle.skipped);
      ("tune_checked", Json.Int r.stats.Oracle.tune_checked);
      ("failures", Json.List (List.map failure r.failures)) ]
