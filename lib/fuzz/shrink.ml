module Ast = Loopir.Ast
module E = Loopir.Expr
module F = Loopir.Fexpr

let replace_nth i x xs = List.mapi (fun j y -> if j = i then x else y) xs

let remove_nth i xs = List.filteri (fun j _ -> j <> i) xs

(* ------------------------------------------------------------------ *)
(* One-edit variants of expressions, references, statements            *)
(* ------------------------------------------------------------------ *)

let expr_variants (e : E.t) : E.t list =
  match e with
  | E.Const 1 -> []
  | E.Const _ | E.Var _ -> [ E.Const 1 ]
  | e -> E.Const 1 :: List.map (fun v -> E.Var v) (E.vars e)

let ref_variants (r : F.ref_) : F.ref_ list =
  List.concat
    (List.mapi
       (fun i e ->
         List.map (fun e' -> { r with F.idx = replace_nth i e' r.F.idx }) (expr_variants e))
       r.F.idx)

let rec fexpr_variants (e : F.t) : F.t list =
  match e with
  | F.Const _ -> []
  | F.Ref r -> List.map (fun r' -> F.Ref r') (ref_variants r)
  | F.Neg a -> a :: List.map (fun a' -> F.Neg a') (fexpr_variants a)
  | F.Sqrt a -> a :: List.map (fun a' -> F.Sqrt a') (fexpr_variants a)
  | F.Bin (op, a, b) ->
    [ a; b ]
    @ List.map (fun a' -> F.Bin (op, a', b)) (fexpr_variants a)
    @ List.map (fun b' -> F.Bin (op, a, b')) (fexpr_variants b)

let stmt_variants (s : Ast.stmt) : Ast.stmt list =
  (match s.Ast.rhs with F.Const _ -> [] | _ -> [ { s with Ast.rhs = F.Const 1.0 } ])
  @ List.map (fun rhs -> { s with Ast.rhs }) (fexpr_variants s.Ast.rhs)
  @ List.map (fun lhs -> { s with Ast.lhs }) (ref_variants s.Ast.lhs)

let loop_bound_variants (l : Ast.loop) : Ast.loop list =
  (if E.equal l.Ast.lo (E.Const 1) then [] else [ { l with Ast.lo = E.Const 1 } ])
  @ (if E.equal l.Ast.hi (E.Var "N") then [] else [ { l with Ast.hi = E.Var "N" } ])
  @ if E.equal l.Ast.hi (E.Const 2) then [] else [ { l with Ast.hi = E.Const 2 } ]

(* ------------------------------------------------------------------ *)
(* One-edit variants of forests: each variant replaces a single node   *)
(* by a forest (deletion = [], splice = the node's children)           *)
(* ------------------------------------------------------------------ *)

let rec forest_variants (ts : Ast.t list) : Ast.t list list =
  match ts with
  | [] -> []
  | t :: rest ->
    List.map (fun repl -> repl @ rest) (node_variants t)
    @ List.map (fun rest' -> t :: rest') (forest_variants rest)

and node_variants (t : Ast.t) : Ast.t list list =
  match t with
  | Ast.Stmt s -> [] :: List.map (fun s' -> [ Ast.Stmt s' ]) (stmt_variants s)
  | Ast.Loop l ->
    ([] :: [ l.Ast.body ])
    @ List.map (fun l' -> [ Ast.Loop l' ]) (loop_bound_variants l)
    @ List.map
        (fun body' -> [ Ast.Loop { l with Ast.body = body' } ])
        (forest_variants l.Ast.body)
  | Ast.If (gs, body) ->
    ([] :: [ body ])
    @ (if List.length gs <= 1 then []
       else List.mapi (fun i _ -> [ Ast.If (remove_nth i gs, body) ]) gs)
    @ List.map (fun body' -> [ Ast.If (gs, body') ]) (forest_variants body)

let rec prune (ts : Ast.t list) : Ast.t list =
  List.filter_map
    (function
      | Ast.Stmt _ as s -> Some s
      | Ast.Loop l -> (
        match prune l.Ast.body with
        | [] -> None
        | body -> Some (Ast.Loop { l with Ast.body = body }))
      | Ast.If (gs, body) -> (
        match prune body with [] -> None | body -> Some (Ast.If (gs, body))))
    ts

let variants (prog : Ast.program) : Ast.program list =
  let bodies =
    List.filter_map
      (fun body -> match prune body with [] -> None | body -> Some body)
      (forest_variants prog.Ast.body)
  in
  let structural = List.map (fun body -> { prog with Ast.body }) bodies in
  let arrays =
    if List.length prog.Ast.arrays <= 1 then []
    else
      List.mapi
        (fun i _ -> { prog with Ast.arrays = remove_nth i prog.Ast.arrays })
        prog.Ast.arrays
  in
  structural @ arrays

let minimize ?(max_checks = 500) ~keep prog =
  let checks = ref 0 in
  let try_keep p =
    if !checks >= max_checks then false
    else begin
      incr checks;
      keep p
    end
  in
  let rec go prog =
    if !checks >= max_checks then prog
    else
      match List.find_opt try_keep (variants prog) with
      | Some p -> go p
      | None -> prog
  in
  go prog
