type action = Crash | Delay_ms of int | Starve of int

type plan = (int * action) list

exception Injected of int

let none = []
let is_none p = p = []

let action_to_string seed = function
  | Crash -> Printf.sprintf "crash:%d" seed
  | Delay_ms ms -> Printf.sprintf "delay:%d:%d" seed ms
  | Starve k -> Printf.sprintf "starve:%d:%d" seed k

let to_string p =
  String.concat "," (List.map (fun (s, a) -> action_to_string s a) p)

let parse text =
  if String.trim text = "" then Ok []
  else
    let parse_one part =
      let bad () =
        Error
          (Printf.sprintf
             "bad fault %S (want crash:SEED, delay:SEED:MS or starve:SEED:K)"
             part)
      in
      let int s = int_of_string_opt (String.trim s) in
      match String.split_on_char ':' (String.trim part) with
      | [ "crash"; seed ] -> (
        match int seed with Some s -> Ok (s, Crash) | None -> bad ())
      | [ "delay"; seed; ms ] -> (
        match (int seed, int ms) with
        | Some s, Some ms when ms >= 0 -> Ok (s, Delay_ms ms)
        | _ -> bad ())
      | [ "starve"; seed; k ] -> (
        match (int seed, int k) with
        | Some s, Some k when k >= 0 -> Ok (s, Starve k)
        | _ -> bad ())
      | _ -> bad ()
    in
    List.fold_left
      (fun acc part ->
        match (acc, parse_one part) with
        | Error e, _ -> Error e
        | _, Error e -> Error e
        | Ok ps, Ok p -> Ok (ps @ [ p ]))
      (Ok [])
      (String.split_on_char ',' text)

let actions p ~seed =
  List.filter_map (fun (s, a) -> if s = seed then Some a else None) p

let restrict p ~seed = List.filter (fun (s, _) -> s = seed) p

let is_faulty p ~seed = List.exists (fun (s, _) -> s = seed) p

let apply_pre p ~seed =
  let acts = actions p ~seed in
  List.iter
    (function
      | Delay_ms ms -> Unix.sleepf (float_of_int ms /. 1000.)
      | Crash | Starve _ -> ())
    acts;
  if List.mem Crash acts then raise (Injected seed)

let starve_for p ~seed =
  List.find_map (function Starve k -> Some k | _ -> None) (actions p ~seed)
