(** Greedy structural minimization of failing programs.

    Each shrink step applies one local edit — delete a statement, splice a
    loop or guard away, pull a bound in to [1..2], collapse a subscript to
    [1] or a bare variable, or replace part of a right-hand side — then
    prunes empty containers.  {!minimize} keeps an edit whenever the
    caller's [keep] predicate still holds (typically "the oracle still
    reports the same kind of failure") and repeats until no edit survives or
    the check budget runs out.

    Edits may produce invalid programs (e.g. splicing an [if] away exposes
    an out-of-range subscript); the oracle reports those as a different
    failure kind, so [keep] rejects them and the shrinker simply moves on. *)

val variants : Loopir.Ast.program -> Loopir.Ast.program list
(** All programs reachable by one edit, pruned of empty loops and guards.
    Programs that would lose their last statement are not produced. *)

val minimize :
  ?max_checks:int ->
  keep:(Loopir.Ast.program -> bool) ->
  Loopir.Ast.program ->
  Loopir.Ast.program
(** Greedy fixpoint of [variants] under [keep].  [keep] is guaranteed to
    have accepted the result (or the input, if nothing shrank).  At most
    [max_checks] (default 500) calls to [keep] are made. *)
