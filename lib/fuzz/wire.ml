(* Wire-protocol robustness layer.  Everything runs in-process against
   Server.Daemon.Session — no socket, no domains — so a storm is cheap
   enough to run per fuzz seed and fully deterministic. *)

module Ast = Loopir.Ast
module D = Server.Daemon
module W = Server.Wire
module P = Server.Proto

let ( let* ) = Result.bind

let init name idx =
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 131) + Char.code c) land 0xFFFFF) name;
  Array.iter (fun i -> h := ((!h * 131) + i + 7) land 0xFFFFF) idx;
  0.25 +. (float_of_int (!h mod 101) /. 101.0)

(* The generated program's own single-factor lattice, named s0, s1, ... —
   the daemon under test resolves specs the way the production daemon
   resolves "matmul"/"c", but against this seed's program. *)
let resolver prog =
  let pipe = Pipeline.create prog in
  let specs_at size =
    List.concat_map
      (fun array ->
        List.map
          (fun ch ->
            [ Shackle.Spec.factor
                (Shackle.Blocking.blocks_2d ~array ~size)
                ch ])
          (Pipeline.choices pipe ~array))
      (Shackle.Search.default_arrays prog)
  in
  { D.rv_kernels = (fun () -> [ ("gen", prog) ]);
    rv_spec =
      (fun ~kernel ~spec ~size ->
        if not (String.equal kernel "gen") then None
        else if String.length spec < 2 || spec.[0] <> 's' then None
        else
          Option.bind
            (int_of_string_opt (String.sub spec 1 (String.length spec - 1)))
            (fun i -> List.nth_opt (specs_at size) i));
    rv_params = (fun ~kernel:_ ~n -> [ ("N", n) ]);
    rv_init = (fun ~kernel:_ ~n:_ -> init) }

(* ------------------------------------------------------------------ *)
(* Reply-stream validation                                             *)
(* ------------------------------------------------------------------ *)

(* Every byte a session emits must parse as complete Reply_ok/Reply_err
   frames with decodable payloads; [Ok n] counted n frames. *)
let check_reply_stream bytes =
  let rec go buf n =
    if String.length buf = 0 then Ok n
    else
      match W.decode buf with
      | W.Need_more k ->
        Error
          (Printf.sprintf
             "reply stream ends with a truncated frame (%d bytes short)" k)
      | W.Corrupt msg -> Error ("reply stream is corrupt: " ^ msg)
      | W.Got (raw, consumed) -> (
        let rest = String.sub buf consumed (String.length buf - consumed) in
        match W.opcode_of_byte raw.W.r_op with
        | Some W.Reply_ok -> (
          match P.reply_of_payload ~op:W.Reply_ok raw.W.r_payload with
          | Ok _ -> go rest (n + 1)
          | Error msg -> Error ("undecodable Reply_ok payload: " ^ msg))
        | Some W.Reply_err -> (
          match P.error_of_payload raw.W.r_payload with
          | Ok _ -> go rest (n + 1)
          | Error msg -> Error ("undecodable Reply_err payload: " ^ msg))
        | _ ->
          Error
            (Printf.sprintf "server emitted non-reply opcode 0x%02x" raw.W.r_op))
  in
  go bytes 0

(* ------------------------------------------------------------------ *)
(* Frame mutations                                                     *)
(* ------------------------------------------------------------------ *)

let valid_frames prog_text =
  [ W.encode ~op:W.Stats ~id:1 ~payload:"{}";
    W.encode ~op:W.Parse ~id:2
      ~payload:
        (P.request_to_payload (P.Parse { text = prog_text }));
    W.encode ~op:W.Parse ~id:3 ~payload:"{\"text\":\"do i = \"}";
    W.encode ~op:W.Probe ~id:4
      ~payload:
        (P.request_to_payload
           (P.Probe { kernel = "gen"; spec = "s0"; size = 3; budget_ms = None }));
    W.encode ~op:W.Legal ~id:5
      ~payload:
        (P.request_to_payload
           (P.Legal { kernel = "gen"; spec = "s1"; size = 2; budget_ms = None }));
    W.encode ~op:W.Legal ~id:6
      ~payload:
        (P.request_to_payload
           (P.Legal { kernel = "nope"; spec = "s0"; size = 4; budget_ms = None }))
  ]

let mutate rng frame =
  match Rng.int rng 7 with
  | 0 ->
    (* flip one byte anywhere *)
    let b = Bytes.of_string frame in
    Bytes.set b (Rng.int rng (Bytes.length b)) (Char.chr (Rng.int rng 256));
    Bytes.to_string b
  | 1 ->
    (* unknown opcode under intact framing *)
    let b = Bytes.of_string frame in
    Bytes.set b 4 (Char.chr (Rng.range rng 0x08 0x7f));
    Bytes.to_string b
  | 2 ->
    (* oversized length prefix *)
    let b = Bytes.of_string frame in
    Bytes.set b 9 '\xff';
    Bytes.set b 10 '\xff';
    Bytes.set b 11 '\xff';
    Bytes.to_string b
  | 3 ->
    (* truncation: mid-header or mid-payload *)
    String.sub frame 0 (Rng.int rng (String.length frame))
  | 4 ->
    (* garbage payload under a correct header *)
    let b = Bytes.of_string frame in
    for i = W.header_bytes to Bytes.length b - 1 do
      Bytes.set b i (Char.chr (Rng.int rng 256))
    done;
    Bytes.to_string b
  | 5 ->
    (* leading garbage: the magic check must trip immediately *)
    String.make (Rng.range rng 1 4) (Char.chr (Rng.int rng 256)) ^ frame
  | _ -> frame (* unmodified — the storm must not break valid traffic *)

(* ------------------------------------------------------------------ *)
(* The storm                                                           *)
(* ------------------------------------------------------------------ *)

let feed_checked session bytes =
  match D.Session.feed session bytes with
  | out, verdict -> (
    match check_reply_stream out with
    | Ok n -> Ok (n, verdict)
    | Error _ as e -> e)
  | exception exn ->
    Error ("session raised " ^ Printexc.to_string exn)

let storm ?(frames = 200) ~seed prog =
  let rng = Rng.create seed in
  let srv = D.create (resolver prog) in
  let prog_text = Ast.program_to_string prog in
  let pool = valid_frames prog_text in
  let session = ref (D.Session.create srv) in
  let checked = ref 0 in
  let rec run i =
    if i >= frames then Ok ()
    else
      let frame = mutate rng (Rng.pick rng pool) in
      (* occasionally pipeline two frames into one feed *)
      let frame =
        if Rng.int rng 5 = 0 then frame ^ Rng.pick rng pool else frame
      in
      match feed_checked !session frame with
      | Error msg -> Error (Printf.sprintf "frame %d: %s" i msg)
      | Ok (_, verdict) ->
        incr checked;
        (* a poisoned stream closes; later bytes need a fresh session *)
        (match verdict with
        | `Close -> session := D.Session.create srv
        | `Keep -> ());
        run (i + 1)
  in
  let determinism () =
    (* byte-identical requests through fresh sessions must produce
       byte-identical replies; stats is exempt (a live snapshot) *)
    let pool =
      List.filter
        (fun f -> Char.code f.[4] <> W.opcode_byte W.Stats)
        pool
    in
    let rec go = function
      | [] -> Ok ()
      | frame :: rest -> (
        let once () =
          match D.Session.feed (D.Session.create srv) frame with
          | out, _ -> Ok out
          | exception exn -> Error (Printexc.to_string exn)
        in
        match (once (), once ()) with
        | Ok a, Ok b when String.equal a b ->
          incr checked;
          go rest
        | Ok _, Ok _ ->
          Error "identical queries produced different reply bytes"
        | Error msg, _ | _, Error msg -> Error ("determinism pass: " ^ msg))
    in
    go pool
  in
  (* Chaos pass: the same frames under hostile delivery schedules drawn
     from the seed — dribbled writes (a stalling client), mid-frame
     abandonment (a disconnect), and two interleaved slow sessions.  The
     properties checked are the storm's (total, structured) plus one
     more: a reply must materialize exactly once the last byte of its
     frame arrives, never early, never corrupted by how the bytes were
     chopped. *)
  let chaos = ref 0 in
  let chaos_pass () =
    let requests =
      List.filter (fun f -> Char.code f.[4] <> W.opcode_byte W.Stats) pool
    in
    (* 1. dribble: every frame delivered in seeded 1-3 byte pieces must
       answer identically to the same frame delivered whole *)
    let rec dribble_all = function
      | [] -> Ok ()
      | frame :: rest -> (
        let whole =
          match D.Session.feed (D.Session.create srv) frame with
          | out, _ -> Ok out
          | exception exn -> Error (Printexc.to_string exn)
        in
        let dribbled =
          let s = D.Session.create srv in
          let out = Buffer.create 64 in
          let rec go off =
            if off >= String.length frame then Ok (Buffer.contents out)
            else
              let n = min (Rng.range rng 1 3) (String.length frame - off) in
              match D.Session.feed s (String.sub frame off n) with
              | piece_out, _ ->
                (* no reply bytes may appear before the frame completes *)
                if off + n < String.length frame && piece_out <> "" then
                  Error "reply emitted before the frame was complete"
                else begin
                  Buffer.add_string out piece_out;
                  go (off + n)
                end
              | exception exn -> Error (Printexc.to_string exn)
          in
          go 0
        in
        match (whole, dribbled) with
        | Ok a, Ok b when String.equal a b ->
          incr chaos;
          dribble_all rest
        | Ok _, Ok _ -> Error "dribbled delivery changed the reply bytes"
        | Error msg, _ | _, Error msg -> Error ("dribble: " ^ msg))
    in
    (* 2. mid-frame abandonment: a client hanging up mid-frame must leave
       the daemon serving fresh sessions *)
    let abandon () =
      let frame = Rng.pick rng requests in
      let keep = Rng.range rng 1 (String.length frame - 1) in
      (match D.Session.feed (D.Session.create srv) (String.sub frame 0 keep) with
      | _ -> ()
      | exception exn ->
        failwith ("abandoned session raised " ^ Printexc.to_string exn));
      (* the abandoned session is simply dropped; a fresh one must work *)
      match feed_checked (D.Session.create srv) (Rng.pick rng requests) with
      | Ok _ ->
        incr chaos;
        Ok ()
      | Error msg -> Error ("post-abandon: " ^ msg)
    in
    (* 3. interleaving: two slow sessions taking turns byte-wise; each
       reply stream must stay structured *)
    let interleave () =
      let fa = Rng.pick rng requests and fb = Rng.pick rng requests in
      let sa = D.Session.create srv and sb = D.Session.create srv in
      let oa = Buffer.create 64 and ob = Buffer.create 64 in
      let rec go i j =
        if i >= String.length fa && j >= String.length fb then Ok ()
        else begin
          let stepped_a =
            if i < String.length fa && (j >= String.length fb || Rng.int rng 2 = 0)
            then begin
              match D.Session.feed sa (String.make 1 fa.[i]) with
              | out, _ ->
                Buffer.add_string oa out;
                true
              | exception exn ->
                failwith ("interleaved session raised " ^ Printexc.to_string exn)
            end
            else false
          in
          if stepped_a then go (i + 1) j
          else begin
            match D.Session.feed sb (String.make 1 fb.[j]) with
            | out, _ ->
              Buffer.add_string ob out;
              go i (j + 1)
            | exception exn ->
              failwith ("interleaved session raised " ^ Printexc.to_string exn)
          end
        end
      in
      let* () = go 0 0 in
      let* _ = check_reply_stream (Buffer.contents oa) in
      let* _ = check_reply_stream (Buffer.contents ob) in
      incr chaos;
      Ok ()
    in
    let* () = dribble_all requests in
    let rec rounds k =
      if k = 0 then Ok ()
      else
        let* () = abandon () in
        let* () = interleave () in
        rounds (k - 1)
    in
    rounds 4
  in
  match run 0 with
  | Error _ as e -> e
  | Ok () -> (
    match determinism () with
    | Error _ as e -> e
    | Ok () -> (
      match chaos_pass () with
      | Error _ as e -> e
      | Ok () -> Ok (!checked, !chaos)
      | exception Failure msg -> Error ("chaos: " ^ msg)))
