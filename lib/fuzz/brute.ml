module Ast = Loopir.Ast
module E = Loopir.Expr
module F = Loopir.Fexpr
module S = Polyhedra.System

type access = {
  seq : int;
  stmt : Ast.stmt;
  env : (string * int) list;
  array : string;
  index : int list;
  is_write : bool;
}

let accesses (prog : Ast.program) ~params =
  let seq = ref 0 in
  let out = ref [] in
  let rec go env node =
    let lookup v = List.assoc v env in
    match node with
    | Ast.Loop l ->
      let lo = E.eval lookup l.lo and hi = E.eval lookup l.hi in
      for v = lo to hi do
        List.iter (go ((l.Ast.var, v) :: env)) l.Ast.body
      done
    | Ast.If (gs, body) ->
      if List.for_all (Ast.eval_guard lookup) gs then List.iter (go env) body
    | Ast.Stmt s ->
      let k = !seq in
      incr seq;
      let record is_write (r : F.ref_) =
        out :=
          { seq = k;
            stmt = s;
            env;
            array = r.F.array;
            index = List.map (E.eval lookup) r.F.idx;
            is_write }
          :: !out
      in
      List.iter (record false) (F.reads s.Ast.rhs);
      record true s.Ast.lhs
  in
  List.iter (go params) prog.Ast.body;
  List.rev !out

let lex_lt a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then false
    else if a.(i) < b.(i) then true
    else if a.(i) > b.(i) then false
    else go (i + 1)
  in
  go 0

let first_violation prog spec ~params =
  let cells = Hashtbl.create 256 in
  List.iter
    (fun a ->
      let key = (a.array, a.index) in
      let bv = Shackle.Spec.block_vector spec a.stmt (fun v -> List.assoc v a.env) in
      Hashtbl.replace cells key ((a, bv) :: (try Hashtbl.find cells key with Not_found -> [])))
    (accesses prog ~params);
  let result = ref None in
  Hashtbl.iter
    (fun _ touches ->
      if Option.is_none !result then begin
        (* [touches] is in reverse execution order; restore it *)
        let touches = List.rev touches in
        let rec pairs = function
          | [] -> ()
          | (src, bv_src) :: rest ->
            List.iter
              (fun (dst, bv_dst) ->
                if
                  Option.is_none !result
                  && src.seq < dst.seq
                  && (src.is_write || dst.is_write)
                  && lex_lt bv_dst bv_src
                then result := Some (src, dst))
              rest;
            if Option.is_none !result then pairs rest
        in
        pairs touches
      end)
    cells;
  !result

let legal prog spec ~params = Option.is_none (first_violation prog spec ~params)

let access_string a =
  let loop_vars =
    List.filter (fun (v, _) -> not (String.equal v "N")) (List.rev a.env)
  in
  Printf.sprintf "%s[%s] %s %s(%s) #%d" a.stmt.Ast.label
    (String.concat " " (List.map (fun (v, x) -> Printf.sprintf "%s=%d" v x) loop_vars))
    (if a.is_write then "write" else "read")
    a.array
    (String.concat ", " (List.map string_of_int a.index))
    a.seq

let feasible sys ~bound =
  let dim = S.dim sys in
  let pt = Array.make dim 0 in
  let rec go i =
    if i = dim then
      if S.satisfied_by_ints sys pt then Some (Array.copy pt) else None
    else begin
      let rec try_v v =
        if v > bound then None
        else begin
          pt.(i) <- v;
          match go (i + 1) with Some _ as r -> r | None -> try_v (v + 1)
        end
      in
      try_v (-bound)
    end
  in
  go 0
