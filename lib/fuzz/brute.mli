(** Ground truth by exhaustive enumeration.

    Everything here works by actually running things at small concrete sizes:
    interpret the program to record every array access, test shackle legality
    by checking every dependent instance pair against the block order, and
    decide constraint systems by trying every integer point of a box.  Slow
    and obviously correct — the reference the clever layers are diffed
    against. *)

type access = {
  seq : int;  (** statement-instance counter in execution order *)
  stmt : Loopir.Ast.stmt;
  env : (string * int) list;  (** parameters plus enclosing loop values *)
  array : string;
  index : int list;  (** concrete subscript values *)
  is_write : bool;
}

val accesses : Loopir.Ast.program -> params:(string * int) list -> access list
(** Interpret the program (loops, guards) and record every read and write in
    execution order.  All accesses of one statement instance share a [seq]. *)

val lex_lt : int array -> int array -> bool
(** Strict lexicographic order (over the common prefix). *)

val first_violation :
  Loopir.Ast.program ->
  Shackle.Spec.t ->
  params:(string * int) list ->
  (access * access) option
(** The definition of Theorem 1, checked literally: a pair of accesses to
    the same array element, at least one a write, from distinct statement
    instances [(src, dst)] with [src] executed first, whose block vector
    order is inverted — [block(dst) <lex block(src)].  [None] means the
    shackle is legal at these parameter values. *)

val legal :
  Loopir.Ast.program -> Shackle.Spec.t -> params:(string * int) list -> bool

val access_string : access -> string
(** One-line rendering for failure reports, e.g.
    [S2[I=1 J=3] write A(1, 3) #7]. *)

val feasible : Polyhedra.System.t -> bound:int -> int array option
(** Search the box [\[-bound, bound\]^dim] exhaustively; the first integer
    point satisfying the system, if any.  A complete decision procedure for
    systems that contain the same box (as {!Gen.system} ensures). *)
