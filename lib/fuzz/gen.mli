(** Random generation of analysable affine loop-nest programs (the paper's
    program class) and of small bounded constraint systems.

    Generated programs are valid by construction:

    - loops range inside [\[1, N\]] (possibly triangular: a bound may be an
      outer loop variable, [2], or [N - 1]),
    - subscripts are affine in the enclosing loop variables with small
      coefficients, and any subscript whose value could leave [\[1, N\]] is
      protected by an affine guard, so the interpreter never reads or
      writes out of range for any [N >= 2],
    - statement labels are [S1, S2, ...] and ids [0, 1, ...] in textual
      order, exactly what the parser reconstructs,
    - right-hand sides use only [+], [-], [*] and small positive constants,
      so results stay finite and comparisons tolerate reassociation.

    The first declared array ([A]) is always rank 2 and almost every
    statement references it, so data shackles of [A] usually exist. *)

val program : ?quick:bool -> Rng.t -> Loopir.Ast.program
(** A random program: 1-3 arrays (ranks 1-3), nests up to depth 3 (perfect
    and imperfect), triangular bounds, guards, up to 6 statements (4 with
    [~quick:true]). *)

val system : ?bound:int -> Rng.t -> dim:int -> Polyhedra.System.t
(** A random conjunction of 1-4 linear constraints with coefficients in
    [\[-3, 3\]], constants in [\[-6, 6\]] (about a quarter are equalities),
    {e plus} box bounds [-bound <= xi <= bound] for every variable —
    so brute-force enumeration over the same box is a complete decision
    procedure to compare the Omega test against.  [dim] at most 6.
    Default [bound] is 4. *)
