(** The differential oracle: one generated program in, a verdict out.

    Every phase runs through the {!Pipeline} facade, so each program is
    checked against one memoizing {!Polyhedra.Omega.Ctx} solver context —
    exactly the configuration the autotuner uses in production.

    Five layers are cross-checked against ground truth:

    - {b Roundtrip}: pretty-printing is a textual fixpoint through the
      parser ([print (parse (print p)) = print p]).
    - {b Legality}: for every enumerated shackle spec, the symbolic Omega
      verdict and the per-N verdict must agree exactly with brute-force
      enumeration of dependent instance pairs at each small N — in both
      directions (no missed violations, no phantom ones).
    - {b Codegen}: for every spec the checker calls legal, the tightened
      blocked program must compute the same store as the original at each
      verification size (up to reassociation tolerance).
    - {b Replay}: record-once/replay-many cache simulation (both the
      stored-trace [consume] path and the streaming tee, with a tiny chunk
      size to force flush boundaries) must reproduce the direct per-access
      callback simulation exactly — every counter, level stat, and cycle
      figure — across all (machine x quality) variants, on the original
      program and on the first legal blocked variant.
    - {b Tune} (opt-in via [~tune:true]): {!Tune.consistency_step} — the
      memoized and cache-less solver contexts must return identical
      legality verdicts over the program's single-factor spec lattice.
    - {b Wire} (opt-in via [~wire:true]): {!Wire.storm} — an in-process
      shackled daemon serving this program must stay total, structured
      and deterministic under a seeded storm of mutated protocol frames.
    - {b Par} (opt-in via [~par:true]): the dependence-aware block
      scheduler ({!Sched}) executed over 1, 2 and 3 worker domains must
      be bit-identical to one sequential execution — stores compared as
      Int64 bit patterns, the deterministically merged trace word for
      word including chunk accounting, flop counts exactly, and the
      shared-L2 multicore replay identical across worker counts — on the
      original program and on the first legal blocked variant.
    - {b Stage} (opt-in via [~stage:true]): per-size specialization
      ({!Loopir.Stages.specialize}) must be trace-preserving — at every
      verification size, executing the specialized program end to end
      must agree bit for bit with the symbolic one (stores as Int64 bit
      patterns, flop counts, and the recorded access trace including
      chunk accounting) — on the original program and on the first legal
      blocked variant, where the simplification stages do real work.
    - {b Bound} (opt-in via [~bound:true]): the {!Bounds} analytic
      communication lower bound must be sound against the simulator —
      per cache level, on every (machine x quality) variant, the bound
      never exceeds the simulated miss count — on the original program
      (order-free argument) and on the first legal blocked variant
      (windowed per-spec argument).  Non-affine programs are skipped.

    The legality check goes through a {e hook} so tests can inject a broken
    checker and watch the fuzzer catch and shrink it. *)

type kind =
  | Roundtrip
  | Legality
  | Codegen
  | Replay
  | Tune
  | Par
  | Wire
  | Stage
  | Bound
  | Crash
  | Timeout

type failure = {
  kind : kind;
  detail : string;  (** human-readable description of the mismatch *)
  spec_text : string option;  (** the failing spec, when one is involved *)
}

type hooks = {
  legality :
    Pipeline.t ->
    Shackle.Spec.t ->
    deps:Dependence.Dep.t list ->
    Shackle.Verdict.t;
}
(** Three-valued so a budgeted run can tell the oracle it {e gave up}: an
    [Unknown] verdict is excluded from the differential comparison (it is
    an artifact of the budget, not a checker bug) and counted in
    [stats.gave_up]. *)

val default_hooks : hooks
(** [Pipeline.probe_deps] — the real checker, charged to the pipeline's
    memoizing solver context. *)

val always_legal_hooks : hooks
(** A deliberately broken checker that calls everything legal; exists so the
    test suite can demonstrate that the oracle catches legality bugs and the
    shrinker minimizes them. *)

(** Solver bounds for one oracle run: [fuel]/[starve_after] configure the
    pipeline's solver context, [token] is wired in as its cooperative
    cancel hook and polled between phases (an expired token aborts the run
    with [Runner.Token.Expired]). *)
type budget = {
  fuel : int option;
  starve_after : int option;
  token : Runner.Token.t option;
}

val no_budget : budget

type config = {
  ns : int list;  (** N values for the brute-force legality cross-check *)
  verify_ns : int list;  (** N values for execution equivalence *)
  block_sizes : int list;  (** block sizes to instantiate per array *)
  max_specs : int;  (** cap on specs checked per program *)
}

val quick : config
val thorough : config

type stats = {
  specs : int;
  legal_specs : int;
  verified : int;  (** (spec, N) executions compared *)
  skipped : int;  (** verifications skipped for overflow safety *)
  tune_checked : int;  (** specs compared by the tune consistency layer *)
  par_checked : int;
      (** (variant, worker-count) parallel executions compared bit-exactly
          against sequential by the par layer *)
  wire_checked : int;
      (** protocol frames checked by the wire layer (storm + determinism
          pass) *)
  chaos_checked : int;
      (** hostile delivery schedules survived by the wire layer's chaos
          pass (dribbled frames, mid-frame abandonment, interleaved
          sessions) *)
  stage_checked : int;
      (** (program, N) specialization executions compared bit-exactly
          against symbolic by the stage layer *)
  bound_checked : int;
      (** (program, machine x quality) simulations whose per-level miss
          counts were checked against the analytic lower bound *)
  gave_up : int;
      (** legality verdicts that ran out of budget ([Unknown]) and were
          excluded from the differential comparison — non-zero only on
          budgeted runs *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val check :
  ?hooks:hooks ->
  ?tune:bool ->
  ?par:bool ->
  ?wire:bool ->
  ?stage:bool ->
  ?bound:bool ->
  ?budget:budget ->
  config ->
  Loopir.Ast.program ->
  (stats, failure) result
(** Never raises except [Runner.Token.Expired] (an expired budget token is
    the supervisor's business, not a verdict on the program): any other
    exception from any layer is reported as a {!Crash} failure.  [tune]
    (default false) enables the {!Tune.consistency_step} layer; it is
    skipped on fuel-bounded runs, whose verdicts are not exact.  [par]
    (default false) enables the parallel-execution equivalence layer; it
    runs even under a budget, because a starved scheduler plan degrades to
    the sequential chain, which must still be bit-equivalent.  [wire]
    (default false) enables the protocol-robustness layer; it runs even
    under a budget — a starved daemon may answer [unknown:...], but it
    must do so in well-formed frames.  [stage] (default false) enables the
    specialization-equivalence layer; it runs even under a budget, because
    specialization is solver-free.  [bound] (default false) enables the
    analytic-lower-bound soundness layer; it too runs under a budget,
    because the bound computation never consults the solver. *)

val kind_string : kind -> string

val kind_of_string : string -> kind option
(** Inverse of {!kind_string} (checkpoint rows round-trip through it). *)
