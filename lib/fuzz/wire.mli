(** The wire-protocol oracle layer: hammer an in-process shackled daemon
    ({!Server.Daemon.Session}, no socket) with seeded mutations of valid
    shackled/1 frames and check the three robustness properties the
    protocol promises:

    - {b total}: the session never raises, whatever bytes arrive —
      bit-flipped headers, truncated frames, oversized length prefixes,
      unknown opcodes, garbage payloads, pipelined frame pairs;
    - {b structured}: every byte the session emits parses back as a
      well-formed [Reply_ok] or [Reply_err] frame whose payload decodes
      ({!Server.Proto}), with no trailing garbage — errors are replies,
      not noise;
    - {b deterministic}: byte-identical requests through fresh sessions
      produce byte-identical replies (the property the in-flight batcher
      and the disk cache rely on).

    A chaos pass then re-delivers the valid frames under hostile
    schedules drawn from the same seed — dribbled 1–3-byte writes
    (stalls / partial writes), mid-frame abandonment (disconnects), and
    two byte-interleaved sessions — asserting no reply appears before
    its frame completes, delivery chopping never changes reply bytes,
    and the daemon keeps serving after every abandonment.

    The daemon under test serves the generated program itself (kernel
    ["gen"], specs ["s0"], ["s1"], ... = its single-factor shackle
    lattice), so the storm exercises real parse/probe/legal handlers, not
    stubs. *)

val storm :
  ?frames:int -> seed:int -> Loopir.Ast.program -> (int * int, string) result
(** Run the mutation storm ([frames] mutated frames, default 200), the
    determinism pass, and the chaos pass.  [Ok (checked, chaos_checked)]
    counts ordinary frames checked and chaos schedules survived;
    [Error] describes the first property violation. *)
