module Ast = Loopir.Ast
module E = Loopir.Expr
module F = Loopir.Fexpr
module A = Polyhedra.Affine
module C = Polyhedra.Constr
module S = Polyhedra.System

type profile = { max_stmts : int; max_depth : int; max_arrays : int }

let profile ~quick =
  if quick then { max_stmts = 4; max_depth = 3; max_arrays = 2 }
  else { max_stmts = 6; max_depth = 3; max_arrays = 3 }

let guard_equal (g1 : Ast.guard) (g2 : Ast.guard) =
  E.equal g1.g_lhs g2.g_lhs && g1.g_rel = g2.g_rel && E.equal g1.g_rhs g2.g_rhs

let dedup_guards gs =
  List.fold_left
    (fun acc g -> if List.exists (guard_equal g) acc then acc else acc @ [ g ])
    [] gs

(* ------------------------------------------------------------------ *)
(* Subscripts                                                          *)
(* ------------------------------------------------------------------ *)

(* A subscript together with the guards needed to keep its value inside
   [1, N] whenever every loop variable is in [1, N] and N >= 2.  Guards are
   conservative (computed for the full [1, N] variable box, not the actual
   loop bounds), so any later narrowing of the loops keeps the program
   valid — the shrinker relies on this. *)
let subscript rng vars =
  let lo_guard e = Ast.guard e Ast.Ge (E.Const 1) in
  let hi_guard e = Ast.guard e Ast.Le (E.Var "N") in
  let case = Rng.int rng 100 in
  if vars = [] || case < 10 then (E.Const (Rng.range rng 1 2), [])
  else if case < 50 then (E.Var (Rng.pick rng vars), [])
  else if case < 65 then begin
    (* v + d, d = -1 or +1 *)
    let v = E.Var (Rng.pick rng vars) in
    if Rng.bool rng then
      let e = E.simplify (E.Add (v, E.Const 1)) in
      (e, [ hi_guard e ])
    else
      let e = E.simplify (E.Sub (v, E.Const 1)) in
      (e, [ lo_guard e ])
  end
  else if case < 75 then begin
    (* 2v + c, c in {-1, 0, 1}: minimum 2 + c >= 1, maximum needs a guard *)
    let c = Rng.range rng (-1) 1 in
    let e = E.simplify (E.Add (E.Mul (2, E.Var (Rng.pick rng vars)), E.Const c)) in
    (e, [ hi_guard e ])
  end
  else if case < 85 && List.length vars >= 2 then begin
    (* v1 + v2 + c, c in {-1, 0}: minimum 2 + c >= 1, maximum 2N + c > N *)
    let i = Rng.int rng (List.length vars) in
    let j = (i + 1 + Rng.int rng (List.length vars - 1)) mod List.length vars in
    let c = Rng.range rng (-1) 0 in
    let e =
      E.simplify
        (E.Add (E.Add (E.Var (List.nth vars i), E.Var (List.nth vars j)), E.Const c))
    in
    (e, [ hi_guard e ])
  end
  else if case < 92 && List.length vars >= 2 then begin
    (* v1 - v2 + c, c in {1, 2}: both ends can escape when c = 2 *)
    let i = Rng.int rng (List.length vars) in
    let j = (i + 1 + Rng.int rng (List.length vars - 1)) mod List.length vars in
    let c = Rng.range rng 1 2 in
    let e =
      E.simplify
        (E.Add (E.Sub (E.Var (List.nth vars i), E.Var (List.nth vars j)), E.Const c))
    in
    (e, lo_guard e :: (if c > 1 then [ hi_guard e ] else []))
  end
  else begin
    (* N - v + c, c in {0, 1}: reversal patterns (trisolve-style) *)
    let c = Rng.range rng 0 1 in
    let e =
      E.simplify (E.Add (E.Sub (E.Var "N", E.Var (Rng.pick rng vars)), E.Const c))
    in
    (e, if c = 0 then [ lo_guard e ] else [])
  end

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let program ?(quick = false) rng =
  let prof = profile ~quick in
  let stmt_budget = ref (Rng.range rng 1 prof.max_stmts) in
  let sid = ref 0 in
  let n_arrays = Rng.range rng 1 prof.max_arrays in
  let arrays =
    ("A", 2)
    :: (if n_arrays >= 2 then [ ("B", Rng.pick rng [ 1; 2; 2; 3 ]) ] else [])
    @ (if n_arrays >= 3 then [ ("C", Rng.pick rng [ 1; 2 ]) ] else [])
  in
  let ref_for vars (name, rank) =
    let subs = List.init rank (fun _ -> subscript rng vars) in
    (F.ref_ name (List.map fst subs), List.concat_map snd subs)
  in
  let mentions_primary (lhs : F.ref_) rhs =
    String.equal lhs.F.array "A"
    || List.exists (fun (r : F.ref_) -> String.equal r.array "A") (F.reads rhs)
  in
  let gen_stmt vars =
    decr stmt_budget;
    let id = !sid in
    incr sid;
    let label = "S" ^ string_of_int (id + 1) in
    let lhs_arr =
      if Rng.int rng 100 < 65 then ("A", 2) else Rng.pick rng arrays
    in
    let lhs, g_lhs = ref_for vars lhs_arr in
    let guards = ref g_lhs in
    let fconst () = F.Const (Rng.pick rng [ 0.25; 0.5; 1.0; 1.5; 2.0 ]) in
    let mk_ref () =
      let r, g = ref_for vars (Rng.pick rng arrays) in
      guards := !guards @ g;
      F.Ref r
    in
    let term () =
      match Rng.int rng 10 with
      | 0 | 1 -> fconst ()
      | 2 | 3 -> F.Bin (F.Fmul, fconst (), mk_ref ())
      | 4 -> F.Bin (F.Fmul, mk_ref (), mk_ref ())
      | _ -> mk_ref ()
    in
    let addsub () = if Rng.int rng 4 = 0 then F.Fsub else F.Fadd in
    let rhs =
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 | 4 ->
        (* accumulation: reads its own left-hand side *)
        F.Bin (addsub (), F.Ref lhs, term ())
      | 5 | 6 | 7 -> term ()
      | _ -> F.Bin (addsub (), term (), term ())
    in
    let rhs =
      (* keep shackles of A available: nearly every statement touches A *)
      if mentions_primary lhs rhs || Rng.int rng 100 >= 90 then rhs
      else begin
        let r, g = ref_for vars ("A", 2) in
        guards := !guards @ g;
        F.Bin (F.Fadd, rhs, F.Ref r)
      end
    in
    (* occasionally narrow the domain with a gratuitous guard *)
    if vars <> [] && Rng.int rng 100 < 15 then begin
      let v = E.Var (Rng.pick rng vars) in
      let extra =
        match Rng.int rng 5 with
        | 0 -> Ast.guard v Ast.Le (E.simplify (E.Sub (E.Var "N", E.Const 1)))
        | 1 -> Ast.guard v Ast.Ge (E.Const 2)
        | 2 -> Ast.guard v Ast.Lt (E.Var "N")
        | 3 when List.length vars >= 2 ->
          Ast.guard v Ast.Le (E.Var (Rng.pick rng vars))
        | _ -> Ast.guard v Ast.Eq (E.Const 2)
      in
      guards := !guards @ [ extra ]
    end;
    let s = Ast.Stmt { Ast.id; label; lhs; rhs } in
    match dedup_guards !guards with [] -> s | gs -> Ast.If (gs, [ s ])
  in
  let gen_bound_lo vars =
    match Rng.int rng 10 with
    | 0 | 1 when vars <> [] -> E.Var (Rng.pick rng vars)
    | 2 -> E.Const 2
    | _ -> E.Const 1
  and gen_bound_hi vars =
    match Rng.int rng 10 with
    | 0 | 1 when vars <> [] -> E.Var (Rng.pick rng vars)
    | 2 -> E.Sub (E.Var "N", E.Const 1)
    | 3 -> E.Const 2
    | _ -> E.Var "N"
  in
  let rec items depth vars avail =
    if !stmt_budget <= 0 then []
    else begin
      let n_items = Rng.range rng 1 2 in
      List.concat
        (List.init n_items (fun _ ->
             if !stmt_budget <= 0 then []
             else if
               depth < prof.max_depth && avail <> []
               && Rng.int rng 100 < (if depth = 0 then 85 else 45)
             then [ gen_loop depth vars avail ]
             else [ gen_stmt vars ]))
    end
  and gen_loop depth vars avail =
    let var = List.hd avail in
    let lo = gen_bound_lo vars and hi = gen_bound_hi vars in
    let inner = vars @ [ var ] in
    let body =
      match items (depth + 1) inner (List.tl avail) with
      | [] -> [ gen_stmt inner ] (* loops are never empty *)
      | body -> body
    in
    Ast.Loop { Ast.var; lo; hi; body }
  in
  let body =
    match items 0 [] [ "I"; "J"; "K" ] with
    | [] -> [ gen_stmt [] ]
    | body -> body
  in
  let prog =
    { Ast.p_name = "fuzzed";
      params = [ "N" ];
      arrays =
        List.map
          (fun (a_name, rank) ->
            { Ast.a_name; extents = List.init rank (fun _ -> E.Var "N") })
          arrays;
      body }
  in
  assert (Ast.arity_ok prog);
  prog

(* ------------------------------------------------------------------ *)
(* Constraint systems                                                  *)
(* ------------------------------------------------------------------ *)

let var_names = [| "x"; "y"; "z"; "w"; "u"; "v" |]

let system ?(bound = 4) rng ~dim =
  if dim < 1 || dim > Array.length var_names then invalid_arg "Gen.system: dim";
  let names = Array.init dim (fun i -> var_names.(i)) in
  let k = Rng.range rng 1 4 in
  let cs =
    List.init k (fun _ ->
        let coeffs = List.init dim (fun _ -> Rng.range rng (-3) 3) in
        let const = Rng.range rng (-6) 6 in
        let a = A.of_ints coeffs const in
        if Rng.int rng 4 = 0 then C.eq a else C.ge a)
  in
  let box =
    List.concat
      (List.init dim (fun i ->
           [ C.ge_of (A.var dim i) (A.of_int dim (-bound));
             C.le_of (A.var dim i) (A.of_int dim bound) ]))
  in
  S.make names (cs @ box)
