(* Shared flag parsing for the repo's executables (shacklec, fuzz, bench).

   Each executable used to hand-roll its own parser, and the common flags
   (--domains, --json, --quick, --seed) had drifted toward three spellings
   of the same semantics.  This module is deliberately tiny: a [spec] is a
   flag name plus an arity plus a closure that writes into a ref, and
   [parse] folds the argument list over the specs.  No terminal games, no
   auto-generated man pages — just one place where "--domains D" means the
   same thing everywhere. *)

type spec = {
  s_flag : string;
  s_docv : string; (* "" for bare flags *)
  s_doc : string;
  s_arity : int; (* values consumed after the flag: 0, 1 or 2 *)
  s_apply : string list -> (unit, string) result;
}

(* ------------------------------------------------------------------ *)
(* Spec constructors                                                   *)
(* ------------------------------------------------------------------ *)

let flag s_flag ~doc cell =
  { s_flag;
    s_docv = "";
    s_doc = doc;
    s_arity = 0;
    s_apply =
      (fun _ ->
        cell := true;
        Ok ()) }

let arg1 s_flag ~docv ~doc apply =
  { s_flag;
    s_docv = docv;
    s_doc = doc;
    s_arity = 1;
    s_apply = (function [ v ] -> apply v | _ -> assert false) }

let arg2 s_flag ~docv ~doc apply =
  { s_flag;
    s_docv = docv;
    s_doc = doc;
    s_arity = 2;
    s_apply = (function [ a; b ] -> apply a b | _ -> assert false) }

let pos_int_of flag v =
  match int_of_string_opt v with
  | Some n when n > 0 -> Ok n
  | _ -> Error (Printf.sprintf "%s expects a positive integer, got %S" flag v)

let int name ~docv ~doc cell =
  arg1 name ~docv ~doc (fun v ->
      Result.map (fun n -> cell := n) (pos_int_of name v))

let int_list name ~docv ~doc cell =
  arg1 name ~docv ~doc (fun v ->
      Result.map (fun n -> cell := !cell @ [ n ]) (pos_int_of name v))

let int_opt name ~docv ~doc cell =
  arg1 name ~docv ~doc (fun v ->
      Result.map (fun n -> cell := Some n) (pos_int_of name v))

let string_opt name ~docv ~doc cell =
  arg1 name ~docv ~doc (fun v ->
      cell := Some v;
      Ok ())

let string_list name ~docv ~doc cell =
  arg1 name ~docv ~doc (fun v ->
      cell := !cell @ [ v ];
      Ok ())

let string_pair_opt name ~docv ~doc cell =
  arg2 name ~docv ~doc (fun a b ->
      cell := Some (a, b);
      Ok ())

let unknown_choice name alts v =
  Error
    (Printf.sprintf "%s expects one of %s, got %S" name
       (String.concat "|" (List.map fst alts))
       v)

let choice name ~docv ~doc alts cell =
  arg1 name ~docv ~doc (fun v ->
      match List.assoc_opt v alts with
      | Some x ->
        cell := x;
        Ok ()
      | None -> unknown_choice name alts v)

let choice_list name ~docv ~doc alts cell =
  arg1 name ~docv ~doc (fun v ->
      match List.assoc_opt v alts with
      | Some x ->
        cell := !cell @ [ x ];
        Ok ()
      | None -> unknown_choice name alts v)

(* ------------------------------------------------------------------ *)
(* The canonical shared flags                                          *)
(* ------------------------------------------------------------------ *)

let quick cell =
  flag "--quick" ~doc:"smaller problem sizes / fewer cases (CI smoke mode)"
    cell

let domains cell =
  int "--domains" ~docv:"D"
    ~doc:"fan work over D domains (default 1; results are independent of D)"
    cell

let json cell =
  string_opt "--json" ~docv:"FILE"
    ~doc:"write a machine-readable report to FILE" cell

(* The dependence-aware block scheduler is spelled once, here, so
   "--par-exec" means the same thing in shacklec, bench and fuzz: execute
   block tasks over the --domains worker pool; all simulated quantities
   stay byte-identical to sequential execution. *)
let par_exec cell =
  flag "--par-exec"
    ~doc:
      "execute block tasks in parallel over the dependence DAG (workers \
       come from --domains; simulated results are identical to sequential)"
    cell

let seed cell =
  int "--seed" ~docv:"K"
    ~doc:"first seed (default 1; each seed is fully deterministic)" cell

let seeds cell =
  int "--seeds" ~docv:"N" ~doc:"number of consecutive seeds to run" cell

(* The resource-budget pair is spelled once, here, so "--timeout-ms MS" and
   "--fuel F" mean exactly the same thing in shacklec, fuzz and bench. *)

let timeout_ms cell =
  int_opt "--timeout-ms" ~docv:"MS"
    ~doc:
      "wall-clock budget: solver queries give up (unknown) past the \
       deadline, supervised tasks time out (default: unlimited)"
    cell

let budget_ms cell =
  int_opt "--budget-ms" ~docv:"MS"
    ~doc:
      "end-to-end deadline shipped with daemon requests (--connect): the \
       server sheds or abandons the request past the deadline and answers \
       deadline_exceeded instead of stale results (default: none)"
    cell

let fuel cell =
  int_opt "--fuel" ~docv:"F"
    ~doc:
      "solver fuel per query; an exhausted query reports unknown, treated \
       conservatively as illegal (default: unlimited)"
    cell

(* The daemon addressing pair is spelled once, here, so "--socket PATH"
   and "--cache-dir DIR" mean the same thing in shackled, shacklec and
   bench. *)

let default_socket = "/tmp/shackled.sock"

let socket cell =
  arg1 "--socket" ~docv:"PATH"
    ~doc:
      (Printf.sprintf "Unix domain socket of the shackled daemon (default %s)"
         default_socket)
    (fun v ->
      cell := v;
      Ok ())

let cache_dir cell =
  string_opt "--cache-dir" ~docv:"DIR"
    ~doc:
      "directory of the persistent legality cache (created if missing; \
       default: no disk cache)"
    cell

let connect cell =
  string_opt "--connect" ~docv:"PATH"
    ~doc:"send the request to a running shackled daemon at this socket" cell

(* ------------------------------------------------------------------ *)
(* Usage text and parsing                                              *)
(* ------------------------------------------------------------------ *)

let usage ~prog ?positional ~specs () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "usage: %s%s [options]\n" prog
       (match positional with
       | Some (docv, _) -> " " ^ docv
       | None -> ""));
  List.iter
    (fun s ->
      let lhs =
        if String.equal s.s_docv "" then s.s_flag
        else s.s_flag ^ " " ^ s.s_docv
      in
      Buffer.add_string buf (Printf.sprintf "  %-22s %s\n" lhs s.s_doc))
    specs;
  Buffer.add_string buf (Printf.sprintf "  %-22s %s\n" "--help" "this message");
  Buffer.contents buf

let rec take_values k acc rest =
  if k = 0 then Some (List.rev acc, rest)
  else
    match rest with
    | [] -> None
    | v :: r -> take_values (k - 1) (v :: acc) r

let parse ~prog ?positional ~specs args =
  let rec go = function
    | [] -> Ok ()
    | ("--help" | "-h") :: _ ->
      print_string (usage ~prog ?positional ~specs ());
      exit 0
    | a :: rest when String.length a >= 2 && String.equal (String.sub a 0 2) "--"
      -> begin
      match List.find_opt (fun s -> String.equal s.s_flag a) specs with
      | None -> Error (Printf.sprintf "unknown option %s" a)
      | Some s -> begin
        match take_values s.s_arity [] rest with
        | None ->
          Error
            (Printf.sprintf "%s expects %d value%s" a s.s_arity
               (if s.s_arity = 1 then "" else "s"))
        | Some (vs, rest) -> begin
          match s.s_apply vs with Ok () -> go rest | Error _ as e -> e
        end
      end
    end
    | a :: rest -> begin
      match positional with
      | None -> Error (Printf.sprintf "unexpected argument %S" a)
      | Some (_, apply) -> begin
        match apply a with Ok () -> go rest | Error _ as e -> e
      end
    end
  in
  go args

let run ~prog ?positional ~specs args k =
  match parse ~prog ?positional ~specs args with
  | Ok () -> k ()
  | Error msg ->
    Printf.eprintf "%s: %s (try --help)\n" prog msg;
    2

(* ------------------------------------------------------------------ *)
(* Subcommand dispatch                                                 *)
(* ------------------------------------------------------------------ *)

type cmd = { c_name : string; c_doc : string; c_run : string list -> int }

let cmd c_name ~doc c_run = { c_name; c_doc = doc; c_run }

let command_list prog doc cmds =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s: %s\n\ncommands:\n" prog doc);
  List.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "  %-10s %s\n" c.c_name c.c_doc))
    cmds;
  Buffer.add_string buf
    (Printf.sprintf "\nrun '%s COMMAND --help' for the command's options\n" prog);
  Buffer.contents buf

let dispatch ~prog ~doc ~version cmds argv =
  match Array.to_list argv with
  | _ :: name :: rest -> begin
    match name with
    | "--version" ->
      print_endline version;
      0
    | "--help" | "-h" ->
      print_string (command_list prog doc cmds);
      0
    | _ -> begin
      match List.find_opt (fun c -> String.equal c.c_name name) cmds with
      | Some c -> c.c_run rest
      | None ->
        Printf.eprintf "%s: unknown command %S\n\n%s" prog name
          (command_list prog doc cmds);
        2
    end
  end
  | _ ->
    print_string (command_list prog doc cmds);
    2
