(* The staged simplifier: named, composable program-to-program passes, each
   carrying an explicit equivalence obligation.

   Code generation used to sprinkle ad-hoc [Expr.simplify]/[subst_var] calls
   through [Codegen.Tighten]; every rewrite now lives here as a [stage] so
   pipelines are assembled by listing names, stages compose before/after one
   another freely, and each transformation states the argument for why the
   output program is equivalent to its input.

   Every stage is *trace-preserving by construction*: guards and loop bounds
   contain no array accesses, and no stage reorders, duplicates or drops a
   statement instance — so the access trace (and therefore every simulated
   cache metric) of the output is bit-identical to the input's, not merely
   the final store.  That is the property the bench [--diff-json] CI gate
   checks end to end.

   None of the stages consult Omega.  Entailment questions (is this guard
   implied by the enclosing loop bounds? is this min arm dominated?) go
   through the structural prover in {!Entail}, so running a pipeline is
   pure computation — the point of parametric specialization is one solver
   derivation per (kernel, spec) across an entire sweep of sizes. *)

module E = Expr

type stage = {
  name : string;
  obligation : string;
  apply : Ast.program -> Ast.program;
}

let run stages prog = List.fold_left (fun p (s : stage) -> s.apply p) prog stages

(* ------------------------------------------------------------------ *)
(* Expression plumbing shared by the stages                            *)
(* ------------------------------------------------------------------ *)

(* The one sanctioned expression-level simplifier: constant folding,
   neutral-element elimination, min/max flattening and dedup.  Derivation
   code (e.g. bound construction in [Codegen.Tighten]) calls this instead
   of [Expr.simplify] directly so all simplification is routed through the
   stage module. *)
let fold_expr = E.simplify

let map_node_exprs f node =
  let fg (g : Ast.guard) = { g with Ast.g_lhs = f g.Ast.g_lhs; g_rhs = f g.Ast.g_rhs } in
  let rec go = function
    | Ast.Stmt s ->
      Ast.Stmt
        { s with
          Ast.lhs = { s.Ast.lhs with Fexpr.idx = List.map f s.Ast.lhs.Fexpr.idx };
          rhs = Fexpr.map_ref_indices f s.Ast.rhs }
    | Ast.If (gs, body) -> Ast.If (List.map fg gs, List.map go body)
    | Ast.Loop l ->
      Ast.Loop { l with Ast.lo = f l.Ast.lo; hi = f l.Ast.hi; body = List.map go l.Ast.body }
  in
  go node

let map_exprs f (prog : Ast.program) =
  { prog with Ast.body = List.map (map_node_exprs f) prog.Ast.body }

(* Enclosing-bound facts.  Parameters are at least 1 by repo-wide
   convention (the same assumption [Codegen.Tighten] makes for its pruning
   context); each enclosing loop contributes [lo <= var <= hi], which holds
   on every iteration its body actually executes. *)
let param_facts (prog : Ast.program) =
  List.map (fun p -> Entail.fact ~lo:(E.Const 1) p) prog.Ast.params

let guard_holds facts (g : Ast.guard) =
  match g.Ast.g_rel with
  | Ast.Le -> Entail.le facts g.Ast.g_lhs g.Ast.g_rhs
  | Ast.Lt -> Entail.le facts (E.Add (g.Ast.g_lhs, E.Const 1)) g.Ast.g_rhs
  | Ast.Ge -> Entail.ge facts g.Ast.g_lhs g.Ast.g_rhs
  | Ast.Gt -> Entail.ge facts g.Ast.g_lhs (E.Add (g.Ast.g_rhs, E.Const 1))
  | Ast.Eq -> Entail.eq facts g.Ast.g_lhs g.Ast.g_rhs

(* ------------------------------------------------------------------ *)
(* constant-fold                                                       *)
(* ------------------------------------------------------------------ *)

let constant_fold =
  { name = "constant-fold";
    obligation =
      "Expr.simplify is value-preserving on every valuation (folding, \
       neutral elements, min/max flattening); no control structure changes.";
    apply = map_exprs fold_expr }

(* ------------------------------------------------------------------ *)
(* bound-tighten                                                       *)
(* ------------------------------------------------------------------ *)

let rec max_args = function
  | E.Max (a, b) -> max_args a @ max_args b
  | e -> [ e ]

let rec min_args = function
  | E.Min (a, b) -> min_args a @ min_args b
  | e -> [ e ]

(* Drop arguments dominated by another remaining argument (for a max: p is
   redundant when p <= q; for a min: when p >= q).  The kept/rest split
   means structural duplicates collapse to one survivor. *)
let prune_args dominated args =
  let rec go kept = function
    | [] -> List.rev kept
    | p :: rest ->
      let others = List.rev_append kept rest in
      if List.exists (fun q -> dominated p q) others then go kept rest
      else go (p :: kept) rest
  in
  go [] args

let tighten_lo facts e =
  fold_expr (E.max_list (prune_args (fun p q -> Entail.le facts p q) (max_args e)))

let tighten_hi facts e =
  fold_expr (E.min_list (prune_args (fun p q -> Entail.ge facts p q) (min_args e)))

let bound_tighten =
  let rec go facts node =
    match node with
    | Ast.Stmt _ -> node
    | Ast.If (gs, body) -> Ast.If (gs, List.map (go facts) body)
    | Ast.Loop l ->
      let lo = tighten_lo facts l.Ast.lo in
      let hi = tighten_hi facts l.Ast.hi in
      let facts' = facts @ [ Entail.fact ~lo ~hi l.Ast.var ] in
      Ast.Loop { l with Ast.lo; hi; body = List.map (go facts') l.Ast.body }
  in
  { name = "bound-tighten";
    obligation =
      "A max (min) argument is dropped only when Entail proves it <= (>=) \
       another remaining argument under the enclosing loop bounds, so the \
       bound's value is unchanged pointwise on every reached iteration.";
    apply =
      (fun prog ->
        let facts = param_facts prog in
        { prog with Ast.body = List.map (go facts) prog.Ast.body }) }

(* ------------------------------------------------------------------ *)
(* guard-entail                                                        *)
(* ------------------------------------------------------------------ *)

let guard_entail =
  let rec go facts node =
    match node with
    | Ast.Stmt _ -> [ node ]
    | Ast.If (gs, body) ->
      let body' = List.concat_map (go facts) body in
      let gs' = List.filter (fun g -> not (guard_holds facts g)) gs in
      if gs' = [] then body' else [ Ast.If (gs', body') ]
    | Ast.Loop l ->
      let facts' = facts @ [ Entail.fact ~lo:l.Ast.lo ~hi:l.Ast.hi l.Ast.var ] in
      [ Ast.Loop { l with Ast.body = List.concat_map (go facts') l.Ast.body } ]
  in
  { name = "guard-entail";
    obligation =
      "A guard is removed only when Entail proves it holds for every \
       valuation consistent with the enclosing loop bounds; on iterations \
       that execute, the guard evaluated to true, so the guarded body runs \
       in both programs (and guards touch no arrays, so the trace is \
       untouched).";
    apply =
      (fun prog ->
        let facts = param_facts prog in
        { prog with Ast.body = List.concat_map (go facts) prog.Ast.body }) }

(* ------------------------------------------------------------------ *)
(* guard-hoist                                                         *)
(* ------------------------------------------------------------------ *)

(* Move statement guards that do not depend on a loop's variable out of the
   loop (codegen emits them innermost, per statement). *)
let guard_hoist =
  let rec go node =
    match node with
    | Ast.Stmt _ -> node
    | Ast.If (gs, body) -> begin
      match List.map go body with
      | [ Ast.If (gs', body') ] -> Ast.If (gs @ gs', body')
      | body' -> Ast.If (gs, body')
    end
    | Ast.Loop l -> begin
      match List.map go l.Ast.body with
      | [ Ast.If (gs, body') ] ->
        let stays, hoists =
          List.partition
            (fun (g : Ast.guard) ->
              List.mem l.Ast.var (E.vars g.Ast.g_lhs)
              || List.mem l.Ast.var (E.vars g.Ast.g_rhs))
            gs
        in
        let inner = if stays = [] then body' else [ Ast.If (stays, body') ] in
        let loop = Ast.Loop { l with Ast.body = inner } in
        if hoists = [] then loop else go (Ast.If (hoists, [ loop ]))
      | body' -> Ast.Loop { l with Ast.body = body' }
    end
  in
  { name = "guard-hoist";
    obligation =
      "A hoisted guard mentions no variable of the loop it leaves, so it \
       evaluates identically on every iteration; guarding the whole loop \
       executes the same statement instances (a false guard means the body \
       ran zero times either way).";
    apply = (fun prog -> { prog with Ast.body = List.map go prog.Ast.body }) }

(* ------------------------------------------------------------------ *)
(* minmax-peel                                                         *)
(* ------------------------------------------------------------------ *)

(* Collect Min/Max subtrees of an expression, outermost first. *)
let rec minmax_atoms e acc =
  match e with
  | E.Var _ | E.Const _ -> acc
  | E.Add (a, b) | E.Sub (a, b) -> minmax_atoms b (minmax_atoms a acc)
  | E.Mul (_, a) | E.FloorDiv (a, _) | E.CeilDiv (a, _) -> minmax_atoms a acc
  | E.Max (a, b) | E.Min (a, b) ->
    minmax_atoms b (minmax_atoms a (acc @ [ e ]))

let rec node_minmax_atoms node acc =
  match node with
  | Ast.Stmt _ -> acc (* subscripts are affine: no min/max *)
  | Ast.If (gs, body) ->
    let acc =
      List.fold_left
        (fun acc (g : Ast.guard) ->
          minmax_atoms g.Ast.g_rhs (minmax_atoms g.Ast.g_lhs acc))
        acc gs
    in
    List.fold_left (fun acc n -> node_minmax_atoms n acc) acc body
  | Ast.Loop l ->
    let acc = minmax_atoms l.Ast.hi (minmax_atoms l.Ast.lo acc) in
    List.fold_left (fun acc n -> node_minmax_atoms n acc) acc l.Ast.body

let rec replace_expr m arm e =
  if E.equal e m then arm
  else
    match e with
    | E.Var _ | E.Const _ -> e
    | E.Add (a, b) -> E.Add (replace_expr m arm a, replace_expr m arm b)
    | E.Sub (a, b) -> E.Sub (replace_expr m arm a, replace_expr m arm b)
    | E.Mul (k, a) -> E.Mul (k, replace_expr m arm a)
    | E.FloorDiv (a, k) -> E.FloorDiv (replace_expr m arm a, k)
    | E.CeilDiv (a, k) -> E.CeilDiv (replace_expr m arm a, k)
    | E.Max (a, b) -> E.Max (replace_expr m arm a, replace_expr m arm b)
    | E.Min (a, b) -> E.Min (replace_expr m arm a, replace_expr m arm b)

let fdiv a d =
  let q = a / d and r = a mod d in
  if r <> 0 && (r < 0) <> (d < 0) then q - 1 else q

let cdiv a d = -fdiv (-a) d

(* Peel budget: splitting doubles a loop, so bound total rewrites. *)
let peel_budget = 64

(* Split loop [l] (constant range [a, b]) on the first Min/Max atom in its
   body whose arm order flips at an affine threshold of [l.var].  Returns
   the replacement node list, or None when no atom qualifies. *)
let try_peel (l : Ast.loop) =
  match (fold_expr l.Ast.lo, fold_expr l.Ast.hi) with
  | E.Const a, E.Const b when a <= b ->
    let atoms =
      List.fold_left (fun acc n -> node_minmax_atoms n acc) [] l.Ast.body
    in
    let candidate m =
      match m with
      | E.Min (p, q) | E.Max (p, q) -> begin
        match Entail.affine_delta_in ~var:l.Ast.var p q with
        | Some (c, d) when c <> 0 -> Some (m, p, q, c, d)
        | _ -> None
      end
      | _ -> None
    in
    (match List.find_map candidate atoms with
     | None -> None
     | Some (m, p, q, c, d) ->
       (* p <= q  iff  c*w + d <= 0 *)
       let arm_le, arm_gt =
         match m with
         | E.Min _ -> (p, q) (* min picks p when p <= q *)
         | _ -> (q, p)       (* max picks q when p <= q *)
       in
       let rebuild lo hi arm =
         let subst = replace_expr m arm in
         Ast.Loop
           { l with
             Ast.lo = E.Const lo;
             hi = E.Const hi;
             body = List.map (map_node_exprs subst) l.Ast.body }
       in
       if c > 0 then begin
         (* p <= q iff w <= t *)
         let t = fdiv (-d) c in
         if t >= b then Some [ rebuild a b arm_le ]
         else if t < a then Some [ rebuild a b arm_gt ]
         else Some [ rebuild a t arm_le; rebuild (t + 1) b arm_gt ]
       end
       else begin
         (* c < 0: p <= q iff w >= t *)
         let t = cdiv d (-c) in
         if t <= a then Some [ rebuild a b arm_le ]
         else if t > b then Some [ rebuild a b arm_gt ]
         else Some [ rebuild a (t - 1) arm_gt; rebuild t b arm_le ]
       end)
  | _ -> None

let minmax_peel =
  let apply prog =
    let budget = ref peel_budget in
    let rec go node =
      match node with
      | Ast.Stmt _ -> [ node ]
      | Ast.If (gs, body) -> [ Ast.If (gs, List.concat_map go body) ]
      | Ast.Loop l ->
        if !budget > 0 then begin
          match try_peel l with
          | Some nodes ->
            decr budget;
            List.concat_map go nodes
          | None -> [ Ast.Loop { l with Ast.body = List.concat_map go l.Ast.body } ]
        end
        else [ Ast.Loop { l with Ast.body = List.concat_map go l.Ast.body } ]
    in
    { prog with Ast.body = List.concat_map go prog.Ast.body }
  in
  { name = "minmax-peel";
    obligation =
      "A loop over [a,b] splits at the exact threshold where a Min/Max \
       arm's order flips (the arm difference is affine in the loop \
       variable alone), into consecutive ranges [a,t]+[t+1,b] with the atom \
       replaced by the arm it equals on that range — same iterations, same \
       order, same bound values.";
    apply }

(* ------------------------------------------------------------------ *)
(* collapse-degenerate                                                 *)
(* ------------------------------------------------------------------ *)

(* Substitute away loops whose range is the single affine point [lo]. *)
let collapse_degenerate =
  let rec go node =
    match node with
    | Ast.Stmt _ -> [ node ]
    | Ast.If (gs, body) -> [ Ast.If (gs, List.concat_map go body) ]
    | Ast.Loop l ->
      if E.equal (fold_expr l.Ast.lo) (fold_expr l.Ast.hi) then begin
        let value = fold_expr l.Ast.lo in
        let subst e = fold_expr (E.subst_var e l.Ast.var value) in
        let body = List.map (map_node_exprs subst) l.Ast.body in
        List.concat_map go body
      end
      else [ Ast.Loop { l with Ast.body = List.concat_map go l.Ast.body } ]
  in
  { name = "collapse-degenerate";
    obligation =
      "The loop's folded bounds are structurally equal, so it executes \
       exactly one iteration with var = lo; substituting that value into \
       the body preserves every statement instance and its order.";
    apply = (fun prog -> { prog with Ast.body = List.concat_map go prog.Ast.body }) }

(* ------------------------------------------------------------------ *)
(* Pipelines                                                           *)
(* ------------------------------------------------------------------ *)

let all =
  [ constant_fold;
    bound_tighten;
    guard_entail;
    guard_hoist;
    minmax_peel;
    collapse_degenerate ]

let by_name n = List.find_opt (fun s -> String.equal s.name n) all
let names () = List.map (fun s -> s.name) all

let of_names ns =
  List.map
    (fun n ->
      match by_name n with
      | Some s -> s
      | None ->
        invalid_arg
          (Printf.sprintf "Stages.of_names: unknown stage %s (have: %s)" n
             (String.concat ", " (names ()))))
    ns

(* The Tighten post-pass: exactly the rewrites the generator has always
   applied, now as named stages (golden codegen output is byte-identical). *)
let tighten_pipeline ~collapse =
  guard_hoist :: (if collapse then [ collapse_degenerate ] else [])

(* Naive codegen only folds constants: its membership guards are the
   figure-5 form and must stay textually recognizable. *)
let naive_pipeline = [ constant_fold ]

(* Specialization: parameters are already constants, so fold, resolve
   min/max arms against the now-constant bounds, drop entailed guards, peel
   what remains, fold again, collapse single-iteration loops, and hoist any
   surviving loop-invariant guards.  Stages compose, so running a stage
   twice (after peeling exposes new constants) is just listing it again. *)
let specialize_pipeline =
  [ constant_fold;
    bound_tighten;
    guard_entail;
    minmax_peel;
    constant_fold;
    bound_tighten;
    guard_entail;
    collapse_degenerate;
    guard_hoist ]

let subst_params ~params =
  let f e =
    List.fold_left (fun e (n, v) -> E.subst_var e n (E.Const v)) e params
  in
  { name = "subst-params";
    obligation =
      "Each substituted name is bound to exactly that constant at \
       execution time; the program's parameter list is left intact so \
       prepared frames still reserve the slots.";
    apply = map_exprs f }

let specialize ~params prog = run (subst_params ~params :: specialize_pipeline) prog
