(* Solver-free entailment over index expressions.

   Specialization runs once per sweep size, so it must not touch Omega: the
   whole point of [Pipeline.specialize] is one solver derivation per
   (kernel, spec) across an entire N sweep.  This module proves facts of the
   form [e >= 0 for every valuation consistent with the enclosing loop
   bounds] purely structurally:

   - expressions are linearized into (constant, variable coefficients,
     non-affine atoms), where an atom is a whole [Min]/[Max]/[FloorDiv]/
     [CeilDiv] subtree compared structurally — identical atoms on both
     sides of an inequality cancel exactly;
   - [Min]/[Max] atoms case-split: min(a,b) always equals one of its arms,
     so proving the goal under both substitutions proves it outright;
   - division atoms are replaced by their worst-case rational bound
     (floor(a/k) is between (a-k+1)/k and a/k) after clearing the
     denominator;
   - residual variables are eliminated innermost-first against the bound
     facts supplied by the caller (a loop's bounds only mention outer
     variables, so elimination terminates).

   Everything is fueled; running out of fuel answers [false] ("not proved"),
   never a wrong [true] — callers only ever use a positive answer to drop a
   guard or a dominated bound piece. *)

module E = Expr
module SM = Map.Make (String)

type fact = { var : string; lo : E.t option; hi : E.t option }

let fact ?lo ?hi var = { var; lo; hi }

(* ------------------------------------------------------------------ *)
(* Linear forms                                                        *)
(* ------------------------------------------------------------------ *)

type lin = { const : int; coeffs : int SM.t; atoms : (int * E.t) list }

let zero = { const = 0; coeffs = SM.empty; atoms = [] }
let of_const n = { zero with const = n }

let add_atom l c a =
  if c = 0 then l
  else
    let rec go acc = function
      | [] -> List.rev ((c, a) :: acc)
      | (c', a') :: rest ->
        if E.equal a a' then
          let c'' = c + c' in
          List.rev_append acc (if c'' = 0 then rest else (c'', a') :: rest)
        else go ((c', a') :: acc) rest
    in
    { l with atoms = go [] l.atoms }

let scale k l =
  if k = 0 then zero
  else if k = 1 then l
  else
    { const = k * l.const;
      coeffs = SM.map (fun c -> k * c) l.coeffs;
      atoms = List.map (fun (c, a) -> (k * c, a)) l.atoms }

let add a b =
  let coeffs =
    SM.union
      (fun _ x y -> match x + y with 0 -> None | s -> Some s)
      a.coeffs b.coeffs
  in
  List.fold_left
    (fun l (c, at) -> add_atom l c at)
    { const = a.const + b.const; coeffs; atoms = a.atoms }
    b.atoms

let rec lin_of (e : E.t) : lin =
  match e with
  | E.Var v -> { zero with coeffs = SM.singleton v 1 }
  | E.Const n -> of_const n
  | E.Add (a, b) -> add (lin_of a) (lin_of b)
  | E.Sub (a, b) -> add (lin_of a) (scale (-1) (lin_of b))
  | E.Mul (k, a) -> scale k (lin_of a)
  | (E.FloorDiv _ | E.CeilDiv _ | E.Max _ | E.Min _) as atom ->
    add_atom zero 1 atom

(* ------------------------------------------------------------------ *)
(* The prover                                                          *)
(* ------------------------------------------------------------------ *)

let default_fuel = 2048

(* The innermost fact variable carried by [l]; a loop's bounds mention only
   outer variables, so eliminating inside out is well-founded. *)
let innermost_fact facts l =
  List.fold_left
    (fun acc f ->
      match SM.find_opt f.var l.coeffs with
      | Some c when c <> 0 -> Some (f, c)
      | _ -> acc)
    None facts

let rec prove fuel facts (l : lin) : bool =
  if !fuel <= 0 then false
  else begin
    decr fuel;
    match l.atoms with
    | (c, atom) :: rest ->
      let l' = { l with atoms = rest } in
      (match atom with
       | E.Min (a, b) ->
         let la = add l' (scale c (lin_of a))
         and lb = add l' (scale c (lin_of b)) in
         if c < 0 then
           (* need an upper bound: min(a,b) <= a and <= b, so either arm
              relaxes soundly — prove with whichever works *)
           prove fuel facts la || prove fuel facts lb
         else
           (* need a lower bound: min has none below both arms, but its
              value is always one of them — prove both cases *)
           prove fuel facts la && prove fuel facts lb
       | E.Max (a, b) ->
         let la = add l' (scale c (lin_of a))
         and lb = add l' (scale c (lin_of b)) in
         if c > 0 then
           (* need a lower bound: max(a,b) >= a and >= b *)
           prove fuel facts la || prove fuel facts lb
         else prove fuel facts la && prove fuel facts lb
       | E.FloorDiv (a, k) when k > 0 ->
         (* (a-k+1)/k <= floor(a/k) <= a/k; take the worst arm for the sign
            of [c] and clear the denominator. *)
         let la = scale c (lin_of a) in
         let repl = if c > 0 then add la (of_const (c * (1 - k))) else la in
         prove fuel facts (add (scale k l') repl)
       | E.CeilDiv (a, k) when k > 0 ->
         (* a/k <= ceil(a/k) <= (a+k-1)/k *)
         let la = scale c (lin_of a) in
         let repl = if c > 0 then la else add la (of_const (c * (k - 1))) in
         prove fuel facts (add (scale k l') repl)
       | _ -> false)
    | [] ->
      if SM.is_empty l.coeffs then l.const >= 0
      else begin
        match innermost_fact facts l with
        | None -> false
        | Some (f, c) ->
          (* c*v >= c*lo when c > 0 (resp. <= c*hi when c < 0): replacing
             the variable by its bound only lowers the form. *)
          let bound = if c > 0 then f.lo else f.hi in
          (match bound with
           | None -> false
           | Some be ->
             let l' = { l with coeffs = SM.remove f.var l.coeffs } in
             prove fuel facts (add l' (scale c (lin_of be))))
      end
  end

let ge0 ?(fuel = default_fuel) facts e = prove (ref fuel) facts (lin_of e)

let le ?fuel facts a b = ge0 ?fuel facts (E.Sub (b, a))
let ge ?fuel facts a b = le ?fuel facts b a
let eq ?fuel facts a b = le ?fuel facts a b && le ?fuel facts b a

(* The difference [a - b] as an affine function of [var] alone:
   [Some (c, d)] when a - b = c*var + d exactly (after structural atom
   cancellation), with no other variables or atoms left. *)
let affine_delta_in ~var a b =
  let d = add (lin_of a) (scale (-1) (lin_of b)) in
  if d.atoms <> [] then None
  else
    match SM.bindings d.coeffs with
    | [] -> Some (0, d.const)
    | [ (v, c) ] when String.equal v var -> Some (c, d.const)
    | _ -> None
