(** The staged simplifier: named, composable program rewrites.

    Each {!stage} is a whole-program transformation carrying an explicit
    [obligation] — the one-paragraph argument for why its output is
    equivalent to its input.  All stages are trace-preserving by
    construction: guards and bounds contain no array accesses and no stage
    reorders, drops or duplicates a statement instance, so the access trace
    (and every simulated cache metric) is bit-identical across a pipeline
    run.  No stage consults Omega; entailment goes through the structural
    prover in {!Entail}, so running a pipeline is pure computation. *)

type stage = {
  name : string;        (** stable CLI-facing identifier, e.g. ["guard-entail"] *)
  obligation : string;  (** why output ≡ input, stated as an invariant *)
  apply : Ast.program -> Ast.program;
}

val run : stage list -> Ast.program -> Ast.program
(** Apply the stages left to right. *)

val fold_expr : Expr.t -> Expr.t
(** The sanctioned expression simplifier ([Expr.simplify]); derivation code
    routes through this so all simplification lives behind the stage
    module. *)

val map_exprs : (Expr.t -> Expr.t) -> Ast.program -> Ast.program
(** Map a function over every integer expression of the program body (loop
    bounds, guards, subscripts); the parameter and array declarations are
    untouched. *)

(** {2 The stages} *)

val constant_fold : stage
(** Fold every expression with {!fold_expr}. *)

val bound_tighten : stage
(** Drop max (min) arguments of loop bounds that {!Entail} proves dominated
    by another argument under the enclosing bounds. *)

val guard_entail : stage
(** Remove guards {!Entail} proves implied by the enclosing loop bounds;
    empty [If]s are spliced into their parent. *)

val guard_hoist : stage
(** Move statement guards that do not mention a loop's variable out of that
    loop (codegen emits them innermost). *)

val minmax_peel : stage
(** Split a constant-range loop at the threshold where a [Min]/[Max] arm
    order flips (arm difference affine in the loop variable alone), and
    resolve the atom to the winning arm on each side. *)

val collapse_degenerate : stage
(** Substitute away loops whose folded bounds coincide (single-iteration
    ranges). *)

(** {2 Registry and pipelines} *)

val all : stage list
val names : unit -> string list
val by_name : string -> stage option

val of_names : string list -> stage list
(** @raise Invalid_argument on an unknown stage name (message lists the
    known ones) — the [--stages] flag parser. *)

val tighten_pipeline : collapse:bool -> stage list
(** The post-pass [Codegen.Tighten] runs after emitting blocked code:
    [guard-hoist], then [collapse-degenerate] unless [collapse:false]. *)

val naive_pipeline : stage list
(** [constant-fold] only: Figure-5 membership guards stay recognizable. *)

val specialize_pipeline : stage list
(** The aggressive pipeline run on a program whose parameters have been
    substituted to constants: fold, tighten, entail, peel, fold/tighten/
    entail again, collapse, hoist. *)

val subst_params : params:(string * int) list -> stage
(** Substitute the given parameter bindings as constants throughout the
    body; the program's [params] list is kept so prepared frames still
    reserve their slots. *)

val specialize : params:(string * int) list -> Ast.program -> Ast.program
(** [subst_params] followed by {!specialize_pipeline} — the per-size
    instantiation step of {!Pipeline.specialize}: entailed guards vanish
    and inner loops become straight-line index arithmetic, while the
    access trace stays bit-identical to the symbolic program's. *)
