(** Solver-free entailment over index expressions.

    The staged simplifier ({!Stages}) and parametric specialization must not
    consult Omega — one solver derivation per (kernel, spec) has to cover an
    entire sweep of sizes.  This module proves one-sided facts about
    {!Expr.t} values purely structurally: linearize to (constant, variable
    coefficients, non-affine atoms), cancel structurally identical atoms,
    case-split [Min]/[Max] atoms (their value is always one of the arms),
    bound division atoms by their worst-case rational envelope, and
    eliminate residual variables innermost-first against the supplied loop
    bounds.  All answers are fueled and conservative: [false] means "not
    proved", never "disproved". *)

type fact = { var : string; lo : Expr.t option; hi : Expr.t option }
(** One enclosing binding: [lo <= var <= hi] on every reached iteration
    (either side may be unknown).  Order the list outermost-first, the way
    loops nest — a bound may only mention variables of earlier facts. *)

val fact : ?lo:Expr.t -> ?hi:Expr.t -> string -> fact

val ge0 : ?fuel:int -> fact list -> Expr.t -> bool
(** [ge0 facts e] — is [e >= 0] for every valuation consistent with
    [facts]?  Fuel (default 2048) bounds case-splitting; exhaustion answers
    [false]. *)

val le : ?fuel:int -> fact list -> Expr.t -> Expr.t -> bool
val ge : ?fuel:int -> fact list -> Expr.t -> Expr.t -> bool
val eq : ?fuel:int -> fact list -> Expr.t -> Expr.t -> bool

val affine_delta_in :
  var:string -> Expr.t -> Expr.t -> (int * int) option
(** [affine_delta_in ~var a b] is [Some (c, d)] when [a - b = c*var + d]
    exactly (after atom cancellation) with no other variables or atoms —
    the condition under which a [Min (a, b)] arm flips at a computable
    threshold of [var] ({!Stages} min/max peeling). *)
