(** Cost-model-guided shackle autotuning (the search procedure of
    Section 8), behind the {!Pipeline} facade.

    The candidate lattice is (data-centric reference per statement) x
    (cutting-plane block size) x (Cartesian-product depth).  Products grow
    only while Theorem 2 says extending helps — a factor is appended only
    when it strictly shrinks the set of unconstrained references — and
    every candidate is decided by Theorem 1 through one memoizing solver
    context ({!Polyhedra.Omega.Ctx}), so systems shared between products
    and their factors are solved once.

    Survivors are evaluated by record-once / replay-many simulation:
    candidates whose generated programs coincide share one interpreter
    recording, replayed per (machine x quality) series over a supervised
    {!Runner.map_outcomes} pool — a group that crashes or exceeds
    [timeout_ms] becomes a failure row, not a campaign abort.
    Enumeration, legality and code generation are sequential, so
    everything in the report except wall-clock timing is independent of
    [domains]. *)

type mode = Exhaustive | Beam of int  (** beam width per product level *)

val mode_string : mode -> string

type options = {
  sizes : int list;  (** square block sizes to enumerate *)
  depth : int;  (** maximum number of product factors *)
  mode : mode;
  domains : int;  (** simulation fan-out; results are independent of it *)
  machines : Machine.Model.t list;
  qualities : Machine.Model.quality list;
      (** evaluated series = machines x qualities; the head of each list is
          the ranking series *)
  cache : bool;  (** memoize legality queries in the solver context *)
  cache_compare : bool;  (** run the cold/warm cache effectiveness pass *)
  shuffle_seed : int option;
      (** deterministically shuffle candidate order before evaluation —
          the ranked table must not change (tested) *)
  timeout_ms : int option;
      (** wall-clock budget: per legality query (solver deadline) and per
          evaluation group (supervised pool deadline); [None] = unlimited *)
  fuel : int option;
      (** solver fuel per legality query; a query that runs out comes back
          [`Unknown] and its candidate is counted in [n_unknown] *)
  ns : int list;
      (** evaluation problem sizes: [[]] (default) evaluates at the
          caller's [params] only; a non-empty list sweeps N over these
          values, re-using each candidate's one generated program (codegen
          and every Omega query run once regardless of the sweep's length)
          and ranking by cycles summed over the sweep *)
  specialize : bool;
      (** instantiate each evaluated program at its concrete sizes through
          the solver-free {!Loopir.Stages.specialize} before recording
          (default true); traces are bit-identical, so ranked quantities
          are unchanged — only interpreter wall-clock drops *)
  prune_bounds : bool;
      (** evaluate sequentially, best-first by the {!Bounds} analytic
          communication lower bound, skipping any candidate whose
          lower-bounded cycle cost strictly exceeds the incumbent's
          simulated cycles.  Sound for the winner (the bound never
          exceeds the simulated cost), counted in [n_pruned_by_bound];
          default off *)
}

val default_options : options
(** sizes [16], depth 2, exhaustive, 1 domain, sp2-like x untuned,
    cache on, no compare, no shuffle, no budget, no N sweep,
    specialization on, bound pruning off. *)

type candidate = {
  c_spec : Shackle.Spec.t;
  c_label : string;  (** canonical rendering; dedup key and ranking tie-break *)
  c_factors : int;
  c_unconstrained : int;  (** references not bounded by the choices (Thm 2) *)
  c_fully_constrained : bool;
}

val spec_label : Shackle.Spec.t -> string

type counts = {
  n_enumerated : int;  (** distinct candidates considered *)
  n_pruned : int;  (** extensions discarded by the Theorem 2 test *)
  n_illegal : int;  (** proved illegal (a violating system is satisfiable) *)
  n_unknown : int;
      (** the solver gave up within the budget — dropped like illegal
          candidates (conservative), but distinguishable in the report *)
  n_legal : int;
  n_variants : int;  (** distinct generated programs (recordings taken) *)
  n_pruned_by_bound : int;
      (** legal candidates skipped by the analytic lower-bound pruner;
          zero unless [options.prune_bounds] *)
}

type scored = {
  s_cand : candidate;
  s_results : (string * string * Machine.Model.result) list;
      (** (machine, quality, result) per series, in series order, at the
          first evaluated size *)
  s_sweep : (int option * float) list;
      (** head-series cycles per evaluated size ([None] = the caller's
          [params]); singleton unless [options.ns] sweeps *)
  s_cycles : float;  (** head series, summed over the sweep; the ranking
          key — ties break toward fewer unconstrained references
          (Theorem 2), then fewer factors, then the canonical label *)
  s_mflops : float;
  s_bounds : (string * (string * int) list) list;
      (** per machine, per cache level: this candidate's analytic miss
          lower bound at the first evaluated size ({!Bounds.misses});
          [[]] when the program is outside the affine class the analysis
          covers.  Reports derive headroom = simulated misses / bound
          from this — >= 1.0 by soundness. *)
}

type eval_failure = {
  ef_label : string;
      (** canonical label of the failed group's head candidate *)
  ef_reason : string;  (** ["crash: ..."] or ["timed out ..."] *)
}
(** One recording group that crashed or timed out under the supervised
    pool: its candidates are excluded from [rp_table], the campaign
    completes and reports the row instead of aborting. *)

type cache_compare = {
  cc_cold_seconds : float;
  cc_warm_seconds : float;
  cc_warm_hits : int;
  cc_agree : bool;  (** cold and warm verdicts identical (asserted in CI) *)
}

type timing = {
  t_enumerate : float;  (** includes all legality queries *)
  t_codegen : float;
  t_evaluate : float;
  t_total : float;
}

type report = {
  rp_kernel : string;
  rp_params : (string * int) list;
  rp_options : options;
  rp_counts : counts;
  rp_solver : Observe.Metrics.solver;
  rp_timing : timing;
  rp_cache_compare : cache_compare option;
  rp_input_cycles : float;
      (** the unshackled program on the head series, summed over the same
          evaluation sweep as the candidates *)
  rp_table : scored list;  (** ranked, best first *)
  rp_failures : eval_failure list;  (** evaluation groups that did not finish *)
  rp_metrics : Observe.Metrics.sim list;
}

val best : report -> scored option

val tune :
  ?options:options ->
  ?arrays:string list ->
  ?init:(string -> int array -> float) ->
  kernel:string ->
  params:(string * int) list ->
  Loopir.Ast.program ->
  report
(** Run the full enumerate -> prune -> check -> generate -> simulate
    pipeline.  [arrays] defaults to {!Shackle.Search.default_arrays};
    [init] to {!Kernels.Inits.for_kernel} (so results are deterministic
    given [kernel] and [params]). *)

val consistency_step :
  ?sizes:int list -> ?max_specs:int -> Loopir.Ast.program -> (int, string) result
(** Differential check for the fuzz harness: cached and cache-less solver
    contexts must give identical legality answers over the program's
    single-factor lattice.  [Ok n] compared [n] specs. *)

(** {2 Reports} *)

val schema : string
(** ["tune-report/4"] *)

val report_to_json : report -> Observe.Json.t
(** Schema-stable: keys in fixed order; the ["cache_compare"] key is
    appended only when the pass ran; everything outside ["timing"],
    ["metrics"] and ["cache_compare"] is byte-identical across runs and
    across [domains]. *)

val check_report_json : Observe.Json.t -> (unit, string) result
(** Structural validation of a serialized report ([--check-json]). *)

val pp_report : Format.formatter -> report -> unit
