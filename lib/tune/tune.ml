(* The shackle autotuner (Section 8: "implement a search method that
   enumerates over plausible data shackles, evaluates each one and picks
   the best"), built on the unified {!Pipeline} front door.

   The candidate lattice is: one data-centric reference per statement
   (Section 6.1's choices) x cutting-plane block sizes x Cartesian-product
   depth.  Products are grown only along Theorem 2's gradient — a factor is
   appended only when it strictly shrinks the set of unconstrained
   references — and every candidate passes the Theorem 1 legality test
   through one memoizing solver context, so the many systems that product
   candidates share with their factors are decided once.

   Evaluation is record-once / replay-many: candidates whose generated
   programs coincide share a single interpreter execution, and each
   recording is replayed per (machine x quality) on a fresh simulator.
   Only the simulation fans out over domains; enumeration, legality and
   code generation run sequentially, so every reported quantity except
   wall-clock is independent of [domains]. *)

module Ast = Loopir.Ast
module Expr = Loopir.Expr
module Fexpr = Loopir.Fexpr
module Spec = Shackle.Spec
module Blocking = Shackle.Blocking
module Legality = Shackle.Legality
module Span = Shackle.Span
module Search = Shackle.Search
module Model = Machine.Model
module Metrics = Observe.Metrics
module Json = Observe.Json
module Omega = Polyhedra.Omega

(* ------------------------------------------------------------------ *)
(* Options                                                             *)
(* ------------------------------------------------------------------ *)

type mode = Exhaustive | Beam of int

let mode_string = function
  | Exhaustive -> "exhaustive"
  | Beam k -> Printf.sprintf "beam:%d" k

type options = {
  sizes : int list;
  depth : int;
  mode : mode;
  domains : int;
  machines : Model.t list;
  qualities : Model.quality list;
  cache : bool;
  cache_compare : bool;
  shuffle_seed : int option;
  timeout_ms : int option;
  fuel : int option;
  ns : int list;
      (** evaluation problem sizes: [[]] (default) evaluates at the
          caller's [params] only; a non-empty list sweeps N over these
          values, re-using each candidate's one generated program and
          ranking by summed cycles.  Enumeration, legality and codegen run
          once regardless of the sweep's length — the per-size work is the
          solver-free {!Loopir.Stages.specialize}. *)
  specialize : bool;
      (** instantiate each evaluated program at its concrete sizes before
          recording (default true); the access trace is bit-identical, so
          every ranked quantity is unchanged — only interpreter wall-clock
          drops *)
  prune_bounds : bool;
      (** evaluate candidates sequentially, best-first by their analytic
          communication lower bound ({!Bounds}), and skip any candidate
          whose lower-bounded cycle cost already exceeds the incumbent's
          simulated cycles.  Sound for the winner: the bound never
          exceeds the simulated cost, so a pruned candidate could not
          have ranked first.  Default off (the default path evaluates
          the whole lattice in parallel). *)
}

let default_options =
  { sizes = [ 16 ];
    depth = 2;
    mode = Exhaustive;
    domains = 1;
    machines = [ Model.sp2_like ];
    qualities = [ Model.untuned ];
    cache = true;
    cache_compare = false;
    shuffle_seed = None;
    timeout_ms = None;
    fuel = None;
    ns = [];
    specialize = true;
    prune_bounds = false }

(* ------------------------------------------------------------------ *)
(* Candidates                                                          *)
(* ------------------------------------------------------------------ *)

type candidate = {
  c_spec : Spec.t;
  c_label : string;
  c_factors : int;
  c_unconstrained : int;
  c_fully_constrained : bool;
}

(* Canonical compact rendering of a spec; doubles as the dedup key and the
   deterministic ranking tie-break, so it must be injective on the lattice
   (it spells out every plane and every choice). *)
let ref_label (r : Fexpr.ref_) =
  Printf.sprintf "%s(%s)" r.Fexpr.array
    (String.concat "," (List.map Expr.to_string r.Fexpr.idx))

let plane_label (p : Blocking.plane) =
  Printf.sprintf "%s/%d%s"
    (String.concat "," (List.map string_of_int p.Blocking.normal))
    p.Blocking.width
    (if p.Blocking.offset = 0 then ""
     else Printf.sprintf "+%d" p.Blocking.offset)

let factor_label (f : Spec.factor) =
  let b = f.Spec.blocking in
  Printf.sprintf "%s[%s]{%s}" b.Blocking.array
    (String.concat ";" (List.map plane_label b.Blocking.planes))
    (String.concat ";"
       (List.map (fun (s, r) -> s ^ ":" ^ ref_label r) f.Spec.choices))

let spec_label (spec : Spec.t) =
  String.concat " x " (List.map factor_label spec)

let candidate prog spec =
  let unconstrained = List.length (Span.unconstrained_refs prog spec) in
  { c_spec = spec;
    c_label = spec_label spec;
    c_factors = List.length spec;
    c_unconstrained = unconstrained;
    c_fully_constrained = unconstrained = 0 }

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)
(* ------------------------------------------------------------------ *)

(* Single-factor specs: square blocks_2d blockings of each candidate array
   at each size, one per way of choosing a data-centric reference per
   statement. *)
let raw_singles prog ~arrays ~sizes =
  List.concat_map
    (fun array ->
      let choice_sets = Legality.enumerate_choices prog ~array in
      List.concat_map
        (fun size ->
          List.map
            (fun choices ->
              [ Spec.factor (Blocking.blocks_2d ~array ~size) choices ])
            choice_sets)
        sizes)
    arrays

let beam_trim mode cands =
  match mode with
  | Exhaustive -> cands
  | Beam k ->
    let score c = (c.c_unconstrained, c.c_factors, c.c_label) in
    let sorted =
      List.stable_sort (fun a b -> compare (score a) (score b)) cands
    in
    List.filteri (fun i _ -> i < k) sorted

type counts = {
  n_enumerated : int;
  n_pruned : int;
  n_illegal : int;
  n_unknown : int;
  n_legal : int;
  n_variants : int;
  n_pruned_by_bound : int;
      (** legal candidates skipped by the analytic lower-bound pruner
          (zero unless [options.prune_bounds]) *)
}

(* Grow the lattice level by level.  Products of legal factors are legal
   (Section 6), but extensions are still pushed through [Pipeline.probe]:
   the per-factor fast path of [Legality.check_deps] re-decides the factors'
   systems, which is exactly where the memoizing context earns its keep.
   Under a fuel or wall-clock budget the probe can come back [Unknown];
   such a candidate is dropped like an illegal one (conservative) but
   counted separately, so a starved run is visible in the report. *)
let enumerate pipe opts ~arrays =
  let prog = Pipeline.program pipe in
  let enumerated = ref 0 and pruned = ref 0 in
  let illegal = ref 0 and unknown = ref 0 in
  let seen = Hashtbl.create 64 in
  let pruned_seen = Hashtbl.create 64 in
  let legal_of specs =
    List.filter_map
      (fun spec ->
        let c = candidate prog spec in
        if Hashtbl.mem seen c.c_label then None
        else begin
          Hashtbl.add seen c.c_label ();
          incr enumerated;
          match Pipeline.probe pipe spec with
          | Shackle.Verdict.Legal -> Some c
          | Shackle.Verdict.Illegal _ ->
            incr illegal;
            None
          | Shackle.Verdict.Unknown _ ->
            incr unknown;
            None
        end)
      specs
  in
  let singles = legal_of (raw_singles prog ~arrays ~sizes:opts.sizes) in
  let all = ref singles in
  let frontier = ref (beam_trim opts.mode singles) in
  for _level = 2 to opts.depth do
    let extensions =
      List.concat_map
        (fun c ->
          if c.c_fully_constrained then []
          else
            List.filter_map
              (fun s ->
                let p = Spec.product c.c_spec s.c_spec in
                let pc = candidate prog p in
                (* Theorem 2 as the growth rule: keep the extension only if
                   it strictly shrinks the unconstrained-reference set *)
                if pc.c_unconstrained >= c.c_unconstrained then begin
                  if
                    (not (Hashtbl.mem seen pc.c_label))
                    && not (Hashtbl.mem pruned_seen pc.c_label)
                  then begin
                    Hashtbl.add pruned_seen pc.c_label ();
                    incr pruned
                  end;
                  None
                end
                else Some p)
              singles)
        !frontier
    in
    let fresh = legal_of extensions in
    all := !all @ fresh;
    frontier := beam_trim opts.mode fresh
  done;
  (!all, !enumerated, !pruned, !illegal, !unknown)

(* Deterministic Fisher-Yates over a seeded xorshift64 — used only to check
   that the ranking is independent of candidate order. *)
let shuffle seed xs =
  let a = Array.of_list xs in
  let s = ref (Int64.of_int (succ (abs seed))) in
  let next () =
    let x = !s in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    s := x;
    Int64.to_int (Int64.logand x 0x3FFFFFFFL)
  in
  for i = Array.length a - 1 downto 1 do
    let j = next () mod (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* ------------------------------------------------------------------ *)
(* Analytic lower bounds                                               *)
(* ------------------------------------------------------------------ *)

(* A machine's hierarchy in {!Bounds} units: cumulative element
   capacities, one shared line size (true of both reference machines). *)
let machine_levels (m : Model.t) =
  match m.Model.levels with
  | [] -> []
  | l0 :: _ ->
    Bounds.levels_of
      ~line_elems:
        (max 1 (l0.Model.l_cache.Machine.Cache.line_bytes / m.Model.elem_bytes))
      (List.map
         (fun (l : Model.level_spec) ->
           ( l.Model.l_name,
             l.Model.l_cache.Machine.Cache.size_bytes / m.Model.elem_bytes ))
         m.Model.levels)

(* Per-machine per-level miss lower bounds of one candidate, or [None]
   when the program or spec falls outside the affine class the analysis
   covers (such candidates are reported without bounds and never
   pruned). *)
let bounds_for prog ~params ~machines spec =
  match Bounds.analyze ~spec ~params prog with
  | exception (Loopir.Domain.Not_affine _ | Failure _) -> None
  | t ->
    Some
      ( t,
        List.map
          (fun (m : Model.t) ->
            ( m.Model.m_name,
              List.map
                (fun lv -> (lv.Bounds.lv_name, Bounds.misses t lv))
                (machine_levels m) ))
          machines )

(* The simulator's closed-form cost is
     cycles = F*fc + I*ov + A*h1
              + sum_{l<K} m_l*(h_{l+1} - h_l) + m_K*(mem - h_K)
   (accesses reaching level l+1 are exactly the level-l misses).  Every
   per-level coefficient is nonnegative on a sane machine — costs grow
   outward — so substituting lower bounds for each m_l keeps this a lower
   bound.  F and I are candidate-invariant (every legal candidate executes
   the same statement instances, and guards touch no memory), so the
   incumbent's measured values serve; A is likewise invariant without
   forwarding, while with forwarding each distinct element still probes L1
   at least once, so the analytic distinct-data bound stands in.  All
   arithmetic is exact: the cost constants are dyadic, so [Ratio.of_float]
   loses nothing. *)
let cycle_lower_bound ~(machine : Model.t) ~(quality : Model.quality)
    ~(inc : Model.result) ~bounds ~distinct =
  let q = Ratio.of_float in
  let acc =
    ref
      (Ratio.add
         (Ratio.mul (Ratio.of_int inc.Model.r_flops) (q machine.Model.flop_cycles))
         (Ratio.mul (Ratio.of_int inc.Model.r_instances) (q quality.Model.overhead)))
  in
  let probes =
    if quality.Model.forwarding then distinct else inc.Model.r_accesses
  in
  (match machine.Model.levels with
  | [] -> ()
  | l1 :: _ ->
    acc := Ratio.add !acc (Ratio.mul (Ratio.of_int probes) (q l1.Model.l_hit_cycles)));
  let rec go levels bounds =
    match (levels, bounds) with
    | (l : Model.level_spec) :: rest, b :: bs ->
      let next_cost =
        match rest with
        | (nl : Model.level_spec) :: _ -> nl.Model.l_hit_cycles
        | [] -> machine.Model.mem_cycles
      in
      let coef = Ratio.sub (q next_cost) (q l.Model.l_hit_cycles) in
      if Ratio.compare coef Ratio.zero > 0 then
        acc := Ratio.add !acc (Ratio.mul (Ratio.of_int b) coef);
      go rest bs
    | _, _ -> ()
  in
  go machine.Model.levels (List.map snd bounds);
  !acc

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type scored = {
  s_cand : candidate;
  s_results : (string * string * Model.result) list;
      (** (machine, quality, result) per evaluated series, at the first
          evaluated size *)
  s_sweep : (int option * float) list;
      (** head-series cycles per evaluated size ([None] = the caller's
          [params]); singleton unless [options.ns] sweeps *)
  s_cycles : float;
  s_mflops : float;
  s_bounds : (string * (string * int) list) list;
      (** per machine, per cache level: the analytic miss lower bound of
          this candidate at the first evaluated size ([] when the
          program is outside the affine class {!Bounds} handles) *)
}

(* One recording group that crashed or timed out under supervision: its
   candidates are excluded from the ranked table, the campaign completes. *)
type eval_failure = {
  ef_label : string;  (* canonical label of the group's head candidate *)
  ef_reason : string;
}

(* Rank by simulated cycles on the head (machine, quality) series.  Ties
   (common: a product can generate the same program as one of its factors)
   break toward fewer unconstrained references — Theorem 2 as the ranking
   signal, Section 8 — then fewer factors, then the canonical label, so
   the table is deterministic and stable under candidate shuffling. *)
let rank_key s =
  (s.s_cycles, s.s_cand.c_unconstrained, s.s_cand.c_factors, s.s_cand.c_label)

let rank scored =
  List.stable_sort (fun a b -> compare (rank_key a) (rank_key b)) scored

(* Build a row from one candidate's per-size evaluation results; bounds
   are attached later, uniformly for every surviving row. *)
let scored_of_per_size c per_size =
  let head results =
    match results with (_, _, r) :: _ -> r | [] -> assert false
  in
  let sweep =
    List.map (fun (n, results) -> (n, (head results).Model.r_cycles)) per_size
  in
  let first =
    match per_size with (_, results) :: _ -> head results | [] -> assert false
  in
  { s_cand = c;
    s_results = (match per_size with (_, r) :: _ -> r | [] -> []);
    s_sweep = sweep;
    s_cycles = List.fold_left (fun a (_, c) -> a +. c) 0.0 sweep;
    s_mflops = first.Model.r_mflops;
    s_bounds = [] }

(* Generate code for every candidate (sequentially, against the shared
   solver context), group candidates by the text of their generated
   program, then fan the groups over the pool: one interpreter recording
   per distinct (program, size), replayed per (machine x quality).

   [sweeps] is the evaluation size list: (n, params, init) per size, one
   entry when [opts.ns] is empty.  Codegen runs once per candidate no
   matter how long the sweep is; each size re-instantiates the cached
   program through the solver-free specializer (when [opts.specialize]),
   so the Omega query count is invariant in the sweep's length.

   The fan-out is supervised: a group whose recording crashes or blows
   past [opts.timeout_ms] becomes an {!eval_failure} row instead of
   aborting the whole campaign, and its candidates drop out of the ranked
   table.  The worker polls its token between replays, so a timeout is
   observed cooperatively at series granularity. *)
let evaluate pipe opts ~sweeps cands =
  let codegen_seconds = ref 0.0 in
  let order = ref [] in
  let groups : (string, candidate list ref) Hashtbl.t = Hashtbl.create 16 in
  let progs : (string, Ast.program) Hashtbl.t = Hashtbl.create 16 in
  let text_of : (string, string) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let prog_v, s = Metrics.timed (fun () -> Pipeline.codegen pipe c.c_spec) in
      codegen_seconds := !codegen_seconds +. s;
      let text = Ast.program_to_string prog_v in
      Hashtbl.replace text_of c.c_label text;
      match Hashtbl.find_opt groups text with
      | Some cell -> cell := c :: !cell
      | None ->
        Hashtbl.add groups text (ref [ c ]);
        Hashtbl.add progs text prog_v;
        order := text :: !order)
    cands;
  let order = List.rev !order in
  let series =
    List.concat_map
      (fun m -> List.map (fun q -> (m, q)) opts.qualities)
      opts.machines
  in
  let group_label text =
    (List.hd (List.rev !(Hashtbl.find groups text))).c_label
  in
  let per_group =
    Runner.map_outcomes ~domains:opts.domains ?timeout_ms:opts.timeout_ms
      (fun token text ->
        Metrics.collect (fun () ->
            Runner.Token.check token;
            let prog_v = Hashtbl.find progs text in
            let label = group_label text in
            List.map
              (fun (n, params_n, init_n) ->
                Runner.Token.check token;
                let prog_n =
                  if opts.specialize then
                    Loopir.Stages.specialize ~params:params_n prog_v
                  else prog_v
                in
                let label_n =
                  match n with
                  | None -> label
                  | Some n -> Printf.sprintf "%s/N=%d" label n
                in
                let recording, record_seconds =
                  Metrics.timed (fun () ->
                      Model.record prog_n ~params:params_n ~init:init_n)
                in
                let tr = recording.Model.rec_trace in
                ( n,
                  List.mapi
                    (fun i (m, q) ->
                      Runner.Token.check token;
                      let r, replay_seconds =
                        Metrics.timed (fun () ->
                            Model.consume ~machine:m ~quality:q recording)
                      in
                      let first = i = 0 in
                      let trace =
                        { Metrics.tr_executions = (if first then 1 else 0);
                          tr_length = Trace.length tr;
                          tr_chunks = Trace.num_chunks tr;
                          tr_bytes = Trace.bytes tr;
                          tr_record_seconds =
                            (if first then record_seconds else 0.0);
                          tr_replay_seconds = replay_seconds }
                      in
                      Metrics.record
                        (Metrics.of_result ~label:label_n
                           ~machine:m.Model.m_name ~quality:q.Model.q_name
                           ~seconds:
                             ((if first then record_seconds else 0.0)
                             +. replay_seconds)
                           ~trace r);
                      (m.Model.m_name, q.Model.q_name, r))
                    series ))
              sweeps))
      order
  in
  let results_of_text = Hashtbl.create 16 in
  let metrics = ref [] in
  let failures = ref [] in
  List.iter2
    (fun text outcome ->
      match outcome with
      | Runner.Ok (results, ms) ->
        Hashtbl.replace results_of_text text results;
        metrics := ms :: !metrics
      | Runner.Failed (e, _) ->
        failures :=
          { ef_label = group_label text;
            ef_reason = Printf.sprintf "crash: %s" (Printexc.to_string e) }
          :: !failures
      | Runner.Timed_out ->
        failures :=
          { ef_label = group_label text;
            ef_reason =
              (match opts.timeout_ms with
              | Some ms -> Printf.sprintf "timed out (no result within %d ms)" ms
              | None -> "timed out") }
          :: !failures)
    order per_group;
  let scored =
    List.filter_map
      (fun c ->
        match
          Hashtbl.find_opt results_of_text (Hashtbl.find text_of c.c_label)
        with
        | None -> None (* its recording group failed; reported separately *)
        | Some per_size -> Some (scored_of_per_size c per_size))
      cands
  in
  let metrics = List.concat (List.rev !metrics) in
  (scored, List.length order, !codegen_seconds, metrics, List.rev !failures)

(* Sequential lower-bound-driven evaluation ([options.prune_bounds]).
   Candidates are visited in ascending order of their analytic bound so a
   strong incumbent appears early.  Each visit either reuses the results
   of an already-evaluated identical program, is skipped because its
   cycle lower bound strictly exceeds the incumbent's simulated cycles
   (the bound never exceeds the true cost, so such a candidate loses the
   rank key's first component and cannot finish first — ties are kept,
   since the tie-break could still prefer it), or is recorded and
   replayed exactly as in {!evaluate}.  Runs sequentially on the calling
   domain: the point of pruning is doing less simulation, not racing
   it. *)
let evaluate_pruned pipe opts ~sweeps cands =
  let prog = Pipeline.program pipe in
  let codegen_seconds = ref 0.0 in
  let metrics = ref [] in
  let failures = ref [] in
  let pruned_by_bound = ref 0 in
  let series =
    List.concat_map
      (fun m -> List.map (fun q -> (m, q)) opts.qualities)
      opts.machines
  in
  let head_series = match series with s :: _ -> Some s | [] -> None in
  (* the spec-aware analysis at every sweep size; [None] disables pruning
     for that candidate *)
  let analyses =
    List.map
      (fun c ->
        let per_size =
          List.map
            (fun (_, params_n, _) ->
              match Bounds.analyze ~spec:c.c_spec ~params:params_n prog with
              | exception (Loopir.Domain.Not_affine _ | Failure _) -> None
              | t -> Some t)
            sweeps
        in
        if List.for_all Option.is_some per_size then
          (c, Some (List.filter_map Fun.id per_size))
        else (c, None))
      cands
  in
  (* deterministic visit order: head-machine bound summed over levels and
     sweep, unanalyzable candidates last, canonical label as tie-break *)
  let ordered =
    let proxy (c, a) =
      match (a, head_series) with
      | Some ts, Some ((m : Model.t), _) ->
        let lvs = machine_levels m in
        ( List.fold_left
            (fun acc t ->
              List.fold_left (fun acc lv -> acc + Bounds.misses t lv) acc lvs)
            0 ts,
          c.c_label )
      | _ -> (max_int, c.c_label)
    in
    List.map snd
      (List.stable_sort compare
         (List.map (fun ca -> (proxy ca, ca)) analyses))
  in
  let results_of_text = Hashtbl.create 16 in
  let incumbent = ref None in
  let head_results per_size =
    List.map
      (fun (_, results) ->
        match results with (_, _, r) :: _ -> r | [] -> assert false)
      per_size
  in
  let update_incumbent sc per_size =
    match !incumbent with
    | Some (best, _) when compare (rank_key best) (rank_key sc) <= 0 -> ()
    | _ -> incumbent := Some (sc, head_results per_size)
  in
  let eval_text text prog_v label =
    match
      Metrics.collect (fun () ->
          List.map
            (fun (n, params_n, init_n) ->
              let prog_n =
                if opts.specialize then
                  Loopir.Stages.specialize ~params:params_n prog_v
                else prog_v
              in
              let label_n =
                match n with
                | None -> label
                | Some n -> Printf.sprintf "%s/N=%d" label n
              in
              let recording, record_seconds =
                Metrics.timed (fun () ->
                    Model.record prog_n ~params:params_n ~init:init_n)
              in
              let tr = recording.Model.rec_trace in
              ( n,
                List.mapi
                  (fun i (m, q) ->
                    let r, replay_seconds =
                      Metrics.timed (fun () ->
                          Model.consume ~machine:m ~quality:q recording)
                    in
                    let first = i = 0 in
                    let trace =
                      { Metrics.tr_executions = (if first then 1 else 0);
                        tr_length = Trace.length tr;
                        tr_chunks = Trace.num_chunks tr;
                        tr_bytes = Trace.bytes tr;
                        tr_record_seconds =
                          (if first then record_seconds else 0.0);
                        tr_replay_seconds = replay_seconds }
                    in
                    Metrics.record
                      (Metrics.of_result ~label:label_n
                         ~machine:m.Model.m_name ~quality:q.Model.q_name
                         ~seconds:
                           ((if first then record_seconds else 0.0)
                           +. replay_seconds)
                         ~trace r);
                    (m.Model.m_name, q.Model.q_name, r))
                  series ))
            sweeps)
    with
    | exception e ->
      failures :=
        { ef_label = label;
          ef_reason = Printf.sprintf "crash: %s" (Printexc.to_string e) }
        :: !failures;
      None
    | per_size, ms ->
      metrics := ms :: !metrics;
      Hashtbl.replace results_of_text text per_size;
      Some per_size
  in
  let scored = ref [] in
  List.iter
    (fun (c, analysis) ->
      let prog_v, s = Metrics.timed (fun () -> Pipeline.codegen pipe c.c_spec) in
      codegen_seconds := !codegen_seconds +. s;
      let text = Ast.program_to_string prog_v in
      match Hashtbl.find_opt results_of_text text with
      | Some per_size ->
        (* an identical program was already simulated: its results are
           free, so never prune here *)
        let sc = scored_of_per_size c per_size in
        scored := sc :: !scored;
        update_incumbent sc per_size
      | None ->
        let pruned =
          match (!incumbent, analysis, head_series) with
          | Some (inc_scored, inc_results), Some ts, Some (m, q) ->
            let lvs = machine_levels m in
            let lb =
              List.fold_left2
                (fun acc t (inc : Model.result) ->
                  let bounds =
                    List.map
                      (fun lv -> (lv.Bounds.lv_name, Bounds.misses t lv))
                      lvs
                  in
                  Ratio.add acc
                    (cycle_lower_bound ~machine:m ~quality:q ~inc ~bounds
                       ~distinct:(Bounds.distinct t)))
                Ratio.zero ts inc_results
            in
            Ratio.compare lb (Ratio.of_float inc_scored.s_cycles) > 0
          | _ -> false
        in
        if pruned then incr pruned_by_bound
        else
          (match eval_text text prog_v c.c_label with
          | None -> ()
          | Some per_size ->
            let sc = scored_of_per_size c per_size in
            scored := sc :: !scored;
            update_incumbent sc per_size))
    ordered;
  let metrics = List.concat (List.rev !metrics) in
  ( List.rev !scored,
    Hashtbl.length results_of_text,
    !codegen_seconds,
    metrics,
    List.rev !failures,
    !pruned_by_bound )

(* ------------------------------------------------------------------ *)
(* Cache effectiveness                                                 *)
(* ------------------------------------------------------------------ *)

type cache_compare = {
  cc_cold_seconds : float;
  cc_warm_seconds : float;
  cc_warm_hits : int;
  cc_agree : bool;
}

(* Re-decide every candidate on a fresh memoizing context: the cold pass
   fills the table, the warm pass replays the same queries.  Verdicts must
   agree; the wall-clock ratio is reported, not asserted (a loaded 1-core
   CI machine makes timing assertions flaky). *)
let run_cache_compare pipe cands =
  let prog = Pipeline.program pipe in
  let deps = Pipeline.deps pipe in
  let ctx = Omega.Ctx.create ~cache:true () in
  let verdicts () =
    List.map (fun c -> Legality.is_legal_deps ~ctx prog c.c_spec deps) cands
  in
  let cold, cc_cold_seconds = Metrics.timed verdicts in
  let hits0 = Omega.Ctx.cache_hits ctx in
  let warm, cc_warm_seconds = Metrics.timed verdicts in
  { cc_cold_seconds;
    cc_warm_seconds;
    cc_warm_hits = Omega.Ctx.cache_hits ctx - hits0;
    cc_agree = cold = warm }

(* ------------------------------------------------------------------ *)
(* The tuner                                                           *)
(* ------------------------------------------------------------------ *)

type timing = {
  t_enumerate : float;
  t_codegen : float;
  t_evaluate : float;
  t_total : float;
}

type report = {
  rp_kernel : string;
  rp_params : (string * int) list;
  rp_options : options;
  rp_counts : counts;
  rp_solver : Metrics.solver;
  rp_timing : timing;
  rp_cache_compare : cache_compare option;
  rp_input_cycles : float;
  rp_table : scored list;
  rp_failures : eval_failure list;
  rp_metrics : Metrics.sim list;
}

let best rp = match rp.rp_table with [] -> None | s :: _ -> Some s

let tune ?(options = default_options) ?arrays ?init ~kernel ~params prog =
  let t_start = Metrics.now_s () in
  let init_for n =
    match init with
    | Some f -> f
    | None -> Kernels.Inits.for_kernel kernel ~n
  in
  let base_n = Option.value ~default:0 (List.assoc_opt "N" params) in
  (* the evaluation sweep: the caller's params alone, or one point per
     [options.ns] size (params with N rebound, kernel init re-derived) *)
  let sweeps =
    match options.ns with
    | [] -> [ (None, params, init_for base_n) ]
    | ns ->
      List.map
        (fun n ->
          (Some n, ("N", n) :: List.remove_assoc "N" params, init_for n))
        ns
  in
  let pipe =
    Pipeline.create
      ~solver:
        (Omega.Ctx.create ~cache:options.cache ?fuel:options.fuel
           ?timeout_ms:options.timeout_ms ())
      prog
  in
  let arrays =
    match arrays with Some a -> a | None -> Search.default_arrays prog
  in
  let (cands, n_enumerated, n_pruned, n_illegal, n_unknown), t_enumerate =
    Metrics.timed (fun () -> enumerate pipe options ~arrays)
  in
  let cands =
    match options.shuffle_seed with
    | None -> cands
    | Some s -> shuffle s cands
  in
  let ( (scored, n_variants, t_codegen, metrics, failures, n_pruned_by_bound),
        t_evaluate ) =
    Metrics.timed (fun () ->
        if options.prune_bounds then evaluate_pruned pipe options ~sweeps cands
        else
          let scored, v, cg, ms, fs = evaluate pipe options ~sweeps cands in
          (scored, v, cg, ms, fs, 0))
  in
  (* attach the analytic miss lower bounds (at the first evaluated size) to
     every surviving row, pruned mode or not: tune-report/4 reports each
     candidate's headroom = simulated misses / lower bound, per level *)
  let head_params = match sweeps with (_, p, _) :: _ -> p | [] -> params in
  let scored =
    List.map
      (fun s ->
        match
          bounds_for prog ~params:head_params ~machines:options.machines
            s.s_cand.c_spec
        with
        | None -> s
        | Some (_, per_machine) -> { s with s_bounds = per_machine })
      scored
  in
  (* the input baseline walks the same sweep, so speedup = input / best
     compares like with like *)
  let input_cycles =
    match (options.machines, options.qualities) with
    | machine :: _, quality :: _ ->
      List.fold_left
        (fun acc (_, params_n, init_n) ->
          let prog_n =
            if options.specialize then
              Loopir.Stages.specialize ~params:params_n prog
            else prog
          in
          acc
          +. (Model.consume ~machine ~quality
                (Model.record prog_n ~params:params_n ~init:init_n))
               .Model.r_cycles)
        0.0 sweeps
    | _ -> 0.0
  in
  let cache_compare =
    if options.cache_compare then Some (run_cache_compare pipe cands) else None
  in
  { rp_kernel = kernel;
    rp_params = params;
    rp_options = options;
    rp_counts =
      { n_enumerated;
        n_pruned;
        n_illegal;
        n_unknown;
        n_legal = List.length cands;
        n_variants;
        n_pruned_by_bound };
    rp_solver = Metrics.solver_of_ctx (Pipeline.solver pipe);
    rp_timing =
      { t_enumerate;
        t_codegen;
        t_evaluate;
        t_total = Metrics.now_s () -. t_start };
    rp_cache_compare = cache_compare;
    rp_input_cycles = input_cycles;
    rp_table = rank scored;
    rp_failures = failures;
    rp_metrics = metrics }

(* ------------------------------------------------------------------ *)
(* Fuzz-harness consistency step                                       *)
(* ------------------------------------------------------------------ *)

(* Differential check used by the fuzzer: on the program's single-factor
   lattice, a memoizing solver context must give the same legality answers
   as a fresh cache-less one.  Returns how many specs were compared. *)
let consistency_step ?(sizes = [ 2 ]) ?(max_specs = 8) prog =
  let arrays = Search.default_arrays prog in
  let specs =
    List.filteri
      (fun i _ -> i < max_specs)
      (raw_singles prog ~arrays ~sizes)
  in
  match specs with
  | [] -> Ok 0
  | _ -> begin
    let pipe = Pipeline.create prog in
    let deps = Pipeline.deps pipe in
    let plain = Omega.Ctx.create () in
    match
      List.find_opt
        (fun spec ->
          Pipeline.is_legal_deps pipe spec ~deps
          <> Legality.is_legal_deps ~ctx:plain prog spec deps)
        specs
    with
    | None -> Ok (List.length specs)
    | Some spec ->
      Error
        (Printf.sprintf "cached/uncached legality disagree on %s"
           (spec_label spec))
  end

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let schema = "tune-report/4"

let int_opt_json = function None -> Json.Null | Some i -> Json.Int i

(* "lower_bounds": per machine, per level, the analytic miss lower bound
   of this candidate at the first evaluated size. *)
let lower_bounds_json s =
  Json.List
    (List.map
       (fun (m, lvs) ->
         Json.Obj
           [ ("machine", Json.Str m);
             ("levels",
               Json.Obj (List.map (fun (n, b) -> (n, Json.Int b)) lvs)) ])
       s.s_bounds)

(* "headroom": simulated misses / lower bound per level — how far the
   candidate sits above what any execution order could achieve (always
   >= 1.0 by soundness; null where the bound or the series is missing). *)
let headroom_json s =
  Json.List
    (List.map
       (fun (mname, lvs) ->
         let result =
           List.find_map
             (fun (m, _, r) -> if String.equal m mname then Some r else None)
             s.s_results
         in
         let levels =
           match result with
           | None -> List.map (fun (n, _) -> (n, Json.Null)) lvs
           | Some r ->
             List.mapi
               (fun i (n, b) ->
                 match List.nth_opt r.Model.r_levels i with
                 | Some (st : Model.level_stat) when b > 0 ->
                   ( n,
                     Json.Float
                       (float_of_int st.Model.s_misses /. float_of_int b) )
                 | _ -> (n, Json.Null))
               lvs
         in
         Json.Obj [ ("machine", Json.Str mname); ("levels", Json.Obj levels) ])
       s.s_bounds)

let scored_to_json i s =
  Json.Obj
    [ ("rank", Json.Int (i + 1));
      ("spec", Json.Str s.s_cand.c_label);
      ("factors", Json.Int s.s_cand.c_factors);
      ("fully_constrained", Json.Bool s.s_cand.c_fully_constrained);
      ("unconstrained_refs", Json.Int s.s_cand.c_unconstrained);
      ("cycles", Json.Float s.s_cycles);
      ("mflops", Json.Float s.s_mflops);
      ("lower_bounds", lower_bounds_json s);
      ("headroom", headroom_json s);
      ("sweep",
        Json.List
          (List.map
             (fun (n, cycles) ->
               Json.Obj
                 [ ("n", int_opt_json n); ("cycles", Json.Float cycles) ])
             s.s_sweep));
      ("results",
        Json.List
          (List.map
             (fun (m, q, (r : Model.result)) ->
               Json.Obj
                 [ ("machine", Json.Str m);
                   ("quality", Json.Str q);
                   ("cycles", Json.Float r.Model.r_cycles);
                   ("mflops", Json.Float r.Model.r_mflops);
                   ("flops", Json.Int r.Model.r_flops);
                   ("accesses", Json.Int r.Model.r_accesses) ])
             s.s_results)) ]

let cache_compare_to_json c =
  Json.Obj
    [ ("cold_seconds", Json.Float c.cc_cold_seconds);
      ("warm_seconds", Json.Float c.cc_warm_seconds);
      ("warm_hits", Json.Int c.cc_warm_hits);
      ("agree", Json.Bool c.cc_agree) ]

(* The "cache_compare" key is appended only when the pass ran, so default
   reports keep one byte layout (same convention as Metrics' "trace"). *)
let report_to_json rp =
  let o = rp.rp_options in
  Json.Obj
    ([ ("schema", Json.Str schema);
       ("kernel", Json.Str rp.rp_kernel);
       ("mode", Json.Str (mode_string o.mode));
       ("domains", Json.Int o.domains);
       ("params", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) rp.rp_params));
       ("sizes", Json.List (List.map (fun s -> Json.Int s) o.sizes));
       ("ns", Json.List (List.map (fun n -> Json.Int n) o.ns));
       ("specialize", Json.Bool o.specialize);
       ("prune_bounds", Json.Bool o.prune_bounds);
       ("depth", Json.Int o.depth);
       ("cache", Json.Bool o.cache);
       ("timeout_ms", int_opt_json o.timeout_ms);
       ("fuel", int_opt_json o.fuel);
       ("machines",
         Json.List
           (List.map (fun (m : Model.t) -> Json.Str m.Model.m_name) o.machines));
       ("qualities",
         Json.List
           (List.map
              (fun (q : Model.quality) -> Json.Str q.Model.q_name)
              o.qualities));
       ("counts",
         Json.Obj
           [ ("enumerated", Json.Int rp.rp_counts.n_enumerated);
             ("pruned", Json.Int rp.rp_counts.n_pruned);
             ("illegal", Json.Int rp.rp_counts.n_illegal);
             ("unknown", Json.Int rp.rp_counts.n_unknown);
             ("legal", Json.Int rp.rp_counts.n_legal);
             ("variants", Json.Int rp.rp_counts.n_variants);
             ("pruned_by_bound", Json.Int rp.rp_counts.n_pruned_by_bound) ]);
       ("solver", Metrics.solver_to_json rp.rp_solver);
       (* Omega tests actually run for the whole campaign — with [ns] a
          sweep, invariant in its length (specialization is solver-free) *)
       ("solves_per_sweep", Json.Int (Metrics.solver_solves rp.rp_solver));
       ("timing",
         Json.Obj
           [ ("enumerate_seconds", Json.Float rp.rp_timing.t_enumerate);
             ("codegen_seconds", Json.Float rp.rp_timing.t_codegen);
             ("evaluate_seconds", Json.Float rp.rp_timing.t_evaluate);
             ("total_seconds", Json.Float rp.rp_timing.t_total) ]);
       ("input_cycles", Json.Float rp.rp_input_cycles);
       ("best",
         match best rp with
         | Some s -> Json.Str s.s_cand.c_label
         | None -> Json.Null);
       ("table", Json.List (List.mapi scored_to_json rp.rp_table));
       ("failures",
         Json.List
           (List.map
              (fun f ->
                Json.Obj
                  [ ("spec", Json.Str f.ef_label);
                    ("reason", Json.Str f.ef_reason) ])
              rp.rp_failures));
       ("metrics", Json.List (List.map Metrics.sim_to_json rp.rp_metrics)) ]
    @
    match rp.rp_cache_compare with
    | None -> []
    | Some c -> [ ("cache_compare", cache_compare_to_json c) ])

(* Structural validation for `shacklec tune --check-json` and CI: the
   shared registry does the work (including migrate-on-read of /3
   reports); this wrapper only pins the family, so a valid fuzz report
   handed to `tune --check-json` still fails. *)
let check_report_json j =
  let ( let* ) = Result.bind in
  let* tag = Report.check j in
  if String.equal tag schema then Ok ()
  else Error (Printf.sprintf "schema %S, expected %S" tag schema)

(* ------------------------------------------------------------------ *)
(* Terminal table                                                      *)
(* ------------------------------------------------------------------ *)

let pp_report fmt rp =
  let c = rp.rp_counts in
  Format.fprintf fmt "tune %s (%s, depth %d, sizes %s%s)@." rp.rp_kernel
    (mode_string rp.rp_options.mode)
    rp.rp_options.depth
    (String.concat "," (List.map string_of_int rp.rp_options.sizes))
    (match rp.rp_options.ns with
    | [] -> ""
    | ns ->
      Printf.sprintf ", N sweep %s%s"
        (String.concat "," (List.map string_of_int ns))
        (if rp.rp_options.specialize then "" else " unspecialized"));
  Format.fprintf fmt
    "  candidates: %d enumerated, %d pruned (Thm 2), %d illegal%s, %d legal, %d distinct programs%s@."
    c.n_enumerated c.n_pruned c.n_illegal
    (if c.n_unknown = 0 then ""
     else Printf.sprintf ", %d unknown (budget)" c.n_unknown)
    c.n_legal c.n_variants
    (if c.n_pruned_by_bound = 0 then ""
     else Printf.sprintf ", %d pruned by bound" c.n_pruned_by_bound);
  let s = rp.rp_solver in
  Format.fprintf fmt
    "  solver: %d queries, %d splinters%s; cache %s, %d hits / %d misses@."
    s.Metrics.so_queries s.Metrics.so_splinters
    (if s.Metrics.so_unknowns = 0 then ""
     else Printf.sprintf ", %d gave up" s.Metrics.so_unknowns)
    (if s.Metrics.so_cache_enabled then "on" else "off")
    s.Metrics.so_cache_hits s.Metrics.so_cache_misses;
  Format.fprintf fmt "  solves per sweep: %d@." (Metrics.solver_solves s);
  (match rp.rp_cache_compare with
  | None -> ()
  | Some cc ->
    Format.fprintf fmt
      "  cache check: cold %.4fs, warm %.4fs (%d hits), verdicts %s@."
      cc.cc_cold_seconds cc.cc_warm_seconds cc.cc_warm_hits
      (if cc.cc_agree then "agree" else "DISAGREE"));
  Format.fprintf fmt "  input: %.0f cycles@." rp.rp_input_cycles;
  Format.fprintf fmt "  %-4s %-12s %-10s %-7s %-7s %s@." "rank" "cycles"
    "mflops" "hdrm" "full" "spec";
  (* hdrm: head-machine L1 simulated misses / analytic lower bound *)
  let head_headroom s =
    match (s.s_bounds, s.s_results) with
    | (_, (_, b1) :: _) :: _, (_, _, r) :: _ when b1 > 0 -> (
      match r.Model.r_levels with
      | st :: _ ->
        Printf.sprintf "%.2f"
          (float_of_int st.Model.s_misses /. float_of_int b1)
      | [] -> "-")
    | _ -> "-"
  in
  List.iteri
    (fun i s ->
      Format.fprintf fmt "  %-4d %-12.0f %-10.2f %-7s %-7s %s@." (i + 1)
        s.s_cycles s.s_mflops (head_headroom s)
        (if s.s_cand.c_fully_constrained then "yes" else "no")
        s.s_cand.c_label)
    rp.rp_table;
  List.iter
    (fun f ->
      Format.fprintf fmt "  FAILED %s: %s@." f.ef_label f.ef_reason)
    rp.rp_failures;
  Format.fprintf fmt "  wall: enumerate %.4fs, codegen %.4fs, evaluate %.4fs, total %.4fs@."
    rp.rp_timing.t_enumerate rp.rp_timing.t_codegen rp.rp_timing.t_evaluate
    rp.rp_timing.t_total
