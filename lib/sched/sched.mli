(** Dependence-aware parallel execution of shackled blocks.

    The generated blocked code's outermost loops enumerate block
    coordinates; each instance of that coordinate band is one {e block
    task}.  A plan peels the band, enumerates the concrete task grid for
    one parameter binding, and builds the block-task DAG by probing the
    legality machinery's block-pair systems ({!Shackle.Legality.block_pair_systems})
    for the feasible per-coordinate range of [zd - zs].  The per-coordinate
    box over-approximates the true delta set, so the induced edges only
    ever add ordering — correctness never depends on the solver being
    precise, and [Unknown] or an oversized box degrades to the sequential
    chain.

    Execution is hybrid, per the plan's dependence structure:

    - {e wavefront} when the edge deltas form a small uniform set (a
      regular affine recurrence): tasks run level by level from a
      longest-path layering, with an atomic per-level index and a spin
      barrier;
    - {e work stealing} otherwise: per-worker {!Runner.Deque}s with atomic
      in-degree counters, thieves scanning the other deques oldest-first.

    Each task records its own access trace; the deterministic merge
    ({!Trace.concat} in task order) is byte-identical to a sequential
    recording of the same variant for any domain count, which is what the
    par=seq CI equivalence matrix and the fuzz [Par] oracle layer check. *)

type mode = Sequential | Wavefront | Steal

val mode_string : mode -> string

type plan

val plan :
  ?max_tasks:int ->
  ?max_box:int ->
  ?prog:Loopir.Ast.program ->
  Pipeline.t ->
  spec:Shackle.Spec.t option ->
  params:(string * int) list ->
  plan
(** Build the block-task DAG for the chosen variant at concrete [params].
    [prog], when given, must be [Pipeline.variant pipe spec] (it is
    recomputed otherwise).  The spec must be legal: a legal shackle visits
    every dependence's source block no later than its destination block,
    which is what makes the DAG acyclic and forward-only.  [None], a
    bandless variant, a grid larger than [max_tasks] (default 2048) or a
    delta box larger than [max_box] (default 4096) all degrade to a safe
    single-task or chain plan. *)

val tasks : plan -> int
val edges : plan -> int
val levels : plan -> int list list
(** Wavefront layering (longest path): level -> task ids, ascending. *)

val mode : plan -> mode
val max_width : plan -> int
val serialized : plan -> bool
(** True when the conservative chain fallback replaced the real DAG. *)

type stats = {
  st_tasks : int;
  st_edges : int;
  st_wavefronts : int;
  st_max_width : int;
  st_mode : mode;
  st_domains : int;
  st_serialized : bool;
  st_steals : int;  (** dynamic — varies run to run, excluded from diffs *)
  st_stalls : int;  (** dynamic — varies run to run, excluded from diffs *)
}

type result = {
  x_store : Exec.Store.t;
  x_flops : int;
  x_trace : Trace.t option;
      (** deterministic merge of the per-task traces, task order *)
  x_parts : Trace.t array;  (** per-task traces; [[||]] when untraced *)
  x_task_flops : int array;
  x_stats : stats;
}

val exec :
  ?layouts:(string * Exec.Store.layout) list ->
  ?domains:int ->
  ?trace:bool ->
  ?chunk_words:int ->
  plan ->
  init:(string -> int array -> float) ->
  result
(** Execute the plan over [domains] workers (default 1: in the calling
    domain, no spawns).  The store, flop count, per-task traces and merged
    trace are bit-identical for every [domains]; only [st_steals] and
    [st_stalls] vary.  A worker exception aborts the run and is re-raised
    (with its backtrace) after all domains join. *)

val record :
  ?layouts:(string * Exec.Store.layout) list ->
  ?domains:int ->
  ?chunk_words:int ->
  plan ->
  init:(string -> int array -> float) ->
  Machine.Model.recording * result
(** [exec ~trace:true] packaged as a replayable recording — the drop-in
    parallel replacement for [Pipeline.record], byte-identical to it. *)

val smp :
  ?machine:Machine.Model.t ->
  ?quality:Machine.Model.quality ->
  cores:int ->
  plan ->
  result ->
  Machine.Model.Smp.smp_result
(** Shared-L2 multicore replay of a traced result ({!Machine.Model.Smp}):
    private first-level caches per virtual core, shared levels below,
    deterministic round-robin task assignment and stream interleave per
    wavefront group.  [machine] defaults to [two_level], [quality] to
    [tuned]. *)
