module Ast = Loopir.Ast
module E = Loopir.Expr
module Spec = Shackle.Spec
module Legality = Shackle.Legality
module Dep = Dependence.Dep
module A = Polyhedra.Affine
module C = Polyhedra.Constr
module S = Polyhedra.System
module Omega = Polyhedra.Omega
module Store = Exec.Store
module Interp = Exec.Interp
module Model = Machine.Model

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

type mode = Sequential | Wavefront | Steal

let mode_string = function
  | Sequential -> "sequential"
  | Wavefront -> "wavefront"
  | Steal -> "steal"

type plan = {
  pl_prog : Ast.program;  (* the generated variant, untouched *)
  pl_task_prog : Ast.program;  (* residual body; band vars are params *)
  pl_band : string list;  (* peeled coordinate loop vars, outer first *)
  pl_params : (string * int) list;
  pl_coords : int array array;  (* per task, band-var values, lex order *)
  pl_succs : int array array;
  pl_npreds : int array;
  pl_levels : int array array;  (* wavefront layering, level -> task ids *)
  pl_mode : mode;
  pl_edges : int;
  pl_serialized : bool;  (* conservative chain fallback engaged *)
}

let tasks plan = Array.length plan.pl_coords
let edges plan = plan.pl_edges
let levels plan = Array.map Array.to_list plan.pl_levels |> Array.to_list
let mode plan = plan.pl_mode
let serialized plan = plan.pl_serialized

let max_width plan =
  Array.fold_left (fun m l -> max m (Array.length l)) 0 plan.pl_levels

(* The maximal outer band of perfectly nested block-coordinate loops.  The
   generated code puts the (possibly triangular, possibly collapsed)
   coordinate loops outermost; each instance of the band is one shackle
   block — the unit the scheduler moves around. *)
let peel_band coord_names (prog : Ast.program) =
  let rec go acc body =
    match body with
    | [ Ast.Loop l ] when List.mem l.var coord_names ->
      go ((l.var, l.lo, l.hi) :: acc) l.body
    | _ -> (List.rev acc, body)
  in
  go [] prog.body

exception Too_many

(* All concrete band-coordinate tuples, in loop (= lexicographic) order.
   Triangular bounds are handled by evaluating each loop's bounds under
   the values of the outer ones. *)
let enumerate_tasks ~max_tasks band ~params =
  let env : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace env k v) params;
  let lookup n =
    match Hashtbl.find_opt env n with
    | Some v -> v
    | None -> invalid_arg ("Sched: unbound variable " ^ n ^ " in band bounds")
  in
  let out = ref [] in
  let count = ref 0 in
  let nb = List.length band in
  let cur = Array.make nb 0 in
  let rec go i = function
    | [] ->
      incr count;
      if !count > max_tasks then raise Too_many;
      out := Array.copy cur :: !out
    | (var, lo, hi) :: rest ->
      let a = E.eval lookup lo and b = E.eval lookup hi in
      for v = a to b do
        cur.(i) <- v;
        Hashtbl.replace env var v;
        go (i + 1) rest
      done;
      Hashtbl.remove env var
  in
  go 0 band;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Dependence edges                                                    *)
(* ------------------------------------------------------------------ *)

(* Feasible range of [zd_k - zs_k] over one block-pair system, by binary
   search on solver queries.  Satisfiability of [delta >= c] is antitone
   in [c], so the maximum is found in O(log range) queries; [Unknown] is
   treated as satisfiable, which only widens the range — more edges, more
   ordering, never less. *)
let delta_range ctx base ~dim ~src ~dst ~lo ~hi =
  let delta = A.sub (A.var dim dst) (A.var dim src) in
  let sat_ge c =
    match Omega.decide ~ctx (S.add base (C.ge_of delta (A.of_int dim c))) with
    | Omega.Sat | Omega.Unknown _ -> true
    | Omega.Unsat -> false
  in
  let sat_le c =
    match Omega.decide ~ctx (S.add base (C.le_of delta (A.of_int dim c))) with
    | Omega.Sat | Omega.Unknown _ -> true
    | Omega.Unsat -> false
  in
  if not (sat_ge lo) || not (sat_le hi) then None
  else begin
    let dmax =
      if sat_ge hi then hi
      else begin
        (* invariant: sat_ge l, not (sat_ge h) *)
        let l = ref lo and h = ref hi in
        while !h - !l > 1 do
          let m = !l + ((!h - !l) / 2) in
          if sat_ge m then l := m else h := m
        done;
        !l
      end
    in
    let dmin =
      if sat_le lo then lo
      else begin
        let l = ref lo and h = ref hi in
        (* invariant: not (sat_le l), sat_le h *)
        while !h - !l > 1 do
          let m = !l + ((!h - !l) / 2) in
          if sat_le m then h := m else l := m
        done;
        !h
      end
    in
    Some (dmin, dmax)
  end

(* first nonzero coordinate decides *)
let lex_positive d =
  let rec go i =
    if i >= Array.length d then false
    else if d.(i) > 0 then true
    else if d.(i) < 0 then false
    else go (i + 1)
  in
  go 0

exception Serialize

(* Edges from the delta boxes of every (dependence, disjunct) pair.  The
   per-coordinate box is an over-approximation of the true delta set, so
   applying the full product only ever adds ordering: correctness never
   depends on the box being tight.  When the solver gives up or a box is
   too large to enumerate, the plan degenerates to the sequential chain —
   the always-correct fallback. *)
let build_edges pipe spec ~band_pos ~coords ~params ~max_box =
  let prog = Pipeline.program pipe in
  let ctx = Pipeline.solver pipe in
  let n = Array.length coords in
  let nb = Array.length band_pos in
  let index = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i c -> Hashtbl.replace index (Array.to_list c) i)
    coords;
  (* in-grid delta bounds per band position *)
  let rmin = Array.make nb max_int and rmax = Array.make nb min_int in
  Array.iter
    (fun c ->
      Array.iteri
        (fun j v ->
          rmin.(j) <- min rmin.(j) v;
          rmax.(j) <- max rmax.(j) v)
        c)
    coords;
  let edge_set = Hashtbl.create (4 * n) in
  let add_edge a b =
    if not (Hashtbl.mem edge_set (a, b)) then Hashtbl.replace edge_set (a, b) ()
  in
  let attempts = ref 0 in
  (try
     List.iter
       (fun dep ->
         List.iter
           (fun (ps : Legality.pair_system) ->
             let dim = S.dim ps.Legality.ps_system in
             (* fix the program parameters to their concrete values *)
             let base =
               S.add_list ps.Legality.ps_system
                 (List.filter_map
                    (fun (name, idx) ->
                      match List.assoc_opt name params with
                      | Some v -> Some (C.eq_of (A.var dim idx) (A.of_int dim v))
                      | None -> None)
                    ps.Legality.ps_params)
             in
             match Omega.decide ~ctx base with
             | Omega.Unsat -> ()
             | Omega.Unknown _ -> raise Serialize
             | Omega.Sat ->
               let boxes =
                 Array.to_list
                   (Array.mapi
                      (fun j k ->
                        delta_range ctx base ~dim
                          ~src:(ps.Legality.ps_src_base + k)
                          ~dst:(ps.Legality.ps_dst_base + k)
                          ~lo:(rmin.(j) - rmax.(j))
                          ~hi:(rmax.(j) - rmin.(j)))
                      band_pos)
               in
               if List.for_all Option.is_some boxes then begin
                 let boxes = List.map Option.get boxes in
                 let size =
                   List.fold_left
                     (fun acc (lo, hi) -> acc * (hi - lo + 1))
                     1 boxes
                 in
                 if size > max_box then raise Serialize;
                 (* enumerate the box product once, apply to every task *)
                 let deltas = ref [] in
                 let d = Array.make nb 0 in
                 let rec gen j = function
                   | [] -> if lex_positive d then deltas := Array.copy d :: !deltas
                   | (lo, hi) :: rest ->
                     for v = lo to hi do
                       d.(j) <- v;
                       gen (j + 1) rest
                     done
                 in
                 gen 0 boxes;
                 List.iter
                   (fun delta ->
                     Array.iteri
                       (fun a c ->
                         incr attempts;
                         if !attempts > 4_000_000 then raise Serialize;
                         let target =
                           List.init nb (fun j -> c.(j) + delta.(j))
                         in
                         match Hashtbl.find_opt index target with
                         | Some b -> add_edge a b
                         | None -> ())
                       coords)
                   !deltas
               end
               (* a coordinate with no in-grid delta: no in-grid pairs *))
           (Legality.block_pair_systems prog spec dep))
       (Pipeline.deps pipe);
     (Hashtbl.fold (fun (a, b) () acc -> (a, b) :: acc) edge_set [], false)
   with Serialize ->
     (* the sequential chain: always correct, no parallelism *)
     (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)), true))

(* ------------------------------------------------------------------ *)
(* Layering and mode choice                                            *)
(* ------------------------------------------------------------------ *)

(* Longest-path layering.  Edges always point forward in task order
   (lexicographically later blocks), so one pass in id order suffices. *)
let layer ~n edge_list =
  let succs = Array.make n [] in
  let npreds = Array.make n 0 in
  List.iter
    (fun (a, b) ->
      succs.(a) <- b :: succs.(a);
      npreds.(b) <- npreds.(b) + 1)
    edge_list;
  let level = Array.make n 0 in
  let maxlvl = ref 0 in
  for a = 0 to n - 1 do
    List.iter
      (fun b -> if level.(a) + 1 > level.(b) then level.(b) <- level.(a) + 1)
      succs.(a);
    if level.(a) > !maxlvl then maxlvl := level.(a)
  done;
  let buckets = Array.make (!maxlvl + 1) [] in
  for i = n - 1 downto 0 do
    buckets.(level.(i)) <- i :: buckets.(level.(i))
  done;
  let succs_arr =
    Array.map (fun l -> Array.of_list (List.sort compare l)) succs
  in
  (succs_arr, npreds, Array.map Array.of_list buckets)

let single_task_plan prog ~params =
  { pl_prog = prog;
    pl_task_prog = prog;
    pl_band = [];
    pl_params = params;
    pl_coords = [| [||] |];
    pl_succs = [| [||] |];
    pl_npreds = [| 0 |];
    pl_levels = [| [| 0 |] |];
    pl_mode = Sequential;
    pl_edges = 0;
    pl_serialized = false }

let plan ?(max_tasks = 2048) ?(max_box = 4096) ?prog pipe ~spec ~params =
  let prog =
    match prog with Some p -> p | None -> Pipeline.variant pipe spec
  in
  match spec with
  | None -> single_task_plan prog ~params
  | Some spec ->
    let coord_names = Spec.coord_names spec in
    let band, residual = peel_band coord_names prog in
    if band = [] then single_task_plan prog ~params
    else begin
      match enumerate_tasks ~max_tasks band ~params with
      | exception Too_many -> single_task_plan prog ~params
      | coords ->
        let n = Array.length coords in
        if n <= 1 then single_task_plan prog ~params
        else begin
          let band_vars = List.map (fun (v, _, _) -> v) band in
          let task_prog =
            { prog with
              Ast.params = prog.Ast.params @ band_vars;
              Ast.body = residual }
          in
          (* band var -> position in the spec's full coordinate list *)
          let band_pos =
            Array.of_list
              (List.map
                 (fun v ->
                   let rec find i = function
                     | [] ->
                       invalid_arg ("Sched: " ^ v ^ " not a coordinate")
                     | c :: _ when String.equal c v -> i
                     | _ :: tl -> find (i + 1) tl
                   in
                   find 0 coord_names)
                 band_vars)
          in
          let edge_list, ser =
            build_edges pipe spec ~band_pos ~coords ~params ~max_box
          in
          let succs, npreds, lvls = layer ~n edge_list in
          (* a regular affine recurrence: every task's dependence pattern
             is the same small delta set, which the layering turns into
             wide uniform wavefronts.  Heuristic: wavefront when the DAG
             is a chain or its layering wastes no task (every task sits in
             the lowest level its preds allow — always true for longest
             path), and the edge deltas form one uniform set.  *)
          let deltas = Hashtbl.create 16 in
          List.iter
            (fun (a, b) ->
              let d =
                Array.init (Array.length coords.(a)) (fun j ->
                    coords.(b).(j) - coords.(a).(j))
              in
              Hashtbl.replace deltas (Array.to_list d) ())
            edge_list;
          let distinct_deltas = Hashtbl.length deltas in
          let md =
            if ser then Sequential
            else if distinct_deltas <= Array.length band_pos then Wavefront
            else Steal
          in
          { pl_prog = prog;
            pl_task_prog = task_prog;
            pl_band = band_vars;
            pl_params = params;
            pl_coords = coords;
            pl_succs = succs;
            pl_npreds = npreds;
            pl_levels = lvls;
            pl_mode = md;
            pl_edges = List.length edge_list;
            pl_serialized = ser }
        end
    end

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  st_tasks : int;
  st_edges : int;
  st_wavefronts : int;
  st_max_width : int;
  st_mode : mode;
  st_domains : int;
  st_serialized : bool;
  st_steals : int;  (* dynamic: not deterministic across runs *)
  st_stalls : int;  (* dynamic: not deterministic across runs *)
}

type result = {
  x_store : Store.t;
  x_flops : int;
  x_trace : Trace.t option;  (* deterministic merge, task order *)
  x_parts : Trace.t array;  (* per-task traces (empty when untraced) *)
  x_task_flops : int array;
  x_stats : stats;
}

(* Per-worker execution state: each worker compiles the task body once
   against the shared store, with a [Callback] sink indirecting through a
   per-worker current-recorder cell so every task gets its own trace. *)
type worker_ctx = {
  w_prepared : Interp.prepared;
  w_current : Trace.recorder option ref;
}

let make_worker ~traced store task_prog =
  let current = ref None in
  let sink =
    if traced then
      Trace.Callback
        (fun ~write ~addr ->
          match !current with
          | Some r -> Trace.emit r ~write ~addr
          | None -> ())
    else Trace.No_trace
  in
  { w_prepared = Interp.prepare ~sink store task_prog; w_current = current }

let run_task ~traced ~task_chunk plan wctx parts task_flops t =
  let bindings =
    plan.pl_params
    @ List.map2
        (fun v j -> (v, j))
        plan.pl_band
        (Array.to_list plan.pl_coords.(t))
  in
  if traced then begin
    let r = Trace.create_recorder ~chunk_words:task_chunk ~keep:true () in
    wctx.w_current := Some r;
    let fl = Interp.invoke wctx.w_prepared ~params:bindings in
    wctx.w_current := None;
    parts.(t) <- Trace.finish r;
    task_flops.(t) <- fl
  end
  else task_flops.(t) <- Interp.invoke wctx.w_prepared ~params:bindings

let exec ?layouts ?(domains = 1) ?(trace = false)
    ?(chunk_words = Trace.default_chunk_words) plan ~init =
  let store =
    Store.create ?layouts plan.pl_prog ~params:plan.pl_params ~init
  in
  let n = tasks plan in
  let task_chunk = min chunk_words 1024 in
  let empty = Trace.finish (Trace.create_recorder ~chunk_words:1 ()) in
  let parts = Array.make n empty in
  let task_flops = Array.make n 0 in
  let p = max 1 (min domains n) in
  let steals = Array.make p 0 and stalls = Array.make p 0 in
  let failure = ref None in
  let failure_lock = Mutex.create () in
  let abort = Atomic.make false in
  let fail e bt =
    Mutex.protect failure_lock (fun () ->
        if !failure = None then failure := Some (e, bt));
    Atomic.set abort true
  in
  let effective_mode =
    if p = 1 then Sequential else plan.pl_mode
  in
  (match effective_mode with
   | Sequential ->
     let w = make_worker ~traced:trace store plan.pl_task_prog in
     for t = 0 to n - 1 do
       run_task ~traced:trace ~task_chunk plan w parts task_flops t
     done
   | Wavefront ->
     (* static schedule: per-level atomic hand-out, spin barrier between
        levels.  Per-level counters are never reset, so a stale level read
        can only yield an index past the level's width — harmless. *)
     let nlvl = Array.length plan.pl_levels in
     let next = Array.init nlvl (fun _ -> Atomic.make 0) in
     let finished = Array.init nlvl (fun _ -> Atomic.make 0) in
     let cur = Atomic.make 0 in
     let worker w () =
       let wctx =
         make_worker ~traced:trace store plan.pl_task_prog
       in
       let rec loop () =
         if Atomic.get abort then ()
         else begin
           let l = Atomic.get cur in
           if l >= nlvl then ()
           else begin
             let width = Array.length plan.pl_levels.(l) in
             let i = Atomic.fetch_and_add next.(l) 1 in
             if i < width then begin
               (try
                  run_task ~traced:trace ~task_chunk plan wctx parts
                    task_flops
                    plan.pl_levels.(l).(i)
                with e -> fail e (Printexc.get_raw_backtrace ()));
               if Atomic.fetch_and_add finished.(l) 1 = width - 1 then
                 (* last task of the level opens the next one *)
                 Atomic.incr cur
             end
             else begin
               (* level drained but not finished: barrier stall *)
               stalls.(w) <- stalls.(w) + 1;
               Domain.cpu_relax ()
             end;
             loop ()
           end
         end
       in
       loop ()
     in
     let spawned = List.init (p - 1) (fun i -> Domain.spawn (worker (i + 1))) in
     worker 0 ();
     List.iter Domain.join spawned
   | Steal ->
     let deques = Array.init p (fun _ -> Runner.Deque.create ()) in
     let indeg = Array.map Atomic.make plan.pl_npreds in
     let remaining = Atomic.make n in
     let seeded = ref 0 in
     Array.iteri
       (fun t d ->
         if d = 0 then begin
           Runner.Deque.push deques.(!seeded mod p) t;
           incr seeded
         end)
       plan.pl_npreds;
     let worker w () =
       let wctx =
         make_worker ~traced:trace store plan.pl_task_prog
       in
       let run t =
         (try
            run_task ~traced:trace ~task_chunk plan wctx parts task_flops t
          with e -> fail e (Printexc.get_raw_backtrace ()));
         Array.iter
           (fun s ->
             if Atomic.fetch_and_add indeg.(s) (-1) = 1 then
               Runner.Deque.push deques.(w) s)
           plan.pl_succs.(t);
         Atomic.decr remaining
       in
       let rec loop () =
         if Atomic.get abort || Atomic.get remaining = 0 then ()
         else begin
           (match Runner.Deque.pop deques.(w) with
            | Some t -> run t
            | None ->
              let stolen = ref None in
              let v = ref 1 in
              while !stolen = None && !v < p do
                (match Runner.Deque.steal deques.((w + !v) mod p) with
                 | Some t -> stolen := Some t
                 | None -> ());
                incr v
              done;
              (match !stolen with
               | Some t ->
                 steals.(w) <- steals.(w) + 1;
                 run t
               | None ->
                 stalls.(w) <- stalls.(w) + 1;
                 Domain.cpu_relax ()));
           loop ()
         end
       in
       loop ()
     in
     let spawned = List.init (p - 1) (fun i -> Domain.spawn (worker (i + 1))) in
     worker 0 ();
     List.iter Domain.join spawned);
  (match !failure with
   | Some (e, bt) -> Printexc.raise_with_backtrace e bt
   | None -> ());
  let merged =
    if trace then Some (Trace.concat ~chunk_words (Array.to_list parts))
    else None
  in
  { x_store = store;
    x_flops = Array.fold_left ( + ) 0 task_flops;
    x_trace = merged;
    x_parts = (if trace then parts else [||]);
    x_task_flops = task_flops;
    x_stats =
      { st_tasks = n;
        st_edges = plan.pl_edges;
        st_wavefronts = Array.length plan.pl_levels;
        st_max_width = max_width plan;
        st_mode = effective_mode;
        st_domains = p;
        st_serialized = plan.pl_serialized;
        st_steals = Array.fold_left ( + ) 0 steals;
        st_stalls = Array.fold_left ( + ) 0 stalls } }

(* The drop-in replacement for [Pipeline.record]: execute the plan with
   tracing on and seal the deterministic merge as a replayable recording.
   Byte-identical to the sequential recording for any [domains]. *)
let record ?layouts ?domains ?chunk_words plan ~init =
  let r = exec ?layouts ?domains ~trace:true ?chunk_words plan ~init in
  ( { Model.rec_trace = Option.get r.x_trace; Model.rec_flops = r.x_flops },
    r )

let smp ?(machine = Model.two_level) ?(quality = Model.tuned) ~cores plan r =
  Model.Smp.consume ~machine ~quality ~cores
    ~groups:(levels plan)
    ~parts:r.x_parts ~task_flops:r.x_task_flops
