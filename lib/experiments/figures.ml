(* One runner per table/figure of the paper's evaluation (plus the
   code-shape figures from the body of the paper and two ablations).
   Each runner returns a [figure] whose rows are printed by bench/main.ml
   and recorded in EXPERIMENTS.md.

   Every simulation point is an independent (program, size, quality)
   triple, so the perf runners fan their points out over a Domain-based
   work pool ([Runner.map ~domains]); each task records metrics rows into
   a domain-local collector, and results come back in deterministic input
   order, so [~domains:1] and [~domains:n] produce identical figures.

   Within a point, series sharing a program variant share one recording:
   the interpreter runs once ([Model.record]) and each (machine, quality)
   series replays the captured trace ([Model.consume]).  Simulated
   quantities are byte-identical to the legacy per-series execution path
   ([Model.Callback]), which is kept selectable for differential checks;
   only wall-clock drops. *)

module Ast = Loopir.Ast
module K = Kernels.Builders
module Model = Machine.Model
module Json = Observe.Json
module Metrics = Observe.Metrics

(* All parsing / legality / codegen goes through the Pipeline facade: one
   [Pipeline.t] per kernel binds the program to a memoizing solver context,
   so a figure that generates several variants of one kernel shares its
   dependence analysis and legality cache. *)
let codegen prog spec = Pipeline.codegen (Pipeline.create prog) spec

type row = { r_label : string; r_cols : (string * float) list }

type figure = {
  f_id : string;
  f_title : string;
  f_header : string list;
  f_rows : row list;
  f_note : string;
  f_domains : int;   (* pool width the figure was computed with *)
  f_par : int;       (* block-scheduler workers per point; 0 = sequential *)
  f_mode : Model.trace_mode; (* how the simulator was driven *)
  f_seconds : float; (* wall-clock of the whole figure *)
  f_codegen_seconds : float; (* symbolic codegen, shared by the whole sweep *)
  f_solver : Metrics.solver option; (* figure pipeline's solver counters *)
  f_metrics : Metrics.sim list; (* one record per simulation point *)
}

let mflops r = r.Model.r_mflops
let l1_misses r = (List.hd r.Model.r_levels).Model.s_misses

(* Convert a plan's execution stats into the metrics-layer record. *)
let sched_info_of_stats (st : Sched.stats) =
  { Metrics.sc_tasks = st.Sched.st_tasks;
    sc_edges = st.Sched.st_edges;
    sc_wavefronts = st.Sched.st_wavefronts;
    sc_max_width = st.Sched.st_max_width;
    sc_domains = st.Sched.st_domains;
    sc_mode = Sched.mode_string st.Sched.st_mode;
    sc_serialized = st.Sched.st_serialized;
    sc_steals = st.Sched.st_steals;
    sc_stalls = st.Sched.st_stalls }

(* One figure point, possibly multi-series.  In [Replay] mode the program
   is executed exactly once; the recorded access stream is then fanned
   over [Runner.map] into one simulator per (tag, quality) series.  In
   [Callback] mode each series re-executes the interpreter through the
   legacy per-access path — the differential baseline CI diffs against.
   Results come back in series order, and one metrics row is recorded per
   series either way, so figure rows and simulated quantities are
   identical across modes.

   [par = Some (pipe, spec, domains)] with [domains > 0] routes the one
   execution through the block scheduler instead ([Sched.record] over the
   task DAG of [spec]'s coordinate band): the recording is byte-identical
   to the sequential one, so every simulated quantity is unchanged; the
   only addition is a [sched_info] on the point's first metrics row.
   Parallel execution needs the record/replay pipeline — combining it
   with [Callback] mode is a caller error.

   [specialize] (default true) instantiates the program at the point's
   concrete parameters through [Pipeline.specialize] before the one
   sequential recording: the symbolic derivation comes from the
   pipeline's codegen cache, so an N sweep costs one Omega derivation,
   and the interpreter runs straight-line specialized loops.  The access
   trace is bit-identical to the symbolic program's, so every simulated
   quantity is unchanged — CI diffs a specialized run against
   [--no-specialize] the same way it diffs replay against callback.
   Callback mode and par > 0 scheduler runs keep the symbolic program
   (the scheduler peels the block band itself). *)
let simulate_series ?layouts ?init ?(machine = Model.sp2_like)
    ?(mode = Model.Replay) ?par ?(specialize = true) ~series prog ~n
    ?(params = []) ~kernel () =
  let params = ("N", n) :: params in
  let init =
    match init with
    | Some f -> f
    | None -> Kernels.Inits.for_kernel kernel ~n
  in
  (* the (pipe, spec) of the variant, for specialization, even when the
     block scheduler is off *)
  let variant = match par with Some (p, s, _) -> Some (p, s) | None -> None in
  let par =
    match par with Some (_, _, d) when d > 0 -> par | _ -> None
  in
  let label tag =
    Printf.sprintf "%s/N=%d%s" kernel n (if tag = "" then "" else "/" ^ tag)
  in
  match mode with
  | Model.Callback ->
    if par <> None then
      invalid_arg
        "simulate_series: parallel block execution requires replay mode";
    List.map
      (fun (tag, quality) ->
        let sim = Model.Sim.create ~machine ~quality in
        let r, seconds =
          Metrics.timed (fun () -> Model.Sim.run sim ?layouts prog ~params ~init)
        in
        Metrics.record
          (Metrics.of_result ~label:(label tag) ~machine:machine.Model.m_name
             ~quality:quality.Model.q_name ~seconds r);
        r)
      series
  | Model.Replay ->
    let (recording, sched), record_seconds =
      Metrics.timed (fun () ->
          match par with
          | None ->
            (* specialization cost (a solver-free rewrite) is charged to
               the recording like the interpretation it accelerates *)
            let exec_prog =
              match (specialize, variant) with
              | true, Some (pipe, spec) -> Pipeline.specialize ?spec pipe ~params
              | _ -> prog
            in
            (Model.record ?layouts exec_prog ~params ~init, None)
          | Some (pipe, spec, domains) ->
            let plan = Sched.plan ~prog pipe ~spec ~params in
            let recording, res = Sched.record ?layouts ~domains plan ~init in
            (recording, Some (sched_info_of_stats res.Sched.x_stats)))
    in
    let tr = recording.Model.rec_trace in
    (* consumes are independent; the pool is the structural fan-out even
       though per-point series lists are small *)
    let consumed =
      Runner.map ~domains:1
        (fun (_, quality) ->
          Metrics.timed (fun () -> Model.consume ~machine ~quality recording))
        series
    in
    List.mapi
      (fun i ((tag, quality), (r, replay_seconds)) ->
        (* charge the recording to the first series row; later rows reused
           the trace for free *)
        let first = i = 0 in
        let trace =
          { Metrics.tr_executions = (if first then 1 else 0);
            tr_length = Trace.length tr;
            tr_chunks = Trace.num_chunks tr;
            tr_bytes = Trace.bytes tr;
            tr_record_seconds = (if first then record_seconds else 0.0);
            tr_replay_seconds = replay_seconds }
        in
        let seconds =
          (if first then record_seconds else 0.0) +. replay_seconds
        in
        Metrics.record
          (Metrics.of_result ~label:(label tag) ~machine:machine.Model.m_name
             ~quality:quality.Model.q_name ~seconds ~trace
             ?sched:(if first then sched else None)
             r);
        r)
      (List.combine series consumed)

(* Single-series convenience wrapper, the shape most ablations use. *)
let simulate ?layouts ?init ?machine ?mode ?par ?specialize ~quality
    ?(tag = "") prog ~n ?params ~kernel () =
  match
    simulate_series ?layouts ?init ?machine ?mode ?par ?specialize
      ~series:[ (tag, quality) ] prog ~n ?params ~kernel ()
  with
  | [ r ] -> r
  | _ -> assert false

(* Fan [f] over [items] on the pool; returns the values in input order
   plus the metrics recorded by each task, concatenated in task order. *)
let par_map ~domains items f =
  let pairs =
    Runner.map ~domains (fun x -> Metrics.collect (fun () -> f x)) items
  in
  (List.map fst pairs, List.concat_map snd pairs)

(* Time the figure body and stamp the bookkeeping fields.
   [codegen_seconds] is the up-front symbolic codegen the whole sweep
   shares; [solver] snapshots the figure pipeline's Omega counters after
   the body ran, so the JSON records how many solves the sweep cost (the
   specialization path keeps this flat in the number of sizes). *)
let build ~domains ?(par = 0) ?(codegen_seconds = 0.0) ?solver ~mode ~id
    ~title ~header ~note body =
  let (rows, metrics), seconds = Metrics.timed body in
  { f_id = id;
    f_title = title;
    f_header = header;
    f_rows = rows;
    f_note = note;
    f_domains = domains;
    f_par = par;
    f_mode = mode;
    f_seconds = seconds;
    f_codegen_seconds = codegen_seconds;
    f_solver = Option.map (fun p -> Metrics.solver_of_ctx (Pipeline.solver p)) solver;
    f_metrics = metrics }

(* ------------------------------------------------------------------ *)
(* Code-shape figures                                                  *)
(* ------------------------------------------------------------------ *)

let fig3_code () =
  Ast.program_to_string
    (codegen (K.matmul ()) (Specs.matmul_ca ~size:25))

let fig5_code () =
  Ast.program_to_string
    (Pipeline.codegen ~naive:true (Pipeline.create (K.matmul ())) (Specs.matmul_c ~size:25))

let fig6_code () =
  Ast.program_to_string
    (codegen (K.matmul ()) (Specs.matmul_c ~size:25))

let fig7_code () =
  Ast.program_to_string
    (codegen (K.cholesky_right ()) (Specs.cholesky_write ~size:64))

let fig10_code () =
  Ast.program_to_string
    (codegen (K.matmul ()) (Specs.matmul_two_level ~outer:64 ~inner:8))

let fig14_code () =
  ( Ast.program_to_string (K.adi ()),
    Ast.program_to_string (codegen (K.adi ()) (Specs.adi_fused ())) )

(* ------------------------------------------------------------------ *)
(* Performance figures                                                 *)
(* ------------------------------------------------------------------ *)

(* Figure 11: Cholesky factorization.  Series: the input right-looking
   code; the compiler-generated fully blocked code (untuned inner loops,
   as produced by xlf in the paper); the same code with the inner loops at
   hand-tuned quality ("matmul replaced by DGEMM"); and the LAPACK-style
   hand-blocked left-looking algorithm (here: the other product order) at
   tuned quality. *)
let fig11_cholesky ?(sizes = [ 60; 120; 180; 240 ]) ?(block = 32)
    ?(domains = 1) ?(par = 0) ?(mode = Model.Replay) ?(specialize = true) () =
  let p = K.cholesky_right () in
  let pipe = Pipeline.create p in
  let fb_spec = Specs.cholesky_fully_blocked ~size:block in
  let ll_spec = Specs.cholesky_left_looking_blocked ~size:block in
  (* one symbolic derivation per spec; every size specializes from the
     cache *)
  let (blocked, left), codegen_seconds =
    Metrics.timed (fun () ->
        (Pipeline.codegen_cached pipe fb_spec, Pipeline.codegen_cached pipe ll_spec))
  in
  build ~domains ~par ~codegen_seconds ~solver:pipe ~mode ~id:"fig11"
    ~title:"Figure 11: Cholesky factorization (MFlops proxy vs N)"
    ~header:[ "input"; "compiler"; "compiler+DGEMM"; "LAPACK-style" ]
    ~note:
      "Expected shape: input flat and lowest; compiler-generated much \
       better; DGEMM-quality inner loops better still; LAPACK-style \
       comparable to compiler+DGEMM."
    (fun () ->
      par_map ~domains sizes (fun n ->
          let sim ?spec series prog =
            simulate_series ~mode ~par:(pipe, spec, par) ~specialize ~series
              prog ~n ~kernel:"cholesky_right" ()
          in
          (* series sharing a program variant share one recording; bind in
             series order so metrics are recorded left to right *)
          let input = List.hd (sim [ ("input", Model.untuned) ] p) in
          let compiler, dgemm =
            match
              sim ~spec:fb_spec
                [ ("compiler", Model.untuned);
                  ("compiler+DGEMM", Model.tuned) ]
                blocked
            with
            | [ a; b ] -> (a, b)
            | _ -> assert false
          in
          let lapack =
            List.hd (sim ~spec:ll_spec [ ("LAPACK-style", Model.tuned) ] left)
          in
          { r_label = string_of_int n;
            r_cols =
              [ ("input", mflops input);
                ("compiler", mflops compiler);
                ("compiler+DGEMM", mflops dgemm);
                ("LAPACK-style", mflops lapack) ] }))

(* Figure 12: QR factorization, blocked by columns only. *)
let fig12_qr ?(sizes = [ 40; 80; 120; 160 ]) ?(width = 16) ?(domains = 1)
    ?(par = 0) ?(mode = Model.Replay) ?(specialize = true) () =
  let p = K.qr () in
  let pipe = Pipeline.create p in
  let qr_spec = Specs.qr_columns ~width in
  let blocked, codegen_seconds =
    Metrics.timed (fun () -> Pipeline.codegen_cached pipe qr_spec)
  in
  build ~domains ~par ~codegen_seconds ~solver:pipe ~mode ~id:"fig12"
    ~title:"Figure 12: QR factorization (MFlops proxy vs N)"
    ~header:[ "input"; "compiler"; "compiler+DGEMM" ]
    ~note:
      "Expected shape: blocking helps somewhat, DGEMM-quality inner loops \
       help substantially.  The paper's LAPACK line uses the \
       domain-specific WY representation, which a compiler cannot derive \
       (Section 8); it is not reproduced."
    (fun () ->
      par_map ~domains sizes (fun n ->
          let sim ?spec series prog =
            simulate_series ~mode ~par:(pipe, spec, par) ~specialize ~series
              prog ~n ~kernel:"qr" ()
          in
          let input = List.hd (sim [ ("input", Model.untuned) ] p) in
          let compiler, dgemm =
            match
              sim ~spec:qr_spec
                [ ("compiler", Model.untuned);
                  ("compiler+DGEMM", Model.tuned) ]
                blocked
            with
            | [ a; b ] -> (a, b)
            | _ -> assert false
          in
          { r_label = string_of_int n;
            r_cols =
              [ ("input", mflops input);
                ("compiler", mflops compiler);
                ("compiler+DGEMM", mflops dgemm) ] }))

(* The input/shackled/speedup shape shared by the two Figure 13 kernels. *)
let before_after ~domains ~par ~mode ~specialize ~codegen_seconds ~id ~title
    ~note ~kernel ~n pipe input_prog (shackled_spec, shackled_prog) =
  build ~domains ~par ~codegen_seconds ~solver:pipe ~mode ~id ~title
    ~header:[ "cycles"; "mflops"; "l1 misses" ] ~note
    (fun () ->
      let results, metrics =
        par_map ~domains
          [ ("input", input_prog, None);
            ("shackled", shackled_prog, Some shackled_spec) ]
          (fun (tag, prog, spec) ->
            ( tag,
              simulate ~mode
                ~par:(pipe, spec, par)
                ~specialize ~quality:Model.untuned ~tag prog ~n ~kernel () ))
      in
      let stat_row (label, r) =
        { r_label = label;
          r_cols =
            [ ("cycles", r.Model.r_cycles); ("mflops", mflops r);
              ("l1 misses", float_of_int (l1_misses r)) ] }
      in
      let input = List.assoc "input" results
      and shackled = List.assoc "shackled" results in
      let rows =
        List.map stat_row results
        @ [ { r_label = "speedup";
              r_cols =
                [ ("cycles", input.Model.r_cycles /. shackled.Model.r_cycles) ]
            } ]
      in
      (rows, metrics))

(* Figure 13(i): the Gmtry kernel (Gaussian elimination). *)
let fig13_gmtry ?(n = 192) ?(block = 32) ?(domains = 1) ?(par = 0)
    ?(mode = Model.Replay) ?(specialize = true) () =
  let p = K.gmtry () in
  let pipe = Pipeline.create p in
  let spec = Specs.gmtry_write ~size:block in
  let blocked, codegen_seconds =
    Metrics.timed (fun () -> Pipeline.codegen_cached pipe spec)
  in
  before_after ~domains ~par ~mode ~specialize ~codegen_seconds ~id:"fig13i"
    ~title:
      (Printf.sprintf "Figure 13(i): Gmtry Gaussian elimination (N = %d)" n)
    ~note:"Paper: Gaussian elimination sped up ~3x by 2-D shackling."
    ~kernel:"gmtry" ~n pipe p (spec, blocked)

(* Figure 13(ii): ADI. *)
let fig13_adi ?(n = 1000) ?(domains = 1) ?(par = 0) ?(mode = Model.Replay)
    ?(specialize = true) () =
  let p = K.adi () in
  let pipe = Pipeline.create p in
  let spec = Specs.adi_fused () in
  let fused, codegen_seconds =
    Metrics.timed (fun () -> Pipeline.codegen_cached pipe spec)
  in
  before_after ~domains ~par ~mode ~specialize ~codegen_seconds ~id:"fig13ii"
    ~title:(Printf.sprintf "Figure 13(ii): ADI kernel (N = %d)" n)
    ~note:
      "Paper: transformed ADI runs 8.9x faster at n = 1000 (fusion + \
       interchange via a 1x1 storage-order shackle)."
    ~kernel:"adi" ~n pipe p (spec, fused)

(* Figure 15: banded Cholesky over band storage.  LAPACK-style band code
   carries a fixed per-panel blocking cost (dgbtrf-style), so the compiler
   code wins at small bandwidths and LAPACK wins at large ones. *)
let fig15_band ?(n = 400) ?(bands = [ 8; 16; 32; 64; 128 ]) ?(block = 32)
    ?(domains = 1) ?(par = 0) ?(mode = Model.Replay) ?(specialize = true) () =
  let p = K.cholesky_banded () in
  let pipe = Pipeline.create p in
  let band_spec = Specs.cholesky_banded_write ~size:block in
  let blocked, codegen_seconds =
    Metrics.timed (fun () -> Pipeline.codegen_cached pipe band_spec)
  in
  let lapack_panel_cycles = 25_000.0 in
  build ~domains ~par ~codegen_seconds ~solver:pipe ~mode ~id:"fig15"
    ~title:
      (Printf.sprintf
         "Figure 15: banded Cholesky on band storage, N = %d (MFlops proxy \
          vs bandwidth)"
         n)
    ~header:[ "compiler"; "LAPACK-style" ]
    ~note:
      "Expected shape: compiler-generated code wins at small bandwidths; \
       the LAPACK-style code amortizes its per-panel blocking cost and \
       wins at large bandwidths (crossover in between)."
    (fun () ->
      par_map ~domains bands (fun bw ->
          let layouts = [ ("A", Exec.Store.Banded bw) ] in
          let dense = Kernels.Inits.for_kernel "cholesky_banded" ~n in
          let init name idx =
            if abs (idx.(0) - idx.(1)) > bw then 0.0 else dense name idx
          in
          let compiler, lapack =
            match
              simulate_series ~layouts ~init ~mode
                ~par:(pipe, Some band_spec, par)
                ~specialize
                ~series:
                  [ (Printf.sprintf "BW=%d/compiler" bw, Model.untuned);
                    (Printf.sprintf "BW=%d/LAPACK-style" bw, Model.tuned) ]
                blocked ~n
                ~params:[ ("BW", bw) ]
                ~kernel:"cholesky_banded" ()
            with
            | [ a; b ] -> (a, b)
            | _ -> assert false
          in
          let panels = float_of_int ((n + block - 1) / block) in
          let lapack_cycles =
            lapack.Model.r_cycles +. (panels *. lapack_panel_cycles)
          in
          let mf cycles flops =
            if cycles = 0.0 then 0.0
            else
              float_of_int flops /. 1e6
              /. (cycles /. (Model.sp2_like.Model.clock_mhz *. 1e6))
          in
          { r_label = string_of_int bw;
            r_cols =
              [ ("compiler", mflops compiler);
                ("LAPACK-style", mf lapack_cycles lapack.Model.r_flops) ] }))

(* Section 6.1: the six ways to shackle right-looking Cholesky. *)
let tab_legality ?(domains = 1) ?(par = 0) ?(mode = Model.Replay) () =
  let p = K.cholesky_right () in
  let pipe = Pipeline.create p in
  let blk size = Shackle.Blocking.blocks_2d ~array:"A" ~size in
  (* pure legality queries: nothing executes, so [par] is bookkeeping *)
  build ~domains ~par ~solver:pipe ~mode ~id:"tab-legality"
    ~title:"Section 6.1: legality of the six Cholesky shackles"
    ~header:[ "legal" ]
    ~note:
      "The paper claims exactly two legal choices; the exact Omega-based \
       test finds three (see EXPERIMENTS.md for the analysis)."
    (fun () ->
      par_map ~domains
        (Pipeline.choices pipe ~array:"A")
        (fun choices ->
          let spec = [ Shackle.Spec.factor (blk 16) choices ] in
          let legal = Pipeline.is_legal pipe spec in
          let label =
            String.concat ", "
              (List.map
                 (fun (l, r) ->
                   Printf.sprintf "%s:%s" l
                     (Format.asprintf "%a" Loopir.Fexpr.pp_ref r))
                 choices)
          in
          { r_label = label;
            r_cols = [ ("legal", (if legal then 1.0 else 0.0)) ] }))

(* Ablation: block size sweep for the fully blocked Cholesky. *)
let abl_blocksize ?(n = 192) ?(blocks = [ 8; 16; 32; 64; 96 ]) ?(domains = 1)
    ?(par = 0) ?(mode = Model.Replay) ?(specialize = true) () =
  let p = K.cholesky_right () in
  let pipe = Pipeline.create p in
  build ~domains ~par ~solver:pipe ~mode ~id:"abl-blocksize"
    ~title:(Printf.sprintf "Ablation: block size sweep, Cholesky N = %d" n)
    ~header:[ "mflops"; "l1 misses" ]
    ~note:
      "Misses are minimized when three blocks fit in cache; too small \
       wastes bandwidth on block boundaries, too large thrashes."
    (fun () ->
      par_map ~domains blocks (fun b ->
          let spec = Specs.cholesky_fully_blocked ~size:b in
          let blocked = Pipeline.codegen_cached pipe spec in
          let r =
            simulate ~mode
              ~par:(pipe, Some spec, par)
              ~specialize ~quality:Model.untuned
              ~tag:(Printf.sprintf "block=%d" b)
              blocked ~n ~kernel:"cholesky_right" ()
          in
          { r_label = string_of_int b;
            r_cols =
              [ ("mflops", mflops r);
                ("l1 misses", float_of_int (l1_misses r)) ] }))

(* Ablation: shackling vs control-centric tiling on Cholesky (Section 3). *)
let abl_tiling ?(n = 144) ?(block = 24) ?(domains = 1) ?(par = 0)
    ?(mode = Model.Replay) ?(specialize = true) () =
  let p = K.cholesky_right () in
  let pipe = Pipeline.create p in
  let sh_spec = Specs.cholesky_fully_blocked ~size:block in
  let shackled, codegen_seconds =
    Metrics.timed (fun () -> Pipeline.codegen_cached pipe sh_spec)
  in
  let update_tiled = Tiling.cholesky_update_tiled ~size:block in
  (* the hand-tiled program has no shackle spec, so its scheduler plan is
     the trivial single task — still routed through [Sched] when par > 0 *)
  let tiled_pipe = Pipeline.create update_tiled in
  build ~domains ~par ~codegen_seconds ~solver:pipe ~mode ~id:"abl-tiling"
    ~title:
      (Printf.sprintf
         "Ablation: control-centric tiling vs data shackling, Cholesky N = %d"
         n)
    ~header:[ "mflops"; "l1 misses" ]
    ~note:
      "Naive code sinking lets tiling block only the update loops \
       (Section 3); the data-centric product blocks the whole \
       factorization."
    (fun () ->
      par_map ~domains
        [ ("input", p, (pipe, None, par));
          ("update loops tiled", update_tiled, (tiled_pipe, None, par));
          ("data shackled", shackled, (pipe, Some sh_spec, par)) ]
        (fun (label, prog, par) ->
          let r =
            simulate ~mode ~par ~specialize ~quality:Model.untuned ~tag:label
              prog ~n ~kernel:"cholesky_right" ()
          in
          { r_label = label;
            r_cols =
              [ ("mflops", mflops r);
                ("l1 misses", float_of_int (l1_misses r)) ] }))

(* Ablation: one-level vs two-level blocking on the deeper machine
   (Section 6.3). *)
let abl_multilevel ?(n = 250) ?(domains = 1) ?(par = 0)
    ?(mode = Model.Replay) ?(specialize = true) () =
  let p = K.matmul () in
  let pipe = Pipeline.create p in
  let one_spec = Specs.matmul_ca ~size:96 in
  let two_spec = Specs.matmul_two_level ~outer:96 ~inner:16 in
  let (one, two), codegen_seconds =
    Metrics.timed (fun () ->
        (Pipeline.codegen_cached pipe one_spec, Pipeline.codegen_cached pipe two_spec))
  in
  build ~domains ~par ~codegen_seconds ~solver:pipe ~mode ~id:"abl-multilevel"
    ~title:
      (Printf.sprintf
         "Section 6.3: multi-level blocking on a two-level hierarchy, \
          matmul N = %d"
         n)
    ~header:[ "mflops"; "L1 misses"; "L2 misses" ]
    ~note:
      "The outer factor blocks for L2, the inner factor for L1; two-level \
       blocking should beat both the unblocked code and L2-only blocking."
    (fun () ->
      par_map ~domains
        [ ("unblocked", p, None);
          ("one-level 96", one, Some one_spec);
          ("two-level 96/16", two, Some two_spec) ]
        (fun (label, prog, spec) ->
          let r =
            simulate ~machine:Model.two_level ~mode
              ~par:(pipe, spec, par)
              ~specialize ~quality:Model.untuned ~tag:label prog ~n
              ~kernel:"matmul" ()
          in
          let l1 = List.nth r.Model.r_levels 0
          and l2 = List.nth r.Model.r_levels 1 in
          { r_label = label;
            r_cols =
              [ ("mflops", mflops r);
                ("L1 misses", float_of_int l1.Model.s_misses);
                ("L2 misses", float_of_int l2.Model.s_misses) ] }))

(* Section 8: the autotuner.  One row per paper kernel: the candidate the
   search selects, its simulated performance, the speedup over the input
   code, and how hard the memoized legality engine worked.  Problem sizes
   are chosen so working sets exceed the 64 KB cache and the candidates
   separate; rows hold only simulated/counted quantities, so the figure is
   byte-identical across pool widths. *)
let tune_figure ?(quick = false) ?(domains = 1) ?(par = 0)
    ?(mode = Model.Replay) ?(specialize = true) () =
  (* the autotuner's inner candidate evaluations stay sequential; [par]
     is stamped for bookkeeping only *)
  ignore par;
  let points =
    if quick then
      [ ("matmul", K.matmul (), 48, [ 16 ]);
        ("cholesky_right", K.cholesky_right (), 64, [ 16 ]) ]
    else
      [ ("matmul", K.matmul (), 64, [ 16 ]);
        ("cholesky_right", K.cholesky_right (), 128, [ 32 ]) ]
  in
  build ~domains ~mode ~id:"tune"
    ~title:"Section 8: autotuned shackles (best candidate per kernel)"
    ~header:[ "cycles"; "mflops"; "speedup"; "legal"; "cache hits"; "headroom" ]
    ~note:
      "Best-of over the (reference choice x block size x product depth) \
       lattice, pruned by Theorem 2, checked by the memoized Theorem 1 \
       engine, evaluated by record/replay simulation.  Headroom is the \
       winner's simulated L1 misses over its analytic communication lower \
       bound (>= 1 by soundness; 0 when no bound is available)."
    (fun () ->
      let rows_and_metrics =
        List.map
          (fun (kernel, prog, n, sizes) ->
            let options =
              { Tune.default_options with sizes; domains; specialize }
            in
            let rp = Tune.tune ~options ~kernel ~params:[ ("N", n) ] prog in
            let row =
              match Tune.best rp with
              | None -> { r_label = kernel; r_cols = [] }
              | Some s ->
                (* simulated-misses/bound ratio at the first bounded level
                   of the head machine: how far the winner still sits
                   above what any execution order could achieve *)
                let headroom =
                  match s.Tune.s_bounds with
                  | (mname, (_, b) :: _) :: _ when b > 0 -> (
                    match
                      List.find_map
                        (fun (m, _, r) ->
                          if String.equal m mname then
                            List.nth_opt r.Model.r_levels 0
                          else None)
                        s.Tune.s_results
                    with
                    | Some st ->
                      float_of_int st.Model.s_misses /. float_of_int b
                    | None -> 0.0)
                  | _ -> 0.0
                in
                { r_label = Printf.sprintf "%s N=%d" kernel n;
                  r_cols =
                    [ ("cycles", s.Tune.s_cycles);
                      ("mflops", s.Tune.s_mflops);
                      ("speedup", rp.Tune.rp_input_cycles /. s.Tune.s_cycles);
                      ("legal", float_of_int rp.Tune.rp_counts.Tune.n_legal);
                      ("cache hits",
                        float_of_int
                          rp.Tune.rp_solver.Metrics.so_cache_hits);
                      ("headroom", headroom) ] }
            in
            (row, rp.Tune.rp_metrics))
          points
      in
      (List.map fst rows_and_metrics, List.concat_map snd rows_and_metrics))

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

(* Every perf figure by id, with the --quick problem sizes used by the
   bench harness and CI.  Order is presentation order.  [par] is the
   block-scheduler worker count per simulation point (0 = sequential
   execution, the default). *)
let runners :
    (string
    * (quick:bool ->
      domains:int ->
      par:int ->
      mode:Model.trace_mode ->
      specialize:bool ->
      figure))
    list =
  [ ( "fig11",
      fun ~quick ~domains ~par ~mode ~specialize ->
        if quick then
          fig11_cholesky ~sizes:[ 48; 96 ] ~domains ~par ~mode ~specialize ()
        else fig11_cholesky ~domains ~par ~mode ~specialize () );
    ( "fig12",
      fun ~quick ~domains ~par ~mode ~specialize ->
        if quick then
          fig12_qr ~sizes:[ 40; 80 ] ~domains ~par ~mode ~specialize ()
        else fig12_qr ~domains ~par ~mode ~specialize () );
    ( "fig13i",
      fun ~quick ~domains ~par ~mode ~specialize ->
        fig13_gmtry
          ~n:(if quick then 96 else 192)
          ~domains ~par ~mode ~specialize () );
    ( "fig13ii",
      fun ~quick ~domains ~par ~mode ~specialize ->
        fig13_adi
          ~n:(if quick then 300 else 1000)
          ~domains ~par ~mode ~specialize () );
    ( "fig15",
      fun ~quick ~domains ~par ~mode ~specialize ->
        if quick then
          fig15_band ~n:200 ~bands:[ 8; 32 ] ~domains ~par ~mode ~specialize ()
        else fig15_band ~domains ~par ~mode ~specialize () );
    ( "tab-legality",
      fun ~quick:_ ~domains ~par ~mode ~specialize:_ ->
        tab_legality ~domains ~par ~mode () );
    ( "abl-blocksize",
      fun ~quick ~domains ~par ~mode ~specialize ->
        abl_blocksize
          ~n:(if quick then 96 else 192)
          ~domains ~par ~mode ~specialize () );
    ( "abl-tiling",
      fun ~quick ~domains ~par ~mode ~specialize ->
        abl_tiling
          ~n:(if quick then 96 else 144)
          ~domains ~par ~mode ~specialize () );
    ( "abl-multilevel",
      fun ~quick ~domains ~par ~mode ~specialize ->
        abl_multilevel
          ~n:(if quick then 120 else 250)
          ~domains ~par ~mode ~specialize () );
    ( "tune",
      fun ~quick ~domains ~par ~mode ~specialize ->
        tune_figure ~quick ~domains ~par ~mode ~specialize () ) ]

let ids = List.map fst runners

let run_by_id id ~quick ~domains ?(par = 0) ?(mode = Model.Replay)
    ?(specialize = true) () =
  Option.map
    (fun f -> f ~quick ~domains ~par ~mode ~specialize)
    (List.assoc_opt id runners)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_figure fmt f =
  Format.fprintf fmt "@.== %s ==@." f.f_title;
  let w = 22 in
  Format.fprintf fmt "%-28s" "";
  List.iter (fun h -> Format.fprintf fmt "%*s" w h) f.f_header;
  Format.fprintf fmt "@.";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-28s" r.r_label;
      List.iter
        (fun h ->
          match List.assoc_opt h r.r_cols with
          | Some v ->
            if Float.is_integer v && Float.abs v < 1e7 then
              Format.fprintf fmt "%*.0f" w v
            else Format.fprintf fmt "%*.2f" w v
          | None -> Format.fprintf fmt "%*s" w "-")
        f.f_header;
      Format.fprintf fmt "@.")
    f.f_rows;
  Format.fprintf fmt "note: %s@." f.f_note

(* The machine-readable rendering.  Rows hold only simulated quantities,
   so they are byte-identical across runs and pool widths; wall-clock
   lives in "seconds" and in the per-point metrics. *)
let row_to_json r =
  Json.Obj
    [ ("label", Json.Str r.r_label);
      ("cols", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.r_cols))
    ]

let figure_to_json f =
  Json.Obj
    ([ ("id", Json.Str f.f_id);
       ("title", Json.Str f.f_title);
       ("header", Json.List (List.map (fun h -> Json.Str h) f.f_header));
       ("rows", Json.List (List.map row_to_json f.f_rows));
       ("domains", Json.Int f.f_domains);
       ("par_domains", Json.Int f.f_par);
       ("trace_mode", Json.Str (Model.trace_mode_string f.f_mode));
       ("seconds", Json.Float f.f_seconds);
       ("codegen_seconds", Json.Float f.f_codegen_seconds) ]
    @ (match f.f_solver with
      | None -> []
      | Some s ->
        (* what the whole sweep cost in Omega work; with specialization on,
           invariant in the number of sweep sizes *)
        [ ("solves_per_sweep", Json.Int (Metrics.solver_solves s));
          ("solver", Metrics.solver_to_json s) ])
    @ [ ("metrics", Json.List (List.map Metrics.sim_to_json f.f_metrics));
        ("note", Json.Str f.f_note) ])
