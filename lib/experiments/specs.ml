(* The shackle specifications used throughout the evaluation — one place so
   examples, benches and the CLI agree on what "the" blocked version of each
   kernel is. *)

module Ast = Loopir.Ast
module E = Loopir.Expr
module Fexpr = Loopir.Fexpr
module Spec = Shackle.Spec
module Blocking = Shackle.Blocking

let v = E.var
let rf a idx = Fexpr.ref_ a (List.map v idx)

(* matmul: block C, or the C x A product of Section 6.1 (Figure 3). *)
let matmul_c ~size =
  [ Spec.factor (Blocking.blocks_2d ~array:"C" ~size) [ ("S1", rf "C" [ "I"; "J" ]) ] ]

let matmul_ca ~size =
  matmul_c ~size
  @ [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size)
        [ ("S1", rf "A" [ "I"; "K" ]) ] ]

(* two-level blocking of Section 6.3 (Figure 10) *)
let matmul_two_level ~outer ~inner =
  matmul_ca ~size:outer @ matmul_ca ~size:inner

(* right-looking Cholesky: the write shackle (Figure 7), the read shackle,
   and their products (Section 6.1: one order gives fully-blocked
   left-looking, the other fully-blocked right-looking). *)
let cholesky_write ~size =
  [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size)
      [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "I"; "J" ]);
        ("S3", rf "A" [ "L"; "K" ]) ] ]

let cholesky_read ~size =
  [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size)
      [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "J"; "J" ]);
        ("S3", rf "A" [ "K"; "J" ]) ] ]

let cholesky_fully_blocked ~size =
  Spec.product (cholesky_write ~size) (cholesky_read ~size)

let cholesky_left_looking_blocked ~size =
  Spec.product (cholesky_read ~size) (cholesky_write ~size)

(* banded Cholesky uses the same write shackle on the restricted code *)
let cholesky_banded_write ~size = cholesky_write ~size

(* QR: columns only (Section 7: "dependences prevent complete
   two-dimensional blocking") *)
let qr_columns ~width =
  let col = Blocking.by_columns ~array:"A" ~width in
  [ Spec.factor col
      [ ("S0", rf "A" [ "k"; "k" ]); ("S1", rf "A" [ "i"; "k" ]);
        ("S2", rf "A" [ "k"; "k" ]); ("S3", rf "A" [ "i"; "k" ]);
        ("S4", rf "A" [ "k"; "j" ]); ("S5", rf "A" [ "i"; "j" ]);
        ("S6", rf "A" [ "i"; "j" ]) ] ]

(* Gmtry: Gaussian elimination, blocked in both dimensions like Cholesky *)
let gmtry_write ~size =
  [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size)
      [ ("S1", rf "A" [ "i"; "k" ]); ("S2", rf "A" [ "i"; "j" ]) ] ]

(* ADI: 1x1 blocks of B in storage order, both statements shackled to
   B(i-1,k) (Section 7, Figure 14) *)
let adi_fused () =
  let blk = Blocking.storage_order ~array:"B" ~rank:2 `Col_major in
  let bref = Fexpr.ref_ "B" [ E.Sub (E.var "i", E.Const 1); E.var "k" ] in
  [ Spec.factor blk [ ("S1", bref); ("S2", bref) ] ]

(* The symbolic (kernel, spec-name, size) -> spec table: the single
   source of truth behind "shacklec --spec", the shackled daemon's
   resolver and the bench server figure.  "default" picks each kernel's
   canonical blocking. *)
let lookup ~kernel ~spec ~size =
  match (kernel, spec) with
  | "matmul", ("c" | "default") -> Some (matmul_c ~size)
  | "matmul", "ca" -> Some (matmul_ca ~size)
  | "matmul", "two-level" ->
    Some (matmul_two_level ~outer:size ~inner:(max 2 (size / 8)))
  | ("cholesky_right" | "cholesky_left"), ("write" | "default") ->
    Some (cholesky_write ~size)
  | ("cholesky_right" | "cholesky_left"), "read" -> Some (cholesky_read ~size)
  | ("cholesky_right" | "cholesky_left"), "full" ->
    Some (cholesky_fully_blocked ~size)
  | ("cholesky_right" | "cholesky_left"), "left" ->
    Some (cholesky_left_looking_blocked ~size)
  | "cholesky_banded", ("write" | "default") ->
    Some (cholesky_banded_write ~size)
  | "qr", ("columns" | "default") -> Some (qr_columns ~width:size)
  | "gmtry", ("write" | "default") -> Some (gmtry_write ~size)
  | "adi", ("fused" | "default") -> Some (adi_fused ())
  | _ -> None
