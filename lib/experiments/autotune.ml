(* Simulation-backed ranking for the Section 8 shackle search — a thin
   compatibility wrapper over the {!Tune} subsystem, which owns candidate
   enumeration, memoized legality and record/replay evaluation. *)

module Search = Shackle.Search

let rank_by_simulation prog ~candidates ~n ~kernel =
  let pipe = Pipeline.create prog in
  let init = Kernels.Inits.for_kernel kernel ~n in
  let cost spec =
    let r =
      Pipeline.simulate pipe ~spec ~machine:Machine.Model.sp2_like
        ~quality:Machine.Model.untuned
        ~params:[ ("N", n) ]
        ~init
    in
    r.Machine.Model.r_cycles
  in
  Search.rank ~candidates ~cost

let autotune ?arrays prog ~size ~n ~kernel =
  let options = { Tune.default_options with sizes = [ size ] } in
  let rp = Tune.tune ~options ?arrays ~kernel ~params:[ ("N", n) ] prog in
  match Tune.best rp with
  | None -> None
  | Some s ->
    Some
      ( { Search.spec = s.Tune.s_cand.Tune.c_spec;
          fully_constrained = s.Tune.s_cand.Tune.c_fully_constrained;
          factors = s.Tune.s_cand.Tune.c_factors },
        s.Tune.s_cycles )
