(** Exact integer feasibility of conjunctions of linear constraints —
    the Omega test (Pugh, CACM 1992) — under optional resource budgets.

    This is the decision procedure behind both dependence testing and the
    paper's Theorem 1 legality test for data shackles: a shackle is legal iff
    for every dependence, the system "(dependence exists) and (blocks visited
    in the wrong order)" has no integer solution.

    The test is worst-case exponential, so every query can be bounded by a
    fuel counter and/or a wall-clock deadline carried on the solver context.
    A query that exhausts its budget answers {!Unknown} instead of running
    unbounded; see {!decide} for the exact three-valued semantics and
    {!satisfiable} for the conservative boolean collapse. *)

type verdict =
  | Sat  (** an integer solution exists (exact) *)
  | Unsat  (** no integer solution exists (exact) *)
  | Unknown of string
      (** the budget ran out before a proof either way; the payload is the
          reason (["fuel"], ["deadline"] or ["cancelled"]).  Never cached,
          never to be reported as an exact verdict. *)

val set_default_budget : ?fuel:int -> ?timeout_ms:int -> unit -> unit
(** Process-wide default budget applied to every context subsequently
    created without an explicit [?fuel] / [?timeout_ms].  Omitting an
    argument clears that default.  This is the one knob the CLIs
    ([--fuel] / [--timeout-ms]) need to bound all solver traffic, including
    contexts created deep inside the pipeline. *)

val with_deadline : until:float -> (unit -> 'a) -> 'a
(** [with_deadline ~until f] runs [f] with an ambient, domain-local
    wall-clock deadline: every query issued inside [f] on this domain —
    on any context, however deep in the pipeline — is additionally capped
    by the absolute time [until] (seconds, [Unix.gettimeofday] clock) and
    answers [Unknown "deadline"] once it passes.  Nesting takes the
    tighter deadline; the previous ambient value is restored when [f]
    returns or raises.  This is how a server propagates a client's
    request budget into shared solver contexts without mutating them. *)

type backing = {
  bk_find : string -> bool option;
  bk_store : string -> bool -> unit;
}
(** An external verdict store consulted behind the in-process memo table
    and filled on every fresh exact verdict — the hook the shackled
    daemon's persistent on-disk legality cache plugs into.  Keys are the
    {!canonical_key} renderings, so entries are shareable across
    processes, CI runs and restarts.  Implementations must be domain-safe
    and must store only exact verdicts (the [bool] is [Sat]/[Unsat];
    {!Unknown} never reaches the store). *)

val canonical_key : System.t -> string
(** The canonical rendering of a system used as its cache identity: each
    constraint gcd-normalized, integer-tightened and rendered sparsely,
    the renderings sorted and deduplicated.  Invariant under constraint
    order, duplication, positive scaling and trailing fresh variables —
    two systems with equal keys have identical satisfiability.  This is
    the content address the on-disk cache digests. *)

(** Explicit solver contexts: per-context query/splinter/budget counters and
    an optional memo cache over canonicalized systems.

    The autotuner asks near-identical legality questions across hundreds of
    candidate shackles (products share factors, factors share dependence
    systems), so a context created with [~cache:true] answers repeats from
    the table and records hit/miss statistics.  Keys are canonical — each
    constraint normalized and rendered sparsely, the renderings sorted and
    deduplicated — so systems differing only in constraint order,
    duplication, scaling, or trailing fresh variables share an entry, and a
    cached verdict is exact: {!Unknown} results are never stored.  All
    state is domain-safe: counters are atomic, the table mutex-protected. *)
module Ctx : sig
  type t

  val create :
    ?cache:bool ->
    ?backing:backing ->
    ?fuel:int ->
    ?timeout_ms:int ->
    ?cancel:(unit -> bool) ->
    ?starve_after:int ->
    unit ->
    t
  (** A fresh context with zeroed counters.
      - [cache] (default false) enables the satisfiability memo table.
      - [backing] (default none) is an external verdict store consulted on
        memo misses and filled on fresh exact verdicts (the on-disk cache).
      - [fuel] caps the solver work units any single query may spend
        (default: the process-wide {!set_default_budget} value, else
        unlimited).
      - [timeout_ms] is a per-query wall-clock deadline (same default
        chain).
      - [cancel] is a cooperative cancellation hook polled during solving —
        the work pool threads its task tokens through here; a query aborted
        this way answers [Unknown "cancelled"].
      - [starve_after] forces zero fuel on every query whose 0-based index
        on this context is [>= starve_after] — a deterministic fault-injection
        hook for testing degradation paths. *)

  val default : t
  (** The context used when an entry point is called without [?ctx] —
      process-global, uncached; exists for legacy callers. *)

  val set_fuel : t -> int option -> unit
  val set_timeout_ms : t -> int option -> unit
  val set_cancel : t -> (unit -> bool) option -> unit
  val set_starve_after : t -> int option -> unit
  (** Budget fields are plain configuration: adjust them between queries
      (e.g. lift a starved budget to re-decide exactly). *)

  val set_backing : t -> backing option -> unit
  (** Attach or detach the external verdict store. *)

  val queries : t -> int
  (** Satisfiability queries answered (cache hits included). *)

  val splinters : t -> int
  (** Splinter subproblems explored by inexact eliminations. *)

  val fuel_spent : t -> int
  (** Total solver work units charged across all queries. *)

  val peak_query_fuel : t -> int
  (** The largest fuel a single query spent — the number to compare against
      a [fuel] cap when sizing budgets. *)

  val unknowns : t -> int
  (** Queries that gave up ({!Unknown}) — the budget-exhaustion counter. *)

  val cache_hits : t -> int

  val cache_misses : t -> int

  val backing_hits : t -> int
  (** Queries answered by the external store (disk-cache hits) — counted
      separately from [cache_hits] (memo) and [cache_misses] (solved). *)

  val cache_enabled : t -> bool

  val cache_size : t -> int
  (** Distinct canonicalized systems stored (0 when caching is off). *)

  val reset : t -> unit
  (** Zero every counter and drop all cached verdicts (budget configuration
      is kept). *)
end

val decide : ?ctx:Ctx.t -> System.t -> verdict
(** The three-valued entry point: exact [Sat]/[Unsat] via equality
    reduction, Fourier-Motzkin with real/dark shadows, and splintering when
    the projection is inexact; [Unknown] when the context's budget (fuel,
    deadline or cancellation) runs out first.  Counts the query (and
    consults the memo cache) on the given context, [Ctx.default] when
    omitted.  Memoization is sound: only exact verdicts enter the table, so
    a cache hit is never a laundered [Unknown]. *)

val satisfiable : ?ctx:Ctx.t -> System.t -> bool
(** [decide] collapsed to a boolean, mapping [Unknown -> true] ("may be
    satisfiable").  This direction is conservative for every caller in the
    tree: dependence analysis keeps a dependence it could not refute,
    legality treats an undecided violation system as a violation, and bound
    pruning keeps a bound it could not prove redundant.  Callers that must
    distinguish "proved" from "gave up" use {!decide}. *)

val implies : ?ctx:Ctx.t -> System.t -> Constr.t -> bool
(** [implies s c] is true when every integer point of [s] satisfies [c].
    Built on {!satisfiable}, so a budget exhaustion conservatively answers
    false ("could not prove the implication"). *)

val implies_all : ?ctx:Ctx.t -> System.t -> Constr.t list -> bool

val equivalent : ?ctx:Ctx.t -> System.t -> System.t -> bool
(** Mutual implication over the same variable space. *)
