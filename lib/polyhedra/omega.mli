(** Exact integer feasibility of conjunctions of linear constraints —
    the Omega test (Pugh, CACM 1992).

    This is the decision procedure behind both dependence testing and the
    paper's Theorem 1 legality test for data shackles: a shackle is legal iff
    for every dependence, the system "(dependence exists) and (blocks visited
    in the wrong order)" has no integer solution. *)

(** Explicit solver contexts: per-context query/splinter counters and an
    optional memo cache over canonicalized systems.

    The autotuner asks near-identical legality questions across hundreds of
    candidate shackles (products share factors, factors share dependence
    systems), so a context created with [~cache:true] answers repeats from
    the table and records hit/miss statistics.  Keys are canonical — each
    constraint normalized and rendered sparsely, the renderings sorted and
    deduplicated — so systems differing only in constraint order,
    duplication, scaling, or trailing fresh variables share an entry, and a
    cached verdict is exact.  All state is domain-safe: counters are atomic,
    the table mutex-protected. *)
module Ctx : sig
  type t

  val create : ?cache:bool -> unit -> t
  (** A fresh context with zeroed counters.  [cache] (default false)
      enables the satisfiability memo table. *)

  val default : t
  (** The context used when an entry point is called without [?ctx] —
      process-global, uncached; exists for legacy callers and the
      deprecated {!stats}. *)

  val queries : t -> int
  (** Satisfiability queries answered (cache hits included). *)

  val splinters : t -> int
  (** Splinter subproblems explored by inexact eliminations. *)

  val cache_hits : t -> int

  val cache_misses : t -> int

  val cache_enabled : t -> bool

  val cache_size : t -> int
  (** Distinct canonicalized systems stored (0 when caching is off). *)

  val reset : t -> unit
  (** Zero every counter and drop all cached verdicts. *)
end

val satisfiable : ?ctx:Ctx.t -> System.t -> bool
(** Exact: uses equality reduction, Fourier-Motzkin with real/dark shadows,
    and splintering when the projection is inexact.  Counts the query (and
    consults the memo cache) on the given context, [Ctx.default] when
    omitted. *)

val implies : ?ctx:Ctx.t -> System.t -> Constr.t -> bool
(** [implies s c] is true when every integer point of [s] satisfies [c]. *)

val implies_all : ?ctx:Ctx.t -> System.t -> Constr.t list -> bool

val equivalent : ?ctx:Ctx.t -> System.t -> System.t -> bool
(** Mutual implication over the same variable space. *)

val stats : unit -> int * int
[@@ocaml.deprecated
  "module-level counters only see Ctx.default; create an Omega.Ctx and read \
   its per-context counters instead"]
(** (queries, splinters) of {!Ctx.default} — kept for old callers; blind to
    every explicitly-created context. *)
