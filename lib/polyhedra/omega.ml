module B = Bigint

(* ------------------------------------------------------------------ *)
(* Verdicts and budgets                                                 *)
(* ------------------------------------------------------------------ *)

type verdict = Sat | Unsat | Unknown of string

(* Process-wide default budget, applied at context creation when the caller
   does not pass an explicit fuel/timeout.  This is what the CLIs' --fuel
   and --timeout-ms set, so contexts created deep inside the pipeline are
   bounded too. *)
let default_fuel : int option ref = ref None
let default_timeout_ms : int option ref = ref None

let set_default_budget ?fuel ?timeout_ms () =
  default_fuel := fuel;
  default_timeout_ms := timeout_ms

(* Ambient per-domain deadline: a server handling one client's budgeted
   request wraps the computation in [with_deadline], and every query the
   wrapped code issues — however deep, on whatever shared context — is
   additionally capped by that wall-clock instant.  Nesting takes the
   tighter deadline; the previous value is restored on exit, including on
   exceptions. *)
let ambient_deadline : float Domain.DLS.key =
  Domain.DLS.new_key (fun () -> infinity)

let with_deadline ~until f =
  let prev = Domain.DLS.get ambient_deadline in
  Domain.DLS.set ambient_deadline (Float.min prev until);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set ambient_deadline prev)
    f

(* ------------------------------------------------------------------ *)
(* Solver contexts                                                     *)
(* ------------------------------------------------------------------ *)

(* An external verdict store behind the in-process memo: the disk-backed
   legality cache of the shackled daemon plugs in here.  Keys are the same
   canonical system renderings the memo table uses, so an entry written by
   one process answers another process's query exactly.  Only exact
   verdicts may be stored — the same soundness rule as the memo table. *)
type backing = {
  bk_find : string -> bool option;
  bk_store : string -> bool -> unit;
}

(* Per-context solver state: query/splinter/budget counters plus an
   optional memo table over canonicalized systems.  Counters are atomic and
   the table is mutex-protected because legality checks fan out over
   domains; callers that want isolated statistics (the autotuner, tests)
   create their own context, while legacy entry points share
   [Ctx.default].  The budget fields are plain configuration, written
   before (or between) queries. *)
module Ctx = struct
  type t = {
    queries : int Atomic.t;
    splinters : int Atomic.t;
    hits : int Atomic.t;
    misses : int Atomic.t;
    fuel_spent : int Atomic.t;
    peak_fuel : int Atomic.t;
    unknowns : int Atomic.t;
    backing_hits : int Atomic.t;
    mutable backing : backing option; (* external verdict store (disk cache) *)
    mutable fuel : int option; (* per-query work-unit cap *)
    mutable timeout_ms : int option; (* per-query wall-clock deadline *)
    mutable cancel : (unit -> bool) option; (* cooperative cancellation *)
    mutable starve_after : int option; (* fault injection: zero fuel from
                                          this query index on *)
    table : (string, bool) Hashtbl.t option;
    lock : Mutex.t;
  }

  let create ?(cache = false) ?backing ?fuel ?timeout_ms ?cancel ?starve_after
      () =
    { queries = Atomic.make 0;
      splinters = Atomic.make 0;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      fuel_spent = Atomic.make 0;
      peak_fuel = Atomic.make 0;
      unknowns = Atomic.make 0;
      backing_hits = Atomic.make 0;
      backing;
      fuel = (match fuel with Some _ -> fuel | None -> !default_fuel);
      timeout_ms =
        (match timeout_ms with Some _ -> timeout_ms | None -> !default_timeout_ms);
      cancel;
      starve_after;
      table = (if cache then Some (Hashtbl.create 1024) else None);
      lock = Mutex.create () }

  let default = create ()

  let set_fuel t f = t.fuel <- f
  let set_timeout_ms t ms = t.timeout_ms <- ms
  let set_cancel t c = t.cancel <- c
  let set_starve_after t s = t.starve_after <- s
  let set_backing t b = t.backing <- b

  let queries t = Atomic.get t.queries
  let splinters t = Atomic.get t.splinters
  let fuel_spent t = Atomic.get t.fuel_spent
  let peak_query_fuel t = Atomic.get t.peak_fuel
  let unknowns t = Atomic.get t.unknowns
  let cache_hits t = Atomic.get t.hits
  let cache_misses t = Atomic.get t.misses
  let backing_hits t = Atomic.get t.backing_hits
  let cache_enabled t = t.table <> None

  let cache_size t =
    match t.table with
    | None -> 0
    | Some h -> Mutex.protect t.lock (fun () -> Hashtbl.length h)

  let reset t =
    Atomic.set t.queries 0;
    Atomic.set t.splinters 0;
    Atomic.set t.hits 0;
    Atomic.set t.misses 0;
    Atomic.set t.fuel_spent 0;
    Atomic.set t.peak_fuel 0;
    Atomic.set t.unknowns 0;
    Atomic.set t.backing_hits 0;
    match t.table with
    | None -> ()
    | Some h -> Mutex.protect t.lock (fun () -> Hashtbl.reset h)
end

(* The per-query budget threaded through the recursion.  [remaining =
   max_int] means unlimited fuel; the deadline is an absolute wall-clock
   time ([infinity] when none).  Deadline and cancellation are only polled
   every 64 charged units: a gettimeofday per work unit would dominate the
   cheap eliminations, and 64 units bound the overshoot to well under a
   millisecond. *)
type budget = {
  mutable remaining : int;
  mutable spent : int;
  deadline : float;
  cancel : (unit -> bool) option;
  mutable tick : int;
}

exception Give_up of string

let charge b cost =
  b.spent <- b.spent + cost;
  if b.remaining <> max_int then begin
    b.remaining <- b.remaining - cost;
    if b.remaining < 0 then raise (Give_up "fuel")
  end;
  b.tick <- b.tick + cost;
  if b.tick >= 64 then begin
    b.tick <- 0;
    (match b.cancel with
    | Some cancelled when cancelled () -> raise (Give_up "cancelled")
    | _ -> ());
    if b.deadline < infinity && Unix.gettimeofday () > b.deadline then
      raise (Give_up "deadline")
  end

(* ------------------------------------------------------------------ *)
(* Helpers over constraints                                            *)
(* ------------------------------------------------------------------ *)

(* mod-hat of Pugh's equality reduction: the representative of [a] modulo
   [m] lying in [-m/2, m/2).  For [m = |ak| + 1] this maps [ak] to -sign(ak),
   giving a unit coefficient to solve for. *)
let mod_hat a m =
  let r = B.frem a m in
  if B.compare (B.mul B.two r) m >= 0 then B.sub r m else r

(* Solve [c.aff = 0] for variable [k] whose coefficient is +-1 and return
   the replacement form for x_k. *)
let solve_for aff k =
  let u = Affine.coeff aff k in
  assert (B.equal (B.abs u) B.one);
  let rest = Affine.set_coeff aff k B.zero in
  (* u*x + rest = 0  =>  x = -rest/u = -u*rest (u = +-1) *)
  Affine.scale (B.neg u) rest

type split = {
  lowers : (B.t * Affine.t) list; (* (b, l): b*x >= l, b > 0 *)
  uppers : (B.t * Affine.t) list; (* (a, u): a*x <= u, a > 0 *)
  rest : Constr.t list;
}

let split_on cs k =
  let lowers = ref [] and uppers = ref [] and rest = ref [] in
  List.iter
    (fun (c : Constr.t) ->
      let ck = Affine.coeff c.aff k in
      let sign = B.sign ck in
      if sign = 0 then rest := c :: !rest
      else begin
        assert (c.kind = Constr.Ge);
        let form = Affine.set_coeff c.aff k B.zero in
        if sign > 0 then lowers := (ck, Affine.neg form) :: !lowers
        else uppers := (B.neg ck, form) :: !uppers
      end)
    cs;
  { lowers = !lowers; uppers = !uppers; rest = !rest }

(* ------------------------------------------------------------------ *)
(* The solver                                                          *)
(* ------------------------------------------------------------------ *)

exception Unsat_exn

(* Normalize a list of Ge/Eq constraints; raises Unsat_exn on a contradiction
   that is visible syntactically, returns (eqs, ges) with trivial
   constraints dropped, integer tightening applied to inequalities, and
   parallel inequalities collapsed to the strongest one.  The compression
   is essential: Fourier-Motzkin elimination inside the solver produces
   many parallel combinations, and without it the constraint count explodes
   on deep systems (e.g. multi-level blocking legality). *)
let normalize_split cs =
  let eqs = ref [] in
  let ges : (string, Constr.t) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let key (c : Constr.t) =
    let buf = Buffer.create 32 in
    Array.iter
      (fun x ->
        Buffer.add_string buf (B.to_string x);
        Buffer.add_char buf ',')
      (c.aff : Affine.t).coeffs;
    Buffer.contents buf
  in
  List.iter
    (fun c ->
      let c = Constr.normalize c in
      if Constr.is_trivially_false c then raise Unsat_exn
      else if Constr.is_trivially_true c then ()
      else
        match (c : Constr.t).kind with
        | Constr.Eq ->
          (* Constr.normalize leaves equalities untouched when the content
             does not divide the constant: that is a contradiction. *)
          let g = Affine.content c.aff in
          if
            (not (B.is_zero g))
            && not (B.is_zero (B.frem (Affine.const_of c.aff) g))
          then raise Unsat_exn
          else eqs := c :: !eqs
        | Constr.Ge -> begin
          let k = key c in
          match Hashtbl.find_opt ges k with
          | None ->
            Hashtbl.add ges k c;
            order := k :: !order
          | Some old ->
            if B.compare (Affine.const_of c.aff) (Affine.const_of old.aff) < 0
            then Hashtbl.replace ges k c
        end)
    cs;
  (List.rev !eqs, List.rev_map (fun k -> Hashtbl.find ges k) !order)

let vars_of cs =
  List.sort_uniq compare (List.concat_map (fun (c : Constr.t) -> Affine.vars c.aff) cs)

(* Integer bound propagation: a cheap refutation pre-pass run before the
   expensive eliminations.  Each inequality [sum aj*xj + c >= 0] tightens
   the interval of any variable whose co-variables are already bounded on
   the relevant side ([ak*xk >= -c - sum_{j<>k} aj*xj], with integer
   rounding of the division by [ak]); equalities propagate both ways.  An
   interval that empties proves unsatisfiability; anything else is
   inconclusive and falls through to the full solver.  Sound because every
   integer solution satisfies every propagated bound.  This closes quickly
   over the near-pinned systems that fixed-parameter legality queries
   produce, where pure Fourier-Motzkin recursion is at its worst. *)
let refuted_by_intervals bgt dim (eqs : Constr.t list) (ges : Constr.t list) =
  let lo = Array.make dim None and hi = Array.make dim None in
  let forms =
    List.concat_map
      (fun (c : Constr.t) ->
        match c.kind with
        | Constr.Ge -> [ c.aff ]
        | Constr.Eq -> [ c.aff; Affine.neg c.aff ])
      (eqs @ ges)
  in
  let forms = List.map (fun a -> (a, Affine.vars a)) forms in
  let empty = ref false in
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed && (not !empty) && !sweeps < 16 do
    changed := false;
    incr sweeps;
    charge bgt 1;
    List.iter
      (fun (aff, vars) ->
        if not !empty then
          List.iter
            (fun k ->
              (* [ak*xk >= -(c + sum_{j<>k} aj*xj)] holds for every solution,
                 so the box maximum of the rest gives a valid bound on xk *)
              let rest_max =
                List.fold_left
                  (fun acc j ->
                    if j = k then acc
                    else
                      match acc with
                      | None -> None
                      | Some sum ->
                        let aj = Affine.coeff aff j in
                        let bound = if B.sign aj > 0 then hi.(j) else lo.(j) in
                        (match bound with
                        | Some v -> Some (B.add sum (B.mul aj v))
                        | None -> None))
                  (Some (Affine.const_of aff))
                  vars
              in
              match rest_max with
              | None -> ()
              | Some rm ->
                let ak = Affine.coeff aff k in
                if B.sign ak > 0 then begin
                  (* xk >= ceil(-rm / ak) *)
                  let b = B.cdiv (B.neg rm) ak in
                  match lo.(k) with
                  | Some old when B.compare old b >= 0 -> ()
                  | _ ->
                    lo.(k) <- Some b;
                    changed := true;
                    (match hi.(k) with
                    | Some h when B.compare b h > 0 -> empty := true
                    | _ -> ())
                end
                else begin
                  (* xk <= floor(rm / -ak) *)
                  let b = B.fdiv rm (B.neg ak) in
                  match hi.(k) with
                  | Some old when B.compare old b <= 0 -> ()
                  | _ ->
                    hi.(k) <- Some b;
                    changed := true;
                    (match lo.(k) with
                    | Some l when B.compare l b > 0 -> empty := true
                    | _ -> ())
                end)
            vars)
      forms
  done;
  !empty

let rec solve ctx bgt dim names (cs : Constr.t list) =
  charge bgt 1;
  match normalize_split cs with
  | exception Unsat_exn -> false
  | eqs, ges ->
    if refuted_by_intervals bgt dim eqs ges then false
    else begin
      match eqs with
      | [] -> solve_ineqs ctx bgt dim names ges
      | eq :: other_eqs -> solve_eq ctx bgt dim names eq (other_eqs @ ges)
    end

and solve_eq ctx bgt dim names (eq : Constr.t) others =
  (* Prefer a variable with a unit coefficient. *)
  let unit_var =
    List.find_opt
      (fun k -> B.equal (B.abs (Affine.coeff eq.aff k)) B.one)
      (Affine.vars eq.aff)
  in
  match unit_var with
  | Some k ->
    let e = solve_for eq.aff k in
    solve ctx bgt dim names (List.map (fun c -> Constr.subst c k e) others)
  | None ->
    (* Pugh's reduction: no unit coefficient; pick the variable with the
       smallest |coefficient|, introduce sigma with
       sum mod_hat(ai) xi + mod_hat(c) - m*sigma = 0,  m = |ak| + 1,
       in which x_k has coefficient -sign(ak); solve for x_k and
       substitute everywhere (including into [eq] itself). *)
    let k =
      List.fold_left
        (fun best k ->
          match best with
          | None -> Some k
          | Some b ->
            if
              B.compare
                (B.abs (Affine.coeff eq.aff k))
                (B.abs (Affine.coeff eq.aff b))
              < 0
            then Some k
            else best)
        None (Affine.vars eq.aff)
    in
    let k = Option.get k in
    let m = B.add (B.abs (Affine.coeff eq.aff k)) B.one in
    let sigma = dim in
    let dim' = dim + 1 in
    let names' = Array.append names [| "~s" ^ string_of_int dim |] in
    let eq' = Constr.extend eq dim' in
    let others' = List.map (fun c -> Constr.extend c dim') others in
    let reduced_coeffs =
      Array.init dim' (fun i ->
          if i = sigma then B.neg m
          else mod_hat (Affine.coeff eq'.aff i) m)
    in
    let reduced =
      Affine.make reduced_coeffs (mod_hat (Affine.const_of eq'.aff) m)
    in
    let e = solve_for reduced k in
    solve ctx bgt dim' names'
      (List.map (fun c -> Constr.subst c k e) (eq' :: others'))

and solve_ineqs ctx bgt dim names ges =
  match vars_of ges with
  | [] -> true (* non-trivial constant constraints were filtered *)
  | vars ->
    (* Choose the elimination variable: exact eliminations first, then the
       fewest pair combinations. *)
    let measure k =
      let { lowers; uppers; _ } = split_on ges k in
      let exact =
        List.for_all (fun (b, _) -> B.equal b B.one) lowers
        || List.for_all (fun (a, _) -> B.equal a B.one) uppers
      in
      (exact, List.length lowers * List.length uppers, k)
    in
    let choice =
      List.fold_left
        (fun best k ->
          let (exact, cost, _) as m = measure k in
          match best with
          | None -> Some m
          | Some (be, bc, _) ->
            if exact <> be then if exact then Some m else best
            else if cost < bc then Some m
            else best)
        None vars
    in
    let exact, cost, k = Option.get choice in
    let { lowers; uppers; rest } = split_on ges k in
    (* The FM elimination the solver drives is where the constraint count
       explodes, so fuel is charged proportionally to the pair combinations
       about to be generated. *)
    charge bgt (max 1 cost);
    let combine extra_slack =
      List.concat_map
        (fun (b, l) ->
          List.map
            (fun (a, u) ->
              (* b*x >= l, a*x <= u => a*l <= ab*x <= b*u *)
              let gap = Affine.sub (Affine.scale b u) (Affine.scale a l) in
              Constr.ge
                (Affine.add_const gap
                   (B.neg (extra_slack a b))))
            uppers)
        lowers
    in
    let no_slack _ _ = B.zero in
    if exact then solve ctx bgt dim names (combine no_slack @ rest)
    else begin
      let real = combine no_slack in
      if not (solve ctx bgt dim names (real @ rest)) then false
      else begin
        let dark_slack a b = B.mul (B.pred a) (B.pred b) in
        if solve ctx bgt dim names (combine dark_slack @ rest) then true
        else begin
          (* Splinter: any integer solution has some lower bound b*x >= l
             with b*x <= l + (b*amax - b - amax)/amax. *)
          let amax =
            List.fold_left (fun acc (a, _) -> B.max acc a) B.one uppers
          in
          List.exists
            (fun (b, l) ->
              let kmax =
                B.fdiv
                  (B.sub (B.mul b amax) (B.add b amax))
                  amax
              in
              let rec try_i i =
                if B.compare i kmax > 0 then false
                else begin
                  Atomic.incr ctx.Ctx.splinters;
                  charge bgt 1;
                  let eq =
                    Constr.eq
                      (Affine.add_const
                         (Affine.sub
                            (Affine.scale b (Affine.var dim k))
                            l)
                         (B.neg i))
                  in
                  if solve ctx bgt dim names (eq :: ges) then true
                  else try_i (B.succ i)
                end
              in
              try_i B.zero)
            lowers
        end
      end
    end

(* Canonical cache key: each constraint is normalized (gcd-divided,
   integer-tightened) and rendered sparsely as kind + (index, coefficient)
   pairs + constant; the renderings are sorted and deduplicated.  Two
   systems that differ only in constraint order, duplicated constraints,
   positive scaling, or trailing fresh variables (all-zero coefficients
   render away) share a key, and satisfiability is invariant under all
   four, so a cached verdict is exact. *)
let canonical_key s =
  let render (c : Constr.t) =
    let c = Constr.normalize c in
    let buf = Buffer.create 32 in
    Buffer.add_char buf (match c.kind with Constr.Eq -> 'e' | Constr.Ge -> 'g');
    List.iter
      (fun i ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int i);
        Buffer.add_char buf ':';
        Buffer.add_string buf (B.to_string (Affine.coeff c.aff i)))
      (Affine.vars c.aff);
    Buffer.add_char buf '|';
    Buffer.add_string buf (B.to_string (Affine.const_of c.aff));
    Buffer.contents buf
  in
  String.concat ";"
    (List.sort_uniq String.compare (List.map render (System.constraints s)))

(* One budgeted query: build the per-query budget from the context's
   configuration (a starved query index forces fuel 0), run the solver,
   account the fuel, and turn budget exhaustion into [Unknown]. *)
let solve_sys ctx ~query_index s =
  let starved =
    match ctx.Ctx.starve_after with
    | Some k -> query_index >= k
    | None -> false
  in
  let bgt =
    { remaining =
        (if starved then 0
         else match ctx.Ctx.fuel with Some f -> max 0 f | None -> max_int);
      spent = 0;
      deadline =
        Float.min
          (Domain.DLS.get ambient_deadline)
          (match ctx.Ctx.timeout_ms with
          | Some ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0)
          | None -> infinity);
      cancel = ctx.Ctx.cancel;
      tick = 0 }
  in
  let account () =
    ignore (Atomic.fetch_and_add ctx.Ctx.fuel_spent bgt.spent);
    let rec bump () =
      let peak = Atomic.get ctx.Ctx.peak_fuel in
      if bgt.spent > peak then
        if not (Atomic.compare_and_set ctx.Ctx.peak_fuel peak bgt.spent) then
          bump ()
    in
    bump ()
  in
  match solve ctx bgt (System.dim s) (System.names s) (System.constraints s) with
  | sat ->
    account ();
    if sat then Sat else Unsat
  | exception Give_up reason ->
    account ();
    Atomic.incr ctx.Ctx.unknowns;
    Unknown reason

let decide ?(ctx = Ctx.default) s =
  let query_index = Atomic.fetch_and_add ctx.Ctx.queries 1 in
  match (ctx.Ctx.table, ctx.Ctx.backing) with
  | None, None -> solve_sys ctx ~query_index s
  | table, backing -> (
    let key = canonical_key s in
    let memo_store sat =
      match table with
      | None -> ()
      | Some t ->
        Mutex.protect ctx.Ctx.lock (fun () ->
            if not (Hashtbl.mem t key) then Hashtbl.add t key sat)
    in
    let cached =
      match table with
      | None -> None
      | Some t -> Mutex.protect ctx.Ctx.lock (fun () -> Hashtbl.find_opt t key)
    in
    match cached with
    | Some sat ->
      Atomic.incr ctx.Ctx.hits;
      if sat then Sat else Unsat
    | None -> (
      (* the external store sits behind the memo: a disk hit fills the
         in-process table so the next repeat is a memory lookup *)
      match Option.bind backing (fun b -> b.bk_find key) with
      | Some sat ->
        Atomic.incr ctx.Ctx.backing_hits;
        memo_store sat;
        if sat then Sat else Unsat
      | None ->
        Atomic.incr ctx.Ctx.misses;
        (* solve outside the lock: concurrent domains may duplicate a miss,
           but never block each other on a long elimination *)
        let v = solve_sys ctx ~query_index s in
        (match v with
        | Sat | Unsat ->
          let sat = v = Sat in
          memo_store sat;
          (match backing with Some b -> b.bk_store key sat | None -> ())
        | Unknown _ ->
          (* an exhausted query is not a verdict: caching it would launder
             "gave up" into an exact answer on the next lookup *)
          ());
        v))

let satisfiable ?ctx s =
  match decide ?ctx s with Sat -> true | Unsat -> false | Unknown _ -> true

let implies ?ctx s (c : Constr.t) =
  match c.kind with
  | Constr.Ge -> not (satisfiable ?ctx (System.add s (Constr.negate_ge c)))
  | Constr.Eq ->
    (not (satisfiable ?ctx (System.add s (Constr.negate_ge (Constr.ge c.aff)))))
    && not
         (satisfiable ?ctx
            (System.add s (Constr.negate_ge (Constr.ge (Affine.neg c.aff)))))

let implies_all ?ctx s cs = List.for_all (implies ?ctx s) cs

let equivalent ?ctx a b =
  implies_all ?ctx a (System.constraints b)
  && implies_all ?ctx b (System.constraints a)
