(* Append-only, CRC-guarded, fsynced on-disk verdict store.  See the mli
   for the file format.  All state is mutex-protected: the daemon's worker
   domains share one handle. *)

let filename = "legality.cache"
let header = "shackle-cache/1\n"
let record_bytes = 22
let tag = '\xA5'

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, the zlib polynomial)                             *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Records                                                             *)
(* ------------------------------------------------------------------ *)

let render_record digest verdict =
  let buf = Buffer.create record_bytes in
  Buffer.add_char buf tag;
  Buffer.add_string buf digest;
  Buffer.add_char buf (if verdict then '\x01' else '\x00');
  let body = Buffer.contents buf in
  let crc = crc32 body ~pos:0 ~len:(record_bytes - 4) in
  Buffer.add_char buf (Char.chr ((crc lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (crc land 0xff));
  Buffer.contents buf

(* [parse_record raw off] is [Some (digest, verdict)] when the 22 bytes at
   [off] form a valid record. *)
let parse_record raw off =
  if String.length raw - off < record_bytes then None
  else if not (Char.equal raw.[off] tag) then None
  else
    let verdict_byte = raw.[off + 17] in
    if not (Char.equal verdict_byte '\x00' || Char.equal verdict_byte '\x01')
    then None
    else
      let stored =
        (Char.code raw.[off + 18] lsl 24)
        lor (Char.code raw.[off + 19] lsl 16)
        lor (Char.code raw.[off + 20] lsl 8)
        lor Char.code raw.[off + 21]
      in
      if stored <> crc32 raw ~pos:off ~len:(record_bytes - 4) then None
      else Some (String.sub raw (off + 1) 16, Char.equal verdict_byte '\x01')

(* ------------------------------------------------------------------ *)
(* The handle                                                          *)
(* ------------------------------------------------------------------ *)

type t = {
  path : string;
  table : (string, bool) Hashtbl.t; (* digest -> verdict *)
  mutable fd : Unix.file_descr option; (* None once closed *)
  mutable written : int; (* valid bytes (header + records) *)
  mutable n_dropped : int;
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_appended : int Atomic.t;
  lock : Mutex.t;
}

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if not (String.equal parent dir) then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir dir =
  mkdir_p dir;
  let path = Filename.concat dir filename in
  let table = Hashtbl.create 1024 in
  let fresh = not (Sys.file_exists path) in
  let raw = if fresh then "" else read_whole path in
  if (not fresh)
     && String.length raw >= String.length header
     && not (String.equal (String.sub raw 0 (String.length header)) header)
  then
    failwith
      (Printf.sprintf "%s: not a shackle-cache/1 file (refusing to clobber)"
         path);
  (* load every valid record; the first invalid boundary ends the file *)
  let valid = ref (min (String.length raw) (String.length header)) in
  if !valid = String.length header then begin
    let off = ref (String.length header) in
    let continue = ref true in
    while !continue do
      match parse_record raw !off with
      | Some (digest, verdict) ->
        Hashtbl.replace table digest verdict;
        off := !off + record_bytes;
        valid := !off
      | None -> continue := false
    done
  end
  else valid := 0 (* short header: the whole file is a torn header write *);
  let dropped = String.length raw - !valid in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  (* drop the torn tail so appends land on a record boundary, and write
     the header on a fresh (or torn-header) file *)
  ignore (Unix.ftruncate fd !valid);
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  let written =
    if !valid = 0 then begin
      let n = Unix.write_substring fd header 0 (String.length header) in
      assert (n = String.length header);
      Unix.fsync fd;
      String.length header
    end
    else !valid
  in
  { path;
    table;
    fd = Some fd;
    written;
    n_dropped = dropped;
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_appended = Atomic.make 0;
    lock = Mutex.create () }

let close t =
  Mutex.protect t.lock (fun () ->
      match t.fd with
      | None -> ()
      | Some fd ->
        t.fd <- None;
        Unix.close fd)

let file t = t.path

let find t key =
  let digest = Digest.string key in
  let r = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table digest) in
  (match r with
  | Some _ -> Atomic.incr t.n_hits
  | None -> Atomic.incr t.n_misses);
  r

let write_all fd s ~len =
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let add t key verdict =
  let digest = Digest.string key in
  Mutex.protect t.lock (fun () ->
      if not (Hashtbl.mem t.table digest) then begin
        Hashtbl.replace t.table digest verdict;
        match t.fd with
        | None -> ()
        | Some fd ->
          let record = render_record digest verdict in
          write_all fd record ~len:record_bytes;
          Unix.fsync fd;
          t.written <- t.written + record_bytes;
          Atomic.incr t.n_appended
      end)

let backing t =
  { Polyhedra.Omega.bk_find = find t; bk_store = add t }

let entries t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
let bytes_on_disk t = Mutex.protect t.lock (fun () -> t.written)
let hits t = Atomic.get t.n_hits
let misses t = Atomic.get t.n_misses
let appended t = Atomic.get t.n_appended
let dropped_bytes t = t.n_dropped

(* Crash injection: write a prefix of a record, fsync, and abandon the
   handle — the on-disk image is exactly what a kill -9 between the two
   halves of a non-atomic append leaves behind. *)
let add_torn t key verdict ~keep =
  if keep < 0 || keep >= record_bytes then
    invalid_arg "Diskcache.add_torn: keep must be in [0, record_bytes)";
  let digest = Digest.string key in
  Mutex.protect t.lock (fun () ->
      match t.fd with
      | None -> invalid_arg "Diskcache.add_torn: closed handle"
      | Some fd ->
        let record = render_record digest verdict in
        write_all fd record ~len:keep;
        Unix.fsync fd;
        t.fd <- None;
        Unix.close fd)
