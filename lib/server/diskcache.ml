(* Append-only, CRC-guarded, fsynced on-disk verdict store with
   self-healing: the loader resynchronizes past corrupt spans (moving them
   to a quarantine sidecar instead of discarding the rest of the file),
   and the file can be compacted — deduplicated and rewritten in stable
   first-seen order — offline or bounded online via [max_bytes] rotation.
   See the mli for the file format.  All state is mutex-protected: the
   daemon's worker domains share one handle. *)

let filename = "legality.cache"
let quarantine_suffix = ".quarantine"
let header = "shackle-cache/1\n"
let record_bytes = 22
let tag = '\xA5'

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, the zlib polynomial)                             *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Records                                                             *)
(* ------------------------------------------------------------------ *)

let render_record digest verdict =
  let buf = Buffer.create record_bytes in
  Buffer.add_char buf tag;
  Buffer.add_string buf digest;
  Buffer.add_char buf (if verdict then '\x01' else '\x00');
  let body = Buffer.contents buf in
  let crc = crc32 body ~pos:0 ~len:(record_bytes - 4) in
  Buffer.add_char buf (Char.chr ((crc lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (crc land 0xff));
  Buffer.contents buf

(* [parse_record raw off] is [Some (digest, verdict)] when the 22 bytes at
   [off] form a valid record. *)
let parse_record raw off =
  if String.length raw - off < record_bytes then None
  else if not (Char.equal raw.[off] tag) then None
  else
    let verdict_byte = raw.[off + 17] in
    if not (Char.equal verdict_byte '\x00' || Char.equal verdict_byte '\x01')
    then None
    else
      let stored =
        (Char.code raw.[off + 18] lsl 24)
        lor (Char.code raw.[off + 19] lsl 16)
        lor (Char.code raw.[off + 20] lsl 8)
        lor Char.code raw.[off + 21]
      in
      if stored <> crc32 raw ~pos:off ~len:(record_bytes - 4) then None
      else Some (String.sub raw (off + 1) 16, Char.equal verdict_byte '\x01')

(* ------------------------------------------------------------------ *)
(* The handle                                                          *)
(* ------------------------------------------------------------------ *)

type t = {
  path : string;
  table : (string, bool) Hashtbl.t; (* digest -> verdict *)
  mutable order : string list; (* digests, newest first *)
  mutable fd : Unix.file_descr option; (* None once closed *)
  mutable written : int; (* valid bytes (header + records) *)
  mutable n_dropped : int; (* torn + quarantined bytes at open *)
  mutable n_quarantined : int; (* bytes moved to the sidecar at open *)
  mutable n_quarantined_spans : int;
  mutable n_compactions : int;
  max_bytes : int option;
  n_hits : int Atomic.t;
  n_misses : int Atomic.t;
  n_appended : int Atomic.t;
  lock : Mutex.t;
}

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if not (String.equal parent dir) then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let rec write_all fd s ~pos ~len =
  if len > 0 then
    match Unix.write_substring fd s pos len with
    | n -> write_all fd s ~pos:(pos + n) ~len:(len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s ~pos ~len

(* Atomically replace the cache file with [header] + the given records
   (a digest/verdict pair each, oldest first): write to a sibling temp
   file, fsync, rename over.  Returns the new file size. *)
let rewrite_file path records =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let buf = Buffer.create (String.length header + (record_bytes * List.length records)) in
      Buffer.add_string buf header;
      List.iter
        (fun (digest, verdict) -> Buffer.add_string buf (render_record digest verdict))
        records;
      let body = Buffer.contents buf in
      write_all fd body ~pos:0 ~len:(String.length body);
      Unix.fsync fd;
      String.length body)
  |> fun size ->
  Unix.rename tmp path;
  size

(* Append corrupt spans to the quarantine sidecar, each framed by a
   one-line text header so a human (or test) can account for every byte:
   the raw span follows the header verbatim. *)
let quarantine_spans path spans =
  if spans <> [] then begin
    let qpath = path ^ quarantine_suffix in
    let fd =
      Unix.openfile qpath [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        List.iter
          (fun (off, raw) ->
            let head =
              Printf.sprintf "quarantine %d bytes at offset %d\n"
                (String.length raw) off
            in
            write_all fd head ~pos:0 ~len:(String.length head);
            write_all fd raw ~pos:0 ~len:(String.length raw);
            write_all fd "\n" ~pos:0 ~len:1)
          spans;
        Unix.fsync fd)
  end

let open_dir ?max_bytes dir =
  (match max_bytes with
  | Some m when m < String.length header + record_bytes ->
    invalid_arg "Diskcache.open_dir: max_bytes smaller than one record"
  | _ -> ());
  mkdir_p dir;
  let path = Filename.concat dir filename in
  let table = Hashtbl.create 1024 in
  let fresh = not (Sys.file_exists path) in
  let raw = if fresh then "" else read_whole path in
  if (not fresh)
     && String.length raw >= String.length header
     && not (String.equal (String.sub raw 0 (String.length header)) header)
  then
    failwith
      (Printf.sprintf "%s: not a shackle-cache/1 file (refusing to clobber)"
         path);
  (* Scan every record boundary.  A span that fails to parse is skipped by
     resynchronizing on the next offset where a whole valid record starts;
     skipped spans of a record or more are corrupt (quarantined), while a
     shorter span at end-of-file is a torn append (silently dropped, as a
     kill -9 mid-write leaves behind). *)
  let records = ref [] (* (digest, verdict), newest first *) in
  let bad = ref [] (* (offset, raw span), newest first *) in
  let parsed = ref 0 (* valid record slots seen, duplicates included *) in
  let torn = ref 0 in
  let len = String.length raw in
  if len >= String.length header then begin
    let off = ref (String.length header) in
    while !off < len do
      match parse_record raw !off with
      | Some (digest, verdict) ->
        incr parsed;
        if not (Hashtbl.mem table digest) then begin
          Hashtbl.replace table digest verdict;
          records := (digest, verdict) :: !records
        end;
        off := !off + record_bytes
      | None ->
        let start = !off in
        let stop = ref (start + 1) in
        while !stop < len && parse_record raw !stop = None do
          incr stop
        done;
        let span = String.sub raw start (!stop - start) in
        if !stop >= len && String.length span < record_bytes then
          torn := String.length span (* torn tail: drop, don't quarantine *)
        else bad := (start, span) :: !bad;
        off := !stop
    done
  end
  else if len > 0 then torn := len (* torn header write: the whole file *);
  let ordered = List.rev !records in
  let spans = List.rev !bad in
  let quarantined =
    List.fold_left (fun acc (_, s) -> acc + String.length s) 0 spans
  in
  quarantine_spans path spans;
  let healthy_bytes =
    String.length header + (record_bytes * List.length ordered)
  in
  (* Heal the file: corrupt spans or on-disk duplicates (two processes
     appending the same digest) force a rewrite in first-seen order; a
     torn tail alone is healed by truncation (byte-identical surviving
     prefix, the cheaper path); a fresh or torn-header file starts over
     with a clean header. *)
  let duplicates = !parsed > List.length ordered in
  let written =
    if fresh || !torn = len then rewrite_file path ordered
    else if spans <> [] || duplicates then rewrite_file path ordered
    else begin
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      ignore (Unix.ftruncate fd healthy_bytes);
      Unix.close fd;
      healthy_bytes
    end
  in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  { path;
    table;
    order = List.map fst !records;
    fd = Some fd;
    written;
    n_dropped = !torn + quarantined;
    n_quarantined = quarantined;
    n_quarantined_spans = List.length spans;
    n_compactions = 0;
    max_bytes;
    n_hits = Atomic.make 0;
    n_misses = Atomic.make 0;
    n_appended = Atomic.make 0;
    lock = Mutex.create () }

let close t =
  Mutex.protect t.lock (fun () ->
      match t.fd with
      | None -> ()
      | Some fd ->
        t.fd <- None;
        Unix.close fd)

let file t = t.path
let quarantine_file t = t.path ^ quarantine_suffix

let find t key =
  let digest = Digest.string key in
  let r = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table digest) in
  (match r with
  | Some _ -> Atomic.incr t.n_hits
  | None -> Atomic.incr t.n_misses);
  r

(* With the lock held: rewrite the file as header + one record per live
   digest in first-seen order, swap the append fd to the new file. *)
let compact_locked t =
  let before = t.written in
  let ordered =
    List.rev_map
      (fun digest -> (digest, Hashtbl.find t.table digest))
      t.order
  in
  let size = rewrite_file t.path ordered in
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- Some (Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644);
  t.written <- size;
  t.n_compactions <- t.n_compactions + 1;
  (before, size)

(* With the lock held: evict oldest entries until the file (after the
   compaction that follows) fits in [max] bytes. *)
let trim_locked t max =
  let cap = (max - String.length header) / record_bytes in
  let live = List.length t.order in
  if live > cap then begin
    let keep = ref [] and n = ref 0 in
    (* order is newest first: keep the newest [cap] *)
    List.iter
      (fun d ->
        if !n < cap then begin
          keep := d :: !keep;
          incr n
        end
        else Hashtbl.remove t.table d)
      t.order;
    t.order <- List.rev !keep
  end

let add t key verdict =
  let digest = Digest.string key in
  Mutex.protect t.lock (fun () ->
      if not (Hashtbl.mem t.table digest) then begin
        Hashtbl.replace t.table digest verdict;
        t.order <- digest :: t.order;
        match t.fd with
        | None -> ()
        | Some fd ->
          let record = render_record digest verdict in
          write_all fd record ~pos:0 ~len:record_bytes;
          Unix.fsync fd;
          t.written <- t.written + record_bytes;
          Atomic.incr t.n_appended;
          match t.max_bytes with
          | Some max when t.written > max ->
            trim_locked t max;
            ignore (compact_locked t)
          | _ -> ()
      end)

let compact t = Mutex.protect t.lock (fun () -> compact_locked t)

let backing t =
  { Polyhedra.Omega.bk_find = find t; bk_store = add t }

let entries t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
let bytes_on_disk t = Mutex.protect t.lock (fun () -> t.written)
let hits t = Atomic.get t.n_hits
let misses t = Atomic.get t.n_misses
let appended t = Atomic.get t.n_appended
let dropped_bytes t = t.n_dropped
let quarantined_bytes t = t.n_quarantined
let quarantined_spans t = t.n_quarantined_spans
let compactions t = Mutex.protect t.lock (fun () -> t.n_compactions)

(* Crash injection: write a prefix of a record, fsync, and abandon the
   handle — the on-disk image is exactly what a kill -9 between the two
   halves of a non-atomic append leaves behind. *)
let add_torn t key verdict ~keep =
  if keep < 0 || keep >= record_bytes then
    invalid_arg "Diskcache.add_torn: keep must be in [0, record_bytes)";
  let digest = Digest.string key in
  Mutex.protect t.lock (fun () ->
      match t.fd with
      | None -> invalid_arg "Diskcache.add_torn: closed handle"
      | Some fd ->
        let record = render_record digest verdict in
        write_all fd record ~pos:0 ~len:keep;
        Unix.fsync fd;
        t.fd <- None;
        Unix.close fd)
