(** The persistent, content-addressed legality cache behind the shackled
    daemon — the on-disk promotion of the in-process {!Polyhedra.Omega.Ctx}
    memo table.

    One append-only file ([legality.cache] in the cache directory) holds
    fixed-size records, each the MD5 digest of a canonical constraint
    system ({!Polyhedra.Omega.canonical_key}) plus its exact verdict,
    guarded by a CRC32:

    {v
      file   := header record*
      header := "shackle-cache/1\n"            (16 bytes)
      record := 0xA5 digest[16] verdict crc32  (22 bytes)
                verdict: 0x00 = unsat, 0x01 = sat
                crc32:   big-endian, over the first 18 bytes
    v}

    Appends are fsynced, so a record once observed survives power loss.  A
    crash mid-append can leave a torn tail; the loader accepts every
    record whose tag and CRC check out and truncates the file back to the
    last valid boundary, dropping only the torn bytes — the same
    torn-entry tolerance as the fuzz campaign checkpoints.  Because
    records are keyed by content digest, processes sharing a directory
    (daemon restarts, parallel CI runs) read each other's verdicts. *)

type t

val filename : string
(** ["legality.cache"]. *)

val record_bytes : int
(** 22 — the fixed record size, exposed so tests can truncate at every
    byte boundary of the last record. *)

val open_dir : string -> t
(** Open (creating directory and file as needed) the cache under this
    directory, load all valid records, and truncate any torn tail.
    @raise Failure if the file exists but its header is not
    ["shackle-cache/1\n"] — a foreign file is never silently clobbered. *)

val close : t -> unit

val file : t -> string
(** Path of the underlying cache file. *)

val find : t -> string -> bool option
(** Look up a canonical-system key (digested internally); counts a hit or
    a miss. *)

val add : t -> string -> bool -> unit
(** Append the verdict for a key (no-op if the digest is already present)
    and fsync. *)

val backing : t -> Polyhedra.Omega.backing
(** The {!find}/{!add} pair packaged as a solver-context backing store. *)

val entries : t -> int
(** Distinct digests currently loaded. *)

val bytes_on_disk : t -> int

val hits : t -> int

val misses : t -> int

val appended : t -> int
(** Records written by this handle. *)

val dropped_bytes : t -> int
(** Torn bytes discarded at {!open_dir} (0 on a clean file). *)

val add_torn : t -> string -> bool -> keep:int -> unit
(** Crash-injection hook for recovery tests: append only the first [keep]
    bytes of the record (0 <= keep < {!record_bytes}), fsync, and mark the
    handle closed as a kill -9 mid-write would.  The next {!open_dir} must
    drop exactly the torn tail. *)
