(** The persistent, content-addressed legality cache behind the shackled
    daemon — the on-disk promotion of the in-process {!Polyhedra.Omega.Ctx}
    memo table.

    One append-only file ([legality.cache] in the cache directory) holds
    fixed-size records, each the MD5 digest of a canonical constraint
    system ({!Polyhedra.Omega.canonical_key}) plus its exact verdict,
    guarded by a CRC32:

    {v
      file   := header record*
      header := "shackle-cache/1\n"            (16 bytes)
      record := 0xA5 digest[16] verdict crc32  (22 bytes)
                verdict: 0x00 = unsat, 0x01 = sat
                crc32:   big-endian, over the first 18 bytes
    v}

    Appends are fsynced, so a record once observed survives power loss.
    The loader is self-healing: it accepts every record whose tag and CRC
    check out, resynchronizing past spans that don't.  A span shorter than
    one record at end-of-file is a torn append (a kill -9 mid-write) and
    is silently truncated; any other bad span is corruption and is moved
    to a [.quarantine] sidecar — serving continues on the surviving
    records, byte-equivalent to a never-corrupted file.  On-disk
    duplicates (two processes appending the same digest) are deduplicated
    on load and the file rewritten.  Because records are keyed by content
    digest, processes sharing a directory (daemon restarts, parallel CI
    runs) read each other's verdicts. *)

type t

val filename : string
(** ["legality.cache"]. *)

val record_bytes : int
(** 22 — the fixed record size, exposed so tests can truncate at every
    byte boundary of the last record. *)

val open_dir : ?max_bytes:int -> string -> t
(** Open (creating directory and file as needed) the cache under this
    directory, load all valid records, quarantine corrupt spans,
    deduplicate, and truncate any torn tail.  When [max_bytes] is given,
    every append that pushes the file past it triggers a rotation:
    oldest-first eviction down to the newest entries that fit, then a
    compaction — the file never exceeds [max_bytes] for longer than one
    append.
    @raise Failure if the file exists but its header is not
    ["shackle-cache/1\n"] — a foreign file is never silently clobbered.
    @raise Invalid_argument if [max_bytes] cannot hold even one record. *)

val close : t -> unit

val file : t -> string
(** Path of the underlying cache file. *)

val quarantine_file : t -> string
(** Path of the quarantine sidecar ([file ^ ".quarantine"]); only exists
    once corruption has been seen. *)

val find : t -> string -> bool option
(** Look up a canonical-system key (digested internally); counts a hit or
    a miss. *)

val add : t -> string -> bool -> unit
(** Append the verdict for a key (no-op if the digest is already present)
    and fsync; may rotate (see {!open_dir}). *)

val compact : t -> int * int
(** Rewrite the file as header + one record per live entry in stable
    first-seen order (write-temp, fsync, rename), and return
    [(bytes_before, bytes_after)].  Deterministic and idempotent:
    compacting a compacted file rewrites the identical bytes.  Safe while
    serving — lookups and appends block only for the rewrite. *)

val backing : t -> Polyhedra.Omega.backing
(** The {!find}/{!add} pair packaged as a solver-context backing store. *)

val entries : t -> int
(** Distinct digests currently loaded. *)

val bytes_on_disk : t -> int

val hits : t -> int

val misses : t -> int

val appended : t -> int
(** Records written by this handle. *)

val dropped_bytes : t -> int
(** Bytes discarded at {!open_dir}: torn-tail bytes plus quarantined
    bytes (0 on a clean file). *)

val quarantined_bytes : t -> int
(** The subset of {!dropped_bytes} preserved in the sidecar. *)

val quarantined_spans : t -> int
(** Corrupt spans moved to the sidecar at {!open_dir}. *)

val compactions : t -> int
(** Compactions (explicit or rotation-triggered) on this handle. *)

val add_torn : t -> string -> bool -> keep:int -> unit
(** Crash-injection hook for recovery tests: append only the first [keep]
    bytes of the record (0 <= keep < {!record_bytes}), fsync, and mark the
    handle closed as a kill -9 mid-write would.  The next {!open_dir} must
    drop exactly the torn tail. *)
