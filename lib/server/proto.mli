(** Typed shackled/1 requests and replies, serialized as JSON payloads
    inside {!Wire} frames.

    Requests name kernels and specs symbolically (the registry the daemon
    was created with — see {!Daemon.resolve}), which is the production
    shape: most clients ask about the same few thousand canonical
    (kernel, spec, size) systems, so symbolic requests are exactly what
    the in-flight batcher and the disk cache can collapse. *)

type request =
  | Parse of { text : string }
      (** parse program text; replies with the pretty-printed fixpoint and
          the dependence count *)
  | Probe of { kernel : string; spec : string; size : int; budget_ms : int option }
      (** three-valued Theorem-1 legality: legal / illegal / unknown *)
  | Legal of { kernel : string; spec : string; size : int; budget_ms : int option }
      (** boolean legality (unknown collapses to illegal, conservatively) *)
  | Tune of { kernel : string; size : int; n : int; budget_ms : int option }
      (** single-factor autotune at block size [size], problem size [n];
          replies with the winning label and its simulated cycles *)
  | Sim of {
      kernel : string;
      spec : string option;  (** [None] simulates the original program *)
      size : int;
      n : int;
      machine : string;
      quality : string;
      budget_ms : int option;
    }
  | Stats  (** server statistics snapshot (see {!Server.stats_json}) *)
  | Shutdown

(** [budget_ms] on the solver-driven requests is the client's deadline
    budget, counted from the daemon's receipt of the frame.  A request
    whose budget expires while still queued is answered
    [deadline_exceeded] without touching a worker; one that expires
    mid-computation has its solver work cancelled at the deadline and is
    answered [deadline_exceeded].  [None] (or an absent field — the
    shackled/1 wire shape) means no client deadline.  The field is part
    of {!request_key}, so only requests with equal budgets batch. *)

type reply =
  | R_parsed of { pretty : string; deps : int }
  | R_verdict of { verdict : string }
      (** "legal" | "illegal" | "unknown:REASON" (probe);
          "legal" | "illegal" (legal) *)
  | R_tuned of { label : string; cycles : float; candidates : int }
  | R_sim of { cycles : float; mflops : float; flops : int; accesses : int }
  | R_stats of Observe.Json.t
  | R_bye

type error = {
  e_code : string;
  e_message : string;
  e_retry_after_ms : int option;
      (** Set only on [overloaded]: how long the client should wait before
          retrying.  Serialized as [retry_after_ms] and omitted when
          [None], so every pre-existing error payload is unchanged. *)
}
(** Structured error reply.  Codes: [bad_magic], [bad_opcode],
    [bad_payload], [bad_request], [oversized], [unknown_kernel],
    [unknown_spec], [unknown_machine], [failed], [shutting_down],
    [overloaded] (request shed by admission control — retryable, carries
    [retry_after_ms]), [deadline_exceeded] (the request's [budget_ms]
    expired before a result was produced — retryable with a larger
    budget).  Requests are idempotent under {!request_key}, so retrying
    either retryable code is always safe. *)

val opcode_of_request : request -> Wire.opcode

val request_to_payload : request -> string
val request_of_payload : op:Wire.opcode -> string -> (request, error) result

val reply_to_payload : reply -> string
val reply_of_payload : op:Wire.opcode -> string -> (reply, string) result
(** [op] must be [Reply_ok]. *)

val error_to_payload : error -> string
val error_of_payload : string -> (error, string) result

val request_key : request -> string
(** The canonical identity used for in-flight batching: opcode name plus
    the deterministic JSON payload.  Two requests with equal keys receive
    byte-identical reply payloads. *)

val error : string -> string -> error
(** [error code message] with no retry hint. *)

val error_retry : string -> string -> retry_after_ms:int -> error
(** [error_retry code message ~retry_after_ms] — an error carrying a
    retry-after hint (the [overloaded] shape). *)

val budget_ms_of : request -> int option
(** The client deadline budget of a request, [None] for the
    budget-less ops ([Parse], [Stats], [Shutdown]) and for requests
    sent without one. *)
