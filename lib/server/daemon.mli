(** The shackled daemon core: a {!Pipeline} wrapped behind the shackled/1
    wire protocol on a Unix domain socket, hardened to degrade gracefully
    under overload instead of falling over.

    One server holds ONE solver context ([Omega.Ctx.create ~cache:true]),
    optionally backed by a persistent {!Diskcache}, and a lazily-built
    {!Pipeline.t} per registered kernel.  Every request's legality and
    codegen queries charge to that shared context, so the memo + disk
    cache warm monotonically across clients, connections and restarts.

    Identical in-flight requests (equal {!Proto.request_key}) are
    batched: the first arrival computes, later arrivals block on the same
    entry and receive the byte-identical reply — one solve, N replies.

    Overload discipline (see {!handle}): requests carry per-op weights
    (tune ≫ legal); total admitted weight is capped at
    [cfg_queue_high], past which requests are shed with a structured
    [overloaded] error carrying a deterministic retry-after hint.  A
    request's optional [budget_ms] becomes an absolute deadline at
    receipt: expired requests are answered [deadline_exceeded] without
    compute, and in-flight solver work is cut off at the deadline via
    {!Polyhedra.Omega.with_deadline}.

    The request layer ({!handle}, {!Session}) is transport-free and runs
    in-process (the wire fuzzer drives it directly); {!serve} adds the
    socket, a select event loop, a bounded job queue and a pool of worker
    domains, with per-connection frame-assembly / idle / write deadlines
    so a slowloris writer or stalled reader is evicted without blocking
    the accept loop or other sessions. *)

type resolve = {
  rv_kernels : unit -> (string * Loopir.Ast.program) list;
      (** the kernel registry; names are matched exactly *)
  rv_spec :
    kernel:string -> spec:string -> size:int -> Shackle.Spec.t option;
      (** symbolic spec lookup, e.g. ["ij"] at block size 32 for "matmul" *)
  rv_params : kernel:string -> n:int -> (string * int) list;
  rv_init : kernel:string -> n:int -> string -> int array -> float;
      (** deterministic array initializer for sim/tune requests *)
}
(** Injected name->object resolution.  The server library deliberately
    depends on neither [kernels] nor [experiments]; binaries supply the
    registry (see [bin/shackled.ml]), tests supply purpose-built ones. *)

type config = {
  cfg_domains : int;  (** worker domains computing requests (>= 1) *)
  cfg_fuel : int option;  (** per-query solver fuel *)
  cfg_timeout_ms : int option;  (** per-query solver deadline *)
  cfg_hold : (string -> unit) option;
      (** test hook: an in-flight batch leader calls this with its request
          key after registering and before computing — a test can park the
          leader until followers have attached, proving collapse
          deterministically.  [None] in production. *)
  cfg_queue_high : int;
      (** admission high-water mark: total weight of admitted, unfinished
          requests beyond which new work is shed with [overloaded].  An
          idle daemon always admits, however heavy the request. *)
  cfg_idle_timeout_ms : int option;
      (** evict a connection with no bytes received, no queued output and
          no outstanding jobs for this long ([None] = never) *)
  cfg_frame_timeout_ms : int option;
      (** evict a connection that started a frame and did not finish it
          within this long — the slowloris defense ([None] = never) *)
  cfg_write_timeout_ms : int;
      (** evict a connection whose pending output could not be written
          for this long — the stalled-reader defense *)
}

val default_config : config
(** 1 domain, no solver budgets, no hold hook; queue high-water 64,
    no idle timeout, 10 s frame timeout, 5 s write timeout. *)

type t

val create : ?cache:Diskcache.t -> ?config:config -> resolve -> t
(** The solver context is created with the memo table on and, when
    [cache] is given, the disk cache as its backing store. *)

val solver : t -> Polyhedra.Omega.Ctx.t
val stats : t -> Stats.t
val cache : t -> Diskcache.t option

val shutdown : t -> unit
(** Flag the server as shutting down: subsequent requests are refused
    with [shutting_down] and {!serve}'s event loop exits after a bounded
    drain. *)

val shutting_down : t -> bool

val weight : Proto.request -> int
(** The admission cost class of a request: [Tune] 8, [Sim] 2,
    [Parse]/[Probe]/[Legal] 1, [Stats]/[Shutdown] 0 (never shed). *)

val admitted_weight : t -> int
(** Total weight of currently admitted, unfinished requests — what
    admission compares against [cfg_queue_high]. *)

val handle : t -> Proto.request -> (Proto.reply, Proto.error) result
(** Decode-free entry point: admit (or shed with [overloaded] + a
    retry-after hint), start the deadline clock from the request's
    [budget_ms], batch, compute under the ambient solver deadline,
    account.  Never raises — handler exceptions become [failed] errors.
    A result that lands after the deadline is reported as
    [deadline_exceeded]. *)

val stats_json : t -> Observe.Json.t
(** The [stats] RPC body: schema ["shackled-stats/2"], request accounting
    ({!Stats.to_json}, including the per-error-code breakdown and
    shed/evicted counters), the shared solver's counters
    ([Metrics.solver_to_json] + derived [solves]), and the disk cache's
    counters when one is attached. *)

(** Per-connection byte-level protocol state machine: feed raw bytes in,
    get reply bytes out.  Used by the socket event loop and, directly, by
    the wire fuzzer (no socket needed). *)
module Session : sig
  type server = t

  type item =
    | I_reply of string
        (** a pre-encoded [Reply_err] frame (framing / decode trouble) *)
    | I_request of { id : int; req : Proto.request }
        (** a well-formed request awaiting computation *)

  type t

  val create : server -> t

  val append : t -> string -> unit
  (** Add raw bytes to the connection buffer (no processing). *)

  val poll : t -> item list * [ `Keep | `Close ]
  (** Consume every complete frame in the buffer, in arrival order.
      Framing violations (bad magic, oversized length) poison the
      stream: one error item, [`Close], buffer dropped.  Frame-level
      problems (unknown opcode, malformed payload) yield an error item
      and the stream continues.  Never raises.  This is the
      decode-without-compute entry the socket event loop uses to route
      requests through admission control and the job queue. *)

  val buffered : t -> int
  (** Bytes currently buffered — nonzero means mid-frame, which is what
      the frame-assembly deadline watches. *)

  val feed : t -> string -> string * [ `Keep | `Close ]
  (** [append] + [poll] + compute inline: process every complete frame
      and return (reply bytes, verdict) — the synchronous shape used by
      in-process callers (tests, the wire fuzzer).  Framing violations
      close; a [Shutdown]'s bye reply closes; everything else keeps the
      connection.  Never raises. *)
end

val serve : t -> socket:string -> unit
(** Bind [socket] and serve until {!shutdown} (typically via a [Shutdown]
    request).  One event-loop domain owns every fd (accept, frame
    assembly, reply writing, connection deadlines); requests past
    admission are queued and computed by [config.cfg_domains] worker
    domains, so a slow or hostile connection never blocks the loop —
    it is evicted at its configured deadline instead.  [Stats] and
    [Shutdown] are answered inline, never queued.  Removes the socket
    file on exit.  Blocks the calling domain. *)
