(** The shackled daemon core: a {!Pipeline} wrapped behind the shackled/1
    wire protocol on a Unix domain socket.

    One server holds ONE solver context ([Omega.Ctx.create ~cache:true]),
    optionally backed by a persistent {!Diskcache}, and a lazily-built
    {!Pipeline.t} per registered kernel.  Every request's legality and
    codegen queries charge to that shared context, so the memo + disk
    cache warm monotonically across clients, connections and restarts.

    Identical in-flight requests (equal {!Proto.request_key}) are
    batched: the first arrival computes, later arrivals block on the same
    entry and receive the byte-identical reply — one solve, N replies.

    The request layer ({!handle}, {!Session}) is transport-free and runs
    in-process (the wire fuzzer drives it directly); {!serve} adds the
    socket, an accept loop and a pool of worker domains. *)

type resolve = {
  rv_kernels : unit -> (string * Loopir.Ast.program) list;
      (** the kernel registry; names are matched exactly *)
  rv_spec :
    kernel:string -> spec:string -> size:int -> Shackle.Spec.t option;
      (** symbolic spec lookup, e.g. ["ij"] at block size 32 for "matmul" *)
  rv_params : kernel:string -> n:int -> (string * int) list;
  rv_init : kernel:string -> n:int -> string -> int array -> float;
      (** deterministic array initializer for sim/tune requests *)
}
(** Injected name->object resolution.  The server library deliberately
    depends on neither [kernels] nor [experiments]; binaries supply the
    registry (see [bin/shackled.ml]), tests supply purpose-built ones. *)

type config = {
  cfg_domains : int;  (** worker domains serving connections (>= 1) *)
  cfg_fuel : int option;  (** per-query solver fuel *)
  cfg_timeout_ms : int option;  (** per-query solver deadline *)
  cfg_hold : (string -> unit) option;
      (** test hook: an in-flight batch leader calls this with its request
          key after registering and before computing — a test can park the
          leader until followers have attached, proving collapse
          deterministically.  [None] in production. *)
}

val default_config : config
(** 1 domain, no budgets, no hold hook. *)

type t

val create : ?cache:Diskcache.t -> ?config:config -> resolve -> t
(** The solver context is created with the memo table on and, when
    [cache] is given, the disk cache as its backing store. *)

val solver : t -> Polyhedra.Omega.Ctx.t
val stats : t -> Stats.t
val cache : t -> Diskcache.t option

val shutdown : t -> unit
(** Flag the server as shutting down: subsequent requests are refused
    with [shutting_down] and {!serve}'s accept loop exits. *)

val shutting_down : t -> bool

val handle : t -> Proto.request -> (Proto.reply, Proto.error) result
(** Decode-free entry point: resolve, batch, compute, account.  Never
    raises — handler exceptions become [failed] errors. *)

val stats_json : t -> Observe.Json.t
(** The [stats] RPC body: schema ["shackled-stats/1"], request accounting
    ({!Stats.to_json}), the shared solver's counters
    ([Metrics.solver_to_json] + derived [solves]), and the disk cache's
    counters when one is attached. *)

(** Per-connection byte-level protocol state machine: feed raw bytes in,
    get reply bytes out.  Used by the socket workers and, directly, by
    the wire fuzzer (no socket needed). *)
module Session : sig
  type server = t

  type t

  val create : server -> t

  val feed : t -> string -> string * [ `Keep | `Close ]
  (** Append bytes to the connection buffer, process every complete
      frame, and return (reply bytes, verdict).  Framing violations
      (bad magic, oversized length) poison the stream: one [Reply_err]
      frame, then [`Close].  Frame-level problems (unknown opcode,
      malformed payload, failed request) get a [Reply_err] carrying the
      request id and the connection stays open.  Never raises. *)
end

val serve : t -> socket:string -> unit
(** Bind [socket], accept connections, and serve them on
    [config.cfg_domains] worker domains until {!shutdown} (typically via
    a [Shutdown] request).  Removes the socket file on exit.  Blocks the
    calling domain. *)
