(** Daemon-side request accounting: per-opcode counts and latency
    percentiles, protocol-error and batch-collapse counters.

    Latencies keep up to a fixed number of samples per opcode (plus exact
    count/sum/max), so tail estimates stay O(1) memory under sustained
    load.  All updates are mutex-protected — worker domains share one
    collector. *)

type t

val create : unit -> t

val record : t -> op:string -> seconds:float -> unit

val incr_errors : t -> unit
(** Structured error replies sent (protocol or request failures). *)

val incr_collapses : t -> unit
(** Requests answered by attaching to an identical in-flight computation
    (one solve, N replies). *)

val incr_connections : t -> unit

val requests : t -> int
val errors : t -> int
val collapses : t -> int
val connections : t -> int

val to_json : t -> Observe.Json.t
(** Per-op objects: [count], [p50_ms], [p90_ms], [p99_ms], [max_ms],
    [mean_ms]; plus top-level totals. *)
