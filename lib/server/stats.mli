(** Daemon-side request accounting: per-opcode counts and latency
    percentiles, protocol-error and batch-collapse counters, a per-error-code
    breakdown, and the overload counters (shed, evicted).

    Latencies keep up to a fixed number of samples per opcode (plus exact
    count/sum/max), so tail estimates stay O(1) memory under sustained
    load.  All updates are mutex-protected — worker domains share one
    collector. *)

type t

val create : unit -> t

val record : t -> op:string -> seconds:float -> unit

val incr_error : t -> code:string -> unit
(** Count a structured error reply under its code.  An [overloaded] code
    also bumps the shed counter. *)

val incr_errors : t -> unit
(** Legacy alias: [incr_error ~code:"failed"]. *)

val incr_collapses : t -> unit
(** Requests answered by attaching to an identical in-flight computation
    (one solve, N replies). *)

val incr_connections : t -> unit

val incr_evicted : t -> unit
(** Connections forcibly closed for violating a read/write deadline or
    idle timeout. *)

val requests : t -> int
val errors : t -> int
val collapses : t -> int
val connections : t -> int
val shed : t -> int
val evicted : t -> int

val errors_by_code : t -> (string * int) list
(** Sorted (code, count) pairs for every error code seen. *)

val to_json : t -> Observe.Json.t
(** Per-op objects: [count], [p50_ms], [p90_ms], [p99_ms], [p999_ms],
    [max_ms], [mean_ms]; plus top-level totals, [error_codes],
    [shed] and [evicted]. *)
