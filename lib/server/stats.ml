module Json = Observe.Json

(* Bounded per-op latency reservoir: the first [capacity] samples are kept
   exactly (a smoke run or CI session fits entirely), later samples
   overwrite a deterministic rotating slot.  Count, sum and max stay
   exact regardless. *)

let capacity = 4096

type series = {
  mutable count : int;
  mutable sum : float;
  mutable max_s : float;
  samples : float array;
}

type t = {
  per_op : (string, series) Hashtbl.t;
  per_error : (string, int ref) Hashtbl.t;
  mutable n_errors : int;
  mutable n_collapses : int;
  mutable n_connections : int;
  mutable n_shed : int;
  mutable n_evicted : int;
  lock : Mutex.t;
}

let create () =
  { per_op = Hashtbl.create 8;
    per_error = Hashtbl.create 8;
    n_errors = 0;
    n_collapses = 0;
    n_connections = 0;
    n_shed = 0;
    n_evicted = 0;
    lock = Mutex.create () }

let record t ~op ~seconds =
  Mutex.protect t.lock (fun () ->
      let s =
        match Hashtbl.find_opt t.per_op op with
        | Some s -> s
        | None ->
          let s =
            { count = 0; sum = 0.0; max_s = 0.0;
              samples = Array.make capacity 0.0 }
          in
          Hashtbl.add t.per_op op s;
          s
      in
      s.samples.(s.count mod capacity) <- seconds;
      s.count <- s.count + 1;
      s.sum <- s.sum +. seconds;
      if seconds > s.max_s then s.max_s <- seconds)

let incr_error t ~code =
  Mutex.protect t.lock (fun () ->
      t.n_errors <- t.n_errors + 1;
      (match Hashtbl.find_opt t.per_error code with
      | Some r -> incr r
      | None -> Hashtbl.add t.per_error code (ref 1));
      if code = "overloaded" then t.n_shed <- t.n_shed + 1)

let incr_errors t = incr_error t ~code:"failed"

let incr_collapses t =
  Mutex.protect t.lock (fun () -> t.n_collapses <- t.n_collapses + 1)

let incr_connections t =
  Mutex.protect t.lock (fun () -> t.n_connections <- t.n_connections + 1)

let incr_evicted t =
  Mutex.protect t.lock (fun () -> t.n_evicted <- t.n_evicted + 1)

let requests t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun _ s acc -> acc + s.count) t.per_op 0)

let errors t = Mutex.protect t.lock (fun () -> t.n_errors)
let collapses t = Mutex.protect t.lock (fun () -> t.n_collapses)
let connections t = Mutex.protect t.lock (fun () -> t.n_connections)
let shed t = Mutex.protect t.lock (fun () -> t.n_shed)
let evicted t = Mutex.protect t.lock (fun () -> t.n_evicted)

let errors_by_code t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun code r acc -> (code, !r) :: acc) t.per_error []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1 |> max 0))

let ms s = Float.round (s *. 1e6) /. 1e3 (* millisecond value, µs precision *)

let series_json s =
  let kept = min s.count capacity in
  let sorted = Array.sub s.samples 0 kept in
  Array.sort compare sorted;
  Json.Obj
    [ ("count", Json.Int s.count);
      ("p50_ms", Json.Float (ms (percentile sorted 0.50)));
      ("p90_ms", Json.Float (ms (percentile sorted 0.90)));
      ("p99_ms", Json.Float (ms (percentile sorted 0.99)));
      ("p999_ms", Json.Float (ms (percentile sorted 0.999)));
      ("max_ms", Json.Float (ms s.max_s));
      ( "mean_ms",
        Json.Float
          (ms (if s.count = 0 then 0.0 else s.sum /. float_of_int s.count)) ) ]

let to_json t =
  Mutex.protect t.lock (fun () ->
      let ops =
        Hashtbl.fold (fun op s acc -> (op, s) :: acc) t.per_op []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let codes =
        Hashtbl.fold (fun code r acc -> (code, !r) :: acc) t.per_error []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      Json.Obj
        [ ( "requests",
            Json.Int (List.fold_left (fun acc (_, s) -> acc + s.count) 0 ops) );
          ("errors", Json.Int t.n_errors);
          ( "error_codes",
            Json.Obj (List.map (fun (c, n) -> (c, Json.Int n)) codes) );
          ("batch_collapses", Json.Int t.n_collapses);
          ("connections", Json.Int t.n_connections);
          ("shed", Json.Int t.n_shed);
          ("evicted", Json.Int t.n_evicted);
          ("ops", Json.Obj (List.map (fun (op, s) -> (op, series_json s)) ops))
        ])
