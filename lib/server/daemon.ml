(* The daemon core.  Three layers, each testable without the one below:
   [handle] (typed request -> typed reply, with in-flight batching),
   [Session] (bytes -> bytes, the per-connection protocol state machine),
   and [serve] (Unix socket + accept loop + worker domains). *)

module Json = Observe.Json
module Metrics = Observe.Metrics
module Model = Machine.Model
module Omega = Polyhedra.Omega

type resolve = {
  rv_kernels : unit -> (string * Loopir.Ast.program) list;
  rv_spec :
    kernel:string -> spec:string -> size:int -> Shackle.Spec.t option;
  rv_params : kernel:string -> n:int -> (string * int) list;
  rv_init : kernel:string -> n:int -> string -> int array -> float;
}

type config = {
  cfg_domains : int;
  cfg_fuel : int option;
  cfg_timeout_ms : int option;
  cfg_hold : (string -> unit) option;
}

let default_config =
  { cfg_domains = 1; cfg_fuel = None; cfg_timeout_ms = None; cfg_hold = None }

(* An in-flight batch entry: the leader computes and publishes, followers
   wait on the condition until [result] is set. *)
type inflight = { mutable result : (Proto.reply, Proto.error) result option }

type t = {
  resolve : resolve;
  config : config;
  solver_ctx : Omega.Ctx.t;
  dcache : Diskcache.t option;
  pipelines : (string, Pipeline.t) Hashtbl.t;
  pipelines_lock : Mutex.t;
  inflight : (string, inflight) Hashtbl.t;
  inflight_lock : Mutex.t;
  inflight_cond : Condition.t;
  st : Stats.t;
  stop : bool Atomic.t;
}

let create ?cache ?(config = default_config) resolve =
  let solver_ctx =
    Omega.Ctx.create ~cache:true
      ?backing:(Option.map Diskcache.backing cache)
      ?fuel:config.cfg_fuel ?timeout_ms:config.cfg_timeout_ms ()
  in
  { resolve;
    config;
    solver_ctx;
    dcache = cache;
    pipelines = Hashtbl.create 16;
    pipelines_lock = Mutex.create ();
    inflight = Hashtbl.create 16;
    inflight_lock = Mutex.create ();
    inflight_cond = Condition.create ();
    st = Stats.create ();
    stop = Atomic.make false }

let solver t = t.solver_ctx
let stats t = t.st
let cache t = t.dcache
let shutdown t = Atomic.set t.stop true
let shutting_down t = Atomic.get t.stop

(* ------------------------------------------------------------------ *)
(* Request computation                                                 *)
(* ------------------------------------------------------------------ *)

let err code msg = Error (Proto.error code msg)

(* All pipelines share the server's solver context, so legality systems
   seen through any kernel land in one memo (and one disk cache). *)
let pipeline_for t kernel =
  Mutex.protect t.pipelines_lock (fun () ->
      match Hashtbl.find_opt t.pipelines kernel with
      | Some p -> Ok p
      | None -> (
        match List.assoc_opt kernel (t.resolve.rv_kernels ()) with
        | None -> err "unknown_kernel" (Printf.sprintf "no kernel %S" kernel)
        | Some prog ->
          let p = Pipeline.create ~solver:t.solver_ctx prog in
          Hashtbl.add t.pipelines kernel p;
          Ok p))

let spec_for t ~kernel ~spec ~size =
  match t.resolve.rv_spec ~kernel ~spec ~size with
  | Some s -> Ok s
  | None ->
    err "unknown_spec"
      (Printf.sprintf "no spec %S for kernel %S at size %d" spec kernel size)

let machine_of_name name =
  if String.equal name Model.sp2_like.Model.m_name then Ok Model.sp2_like
  else if String.equal name Model.two_level.Model.m_name then
    Ok Model.two_level
  else err "unknown_machine" (Printf.sprintf "no machine %S" name)

let quality_of_name name =
  if String.equal name Model.untuned.Model.q_name then Ok Model.untuned
  else if String.equal name Model.tuned.Model.q_name then Ok Model.tuned
  else err "unknown_machine" (Printf.sprintf "no cache quality %S" name)

let ( let* ) = Result.bind

let dc_metrics dc =
  { Metrics.dc_entries = Diskcache.entries dc;
    dc_bytes = Diskcache.bytes_on_disk dc;
    dc_hits = Diskcache.hits dc;
    dc_misses = Diskcache.misses dc;
    dc_appended = Diskcache.appended dc;
    dc_dropped = Diskcache.dropped_bytes dc }

let stats_json t =
  let solver_m = Metrics.solver_of_ctx t.solver_ctx in
  Json.Obj
    [ ("schema", Json.Str "shackled-stats/1");
      ("server", Stats.to_json t.st);
      ("solver", Metrics.solver_to_json solver_m);
      ("solves", Json.Int (Metrics.solver_solves solver_m));
      ( "diskcache",
        match t.dcache with
        | None -> Json.Null
        | Some dc -> Metrics.diskcache_to_json (dc_metrics dc) ) ]

let compute t (req : Proto.request) : (Proto.reply, Proto.error) result =
  match req with
  | Proto.Parse { text } -> (
    match Pipeline.parse ~solver:t.solver_ctx text with
    | Error msg -> err "bad_request" msg
    | Ok p ->
      Ok
        (Proto.R_parsed
           { pretty = Loopir.Ast.program_to_string (Pipeline.program p);
             deps = List.length (Pipeline.deps p) }))
  | Proto.Probe { kernel; spec; size } ->
    let* p = pipeline_for t kernel in
    let* s = spec_for t ~kernel ~spec ~size in
    Ok
      (Proto.R_verdict
         { verdict = Shackle.Verdict.to_string (Pipeline.probe p s) })
  | Proto.Legal { kernel; spec; size } ->
    let* p = pipeline_for t kernel in
    let* s = spec_for t ~kernel ~spec ~size in
    Ok
      (Proto.R_verdict
         { verdict =
             Shackle.Verdict.to_string
               (if Pipeline.is_legal p s then Shackle.Verdict.Legal
                else Shackle.Verdict.Illegal []) })
  | Proto.Tune { kernel; size; n } -> (
    match List.assoc_opt kernel (t.resolve.rv_kernels ()) with
    | None -> err "unknown_kernel" (Printf.sprintf "no kernel %S" kernel)
    | Some prog ->
      let options =
        { Tune.default_options with
          Tune.sizes = [ size ];
          timeout_ms = t.config.cfg_timeout_ms;
          fuel = t.config.cfg_fuel }
      in
      let report =
        Tune.tune ~options
          ~init:(t.resolve.rv_init ~kernel ~n)
          ~kernel
          ~params:(t.resolve.rv_params ~kernel ~n)
          prog
      in
      (match Tune.best report with
      | None -> err "failed" "tune: no legal candidate survived"
      | Some s ->
        Ok
          (Proto.R_tuned
             { label = s.Tune.s_cand.Tune.c_label;
               cycles = s.Tune.s_cycles;
               candidates = report.Tune.rp_counts.Tune.n_enumerated })))
  | Proto.Sim { kernel; spec; size; n; machine; quality } ->
    let* p = pipeline_for t kernel in
    let* spec =
      match spec with
      | None -> Ok None
      | Some name ->
        let* s = spec_for t ~kernel ~spec:name ~size in
        Ok (Some s)
    in
    let* machine = machine_of_name machine in
    let* quality = quality_of_name quality in
    (* Codegen is cached per (kernel, spec) inside the shared pipeline, so
       repeated Sim requests across an N sweep re-run Omega zero times;
       each request only pays the solver-free per-size specialization. *)
    let params = t.resolve.rv_params ~kernel ~n in
    let r =
      Model.simulate ~machine ~quality
        (Pipeline.specialize ?spec p ~params)
        ~params
        ~init:(t.resolve.rv_init ~kernel ~n)
    in
    Ok
      (Proto.R_sim
         { cycles = r.Model.r_cycles;
           mflops = r.Model.r_mflops;
           flops = r.Model.r_flops;
           accesses = r.Model.r_accesses })
  | Proto.Stats -> Ok (Proto.R_stats (stats_json t))
  | Proto.Shutdown ->
    shutdown t;
    Ok Proto.R_bye

let compute_safe t req =
  try compute t req
  with exn -> err "failed" (Printexc.to_string exn)

(* ------------------------------------------------------------------ *)
(* In-flight batching                                                  *)
(* ------------------------------------------------------------------ *)

(* Only idempotent work is batched; Stats is a live snapshot and Shutdown
   has a side effect, so both bypass the table. *)
let batchable = function
  | Proto.Stats | Proto.Shutdown -> false
  | Proto.Parse _ | Proto.Probe _ | Proto.Legal _ | Proto.Tune _
  | Proto.Sim _ -> true

let handle_batched t req =
  let key = Proto.request_key req in
  Mutex.lock t.inflight_lock;
  match Hashtbl.find_opt t.inflight key with
  | Some entry ->
    (* follower: the leader's reply is ours, byte for byte *)
    Stats.incr_collapses t.st;
    let rec wait () =
      match entry.result with
      | Some r -> r
      | None ->
        Condition.wait t.inflight_cond t.inflight_lock;
        wait ()
    in
    let r = wait () in
    Mutex.unlock t.inflight_lock;
    r
  | None ->
    let entry = { result = None } in
    Hashtbl.add t.inflight key entry;
    Mutex.unlock t.inflight_lock;
    (match t.config.cfg_hold with Some hold -> hold key | None -> ());
    let r = compute_safe t req in
    Mutex.lock t.inflight_lock;
    entry.result <- Some r;
    Hashtbl.remove t.inflight key;
    Condition.broadcast t.inflight_cond;
    Mutex.unlock t.inflight_lock;
    r

let handle t req =
  if shutting_down t && req <> Proto.Shutdown then
    err "shutting_down" "server is shutting down"
  else begin
    let op = Wire.opcode_string (Proto.opcode_of_request req) in
    let t0 = Metrics.now_s () in
    let r = if batchable req then handle_batched t req else compute_safe t req in
    Stats.record t.st ~op ~seconds:(Metrics.now_s () -. t0);
    (match r with Error _ -> Stats.incr_errors t.st | Ok _ -> ());
    r
  end

(* ------------------------------------------------------------------ *)
(* Per-connection byte state machine                                   *)
(* ------------------------------------------------------------------ *)

module Session = struct
  type server = t

  type t = { srv : server; mutable buf : string }

  let create srv = { srv; buf = "" }

  let oversized msg =
    String.length msg >= 14 && String.equal (String.sub msg 0 14) "payload length"

  let error_frame ~id e =
    Wire.encode ~op:Wire.Reply_err ~id ~payload:(Proto.error_to_payload e)

  let handle_raw s out (raw : Wire.raw) =
    match Wire.opcode_of_byte raw.Wire.r_op with
    | None | Some (Wire.Reply_ok | Wire.Reply_err) ->
      (* framing intact: answer and keep the connection *)
      Stats.incr_errors s.srv.st;
      Buffer.add_string out
        (error_frame ~id:raw.Wire.r_id
           (Proto.error "bad_opcode"
              (Printf.sprintf "opcode 0x%02x is not a request" raw.Wire.r_op)));
      `Keep
    | Some op -> (
      match Proto.request_of_payload ~op raw.Wire.r_payload with
      | Error e ->
        Stats.incr_errors s.srv.st;
        Buffer.add_string out (error_frame ~id:raw.Wire.r_id e);
        `Keep
      | Ok req -> (
        match handle s.srv req with
        | Error e ->
          Buffer.add_string out (error_frame ~id:raw.Wire.r_id e);
          `Keep
        | Ok reply ->
          Buffer.add_string out
            (Wire.encode ~op:Wire.Reply_ok ~id:raw.Wire.r_id
               ~payload:(Proto.reply_to_payload reply));
          if reply = Proto.R_bye then `Close else `Keep))

  let feed s bytes =
    s.buf <- s.buf ^ bytes;
    let out = Buffer.create 256 in
    let verdict = ref `Keep in
    let continue = ref true in
    while !continue do
      match Wire.decode s.buf with
      | Wire.Need_more _ -> continue := false
      | Wire.Corrupt msg ->
        (* framing lost: one structured error, then hang up *)
        Stats.incr_errors s.srv.st;
        let code = if oversized msg then "oversized" else "bad_magic" in
        Buffer.add_string out
          (error_frame ~id:0 (Proto.error code msg));
        s.buf <- "";
        verdict := `Close;
        continue := false
      | Wire.Got (raw, consumed) -> (
        s.buf <- String.sub s.buf consumed (String.length s.buf - consumed);
        match handle_raw s out raw with
        | `Keep -> ()
        | `Close ->
          verdict := `Close;
          continue := false)
    done;
    (Buffer.contents out, !verdict)
end

(* ------------------------------------------------------------------ *)
(* Socket serving                                                      *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(* Serve one connection to completion.  The read loop polls so a clean
   shutdown (flag set by another connection's Shutdown) does not leave
   workers parked in [read] forever. *)
let serve_conn t conn =
  Stats.incr_connections t.st;
  let session = Session.create t in
  let buf = Bytes.create 65536 in
  let rec loop () =
    match Unix.select [ conn ] [] [] 0.2 with
    | [], _, _ -> if shutting_down t then () else loop ()
    | _ ->
      let n = Unix.read conn buf 0 (Bytes.length buf) in
      if n = 0 then ()
      else begin
        let out, verdict = Session.feed session (Bytes.sub_string buf 0 n) in
        if String.length out > 0 then write_all conn out;
        match verdict with `Close -> () | `Keep -> loop ()
      end
  in
  (try loop () with _ -> ());
  try Unix.close conn with Unix.Unix_error _ -> ()

let serve t ~socket =
  (* a client hanging up mid-write must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.listen fd 64;
  let pending : Unix.file_descr Queue.t = Queue.create () in
  let qlock = Mutex.create () in
  let qcond = Condition.create () in
  let next_conn () =
    Mutex.lock qlock;
    let rec wait () =
      if not (Queue.is_empty pending) then Some (Queue.pop pending)
      else if shutting_down t then None
      else begin
        Condition.wait qcond qlock;
        wait ()
      end
    in
    let r = wait () in
    Mutex.unlock qlock;
    r
  in
  let rec worker () =
    match next_conn () with
    | None -> ()
    | Some conn ->
      serve_conn t conn;
      worker ()
  in
  let workers =
    List.init (max 1 t.config.cfg_domains) (fun _ -> Domain.spawn worker)
  in
  let rec accept_loop () =
    if not (shutting_down t) then begin
      (match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept fd with
        | conn, _ ->
          Mutex.lock qlock;
          Queue.push conn pending;
          Condition.signal qcond;
          Mutex.unlock qlock
        | exception Unix.Unix_error _ -> ()));
      accept_loop ()
    end
  in
  accept_loop ();
  Mutex.lock qlock;
  Condition.broadcast qcond;
  Mutex.unlock qlock;
  List.iter Domain.join workers;
  (* refuse anything still queued *)
  Queue.iter (fun c -> try Unix.close c with Unix.Unix_error _ -> ()) pending;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  try Unix.unlink socket with Unix.Unix_error _ -> ()
