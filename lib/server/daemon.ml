(* The daemon core.  Three layers, each testable without the one below:
   [handle] (typed request -> typed reply, with admission control,
   deadline propagation and in-flight batching), [Session] (bytes ->
   bytes, the per-connection protocol state machine), and [serve] (Unix
   socket + a select event loop + worker domains pulling from a bounded
   job queue).

   Overload discipline: every solver-driven request carries a weight
   (tune >> legal); the total admitted weight is capped at
   [cfg_queue_high], past which requests are shed with a structured
   [overloaded] error carrying a retry-after hint — the daemon degrades
   by answering fast instead of queueing unboundedly.  A request's
   optional [budget_ms] becomes an absolute deadline at receipt:
   expired-in-queue requests are answered [deadline_exceeded] without
   compute, and in-flight solver work is cut off through the ambient
   domain-local deadline ({!Polyhedra.Omega.with_deadline}). *)

module Json = Observe.Json
module Metrics = Observe.Metrics
module Model = Machine.Model
module Omega = Polyhedra.Omega

type resolve = {
  rv_kernels : unit -> (string * Loopir.Ast.program) list;
  rv_spec :
    kernel:string -> spec:string -> size:int -> Shackle.Spec.t option;
  rv_params : kernel:string -> n:int -> (string * int) list;
  rv_init : kernel:string -> n:int -> string -> int array -> float;
}

type config = {
  cfg_domains : int;
  cfg_fuel : int option;
  cfg_timeout_ms : int option;
  cfg_hold : (string -> unit) option;
  cfg_queue_high : int;
  cfg_idle_timeout_ms : int option;
  cfg_frame_timeout_ms : int option;
  cfg_write_timeout_ms : int;
}

let default_config =
  { cfg_domains = 1;
    cfg_fuel = None;
    cfg_timeout_ms = None;
    cfg_hold = None;
    cfg_queue_high = 64;
    cfg_idle_timeout_ms = None;
    cfg_frame_timeout_ms = Some 10_000;
    cfg_write_timeout_ms = 5_000 }

(* An in-flight batch entry: the leader computes and publishes, followers
   wait on the condition until [result] is set. *)
type inflight = { mutable result : (Proto.reply, Proto.error) result option }

type t = {
  resolve : resolve;
  config : config;
  solver_ctx : Omega.Ctx.t;
  dcache : Diskcache.t option;
  pipelines : (string, Pipeline.t) Hashtbl.t;
  pipelines_lock : Mutex.t;
  inflight : (string, inflight) Hashtbl.t;
  inflight_lock : Mutex.t;
  inflight_cond : Condition.t;
  admit_lock : Mutex.t;
  mutable admitted : int; (* total weight of admitted, unfinished requests *)
  st : Stats.t;
  stop : bool Atomic.t;
}

let create ?cache ?(config = default_config) resolve =
  let solver_ctx =
    Omega.Ctx.create ~cache:true
      ?backing:(Option.map Diskcache.backing cache)
      ?fuel:config.cfg_fuel ?timeout_ms:config.cfg_timeout_ms ()
  in
  { resolve;
    config;
    solver_ctx;
    dcache = cache;
    pipelines = Hashtbl.create 16;
    pipelines_lock = Mutex.create ();
    inflight = Hashtbl.create 16;
    inflight_lock = Mutex.create ();
    inflight_cond = Condition.create ();
    admit_lock = Mutex.create ();
    admitted = 0;
    st = Stats.create ();
    stop = Atomic.make false }

let solver t = t.solver_ctx
let stats t = t.st
let cache t = t.dcache
let shutdown t = Atomic.set t.stop true
let shutting_down t = Atomic.get t.stop

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

(* Cost classes, in units of "one legality probe": a tune sweep runs the
   legality machinery over a whole candidate lattice and then simulates,
   a sim pays codegen + interpretation, everything else is one solve or
   less.  Stats and Shutdown are free — a health probe must never be
   shed. *)
let weight = function
  | Proto.Tune _ -> 8
  | Proto.Sim _ -> 2
  | Proto.Parse _ | Proto.Probe _ | Proto.Legal _ -> 1
  | Proto.Stats | Proto.Shutdown -> 0

let admitted_weight t = Mutex.protect t.admit_lock (fun () -> t.admitted)

(* The retry-after hint is deterministic in the load at shed time:
   proportional to the admitted weight (a fuller queue needs longer to
   drain), clamped to a sane band.  Fixed trace -> fixed hints. *)
let retry_after_ms_of_load admitted = min 2000 (max 50 (25 * admitted))

let try_admit t req =
  let w = weight req in
  if w = 0 then Ok ()
  else
    Mutex.protect t.admit_lock (fun () ->
        (* an otherwise-idle daemon always admits, however heavy the
           request — a weight above the mark must not be unserviceable *)
        if t.admitted > 0 && t.admitted + w > t.config.cfg_queue_high then
          Error
            (Proto.error_retry "overloaded"
               (Printf.sprintf
                  "admitted weight %d + %d exceeds high-water mark %d"
                  t.admitted w t.config.cfg_queue_high)
               ~retry_after_ms:(retry_after_ms_of_load t.admitted))
        else begin
          t.admitted <- t.admitted + w;
          Ok ()
        end)

let release t req =
  let w = weight req in
  if w > 0 then
    Mutex.protect t.admit_lock (fun () -> t.admitted <- max 0 (t.admitted - w))

(* Admit or account a shed: a shed request still shows up in the per-op
   latency series (it was answered, near-instantly) and in the error-code
   breakdown. *)
let admit_or_shed t req =
  match try_admit t req with
  | Ok () -> Ok ()
  | Error e ->
    Stats.record t.st
      ~op:(Wire.opcode_string (Proto.opcode_of_request req))
      ~seconds:0.0;
    Stats.incr_error t.st ~code:e.Proto.e_code;
    Error e

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)
(* ------------------------------------------------------------------ *)

let deadline_of req =
  match Proto.budget_ms_of req with
  | Some ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0)
  | None -> infinity

let deadline_err =
  Proto.error "deadline_exceeded" "request budget expired before completion"

let remaining_ms deadline =
  if deadline = infinity then None
  else
    Some
      (max 1
         (int_of_float (ceil ((deadline -. Unix.gettimeofday ()) *. 1000.0))))

let clamp_timeout_ms cfg deadline =
  match (cfg, remaining_ms deadline) with
  | None, r -> r
  | Some c, None -> Some c
  | Some c, Some r -> Some (min c r)

(* ------------------------------------------------------------------ *)
(* Request computation                                                 *)
(* ------------------------------------------------------------------ *)

let err code msg = Error (Proto.error code msg)

(* All pipelines share the server's solver context, so legality systems
   seen through any kernel land in one memo (and one disk cache). *)
let pipeline_for t kernel =
  Mutex.protect t.pipelines_lock (fun () ->
      match Hashtbl.find_opt t.pipelines kernel with
      | Some p -> Ok p
      | None -> (
        match List.assoc_opt kernel (t.resolve.rv_kernels ()) with
        | None -> err "unknown_kernel" (Printf.sprintf "no kernel %S" kernel)
        | Some prog ->
          let p = Pipeline.create ~solver:t.solver_ctx prog in
          Hashtbl.add t.pipelines kernel p;
          Ok p))

let spec_for t ~kernel ~spec ~size =
  match t.resolve.rv_spec ~kernel ~spec ~size with
  | Some s -> Ok s
  | None ->
    err "unknown_spec"
      (Printf.sprintf "no spec %S for kernel %S at size %d" spec kernel size)

let machine_of_name name =
  if String.equal name Model.sp2_like.Model.m_name then Ok Model.sp2_like
  else if String.equal name Model.two_level.Model.m_name then
    Ok Model.two_level
  else err "unknown_machine" (Printf.sprintf "no machine %S" name)

let quality_of_name name =
  if String.equal name Model.untuned.Model.q_name then Ok Model.untuned
  else if String.equal name Model.tuned.Model.q_name then Ok Model.tuned
  else err "unknown_machine" (Printf.sprintf "no cache quality %S" name)

let ( let* ) = Result.bind

let dc_metrics dc =
  { Metrics.dc_entries = Diskcache.entries dc;
    dc_bytes = Diskcache.bytes_on_disk dc;
    dc_hits = Diskcache.hits dc;
    dc_misses = Diskcache.misses dc;
    dc_appended = Diskcache.appended dc;
    dc_dropped = Diskcache.dropped_bytes dc }

let stats_json t =
  let solver_m = Metrics.solver_of_ctx t.solver_ctx in
  Json.Obj
    [ ("schema", Json.Str "shackled-stats/2");
      ("server", Stats.to_json t.st);
      ("solver", Metrics.solver_to_json solver_m);
      ("solves", Json.Int (Metrics.solver_solves solver_m));
      ( "diskcache",
        match t.dcache with
        | None -> Json.Null
        | Some dc -> Metrics.diskcache_to_json (dc_metrics dc) ) ]

let compute t ~deadline (req : Proto.request) :
    (Proto.reply, Proto.error) result =
  match req with
  | Proto.Parse { text } -> (
    match Pipeline.parse ~solver:t.solver_ctx text with
    | Error msg -> err "bad_request" msg
    | Ok p ->
      Ok
        (Proto.R_parsed
           { pretty = Loopir.Ast.program_to_string (Pipeline.program p);
             deps = List.length (Pipeline.deps p) }))
  | Proto.Probe { kernel; spec; size; budget_ms = _ } ->
    let* p = pipeline_for t kernel in
    let* s = spec_for t ~kernel ~spec ~size in
    Ok
      (Proto.R_verdict
         { verdict = Shackle.Verdict.to_string (Pipeline.probe p s) })
  | Proto.Legal { kernel; spec; size; budget_ms = _ } ->
    let* p = pipeline_for t kernel in
    let* s = spec_for t ~kernel ~spec ~size in
    Ok
      (Proto.R_verdict
         { verdict =
             Shackle.Verdict.to_string
               (if Pipeline.is_legal p s then Shackle.Verdict.Legal
                else Shackle.Verdict.Illegal []) })
  | Proto.Tune { kernel; size; n; budget_ms = _ } -> (
    match List.assoc_opt kernel (t.resolve.rv_kernels ()) with
    | None -> err "unknown_kernel" (Printf.sprintf "no kernel %S" kernel)
    | Some prog ->
      let options =
        { Tune.default_options with
          Tune.sizes = [ size ];
          (* the sweep's own per-query budget is additionally clamped to
             what remains of the client's deadline *)
          timeout_ms = clamp_timeout_ms t.config.cfg_timeout_ms deadline;
          fuel = t.config.cfg_fuel }
      in
      let report =
        Tune.tune ~options
          ~init:(t.resolve.rv_init ~kernel ~n)
          ~kernel
          ~params:(t.resolve.rv_params ~kernel ~n)
          prog
      in
      (match Tune.best report with
      | None -> err "failed" "tune: no legal candidate survived"
      | Some s ->
        Ok
          (Proto.R_tuned
             { label = s.Tune.s_cand.Tune.c_label;
               cycles = s.Tune.s_cycles;
               candidates = report.Tune.rp_counts.Tune.n_enumerated })))
  | Proto.Sim { kernel; spec; size; n; machine; quality; budget_ms = _ } ->
    let* p = pipeline_for t kernel in
    let* spec =
      match spec with
      | None -> Ok None
      | Some name ->
        let* s = spec_for t ~kernel ~spec:name ~size in
        Ok (Some s)
    in
    let* machine = machine_of_name machine in
    let* quality = quality_of_name quality in
    (* Codegen is cached per (kernel, spec) inside the shared pipeline, so
       repeated Sim requests across an N sweep re-run Omega zero times;
       each request only pays the solver-free per-size specialization. *)
    let params = t.resolve.rv_params ~kernel ~n in
    let r =
      Model.simulate ~machine ~quality
        (Pipeline.specialize ?spec p ~params)
        ~params
        ~init:(t.resolve.rv_init ~kernel ~n)
    in
    Ok
      (Proto.R_sim
         { cycles = r.Model.r_cycles;
           mflops = r.Model.r_mflops;
           flops = r.Model.r_flops;
           accesses = r.Model.r_accesses })
  | Proto.Stats -> Ok (Proto.R_stats (stats_json t))
  | Proto.Shutdown ->
    shutdown t;
    Ok Proto.R_bye

let compute_safe t ~deadline req =
  try compute t ~deadline req
  with exn -> err "failed" (Printexc.to_string exn)

(* ------------------------------------------------------------------ *)
(* In-flight batching                                                  *)
(* ------------------------------------------------------------------ *)

(* Only idempotent work is batched; Stats is a live snapshot and Shutdown
   has a side effect, so both bypass the table. *)
let batchable = function
  | Proto.Stats | Proto.Shutdown -> false
  | Proto.Parse _ | Proto.Probe _ | Proto.Legal _ | Proto.Tune _
  | Proto.Sim _ -> true

let handle_batched t ~deadline req =
  let key = Proto.request_key req in
  Mutex.lock t.inflight_lock;
  match Hashtbl.find_opt t.inflight key with
  | Some entry ->
    (* follower: the leader's reply is ours, byte for byte.  Equal keys
       imply equal budgets, so the leader's deadline tracks ours. *)
    Stats.incr_collapses t.st;
    let rec wait () =
      match entry.result with
      | Some r -> r
      | None ->
        Condition.wait t.inflight_cond t.inflight_lock;
        wait ()
    in
    let r = wait () in
    Mutex.unlock t.inflight_lock;
    r
  | None ->
    let entry = { result = None } in
    Hashtbl.add t.inflight key entry;
    Mutex.unlock t.inflight_lock;
    (match t.config.cfg_hold with Some hold -> hold key | None -> ());
    let r = compute_safe t ~deadline req in
    Mutex.lock t.inflight_lock;
    entry.result <- Some r;
    Hashtbl.remove t.inflight key;
    Condition.broadcast t.inflight_cond;
    Mutex.unlock t.inflight_lock;
    r

(* The post-admission path: deadline pre-check (an expired request costs
   no compute), solver work capped by the ambient deadline, and a
   post-check so a result the caller has already given up on is reported
   as [deadline_exceeded] rather than as a phantom success. *)
let handle_admitted t ~deadline req =
  if shutting_down t && req <> Proto.Shutdown then
    err "shutting_down" "server is shutting down"
  else begin
    let op = Wire.opcode_string (Proto.opcode_of_request req) in
    let t0 = Metrics.now_s () in
    let r =
      if Unix.gettimeofday () > deadline then Error deadline_err
      else
        let r =
          Omega.with_deadline ~until:deadline (fun () ->
              if batchable req then handle_batched t ~deadline req
              else compute_safe t ~deadline req)
        in
        if Unix.gettimeofday () > deadline then Error deadline_err else r
    in
    Stats.record t.st ~op ~seconds:(Metrics.now_s () -. t0);
    (match r with
    | Error e -> Stats.incr_error t.st ~code:e.Proto.e_code
    | Ok _ -> ());
    r
  end

let handle t req =
  let deadline = deadline_of req in
  match admit_or_shed t req with
  | Error e -> Error e
  | Ok () ->
    Fun.protect
      ~finally:(fun () -> release t req)
      (fun () -> handle_admitted t ~deadline req)

(* ------------------------------------------------------------------ *)
(* Per-connection byte state machine                                   *)
(* ------------------------------------------------------------------ *)

module Session = struct
  type server = t

  type item =
    | I_reply of string (* a pre-encoded frame (framing/decode errors) *)
    | I_request of { id : int; req : Proto.request }

  type t = { srv : server; mutable buf : string }

  let create srv = { srv; buf = "" }
  let buffered s = String.length s.buf

  let oversized msg =
    String.length msg >= 14 && String.equal (String.sub msg 0 14) "payload length"

  let error_frame ~id e =
    Wire.encode ~op:Wire.Reply_err ~id ~payload:(Proto.error_to_payload e)

  (* Consume every complete frame in the buffer, producing decode-level
     items in arrival order.  Framing violations (bad magic, oversized
     length) poison the stream: one error item, [`Close], buffer
     dropped.  Frame-level problems (unknown opcode, malformed payload)
     produce an error item and the stream continues. *)
  let poll s =
    let items = ref [] in
    let verdict = ref `Keep in
    let continue = ref true in
    while !continue do
      match Wire.decode s.buf with
      | Wire.Need_more _ -> continue := false
      | Wire.Corrupt msg ->
        let code = if oversized msg then "oversized" else "bad_magic" in
        Stats.incr_error s.srv.st ~code;
        items := I_reply (error_frame ~id:0 (Proto.error code msg)) :: !items;
        s.buf <- "";
        verdict := `Close;
        continue := false
      | Wire.Got (raw, consumed) -> (
        s.buf <- String.sub s.buf consumed (String.length s.buf - consumed);
        match Wire.opcode_of_byte raw.Wire.r_op with
        | None | Some (Wire.Reply_ok | Wire.Reply_err) ->
          Stats.incr_error s.srv.st ~code:"bad_opcode";
          items :=
            I_reply
              (error_frame ~id:raw.Wire.r_id
                 (Proto.error "bad_opcode"
                    (Printf.sprintf "opcode 0x%02x is not a request"
                       raw.Wire.r_op)))
            :: !items
        | Some op -> (
          match Proto.request_of_payload ~op raw.Wire.r_payload with
          | Error e ->
            Stats.incr_error s.srv.st ~code:e.Proto.e_code;
            items := I_reply (error_frame ~id:raw.Wire.r_id e) :: !items
          | Ok req -> items := I_request { id = raw.Wire.r_id; req } :: !items))
    done;
    (List.rev !items, !verdict)

  let append s bytes = s.buf <- s.buf ^ bytes

  (* The synchronous shape (in-process callers: tests, the wire fuzzer):
     decode and compute inline, one output byte string. *)
  let feed s bytes =
    append s bytes;
    let items, verdict = poll s in
    let out = Buffer.create 256 in
    let closed = ref (verdict = `Close) in
    let rec run = function
      | [] -> ()
      | I_reply frame :: rest ->
        Buffer.add_string out frame;
        run rest
      | I_request { id; req } :: rest -> (
        match handle s.srv req with
        | Error e ->
          Buffer.add_string out (error_frame ~id e);
          run rest
        | Ok reply ->
          Buffer.add_string out
            (Wire.encode ~op:Wire.Reply_ok ~id
               ~payload:(Proto.reply_to_payload reply));
          if reply = Proto.R_bye then closed := true else run rest)
    in
    run items;
    (Buffer.contents out, if !closed then `Close else `Keep)
end

(* ------------------------------------------------------------------ *)
(* Socket serving                                                      *)
(* ------------------------------------------------------------------ *)

(* EINTR-hardened primitives.  [select] with a bounded timeout is the
   only place the IO domain blocks. *)
let rec select_i r w e tmo =
  try Unix.select r w e tmo
  with Unix.Unix_error (Unix.EINTR, _, _) -> select_i r w e tmo

type conn = {
  c_fd : Unix.file_descr;
  c_session : Session.t;
  c_lock : Mutex.t; (* guards c_out, c_alive, c_jobs *)
  mutable c_out : string; (* bytes awaiting write *)
  mutable c_alive : bool;
  mutable c_jobs : int; (* worker jobs still owing a reply *)
  mutable c_close_after_flush : bool;
  mutable c_last_read : float;
  mutable c_frame_since : float; (* mid-frame start; 0.0 = at a boundary *)
  mutable c_stall_since : float; (* unwritable-with-output start; 0.0 = ok *)
}

type job = {
  j_conn : conn;
  j_id : int;
  j_req : Proto.request;
  j_deadline : float;
}

let conn_append c frame wake =
  Mutex.protect c.c_lock (fun () ->
      if c.c_alive then begin
        c.c_out <- c.c_out ^ frame;
        wake ()
      end)

let serve t ~socket =
  (* a client hanging up mid-write must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket);
  Unix.listen listener 64;
  (* self-pipe: workers nudge the select loop when replies are ready *)
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  let wake () =
    try ignore (Unix.write_substring pipe_w "!" 0 1)
    with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _)
    -> ()
  in
  let jobs : job Queue.t = Queue.create () in
  let qlock = Mutex.create () in
  let qcond = Condition.create () in
  let next_job () =
    Mutex.lock qlock;
    let rec waitq () =
      if not (Queue.is_empty jobs) then Some (Queue.pop jobs)
      else if shutting_down t then None
      else begin
        Condition.wait qcond qlock;
        waitq ()
      end
    in
    let r = waitq () in
    Mutex.unlock qlock;
    r
  in
  let finish_job j r =
    let frame =
      match r with
      | Ok reply ->
        Wire.encode ~op:Wire.Reply_ok ~id:j.j_id
          ~payload:(Proto.reply_to_payload reply)
      | Error e ->
        Wire.encode ~op:Wire.Reply_err ~id:j.j_id
          ~payload:(Proto.error_to_payload e)
    in
    conn_append j.j_conn frame wake;
    Mutex.protect j.j_conn.c_lock (fun () ->
        j.j_conn.c_jobs <- j.j_conn.c_jobs - 1)
  in
  let rec worker () =
    match next_job () with
    | None -> ()
    | Some j ->
      let alive = Mutex.protect j.j_conn.c_lock (fun () -> j.j_conn.c_alive) in
      (if not alive then begin
         release t j.j_req;
         Mutex.protect j.j_conn.c_lock (fun () ->
             j.j_conn.c_jobs <- j.j_conn.c_jobs - 1)
       end
       else begin
         let r =
           Fun.protect
             ~finally:(fun () -> release t j.j_req)
             (fun () -> handle_admitted t ~deadline:j.j_deadline j.j_req)
         in
         finish_job j r
       end);
      worker ()
  in
  let workers =
    List.init (max 1 t.config.cfg_domains) (fun _ -> Domain.spawn worker)
  in
  let conns : conn list ref = ref [] in
  let outstanding () =
    List.fold_left
      (fun acc c -> acc + Mutex.protect c.c_lock (fun () -> c.c_jobs))
      0 !conns
  in
  let close_conn ?(evicted = false) c =
    let was_alive =
      Mutex.protect c.c_lock (fun () ->
          let was = c.c_alive in
          c.c_alive <- false;
          was)
    in
    if was_alive then begin
      if evicted then Stats.incr_evicted t.st;
      (try Unix.close c.c_fd with Unix.Unix_error _ -> ());
      conns := List.filter (fun c' -> c' != c) !conns
    end
  in
  let enqueue_request c ~now ~id req =
    match req with
    | Proto.Stats | Proto.Shutdown ->
      (* weight 0, O(1): answered inline so a health probe or a shutdown
         never waits behind queued solver work *)
      let frame =
        match handle t req with
        | Ok reply ->
          Wire.encode ~op:Wire.Reply_ok ~id
            ~payload:(Proto.reply_to_payload reply)
        | Error e ->
          Wire.encode ~op:Wire.Reply_err ~id
            ~payload:(Proto.error_to_payload e)
      in
      Mutex.protect c.c_lock (fun () ->
          if c.c_alive then c.c_out <- c.c_out ^ frame);
      if req = Proto.Shutdown then c.c_close_after_flush <- true
    | _ -> (
      match admit_or_shed t req with
      | Error e ->
        let frame =
          Wire.encode ~op:Wire.Reply_err ~id
            ~payload:(Proto.error_to_payload e)
        in
        Mutex.protect c.c_lock (fun () ->
            if c.c_alive then c.c_out <- c.c_out ^ frame)
      | Ok () ->
        let deadline =
          match Proto.budget_ms_of req with
          | Some ms -> now +. (float_of_int ms /. 1000.0)
          | None -> infinity
        in
        Mutex.protect c.c_lock (fun () -> c.c_jobs <- c.c_jobs + 1);
        Mutex.lock qlock;
        Queue.push { j_conn = c; j_id = id; j_req = req; j_deadline = deadline } jobs;
        Condition.signal qcond;
        Mutex.unlock qlock)
  in
  let read_buf = Bytes.create 65536 in
  let handle_readable c ~now =
    match Unix.read c.c_fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> close_conn c
    | n ->
      c.c_last_read <- now;
      Session.append c.c_session (Bytes.sub_string read_buf 0 n);
      let items, verdict = Session.poll c.c_session in
      c.c_frame_since <-
        (if Session.buffered c.c_session > 0 then
           if c.c_frame_since = 0.0 then now else c.c_frame_since
         else 0.0);
      List.iter
        (function
          | Session.I_reply frame ->
            Mutex.protect c.c_lock (fun () ->
                if c.c_alive then c.c_out <- c.c_out ^ frame)
          | Session.I_request { id; req } -> enqueue_request c ~now ~id req)
        items;
      if verdict = `Close then c.c_close_after_flush <- true
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
    | exception Unix.Unix_error _ -> close_conn c
  in
  let flush_writable c ~now =
    Mutex.lock c.c_lock;
    let out = c.c_out in
    Mutex.unlock c.c_lock;
    if String.length out > 0 then begin
      match Unix.write_substring c.c_fd out 0 (String.length out) with
      | n ->
        Mutex.protect c.c_lock (fun () ->
            c.c_out <- String.sub c.c_out n (String.length c.c_out - n));
        c.c_stall_since <- 0.0
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        if c.c_stall_since = 0.0 then c.c_stall_since <- now
      | exception Unix.Unix_error _ -> close_conn c
    end
  in
  let ms_to_s ms = float_of_int ms /. 1000.0 in
  let check_timers ~now =
    List.iter
      (fun c ->
        let pending_out =
          Mutex.protect c.c_lock (fun () -> String.length c.c_out) > 0
        in
        let jobs_left = Mutex.protect c.c_lock (fun () -> c.c_jobs) in
        if
          pending_out && c.c_stall_since > 0.0
          && now -. c.c_stall_since > ms_to_s t.config.cfg_write_timeout_ms
        then close_conn ~evicted:true c
        else if c.c_close_after_flush && (not pending_out) && jobs_left = 0
        then close_conn c
        else
          match t.config.cfg_frame_timeout_ms with
          | Some ft
            when c.c_frame_since > 0.0 && now -. c.c_frame_since > ms_to_s ft
            ->
            (* slowloris: a frame started and never finished *)
            close_conn ~evicted:true c
          | _ -> (
            match t.config.cfg_idle_timeout_ms with
            | Some it
              when (not pending_out) && jobs_left = 0
                   && Session.buffered c.c_session = 0
                   && now -. c.c_last_read > ms_to_s it ->
              close_conn ~evicted:true c
            | _ -> ()))
      (* [!conns] is an immutable snapshot: close_conn replacing the ref
         does not disturb this walk *)
      !conns
  in
  let drain_pipe () =
    let b = Bytes.create 64 in
    let rec go () =
      match Unix.read pipe_r b 0 64 with
      | n when n > 0 -> go ()
      | _ -> ()
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    in
    go ()
  in
  let accept_new () =
    match Unix.accept listener with
    | fd, _ ->
      Unix.set_nonblock fd;
      Stats.incr_connections t.st;
      let now = Unix.gettimeofday () in
      conns :=
        { c_fd = fd;
          c_session = Session.create t;
          c_lock = Mutex.create ();
          c_out = "";
          c_alive = true;
          c_jobs = 0;
          c_close_after_flush = false;
          c_last_read = now;
          c_frame_since = 0.0;
          c_stall_since = 0.0 }
        :: !conns
    | exception Unix.Unix_error _ -> ()
  in
  (* the event loop: runs until shutdown, then drains outstanding jobs
     and pending output under a bounded grace period *)
  let grace_until = ref infinity in
  let running = ref true in
  while !running do
    let now = Unix.gettimeofday () in
    if shutting_down t && !grace_until = infinity then begin
      grace_until := now +. 2.0;
      (* wake any workers parked on an empty queue so they can exit *)
      Mutex.lock qlock;
      Condition.broadcast qcond;
      Mutex.unlock qlock
    end;
    if shutting_down t then begin
      let drained =
        outstanding () = 0
        && List.for_all
             (fun c -> Mutex.protect c.c_lock (fun () -> c.c_out = ""))
             !conns
      in
      if drained || now > !grace_until then running := false
    end;
    if !running then begin
      let reads =
        (if shutting_down t then [] else [ listener ])
        @ (pipe_r :: List.map (fun c -> c.c_fd) !conns)
      in
      let writes =
        List.filter_map
          (fun c ->
            if Mutex.protect c.c_lock (fun () -> c.c_out <> "") then
              Some c.c_fd
            else None)
          !conns
      in
      let readable, writable, _ = select_i reads writes [] 0.1 in
      let now = Unix.gettimeofday () in
      if List.mem pipe_r readable then drain_pipe ();
      if List.mem listener readable then accept_new ();
      List.iter
        (fun c -> if List.mem c.c_fd readable then handle_readable c ~now)
        !conns;
      List.iter
        (fun c -> if List.mem c.c_fd writable then flush_writable c ~now)
        !conns;
      check_timers ~now
    end
  done;
  (* shutdown: workers drain the queue (answering [shutting_down]) and
     exit; close whatever connections remain *)
  Mutex.lock qlock;
  Condition.broadcast qcond;
  Mutex.unlock qlock;
  List.iter Domain.join workers;
  List.iter (fun c -> close_conn c) !conns;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.close pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close pipe_w with Unix.Unix_error _ -> ());
  try Unix.unlink socket with Unix.Unix_error _ -> ()
