(** The shackled/1 wire format: length-prefixed binary frames on a byte
    stream (Unix domain socket or in-process buffer).

    Every frame is a fixed 13-byte header followed by the payload:

    {v
      offset  size  field
      0       4     magic "SHK1" (protocol shackled/1; the version is
                    part of the magic, so a v2 daemon can coexist)
      4       1     opcode
      5       4     request id, big-endian uint32 (echoed on the reply)
      9       4     payload length, big-endian uint32
      13      len   payload (UTF-8 JSON for every current opcode)
    v}

    The decoder is incremental and total: any byte sequence decodes to a
    raw frame, a request for more bytes, or a [Corrupt] diagnosis — it
    never raises, which is what the protocol fuzzer leans on.  Unknown
    opcode bytes decode fine (framing is intact), so the server can answer
    them with a structured error and keep the connection. *)

type opcode =
  | Parse
  | Probe
  | Legal
  | Tune
  | Sim
  | Stats
  | Shutdown
  | Reply_ok  (** server -> client: successful reply *)
  | Reply_err  (** server -> client: structured error reply *)

val opcode_byte : opcode -> int
val opcode_of_byte : int -> opcode option
val opcode_string : opcode -> string

type raw = { r_op : int;  (** opcode byte, possibly unknown *)
             r_id : int;  (** request id (uint32) *)
             r_payload : string }

val magic : string
(** ["SHK1"]. *)

val header_bytes : int
(** 13. *)

val max_payload : int
(** Frames advertising a longer payload are rejected as [Corrupt] without
    buffering — the oversized-length-prefix guard (16 MiB). *)

val encode : op:opcode -> id:int -> payload:string -> string
(** @raise Invalid_argument if the payload exceeds {!max_payload} or the
    id is outside the uint32 range. *)

val encode_raw : raw -> string
(** Same, with an arbitrary opcode byte — the fuzzer's constructor. *)

type decoded =
  | Need_more of int
      (** the buffer holds a valid prefix; at least this many more bytes
          are needed to finish the frame *)
  | Got of raw * int  (** a complete frame and the bytes it consumed *)
  | Corrupt of string
      (** the buffer can never become a valid frame: bad magic or an
          oversized payload length.  Framing is lost — the connection must
          close after an error reply. *)

val decode : string -> decoded
(** Decode the frame starting at offset 0 of the buffer. *)
