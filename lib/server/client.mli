(** Blocking shackled/1 client over a Unix domain socket, used by
    [shacklec --connect], [shackled --report]/[--fuzz-burst] and the
    bench server figure.

    One outstanding request at a time per client; request ids are
    assigned monotonically and checked on the reply. *)

type t

val connect : string -> t
(** @raise Unix.Unix_error when the socket is absent or refuses. *)

val close : t -> unit

val rpc : t -> Proto.request -> (Proto.reply, Proto.error) result
(** Send one request and wait for its reply.  Transport failures
    (connection closed, unparseable reply) come back as a [transport]
    error, not an exception. *)

val rpc_raw : t -> Wire.raw -> (Wire.raw, string) result
(** Send an arbitrary frame and read one reply frame — the wire-burst
    primitive.  [Error] means the server hung up (expected after a
    framing violation). *)

type burst = {
  b_sent : int;  (** frames sent *)
  b_ok : int;  (** [Reply_ok] frames received *)
  b_err : int;  (** [Reply_err] frames received *)
  b_hangups : int;  (** connections the server closed (reconnected) *)
}

val fuzz_burst : socket:string -> seed:int -> frames:int -> burst
(** Fire [frames] seeded mutations of valid frames (bit flips, truncated
    headers, oversized length prefixes, unknown opcodes, garbage
    payloads) at a live daemon, reconnecting whenever the server hangs
    up.  Finishes with a clean [Stats] round-trip on a fresh connection —
    an exception here means the burst killed the daemon.  Every reply
    received is structured ([Reply_ok] or [Reply_err]); the function
    raises [Failure] otherwise. *)
