(** Blocking shackled/1 client over a Unix domain socket, used by
    [shacklec --connect], [shackled --report]/[--fuzz-burst] and the
    bench server figure.

    One outstanding request at a time per client; request ids are
    assigned monotonically and checked on the reply. *)

type t

val connect : string -> t
(** @raise Unix.Unix_error when the socket is absent or refuses. *)

val close : t -> unit

val rpc : t -> Proto.request -> (Proto.reply, Proto.error) result
(** Send one request and wait for its reply.  Transport failures
    (connection closed, unparseable reply) come back as a [transport]
    error, not an exception. *)

val rpc_raw : t -> Wire.raw -> (Wire.raw, string) result
(** Send an arbitrary frame and read one reply frame — the wire-burst
    primitive.  [Error] means the server hung up (expected after a
    framing violation). *)

type retry
(** A self-healing client: owns (and transparently re-establishes) its
    connection, and retries [overloaded] and [transport] errors with
    seeded exponential backoff + full jitter.  Retrying is safe because
    requests are idempotent under {!Proto.request_key}.  Deterministic:
    a fixed (seed, request trace) replays the same sleep schedule. *)

val connect_retry :
  ?max_attempts:int -> ?base_ms:int -> socket:string -> seed:int -> unit ->
  retry
(** Lazy — no connection is opened until the first {!rpc_retry}.
    [max_attempts] (default 6) bounds tries per request; [base_ms]
    (default 25) scales the backoff: attempt [k] sleeps a uniform draw
    from [0, base_ms * 2^k] ms (capped at 2 s), or the server's
    [retry_after_ms] hint when that is larger. *)

val rpc_retry : retry -> Proto.request -> (Proto.reply, Proto.error) result
(** Like {!rpc}, but sheds ([overloaded]) and transport faults
    (connection refused / reset / closed — including a daemon restart
    window) are retried with backoff; the last error is returned once
    attempts are exhausted.  Non-retryable errors return immediately. *)

val retries : retry -> int
(** Total retries performed by this handle (for load reports). *)

val close_retry : retry -> unit

type burst = {
  b_sent : int;  (** frames sent *)
  b_ok : int;  (** [Reply_ok] frames received *)
  b_err : int;  (** [Reply_err] frames received *)
  b_hangups : int;  (** connections the server closed (reconnected) *)
}

val fuzz_burst : socket:string -> seed:int -> frames:int -> burst
(** Fire [frames] seeded mutations of valid frames (bit flips, truncated
    headers, oversized length prefixes, unknown opcodes, garbage
    payloads) at a live daemon, reconnecting whenever the server hangs
    up.  Finishes with a clean [Stats] round-trip on a fresh connection —
    an exception here means the burst killed the daemon.  Every reply
    received is structured ([Reply_ok] or [Reply_err]); the function
    raises [Failure] otherwise. *)
