(* shackled/1 framing: 13-byte header (magic, opcode, request id, payload
   length) + payload.  The decoder is deliberately total — every possible
   byte string maps to Need_more / Got / Corrupt without raising — because
   the protocol fuzzer feeds it arbitrary mutations and the server must
   never die on input. *)

type opcode =
  | Parse
  | Probe
  | Legal
  | Tune
  | Sim
  | Stats
  | Shutdown
  | Reply_ok
  | Reply_err

let opcode_byte = function
  | Parse -> 0x01
  | Probe -> 0x02
  | Legal -> 0x03
  | Tune -> 0x04
  | Sim -> 0x05
  | Stats -> 0x06
  | Shutdown -> 0x07
  | Reply_ok -> 0x81
  | Reply_err -> 0x82

let opcode_of_byte = function
  | 0x01 -> Some Parse
  | 0x02 -> Some Probe
  | 0x03 -> Some Legal
  | 0x04 -> Some Tune
  | 0x05 -> Some Sim
  | 0x06 -> Some Stats
  | 0x07 -> Some Shutdown
  | 0x81 -> Some Reply_ok
  | 0x82 -> Some Reply_err
  | _ -> None

let opcode_string = function
  | Parse -> "parse"
  | Probe -> "probe"
  | Legal -> "legal"
  | Tune -> "tune"
  | Sim -> "sim"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Reply_ok -> "ok"
  | Reply_err -> "error"

type raw = { r_op : int; r_id : int; r_payload : string }

let magic = "SHK1"
let header_bytes = 13
let max_payload = 1 lsl 24

let put_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode_raw { r_op; r_id; r_payload } =
  if String.length r_payload > max_payload then
    invalid_arg "Wire.encode: payload exceeds max_payload";
  if r_id < 0 || r_id > 0xFFFFFFFF then invalid_arg "Wire.encode: id not uint32";
  if r_op < 0 || r_op > 0xff then invalid_arg "Wire.encode: opcode not a byte";
  let buf = Buffer.create (header_bytes + String.length r_payload) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr r_op);
  put_u32 buf r_id;
  put_u32 buf (String.length r_payload);
  Buffer.add_string buf r_payload;
  Buffer.contents buf

let encode ~op ~id ~payload =
  encode_raw { r_op = opcode_byte op; r_id = id; r_payload = payload }

type decoded = Need_more of int | Got of raw * int | Corrupt of string

let decode buf =
  let len = String.length buf in
  (* magic check byte by byte, so a wrong prefix is diagnosed as soon as
     the offending byte arrives, not only once 4 bytes are buffered *)
  let rec check_magic i =
    if i >= 4 then None
    else if i >= len then Some (Need_more (header_bytes - len))
    else if not (Char.equal buf.[i] magic.[i]) then
      Some
        (Corrupt
           (Printf.sprintf "bad magic byte %d: expected %C, got %C" i
              magic.[i] buf.[i]))
    else check_magic (i + 1)
  in
  match check_magic 0 with
  | Some r -> r
  | None ->
    if len < header_bytes then Need_more (header_bytes - len)
    else begin
      let payload_len = get_u32 buf 9 in
      if payload_len > max_payload then
        Corrupt
          (Printf.sprintf "payload length %d exceeds limit %d" payload_len
             max_payload)
      else if len < header_bytes + payload_len then
        Need_more (header_bytes + payload_len - len)
      else
        Got
          ( { r_op = Char.code buf.[4];
              r_id = get_u32 buf 5;
              r_payload = String.sub buf header_bytes payload_len },
            header_bytes + payload_len )
    end
