(* Blocking shackled/1 client.  Reads accumulate into a string buffer and
   frames are peeled off with the same total decoder the server uses. *)

type t = {
  fd : Unix.file_descr;
  mutable rbuf : string;
  mutable next_id : int;
}

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; rbuf = ""; next_id = 1 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Short writes are looped and EINTR (a signal landing mid-syscall) is
   retried — a partial frame on the wire would desync the whole
   connection. *)
let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring fd s !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let read_frame t =
  let chunk = Bytes.create 65536 in
  let rec loop () =
    match Wire.decode t.rbuf with
    | Wire.Got (raw, consumed) ->
      t.rbuf <- String.sub t.rbuf consumed (String.length t.rbuf - consumed);
      Ok raw
    | Wire.Corrupt msg -> Error ("corrupt reply stream: " ^ msg)
    | Wire.Need_more _ -> (
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 -> Error "connection closed"
      | n ->
        t.rbuf <- t.rbuf ^ Bytes.sub_string chunk 0 n;
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (e, _, _) ->
        Error ("read: " ^ Unix.error_message e))
  in
  loop ()

let rpc_raw t raw =
  match write_all t.fd (Wire.encode_raw raw) with
  | () -> read_frame t
  | exception Unix.Unix_error (e, _, _) ->
    Error ("write: " ^ Unix.error_message e)

let transport msg = Error (Proto.error "transport" msg)

let rpc t req =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let raw =
    { Wire.r_op = Wire.opcode_byte (Proto.opcode_of_request req);
      r_id = id;
      r_payload = Proto.request_to_payload req }
  in
  match rpc_raw t raw with
  | Error msg -> transport msg
  | Ok reply ->
    if reply.Wire.r_id <> id then
      transport
        (Printf.sprintf "reply id %d does not match request id %d"
           reply.Wire.r_id id)
    else (
      match Wire.opcode_of_byte reply.Wire.r_op with
      | Some Wire.Reply_ok -> (
        match Proto.reply_of_payload ~op:Wire.Reply_ok reply.Wire.r_payload with
        | Ok r -> Ok r
        | Error msg -> transport msg)
      | Some Wire.Reply_err -> (
        match Proto.error_of_payload reply.Wire.r_payload with
        | Ok e -> Error e
        | Error msg -> transport msg)
      | _ ->
        transport
          (Printf.sprintf "unexpected reply opcode 0x%02x" reply.Wire.r_op))

(* ------------------------------------------------------------------ *)
(* Resilient client: seeded retry with exponential backoff + jitter    *)
(* ------------------------------------------------------------------ *)

(* Retrying is safe because requests are idempotent under
   [Proto.request_key]: replaying an [overloaded] or transport-failed
   request can at worst collapse into someone else's in-flight batch.
   The backoff jitter comes from a seeded PRNG, so a fixed (seed, trace)
   replays the exact same sleep schedule. *)

type retry = {
  rt_socket : string;
  rt_rng : Random.State.t;
  rt_max_attempts : int;
  rt_base_ms : int;
  mutable rt_conn : t option;
  mutable rt_retries : int;
}

let connect_retry ?(max_attempts = 6) ?(base_ms = 25) ~socket ~seed () =
  if max_attempts < 1 then invalid_arg "Client.connect_retry: max_attempts";
  { rt_socket = socket;
    rt_rng = Random.State.make [| seed; 0x5e11e |];
    rt_max_attempts = max_attempts;
    rt_base_ms = base_ms;
    rt_conn = None;
    rt_retries = 0 }

let retries r = r.rt_retries

let close_retry r =
  (match r.rt_conn with Some c -> close c | None -> ());
  r.rt_conn <- None

let drop_conn r =
  (match r.rt_conn with Some c -> close c | None -> ());
  r.rt_conn <- None

(* Exponential backoff with full jitter, capped: attempt k sleeps a
   uniform draw from [0, base * 2^k], never more than 2 s. *)
let backoff_ms r ~attempt =
  let cap = 2000 in
  let ceiling = min cap (r.rt_base_ms * (1 lsl min attempt 10)) in
  1 + Random.State.int r.rt_rng (max 1 ceiling)

let sleep_ms ms = Unix.sleepf (float_of_int ms /. 1000.0)

let retryable = function
  | { Proto.e_code = "overloaded"; _ } | { Proto.e_code = "transport"; _ } ->
    true
  | _ -> false

let rpc_retry r req =
  let rec attempt k =
    let conn =
      match r.rt_conn with
      | Some c -> Ok c
      | None -> (
        match connect r.rt_socket with
        | c ->
          r.rt_conn <- Some c;
          Ok c
        | exception Unix.Unix_error (e, _, _) ->
          Error (Proto.error "transport" ("connect: " ^ Unix.error_message e)))
    in
    let result =
      match conn with
      | Error e -> Error e
      | Ok c ->
        let res = rpc c req in
        (match res with
        | Error { Proto.e_code = "transport"; _ } ->
          (* the stream is unusable after a transport fault: reconnect *)
          drop_conn r
        | _ -> ());
        res
    in
    match result with
    | Error e when retryable e && k + 1 < r.rt_max_attempts ->
      r.rt_retries <- r.rt_retries + 1;
      let back = backoff_ms r ~attempt:k in
      let wait =
        match e.Proto.e_retry_after_ms with
        | Some hint -> max hint back (* honor the server's hint *)
        | None -> back
      in
      sleep_ms wait;
      attempt (k + 1)
    | _ -> result
  in
  attempt 0

(* ------------------------------------------------------------------ *)
(* Wire fuzz burst                                                     *)
(* ------------------------------------------------------------------ *)

type burst = { b_sent : int; b_ok : int; b_err : int; b_hangups : int }

(* A mutated length field can promise more payload than we send; the
   server (correctly) waits, so fuzz connections read with a timeout and
   treat it as a hangup. *)
let fuzz_connect socket =
  let c = connect socket in
  (try Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO 0.5
   with Unix.Unix_error _ -> ());
  c

(* A small pool of valid frames to mutate — cheap requests only, so the
   burst measures protocol robustness, not solver throughput. *)
let burst_seeds =
  [ Wire.encode ~op:Wire.Stats ~id:7 ~payload:"{}";
    Wire.encode ~op:Wire.Parse ~id:8 ~payload:"{\"text\":\"not a program\"}";
    Wire.encode ~op:Wire.Legal ~id:9
      ~payload:"{\"kernel\":\"nope\",\"spec\":\"x\",\"size\":4}" ]

let mutate rng frame =
  let b = Bytes.of_string frame in
  (match Random.State.int rng 6 with
  | 0 ->
    (* flip one byte anywhere (magic, opcode, id, length, payload) *)
    let i = Random.State.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Random.State.int rng 256))
  | 1 ->
    (* unknown opcode, framing otherwise intact *)
    Bytes.set b 4 (Char.chr (0x20 + Random.State.int rng 0x60))
  | 2 ->
    (* oversized length prefix *)
    Bytes.set b 9 '\xff';
    Bytes.set b 10 '\xff'
  | 3 ->
    (* garbage payload under a correct header *)
    for i = Wire.header_bytes to Bytes.length b - 1 do
      Bytes.set b i (Char.chr (Random.State.int rng 256))
    done
  | _ -> () (* sent unmodified, or truncated below *));
  let s = Bytes.to_string b in
  if Random.State.int rng 4 = 0 then
    (* truncate mid-header or mid-payload *)
    String.sub s 0 (Random.State.int rng (String.length s))
  else s

let fuzz_burst ~socket ~seed ~frames =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let rng = Random.State.make [| seed; frames |] in
  let conn = ref (fuzz_connect socket) in
  let ok = ref 0 and errs = ref 0 and hangups = ref 0 in
  for _ = 1 to frames do
    let frame = mutate rng (List.nth burst_seeds (Random.State.int rng 3)) in
    let reconnect () =
      close !conn;
      incr hangups;
      conn := fuzz_connect socket
    in
    match write_all (!conn).fd frame with
    | exception Unix.Unix_error _ -> reconnect ()
    | () ->
      if String.length frame < Wire.header_bytes then
        (* incomplete frame: the server correctly keeps waiting; start a
           fresh connection rather than poisoning the next send *)
        reconnect ()
      else (
        match read_frame !conn with
        | Error _ -> reconnect ()
        | Ok raw -> (
          match Wire.opcode_of_byte raw.Wire.r_op with
          | Some Wire.Reply_ok -> incr ok
          | Some Wire.Reply_err ->
            incr errs;
            (* a framing violation gets one error then a hangup *)
            (match Proto.error_of_payload raw.Wire.r_payload with
            | Ok { Proto.e_code = "bad_magic" | "oversized"; _ } ->
              reconnect ()
            | _ -> ())
          | _ ->
            failwith
              (Printf.sprintf "fuzz_burst: unstructured reply opcode 0x%02x"
                 raw.Wire.r_op)))
  done;
  close !conn;
  (* liveness proof: a clean round-trip after the storm *)
  let c = connect socket in
  (match rpc c Proto.Stats with
  | Ok (Proto.R_stats _) -> ()
  | Ok _ | Error _ -> failwith "fuzz_burst: daemon unhealthy after burst");
  close c;
  { b_sent = frames; b_ok = !ok; b_err = !errs; b_hangups = !hangups }
