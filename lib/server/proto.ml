(* JSON payload encoding of the shackled/1 request/reply types.  Encoders
   construct fields in a fixed order and the serializer is deterministic,
   so [request_key] (opcode + payload text) is a canonical identity:
   identical queries produce identical keys and, downstream,
   byte-identical reply payloads — the property both the in-flight
   batcher and the wire fuzzer's determinism check rely on. *)

module Json = Observe.Json

type request =
  | Parse of { text : string }
  | Probe of { kernel : string; spec : string; size : int; budget_ms : int option }
  | Legal of { kernel : string; spec : string; size : int; budget_ms : int option }
  | Tune of { kernel : string; size : int; n : int; budget_ms : int option }
  | Sim of {
      kernel : string;
      spec : string option;
      size : int;
      n : int;
      machine : string;
      quality : string;
      budget_ms : int option;
    }
  | Stats
  | Shutdown

type reply =
  | R_parsed of { pretty : string; deps : int }
  | R_verdict of { verdict : string }
  | R_tuned of { label : string; cycles : float; candidates : int }
  | R_sim of { cycles : float; mflops : float; flops : int; accesses : int }
  | R_stats of Json.t
  | R_bye

type error = {
  e_code : string;
  e_message : string;
  e_retry_after_ms : int option;
}

let error e_code e_message = { e_code; e_message; e_retry_after_ms = None }

let error_retry e_code e_message ~retry_after_ms =
  { e_code; e_message; e_retry_after_ms = Some retry_after_ms }

let opcode_of_request = function
  | Parse _ -> Wire.Parse
  | Probe _ -> Wire.Probe
  | Legal _ -> Wire.Legal
  | Tune _ -> Wire.Tune
  | Sim _ -> Wire.Sim
  | Stats -> Wire.Stats
  | Shutdown -> Wire.Shutdown

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* [budget_ms] is appended only when present, so a budget-less request
   serializes byte-identically to the shackled/1 wire format — old clients
   and old recorded traces keep working, and their request keys (and hence
   batching identities) are unchanged. *)
let with_budget fields = function
  | None -> fields
  | Some ms -> fields @ [ ("budget_ms", Json.Int ms) ]

let request_to_json = function
  | Parse { text } -> Json.Obj [ ("text", Json.Str text) ]
  | Probe { kernel; spec; size; budget_ms }
  | Legal { kernel; spec; size; budget_ms } ->
    Json.Obj
      (with_budget
         [ ("kernel", Json.Str kernel);
           ("spec", Json.Str spec);
           ("size", Json.Int size) ]
         budget_ms)
  | Tune { kernel; size; n; budget_ms } ->
    Json.Obj
      (with_budget
         [ ("kernel", Json.Str kernel); ("size", Json.Int size);
           ("n", Json.Int n) ]
         budget_ms)
  | Sim { kernel; spec; size; n; machine; quality; budget_ms } ->
    Json.Obj
      (with_budget
         [ ("kernel", Json.Str kernel);
           ("spec", match spec with Some s -> Json.Str s | None -> Json.Null);
           ("size", Json.Int size);
           ("n", Json.Int n);
           ("machine", Json.Str machine);
           ("quality", Json.Str quality) ]
         budget_ms)
  | Stats | Shutdown -> Json.Obj []

let request_to_payload r = Json.to_string (request_to_json r)

let reply_to_payload r =
  Json.to_string
    (match r with
    | R_parsed { pretty; deps } ->
      Json.Obj [ ("pretty", Json.Str pretty); ("deps", Json.Int deps) ]
    | R_verdict { verdict } -> Json.Obj [ ("verdict", Json.Str verdict) ]
    | R_tuned { label; cycles; candidates } ->
      Json.Obj
        [ ("label", Json.Str label);
          ("cycles", Json.Float cycles);
          ("candidates", Json.Int candidates) ]
    | R_sim { cycles; mflops; flops; accesses } ->
      Json.Obj
        [ ("cycles", Json.Float cycles);
          ("mflops", Json.Float mflops);
          ("flops", Json.Int flops);
          ("accesses", Json.Int accesses) ]
    | R_stats j -> Json.Obj [ ("stats", j) ]
    | R_bye -> Json.Obj [ ("bye", Json.Bool true) ])

let error_to_payload e =
  Json.to_string
    (Json.Obj
       ([ ("code", Json.Str e.e_code); ("message", Json.Str e.e_message) ]
       @
       match e.e_retry_after_ms with
       | None -> []
       | Some ms -> [ ("retry_after_ms", Json.Int ms) ]))

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let str k j = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None
let int k j = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None

let flt k j =
  match Json.member k j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let bad_payload msg = Error (error "bad_payload" msg)

let parse_json payload k =
  match Json.of_string payload with
  | Error msg -> bad_payload ("payload is not JSON: " ^ msg)
  | Ok j -> k j

(* An absent or null budget is "no budget"; a present one must be a
   positive int, so a mistyped field fails loudly rather than silently
   running unbudgeted. *)
let budget j =
  match Json.member "budget_ms" j with
  | None | Some Json.Null -> Some None
  | Some (Json.Int ms) when ms > 0 -> Some (Some ms)
  | Some _ -> None

let request_of_payload ~op payload =
  match op with
  | Wire.Stats -> Ok Stats
  | Wire.Shutdown -> Ok Shutdown
  | Wire.Parse ->
    parse_json payload (fun j ->
        match str "text" j with
        | Some text -> Ok (Parse { text })
        | None -> bad_payload "parse: missing string field \"text\"")
  | Wire.Probe | Wire.Legal ->
    parse_json payload (fun j ->
        match (str "kernel" j, str "spec" j, int "size" j, budget j) with
        | Some kernel, Some spec, Some size, Some budget_ms when size > 0 ->
          Ok
            (if op = Wire.Probe then Probe { kernel; spec; size; budget_ms }
             else Legal { kernel; spec; size; budget_ms })
        | _ ->
          bad_payload
            "legality: needs string \"kernel\", string \"spec\", positive int \
             \"size\" (optional positive int \"budget_ms\")")
  | Wire.Tune ->
    parse_json payload (fun j ->
        match (str "kernel" j, int "size" j, int "n" j, budget j) with
        | Some kernel, Some size, Some n, Some budget_ms
          when size > 0 && n > 0 ->
          Ok (Tune { kernel; size; n; budget_ms })
        | _ ->
          bad_payload
            "tune: needs string \"kernel\", positive ints \"size\" and \"n\" \
             (optional positive int \"budget_ms\")")
  | Wire.Sim ->
    parse_json payload (fun j ->
        let spec =
          match Json.member "spec" j with
          | Some (Json.Str s) -> Some (Some s)
          | Some Json.Null | None -> Some None
          | _ -> None
        in
        match
          (str "kernel" j, spec, int "size" j, int "n" j, str "machine" j,
           str "quality" j, budget j)
        with
        | Some kernel, Some spec, Some size, Some n, Some machine,
          Some quality, Some budget_ms
          when size > 0 && n > 0 ->
          Ok (Sim { kernel; spec; size; n; machine; quality; budget_ms })
        | _ ->
          bad_payload
            "sim: needs \"kernel\", \"spec\" (string or null), positive \
             \"size\"/\"n\", \"machine\", \"quality\" (optional positive int \
             \"budget_ms\")")
  | Wire.Reply_ok | Wire.Reply_err ->
    Error (error "bad_opcode" "reply opcodes are not requests")

let reply_of_payload ~op payload =
  if op <> Wire.Reply_ok then Error "not a Reply_ok frame"
  else
    match Json.of_string payload with
    | Error msg -> Error ("reply payload is not JSON: " ^ msg)
    | Ok j -> (
      match
        ( str "pretty" j, str "verdict" j, str "label" j,
          Json.member "stats" j, Json.member "bye" j, flt "cycles" j )
      with
      | Some pretty, _, _, _, _, _ -> (
        match int "deps" j with
        | Some deps -> Ok (R_parsed { pretty; deps })
        | None -> Error "parsed reply lacks \"deps\"")
      | _, Some verdict, _, _, _, _ -> Ok (R_verdict { verdict })
      | _, _, Some label, _, _, Some cycles -> (
        match int "candidates" j with
        | Some candidates -> Ok (R_tuned { label; cycles; candidates })
        | None -> Error "tuned reply lacks \"candidates\"")
      | _, _, _, Some stats, _, _ -> Ok (R_stats stats)
      | _, _, _, _, Some (Json.Bool true), _ -> Ok R_bye
      | _, _, _, _, _, Some cycles -> (
        match (flt "mflops" j, int "flops" j, int "accesses" j) with
        | Some mflops, Some flops, Some accesses ->
          Ok (R_sim { cycles; mflops; flops; accesses })
        | _ -> Error "sim reply lacks mflops/flops/accesses")
      | _ -> Error "unrecognized reply shape")

let error_of_payload payload =
  match Json.of_string payload with
  | Error msg -> Error ("error payload is not JSON: " ^ msg)
  | Ok j -> (
    match (str "code" j, str "message" j) with
    | Some e_code, Some e_message ->
      let e_retry_after_ms =
        match Json.member "retry_after_ms" j with
        | Some (Json.Int ms) -> Some ms
        | _ -> None
      in
      Ok { e_code; e_message; e_retry_after_ms }
    | _ -> Error "error payload lacks code/message")

let request_key r =
  Wire.opcode_string (opcode_of_request r) ^ "|" ^ request_to_payload r

let budget_ms_of = function
  | Probe { budget_ms; _ } | Legal { budget_ms; _ } | Tune { budget_ms; _ }
  | Sim { budget_ms; _ } ->
    budget_ms
  | Parse _ | Stats | Shutdown -> None
