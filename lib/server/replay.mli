(** The multi-client load-replay harness: drive a live shackled daemon
    with N concurrent clients executing a seeded, recordable request
    trace, optionally through an in-process chaos proxy that injects the
    transport faults a hostile network produces — stalls, dribbled
    writes, mid-frame disconnects — and emit a schema-checked
    [server-load-report/1] ({!Report.server_load_report}).

    The harness is deliberately daemon-agnostic: it talks only the
    shackled/1 wire protocol through {!Client.connect_retry}, so the
    daemon under load may live in another process (the [shackled replay]
    subcommand kills it with SIGKILL mid-load and lets the retrying
    clients ride through the restart) or in a test domain.

    Everything here is deterministic given the seed — the trace, the
    client/request interleaving within each client, and the chaos
    schedule (the proxy's fault points depend on OS read chunking, so
    fault {e counts} vary run to run, but the replies never do). *)

(** {1 Trace} *)

type event = { ev_client : int; ev_req : Proto.request }
(** One trace step: client [ev_client] issues [ev_req].  Each client
    executes its own events in trace order; different clients run
    concurrently. *)

val gen_trace :
  seed:int -> clients:int -> requests:int -> pool:Proto.request list ->
  event list
(** [requests] events drawn uniformly (seeded) from [pool], each
    assigned a seeded client in [0, clients). *)

val save_trace : string -> event list -> unit
(** One JSON object per line: [{"client":K,"op":NAME,"payload":OBJ}]. *)

val load_trace : string -> (event list, string) result
(** Inverse of {!save_trace}; [Error] names the first bad line. *)

(** {1 Chaos proxy} *)

type chaos_config = {
  cx_stall_every : int;
      (** one chunk in [k] pauses {!cx_stall_ms} before forwarding
          (0 disables) — the slow-network / slowloris shape *)
  cx_stall_ms : int;
  cx_partial_every : int;
      (** one chunk in [k] is dribbled on in 1–3-byte writes
          (0 disables) — partial writes and torn frames *)
  cx_disconnect_every : int;
      (** one chunk in [k] kills the connection instead of forwarding
          (0 disables) — a mid-frame disconnect as the daemon sees it *)
}

val default_chaos : chaos_config
val no_chaos : chaos_config

type proxy

val proxy_start :
  upstream:string -> socket:string -> seed:int -> chaos:chaos_config -> proxy
(** Listen on [socket]; every accepted connection is forwarded
    byte-for-byte to the daemon at [upstream], with seeded faults
    injected per chunk.  Threads, not domains — connections are
    IO-bound. *)

val proxy_counts : proxy -> int * int * int
(** (stalls, partial-write chunks, forced disconnects) so far. *)

val proxy_stop : proxy -> unit
(** Close the listener and every live connection, join the threads and
    unlink the proxy socket. *)

(** {1 Driving a trace} *)

type outcome = {
  o_completed : int;  (** requests that got a [Reply_ok] *)
  o_retries : int;  (** total client retries (overloaded + transport) *)
  o_shed : int;  (** requests still [overloaded] after all retries *)
  o_deadline_exceeded : int;  (** requests answered [deadline_exceeded] *)
  o_errors : (string * int) list;  (** final client-visible errors by code *)
  o_stats : Stats.t;  (** client-side per-op latency collector *)
}

val drive :
  ?stats:Stats.t -> socket:string -> seed:int -> clients:int -> event list ->
  outcome
(** Run the trace: one thread per client, each owning a
    {!Client.connect_retry} handle seeded from [seed] and its client id,
    executing its events in order and recording wall-clock latency per
    op.  Never raises on request failure — every error is counted.
    [stats] lets successive phases (cold, warm) accumulate into one
    latency collector. *)

(** {1 The report} *)

type phase = { ph_duration_ms : float; ph_disk_hits : int; ph_solves : int }
(** One cold/warm phase summary, extracted from the daemon's final
    stats snapshot. *)

val phase_of_stats : duration_ms:float -> Observe.Json.t -> phase option
(** Pull [solves] and disk-cache hits out of a [shackled-stats] JSON
    reply; [None] if the shape is foreign. *)

val report_json :
  seed:int -> clients:int -> requests:int -> outcome ->
  chaos:int * int * int -> cold:phase option -> warm:phase option ->
  Observe.Json.t
(** Assemble the [server-load-report/1] object — it validates under
    {!Report.check}. *)
