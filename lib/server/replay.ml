(* Multi-client load replay with an in-process chaos proxy.

   The proxy is threads, not domains: every forwarder blocks in read()
   most of its life, so the OS scheduler is the right multiplexer and a
   few dozen connections cost nothing.  All chaos decisions come from
   one seeded RNG behind a mutex — the schedule is a pure function of
   the seed and the chunk arrival order. *)

module Json = Observe.Json

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

type event = { ev_client : int; ev_req : Proto.request }

let gen_trace ~seed ~clients ~requests ~pool =
  if pool = [] then invalid_arg "Replay.gen_trace: empty pool";
  let rng = Random.State.make [| seed; 0x10ad |] in
  let pool = Array.of_list pool in
  List.init requests (fun _ ->
      { ev_client = Random.State.int rng (max 1 clients);
        ev_req = pool.(Random.State.int rng (Array.length pool)) })

let op_of_string = function
  | "parse" -> Some Wire.Parse
  | "probe" -> Some Wire.Probe
  | "legal" -> Some Wire.Legal
  | "tune" -> Some Wire.Tune
  | "sim" -> Some Wire.Sim
  | "stats" -> Some Wire.Stats
  | "shutdown" -> Some Wire.Shutdown
  | _ -> None

let save_trace path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun ev ->
          let payload =
            match Json.of_string (Proto.request_to_payload ev.ev_req) with
            | Ok j -> j
            | Error _ -> Json.Obj [] (* request payloads are always JSON *)
          in
          let line =
            Json.Obj
              [ ("client", Json.Int ev.ev_client);
                ( "op",
                  Json.Str
                    (Wire.opcode_string (Proto.opcode_of_request ev.ev_req)) );
                ("payload", payload) ]
          in
          output_string oc (Json.to_string line);
          output_char oc '\n')
        events)

let load_trace path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go (lineno + 1) acc
        | line -> (
          let fail msg =
            Error (Printf.sprintf "%s:%d: %s" path lineno msg)
          in
          match Json.of_string line with
          | Error msg -> fail ("invalid JSON: " ^ msg)
          | Ok j -> (
            match
              ( Json.member "client" j,
                Json.member "op" j,
                Json.member "payload" j )
            with
            | Some (Json.Int client), Some (Json.Str op), Some payload -> (
              match op_of_string op with
              | None -> fail ("unknown op " ^ op)
              | Some op -> (
                match
                  Proto.request_of_payload ~op (Json.to_string payload)
                with
                | Ok req -> go (lineno + 1) ({ ev_client = client; ev_req = req } :: acc)
                | Error e -> fail ("bad payload: " ^ e.Proto.e_message)))
            | _ -> fail "expected {client, op, payload}"))
      in
      go 1 [])

(* ------------------------------------------------------------------ *)
(* Chaos proxy                                                         *)
(* ------------------------------------------------------------------ *)

type chaos_config = {
  cx_stall_every : int;
  cx_stall_ms : int;
  cx_partial_every : int;
  cx_disconnect_every : int;
}

let default_chaos =
  { cx_stall_every = 5;
    cx_stall_ms = 3;
    cx_partial_every = 3;
    cx_disconnect_every = 43 }

let no_chaos =
  { cx_stall_every = 0;
    cx_stall_ms = 0;
    cx_partial_every = 0;
    cx_disconnect_every = 0 }

type proxy = {
  px_socket : string;
  px_listener : Unix.file_descr;
  px_chaos : chaos_config;
  px_upstream : string;
  px_lock : Mutex.t;
  px_rng : Random.State.t;
  mutable px_stalls : int;
  mutable px_partials : int;
  mutable px_disconnects : int;
  mutable px_conns : Unix.file_descr list;
  mutable px_threads : Thread.t list;
  mutable px_stop : bool;
}

let px_roll t k = k > 0 && Mutex.protect t.px_lock (fun () -> Random.State.int t.px_rng k = 0)

let px_register t fd =
  Mutex.protect t.px_lock (fun () -> t.px_conns <- fd :: t.px_conns)

let px_thread t th =
  Mutex.protect t.px_lock (fun () -> t.px_threads <- th :: t.px_threads)

let close_quiet fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec write_all fd buf off len =
  if len > 0 then
    match Unix.write fd buf off len with
    | n -> write_all fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf off len

(* One direction of one proxied connection.  A fault decision is made
   per chunk read, so bigger traffic sees more chaos — which is the
   point of a load test. *)
let forward t src dst =
  let buf = Bytes.create 4096 in
  let close_pair () =
    close_quiet src;
    close_quiet dst
  in
  let rec loop () =
    match Unix.read src buf 0 (Bytes.length buf) with
    | 0 -> close_pair ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error (_, _, _) -> close_pair ()
    | n ->
      if px_roll t t.px_chaos.cx_disconnect_every then begin
        Mutex.protect t.px_lock (fun () ->
            t.px_disconnects <- t.px_disconnects + 1);
        close_pair ()
      end
      else begin
        if px_roll t t.px_chaos.cx_stall_every then begin
          Mutex.protect t.px_lock (fun () -> t.px_stalls <- t.px_stalls + 1);
          Thread.delay (float_of_int t.px_chaos.cx_stall_ms /. 1000.0)
        end;
        let dribble = px_roll t t.px_chaos.cx_partial_every in
        match
          if dribble then begin
            Mutex.protect t.px_lock (fun () ->
                t.px_partials <- t.px_partials + 1);
            let rec pieces off =
              if off < n then begin
                let k =
                  min (n - off)
                    (1 + Mutex.protect t.px_lock (fun () ->
                             Random.State.int t.px_rng 3))
                in
                write_all dst buf off k;
                Thread.delay 0.0005;
                pieces (off + k)
              end
            in
            pieces 0
          end
          else write_all dst buf 0 n
        with
        | () -> loop ()
        | exception Unix.Unix_error (_, _, _) -> close_pair ()
      end
  in
  loop ()

let proxy_start ~upstream ~socket ~seed ~chaos =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists socket then (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket);
  Unix.listen listener 64;
  let t =
    { px_socket = socket;
      px_listener = listener;
      px_chaos = chaos;
      px_upstream = upstream;
      px_lock = Mutex.create ();
      px_rng = Random.State.make [| seed; 0xc4a05 |];
      px_stalls = 0;
      px_partials = 0;
      px_disconnects = 0;
      px_conns = [];
      px_threads = [];
      px_stop = false }
  in
  let rec accept_loop () =
    match Unix.accept t.px_listener with
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> accept_loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | exception Unix.Unix_error (_, _, _) -> () (* listener closed: stop *)
    | client, _ -> (
      match
        let up = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect up (Unix.ADDR_UNIX t.px_upstream)
         with e -> close_quiet up; raise e);
        up
      with
      | exception Unix.Unix_error (_, _, _) ->
        (* daemon down (e.g. mid kill -9): drop the client, who retries *)
        close_quiet client;
        accept_loop ()
      | up ->
        px_register t client;
        px_register t up;
        px_thread t (Thread.create (fun () -> forward t client up) ());
        px_thread t (Thread.create (fun () -> forward t up client) ());
        accept_loop ())
  in
  px_thread t (Thread.create accept_loop ());
  t

let proxy_counts t =
  Mutex.protect t.px_lock (fun () ->
      (t.px_stalls, t.px_partials, t.px_disconnects))

let proxy_stop t =
  let threads =
    Mutex.protect t.px_lock (fun () ->
        t.px_stop <- true;
        t.px_threads)
  in
  close_quiet t.px_listener;
  Mutex.protect t.px_lock (fun () -> t.px_conns) |> List.iter close_quiet;
  List.iter Thread.join threads;
  try Unix.unlink t.px_socket with Unix.Unix_error _ | Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Driving a trace                                                     *)
(* ------------------------------------------------------------------ *)

type outcome = {
  o_completed : int;
  o_retries : int;
  o_shed : int;
  o_deadline_exceeded : int;
  o_errors : (string * int) list;
  o_stats : Stats.t;
}

let drive ?stats ~socket ~seed ~clients trace =
  let clients = max 1 clients in
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let lock = Mutex.create () in
  let completed = ref 0 and shed = ref 0 and dl = ref 0 and retries = ref 0 in
  let errors : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let per_client = Array.make clients [] in
  List.iter
    (fun ev ->
      let i = ev.ev_client mod clients in
      per_client.(i) <- ev :: per_client.(i))
    trace;
  Array.iteri (fun i l -> per_client.(i) <- List.rev l) per_client;
  let run_client i () =
    let h = Client.connect_retry ~socket ~seed:(seed + (i * 7919)) () in
    Fun.protect
      ~finally:(fun () ->
        Mutex.protect lock (fun () -> retries := !retries + Client.retries h);
        Client.close_retry h)
      (fun () ->
        List.iter
          (fun ev ->
            let op =
              Wire.opcode_string (Proto.opcode_of_request ev.ev_req)
            in
            let t0 = Unix.gettimeofday () in
            let r = Client.rpc_retry h ev.ev_req in
            Stats.record stats ~op ~seconds:(Unix.gettimeofday () -. t0);
            Mutex.protect lock (fun () ->
                match r with
                | Ok _ -> incr completed
                | Error e ->
                  (match Hashtbl.find_opt errors e.Proto.e_code with
                  | Some n -> incr n
                  | None -> Hashtbl.add errors e.Proto.e_code (ref 1));
                  if String.equal e.Proto.e_code "overloaded" then incr shed;
                  if String.equal e.Proto.e_code "deadline_exceeded" then
                    incr dl))
          per_client.(i))
  in
  let threads = Array.init clients (fun i -> Thread.create (run_client i) ()) in
  Array.iter Thread.join threads;
  { o_completed = !completed;
    o_retries = !retries;
    o_shed = !shed;
    o_deadline_exceeded = !dl;
    o_errors =
      Hashtbl.fold (fun c n acc -> (c, !n) :: acc) errors []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    o_stats = stats }

(* ------------------------------------------------------------------ *)
(* The report                                                          *)
(* ------------------------------------------------------------------ *)

type phase = { ph_duration_ms : float; ph_disk_hits : int; ph_solves : int }

let phase_of_stats ~duration_ms j =
  match Json.member "solves" j with
  | Some (Json.Int solves) ->
    let hits =
      match Json.member "diskcache" j with
      | Some (Json.Obj _ as dc) -> (
        match Json.member "hits" dc with Some (Json.Int h) -> h | _ -> 0)
      | _ -> 0
    in
    Some { ph_duration_ms = duration_ms; ph_disk_hits = hits; ph_solves = solves }
  | _ -> None

let report_json ~seed ~clients ~requests outcome ~chaos:(stalls, partials, dx)
    ~cold ~warm =
  let ops =
    match Json.member "ops" (Stats.to_json outcome.o_stats) with
    | Some o -> o
    | None -> Json.Obj []
  in
  let phase = function
    | None -> Json.Null
    | Some p ->
      Json.Obj
        [ ("duration_ms", Json.Float p.ph_duration_ms);
          ("disk_hits", Json.Int p.ph_disk_hits);
          ("solves", Json.Int p.ph_solves) ]
  in
  Json.Obj
    [ ("schema", Json.Str "server-load-report/1");
      ("seed", Json.Int seed);
      ("clients", Json.Int clients);
      ("requests", Json.Int requests);
      ("completed", Json.Int outcome.o_completed);
      ("retries", Json.Int outcome.o_retries);
      ("shed", Json.Int outcome.o_shed);
      ("deadline_exceeded", Json.Int outcome.o_deadline_exceeded);
      ( "errors",
        Json.Obj (List.map (fun (c, n) -> (c, Json.Int n)) outcome.o_errors) );
      ( "chaos",
        Json.Obj
          [ ("stalls", Json.Int stalls);
            ("partial_writes", Json.Int partials);
            ("disconnects", Json.Int dx) ] );
      ("ops", ops);
      ("cold", phase cold);
      ("warm", phase warm) ]
