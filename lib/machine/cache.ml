type config = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
}

type t = {
  cfg : config;
  nsets : int;
  line_shift : int;
  (* tags.(set * assoc + way); -1 = empty.  Way 0 is most recently used. *)
  tags : int array;
  mutable n_accesses : int;
  mutable n_hits : int;
  mutable n_evictions : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

let create cfg =
  if not (is_pow2 cfg.line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  if cfg.assoc <= 0 then invalid_arg "Cache.create: associativity";
  let lines = cfg.size_bytes / cfg.line_bytes in
  if lines <= 0 || lines mod cfg.assoc <> 0 then
    invalid_arg "Cache.create: size/line/assoc mismatch";
  let nsets = lines / cfg.assoc in
  if not (is_pow2 nsets) then
    invalid_arg "Cache.create: number of sets must be a power of two";
  { cfg;
    nsets;
    line_shift = log2 cfg.line_bytes;
    tags = Array.make (nsets * cfg.assoc) (-1);
    n_accesses = 0;
    n_hits = 0;
    n_evictions = 0 }

let access c addr =
  c.n_accesses <- c.n_accesses + 1;
  let line = addr asr c.line_shift in
  let set = line land (c.nsets - 1) in
  let tag = line / c.nsets in
  let base = set * c.cfg.assoc in
  let assoc = c.cfg.assoc in
  (* find the way holding this tag *)
  let rec find w = if w >= assoc then -1 else if c.tags.(base + w) = tag then w else find (w + 1) in
  let w = find 0 in
  let hit = w >= 0 in
  (* move to front (LRU order is positional) *)
  let upto = if hit then w else assoc - 1 in
  if (not hit) && c.tags.(base + assoc - 1) <> -1 then
    c.n_evictions <- c.n_evictions + 1;
  for i = base + upto downto base + 1 do
    c.tags.(i) <- c.tags.(i - 1)
  done;
  c.tags.(base) <- tag;
  if hit then c.n_hits <- c.n_hits + 1;
  hit

let accesses c = c.n_accesses
let hits c = c.n_hits
let misses c = c.n_accesses - c.n_hits
let evictions c = c.n_evictions

let reset c =
  Array.fill c.tags 0 (Array.length c.tags) (-1);
  c.n_accesses <- 0;
  c.n_hits <- 0;
  c.n_evictions <- 0

let config c = c.cfg
