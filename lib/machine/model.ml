type level_spec = {
  l_name : string;
  l_cache : Cache.config;
  l_hit_cycles : float;
}

type t = {
  m_name : string;
  levels : level_spec list;
  mem_cycles : float;
  flop_cycles : float;
  clock_mhz : float;
  elem_bytes : int;
}

type quality = {
  q_name : string;
  overhead : float;
  forwarding : bool;
}

let sp2_like =
  { m_name = "sp2-like";
    levels =
      [ { l_name = "L1";
          l_cache = { Cache.size_bytes = 64 * 1024; line_bytes = 128; assoc = 4 };
          l_hit_cycles = 1.0 } ];
    mem_cycles = 50.0;
    flop_cycles = 0.5;
    clock_mhz = 66.0;
    elem_bytes = 8 }

(* Geometry scaled down so the locality effects show at simulation-friendly
   problem sizes; the L1:L2:memory cost ratios are what matter. *)
let two_level =
  { m_name = "two-level";
    levels =
      [ { l_name = "L1";
          l_cache = { Cache.size_bytes = 16 * 1024; line_bytes = 128; assoc = 4 };
          l_hit_cycles = 1.0 };
        { l_name = "L2";
          l_cache =
            { Cache.size_bytes = 256 * 1024; line_bytes = 128; assoc = 8 };
          l_hit_cycles = 8.0 } ];
    mem_cycles = 60.0;
    flop_cycles = 0.5;
    clock_mhz = 66.0;
    elem_bytes = 8 }

let untuned = { q_name = "untuned"; overhead = 2.0; forwarding = false }
let tuned = { q_name = "tuned"; overhead = 0.25; forwarding = true }

type level_stat = {
  s_name : string;
  s_accesses : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
}

type result = {
  r_flops : int;
  r_instances : int;
  r_accesses : int;
  r_levels : level_stat list;
  r_cycles : float;
  r_mflops : float;
}

(* An explicit simulator instance: the cache hierarchy plus the trace
   counters for one simulation.  Instances share nothing, so a work pool
   fanning simulation points across domains simply creates one per task;
   nothing in this module is global. *)
module Sim = struct
  type sim = {
    machine : t;
    quality : quality;
    caches : (level_spec * Cache.t) list;
    mutable mem_cycles : float;
    mutable accesses : int;
    mutable instances : int;
    mutable last_addr : int;
  }

  let create ~machine ~quality =
    { machine;
      quality;
      caches = List.map (fun l -> (l, Cache.create l.l_cache)) machine.levels;
      mem_cycles = 0.0;
      accesses = 0;
      instances = 0;
      last_addr = min_int }

  let reset sim =
    List.iter (fun (_, c) -> Cache.reset c) sim.caches;
    sim.mem_cycles <- 0.0;
    sim.accesses <- 0;
    sim.instances <- 0;
    sim.last_addr <- min_int

  let trace sim ~write ~addr =
    if write then sim.instances <- sim.instances + 1;
    if sim.quality.forwarding && addr = sim.last_addr then ()
    else begin
      sim.accesses <- sim.accesses + 1;
      sim.last_addr <- addr;
      let byte = addr * sim.machine.elem_bytes in
      let rec probe = function
        | [] -> sim.mem_cycles <- sim.mem_cycles +. sim.machine.mem_cycles
        | (spec, cache) :: rest ->
          if Cache.access cache byte then
            sim.mem_cycles <- sim.mem_cycles +. spec.l_hit_cycles
          else probe rest
      in
      probe sim.caches
    end

  let run sim ?layouts prog ~params ~init =
    reset sim;
    let _, flops =
      Exec.Verify.run_program ?layouts ~trace:(trace sim) prog ~params ~init
    in
    let cycles =
      (float_of_int flops *. sim.machine.flop_cycles)
      +. sim.mem_cycles
      +. (sim.quality.overhead *. float_of_int sim.instances)
    in
    let seconds = cycles /. (sim.machine.clock_mhz *. 1e6) in
    { r_flops = flops;
      r_instances = sim.instances;
      r_accesses = sim.accesses;
      r_levels =
        List.map
          (fun (spec, cache) ->
            { s_name = spec.l_name;
              s_accesses = Cache.accesses cache;
              s_hits = Cache.hits cache;
              s_misses = Cache.misses cache;
              s_evictions = Cache.evictions cache })
          sim.caches;
      r_cycles = cycles;
      r_mflops =
        (if cycles = 0.0 then 0.0 else float_of_int flops /. 1e6 /. seconds) }
end

let simulate ?layouts ~machine ~quality prog ~params ~init =
  Sim.run (Sim.create ~machine ~quality) ?layouts prog ~params ~init

let pp_result fmt r =
  Format.fprintf fmt "flops=%d insts=%d accesses=%d cycles=%.0f mflops=%.1f"
    r.r_flops r.r_instances r.r_accesses r.r_cycles r.r_mflops;
  List.iter
    (fun s ->
      Format.fprintf fmt " %s[acc=%d hit=%d miss=%d evict=%d]" s.s_name
        s.s_accesses s.s_hits s.s_misses s.s_evictions)
    r.r_levels
