type level_spec = {
  l_name : string;
  l_cache : Cache.config;
  l_hit_cycles : float;
}

type t = {
  m_name : string;
  levels : level_spec list;
  mem_cycles : float;
  flop_cycles : float;
  clock_mhz : float;
  elem_bytes : int;
}

type quality = {
  q_name : string;
  overhead : float;
  forwarding : bool;
}

let sp2_like =
  { m_name = "sp2-like";
    levels =
      [ { l_name = "L1";
          l_cache = { Cache.size_bytes = 64 * 1024; line_bytes = 128; assoc = 4 };
          l_hit_cycles = 1.0 } ];
    mem_cycles = 50.0;
    flop_cycles = 0.5;
    clock_mhz = 66.0;
    elem_bytes = 8 }

(* Geometry scaled down so the locality effects show at simulation-friendly
   problem sizes; the L1:L2:memory cost ratios are what matter. *)
let two_level =
  { m_name = "two-level";
    levels =
      [ { l_name = "L1";
          l_cache = { Cache.size_bytes = 16 * 1024; line_bytes = 128; assoc = 4 };
          l_hit_cycles = 1.0 };
        { l_name = "L2";
          l_cache =
            { Cache.size_bytes = 256 * 1024; line_bytes = 128; assoc = 8 };
          l_hit_cycles = 8.0 } ];
    mem_cycles = 60.0;
    flop_cycles = 0.5;
    clock_mhz = 66.0;
    elem_bytes = 8 }

(* A deliberately small, fully-associative cache (128 single-element
   lines) with sp2-like cost ratios: capacity effects — and with them the
   analytic windowed lower bound — show up at problem sizes small enough
   for quick simulation and CI.  The geometry is chosen to match the
   ideal cache the {!Bounds} analysis models: full associativity (no set
   conflicts inflating simulated misses above any capacity argument) and
   one element per line (no spatial-locality slack between the
   line-granular simulator and the element-granular data-volume
   argument).  On this machine the bounds are tight enough that
   lower-bound pruning actually fires. *)
let small_cache =
  { m_name = "small-cache";
    levels =
      [ { l_name = "L1";
          l_cache = { Cache.size_bytes = 1024; line_bytes = 8; assoc = 128 };
          l_hit_cycles = 1.0 } ];
    mem_cycles = 50.0;
    flop_cycles = 0.5;
    clock_mhz = 66.0;
    elem_bytes = 8 }

let untuned = { q_name = "untuned"; overhead = 2.0; forwarding = false }
let tuned = { q_name = "tuned"; overhead = 0.25; forwarding = true }

type level_stat = {
  s_name : string;
  s_accesses : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
}

type result = {
  r_flops : int;
  r_instances : int;
  r_accesses : int;
  r_levels : level_stat list;
  r_cycles : float;
  r_mflops : float;
}

(* An explicit simulator instance: the cache hierarchy plus the trace
   counters for one simulation.  Instances share nothing, so a work pool
   fanning simulation points across domains simply creates one per task;
   nothing in this module is global.

   Cache levels live in flat arrays (fastest first) and the per-access
   work is pure counter updates: cycle costs are folded in once, in
   closed form, when the result is built.  Every cost constant is an
   integer or dyadic rational and every counter stays far below 2^53, so
   the closed form is bit-identical to the old per-access float
   accumulation. *)
module Sim = struct
  type sim = {
    machine : t;
    quality : quality;
    names : string array;
    caches : Cache.t array;
    hit_cycles : float array;
    mutable accesses : int;
    mutable instances : int;
    mutable last_addr : int;
  }

  let create ~machine ~quality =
    let levels = Array.of_list machine.levels in
    { machine;
      quality;
      names = Array.map (fun l -> l.l_name) levels;
      caches = Array.map (fun l -> Cache.create l.l_cache) levels;
      hit_cycles = Array.map (fun l -> l.l_hit_cycles) levels;
      accesses = 0;
      instances = 0;
      last_addr = min_int }

  let reset sim =
    Array.iter Cache.reset sim.caches;
    sim.accesses <- 0;
    sim.instances <- 0;
    sim.last_addr <- min_int

  (* One access through the hierarchy: level l+1 is probed only when
     level l misses.  [forwarding] quality drops back-to-back accesses to
     the same element before they reach the hierarchy. *)
  let access sim ~write ~addr =
    if write then sim.instances <- sim.instances + 1;
    if sim.quality.forwarding && addr = sim.last_addr then ()
    else begin
      sim.accesses <- sim.accesses + 1;
      sim.last_addr <- addr;
      let byte = addr * sim.machine.elem_bytes in
      let caches = sim.caches in
      let n = Array.length caches in
      let rec probe i =
        if i < n && not (Cache.access (Array.unsafe_get caches i) byte) then
          probe (i + 1)
      in
      probe 0
    end

  (* Replay one recorded chunk: the tight loop of the trace pipeline. *)
  let consume_chunk sim buf len =
    for i = 0 to len - 1 do
      let w = Array.unsafe_get buf i in
      access sim ~write:(w land 1 = 1) ~addr:(w asr 1)
    done

  let consumer sim : Trace.consumer = consume_chunk sim

  (* Accesses that missed every level and went to memory. *)
  let mem_misses sim =
    let n = Array.length sim.caches in
    if n = 0 then sim.accesses else Cache.misses sim.caches.(n - 1)

  (* Closed-form cycle accounting from the counters:
       cycles = flops * flop_cycles
              + sum_level hits(level) * hit_cycles(level)
              + memory misses * mem_cycles
              + instances * overhead *)
  let result sim ~flops =
    let hier = ref 0.0 in
    Array.iteri
      (fun i c ->
        hier := !hier +. (float_of_int (Cache.hits c) *. sim.hit_cycles.(i)))
      sim.caches;
    let hier =
      !hier +. (float_of_int (mem_misses sim) *. sim.machine.mem_cycles)
    in
    let cycles =
      (float_of_int flops *. sim.machine.flop_cycles)
      +. hier
      +. (sim.quality.overhead *. float_of_int sim.instances)
    in
    let seconds = cycles /. (sim.machine.clock_mhz *. 1e6) in
    { r_flops = flops;
      r_instances = sim.instances;
      r_accesses = sim.accesses;
      r_levels =
        Array.to_list
          (Array.mapi
             (fun i c ->
               { s_name = sim.names.(i);
                 s_accesses = Cache.accesses c;
                 s_hits = Cache.hits c;
                 s_misses = Cache.misses c;
                 s_evictions = Cache.evictions c })
             sim.caches);
      r_cycles = cycles;
      r_mflops =
        (if cycles = 0.0 then 0.0 else float_of_int flops /. 1e6 /. seconds) }

  (* The legacy direct path: execute the interpreter and feed every access
     straight into this instance.  Kept alive behind [Trace.Callback] as
     the differential baseline for the record/replay pipeline. *)
  let run sim ?layouts prog ~params ~init =
    reset sim;
    let _, flops =
      Exec.Verify.run_program ?layouts
        ~sink:(Trace.Callback (fun ~write ~addr -> access sim ~write ~addr))
        prog ~params ~init
    in
    result sim ~flops
end

(* ------------------------------------------------------------------ *)
(* Record once, replay many                                            *)
(* ------------------------------------------------------------------ *)

(* The access stream of one interpreter execution.  Machine and quality
   play no part in recording (forwarding dedup happens at replay), so a
   single recording serves every (machine x quality) series of a figure
   point. *)
type recording = { rec_trace : Trace.t; rec_flops : int }

let record ?layouts ?chunk_words prog ~params ~init =
  let r = Trace.create_recorder ?chunk_words ~keep:true () in
  let _, flops =
    Exec.Verify.run_program ?layouts ~sink:(Trace.Record r) prog ~params ~init
  in
  { rec_trace = Trace.finish r; rec_flops = flops }

let consume ~machine ~quality recording =
  let sim = Sim.create ~machine ~quality in
  Trace.iter_chunks recording.rec_trace (Sim.consume_chunk sim);
  Sim.result sim ~flops:recording.rec_flops

(* The streaming tee: one execution drives every variant with O(chunk)
   memory, never storing the trace.  For unbounded problem sizes. *)
let stream ?layouts ?chunk_words prog ~params ~init variants =
  let sims =
    List.map (fun (machine, quality) -> Sim.create ~machine ~quality) variants
  in
  let r =
    Trace.create_recorder ?chunk_words ~keep:false
      ~consumers:(List.map Sim.consumer sims) ()
  in
  let _, flops =
    Exec.Verify.run_program ?layouts ~sink:(Trace.Record r) prog ~params ~init
  in
  ignore (Trace.finish r : Trace.t);
  List.map (fun sim -> Sim.result sim ~flops) sims

(* ------------------------------------------------------------------ *)
(* Shared-L2 SMP replay                                                 *)
(* ------------------------------------------------------------------ *)

(* A P-core machine built from a uniprocessor spec: every core gets a
   private copy of the first cache level, the remaining levels (and
   memory) are shared.  Replay consumes the per-task traces of a
   scheduled parallel execution: within each wavefront group, tasks are
   assigned to virtual cores round-robin in task order and the per-core
   streams are interleaved in fixed quanta, core 0 first.  Everything —
   assignment, interleave, counters, closed-form cycles — is a pure
   function of (traces, groups, cores), so the result is byte-identical
   no matter how many domains actually executed the blocks.  [cores] is
   a machine parameter, deliberately distinct from [--domains]. *)
module Smp = struct
  type smp_result = {
    p_cores : int;
    p_flops : int;
    p_accesses : int;
    p_instances : int;
    p_private : level_stat list;  (** first level, summed over cores *)
    p_shared : level_stat list;  (** the shared levels *)
    p_core_cycles : float list;
    p_cycles : float;  (** makespan: the slowest core *)
    p_mflops : float;
  }

  let quantum_words = 64

  type cursor = { mutable chunks : (int array * int) list; mutable pos : int }

  let consume ~machine ~quality ~cores ~groups ~parts ~task_flops =
    if cores <= 0 then invalid_arg "Smp.consume: cores";
    let private_spec, shared_specs =
      match machine.levels with
      | [] -> invalid_arg "Smp.consume: machine has no cache levels"
      | l :: rest -> (l, Array.of_list rest)
    in
    let l1 = Array.init cores (fun _ -> Cache.create private_spec.l_cache) in
    let shared = Array.map (fun l -> Cache.create l.l_cache) shared_specs in
    let nshared = Array.length shared in
    let accesses = Array.make cores 0 in
    let instances = Array.make cores 0 in
    let last_addr = Array.make cores min_int in
    let shared_hits = Array.make_matrix cores nshared 0 in
    let mem_misses = Array.make cores 0 in
    let flops = Array.make cores 0 in
    let access core ~write ~addr =
      if write then instances.(core) <- instances.(core) + 1;
      if quality.forwarding && addr = last_addr.(core) then ()
      else begin
        accesses.(core) <- accesses.(core) + 1;
        last_addr.(core) <- addr;
        let byte = addr * machine.elem_bytes in
        if not (Cache.access l1.(core) byte) then begin
          let rec probe i =
            if i >= nshared then mem_misses.(core) <- mem_misses.(core) + 1
            else if Cache.access shared.(i) byte then
              shared_hits.(core).(i) <- shared_hits.(core).(i) + 1
            else probe (i + 1)
          in
          probe 0
        end
      end
    in
    (* one wavefront group: round-robin the cores' streams in fixed quanta *)
    let consume_group tasks =
      let streams = Array.make cores [] in
      List.iteri
        (fun pos t ->
          let core = pos mod cores in
          streams.(core) <- t :: streams.(core);
          flops.(core) <- flops.(core) + task_flops.(t))
        tasks;
      let cursors =
        Array.map
          (fun ts ->
            let chunks =
              List.concat_map
                (fun t ->
                  let acc = ref [] in
                  Trace.iter_chunks parts.(t) (fun buf len ->
                      acc := (buf, len) :: !acc);
                  List.rev !acc)
                (List.rev ts)
            in
            { chunks; pos = 0 })
          streams
      in
      let live = ref true in
      while !live do
        live := false;
        for core = 0 to cores - 1 do
          let cur = cursors.(core) in
          let budget = ref quantum_words in
          let continue_ = ref true in
          while !continue_ && !budget > 0 do
            match cur.chunks with
            | [] -> continue_ := false
            | (buf, len) :: rest ->
              if cur.pos >= len then begin
                cur.chunks <- rest;
                cur.pos <- 0
              end
              else begin
                let w = Array.unsafe_get buf cur.pos in
                cur.pos <- cur.pos + 1;
                decr budget;
                access core ~write:(w land 1 = 1) ~addr:(w asr 1)
              end
          done;
          if cur.chunks <> [] then live := true
        done
      done
    in
    List.iter consume_group groups;
    let core_cycles =
      List.init cores (fun c ->
          let hier =
            ref (float_of_int (Cache.hits l1.(c)) *. private_spec.l_hit_cycles)
          in
          Array.iteri
            (fun i l ->
              hier :=
                !hier +. (float_of_int shared_hits.(c).(i) *. l.l_hit_cycles))
            shared_specs;
          (float_of_int flops.(c) *. machine.flop_cycles)
          +. !hier
          +. (float_of_int mem_misses.(c) *. machine.mem_cycles)
          +. (quality.overhead *. float_of_int instances.(c)))
    in
    let makespan = List.fold_left Float.max 0.0 core_cycles in
    let total_flops = Array.fold_left ( + ) 0 flops in
    let seconds = makespan /. (machine.clock_mhz *. 1e6) in
    let stat_of name c =
      { s_name = name;
        s_accesses = Cache.accesses c;
        s_hits = Cache.hits c;
        s_misses = Cache.misses c;
        s_evictions = Cache.evictions c }
    in
    let sum_l1 =
      Array.fold_left
        (fun acc c ->
          { acc with
            s_accesses = acc.s_accesses + Cache.accesses c;
            s_hits = acc.s_hits + Cache.hits c;
            s_misses = acc.s_misses + Cache.misses c;
            s_evictions = acc.s_evictions + Cache.evictions c })
        { s_name = private_spec.l_name;
          s_accesses = 0;
          s_hits = 0;
          s_misses = 0;
          s_evictions = 0 }
        l1
    in
    { p_cores = cores;
      p_flops = total_flops;
      p_accesses = Array.fold_left ( + ) 0 accesses;
      p_instances = Array.fold_left ( + ) 0 instances;
      p_private = [ sum_l1 ];
      p_shared =
        Array.to_list
          (Array.mapi (fun i c -> stat_of shared_specs.(i).l_name c) shared);
      p_core_cycles = core_cycles;
      p_cycles = makespan;
      p_mflops =
        (if makespan = 0.0 then 0.0
         else float_of_int total_flops /. 1e6 /. seconds) }

  let pp fmt r =
    Format.fprintf fmt
      "cores=%d flops=%d accesses=%d cycles=%.0f mflops=%.1f" r.p_cores
      r.p_flops r.p_accesses r.p_cycles r.p_mflops;
    List.iter
      (fun s ->
        Format.fprintf fmt " %s[acc=%d hit=%d miss=%d]" s.s_name s.s_accesses
          s.s_hits s.s_misses)
      (r.p_private @ r.p_shared)
end

type trace_mode = Callback | Replay

let trace_mode_string = function Callback -> "callback" | Replay -> "replay"

let simulate ?layouts ~machine ~quality prog ~params ~init =
  Sim.run (Sim.create ~machine ~quality) ?layouts prog ~params ~init

let pp_result fmt r =
  Format.fprintf fmt "flops=%d insts=%d accesses=%d cycles=%.0f mflops=%.1f"
    r.r_flops r.r_instances r.r_accesses r.r_cycles r.r_mflops;
  List.iter
    (fun s ->
      Format.fprintf fmt " %s[acc=%d hit=%d miss=%d evict=%d]" s.s_name
        s.s_accesses s.s_hits s.s_misses s.s_evictions)
    r.r_levels
