type level_spec = {
  l_name : string;
  l_cache : Cache.config;
  l_hit_cycles : float;
}

type t = {
  m_name : string;
  levels : level_spec list;
  mem_cycles : float;
  flop_cycles : float;
  clock_mhz : float;
  elem_bytes : int;
}

type quality = {
  q_name : string;
  overhead : float;
  forwarding : bool;
}

let sp2_like =
  { m_name = "sp2-like";
    levels =
      [ { l_name = "L1";
          l_cache = { Cache.size_bytes = 64 * 1024; line_bytes = 128; assoc = 4 };
          l_hit_cycles = 1.0 } ];
    mem_cycles = 50.0;
    flop_cycles = 0.5;
    clock_mhz = 66.0;
    elem_bytes = 8 }

(* Geometry scaled down so the locality effects show at simulation-friendly
   problem sizes; the L1:L2:memory cost ratios are what matter. *)
let two_level =
  { m_name = "two-level";
    levels =
      [ { l_name = "L1";
          l_cache = { Cache.size_bytes = 16 * 1024; line_bytes = 128; assoc = 4 };
          l_hit_cycles = 1.0 };
        { l_name = "L2";
          l_cache =
            { Cache.size_bytes = 256 * 1024; line_bytes = 128; assoc = 8 };
          l_hit_cycles = 8.0 } ];
    mem_cycles = 60.0;
    flop_cycles = 0.5;
    clock_mhz = 66.0;
    elem_bytes = 8 }

let untuned = { q_name = "untuned"; overhead = 2.0; forwarding = false }
let tuned = { q_name = "tuned"; overhead = 0.25; forwarding = true }

type level_stat = {
  s_name : string;
  s_accesses : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
}

type result = {
  r_flops : int;
  r_instances : int;
  r_accesses : int;
  r_levels : level_stat list;
  r_cycles : float;
  r_mflops : float;
}

(* An explicit simulator instance: the cache hierarchy plus the trace
   counters for one simulation.  Instances share nothing, so a work pool
   fanning simulation points across domains simply creates one per task;
   nothing in this module is global.

   Cache levels live in flat arrays (fastest first) and the per-access
   work is pure counter updates: cycle costs are folded in once, in
   closed form, when the result is built.  Every cost constant is an
   integer or dyadic rational and every counter stays far below 2^53, so
   the closed form is bit-identical to the old per-access float
   accumulation. *)
module Sim = struct
  type sim = {
    machine : t;
    quality : quality;
    names : string array;
    caches : Cache.t array;
    hit_cycles : float array;
    mutable accesses : int;
    mutable instances : int;
    mutable last_addr : int;
  }

  let create ~machine ~quality =
    let levels = Array.of_list machine.levels in
    { machine;
      quality;
      names = Array.map (fun l -> l.l_name) levels;
      caches = Array.map (fun l -> Cache.create l.l_cache) levels;
      hit_cycles = Array.map (fun l -> l.l_hit_cycles) levels;
      accesses = 0;
      instances = 0;
      last_addr = min_int }

  let reset sim =
    Array.iter Cache.reset sim.caches;
    sim.accesses <- 0;
    sim.instances <- 0;
    sim.last_addr <- min_int

  (* One access through the hierarchy: level l+1 is probed only when
     level l misses.  [forwarding] quality drops back-to-back accesses to
     the same element before they reach the hierarchy. *)
  let access sim ~write ~addr =
    if write then sim.instances <- sim.instances + 1;
    if sim.quality.forwarding && addr = sim.last_addr then ()
    else begin
      sim.accesses <- sim.accesses + 1;
      sim.last_addr <- addr;
      let byte = addr * sim.machine.elem_bytes in
      let caches = sim.caches in
      let n = Array.length caches in
      let rec probe i =
        if i < n && not (Cache.access (Array.unsafe_get caches i) byte) then
          probe (i + 1)
      in
      probe 0
    end

  (* Replay one recorded chunk: the tight loop of the trace pipeline. *)
  let consume_chunk sim buf len =
    for i = 0 to len - 1 do
      let w = Array.unsafe_get buf i in
      access sim ~write:(w land 1 = 1) ~addr:(w asr 1)
    done

  let consumer sim : Trace.consumer = consume_chunk sim

  (* Accesses that missed every level and went to memory. *)
  let mem_misses sim =
    let n = Array.length sim.caches in
    if n = 0 then sim.accesses else Cache.misses sim.caches.(n - 1)

  (* Closed-form cycle accounting from the counters:
       cycles = flops * flop_cycles
              + sum_level hits(level) * hit_cycles(level)
              + memory misses * mem_cycles
              + instances * overhead *)
  let result sim ~flops =
    let hier = ref 0.0 in
    Array.iteri
      (fun i c ->
        hier := !hier +. (float_of_int (Cache.hits c) *. sim.hit_cycles.(i)))
      sim.caches;
    let hier =
      !hier +. (float_of_int (mem_misses sim) *. sim.machine.mem_cycles)
    in
    let cycles =
      (float_of_int flops *. sim.machine.flop_cycles)
      +. hier
      +. (sim.quality.overhead *. float_of_int sim.instances)
    in
    let seconds = cycles /. (sim.machine.clock_mhz *. 1e6) in
    { r_flops = flops;
      r_instances = sim.instances;
      r_accesses = sim.accesses;
      r_levels =
        Array.to_list
          (Array.mapi
             (fun i c ->
               { s_name = sim.names.(i);
                 s_accesses = Cache.accesses c;
                 s_hits = Cache.hits c;
                 s_misses = Cache.misses c;
                 s_evictions = Cache.evictions c })
             sim.caches);
      r_cycles = cycles;
      r_mflops =
        (if cycles = 0.0 then 0.0 else float_of_int flops /. 1e6 /. seconds) }

  (* The legacy direct path: execute the interpreter and feed every access
     straight into this instance.  Kept alive behind [Trace.Callback] as
     the differential baseline for the record/replay pipeline. *)
  let run sim ?layouts prog ~params ~init =
    reset sim;
    let _, flops =
      Exec.Verify.run_program ?layouts
        ~sink:(Trace.Callback (fun ~write ~addr -> access sim ~write ~addr))
        prog ~params ~init
    in
    result sim ~flops
end

(* ------------------------------------------------------------------ *)
(* Record once, replay many                                            *)
(* ------------------------------------------------------------------ *)

(* The access stream of one interpreter execution.  Machine and quality
   play no part in recording (forwarding dedup happens at replay), so a
   single recording serves every (machine x quality) series of a figure
   point. *)
type recording = { rec_trace : Trace.t; rec_flops : int }

let record ?layouts ?chunk_words prog ~params ~init =
  let r = Trace.create_recorder ?chunk_words ~keep:true () in
  let _, flops =
    Exec.Verify.run_program ?layouts ~sink:(Trace.Record r) prog ~params ~init
  in
  { rec_trace = Trace.finish r; rec_flops = flops }

let consume ~machine ~quality recording =
  let sim = Sim.create ~machine ~quality in
  Trace.iter_chunks recording.rec_trace (Sim.consume_chunk sim);
  Sim.result sim ~flops:recording.rec_flops

(* The streaming tee: one execution drives every variant with O(chunk)
   memory, never storing the trace.  For unbounded problem sizes. *)
let stream ?layouts ?chunk_words prog ~params ~init variants =
  let sims =
    List.map (fun (machine, quality) -> Sim.create ~machine ~quality) variants
  in
  let r =
    Trace.create_recorder ?chunk_words ~keep:false
      ~consumers:(List.map Sim.consumer sims) ()
  in
  let _, flops =
    Exec.Verify.run_program ?layouts ~sink:(Trace.Record r) prog ~params ~init
  in
  ignore (Trace.finish r : Trace.t);
  List.map (fun sim -> Sim.result sim ~flops) sims

type trace_mode = Callback | Replay

let trace_mode_string = function Callback -> "callback" | Replay -> "replay"

let simulate ?layouts ~machine ~quality prog ~params ~init =
  Sim.run (Sim.create ~machine ~quality) ?layouts prog ~params ~init

let pp_result fmt r =
  Format.fprintf fmt "flops=%d insts=%d accesses=%d cycles=%.0f mflops=%.1f"
    r.r_flops r.r_instances r.r_accesses r.r_cycles r.r_mflops;
  List.iter
    (fun s ->
      Format.fprintf fmt " %s[acc=%d hit=%d miss=%d evict=%d]" s.s_name
        s.s_accesses s.s_hits s.s_misses s.s_evictions)
    r.r_levels
