(** A single set-associative LRU cache level. *)

type config = {
  size_bytes : int;
  line_bytes : int;  (** power of two *)
  assoc : int;
}

type t

val create : config -> t
(** @raise Invalid_argument on inconsistent geometry. *)

val access : t -> int -> bool
(** [access c addr] probes (and fills) the cache with the byte address;
    returns [true] on hit. *)

val accesses : t -> int
val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Misses that displaced a resident line (capacity/conflict pressure, as
    opposed to cold fills into empty ways). *)

val reset : t -> unit
val config : t -> config
