(** The machine model standing in for the paper's IBM SP-2 thin node.

    Programs are interpreted, their element accesses are fed through a
    multi-level cache simulator, and a simple cycle model converts hits,
    misses and flops into a MFlops-style figure of merit.  Two code-quality
    knobs reproduce the distinctions the paper draws between compiler
    generated inner loops and hand-tuned BLAS:

    - [forwarding]: back-to-back accesses to the same element cost nothing
      (register allocation / scalar replacement of accumulators).
    - [overhead]: extra cycles charged per statement instance (address
      arithmetic and loop overhead of poorly optimized inner loops).

    The paper's series map to quality presets: the input and
    compiler-generated codes run with [untuned] quality (the xlf back end
    "does not perform necessary optimizations like scalar replacement"),
    the DGEMM-replaced and LAPACK series with [tuned] quality. *)

type level_spec = {
  l_name : string;
  l_cache : Cache.config;
  l_hit_cycles : float;
}

type t = {
  m_name : string;
  levels : level_spec list;  (** fastest first *)
  mem_cycles : float;        (** cost of missing every level *)
  flop_cycles : float;
  clock_mhz : float;
  elem_bytes : int;
}

type quality = {
  q_name : string;
  overhead : float;
  forwarding : bool;
}

val sp2_like : t
(** One 64 KB 4-way data cache with 128-byte lines in front of memory —
    the thin-node POWER2 shape used in Section 7. *)

val two_level : t
(** Adds a 1 MB 8-way second level: the "deeper memory hierarchy" of
    Section 6.3 / Figure 10. *)

val small_cache : t
(** A 4 KB single-level cache (32 lines) with sp2-like cost ratios:
    capacity effects — and with them the analytic communication lower
    bounds of {!Bounds} — become visible at problem sizes small enough
    for quick simulation, which is what the lower-bound pruning smoke
    tests run against. *)

val untuned : quality
val tuned : quality

type level_stat = {
  s_name : string;
  s_accesses : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
}

type result = {
  r_flops : int;
  r_instances : int;
  r_accesses : int;
  r_levels : level_stat list;
  r_cycles : float;
  r_mflops : float;
}

(** An explicit simulator instance: one cache hierarchy plus trace
    counters.  Instances share no state with each other or with anything
    global, so parallel experiment runners create one per task (worker)
    and never hand one across domains.

    Per-access work is pure counter updates against flat cache arrays;
    cycle costs are folded in once, in closed form, when {!Sim.result} is
    built: cycles = flops x flop_cycles + Σ level hits x hit_cycles +
    memory misses x mem_cycles + instances x overhead.  Every cost
    constant is integer or dyadic, so this is bit-identical to per-access
    accumulation. *)
module Sim : sig
  type sim

  val create : machine:t -> quality:quality -> sim

  val reset : sim -> unit
  (** Cold caches, zeroed counters; [run] does this implicitly. *)

  val access : sim -> write:bool -> addr:int -> unit
  (** Feed one element access through the hierarchy (instance counting,
      forwarding dedup, cache probing). *)

  val consume_chunk : sim -> int array -> int -> unit
  (** Replay one chunk of packed trace words — the hot loop of the
      record/replay pipeline. *)

  val consumer : sim -> Trace.consumer
  (** [consume_chunk] as a registrable streaming consumer. *)

  val result : sim -> flops:int -> result
  (** Closed-form cycle accounting over the counters accumulated so far. *)

  val run :
    sim ->
    ?layouts:(string * Exec.Store.layout) list ->
    Loopir.Ast.program ->
    params:(string * int) list ->
    init:(string -> int array -> float) ->
    result
  (** The direct (callback) path: interpret the program against a fresh
      store, feeding every element access straight through this instance's
      cache hierarchy.  Counters are reset on entry, so each [run] is an
      independent cold-cache simulation.  Kept alive as the differential
      baseline for {!record}/{!consume}. *)
end

(** {2 Record once, replay many} *)

type recording = { rec_trace : Trace.t; rec_flops : int }
(** The access stream of one interpreter execution.  Recording does not
    depend on machine or quality (forwarding dedup happens at replay), so
    one recording serves every (machine x quality) series. *)

val record :
  ?layouts:(string * Exec.Store.layout) list ->
  ?chunk_words:int ->
  Loopir.Ast.program ->
  params:(string * int) list ->
  init:(string -> int array -> float) ->
  recording
(** Execute the program once, capturing the full access trace. *)

val consume : machine:t -> quality:quality -> recording -> result
(** Replay a recording into a fresh simulator instance.  For any machine
    and quality, [consume ~machine ~quality (record p)] produces exactly
    the same result as [simulate ~machine ~quality p]. *)

val stream :
  ?layouts:(string * Exec.Store.layout) list ->
  ?chunk_words:int ->
  Loopir.Ast.program ->
  params:(string * int) list ->
  init:(string -> int array -> float) ->
  (t * quality) list ->
  result list
(** The streaming tee: one execution drives every (machine, quality)
    variant with O(chunk) memory, never storing the trace.  Results come
    back in variant order. *)

(** A P-core machine built from a uniprocessor spec: every core gets a
    private copy of the first cache level; the remaining levels and memory
    are shared.  Replay consumes the per-task traces of a scheduled
    parallel execution ({!Sched} in lib/sched): within each wavefront
    group, tasks go to virtual cores round-robin in task order and the
    per-core streams are interleaved in fixed quanta, core 0 first.  The
    whole computation is a pure function of (traces, groups, cores), so
    results are byte-identical regardless of the [--domains] that actually
    executed the blocks — [cores] is a machine parameter, not an execution
    parameter. *)
module Smp : sig
  type smp_result = {
    p_cores : int;
    p_flops : int;
    p_accesses : int;
    p_instances : int;
    p_private : level_stat list;  (** first level, summed over cores *)
    p_shared : level_stat list;  (** the shared levels *)
    p_core_cycles : float list;  (** closed-form cycles per core *)
    p_cycles : float;  (** makespan: the slowest core *)
    p_mflops : float;  (** total flops over the makespan *)
  }

  val quantum_words : int
  (** Words each core's stream advances per interleave turn. *)

  val consume :
    machine:t ->
    quality:quality ->
    cores:int ->
    groups:int list list ->
    parts:Trace.t array ->
    task_flops:int array ->
    smp_result
  (** [groups] are the scheduler's wavefront levels (task ids, in task
      order); [parts.(t)] / [task_flops.(t)] the per-task trace and flop
      count.  @raise Invalid_argument on [cores <= 0] or a machine without
      cache levels. *)

  val pp : Format.formatter -> smp_result -> unit
end

(** How the experiment harness drives the simulator: [Replay] records each
    program variant once and replays it per series; [Callback] is the
    legacy path that re-executes the interpreter per series (kept for
    differential checks). *)
type trace_mode = Callback | Replay

val trace_mode_string : trace_mode -> string

val simulate :
  ?layouts:(string * Exec.Store.layout) list ->
  machine:t ->
  quality:quality ->
  Loopir.Ast.program ->
  params:(string * int) list ->
  init:(string -> int array -> float) ->
  result
(** [simulate] = [Sim.run (Sim.create ~machine ~quality)]: a one-shot
    simulation on a throwaway instance. *)

val pp_result : Format.formatter -> result -> unit
