(** The machine model standing in for the paper's IBM SP-2 thin node.

    Programs are interpreted, their element accesses are fed through a
    multi-level cache simulator, and a simple cycle model converts hits,
    misses and flops into a MFlops-style figure of merit.  Two code-quality
    knobs reproduce the distinctions the paper draws between compiler
    generated inner loops and hand-tuned BLAS:

    - [forwarding]: back-to-back accesses to the same element cost nothing
      (register allocation / scalar replacement of accumulators).
    - [overhead]: extra cycles charged per statement instance (address
      arithmetic and loop overhead of poorly optimized inner loops).

    The paper's series map to quality presets: the input and
    compiler-generated codes run with [untuned] quality (the xlf back end
    "does not perform necessary optimizations like scalar replacement"),
    the DGEMM-replaced and LAPACK series with [tuned] quality. *)

type level_spec = {
  l_name : string;
  l_cache : Cache.config;
  l_hit_cycles : float;
}

type t = {
  m_name : string;
  levels : level_spec list;  (** fastest first *)
  mem_cycles : float;        (** cost of missing every level *)
  flop_cycles : float;
  clock_mhz : float;
  elem_bytes : int;
}

type quality = {
  q_name : string;
  overhead : float;
  forwarding : bool;
}

val sp2_like : t
(** One 64 KB 4-way data cache with 128-byte lines in front of memory —
    the thin-node POWER2 shape used in Section 7. *)

val two_level : t
(** Adds a 1 MB 8-way second level: the "deeper memory hierarchy" of
    Section 6.3 / Figure 10. *)

val untuned : quality
val tuned : quality

type level_stat = {
  s_name : string;
  s_accesses : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
}

type result = {
  r_flops : int;
  r_instances : int;
  r_accesses : int;
  r_levels : level_stat list;
  r_cycles : float;
  r_mflops : float;
}

(** An explicit simulator instance: one cache hierarchy plus trace
    counters.  Instances share no state with each other or with anything
    global, so parallel experiment runners create one per task (worker)
    and never hand one across domains. *)
module Sim : sig
  type sim

  val create : machine:t -> quality:quality -> sim

  val reset : sim -> unit
  (** Cold caches, zeroed counters; [run] does this implicitly. *)

  val run :
    sim ->
    ?layouts:(string * Exec.Store.layout) list ->
    Loopir.Ast.program ->
    params:(string * int) list ->
    init:(string -> int array -> float) ->
    result
  (** Interpret the program against a fresh store, feeding every element
      access through this instance's cache hierarchy.  Counters are reset
      on entry, so each [run] is an independent cold-cache simulation. *)
end

val simulate :
  ?layouts:(string * Exec.Store.layout) list ->
  machine:t ->
  quality:quality ->
  Loopir.Ast.program ->
  params:(string * int) list ->
  init:(string -> int array -> float) ->
  result
(** [simulate] = [Sim.run (Sim.create ~machine ~quality)]: a one-shot
    simulation on a throwaway instance. *)

val pp_result : Format.formatter -> result -> unit
