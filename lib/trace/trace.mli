(** Chunked memory-access traces: record one interpreter execution, replay
    it against many memory-hierarchy configurations.

    An access is packed into one OCaml int: the element address shifted
    left by one, with the write bit in the low bit.  Accesses are buffered
    into fixed-size [int array] chunks.  A {!recorder} works in two modes,
    freely combined:

    - {b store} ([keep:true]): finished chunks are retained, and {!finish}
      returns a {!t} that can be replayed any number of times (the
      record-once / replay-many pipeline of the experiment harness).
    - {b tee} (registered {!consumer}s): each chunk is broadcast to every
      consumer the moment it fills, and the buffer is then reused, so an
      arbitrarily long execution can drive any number of simulators in one
      pass with O(chunk) memory.

    The recorder is single-domain mutable state; a finished {!t} is
    immutable and may be shared read-only across domains. *)

type consumer = int array -> int -> unit
(** [consumer buf len] receives one chunk: packed words [buf.(0 .. len-1)].
    The array is reused after the call returns — consumers must not retain
    it. *)

(** {2 Packed words} *)

val word : write:bool -> addr:int -> int
(** [(addr lsl 1) lor write-bit].  Addresses must be non-negative. *)

val word_addr : int -> int
val word_is_write : int -> bool

(** {2 Recording} *)

type recorder

val default_chunk_words : int

val create_recorder :
  ?chunk_words:int -> ?keep:bool -> ?consumers:consumer list -> unit ->
  recorder
(** [keep] defaults to [true] (store chunks for replay).  [chunk_words]
    defaults to {!default_chunk_words}.  Consumers registered here see the
    whole stream. *)

val add_consumer : recorder -> consumer -> unit
(** Register a streaming consumer.  It only sees chunks flushed after
    registration, so register before emitting anything. *)

val emit : recorder -> write:bool -> addr:int -> unit
(** Append one access, flushing the current chunk to all consumers when it
    is full. *)

val emit_word : recorder -> int -> unit
(** Append one already-packed word (see {!word}). *)

type t
(** A finished, immutable, replayable trace. *)

val finish : recorder -> t
(** Flush the partial tail chunk to all consumers and seal the trace.  In
    pure tee mode ([keep:false]) the result stores no chunks;
    {!emitted} still reports the full stream length. *)

(** {2 Replay and accounting} *)

val length : t -> int
(** Number of stored (replayable) accesses. *)

val emitted : t -> int
(** Number of accesses that went through the recorder, stored or teed. *)

val num_chunks : t -> int
(** Chunks the recorder flushed in total (stored and/or broadcast). *)

val bytes : t -> int
(** Bytes held by the stored chunks (peak trace memory). *)

val iter_chunks : t -> consumer -> unit
(** Feed every stored chunk to [f], in record order. *)

val iter : t -> (write:bool -> addr:int -> unit) -> unit
(** Per-access replay, unpacking each word.  Convenience for tests; the
    hot path is {!iter_chunks}. *)

val concat : ?chunk_words:int -> t list -> t
(** Re-chunked concatenation: byte-identical (words, chunk boundaries,
    accounting) to recording the parts' streams back-to-back into one
    recorder with the same [chunk_words].  The deterministic merge of
    per-task traces from a parallel execution. *)

val equal : t -> t -> bool
(** Stored streams are word-for-word identical (chunking ignored). *)

(** {2 The interpreter-facing sink} *)

(** What the interpreter should do with the access stream.  [No_trace] is
    the fast path (no per-access work compiled in); [Callback] is the
    legacy per-access closure, kept alive as the differential baseline for
    the record/replay pipeline; [Record] feeds a recorder. *)
type sink =
  | No_trace
  | Callback of (write:bool -> addr:int -> unit)
  | Record of recorder
