type consumer = int array -> int -> unit

let word ~write ~addr = (addr lsl 1) lor (if write then 1 else 0)
let word_addr w = w asr 1
let word_is_write w = w land 1 = 1

let default_chunk_words = 1 lsl 16 (* 512 KB per chunk on 64-bit *)

type recorder = {
  chunk_words : int;
  keep : bool;
  mutable consumers : consumer list;
  mutable buf : int array;
  mutable len : int;
  (* finished chunks, most recent first; only populated when [keep] *)
  mutable stored : (int array * int) list;
  mutable flushed_words : int;
  mutable nchunks : int;
}

type t = {
  chunks : (int array * int) array;
  total_stored : int;
  total_emitted : int;
  t_nchunks : int;
}

let create_recorder ?(chunk_words = default_chunk_words) ?(keep = true)
    ?(consumers = []) () =
  if chunk_words <= 0 then invalid_arg "Trace.create_recorder: chunk_words";
  { chunk_words;
    keep;
    consumers;
    buf = Array.make chunk_words 0;
    len = 0;
    stored = [];
    flushed_words = 0;
    nchunks = 0 }

let add_consumer r c = r.consumers <- r.consumers @ [ c ]

let flush r =
  if r.len > 0 then begin
    List.iter (fun c -> c r.buf r.len) r.consumers;
    r.nchunks <- r.nchunks + 1;
    r.flushed_words <- r.flushed_words + r.len;
    if r.keep then begin
      r.stored <- (r.buf, r.len) :: r.stored;
      r.buf <- Array.make r.chunk_words 0
    end;
    r.len <- 0
  end

let emit r ~write ~addr =
  if r.len = r.chunk_words then flush r;
  Array.unsafe_set r.buf r.len ((addr lsl 1) lor (if write then 1 else 0));
  r.len <- r.len + 1

let emit_word r w =
  if r.len = r.chunk_words then flush r;
  Array.unsafe_set r.buf r.len w;
  r.len <- r.len + 1

let finish r =
  flush r;
  let chunks = Array.of_list (List.rev r.stored) in
  let total_stored =
    Array.fold_left (fun acc (_, len) -> acc + len) 0 chunks
  in
  { chunks;
    total_stored;
    total_emitted = r.flushed_words;
    t_nchunks = r.nchunks }

let length t = t.total_stored
let emitted t = t.total_emitted
let num_chunks t = t.t_nchunks

let bytes t =
  Array.fold_left
    (fun acc (buf, _) -> acc + (Array.length buf * (Sys.word_size / 8)))
    0 t.chunks

let iter_chunks t f = Array.iter (fun (buf, len) -> f buf len) t.chunks

let iter t f =
  iter_chunks t (fun buf len ->
      for i = 0 to len - 1 do
        let w = Array.unsafe_get buf i in
        f ~write:(w land 1 = 1) ~addr:(w asr 1)
      done)

(* Re-chunking concatenation: the result is indistinguishable — words,
   chunk boundaries, accounting — from recording the parts' streams
   back-to-back into one recorder.  This is what makes a parallel
   execution's per-task traces mergeable into the sequential trace. *)
let concat ?(chunk_words = default_chunk_words) parts =
  let r = create_recorder ~chunk_words () in
  List.iter (fun t -> iter_chunks t (fun buf len ->
      for i = 0 to len - 1 do
        emit_word r (Array.unsafe_get buf i)
      done))
    parts;
  finish r

let equal a b =
  a.total_stored = b.total_stored
  &&
  (* element-wise compare, streaming both chunk lists in lockstep *)
  let ok = ref true in
  let words t =
    let arr = Array.make t.total_stored 0 in
    let pos = ref 0 in
    iter_chunks t (fun buf len ->
        Array.blit buf 0 arr !pos len;
        pos := !pos + len);
    arr
  in
  let wa = words a and wb = words b in
  (try
     Array.iteri (fun i w -> if w <> wb.(i) then (ok := false; raise Exit)) wa
   with Exit -> ());
  !ok

type sink =
  | No_trace
  | Callback of (write:bool -> addr:int -> unit)
  | Record of recorder
