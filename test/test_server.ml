(* The shackled daemon: wire framing, the persistent legality cache, the
   byte-level session machine, in-flight batching and cross-domain
   determinism.

   The load-bearing properties, in protocol order: the frame decoder is
   total (any byte string decodes to Got / Need_more / Corrupt, never an
   exception); the disk cache survives kill -9 at every byte boundary of
   a torn append, dropping exactly the torn tail and nothing else; a
   framing violation poisons a session (one error reply, then close)
   while frame-level garbage only costs that frame; identical requests
   produce byte-identical replies whatever the worker-domain count, and
   identical in-flight requests collapse to one solve. *)

module W = Server.Wire
module P = Server.Proto
module Dc = Server.Diskcache
module D = Server.Daemon
module Cl = Server.Client
module K = Kernels.Builders
module Metrics = Observe.Metrics
module Json = Observe.Json

let resolver () =
  { D.rv_kernels = (fun () -> K.all ());
    rv_spec =
      (fun ~kernel ~spec ~size -> Experiments.Specs.lookup ~kernel ~spec ~size);
    rv_params =
      (fun ~kernel ~n ->
        if String.equal kernel "cholesky_banded" then
          [ ("N", n); ("BW", max 1 (n / 3)) ]
        else [ ("N", n) ]);
    rv_init = (fun ~kernel ~n -> Kernels.Inits.for_kernel kernel ~n) }

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Wire framing                                                        *)
(* ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  let frame = W.encode ~op:W.Legal ~id:42 ~payload:"{\"k\":1}" in
  match W.decode frame with
  | W.Got (raw, consumed) ->
    Alcotest.(check int) "consumed" (String.length frame) consumed;
    Alcotest.(check int) "op" (W.opcode_byte W.Legal) raw.W.r_op;
    Alcotest.(check int) "id" 42 raw.W.r_id;
    Alcotest.(check string) "payload" "{\"k\":1}" raw.W.r_payload
  | _ -> Alcotest.fail "roundtrip did not decode"

let test_wire_incremental () =
  let frame = W.encode ~op:W.Stats ~id:7 ~payload:"{}" in
  (* every proper prefix must ask for exactly the missing bytes *)
  for n = 0 to String.length frame - 1 do
    match W.decode (String.sub frame 0 n) with
    | W.Need_more k ->
      let expect =
        if n < W.header_bytes then W.header_bytes - n
        else String.length frame - n
      in
      Alcotest.(check int) (Printf.sprintf "prefix %d" n) expect k
    | W.Got _ -> Alcotest.failf "prefix %d decoded a whole frame" n
    | W.Corrupt m -> Alcotest.failf "prefix %d corrupt: %s" n m
  done

let test_wire_pipelined () =
  let a = W.encode ~op:W.Stats ~id:1 ~payload:"{}" in
  let b = W.encode ~op:W.Shutdown ~id:2 ~payload:"{}" in
  match W.decode (a ^ b) with
  | W.Got (raw, consumed) ->
    Alcotest.(check int) "first frame only" (String.length a) consumed;
    Alcotest.(check int) "first id" 1 raw.W.r_id
  | _ -> Alcotest.fail "pipelined pair did not decode"

let test_wire_corrupt () =
  (match W.decode "XXXX_more_bytes_than_a_header" with
  | W.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic not diagnosed");
  (* oversized length prefix: header claims 0xffffff bytes *)
  let b = Bytes.of_string (W.encode ~op:W.Stats ~id:1 ~payload:"{}") in
  Bytes.set b 9 '\xff';
  Bytes.set b 10 '\xff';
  Bytes.set b 11 '\xff';
  (match W.decode (Bytes.to_string b) with
  | W.Corrupt msg ->
    Alcotest.(check bool) "names the length" true
      (String.length msg >= 14 && String.equal (String.sub msg 0 14) "payload length")
  | _ -> Alcotest.fail "oversized length not diagnosed")

let test_wire_unknown_opcode_decodes () =
  let frame = W.encode_raw { W.r_op = 0x55; r_id = 9; r_payload = "junk" } in
  match W.decode frame with
  | W.Got (raw, _) ->
    Alcotest.(check int) "opcode byte preserved" 0x55 raw.W.r_op;
    Alcotest.(check bool) "not a known opcode" true
      (Option.is_none (W.opcode_of_byte 0x55))
  | _ -> Alcotest.fail "unknown opcode must still frame"

let test_wire_decode_total =
  QCheck.Test.make ~count:1000 ~name:"decode never raises"
    QCheck.(string_of Gen.char)
    (fun s ->
      match W.decode s with
      | W.Got _ | W.Need_more _ | W.Corrupt _ -> true)

let test_wire_raw_roundtrip =
  QCheck.Test.make ~count:300 ~name:"encode_raw/decode roundtrip"
    QCheck.(triple (int_range 0 255) (int_range 0 0xFFFF) (string_of Gen.printable))
    (fun (op, id, payload) ->
      let raw = { W.r_op = op; r_id = id; r_payload = payload } in
      match W.decode (W.encode_raw raw) with
      | W.Got (raw', consumed) ->
        raw' = raw && consumed = W.header_bytes + String.length payload
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Disk cache                                                          *)
(* ------------------------------------------------------------------ *)

let test_cache_persistence () =
  let dir = temp_dir "shk-cache" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let a = Dc.open_dir dir in
  Dc.add a "system-one" true;
  Dc.add a "system-two" false;
  Dc.add a "system-one" true (* dedup: same digest appends nothing *);
  Alcotest.(check int) "entries" 2 (Dc.entries a);
  Alcotest.(check int) "appended" 2 (Dc.appended a);
  Dc.close a;
  (* a second handle — another process, a daemon restart — reads both *)
  let b = Dc.open_dir dir in
  Alcotest.(check int) "reloaded entries" 2 (Dc.entries b);
  Alcotest.(check int) "clean file" 0 (Dc.dropped_bytes b);
  Alcotest.(check (option bool)) "verdict one" (Some true) (Dc.find b "system-one");
  Alcotest.(check (option bool)) "verdict two" (Some false) (Dc.find b "system-two");
  Alcotest.(check (option bool)) "absent" None (Dc.find b "system-three");
  Alcotest.(check int) "hits counted" 2 (Dc.hits b);
  Alcotest.(check int) "misses counted" 1 (Dc.misses b);
  Dc.close b

let test_cache_torn_tail_every_boundary () =
  (* kill -9 mid-append at every byte boundary: the reopen must keep the
     two whole records and drop exactly the torn bytes *)
  for keep = 0 to Dc.record_bytes - 1 do
    let dir = temp_dir "shk-torn" in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let a = Dc.open_dir dir in
    Dc.add a "whole-one" true;
    Dc.add a "whole-two" false;
    Dc.add_torn a "torn-three" true ~keep;
    let b = Dc.open_dir dir in
    Alcotest.(check int) (Printf.sprintf "keep=%d entries" keep) 2 (Dc.entries b);
    Alcotest.(check int) (Printf.sprintf "keep=%d dropped" keep) keep
      (Dc.dropped_bytes b);
    Alcotest.(check (option bool)) "survivor one" (Some true) (Dc.find b "whole-one");
    Alcotest.(check (option bool)) "survivor two" (Some false) (Dc.find b "whole-two");
    Alcotest.(check (option bool)) "torn record gone" None (Dc.find b "torn-three");
    (* the truncation is physical: a third open sees a clean file *)
    Dc.close b;
    let c = Dc.open_dir dir in
    Alcotest.(check int) (Printf.sprintf "keep=%d clean reopen" keep) 0
      (Dc.dropped_bytes c);
    Dc.close c
  done

let test_cache_crc_corruption () =
  let dir = temp_dir "shk-crc" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let a = Dc.open_dir dir in
  Dc.add a "good" true;
  Dc.add a "flipped" false;
  let path = Dc.file a in
  Dc.close a;
  (* flip the last byte (inside the second record's CRC) on disk *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  let size = (Unix.fstat fd).Unix.st_size in
  ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
  let b = Bytes.create 1 in
  let fd_r = Unix.openfile path [ Unix.O_RDONLY ] 0o600 in
  ignore (Unix.lseek fd_r (size - 1) Unix.SEEK_SET);
  ignore (Unix.read fd_r b 0 1);
  Unix.close fd_r;
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let c = Dc.open_dir dir in
  Alcotest.(check int) "only the intact record survives" 1 (Dc.entries c);
  Alcotest.(check int) "corrupt record dropped" Dc.record_bytes
    (Dc.dropped_bytes c);
  Alcotest.(check (option bool)) "good verdict intact" (Some true)
    (Dc.find c "good");
  Dc.close c

let test_cache_refuses_foreign_file () =
  let dir = temp_dir "shk-foreign" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let oc = open_out (Filename.concat dir Dc.filename) in
  output_string oc "this is not a legality cache, do not clobber me\n";
  close_out oc;
  match Dc.open_dir dir with
  | exception Failure _ -> ()
  | t ->
    Dc.close t;
    Alcotest.fail "foreign file silently accepted"

(* ------------------------------------------------------------------ *)
(* Session protocol machine                                            *)
(* ------------------------------------------------------------------ *)

let decode_one_reply out =
  match W.decode out with
  | W.Got (raw, consumed) ->
    Alcotest.(check int) "single reply frame" (String.length out) consumed;
    raw
  | _ -> Alcotest.fail "reply bytes do not frame"

let reply_error raw =
  match P.error_of_payload raw.W.r_payload with
  | Ok e -> e
  | Error m -> Alcotest.failf "undecodable error payload: %s" m

let test_session_unknown_opcode_keeps () =
  let srv = D.create (resolver ()) in
  let s = D.Session.create srv in
  let out, verdict =
    D.Session.feed s (W.encode_raw { W.r_op = 0x5A; r_id = 3; r_payload = "{}" })
  in
  (match verdict with
  | `Keep -> ()
  | `Close -> Alcotest.fail "unknown opcode must not poison the stream");
  let raw = decode_one_reply out in
  Alcotest.(check int) "id echoed" 3 raw.W.r_id;
  Alcotest.(check string) "code" "bad_opcode" (reply_error raw).P.e_code;
  (* the same session still answers a valid request *)
  let out, verdict = D.Session.feed s (W.encode ~op:W.Stats ~id:4 ~payload:"{}") in
  (match verdict with `Keep -> () | `Close -> Alcotest.fail "session died");
  let raw = decode_one_reply out in
  Alcotest.(check int) "ok op" (W.opcode_byte W.Reply_ok) raw.W.r_op

let test_session_bad_magic_closes () =
  let srv = D.create (resolver ()) in
  let s = D.Session.create srv in
  let out, verdict = D.Session.feed s "GARBAGE-not-a-frame" in
  (match verdict with
  | `Close -> ()
  | `Keep -> Alcotest.fail "bad magic must close");
  Alcotest.(check string) "code" "bad_magic" (reply_error (decode_one_reply out)).P.e_code

let test_session_oversized_closes () =
  let srv = D.create (resolver ()) in
  let s = D.Session.create srv in
  let b = Bytes.of_string (W.encode ~op:W.Stats ~id:1 ~payload:"{}") in
  Bytes.set b 9 '\xff';
  Bytes.set b 10 '\xff';
  Bytes.set b 11 '\xff';
  let out, verdict = D.Session.feed s (Bytes.to_string b) in
  (match verdict with `Close -> () | `Keep -> Alcotest.fail "oversized must close");
  Alcotest.(check string) "code" "oversized"
    (reply_error (decode_one_reply out)).P.e_code

let test_session_unknown_kernel () =
  let srv = D.create (resolver ()) in
  let s = D.Session.create srv in
  let out, verdict =
    D.Session.feed s
      (W.encode ~op:W.Legal ~id:8
         ~payload:
           (P.request_to_payload
              (P.Legal { kernel = "nope"; spec = "c"; size = 8 })))
  in
  (match verdict with `Keep -> () | `Close -> Alcotest.fail "request error must keep");
  let raw = decode_one_reply out in
  Alcotest.(check int) "id echoed" 8 raw.W.r_id;
  Alcotest.(check string) "code" "unknown_kernel" (reply_error raw).P.e_code

let test_session_shutdown_closes () =
  let srv = D.create (resolver ()) in
  let s = D.Session.create srv in
  let out, verdict = D.Session.feed s (W.encode ~op:W.Shutdown ~id:1 ~payload:"{}") in
  (match verdict with `Close -> () | `Keep -> Alcotest.fail "bye must close");
  let raw = decode_one_reply out in
  Alcotest.(check int) "ok reply" (W.opcode_byte W.Reply_ok) raw.W.r_op;
  Alcotest.(check bool) "server flagged" true (D.shutting_down srv);
  (* later requests are refused with shutting_down *)
  match D.handle srv P.Stats with
  | Error e -> Alcotest.(check string) "refusal code" "shutting_down" e.P.e_code
  | Ok _ -> Alcotest.fail "request served after shutdown"

let test_stats_json_shape () =
  let srv = D.create (resolver ()) in
  (match D.handle srv (P.Legal { kernel = "matmul"; spec = "c"; size = 8 }) with
  | Ok (P.R_verdict { verdict }) ->
    Alcotest.(check string) "matmul c is legal" "legal" verdict
  | Ok _ -> Alcotest.fail "unexpected reply shape"
  | Error e -> Alcotest.failf "legal failed: %s" e.P.e_message);
  let j = D.stats_json srv in
  (match Json.member "schema" j with
  | Some (Json.Str "shackled-stats/1") -> ()
  | _ -> Alcotest.fail "schema field");
  (match Json.member "solver" j with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "solver counters missing");
  (match Json.member "solves" j with
  | Some (Json.Int n) -> Alcotest.(check bool) "solves accounted" true (n >= 0)
  | _ -> Alcotest.fail "solves field missing");
  match Json.member "diskcache" j with
  | Some Json.Null -> () (* no cache attached in this test *)
  | _ -> Alcotest.fail "cacheless daemon must report diskcache null"

(* ------------------------------------------------------------------ *)
(* Warm restart: the disk cache replaces every solve                   *)
(* ------------------------------------------------------------------ *)

let test_warm_restart_zero_solves () =
  let dir = temp_dir "shk-warm" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let ask srv =
    List.map
      (fun (kernel, spec, size) ->
        match D.handle srv (P.Legal { kernel; spec; size }) with
        | Ok (P.R_verdict { verdict }) -> verdict
        | Ok _ -> Alcotest.fail "unexpected reply shape"
        | Error e -> Alcotest.failf "%s/%s: %s" kernel spec e.P.e_message)
      [ ("matmul", "c", 8); ("matmul", "ca", 8); ("cholesky_right", "write", 6) ]
  in
  let cold_cache = Dc.open_dir dir in
  let cold = D.create ~cache:cold_cache (resolver ()) in
  let cold_verdicts = ask cold in
  let cold_m = Metrics.solver_of_ctx (D.solver cold) in
  Alcotest.(check bool) "cold run really solved" true
    (Metrics.solver_solves cold_m > 0);
  Dc.close cold_cache;
  (* a fresh process state on the same directory: same verdicts, no solves *)
  let warm_cache = Dc.open_dir dir in
  let warm = D.create ~cache:warm_cache (resolver ()) in
  let warm_verdicts = ask warm in
  let warm_m = Metrics.solver_of_ctx (D.solver warm) in
  Alcotest.(check (list string)) "verdicts identical" cold_verdicts warm_verdicts;
  Alcotest.(check int) "warm restart solves nothing" 0
    (Metrics.solver_solves warm_m);
  Alcotest.(check bool) "disk answered" true (Dc.hits warm_cache > 0);
  Dc.close warm_cache

(* ------------------------------------------------------------------ *)
(* In-flight batching and cross-domain determinism                     *)
(* ------------------------------------------------------------------ *)

let test_batching_collapses () =
  (* park the batch leader until both followers have attached, so the
     collapse is forced rather than racy: 3 identical requests, 1 solve,
     2 collapses *)
  let srv_ref = ref None in
  let hold _key =
    let srv = Option.get !srv_ref in
    let give_up = 1000 in
    let rec wait n =
      if Server.Stats.collapses (D.stats srv) < 2 && n > 0 then begin
        Unix.sleepf 0.005;
        wait (n - 1)
      end
    in
    wait give_up
  in
  let config = { D.default_config with D.cfg_hold = Some hold } in
  let srv = D.create ~config (resolver ()) in
  srv_ref := Some srv;
  let req = P.Legal { kernel = "matmul"; spec = "c"; size = 8 } in
  let workers =
    Array.init 3 (fun _ -> Domain.spawn (fun () -> D.handle srv req))
  in
  let replies = Array.map Domain.join workers in
  Array.iter
    (fun r ->
      match r with
      | Ok (P.R_verdict { verdict }) ->
        Alcotest.(check string) "every reply legal" "legal" verdict
      | Ok _ -> Alcotest.fail "unexpected reply shape"
      | Error e -> Alcotest.failf "batched request failed: %s" e.P.e_message)
    replies;
  Alcotest.(check int) "two followers collapsed" 2
    (Server.Stats.collapses (D.stats srv));
  let m = Metrics.solver_of_ctx (D.solver srv) in
  Alcotest.(check bool) "leader solved at most once per system" true
    (Metrics.solver_solves m <= m.Metrics.so_queries)

let socket_roundtrips ~domains =
  let dir = temp_dir "shk-sock" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let socket = Filename.concat dir "d.sock" in
  let config = { D.default_config with D.cfg_domains = domains } in
  let srv = D.create ~config (resolver ()) in
  let server = Domain.spawn (fun () -> D.serve srv ~socket) in
  let rec wait n =
    if not (Sys.file_exists socket) then begin
      if n = 0 then Alcotest.fail "daemon did not come up";
      Unix.sleepf 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  let queries =
    [ P.Legal { kernel = "matmul"; spec = "c"; size = 8 };
      P.Probe { kernel = "matmul"; spec = "ca"; size = 8 };
      P.Legal { kernel = "cholesky_right"; spec = "write"; size = 6 } ]
  in
  (* 4 concurrent clients, each running the identical script *)
  let clients =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let c = Cl.connect socket in
            Fun.protect
              ~finally:(fun () -> Cl.close c)
              (fun () ->
                List.map
                  (fun q ->
                    match Cl.rpc c q with
                    | Ok (P.R_verdict { verdict }) -> verdict
                    | Ok _ -> "unexpected-shape"
                    | Error e -> "error:" ^ e.P.e_code)
                  queries)))
  in
  let transcripts = Array.map Domain.join clients in
  let stop = Cl.connect socket in
  ignore (Cl.rpc stop P.Shutdown);
  Cl.close stop;
  Domain.join server;
  Array.iter
    (fun t ->
      Alcotest.(check (list string))
        (Printf.sprintf "domains=%d: all clients agree" domains)
        transcripts.(0) t)
    transcripts;
  transcripts.(0)

let test_socket_determinism_across_domains () =
  let one = socket_roundtrips ~domains:1 in
  let two = socket_roundtrips ~domains:2 in
  let four = socket_roundtrips ~domains:4 in
  Alcotest.(check (list string)) "1 = 2 domains" one two;
  Alcotest.(check (list string)) "1 = 4 domains" one four;
  List.iter
    (fun v ->
      Alcotest.(check bool) "verdict, not an error" true
        (not (String.length v >= 6 && String.equal (String.sub v 0 6) "error:")))
    one

(* ------------------------------------------------------------------ *)
(* The wire storm battery                                              *)
(* ------------------------------------------------------------------ *)

let test_wire_storm_battery () =
  (* >= 200 mutated frames against a daemon serving matmul's own lattice:
     no exceptions, structured replies only, deterministic replays *)
  match Fuzzing.Wire.storm ~frames:200 ~seed:20260809 (K.matmul ()) with
  | Ok n -> Alcotest.(check bool) "frames checked" true (n >= 200)
  | Error msg -> Alcotest.failf "storm found a protocol violation: %s" msg

let () =
  Alcotest.run "server"
    [ ( "wire",
        [ Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "incremental need-more" `Quick test_wire_incremental;
          Alcotest.test_case "pipelined frames" `Quick test_wire_pipelined;
          Alcotest.test_case "corrupt diagnoses" `Quick test_wire_corrupt;
          Alcotest.test_case "unknown opcode frames" `Quick
            test_wire_unknown_opcode_decodes;
          QCheck_alcotest.to_alcotest test_wire_decode_total;
          QCheck_alcotest.to_alcotest test_wire_raw_roundtrip ] );
      ( "diskcache",
        [ Alcotest.test_case "persists across handles" `Quick
            test_cache_persistence;
          Alcotest.test_case "torn tail at every byte boundary" `Quick
            test_cache_torn_tail_every_boundary;
          Alcotest.test_case "CRC corruption dropped" `Quick
            test_cache_crc_corruption;
          Alcotest.test_case "refuses a foreign file" `Quick
            test_cache_refuses_foreign_file ] );
      ( "session",
        [ Alcotest.test_case "unknown opcode keeps the connection" `Quick
            test_session_unknown_opcode_keeps;
          Alcotest.test_case "bad magic closes" `Quick test_session_bad_magic_closes;
          Alcotest.test_case "oversized length closes" `Quick
            test_session_oversized_closes;
          Alcotest.test_case "unknown kernel is a frame error" `Quick
            test_session_unknown_kernel;
          Alcotest.test_case "shutdown says bye and refuses" `Quick
            test_session_shutdown_closes;
          Alcotest.test_case "stats json shape" `Quick test_stats_json_shape ] );
      ( "cache-recovery",
        [ Alcotest.test_case "warm restart solves nothing" `Quick
            test_warm_restart_zero_solves ] );
      ( "concurrency",
        [ Alcotest.test_case "in-flight batching collapses" `Quick
            test_batching_collapses;
          Alcotest.test_case "determinism across 1/2/4 domains" `Quick
            test_socket_determinism_across_domains ] );
      ( "storm",
        [ Alcotest.test_case "200-frame battery" `Quick test_wire_storm_battery ] ) ]
