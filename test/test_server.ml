(* The shackled daemon: wire framing, the persistent legality cache, the
   byte-level session machine, in-flight batching and cross-domain
   determinism.

   The load-bearing properties, in protocol order: the frame decoder is
   total (any byte string decodes to Got / Need_more / Corrupt, never an
   exception); the disk cache survives kill -9 at every byte boundary of
   a torn append, dropping exactly the torn tail and nothing else; a
   framing violation poisons a session (one error reply, then close)
   while frame-level garbage only costs that frame; identical requests
   produce byte-identical replies whatever the worker-domain count, and
   identical in-flight requests collapse to one solve. *)

module W = Server.Wire
module P = Server.Proto
module Dc = Server.Diskcache
module D = Server.Daemon
module Cl = Server.Client
module K = Kernels.Builders
module Metrics = Observe.Metrics
module Json = Observe.Json

let resolver () =
  { D.rv_kernels = (fun () -> K.all ());
    rv_spec =
      (fun ~kernel ~spec ~size -> Experiments.Specs.lookup ~kernel ~spec ~size);
    rv_params =
      (fun ~kernel ~n ->
        if String.equal kernel "cholesky_banded" then
          [ ("N", n); ("BW", max 1 (n / 3)) ]
        else [ ("N", n) ]);
    rv_init = (fun ~kernel ~n -> Kernels.Inits.for_kernel kernel ~n) }

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Wire framing                                                        *)
(* ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  let frame = W.encode ~op:W.Legal ~id:42 ~payload:"{\"k\":1}" in
  match W.decode frame with
  | W.Got (raw, consumed) ->
    Alcotest.(check int) "consumed" (String.length frame) consumed;
    Alcotest.(check int) "op" (W.opcode_byte W.Legal) raw.W.r_op;
    Alcotest.(check int) "id" 42 raw.W.r_id;
    Alcotest.(check string) "payload" "{\"k\":1}" raw.W.r_payload
  | _ -> Alcotest.fail "roundtrip did not decode"

let test_wire_incremental () =
  let frame = W.encode ~op:W.Stats ~id:7 ~payload:"{}" in
  (* every proper prefix must ask for exactly the missing bytes *)
  for n = 0 to String.length frame - 1 do
    match W.decode (String.sub frame 0 n) with
    | W.Need_more k ->
      let expect =
        if n < W.header_bytes then W.header_bytes - n
        else String.length frame - n
      in
      Alcotest.(check int) (Printf.sprintf "prefix %d" n) expect k
    | W.Got _ -> Alcotest.failf "prefix %d decoded a whole frame" n
    | W.Corrupt m -> Alcotest.failf "prefix %d corrupt: %s" n m
  done

let test_wire_pipelined () =
  let a = W.encode ~op:W.Stats ~id:1 ~payload:"{}" in
  let b = W.encode ~op:W.Shutdown ~id:2 ~payload:"{}" in
  match W.decode (a ^ b) with
  | W.Got (raw, consumed) ->
    Alcotest.(check int) "first frame only" (String.length a) consumed;
    Alcotest.(check int) "first id" 1 raw.W.r_id
  | _ -> Alcotest.fail "pipelined pair did not decode"

let test_wire_corrupt () =
  (match W.decode "XXXX_more_bytes_than_a_header" with
  | W.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic not diagnosed");
  (* oversized length prefix: header claims 0xffffff bytes *)
  let b = Bytes.of_string (W.encode ~op:W.Stats ~id:1 ~payload:"{}") in
  Bytes.set b 9 '\xff';
  Bytes.set b 10 '\xff';
  Bytes.set b 11 '\xff';
  (match W.decode (Bytes.to_string b) with
  | W.Corrupt msg ->
    Alcotest.(check bool) "names the length" true
      (String.length msg >= 14 && String.equal (String.sub msg 0 14) "payload length")
  | _ -> Alcotest.fail "oversized length not diagnosed")

let test_wire_unknown_opcode_decodes () =
  let frame = W.encode_raw { W.r_op = 0x55; r_id = 9; r_payload = "junk" } in
  match W.decode frame with
  | W.Got (raw, _) ->
    Alcotest.(check int) "opcode byte preserved" 0x55 raw.W.r_op;
    Alcotest.(check bool) "not a known opcode" true
      (Option.is_none (W.opcode_of_byte 0x55))
  | _ -> Alcotest.fail "unknown opcode must still frame"

let test_wire_decode_total =
  QCheck.Test.make ~count:1000 ~name:"decode never raises"
    QCheck.(string_of Gen.char)
    (fun s ->
      match W.decode s with
      | W.Got _ | W.Need_more _ | W.Corrupt _ -> true)

let test_wire_raw_roundtrip =
  QCheck.Test.make ~count:300 ~name:"encode_raw/decode roundtrip"
    QCheck.(triple (int_range 0 255) (int_range 0 0xFFFF) (string_of Gen.printable))
    (fun (op, id, payload) ->
      let raw = { W.r_op = op; r_id = id; r_payload = payload } in
      match W.decode (W.encode_raw raw) with
      | W.Got (raw', consumed) ->
        raw' = raw && consumed = W.header_bytes + String.length payload
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Disk cache                                                          *)
(* ------------------------------------------------------------------ *)

let test_cache_persistence () =
  let dir = temp_dir "shk-cache" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let a = Dc.open_dir dir in
  Dc.add a "system-one" true;
  Dc.add a "system-two" false;
  Dc.add a "system-one" true (* dedup: same digest appends nothing *);
  Alcotest.(check int) "entries" 2 (Dc.entries a);
  Alcotest.(check int) "appended" 2 (Dc.appended a);
  Dc.close a;
  (* a second handle — another process, a daemon restart — reads both *)
  let b = Dc.open_dir dir in
  Alcotest.(check int) "reloaded entries" 2 (Dc.entries b);
  Alcotest.(check int) "clean file" 0 (Dc.dropped_bytes b);
  Alcotest.(check (option bool)) "verdict one" (Some true) (Dc.find b "system-one");
  Alcotest.(check (option bool)) "verdict two" (Some false) (Dc.find b "system-two");
  Alcotest.(check (option bool)) "absent" None (Dc.find b "system-three");
  Alcotest.(check int) "hits counted" 2 (Dc.hits b);
  Alcotest.(check int) "misses counted" 1 (Dc.misses b);
  Dc.close b

let test_cache_torn_tail_every_boundary () =
  (* kill -9 mid-append at every byte boundary: the reopen must keep the
     two whole records and drop exactly the torn bytes *)
  for keep = 0 to Dc.record_bytes - 1 do
    let dir = temp_dir "shk-torn" in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let a = Dc.open_dir dir in
    Dc.add a "whole-one" true;
    Dc.add a "whole-two" false;
    Dc.add_torn a "torn-three" true ~keep;
    let b = Dc.open_dir dir in
    Alcotest.(check int) (Printf.sprintf "keep=%d entries" keep) 2 (Dc.entries b);
    Alcotest.(check int) (Printf.sprintf "keep=%d dropped" keep) keep
      (Dc.dropped_bytes b);
    Alcotest.(check (option bool)) "survivor one" (Some true) (Dc.find b "whole-one");
    Alcotest.(check (option bool)) "survivor two" (Some false) (Dc.find b "whole-two");
    Alcotest.(check (option bool)) "torn record gone" None (Dc.find b "torn-three");
    (* the truncation is physical: a third open sees a clean file *)
    Dc.close b;
    let c = Dc.open_dir dir in
    Alcotest.(check int) (Printf.sprintf "keep=%d clean reopen" keep) 0
      (Dc.dropped_bytes c);
    Dc.close c
  done

let test_cache_crc_corruption () =
  let dir = temp_dir "shk-crc" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let a = Dc.open_dir dir in
  Dc.add a "good" true;
  Dc.add a "flipped" false;
  let path = Dc.file a in
  Dc.close a;
  (* flip the last byte (inside the second record's CRC) on disk *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  let size = (Unix.fstat fd).Unix.st_size in
  ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
  let b = Bytes.create 1 in
  let fd_r = Unix.openfile path [ Unix.O_RDONLY ] 0o600 in
  ignore (Unix.lseek fd_r (size - 1) Unix.SEEK_SET);
  ignore (Unix.read fd_r b 0 1);
  Unix.close fd_r;
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let c = Dc.open_dir dir in
  Alcotest.(check int) "only the intact record survives" 1 (Dc.entries c);
  Alcotest.(check int) "corrupt record dropped" Dc.record_bytes
    (Dc.dropped_bytes c);
  Alcotest.(check (option bool)) "good verdict intact" (Some true)
    (Dc.find c "good");
  Dc.close c

let test_cache_refuses_foreign_file () =
  let dir = temp_dir "shk-foreign" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let oc = open_out (Filename.concat dir Dc.filename) in
  output_string oc "this is not a legality cache, do not clobber me\n";
  close_out oc;
  match Dc.open_dir dir with
  | exception Failure _ -> ()
  | t ->
    Dc.close t;
    Alcotest.fail "foreign file silently accepted"

(* ------------------------------------------------------------------ *)
(* Session protocol machine                                            *)
(* ------------------------------------------------------------------ *)

let decode_one_reply out =
  match W.decode out with
  | W.Got (raw, consumed) ->
    Alcotest.(check int) "single reply frame" (String.length out) consumed;
    raw
  | _ -> Alcotest.fail "reply bytes do not frame"

let reply_error raw =
  match P.error_of_payload raw.W.r_payload with
  | Ok e -> e
  | Error m -> Alcotest.failf "undecodable error payload: %s" m

let test_session_unknown_opcode_keeps () =
  let srv = D.create (resolver ()) in
  let s = D.Session.create srv in
  let out, verdict =
    D.Session.feed s (W.encode_raw { W.r_op = 0x5A; r_id = 3; r_payload = "{}" })
  in
  (match verdict with
  | `Keep -> ()
  | `Close -> Alcotest.fail "unknown opcode must not poison the stream");
  let raw = decode_one_reply out in
  Alcotest.(check int) "id echoed" 3 raw.W.r_id;
  Alcotest.(check string) "code" "bad_opcode" (reply_error raw).P.e_code;
  (* the same session still answers a valid request *)
  let out, verdict = D.Session.feed s (W.encode ~op:W.Stats ~id:4 ~payload:"{}") in
  (match verdict with `Keep -> () | `Close -> Alcotest.fail "session died");
  let raw = decode_one_reply out in
  Alcotest.(check int) "ok op" (W.opcode_byte W.Reply_ok) raw.W.r_op

let test_session_bad_magic_closes () =
  let srv = D.create (resolver ()) in
  let s = D.Session.create srv in
  let out, verdict = D.Session.feed s "GARBAGE-not-a-frame" in
  (match verdict with
  | `Close -> ()
  | `Keep -> Alcotest.fail "bad magic must close");
  Alcotest.(check string) "code" "bad_magic" (reply_error (decode_one_reply out)).P.e_code

let test_session_oversized_closes () =
  let srv = D.create (resolver ()) in
  let s = D.Session.create srv in
  let b = Bytes.of_string (W.encode ~op:W.Stats ~id:1 ~payload:"{}") in
  Bytes.set b 9 '\xff';
  Bytes.set b 10 '\xff';
  Bytes.set b 11 '\xff';
  let out, verdict = D.Session.feed s (Bytes.to_string b) in
  (match verdict with `Close -> () | `Keep -> Alcotest.fail "oversized must close");
  Alcotest.(check string) "code" "oversized"
    (reply_error (decode_one_reply out)).P.e_code

let test_session_unknown_kernel () =
  let srv = D.create (resolver ()) in
  let s = D.Session.create srv in
  let out, verdict =
    D.Session.feed s
      (W.encode ~op:W.Legal ~id:8
         ~payload:
           (P.request_to_payload
              (P.Legal
                 { kernel = "nope"; spec = "c"; size = 8; budget_ms = None })))
  in
  (match verdict with `Keep -> () | `Close -> Alcotest.fail "request error must keep");
  let raw = decode_one_reply out in
  Alcotest.(check int) "id echoed" 8 raw.W.r_id;
  Alcotest.(check string) "code" "unknown_kernel" (reply_error raw).P.e_code

let test_session_shutdown_closes () =
  let srv = D.create (resolver ()) in
  let s = D.Session.create srv in
  let out, verdict = D.Session.feed s (W.encode ~op:W.Shutdown ~id:1 ~payload:"{}") in
  (match verdict with `Close -> () | `Keep -> Alcotest.fail "bye must close");
  let raw = decode_one_reply out in
  Alcotest.(check int) "ok reply" (W.opcode_byte W.Reply_ok) raw.W.r_op;
  Alcotest.(check bool) "server flagged" true (D.shutting_down srv);
  (* later requests are refused with shutting_down *)
  match D.handle srv P.Stats with
  | Error e -> Alcotest.(check string) "refusal code" "shutting_down" e.P.e_code
  | Ok _ -> Alcotest.fail "request served after shutdown"

let test_stats_json_shape () =
  let srv = D.create (resolver ()) in
  (match
     D.handle srv
       (P.Legal { kernel = "matmul"; spec = "c"; size = 8; budget_ms = None })
   with
  | Ok (P.R_verdict { verdict }) ->
    Alcotest.(check string) "matmul c is legal" "legal" verdict
  | Ok _ -> Alcotest.fail "unexpected reply shape"
  | Error e -> Alcotest.failf "legal failed: %s" e.P.e_message);
  let j = D.stats_json srv in
  (match Json.member "schema" j with
  | Some (Json.Str "shackled-stats/2") -> ()
  | _ -> Alcotest.fail "schema field");
  (match Json.member "solver" j with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "solver counters missing");
  (match Json.member "solves" j with
  | Some (Json.Int n) -> Alcotest.(check bool) "solves accounted" true (n >= 0)
  | _ -> Alcotest.fail "solves field missing");
  match Json.member "diskcache" j with
  | Some Json.Null -> () (* no cache attached in this test *)
  | _ -> Alcotest.fail "cacheless daemon must report diskcache null"

(* ------------------------------------------------------------------ *)
(* Warm restart: the disk cache replaces every solve                   *)
(* ------------------------------------------------------------------ *)

let test_warm_restart_zero_solves () =
  let dir = temp_dir "shk-warm" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let ask srv =
    List.map
      (fun (kernel, spec, size) ->
        match D.handle srv (P.Legal { kernel; spec; size; budget_ms = None }) with
        | Ok (P.R_verdict { verdict }) -> verdict
        | Ok _ -> Alcotest.fail "unexpected reply shape"
        | Error e -> Alcotest.failf "%s/%s: %s" kernel spec e.P.e_message)
      [ ("matmul", "c", 8); ("matmul", "ca", 8); ("cholesky_right", "write", 6) ]
  in
  let cold_cache = Dc.open_dir dir in
  let cold = D.create ~cache:cold_cache (resolver ()) in
  let cold_verdicts = ask cold in
  let cold_m = Metrics.solver_of_ctx (D.solver cold) in
  Alcotest.(check bool) "cold run really solved" true
    (Metrics.solver_solves cold_m > 0);
  Dc.close cold_cache;
  (* a fresh process state on the same directory: same verdicts, no solves *)
  let warm_cache = Dc.open_dir dir in
  let warm = D.create ~cache:warm_cache (resolver ()) in
  let warm_verdicts = ask warm in
  let warm_m = Metrics.solver_of_ctx (D.solver warm) in
  Alcotest.(check (list string)) "verdicts identical" cold_verdicts warm_verdicts;
  Alcotest.(check int) "warm restart solves nothing" 0
    (Metrics.solver_solves warm_m);
  Alcotest.(check bool) "disk answered" true (Dc.hits warm_cache > 0);
  Dc.close warm_cache

(* ------------------------------------------------------------------ *)
(* In-flight batching and cross-domain determinism                     *)
(* ------------------------------------------------------------------ *)

let test_batching_collapses () =
  (* park the batch leader until both followers have attached, so the
     collapse is forced rather than racy: 3 identical requests, 1 solve,
     2 collapses *)
  let srv_ref = ref None in
  let hold _key =
    let srv = Option.get !srv_ref in
    let give_up = 1000 in
    let rec wait n =
      if Server.Stats.collapses (D.stats srv) < 2 && n > 0 then begin
        Unix.sleepf 0.005;
        wait (n - 1)
      end
    in
    wait give_up
  in
  let config = { D.default_config with D.cfg_hold = Some hold } in
  let srv = D.create ~config (resolver ()) in
  srv_ref := Some srv;
  let req =
    P.Legal { kernel = "matmul"; spec = "c"; size = 8; budget_ms = None }
  in
  let workers =
    Array.init 3 (fun _ -> Domain.spawn (fun () -> D.handle srv req))
  in
  let replies = Array.map Domain.join workers in
  Array.iter
    (fun r ->
      match r with
      | Ok (P.R_verdict { verdict }) ->
        Alcotest.(check string) "every reply legal" "legal" verdict
      | Ok _ -> Alcotest.fail "unexpected reply shape"
      | Error e -> Alcotest.failf "batched request failed: %s" e.P.e_message)
    replies;
  Alcotest.(check int) "two followers collapsed" 2
    (Server.Stats.collapses (D.stats srv));
  let m = Metrics.solver_of_ctx (D.solver srv) in
  Alcotest.(check bool) "leader solved at most once per system" true
    (Metrics.solver_solves m <= m.Metrics.so_queries)

let socket_roundtrips ~domains =
  let dir = temp_dir "shk-sock" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let socket = Filename.concat dir "d.sock" in
  let config = { D.default_config with D.cfg_domains = domains } in
  let srv = D.create ~config (resolver ()) in
  let server = Domain.spawn (fun () -> D.serve srv ~socket) in
  let rec wait n =
    if not (Sys.file_exists socket) then begin
      if n = 0 then Alcotest.fail "daemon did not come up";
      Unix.sleepf 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  let queries =
    [ P.Legal { kernel = "matmul"; spec = "c"; size = 8; budget_ms = None };
      P.Probe { kernel = "matmul"; spec = "ca"; size = 8; budget_ms = None };
      P.Legal
        { kernel = "cholesky_right"; spec = "write"; size = 6;
          budget_ms = None } ]
  in
  (* 4 concurrent clients, each running the identical script *)
  let clients =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let c = Cl.connect socket in
            Fun.protect
              ~finally:(fun () -> Cl.close c)
              (fun () ->
                List.map
                  (fun q ->
                    match Cl.rpc c q with
                    | Ok (P.R_verdict { verdict }) -> verdict
                    | Ok _ -> "unexpected-shape"
                    | Error e -> "error:" ^ e.P.e_code)
                  queries)))
  in
  let transcripts = Array.map Domain.join clients in
  let stop = Cl.connect socket in
  ignore (Cl.rpc stop P.Shutdown);
  Cl.close stop;
  Domain.join server;
  Array.iter
    (fun t ->
      Alcotest.(check (list string))
        (Printf.sprintf "domains=%d: all clients agree" domains)
        transcripts.(0) t)
    transcripts;
  transcripts.(0)

let test_socket_determinism_across_domains () =
  let one = socket_roundtrips ~domains:1 in
  let two = socket_roundtrips ~domains:2 in
  let four = socket_roundtrips ~domains:4 in
  Alcotest.(check (list string)) "1 = 2 domains" one two;
  Alcotest.(check (list string)) "1 = 4 domains" one four;
  List.iter
    (fun v ->
      Alcotest.(check bool) "verdict, not an error" true
        (not (String.length v >= 6 && String.equal (String.sub v 0 6) "error:")))
    one

(* ------------------------------------------------------------------ *)
(* Admission control and deadlines                                     *)
(* ------------------------------------------------------------------ *)

let test_admission_sheds_deterministically () =
  (* park one admitted request at the high-water mark; the next request
     must be shed with a structured overloaded error carrying a
     retry-after hint, and the parked request must still complete *)
  let srv_ref = ref None in
  let hold _key =
    let srv = Option.get !srv_ref in
    let rec wait n =
      if Server.Stats.shed (D.stats srv) < 1 && n > 0 then begin
        Unix.sleepf 0.005;
        wait (n - 1)
      end
    in
    wait 1000
  in
  let config =
    { D.default_config with D.cfg_queue_high = 1; cfg_hold = Some hold }
  in
  let srv = D.create ~config (resolver ()) in
  srv_ref := Some srv;
  let parked =
    Domain.spawn (fun () ->
        D.handle srv
          (P.Legal { kernel = "matmul"; spec = "c"; size = 8; budget_ms = None }))
  in
  let rec wait_admitted n =
    if D.admitted_weight srv < 1 && n > 0 then begin
      Unix.sleepf 0.005;
      wait_admitted (n - 1)
    end
  in
  wait_admitted 1000;
  Alcotest.(check int) "one weight admitted" 1 (D.admitted_weight srv);
  (match
     D.handle srv
       (P.Legal { kernel = "matmul"; spec = "ca"; size = 8; budget_ms = None })
   with
  | Error e ->
    Alcotest.(check string) "shed code" "overloaded" e.P.e_code;
    (match e.P.e_retry_after_ms with
    | Some ms -> Alcotest.(check bool) "retry hint sane" true (ms >= 50)
    | None -> Alcotest.fail "overloaded must carry retry_after_ms")
  | Ok _ -> Alcotest.fail "request above high-water mark must shed");
  (match Domain.join parked with
  | Ok (P.R_verdict { verdict }) ->
    Alcotest.(check string) "parked request completes" "legal" verdict
  | Ok _ -> Alcotest.fail "unexpected reply shape"
  | Error e -> Alcotest.failf "parked request failed: %s" e.P.e_message);
  Alcotest.(check int) "exactly one shed" 1 (Server.Stats.shed (D.stats srv));
  Alcotest.(check int) "admission fully released" 0 (D.admitted_weight srv);
  (* stats (weight 0) is never shed, even at the high-water mark *)
  match D.handle srv P.Stats with
  | Ok (P.R_stats _) -> ()
  | _ -> Alcotest.fail "zero-weight stats must always be admitted"

let test_budget_deadline_exceeded () =
  (* hold the computation well past a tiny budget: the caller must see
     deadline_exceeded, never a stale success *)
  let config =
    { D.default_config with D.cfg_hold = Some (fun _ -> Unix.sleepf 0.06) }
  in
  let srv = D.create ~config (resolver ()) in
  (match
     D.handle srv
       (P.Legal
          { kernel = "matmul"; spec = "c"; size = 8; budget_ms = Some 5 })
   with
  | Error e ->
    Alcotest.(check string) "deadline code" "deadline_exceeded" e.P.e_code
  | Ok _ -> Alcotest.fail "expired budget must not produce a success");
  (* the same request without a budget succeeds on the same server *)
  match
    D.handle srv
      (P.Legal { kernel = "matmul"; spec = "c"; size = 8; budget_ms = None })
  with
  | Ok (P.R_verdict { verdict }) ->
    Alcotest.(check string) "budget-less request fine" "legal" verdict
  | Ok _ -> Alcotest.fail "unexpected reply shape"
  | Error e -> Alcotest.failf "budget-less request failed: %s" e.P.e_message

(* ------------------------------------------------------------------ *)
(* Hostile clients against a live socket                               *)
(* ------------------------------------------------------------------ *)

let with_served_daemon ?(config = D.default_config) f =
  let dir = temp_dir "shk-live" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let socket = Filename.concat dir "d.sock" in
  let srv = D.create ~config (resolver ()) in
  let server = Domain.spawn (fun () -> D.serve srv ~socket) in
  let rec wait n =
    if not (Sys.file_exists socket) then begin
      if n = 0 then Alcotest.fail "daemon did not come up";
      Unix.sleepf 0.02;
      wait (n - 1)
    end
  in
  wait 250;
  Fun.protect
    ~finally:(fun () ->
      (match Cl.connect socket with
      | stop ->
        ignore (Cl.rpc stop P.Shutdown);
        Cl.close stop
      | exception Unix.Unix_error _ -> D.shutdown srv);
      Domain.join server)
    (fun () -> f ~socket ~srv)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let test_mid_frame_disconnect_keeps_serving () =
  with_served_daemon (fun ~socket ~srv:_ ->
      (* a client hangs up mid-frame... *)
      let fd = raw_connect socket in
      let frame =
        W.encode ~op:W.Legal ~id:9
          ~payload:
            (P.request_to_payload
               (P.Legal
                  { kernel = "matmul"; spec = "c"; size = 8; budget_ms = None }))
      in
      ignore (Unix.write_substring fd frame 0 (String.length frame / 2));
      Unix.close fd;
      (* ...and the daemon keeps answering fresh clients *)
      let c = Cl.connect socket in
      Fun.protect
        ~finally:(fun () -> Cl.close c)
        (fun () ->
          match
            Cl.rpc c
              (P.Legal
                 { kernel = "matmul"; spec = "c"; size = 8; budget_ms = None })
          with
          | Ok (P.R_verdict { verdict }) ->
            Alcotest.(check string) "daemon survives the disconnect" "legal"
              verdict
          | Ok _ -> Alcotest.fail "unexpected reply shape"
          | Error e -> Alcotest.failf "post-disconnect rpc failed: %s" e.P.e_message))

let test_slow_writer_evicted () =
  (* a slowloris client parks mid-frame; the daemon must evict it at the
     frame deadline while still serving others *)
  let config =
    { D.default_config with D.cfg_frame_timeout_ms = Some 100 }
  in
  with_served_daemon ~config (fun ~socket ~srv ->
      let fd = raw_connect socket in
      let frame = W.encode ~op:W.Stats ~id:3 ~payload:"{}" in
      ignore (Unix.write_substring fd frame 0 5);
      (* the daemon closes us; a blocking read sees EOF well before 5 s *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      let buf = Bytes.create 64 in
      (match Unix.read fd buf 0 64 with
      | 0 -> ()
      | n -> Alcotest.failf "expected eviction EOF, got %d bytes" n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Alcotest.fail "slow writer was not evicted at the frame deadline"
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
      Unix.close fd;
      Alcotest.(check bool) "eviction counted" true
        (Server.Stats.evicted (D.stats srv) >= 1);
      (* well-behaved clients are unaffected *)
      let c = Cl.connect socket in
      Fun.protect
        ~finally:(fun () -> Cl.close c)
        (fun () ->
          match Cl.rpc c P.Stats with
          | Ok (P.R_stats _) -> ()
          | _ -> Alcotest.fail "daemon must keep serving after an eviction"))

(* ------------------------------------------------------------------ *)
(* Cache self-healing: compaction and quarantine                       *)
(* ------------------------------------------------------------------ *)

let test_cache_compaction_dedupes () =
  let dir = temp_dir "shk-compact" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* two concurrent handles (two daemon processes) append overlapping
     verdicts: the file accretes duplicates *)
  let a = Dc.open_dir dir in
  let b = Dc.open_dir dir in
  List.iter (fun (d, v) -> Dc.add a d v)
    [ ("sys-1", true); ("sys-2", false); ("sys-3", true) ];
  List.iter (fun (d, v) -> Dc.add b d v)
    [ ("sys-1", true); ("sys-2", false); ("sys-4", true) ];
  let fat = Dc.bytes_on_disk a + (2 * Dc.record_bytes) in
  Dc.close a;
  Dc.close b;
  (* reopen: the heal pass rewrites the file without the duplicates *)
  let c = Dc.open_dir dir in
  Alcotest.(check int) "entries deduped" 4 (Dc.entries c);
  Alcotest.(check bool) "file shrank" true (Dc.bytes_on_disk c < fat);
  List.iter
    (fun (d, v) ->
      Alcotest.(check (option bool)) d (Some v) (Dc.find c d))
    [ ("sys-1", true); ("sys-2", false); ("sys-3", true); ("sys-4", true) ];
  (* explicit compaction on a healed file is a no-op, and answers are
     unchanged afterwards *)
  let before, after = Dc.compact c in
  Alcotest.(check int) "idempotent compaction" before after;
  Alcotest.(check (option bool)) "still answers" (Some false)
    (Dc.find c "sys-2");
  Dc.close c;
  let d = Dc.open_dir dir in
  Alcotest.(check int) "clean reopen" 0 (Dc.dropped_bytes d);
  Alcotest.(check (option bool)) "survives reopen" (Some true)
    (Dc.find d "sys-4");
  Dc.close d

let test_cache_quarantines_corrupt_span () =
  let dir = temp_dir "shk-quarantine" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let a = Dc.open_dir dir in
  Dc.add a "first" true;
  Dc.add a "second" false;
  Dc.add a "third" true;
  let path = Dc.file a in
  Dc.close a;
  (* flip a byte inside the MIDDLE record: a span, not a torn tail *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  let off = 16 + Dc.record_bytes + 3 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x5A));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let c = Dc.open_dir dir in
  Alcotest.(check int) "survivors reloaded" 2 (Dc.entries c);
  Alcotest.(check (option bool)) "first survives" (Some true)
    (Dc.find c "first");
  Alcotest.(check (option bool)) "third survives" (Some true)
    (Dc.find c "third");
  Alcotest.(check (option bool)) "corrupt span skipped" None
    (Dc.find c "second");
  Alcotest.(check int) "one span quarantined" 1 (Dc.quarantined_spans c);
  Alcotest.(check int) "span bytes accounted" Dc.record_bytes
    (Dc.quarantined_bytes c);
  Alcotest.(check bool) "quarantine sidecar exists" true
    (Sys.file_exists (Dc.quarantine_file c));
  Dc.close c;
  (* the heal was physical: a reopen is clean and byte-stable *)
  let d = Dc.open_dir dir in
  Alcotest.(check int) "clean reopen" 0 (Dc.dropped_bytes d);
  Alcotest.(check int) "survivors stable" 2 (Dc.entries d);
  Dc.close d

(* ------------------------------------------------------------------ *)
(* Stats schema migration                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_v1_migrates () =
  let solver_json =
    Metrics.solver_to_json
      (Metrics.solver_of_ctx (Polyhedra.Omega.Ctx.create ()))
  in
  let v1 =
    Json.Obj
      [ ("schema", Json.Str "shackled-stats/1");
        ( "server",
          Json.Obj
            [ ("requests", Json.Int 2);
              ("errors", Json.Int 1);
              ("batch_collapses", Json.Int 0);
              ("connections", Json.Int 1);
              ( "ops",
                Json.Obj
                  [ ( "legal",
                      Json.Obj
                        [ ("count", Json.Int 2);
                          ("p50_ms", Json.Float 1.0);
                          ("p90_ms", Json.Float 1.5);
                          ("p99_ms", Json.Float 2.0);
                          ("max_ms", Json.Float 2.5);
                          ("mean_ms", Json.Float 1.2) ] ) ] ) ] );
        ("solver", solver_json);
        ("solves", Json.Int 0);
        ("diskcache", Json.Null) ]
  in
  let migrated =
    match Report.migrate v1 with
    | Ok j -> j
    | Error msg -> Alcotest.failf "migration failed: %s" msg
  in
  (match Report.check migrated with
  | Ok tag -> Alcotest.(check string) "migrates to /2" "shackled-stats/2" tag
  | Error msg -> Alcotest.failf "migrated stats do not validate: %s" msg);
  let server = Option.get (Json.member "server" migrated) in
  (match Json.member "shed" server with
  | Some (Json.Int 0) -> ()
  | _ -> Alcotest.fail "migration must default shed to 0");
  (match Json.member "evicted" server with
  | Some (Json.Int 0) -> ()
  | _ -> Alcotest.fail "migration must default evicted to 0");
  (match Json.member "error_codes" server with
  | Some (Json.Obj []) -> ()
  | _ -> Alcotest.fail "migration must default error_codes to {}");
  match
    Option.bind (Json.member "ops" server) (fun ops ->
        Option.bind (Json.member "legal" ops) (Json.member "p999_ms"))
  with
  | Some (Json.Float f) ->
    Alcotest.(check (float 1e-9)) "p999 defaults to max" 2.5 f
  | _ -> Alcotest.fail "migration must synthesize p999_ms"

let test_stats_v2_roundtrip () =
  (* the daemon's own snapshot must validate against the registry *)
  let srv = D.create (resolver ()) in
  (match
     D.handle srv
       (P.Legal { kernel = "matmul"; spec = "c"; size = 8; budget_ms = None })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "legal failed: %s" e.P.e_message);
  ignore
    (D.handle srv
       (P.Legal { kernel = "nope"; spec = "c"; size = 8; budget_ms = None }));
  match Report.check (D.stats_json srv) with
  | Ok tag -> Alcotest.(check string) "validates" "shackled-stats/2" tag
  | Error msg -> Alcotest.failf "live stats do not validate: %s" msg

(* ------------------------------------------------------------------ *)
(* Replay harness smoke                                                *)
(* ------------------------------------------------------------------ *)

let test_replay_trace_roundtrip () =
  let pool =
    [ P.Legal { kernel = "matmul"; spec = "c"; size = 8; budget_ms = None };
      P.Probe
        { kernel = "matmul"; spec = "ca"; size = 8; budget_ms = Some 250 };
      P.Stats ]
  in
  let trace =
    Server.Replay.gen_trace ~seed:5 ~clients:3 ~requests:40 ~pool
  in
  let file = Filename.temp_file "shk-trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  Server.Replay.save_trace file trace;
  match Server.Replay.load_trace file with
  | Error msg -> Alcotest.failf "trace does not load back: %s" msg
  | Ok trace' ->
    Alcotest.(check int) "length preserved" (List.length trace)
      (List.length trace');
    List.iter2
      (fun a b ->
        Alcotest.(check int) "client preserved" a.Server.Replay.ev_client
          b.Server.Replay.ev_client;
        Alcotest.(check string) "request preserved"
          (P.request_key a.Server.Replay.ev_req)
          (P.request_key b.Server.Replay.ev_req))
      trace trace'

let test_replay_through_chaos_proxy () =
  with_served_daemon (fun ~socket ~srv:_ ->
      let module R = Server.Replay in
      let proxy_sock = socket ^ ".chaos" in
      let proxy =
        R.proxy_start ~upstream:socket ~socket:proxy_sock ~seed:3
          ~chaos:R.default_chaos
      in
      Fun.protect ~finally:(fun () -> R.proxy_stop proxy) @@ fun () ->
      let pool =
        [ P.Legal { kernel = "matmul"; spec = "c"; size = 8; budget_ms = None };
          P.Probe { kernel = "matmul"; spec = "ca"; size = 8; budget_ms = None };
          P.Legal { kernel = "nope"; spec = "c"; size = 8; budget_ms = None };
          P.Stats ]
      in
      let trace = R.gen_trace ~seed:3 ~clients:3 ~requests:60 ~pool in
      let outcome = R.drive ~socket:proxy_sock ~seed:3 ~clients:3 trace in
      (* every event got a structured outcome: completions plus counted
         errors must cover the whole trace *)
      let errored =
        List.fold_left (fun acc (_, n) -> acc + n) 0 outcome.R.o_errors
      in
      Alcotest.(check int) "every request accounted" (List.length trace)
        (outcome.R.o_completed + errored);
      Alcotest.(check bool) "chaos proxy really interfered" true
        (let s, p, _ = R.proxy_counts proxy in
         s + p > 0);
      let j =
        R.report_json ~seed:3 ~clients:3 ~requests:(List.length trace)
          outcome ~chaos:(R.proxy_counts proxy) ~cold:None ~warm:None
      in
      match Report.check j with
      | Ok tag ->
        Alcotest.(check string) "load report validates" "server-load-report/1"
          tag
      | Error msg -> Alcotest.failf "load report does not validate: %s" msg)

(* ------------------------------------------------------------------ *)
(* The wire storm battery                                              *)
(* ------------------------------------------------------------------ *)

let test_wire_storm_battery () =
  (* >= 200 mutated frames against a daemon serving matmul's own lattice:
     no exceptions, structured replies only, deterministic replays *)
  match Fuzzing.Wire.storm ~frames:200 ~seed:20260809 (K.matmul ()) with
  | Ok (n, chaos) ->
    Alcotest.(check bool) "frames checked" true (n >= 200);
    Alcotest.(check bool) "chaos schedules survived" true (chaos > 0)
  | Error msg -> Alcotest.failf "storm found a protocol violation: %s" msg

let () =
  Alcotest.run "server"
    [ ( "wire",
        [ Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "incremental need-more" `Quick test_wire_incremental;
          Alcotest.test_case "pipelined frames" `Quick test_wire_pipelined;
          Alcotest.test_case "corrupt diagnoses" `Quick test_wire_corrupt;
          Alcotest.test_case "unknown opcode frames" `Quick
            test_wire_unknown_opcode_decodes;
          QCheck_alcotest.to_alcotest test_wire_decode_total;
          QCheck_alcotest.to_alcotest test_wire_raw_roundtrip ] );
      ( "diskcache",
        [ Alcotest.test_case "persists across handles" `Quick
            test_cache_persistence;
          Alcotest.test_case "torn tail at every byte boundary" `Quick
            test_cache_torn_tail_every_boundary;
          Alcotest.test_case "CRC corruption dropped" `Quick
            test_cache_crc_corruption;
          Alcotest.test_case "refuses a foreign file" `Quick
            test_cache_refuses_foreign_file ] );
      ( "session",
        [ Alcotest.test_case "unknown opcode keeps the connection" `Quick
            test_session_unknown_opcode_keeps;
          Alcotest.test_case "bad magic closes" `Quick test_session_bad_magic_closes;
          Alcotest.test_case "oversized length closes" `Quick
            test_session_oversized_closes;
          Alcotest.test_case "unknown kernel is a frame error" `Quick
            test_session_unknown_kernel;
          Alcotest.test_case "shutdown says bye and refuses" `Quick
            test_session_shutdown_closes;
          Alcotest.test_case "stats json shape" `Quick test_stats_json_shape ] );
      ( "cache-recovery",
        [ Alcotest.test_case "warm restart solves nothing" `Quick
            test_warm_restart_zero_solves ] );
      ( "self-healing",
        [ Alcotest.test_case "compaction dedupes and shrinks" `Quick
            test_cache_compaction_dedupes;
          Alcotest.test_case "corrupt span quarantined" `Quick
            test_cache_quarantines_corrupt_span ] );
      ( "overload",
        [ Alcotest.test_case "deterministic shedding" `Quick
            test_admission_sheds_deterministically;
          Alcotest.test_case "budget deadline exceeded" `Quick
            test_budget_deadline_exceeded;
          Alcotest.test_case "mid-frame disconnect keeps serving" `Quick
            test_mid_frame_disconnect_keeps_serving;
          Alcotest.test_case "slow writer evicted" `Quick
            test_slow_writer_evicted ] );
      ( "schema",
        [ Alcotest.test_case "stats/1 migrates to /2" `Quick
            test_stats_v1_migrates;
          Alcotest.test_case "live stats validate as /2" `Quick
            test_stats_v2_roundtrip ] );
      ( "replay",
        [ Alcotest.test_case "trace roundtrips" `Quick
            test_replay_trace_roundtrip;
          Alcotest.test_case "drive through chaos proxy" `Quick
            test_replay_through_chaos_proxy ] );
      ( "concurrency",
        [ Alcotest.test_case "in-flight batching collapses" `Quick
            test_batching_collapses;
          Alcotest.test_case "determinism across 1/2/4 domains" `Quick
            test_socket_determinism_across_domains ] );
      ( "storm",
        [ Alcotest.test_case "200-frame battery" `Quick test_wire_storm_battery ] ) ]
