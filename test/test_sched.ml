(* The dependence-aware block scheduler: plan shape on known DAGs and
   bit-exact par=seq equivalence.

   The load-bearing property is determinism: for any worker count the
   final store (as Int64 bit patterns), the flop count, and the merged
   access trace (word for word, including chunk accounting) must equal
   one sequential execution of the same variant.  The plan-shape tests
   pin the classifier: a single-task plan for unshackled programs, a
   width-1 wavefront for a serial chain, the anti-diagonal wavefront for
   the diamond recurrence, steal mode for blocked Cholesky's irregular
   DAG.  A worker exception must abort the run and re-raise. *)

module K = Kernels.Builders
module Specs = Experiments.Specs
module Spec = Shackle.Spec
module Blocking = Shackle.Blocking
module Store = Exec.Store
module Model = Machine.Model

let init_hash name idx =
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 131) + Char.code c) land 0xFFFFF) name;
  Array.iter (fun i -> h := ((!h * 131) + i + 7) land 0xFFFFF) idx;
  0.25 +. (float_of_int (!h mod 101) /. 101.0)

let parse_prog text =
  match Pipeline.parse text with
  | Ok pipe -> pipe
  | Error msg -> Alcotest.failf "parse: %s" msg

(* First legal single-factor spec of [blocking] over the one-statement
   program's reference choices. *)
let first_legal_spec pipe ~array blocking =
  let specs =
    List.map
      (fun choices -> [ Spec.factor blocking choices ])
      (Pipeline.choices pipe ~array)
  in
  match List.find_opt (Pipeline.is_legal pipe) specs with
  | Some s -> s
  | None -> Alcotest.fail "no legal spec for the test blocking"

let stores_bit_equal a b =
  let arrs s =
    List.sort (fun (x : Store.arr) y -> compare x.Store.name y.Store.name)
      (Store.arrays s)
  in
  List.for_all2
    (fun (x : Store.arr) (y : Store.arr) ->
      String.equal x.Store.name y.Store.name
      && Array.length x.Store.data = Array.length y.Store.data
      && begin
           let ok = ref true in
           Array.iteri
             (fun i v ->
               if Int64.bits_of_float v <> Int64.bits_of_float y.Store.data.(i)
               then ok := false)
             x.Store.data;
           !ok
         end)
    (arrs a) (arrs b)

(* One sequential reference against scheduler executions over each worker
   count; a small chunk size forces several flush boundaries through the
   deterministic merge. *)
let check_par_eq ?layouts ~what pipe ~spec ~params ~init =
  let seq_rec, seq_store =
    Pipeline.record_full ?layouts ~chunk_words:128 ?spec pipe ~params ~init
  in
  let plan = Sched.plan pipe ~spec ~params in
  List.iter
    (fun domains ->
      let label fmt =
        Printf.sprintf "%s (domains=%d): %s" what domains fmt
      in
      let recording, res =
        Sched.record ?layouts ~domains ~chunk_words:128 plan ~init
      in
      Alcotest.(check bool)
        (label "store bits") true
        (stores_bit_equal seq_store res.Sched.x_store);
      Alcotest.(check int)
        (label "flops") seq_rec.Model.rec_flops recording.Model.rec_flops;
      let tp = recording.Model.rec_trace and ts = seq_rec.Model.rec_trace in
      Alcotest.(check bool) (label "trace words") true (Trace.equal tp ts);
      Alcotest.(check int)
        (label "trace chunks") (Trace.num_chunks ts) (Trace.num_chunks tp);
      Alcotest.(check int) (label "trace bytes") (Trace.bytes ts)
        (Trace.bytes tp))
    [ 1; 2; 4 ];
  plan

(* ------------------------------------------------------------------ *)
(* Plan shape                                                          *)
(* ------------------------------------------------------------------ *)

let test_single_task () =
  let pipe = Pipeline.create (K.matmul ()) in
  let plan =
    check_par_eq ~what:"unshackled matmul" pipe ~spec:None
      ~params:[ ("N", 6) ]
      ~init:(Kernels.Inits.for_kernel "matmul" ~n:6)
  in
  Alcotest.(check int) "one task" 1 (Sched.tasks plan);
  Alcotest.(check int) "no edges" 0 (Sched.edges plan);
  Alcotest.(check string) "sequential mode" "sequential"
    (Sched.mode_string (Sched.mode plan))

let chain_text =
  "! chain (params: N)\nreal A(N)\ndo i = 2, N\n  S1: A(i) = A(i) + A(i - \
   1)\nend do\n"

let test_serial_chain () =
  let pipe = parse_prog chain_text in
  let blocking =
    Blocking.make ~array:"A" ~rank:1
      [ { Blocking.normal = [ 1 ]; width = 2; offset = 0 } ]
  in
  let spec = first_legal_spec pipe ~array:"A" blocking in
  let plan =
    check_par_eq ~what:"serial chain" pipe ~spec:(Some spec)
      ~params:[ ("N", 16) ] ~init:init_hash
  in
  Alcotest.(check int) "eight blocks" 8 (Sched.tasks plan);
  Alcotest.(check string) "wavefront mode" "wavefront"
    (Sched.mode_string (Sched.mode plan));
  Alcotest.(check int) "serial: every level width 1" 1 (Sched.max_width plan);
  Alcotest.(check int) "one level per task" (Sched.tasks plan)
    (List.length (Sched.levels plan));
  Alcotest.(check bool) "real DAG, not the fallback chain" false
    (Sched.serialized plan)

let diamond_text =
  "! diamond (params: N)\nreal A(N, N)\ndo i = 2, N\n  do j = 2, N\n    S1: \
   A(i, j) = A(i - 1, j) + A(i, j - 1)\n  end do\nend do\n"

let diamond_pipe_plan ~n =
  let pipe = parse_prog diamond_text in
  let spec =
    first_legal_spec pipe ~array:"A" (Blocking.blocks_2d ~array:"A" ~size:2)
  in
  (pipe, spec, Sched.plan pipe ~spec:(Some spec) ~params:[ ("N", n) ])

let test_diamond_wavefront () =
  let pipe, spec, plan = diamond_pipe_plan ~n:8 in
  Alcotest.(check int) "4x4 block grid" 16 (Sched.tasks plan);
  Alcotest.(check string) "wavefront mode" "wavefront"
    (Sched.mode_string (Sched.mode plan));
  Alcotest.(check int) "anti-diagonal levels" 7
    (List.length (Sched.levels plan));
  Alcotest.(check int) "widest anti-diagonal" 4 (Sched.max_width plan);
  ignore
    (check_par_eq ~what:"diamond" pipe ~spec:(Some spec)
       ~params:[ ("N", 8) ] ~init:init_hash)

let test_steal_cholesky () =
  let pipe = Pipeline.create (K.cholesky_right ()) in
  let spec = Specs.cholesky_fully_blocked ~size:8 in
  let plan =
    check_par_eq ~what:"blocked cholesky" pipe ~spec:(Some spec)
      ~params:[ ("N", 24) ]
      ~init:(Kernels.Inits.for_kernel "cholesky_right" ~n:24)
  in
  Alcotest.(check string) "irregular DAG steals" "steal"
    (Sched.mode_string (Sched.mode plan));
  Alcotest.(check bool) "multiple tasks" true (Sched.tasks plan > 1)

let test_matmul_product () =
  let pipe = Pipeline.create (K.matmul ()) in
  let spec = Specs.matmul_ca ~size:4 in
  ignore
    (check_par_eq ~what:"matmul C x A product" pipe ~spec:(Some spec)
       ~params:[ ("N", 8) ]
       ~init:(Kernels.Inits.for_kernel "matmul" ~n:8))

(* ------------------------------------------------------------------ *)
(* Failure propagation and the multicore replay                        *)
(* ------------------------------------------------------------------ *)

(* A banded layout makes the diamond's below-diagonal reads out of range,
   so a worker raises Invalid_argument partway through a wavefront; the
   run must abort and re-raise the original exception. *)
let test_worker_exception () =
  let _, _, plan = diamond_pipe_plan ~n:8 in
  match
    Sched.exec
      ~layouts:[ ("A", Store.Banded 8) ]
      ~domains:2 plan
      ~init:(fun _ _ -> 1.0)
  with
  | _ -> Alcotest.fail "out-of-band access did not raise"
  | exception Invalid_argument _ -> ()

let test_smp_deterministic () =
  let pipe, spec, plan = diamond_pipe_plan ~n:8 in
  ignore pipe;
  ignore spec;
  let r1 = Sched.exec ~domains:1 ~trace:true plan ~init:init_hash in
  let r3 = Sched.exec ~domains:3 ~trace:true plan ~init:init_hash in
  let s1 = Sched.smp ~cores:2 plan r1 in
  let s3 = Sched.smp ~cores:2 plan r3 in
  Alcotest.(check bool) "smp replay is a pure function of the plan" true
    (s1 = s3);
  Alcotest.(check int) "two virtual cores" 2 s1.Model.Smp.p_cores;
  Alcotest.(check int) "replay sees every flop" r1.Sched.x_flops
    s1.Model.Smp.p_flops;
  Alcotest.(check bool) "makespan is positive" true
    (s1.Model.Smp.p_cycles > 0.0)

let () =
  Alcotest.run "sched"
    [ ( "plan",
        [ Alcotest.test_case "single task" `Quick test_single_task;
          Alcotest.test_case "serial chain" `Quick test_serial_chain;
          Alcotest.test_case "diamond wavefront" `Quick
            test_diamond_wavefront;
          Alcotest.test_case "steal cholesky" `Quick test_steal_cholesky;
          Alcotest.test_case "matmul product" `Quick test_matmul_product ] );
      ( "exec",
        [ Alcotest.test_case "worker exception" `Quick test_worker_exception;
          Alcotest.test_case "smp deterministic" `Quick
            test_smp_deterministic ] ) ]
