(* Tests for the interpreter substrate: storage layouts, execution against
   hand-written kernels, flop counting, and the memory trace. *)

module Ast = Loopir.Ast
module K = Kernels.Builders
module Store = Exec.Store
module Interp = Exec.Interp
module Walk = Loopir.Walk

let params n = [ ("N", n) ]

(* --- store --- *)

let test_col_major_offsets () =
  let p = K.matmul () in
  let st = Store.create p ~params:(params 4) ~init:(fun _ _ -> 0.0) in
  let a = Store.find st "A" in
  Alcotest.(check int) "first" 0 (Store.offset a [| 1; 1 |]);
  Alcotest.(check int) "down a column" 1 (Store.offset a [| 2; 1 |]);
  Alcotest.(check int) "next column" 4 (Store.offset a [| 1; 2 |]);
  Alcotest.(check int) "last" 15 (Store.offset a [| 4; 4 |])

let test_base_addresses_disjoint () =
  let p = K.matmul () in
  let st = Store.create p ~params:(params 4) ~init:(fun _ _ -> 0.0) in
  let arrs = Store.arrays st in
  Alcotest.(check int) "three arrays" 3 (List.length arrs);
  let spans =
    List.map (fun (a : Store.arr) -> (a.base, a.base + Array.length a.data)) arrs
  in
  List.iteri
    (fun i (b1, e1) ->
      List.iteri
        (fun j (b2, _) ->
          if i < j then
            Alcotest.(check bool) "disjoint" true (e1 <= b2 || b1 >= b2))
        spans)
    spans

let test_banded_layout () =
  let p = K.cholesky_banded () in
  let st =
    Store.create
      ~layouts:[ ("A", Store.Banded 2) ]
      p
      ~params:[ ("N", 5); ("BW", 2) ]
      ~init:(fun _ idx -> float_of_int ((10 * idx.(0)) + idx.(1)))
  in
  let a = Store.find st "A" in
  Alcotest.(check int) "band size" 15 (Array.length a.Store.data);
  Alcotest.(check int) "diagonal j=1" 0 (Store.offset a [| 1; 1 |]);
  Alcotest.(check int) "subdiag" 1 (Store.offset a [| 2; 1 |]);
  Alcotest.(check int) "column 2" 3 (Store.offset a [| 2; 2 |]);
  Alcotest.(check (float 0.0)) "init through layout" 22.0
    (Store.get st "A" [| 2; 2 |]);
  Alcotest.check_raises "outside band"
    (Invalid_argument "Store.offset: A(5,1) outside band 2") (fun () ->
      ignore (Store.offset a [| 5; 1 |]))

let test_out_of_range () =
  let p = K.matmul () in
  let st = Store.create p ~params:(params 3) ~init:(fun _ _ -> 0.0) in
  let a = Store.find st "A" in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Store.offset a [| 4; 1 |]);
       false
     with Invalid_argument _ -> true)

(* --- interpreter vs hand-written kernels --- *)

let hand_matmul n init =
  let get a i j = init a [| i; j |] in
  let c = Array.make_matrix (n + 1) (n + 1) 0.0 in
  for i = 1 to n do
    for j = 1 to n do
      c.(i).(j) <- get "C" i j;
      for k = 1 to n do
        c.(i).(j) <- c.(i).(j) +. (get "A" i k *. get "B" k j)
      done
    done
  done;
  c

let test_matmul_against_hand () =
  let n = 7 in
  let init = Kernels.Inits.for_kernel "matmul" ~n in
  let st, flops = Exec.Verify.run_program (K.matmul ()) ~params:(params n) ~init in
  let expect = hand_matmul n init in
  for i = 1 to n do
    for j = 1 to n do
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "C(%d,%d)" i j)
        expect.(i).(j)
        (Store.get st "C" [| i; j |])
    done
  done;
  Alcotest.(check int) "flops = 2N^3" (2 * n * n * n) flops

let hand_cholesky n init =
  let a = Array.make_matrix (n + 1) (n + 1) 0.0 in
  for i = 1 to n do
    for j = 1 to n do
      a.(i).(j) <- init "A" [| i; j |]
    done
  done;
  for j = 1 to n do
    a.(j).(j) <- sqrt a.(j).(j);
    for i = j + 1 to n do
      a.(i).(j) <- a.(i).(j) /. a.(j).(j)
    done;
    for l = j + 1 to n do
      for k = j + 1 to l do
        a.(l).(k) <- a.(l).(k) -. (a.(l).(j) *. a.(k).(j))
      done
    done
  done;
  a

let test_cholesky_against_hand () =
  let n = 9 in
  let init = Kernels.Inits.for_kernel "cholesky_right" ~n in
  let st, _ =
    Exec.Verify.run_program (K.cholesky_right ()) ~params:(params n) ~init
  in
  let expect = hand_cholesky n init in
  (* check the lower triangle (the factor) *)
  for i = 1 to n do
    for j = 1 to i do
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "L(%d,%d)" i j)
        expect.(i).(j)
        (Store.get st "A" [| i; j |])
    done
  done

let test_cholesky_factor_property () =
  (* L * L^T should reproduce the original SPD matrix. *)
  let n = 8 in
  let init = Kernels.Inits.for_kernel "cholesky_right" ~n in
  let st, _ =
    Exec.Verify.run_program (K.cholesky_right ()) ~params:(params n) ~init
  in
  let l i j = if j > i then 0.0 else Store.get st "A" [| i; j |] in
  for i = 1 to n do
    for j = 1 to i do
      let dot = ref 0.0 in
      for k = 1 to n do
        dot := !dot +. (l i k *. l j k)
      done;
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "A(%d,%d)" i j)
        (init "A" [| i; j |])
        !dot
    done
  done

let test_left_right_cholesky_agree () =
  let n = 12 in
  let init = Kernels.Inits.for_kernel "cholesky_right" ~n in
  Alcotest.(check bool) "same factor" true
    (Exec.Verify.equivalent ~tol:1e-9 (K.cholesky_right ()) (K.cholesky_left ())
       ~params:(params n) ~init)

let test_banded_matches_dense_inside_band () =
  (* The banded kernel on a matrix whose entries outside the band are zero
     must agree with dense Cholesky inside the band. *)
  let n = 10 and bw = 3 in
  let dense_init = Kernels.Inits.for_kernel "cholesky_right" ~n in
  let banded_init name idx =
    if abs (idx.(0) - idx.(1)) > bw then 0.0 else dense_init name idx
  in
  let st_dense, _ =
    Exec.Verify.run_program (K.cholesky_right ())
      ~params:[ ("N", n) ]
      ~init:banded_init
  in
  let st_band, _ =
    Exec.Verify.run_program (K.cholesky_banded ())
      ~params:[ ("N", n); ("BW", bw) ]
      ~init:banded_init
  in
  for j = 1 to n do
    for i = j to min n (j + bw) do
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "L(%d,%d)" i j)
        (Store.get st_dense "A" [| i; j |])
        (Store.get st_band "A" [| i; j |])
    done
  done

(* --- tracing --- *)

let test_trace_counts () =
  let n = 5 in
  let reads = ref 0 and writes = ref 0 in
  let trace ~write ~addr:_ = if write then incr writes else incr reads in
  let init = Kernels.Inits.for_kernel "matmul" ~n in
  let _ =
    Exec.Verify.run_program ~sink:(Trace.Callback trace) (K.matmul ()) ~params:(params n) ~init
  in
  (* per innermost instance: reads C, A, B; writes C *)
  Alcotest.(check int) "reads" (3 * n * n * n) !reads;
  Alcotest.(check int) "writes" (n * n * n) !writes

let test_trace_read_before_write () =
  let n = 2 in
  let order = ref [] in
  let trace ~write ~addr = order := (write, addr) :: !order in
  let init = Kernels.Inits.for_kernel "matmul" ~n in
  let _ =
    Exec.Verify.run_program ~sink:(Trace.Callback trace) (K.matmul ()) ~params:(params n) ~init
  in
  let events = List.rev !order in
  (* the first four events form one statement instance: 3 reads then the
     write, and the C read and write hit the same address *)
  match events with
  | (false, c) :: (false, _) :: (false, _) :: (true, c') :: _ ->
    Alcotest.(check int) "write follows reads to same C cell" c c'
  | _ -> Alcotest.fail "unexpected event shape"

(* --- walk --- *)

let test_walk_counts () =
  let n = 6 in
  Alcotest.(check int) "matmul instances" (n * n * n)
    (Walk.count_instances (K.matmul ()) ~params:(params n));
  (* right-looking cholesky: N + N(N-1)/2 + sum_j sum_{l>j} (l-j) *)
  let s3 = ref 0 in
  for j = 1 to n do
    for l = j + 1 to n do
      s3 := !s3 + (l - j)
    done
  done;
  Alcotest.(check int) "cholesky instances"
    (n + (n * (n - 1) / 2) + !s3)
    (Walk.count_instances (K.cholesky_right ()) ~params:(params n))

(* invoke with a name the program never mentions must raise, not silently
   drop the binding (a typo would otherwise read a stale slot value) *)
let test_invoke_unknown_param_raises () =
  let p = K.matmul () in
  let st = Store.create p ~params:(params 4) ~init:(fun _ _ -> 1.0) in
  let prep = Interp.prepare st p in
  Alcotest.(check bool) "known params accepted" true
    (Interp.invoke prep ~params:(params 4) >= 0);
  Alcotest.check_raises "unknown param"
    (Invalid_argument "Exec.Interp.invoke: unknown parameter M") (fun () ->
      ignore (Interp.invoke prep ~params:[ ("N", 4); ("M", 7) ]))

let test_walk_env () =
  let p = K.matmul () in
  let seen = ref [] in
  Walk.iter_instances p ~params:(params 2) ~f:(fun _ env ->
      seen := (Walk.lookup env "I", Walk.lookup env "J", Walk.lookup env "K") :: !seen);
  let first = List.rev !seen in
  Alcotest.(check bool) "first instance" true (List.hd first = (1, 1, 1));
  Alcotest.(check int) "count" 8 (List.length first)

let () =
  Alcotest.run "exec"
    [ ( "store",
        [ Alcotest.test_case "column-major offsets" `Quick test_col_major_offsets;
          Alcotest.test_case "disjoint bases" `Quick test_base_addresses_disjoint;
          Alcotest.test_case "banded layout" `Quick test_banded_layout;
          Alcotest.test_case "range checks" `Quick test_out_of_range ] );
      ( "interp",
        [ Alcotest.test_case "matmul vs hand" `Quick test_matmul_against_hand;
          Alcotest.test_case "cholesky vs hand" `Quick test_cholesky_against_hand;
          Alcotest.test_case "cholesky LL^T property" `Quick
            test_cholesky_factor_property;
          Alcotest.test_case "left = right cholesky" `Quick
            test_left_right_cholesky_agree;
          Alcotest.test_case "banded = dense in band" `Quick
            test_banded_matches_dense_inside_band;
          Alcotest.test_case "unknown param raises" `Quick
            test_invoke_unknown_param_raises ] );
      ( "trace",
        [ Alcotest.test_case "access counts" `Quick test_trace_counts;
          Alcotest.test_case "read before write" `Quick
            test_trace_read_before_write ] );
      ( "walk",
        [ Alcotest.test_case "instance counts" `Quick test_walk_counts;
          Alcotest.test_case "environments" `Quick test_walk_env ] ) ]
