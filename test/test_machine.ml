(* Tests for the memory-hierarchy simulator and the control-centric tiling
   baseline. *)

module Cache = Machine.Cache
module Model = Machine.Model
module K = Kernels.Builders
module E = Loopir.Expr
module Fexpr = Loopir.Fexpr
module Spec = Shackle.Spec
module Blocking = Shackle.Blocking

let v = E.var
let rf a idx = Fexpr.ref_ a (List.map v idx)

(* --- single cache level --- *)

let test_cache_basics () =
  let c = Cache.create { Cache.size_bytes = 1024; line_bytes = 64; assoc = 2 } in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit same line" true (Cache.access c 8);
  Alcotest.(check bool) "hit line end" true (Cache.access c 63);
  Alcotest.(check bool) "next line misses" false (Cache.access c 64);
  Alcotest.(check int) "accesses" 4 (Cache.accesses c);
  Alcotest.(check int) "hits" 2 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c)

let test_cache_lru_eviction () =
  (* 2-way, 8 sets of 64B lines: addresses 0, 1024, 2048 map to set 0 *)
  let c = Cache.create { Cache.size_bytes = 1024; line_bytes = 64; assoc = 2 } in
  ignore (Cache.access c 0);
  ignore (Cache.access c 1024);
  Alcotest.(check bool) "both ways resident" true (Cache.access c 0);
  ignore (Cache.access c 2048); (* evicts 1024 (LRU) *)
  Alcotest.(check bool) "0 survives" true (Cache.access c 0);
  Alcotest.(check bool) "1024 evicted" false (Cache.access c 1024)

let test_cache_direct_mapped () =
  let c = Cache.create { Cache.size_bytes = 512; line_bytes = 64; assoc = 1 } in
  ignore (Cache.access c 0);
  ignore (Cache.access c 512); (* same set, conflict *)
  Alcotest.(check bool) "conflict evicts" false (Cache.access c 0)

let test_cache_eviction_count () =
  let c = Cache.create { Cache.size_bytes = 1024; line_bytes = 64; assoc = 2 } in
  (* cold fills into empty ways are misses but not evictions *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 1024);
  Alcotest.(check int) "cold fills don't evict" 0 (Cache.evictions c);
  ignore (Cache.access c 2048); (* set 0 full: displaces the LRU line *)
  Alcotest.(check int) "conflict evicts" 1 (Cache.evictions c);
  ignore (Cache.access c 2048); (* hit: no eviction *)
  Alcotest.(check int) "hits don't evict" 1 (Cache.evictions c);
  Cache.reset c;
  Alcotest.(check int) "reset zeroes evictions" 0 (Cache.evictions c)

let test_cache_full_capacity () =
  let c = Cache.create { Cache.size_bytes = 1024; line_bytes = 64; assoc = 2 } in
  (* touch 16 distinct lines = exactly capacity; all should be resident *)
  for i = 0 to 15 do
    ignore (Cache.access c (i * 64))
  done;
  let hits_before = Cache.hits c in
  for i = 0 to 15 do
    ignore (Cache.access c (i * 64))
  done;
  Alcotest.(check int) "all resident" (hits_before + 16) (Cache.hits c)

let test_cache_reset () =
  let c = Cache.create { Cache.size_bytes = 1024; line_bytes = 64; assoc = 2 } in
  ignore (Cache.access c 0);
  Cache.reset c;
  Alcotest.(check int) "zeroed" 0 (Cache.accesses c);
  Alcotest.(check bool) "cold again" false (Cache.access c 0)

let test_cache_geometry_checks () =
  List.iter
    (fun cfg ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (Cache.create cfg);
           false
         with Invalid_argument _ -> true))
    [ { Cache.size_bytes = 1000; line_bytes = 60; assoc = 2 };
      { Cache.size_bytes = 128; line_bytes = 64; assoc = 3 };
      { Cache.size_bytes = 64; line_bytes = 64; assoc = 0 } ]

(* A tiny reference LRU cache (list of resident lines, most recent first)
   used as an oracle for the positional set-associative implementation. *)
let reference_lru cfg addrs =
  let nsets = cfg.Cache.size_bytes / cfg.Cache.line_bytes / cfg.Cache.assoc in
  let sets = Array.make nsets [] in
  List.map
    (fun addr ->
      let line = addr / cfg.Cache.line_bytes in
      let set = line mod nsets in
      let resident = sets.(set) in
      let hit = List.mem line resident in
      let without = List.filter (fun l -> l <> line) resident in
      let trimmed =
        if List.length without >= cfg.Cache.assoc then
          List.filteri (fun i _ -> i < cfg.Cache.assoc - 1) without
        else without
      in
      sets.(set) <- line :: trimmed;
      hit)
    addrs

let prop_lru_matches_reference =
  QCheck.Test.make ~count:300 ~name:"cache agrees with reference LRU"
    QCheck.(list_of_size (Gen.int_range 1 200) (int_range 0 4095))
    (fun addrs ->
      let cfg = { Cache.size_bytes = 512; line_bytes = 64; assoc = 2 } in
      let c = Cache.create cfg in
      let got = List.map (fun a -> Cache.access c a) addrs in
      got = reference_lru cfg addrs)

(* --- model --- *)

let test_sequential_vs_strided () =
  (* column-major traversal of a matrix should miss far less than
     row-major traversal of the same data once a row sweep exceeds the
     cache capacity *)
  let n = 600 in
  let init = Kernels.Inits.for_kernel "matmul" ~n in
  let walk order =
    let s =
      Loopir.Ast.stmt ~id:0 ~label:"S1"
        (Fexpr.ref_ "C" [ v "i"; v "j" ])
        (Fexpr.f 1.0)
    in
    let inner, outer = if order = `Col then ("i", "j") else ("j", "i") in
    { Loopir.Ast.p_name = "walk";
      params = [ "N" ];
      arrays = [ { Loopir.Ast.a_name = "C"; extents = [ v "N"; v "N" ] } ];
      body =
        [ Loopir.Ast.loop outer (E.int 1) (v "N")
            [ Loopir.Ast.loop inner (E.int 1) (v "N") [ s ] ] ] }
  in
  let sim p =
    (Model.simulate ~machine:Model.sp2_like ~quality:Model.untuned p
       ~params:[ ("N", n) ] ~init)
  in
  let col = sim (walk `Col) and row = sim (walk `Row) in
  let misses r = (List.hd r.Model.r_levels).Model.s_misses in
  Alcotest.(check bool) "column order misses less" true
    (misses col * 4 < misses row);
  Alcotest.(check bool) "row order misses every line" true
    (misses row >= n * n / 16 (* 16 elements per 128B line *))

let test_blocking_reduces_misses () =
  let n = 120 in
  let p = K.matmul () in
  let spec =
    [ Spec.factor (Blocking.blocks_2d ~array:"C" ~size:30)
        [ ("S1", rf "C" [ "I"; "J" ]) ];
      Spec.factor (Blocking.blocks_2d ~array:"A" ~size:30)
        [ ("S1", rf "A" [ "I"; "K" ]) ] ]
  in
  let blocked = Codegen.Tighten.generate p spec in
  let init = Kernels.Inits.for_kernel "matmul" ~n in
  let sim q =
    Model.simulate ~machine:Model.sp2_like ~quality:Model.untuned q
      ~params:[ ("N", n) ] ~init
  in
  let a = sim p and b = sim blocked in
  let misses r = (List.hd r.Model.r_levels).Model.s_misses in
  Alcotest.(check int) "same flops" a.Model.r_flops b.Model.r_flops;
  Alcotest.(check bool) "blocked misses less" true (misses b * 2 < misses a);
  Alcotest.(check bool) "blocked is faster" true
    (b.Model.r_cycles < a.Model.r_cycles)

let test_forwarding_reduces_accesses () =
  let n = 40 in
  let p = K.matmul () in
  let init = Kernels.Inits.for_kernel "matmul" ~n in
  let untuned =
    Model.simulate ~machine:Model.sp2_like ~quality:Model.untuned p
      ~params:[ ("N", n) ] ~init
  in
  let tuned =
    Model.simulate ~machine:Model.sp2_like ~quality:Model.tuned p
      ~params:[ ("N", n) ] ~init
  in
  Alcotest.(check bool) "fewer accesses with forwarding" true
    (tuned.Model.r_accesses < untuned.Model.r_accesses);
  Alcotest.(check int) "instance count unchanged" untuned.Model.r_instances
    tuned.Model.r_instances

let test_two_level_machine () =
  let n = 100 in
  let p = K.matmul () in
  let init = Kernels.Inits.for_kernel "matmul" ~n in
  let r =
    Model.simulate ~machine:Model.two_level ~quality:Model.untuned p
      ~params:[ ("N", n) ] ~init
  in
  (match r.Model.r_levels with
   | [ l1; l2 ] ->
     Alcotest.(check bool) "L2 probed only on L1 miss" true
       (l2.Model.s_accesses = l1.Model.s_misses);
     Alcotest.(check bool) "L2 filters" true (l2.Model.s_misses <= l2.Model.s_accesses)
   | _ -> Alcotest.fail "expected two levels")

(* --- closed-form cycle accounting & the record/replay pipeline --- *)

(* A reference simulator re-implementing the pre-refactor per-access float
   accumulation: walk a (spec, cache) list per access, adding the hit or
   memory cost to a float the moment it is incurred.  The production Sim
   accumulates only integer counters and folds costs in closed form when
   the result is built; because every cost constant is an integer or
   dyadic rational and every counter is far below 2^53, the two must agree
   bit-for-bit — not just within tolerance. *)
let reference_simulate ~machine ~quality prog ~params ~init =
  let levels =
    List.map
      (fun (l : Model.level_spec) -> (l, Cache.create l.Model.l_cache))
      machine.Model.levels
  in
  let hier = ref 0.0 in
  let accesses = ref 0 and instances = ref 0 and last = ref min_int in
  let trace ~write ~addr =
    if write then incr instances;
    if quality.Model.forwarding && addr = !last then ()
    else begin
      incr accesses;
      last := addr;
      let byte = addr * machine.Model.elem_bytes in
      let rec probe = function
        | [] -> hier := !hier +. machine.Model.mem_cycles
        | (l, c) :: rest ->
          if Cache.access c byte then hier := !hier +. l.Model.l_hit_cycles
          else probe rest
      in
      probe levels
    end
  in
  let _, flops =
    Exec.Verify.run_program ~sink:(Trace.Callback trace) prog ~params ~init
  in
  let cycles =
    (float_of_int flops *. machine.Model.flop_cycles)
    +. !hier
    +. (quality.Model.overhead *. float_of_int !instances)
  in
  ( cycles,
    flops,
    !accesses,
    !instances,
    List.map
      (fun ((l : Model.level_spec), c) ->
        { Model.s_name = l.Model.l_name;
          s_accesses = Cache.accesses c;
          s_hits = Cache.hits c;
          s_misses = Cache.misses c;
          s_evictions = Cache.evictions c })
      levels )

let trace_test_points =
  [ ("matmul", K.matmul (), 64); ("cholesky_right", K.cholesky_right (), 32) ]

let all_variants =
  [ (Model.sp2_like, Model.untuned);
    (Model.sp2_like, Model.tuned);
    (Model.two_level, Model.untuned);
    (Model.two_level, Model.tuned) ]

let test_closed_form_matches_per_access () =
  List.iter
    (fun (kernel, prog, n) ->
      let params = [ ("N", n) ] in
      let init = Kernels.Inits.for_kernel kernel ~n in
      List.iter
        (fun (machine, quality) ->
          let tag =
            Printf.sprintf "%s N=%d %s/%s" kernel n machine.Model.m_name
              quality.Model.q_name
          in
          let cycles, flops, accesses, instances, levels =
            reference_simulate ~machine ~quality prog ~params ~init
          in
          let r = Model.simulate ~machine ~quality prog ~params ~init in
          Alcotest.(check int) (tag ^ " flops") flops r.Model.r_flops;
          Alcotest.(check int) (tag ^ " accesses") accesses r.Model.r_accesses;
          Alcotest.(check int) (tag ^ " instances") instances
            r.Model.r_instances;
          Alcotest.(check bool) (tag ^ " level stats") true
            (levels = r.Model.r_levels);
          (* bitwise, NOT within-epsilon: the closed form must be exact *)
          Alcotest.(check bool) (tag ^ " cycles bit-identical") true
            (cycles = r.Model.r_cycles))
        all_variants)
    trace_test_points;
  (* the chosen sizes overflow L1 on both machines, so evictions — the
     subtlest counter — are genuinely exercised, not vacuously zero *)
  List.iter
    (fun machine ->
      let prog = K.matmul () and n = 64 in
      let r =
        Model.simulate ~machine ~quality:Model.untuned prog
          ~params:[ ("N", n) ]
          ~init:(Kernels.Inits.for_kernel "matmul" ~n)
      in
      Alcotest.(check bool)
        (machine.Model.m_name ^ " has evictions")
        true
        ((List.hd r.Model.r_levels).Model.s_evictions > 0))
    [ Model.sp2_like; Model.two_level ]

let test_record_replay_matches_direct () =
  List.iter
    (fun (kernel, prog, n) ->
      let params = [ ("N", n) ] in
      let init = Kernels.Inits.for_kernel kernel ~n in
      (* tiny chunks force many flush boundaries in the replay loop *)
      let recording = Model.record ~chunk_words:128 prog ~params ~init in
      let direct =
        List.map
          (fun (machine, quality) ->
            Model.simulate ~machine ~quality prog ~params ~init)
          all_variants
      in
      List.iter2
        (fun (machine, quality) want ->
          let tag =
            Printf.sprintf "%s N=%d %s/%s" kernel n machine.Model.m_name
              quality.Model.q_name
          in
          Alcotest.(check bool) (tag ^ " consume = direct") true
            (Model.consume ~machine ~quality recording = want))
        all_variants direct;
      (* one recording also replays many times without mutation *)
      let machine, quality = List.hd all_variants in
      Alcotest.(check bool) "recording is reusable" true
        (Model.consume ~machine ~quality recording
        = Model.consume ~machine ~quality recording);
      let streamed = Model.stream ~chunk_words:128 prog ~params ~init all_variants in
      List.iter2
        (fun want got ->
          Alcotest.(check bool) (kernel ^ " stream = direct") true (got = want))
        direct streamed)
    trace_test_points

(* --- tiling baseline --- *)

let test_tile_matmul_equivalent () =
  let p = K.matmul () in
  let tiled = Tiling.tile p ~sizes:[ ("I", 7); ("J", 5); ("K", 3) ] in
  let init = Kernels.Inits.for_kernel "matmul" ~n:17 in
  Alcotest.(check bool) "equivalent" true
    (Exec.Verify.equivalent p tiled ~params:[ ("N", 17) ] ~init)

let test_tile_matches_shackle_trace () =
  (* Section 3/4: for matmul, tiling all three loops and the C x A shackle
     produce the same blocked structure; their miss counts agree. *)
  let n = 75 in
  let p = K.matmul () in
  let tiled = Tiling.tile p ~sizes:[ ("I", 25); ("J", 25); ("K", 25) ] in
  let spec =
    [ Spec.factor (Blocking.blocks_2d ~array:"C" ~size:25)
        [ ("S1", rf "C" [ "I"; "J" ]) ];
      Spec.factor (Blocking.blocks_2d ~array:"A" ~size:25)
        [ ("S1", rf "A" [ "I"; "K" ]) ] ]
  in
  let shackled = Codegen.Tighten.generate p spec in
  let init = Kernels.Inits.for_kernel "matmul" ~n in
  let sim q =
    Model.simulate ~machine:Model.sp2_like ~quality:Model.untuned q
      ~params:[ ("N", n) ] ~init
  in
  let a = sim tiled and b = sim shackled in
  let misses r = (List.hd r.Model.r_levels).Model.s_misses in
  Alcotest.(check int) "identical misses" (misses a) (misses b)

let test_tile_rejects_imperfect () =
  Alcotest.(check bool) "cholesky rejected" true
    (try
       ignore (Tiling.tile (K.cholesky_right ()) ~sizes:[ ("J", 8) ]);
       false
     with Tiling.Not_perfectly_nested _ -> true)

let test_tile_rejects_triangular () =
  Alcotest.(check bool) "syrk J loop rejected" true
    (try
       ignore (Tiling.tile (K.syrk ()) ~sizes:[ ("J", 8) ]);
       false
     with Tiling.Not_perfectly_nested _ -> true)

let test_cholesky_update_tiled_correct () =
  let n = 33 in
  let init = Kernels.Inits.for_kernel "cholesky_right" ~n in
  Alcotest.(check bool) "equivalent" true
    (Exec.Verify.equivalent (K.cholesky_right ())
       (Tiling.cholesky_update_tiled ~size:8)
       ~params:[ ("N", n) ] ~init)

let test_shackle_beats_update_tiling () =
  (* the paper's Section 3 point: naive sinking + update-loop tiling is
     weaker than full data-centric blocking *)
  let n = 96 in
  let init = Kernels.Inits.for_kernel "cholesky_right" ~n in
  let spec =
    [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size:24)
        [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "I"; "J" ]);
          ("S3", rf "A" [ "L"; "K" ]) ];
      Spec.factor (Blocking.blocks_2d ~array:"A" ~size:24)
        [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "J"; "J" ]);
          ("S3", rf "A" [ "K"; "J" ]) ] ]
  in
  let shackled = Codegen.Tighten.generate (K.cholesky_right ()) spec in
  let tiled = Tiling.cholesky_update_tiled ~size:24 in
  let sim q =
    Model.simulate ~machine:Model.sp2_like ~quality:Model.untuned q
      ~params:[ ("N", n) ] ~init
  in
  let a = sim shackled and b = sim tiled in
  let misses r = (List.hd r.Model.r_levels).Model.s_misses in
  Alcotest.(check bool) "shackle misses no more" true (misses a <= misses b)

let () =
  Alcotest.run "machine"
    [ ( "cache-property",
        List.map QCheck_alcotest.to_alcotest [ prop_lru_matches_reference ] );
      ( "cache",
        [ Alcotest.test_case "basics" `Quick test_cache_basics;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "direct mapped" `Quick test_cache_direct_mapped;
          Alcotest.test_case "eviction count" `Quick test_cache_eviction_count;
          Alcotest.test_case "full capacity" `Quick test_cache_full_capacity;
          Alcotest.test_case "reset" `Quick test_cache_reset;
          Alcotest.test_case "geometry checks" `Quick test_cache_geometry_checks ] );
      ( "model",
        [ Alcotest.test_case "sequential vs strided" `Quick
            test_sequential_vs_strided;
          Alcotest.test_case "blocking reduces misses" `Slow
            test_blocking_reduces_misses;
          Alcotest.test_case "forwarding" `Quick test_forwarding_reduces_accesses;
          Alcotest.test_case "two-level hierarchy" `Quick test_two_level_machine ] );
      ( "trace-pipeline",
        [ Alcotest.test_case "closed form = per-access accumulation" `Quick
            test_closed_form_matches_per_access;
          Alcotest.test_case "record/replay = direct" `Quick
            test_record_replay_matches_direct ] );
      ( "tiling",
        [ Alcotest.test_case "matmul equivalence" `Quick test_tile_matmul_equivalent;
          Alcotest.test_case "tiling = shackling on matmul" `Slow
            test_tile_matches_shackle_trace;
          Alcotest.test_case "imperfect nest rejected" `Quick
            test_tile_rejects_imperfect;
          Alcotest.test_case "triangular bound rejected" `Quick
            test_tile_rejects_triangular;
          Alcotest.test_case "update-tiled cholesky correct" `Quick
            test_cholesky_update_tiled_correct;
          Alcotest.test_case "shackle vs update tiling" `Slow
            test_shackle_beats_update_tiling ] ) ]
