(* Tests for the paper's core machinery: blockings, shackle specifications,
   Theorem 1 legality, Theorem 2 span analysis, and the reference semantics.
   The strongest test cross-validates static legality against dynamic
   behaviour: executing the code generated from an illegal shackle must
   produce wrong numbers, a legal one identical numbers. *)

module Ast = Loopir.Ast
module Fexpr = Loopir.Fexpr
module E = Loopir.Expr
module Walk = Loopir.Walk
module K = Kernels.Builders
module Blocking = Shackle.Blocking
module Spec = Shackle.Spec
module Legality = Shackle.Legality
module Span = Shackle.Span
module Refsem = Shackle.Refsem

let v = E.var
let rf a idx = Fexpr.ref_ a (List.map v idx)

(* --- blocking --- *)

let test_coord_of_point () =
  let b = Blocking.blocks_2d ~array:"A" ~size:25 in
  Alcotest.(check (array int)) "(1,1)" [| 1; 1 |] (Blocking.coord_of_point b [| 1; 1 |]);
  Alcotest.(check (array int)) "(25,25)" [| 1; 1 |] (Blocking.coord_of_point b [| 25; 25 |]);
  Alcotest.(check (array int)) "(26,25)" [| 2; 1 |] (Blocking.coord_of_point b [| 26; 25 |]);
  Alcotest.(check (array int)) "(100,51)" [| 4; 3 |] (Blocking.coord_of_point b [| 100; 51 |])

let test_storage_order_colmajor () =
  let b = Blocking.storage_order ~array:"B" ~rank:2 `Col_major in
  (* column-major: the column index is the leading block coordinate *)
  Alcotest.(check (array int)) "(3,7)" [| 7; 3 |] (Blocking.coord_of_point b [| 3; 7 |])

let test_skewed_blocking () =
  (* anti-diagonal cutting planes: normal [1; 1] *)
  let b =
    Blocking.make ~array:"A" ~rank:2
      [ { Blocking.normal = [ 1; 1 ]; width = 10; offset = 2 } ]
  in
  Alcotest.(check (array int)) "(1,1)" [| 1 |] (Blocking.coord_of_point b [| 1; 1 |]);
  Alcotest.(check (array int)) "(6,6)" [| 2 |] (Blocking.coord_of_point b [| 6; 6 |])

let test_membership_guard_eval () =
  let b = Blocking.blocks_2d ~array:"A" ~size:4 in
  let gs =
    Blocking.membership_guards b
      [ E.var "i"; E.var "j" ]
      ~coords:[ E.var "z1"; E.var "z2" ]
  in
  Alcotest.(check int) "four guards" 4 (List.length gs);
  let eval i j z1 z2 =
    let env = function
      | "i" -> i | "j" -> j | "z1" -> z1 | "z2" -> z2
      | _ -> assert false
    in
    List.for_all (Ast.eval_guard env) gs
  in
  Alcotest.(check bool) "inside" true (eval 5 3 2 1);
  Alcotest.(check bool) "wrong row block" false (eval 5 3 1 1);
  Alcotest.(check bool) "boundary lo" true (eval 5 1 2 1);
  Alcotest.(check bool) "boundary hi" true (eval 8 4 2 1);
  Alcotest.(check bool) "past boundary" false (eval 9 4 2 1)

let prop_membership_matches_coord =
  QCheck.Test.make ~count:500 ~name:"membership guards agree with coord_of_point"
    QCheck.(pair (pair (int_range 1 100) (int_range 1 100)) (int_range 1 12))
    (fun ((i, j), size) ->
      let b = Blocking.blocks_2d ~array:"A" ~size in
      let z = Blocking.coord_of_point b [| i; j |] in
      let gs =
        Blocking.membership_guards b
          [ E.int i; E.int j ]
          ~coords:[ E.int z.(0); E.int z.(1) ]
      in
      List.for_all (Ast.eval_guard (fun _ -> assert false)) gs)

let test_coord_ranges () =
  let b = Blocking.blocks_2d ~array:"A" ~size:25 in
  match Blocking.coord_ranges b ~extents:[ E.int 100; E.int 60 ] with
  | [ (lo1, hi1); (lo2, hi2) ] ->
    let ev e = E.eval (fun _ -> assert false) e in
    Alcotest.(check (list int)) "ranges" [ 1; 4; 1; 3 ]
      [ ev lo1; ev hi1; ev lo2; ev hi2 ]
  | _ -> Alcotest.fail "expected two ranges"

(* --- spec --- *)

let test_spec_validation () =
  let p = K.matmul () in
  (match
     Spec.factor (Blocking.blocks_2d ~array:"C" ~size:8) [ ("S1", rf "A" [ "I"; "K" ]) ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong array should be rejected");
  let f = Spec.factor (Blocking.blocks_2d ~array:"C" ~size:8) [] in
  (match Spec.validate p [ f ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing choice should be rejected");
  let ok =
    Spec.factor (Blocking.blocks_2d ~array:"C" ~size:8)
      [ ("S1", rf "C" [ "I"; "J" ]) ]
  in
  Alcotest.(check bool) "valid" true (Spec.validate p [ ok ] = Ok ())

let test_block_vector () =
  let p = K.matmul () in
  ignore p;
  let spec =
    [ Spec.factor (Blocking.blocks_2d ~array:"C" ~size:10)
        [ ("S1", rf "C" [ "I"; "J" ]) ];
      Spec.factor (Blocking.blocks_2d ~array:"A" ~size:10)
        [ ("S1", rf "A" [ "I"; "K" ]) ] ]
  in
  let _, s = Ast.find_stmt (K.matmul ()) "S1" in
  let env = function "I" -> 11 | "J" -> 5 | "K" -> 21 | _ -> assert false in
  Alcotest.(check (array int)) "concatenated coords" [| 2; 1; 2; 3 |]
    (Spec.block_vector spec s env);
  Alcotest.(check (list string)) "coord names" [ "t1"; "t2"; "t3"; "t4" ]
    (Spec.coord_names spec)

let test_dummy_reference () =
  (* Section 5.3: a statement without a reference to the blocked array gets
     a made-up one.  Block ADI's X and give S2 (which never touches X) the
     dummy X(i,k). *)
  let p = K.adi () in
  let blk = Blocking.blocks_2d ~array:"X" ~size:8 in
  let spec =
    [ Spec.factor blk [ ("S1", rf "X" [ "i"; "k" ]); ("S2", rf "X" [ "i"; "k" ]) ] ]
  in
  Alcotest.(check bool) "validates" true (Spec.validate p spec = Ok ());
  let order = Refsem.order p spec ~params:[ ("N", 12) ] in
  Alcotest.(check bool) "permutation of instances" true
    (Refsem.same_instances order (Refsem.original_order p ~params:[ ("N", 12) ]))

(* --- legality --- *)

let test_matmul_all_single_shackles_legal () =
  let p = K.matmul () in
  List.iter
    (fun (arr, idx) ->
      let spec =
        [ Spec.factor (Blocking.blocks_2d ~array:arr ~size:25) [ ("S1", rf arr idx) ] ]
      in
      Alcotest.(check bool) (arr ^ " shackle legal") true (Legality.is_legal p spec))
    [ ("C", [ "I"; "J" ]); ("A", [ "I"; "K" ]); ("B", [ "K"; "J" ]) ]

let cholesky_choice_cases =
  (* (S2 ref, S3 ref, expected legal); S1 always A(J,J).  The paper claims
     exactly two legal; our exact checker finds three — see EXPERIMENTS.md,
     the extra one shackles S2 by its write and S3 by its read A(L,J). *)
  [ ([ "I"; "J" ], [ "L"; "K" ], true);
    ([ "I"; "J" ], [ "L"; "J" ], true);
    ([ "I"; "J" ], [ "K"; "J" ], false);
    ([ "J"; "J" ], [ "L"; "K" ], false);
    ([ "J"; "J" ], [ "L"; "J" ], false);
    ([ "J"; "J" ], [ "K"; "J" ], true) ]

let test_cholesky_six_choices () =
  let p = K.cholesky_right () in
  let blk = Blocking.blocks_2d ~array:"A" ~size:16 in
  List.iter
    (fun (s2, s3, expect) ->
      let spec =
        [ Spec.factor blk
            [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" s2); ("S3", rf "A" s3) ]
        ]
      in
      Alcotest.(check bool)
        (Printf.sprintf "S2:%s S3:%s" (String.concat "," s2) (String.concat "," s3))
        expect (Legality.is_legal p spec))
    cholesky_choice_cases

let test_legality_dynamic_cross_check () =
  (* Execute code generated from each of the six shackles (bypassing the
     static verdict) and compare against the original program: the static
     verdict must agree with whether the numbers come out right. *)
  let p = K.cholesky_right () in
  let blk = Blocking.blocks_2d ~array:"A" ~size:8 in
  let n = 27 in
  let init = Kernels.Inits.for_kernel "cholesky_right" ~n in
  List.iter
    (fun (s2, s3, expect) ->
      let spec =
        [ Spec.factor blk
            [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" s2); ("S3", rf "A" s3) ]
        ]
      in
      let generated = Codegen.Tighten.generate p spec in
      let diff =
        Exec.Verify.max_diff p generated ~params:[ ("N", n) ] ~init
      in
      Alcotest.(check bool)
        (Printf.sprintf "dynamic check S2:%s S3:%s" (String.concat "," s2)
           (String.concat "," s3))
        expect
        (diff <= 1e-9))
    cholesky_choice_cases

let test_enumerate_choices () =
  let p = K.cholesky_right () in
  Alcotest.(check int) "six combinations" 6
    (List.length (Legality.enumerate_choices p ~array:"A"));
  Alcotest.(check int) "matmul: one C ref" 1
    (List.length (Legality.enumerate_choices (K.matmul ()) ~array:"C"))

let test_product_of_legal_is_legal () =
  let p = K.cholesky_right () in
  let write_f =
    Spec.factor (Blocking.blocks_2d ~array:"A" ~size:16)
      [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "I"; "J" ]);
        ("S3", rf "A" [ "L"; "K" ]) ]
  in
  let read_f =
    Spec.factor (Blocking.blocks_2d ~array:"A" ~size:16)
      [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "J"; "J" ]);
        ("S3", rf "A" [ "K"; "J" ]) ]
  in
  Alcotest.(check bool) "write x read" true
    (Legality.is_legal p (Spec.product [ write_f ] [ read_f ]));
  Alcotest.(check bool) "read x write" true
    (Legality.is_legal p (Spec.product [ read_f ] [ write_f ]))

let test_product_can_fix_illegal_factor () =
  (* Section 6: "a product M1 x M2 can be legal even if M2 by itself is
     illegal" — the outer factor carries the dependence.  In matmul, the
     only dependences are on C, carried by K; blocking A with a *reversed*
     K normal visits K blocks backwards, which is illegal alone.  An outer
     width-1 blocking of B's rows pins K exactly, so the product is legal
     (all ties are K = K'). *)
  let p = K.matmul () in
  let reversed_a =
    Spec.factor
      (Blocking.make ~array:"A" ~rank:2
         [ { Blocking.normal = [ 0; -1 ]; width = 4; offset = 1 } ])
      [ ("S1", rf "A" [ "I"; "K" ]) ]
  in
  Alcotest.(check bool) "reversed A factor illegal alone" false
    (Legality.is_legal p [ reversed_a ]);
  let outer_k =
    Spec.factor
      (Blocking.make ~array:"B" ~rank:2
         [ { Blocking.normal = [ 1; 0 ]; width = 1; offset = 1 } ])
      [ ("S1", rf "B" [ "K"; "J" ]) ]
  in
  Alcotest.(check bool) "outer K factor legal alone" true
    (Legality.is_legal p [ outer_k ]);
  Alcotest.(check bool) "product is legal" true
    (Legality.is_legal p (Spec.product [ outer_k ] [ reversed_a ]))

let test_starved_solver_is_conservative () =
  (* a shackle that is provably legal under an unlimited budget: a starved
     solver must answer Unknown (and the boolean collapse false), never
     Legal — degradation may reject, it may not admit *)
  let p = K.matmul () in
  let spec =
    [ Spec.factor (Blocking.blocks_2d ~array:"C" ~size:25)
        [ ("S1", rf "C" [ "I"; "J" ]) ] ]
  in
  Alcotest.(check bool) "legal with unlimited budget" true
    (Legality.is_legal p spec);
  let deps = Dependence.Dep.analyze p in
  let starved () = Polyhedra.Omega.Ctx.create ~fuel:0 () in
  (match Legality.check_deps ~ctx:(starved ()) p spec deps with
  | Legality.Unknown reason ->
    Alcotest.(check string) "gave-up reason" "fuel" reason
  | Legality.Legal -> Alcotest.fail "starved check claimed Legal"
  | Legality.Illegal _ -> Alcotest.fail "starved check claimed Illegal");
  (match Legality.probe_deps ~ctx:(starved ()) p spec deps with
  | Shackle.Verdict.Unknown _ -> ()
  | Shackle.Verdict.Legal | Shackle.Verdict.Illegal _ ->
    Alcotest.fail "starved probe answered exactly");
  Alcotest.(check bool) "boolean collapse is conservative" false
    (Legality.is_legal_deps ~ctx:(starved ()) p spec deps)

(* --- Theorem 2 --- *)

let test_span_matmul () =
  let p = K.matmul () in
  let c_only =
    [ Spec.factor (Blocking.blocks_2d ~array:"C" ~size:25)
        [ ("S1", rf "C" [ "I"; "J" ]) ] ]
  in
  Alcotest.(check bool) "C alone leaves refs unconstrained" false
    (Span.fully_constrained p c_only);
  let c_and_a =
    c_only
    @ [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size:25)
          [ ("S1", rf "A" [ "I"; "K" ]) ] ]
  in
  Alcotest.(check bool) "C x A constrains everything" true
    (Span.fully_constrained p c_and_a);
  (* B x A also works; B alone does not *)
  let b_only =
    [ Spec.factor (Blocking.blocks_2d ~array:"B" ~size:25)
        [ ("S1", rf "B" [ "K"; "J" ]) ] ]
  in
  Alcotest.(check bool) "B alone insufficient" false
    (Span.fully_constrained p b_only)

let test_span_cholesky () =
  let p = K.cholesky_right () in
  let write_f =
    [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size:64)
        [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "I"; "J" ]);
          ("S3", rf "A" [ "L"; "K" ]) ] ]
  in
  (* the write shackle leaves S3's reads A(L,J), A(K,J) unconstrained
     ("the reads are distributed over the entire left portion") *)
  let unconstrained = Span.unconstrained_refs p write_f in
  Alcotest.(check bool) "some refs unconstrained" true (unconstrained <> []);
  let read_f =
    [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size:64)
        [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "J"; "J" ]);
          ("S3", rf "A" [ "K"; "J" ]) ] ]
  in
  Alcotest.(check bool) "product fully constrains" true
    (Span.fully_constrained p (write_f @ read_f))

(* --- reference semantics --- *)

let test_refsem_permutation () =
  let p = K.cholesky_right () in
  let spec =
    [ Spec.factor (Blocking.blocks_2d ~array:"A" ~size:5)
        [ ("S1", rf "A" [ "J"; "J" ]); ("S2", rf "A" [ "I"; "J" ]);
          ("S3", rf "A" [ "L"; "K" ]) ] ]
  in
  let params = [ ("N", 13) ] in
  let order = Refsem.order p spec ~params in
  Alcotest.(check bool) "permutation" true
    (Refsem.same_instances order (Refsem.original_order p ~params));
  (* block vectors are lexicographically non-decreasing *)
  let rec nondecreasing = function
    | a :: (b :: _ as tl) ->
      compare a.Refsem.block b.Refsem.block <= 0 && nondecreasing tl
    | _ -> true
  in
  Alcotest.(check bool) "blocks in lex order" true (nondecreasing order)

let test_refsem_within_block_order () =
  let p = K.matmul () in
  let spec =
    [ Spec.factor (Blocking.blocks_2d ~array:"C" ~size:4)
        [ ("S1", rf "C" [ "I"; "J" ]) ] ]
  in
  let params = [ ("N", 8) ] in
  let order = Refsem.order p spec ~params in
  (* within one block, instances appear in original lexicographic (I,J,K)
     order *)
  let in_block =
    List.filter (fun i -> i.Refsem.block = [| 1; 1 |]) order
  in
  let keys =
    List.map
      (fun i ->
        ( Walk.lookup i.Refsem.env "I",
          Walk.lookup i.Refsem.env "J",
          Walk.lookup i.Refsem.env "K" ))
      in_block
  in
  Alcotest.(check bool) "sorted" true (List.sort compare keys = keys);
  Alcotest.(check int) "16 points x 8 k" (4 * 4 * 8) (List.length keys)

let () =
  Alcotest.run "shackle"
    [ ( "blocking",
        [ Alcotest.test_case "coord_of_point" `Quick test_coord_of_point;
          Alcotest.test_case "storage order" `Quick test_storage_order_colmajor;
          Alcotest.test_case "skewed planes" `Quick test_skewed_blocking;
          Alcotest.test_case "membership guards" `Quick test_membership_guard_eval;
          Alcotest.test_case "coord ranges" `Quick test_coord_ranges ] );
      ( "spec",
        [ Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "block vector" `Quick test_block_vector;
          Alcotest.test_case "dummy reference" `Quick test_dummy_reference ] );
      ( "legality",
        [ Alcotest.test_case "matmul single shackles" `Quick
            test_matmul_all_single_shackles_legal;
          Alcotest.test_case "cholesky six choices" `Quick
            test_cholesky_six_choices;
          Alcotest.test_case "static vs dynamic" `Slow
            test_legality_dynamic_cross_check;
          Alcotest.test_case "enumerate choices" `Quick test_enumerate_choices;
          Alcotest.test_case "product of legal" `Quick
            test_product_of_legal_is_legal;
          Alcotest.test_case "product fixes illegal factor" `Slow
            test_product_can_fix_illegal_factor;
          Alcotest.test_case "starved solver is conservative" `Quick
            test_starved_solver_is_conservative ] );
      ( "span",
        [ Alcotest.test_case "matmul (Theorem 2)" `Quick test_span_matmul;
          Alcotest.test_case "cholesky" `Quick test_span_cholesky ] );
      ( "refsem",
        [ Alcotest.test_case "permutation + lex blocks" `Quick
            test_refsem_permutation;
          Alcotest.test_case "within-block order" `Quick
            test_refsem_within_block_order ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_membership_matches_coord ] )
    ]
