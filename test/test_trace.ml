(* Unit tests for the chunked trace recorder: word packing, chunk-boundary
   flushes, the streaming tee, and replay accounting. *)

(* Re-emit every access of [t] into a list of (write, addr) pairs. *)
let events t =
  let acc = ref [] in
  Trace.iter t (fun ~write ~addr -> acc := (write, addr) :: !acc);
  List.rev !acc

let emit_all r evs =
  List.iter (fun (write, addr) -> Trace.emit r ~write ~addr) evs

let sample n = List.init n (fun i -> (i mod 3 = 0, i * 7))

(* --- packed words --- *)

let test_word_packing () =
  List.iter
    (fun (write, addr) ->
      let w = Trace.word ~write ~addr in
      Alcotest.(check int) "addr survives" addr (Trace.word_addr w);
      Alcotest.(check bool) "write bit survives" write (Trace.word_is_write w))
    [ (false, 0); (true, 0); (false, 1); (true, max_int asr 1);
      (true, 123456789) ]

(* --- store mode --- *)

let test_store_roundtrip () =
  let evs = sample 1000 in
  (* chunk of 64 forces 15 full chunks plus a 40-word tail *)
  let r = Trace.create_recorder ~chunk_words:64 () in
  emit_all r evs;
  let t = Trace.finish r in
  Alcotest.(check (list (pair bool int))) "replay = record order" evs (events t);
  Alcotest.(check int) "length" 1000 (Trace.length t);
  Alcotest.(check int) "emitted" 1000 (Trace.emitted t);
  Alcotest.(check int) "chunks" 16 (Trace.num_chunks t);
  (* bytes reports held capacity: 16 chunk arrays of 64 words each *)
  Alcotest.(check int) "bytes = chunk capacity held" (16 * 64 * 8)
    (Trace.bytes t)

let test_exact_chunk_boundary () =
  (* a stream that is a whole number of chunks must not produce an empty
     tail chunk *)
  let r = Trace.create_recorder ~chunk_words:8 () in
  emit_all r (sample 16);
  let t = Trace.finish r in
  Alcotest.(check int) "two chunks exactly" 2 (Trace.num_chunks t);
  Alcotest.(check int) "length" 16 (Trace.length t)

let test_empty_trace () =
  let t = Trace.finish (Trace.create_recorder ()) in
  Alcotest.(check int) "length" 0 (Trace.length t);
  Alcotest.(check int) "chunks" 0 (Trace.num_chunks t);
  Alcotest.(check int) "bytes" 0 (Trace.bytes t);
  Alcotest.(check (list (pair bool int))) "no events" [] (events t)

let test_iter_chunks_sizes () =
  let r = Trace.create_recorder ~chunk_words:32 () in
  emit_all r (sample 100);
  let t = Trace.finish r in
  let sizes = ref [] in
  Trace.iter_chunks t (fun _ len -> sizes := len :: !sizes);
  Alcotest.(check (list int)) "three full chunks then the tail"
    [ 32; 32; 32; 4 ] (List.rev !sizes)

(* --- tee mode --- *)

let test_tee_broadcasts_everything () =
  let seen1 = ref [] and seen2 = ref [] in
  let consume seen buf len =
    (* copy out: the buffer is reused after we return *)
    for i = 0 to len - 1 do
      seen := (Trace.word_is_write buf.(i), Trace.word_addr buf.(i)) :: !seen
    done
  in
  let evs = sample 300 in
  let r =
    Trace.create_recorder ~chunk_words:16 ~keep:false
      ~consumers:[ consume seen1 ] ()
  in
  Trace.add_consumer r (consume seen2);
  emit_all r evs;
  let t = Trace.finish r in
  Alcotest.(check (list (pair bool int))) "consumer 1" evs (List.rev !seen1);
  Alcotest.(check (list (pair bool int))) "consumer 2" evs (List.rev !seen2);
  (* pure tee stores nothing but still accounts for the stream *)
  Alcotest.(check int) "nothing stored" 0 (Trace.length t);
  Alcotest.(check int) "bytes" 0 (Trace.bytes t);
  Alcotest.(check int) "emitted" 300 (Trace.emitted t);
  Alcotest.(check int) "chunks" 19 (Trace.num_chunks t)

let test_store_and_tee_combined () =
  let seen = ref [] in
  let consume buf len =
    for i = 0 to len - 1 do
      seen := buf.(i) :: !seen
    done
  in
  let evs = sample 50 in
  let r = Trace.create_recorder ~chunk_words:8 ~consumers:[ consume ] () in
  emit_all r evs;
  let t = Trace.finish r in
  Alcotest.(check int) "stored too" 50 (Trace.length t);
  Alcotest.(check (list (pair bool int))) "tee saw the stream" evs
    (List.rev_map
       (fun w -> (Trace.word_is_write w, Trace.word_addr w))
       !seen);
  Alcotest.(check (list (pair bool int))) "replay agrees" evs (events t)

let test_replay_is_repeatable () =
  let r = Trace.create_recorder ~chunk_words:16 () in
  emit_all r (sample 100);
  let t = Trace.finish r in
  Alcotest.(check (list (pair bool int))) "second replay identical" (events t)
    (events t)

(* --- deterministic merge --- *)

let record ~chunk_words evs =
  let r = Trace.create_recorder ~chunk_words () in
  emit_all r evs;
  Trace.finish r

let test_concat_matches_single_recording () =
  (* concat must be byte-identical to recording the parts back-to-back
     into one recorder: same words, same chunk boundaries, same
     accounting.  Parts are recorded with a different chunk size to prove
     re-chunking; one part is empty. *)
  let evs = sample 100 in
  let parts =
    [ List.filteri (fun i _ -> i < 37) evs; [];
      List.filteri (fun i _ -> i >= 37) evs ]
  in
  let whole = record ~chunk_words:16 evs in
  let merged =
    Trace.concat ~chunk_words:16 (List.map (record ~chunk_words:8) parts)
  in
  Alcotest.(check bool) "words" true (Trace.equal whole merged);
  Alcotest.(check int) "length" (Trace.length whole) (Trace.length merged);
  Alcotest.(check int) "chunks" (Trace.num_chunks whole)
    (Trace.num_chunks merged);
  Alcotest.(check int) "bytes" (Trace.bytes whole) (Trace.bytes merged);
  Alcotest.(check (list (pair bool int))) "events" evs (events merged)

let test_equal_discriminates () =
  let evs = sample 50 in
  let a = record ~chunk_words:8 evs in
  let b = record ~chunk_words:32 evs in
  Alcotest.(check bool) "chunking ignored" true (Trace.equal a b);
  let c = record ~chunk_words:8 ((true, 9999) :: evs) in
  Alcotest.(check bool) "different streams differ" false (Trace.equal a c);
  let d = record ~chunk_words:8 (List.filteri (fun i _ -> i < 49) evs) in
  Alcotest.(check bool) "proper prefix differs" false (Trace.equal a d)

let () =
  Alcotest.run "trace"
    [ ( "words",
        [ Alcotest.test_case "packing" `Quick test_word_packing ] );
      ( "store",
        [ Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "exact chunk boundary" `Quick
            test_exact_chunk_boundary;
          Alcotest.test_case "empty" `Quick test_empty_trace;
          Alcotest.test_case "chunk sizes" `Quick test_iter_chunks_sizes ] );
      ( "tee",
        [ Alcotest.test_case "broadcast" `Quick test_tee_broadcasts_everything;
          Alcotest.test_case "store + tee" `Quick test_store_and_tee_combined;
          Alcotest.test_case "repeatable replay" `Quick
            test_replay_is_repeatable ] );
      ( "merge",
        [ Alcotest.test_case "concat = one recording" `Quick
            test_concat_matches_single_recording;
          Alcotest.test_case "equal discriminates" `Quick
            test_equal_discriminates ] ) ]
