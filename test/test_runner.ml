(* Tests for the Domain-based work pool, the JSON serializer/parser, and
   the metrics pipeline: parallel and sequential runs of a figure must
   produce identical rows, and metrics must round-trip through JSON. *)

module F = Experiments.Figures
module Json = Observe.Json
module Metrics = Observe.Metrics
module Model = Machine.Model

(* --- Runner --- *)

let test_map_orders () =
  let xs = List.init 100 Fun.id in
  let f x = (x * 7) mod 31 in
  Alcotest.(check (list int)) "domains:1" (List.map f xs) (Runner.map ~domains:1 f xs);
  Alcotest.(check (list int)) "domains:4" (List.map f xs) (Runner.map ~domains:4 f xs);
  Alcotest.(check (list int))
    "more domains than items" (List.map f [ 1; 2; 3 ])
    (Runner.map ~domains:16 f [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "empty" [] (Runner.map ~domains:4 f []);
  Alcotest.(check (list int)) "singleton" [ f 9 ] (Runner.map ~domains:4 f [ 9 ])

let test_mapi_and_run_all () =
  let xs = [ "a"; "b"; "c"; "d" ] in
  Alcotest.(check (list string))
    "mapi"
    [ "0a"; "1b"; "2c"; "3d" ]
    (Runner.mapi ~domains:3 (fun i s -> string_of_int i ^ s) xs);
  Alcotest.(check (list int))
    "run_all" [ 1; 2; 3 ]
    (Runner.run_all ~domains:2 [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ])

let test_uneven_work_keeps_order () =
  (* Tasks that finish out of order must still land in input order. *)
  let xs = [ 50000; 1; 20000; 2; 10000; 3 ] in
  let f n =
    let acc = ref 0 in
    for i = 1 to n do
      acc := !acc + i
    done;
    !acc
  in
  Alcotest.(check (list int)) "order preserved" (List.map f xs)
    (Runner.map ~domains:4 f xs)

exception Boom of int

let test_exception_propagates () =
  let raised =
    try
      ignore
        (Runner.map ~domains:4
           (fun x -> if x = 5 then raise (Boom x) else x)
           (List.init 10 Fun.id));
      false
    with Boom 5 -> true
  in
  Alcotest.(check bool) "Boom propagated" true raised

(* --- supervised pool: map_outcomes --- *)

let outcome_ints = function
  | Runner.Ok v -> Printf.sprintf "ok:%d" v
  | Runner.Failed (e, _) -> "failed:" ^ Printexc.to_string e
  | Runner.Timed_out -> "timeout"

let test_outcomes_all_ok_equals_map () =
  let xs = List.init 50 Fun.id in
  let f x = (x * 13) mod 17 in
  Alcotest.(check (list string))
    "outcomes = map on the happy path"
    (List.map (fun x -> "ok:" ^ string_of_int (f x)) xs)
    (List.map outcome_ints
       (Runner.map_outcomes ~domains:3
          (fun token x ->
            Runner.Token.check token;
            f x)
          xs))

let test_outcomes_failed_preserves_exn () =
  let outcomes =
    Runner.map_outcomes ~domains:1
      (fun _ x -> if x = 2 then raise (Boom x) else x * 10)
      [ 0; 1; 2; 3 ]
  in
  match outcomes with
  | [ Runner.Ok 0; Runner.Ok 10; Runner.Failed (Boom 2, bt); Runner.Ok 30 ] ->
    (* the backtrace is the raise site's, captured per-slot *)
    ignore (Printexc.raw_backtrace_to_string bt)
  | os ->
    Alcotest.failf "unexpected outcomes [%s]"
      (String.concat "; " (List.map outcome_ints os))

let test_outcomes_deterministic_across_domains () =
  let xs = List.init 40 Fun.id in
  let f _ x = if x mod 7 = 3 then raise (Boom x) else x * x in
  let show os = String.concat ";" (List.map outcome_ints os) in
  Alcotest.(check string) "domains 1 = domains 4"
    (show (Runner.map_outcomes ~domains:1 f xs))
    (show (Runner.map_outcomes ~domains:4 f xs))

let test_outcomes_timeout_does_not_poison () =
  (* one slot sleeps past its deadline; the slots after it must still
     complete normally (fresh tokens per task, nothing shared) *)
  let f token x =
    if x = 1 then begin
      Unix.sleepf 0.08;
      Runner.Token.check token;
      x
    end
    else x * 2
  in
  let outcomes = Runner.map_outcomes ~domains:2 ~timeout_ms:30 f [ 0; 1; 2; 3 ] in
  match outcomes with
  | [ Runner.Ok 0; Runner.Timed_out; Runner.Ok 4; Runner.Ok 6 ] -> ()
  | os ->
    Alcotest.failf "unexpected outcomes [%s]"
      (String.concat "; " (List.map outcome_ints os))

let test_outcomes_retry_recovers () =
  (* flaky task: fails on the first attempt, succeeds on the second; with
     retries:1 the slot must come back Ok *)
  let attempts = Array.make 3 0 in
  let f _ x =
    attempts.(x) <- attempts.(x) + 1;
    if x = 1 && attempts.(x) = 1 then raise (Boom x) else x
  in
  let outcomes =
    Runner.map_outcomes ~domains:1 ~retries:1 ~backoff_ms:1 f [ 0; 1; 2 ]
  in
  (match outcomes with
  | [ Runner.Ok 0; Runner.Ok 1; Runner.Ok 2 ] -> ()
  | os ->
    Alcotest.failf "unexpected outcomes [%s]"
      (String.concat "; " (List.map outcome_ints os)));
  Alcotest.(check int) "second attempt ran" 2 attempts.(1)

let test_outcomes_on_outcome_sees_every_slot () =
  let seen = Array.make 10 false in
  let _ =
    Runner.map_outcomes ~domains:4
      ~on_outcome:(fun i _ -> seen.(i) <- true)
      (fun _ x -> x)
      (List.init 10 Fun.id)
  in
  Alcotest.(check bool) "all slots notified" true
    (Array.for_all Fun.id seen)

(* --- parallel vs sequential figures --- *)

let rows_json fig =
  Json.to_string (Json.List (List.map F.row_to_json fig.F.f_rows))

(* Drop everything wall-clock-dependent: seconds and the trace timing
   fields.  Trace counts (executions, length, chunks, bytes) stay — they
   are deterministic and must match across parallel/sequential runs. *)
let metrics_sans_seconds fig =
  List.map
    (fun s ->
      { s with
        Metrics.sim_seconds = 0.0;
        sim_trace =
          Option.map
            (fun t ->
              { t with
                Metrics.tr_record_seconds = 0.0;
                tr_replay_seconds = 0.0 })
            s.Metrics.sim_trace })
    fig.F.f_metrics

(* Additionally drop the trace accounting entirely, for comparisons across
   trace modes (the callback path records no trace info at all). *)
let metrics_simulated_only fig =
  List.map
    (fun s -> { s with Metrics.sim_trace = None; sim_sched = None })
    (metrics_sans_seconds fig)

let test_figure_rows_identical () =
  let run domains = F.fig11_cholesky ~sizes:[ 16; 24 ] ~block:8 ~domains () in
  let seq = run 1 and par = run 4 in
  Alcotest.(check string) "rows bitwise-identical" (rows_json seq)
    (rows_json par);
  Alcotest.(check bool) "metrics identical up to wall-clock" true
    (metrics_sans_seconds seq = metrics_sans_seconds par)

let test_trace_modes_agree () =
  (* The record/replay pipeline must reproduce the legacy callback path's
     rows and simulated quantities exactly — same check CI applies to a
     whole figure run via bench --diff-json. *)
  let run mode = F.fig11_cholesky ~sizes:[ 16; 24 ] ~block:8 ~mode () in
  let cb = run Model.Callback and rp = run Model.Replay in
  Alcotest.(check string) "rows bitwise-identical" (rows_json cb)
    (rows_json rp);
  Alcotest.(check bool) "simulated metrics identical" true
    (metrics_simulated_only cb = metrics_simulated_only rp)

let test_replay_executes_once_per_variant () =
  (* fig11 has 3 program variants per size (input, blocked, left-looking)
     fanned into 4 series; with 2 sizes that is 8 metrics rows but only 6
     interpreter executions — the tentpole invariant. *)
  let fig = F.fig11_cholesky ~sizes:[ 16; 24 ] ~block:8 () in
  Alcotest.(check int) "metrics rows" 8 (List.length fig.F.f_metrics);
  let executions =
    List.fold_left
      (fun acc s ->
        match s.Metrics.sim_trace with
        | Some t -> acc + t.Metrics.tr_executions
        | None -> acc)
      0 fig.F.f_metrics
  in
  Alcotest.(check int) "one execution per (variant, size)" 6 executions;
  List.iter
    (fun s ->
      match s.Metrics.sim_trace with
      | Some t ->
        Alcotest.(check bool) "trace length positive" true (t.Metrics.tr_length > 0);
        Alcotest.(check bool) "trace bytes positive" true (t.Metrics.tr_bytes > 0)
      | None -> Alcotest.fail "replay row lacks trace info")
    fig.F.f_metrics

let test_registry_covers_quick_run () =
  List.iter
    (fun id ->
      match F.run_by_id id ~quick:true ~domains:1 () with
      | Some fig ->
        Alcotest.(check string) "id round-trips" id fig.F.f_id;
        Alcotest.(check bool) (id ^ " has rows") true (fig.F.f_rows <> [])
      | None -> Alcotest.failf "unknown id %s" id)
    [ "tab-legality" ];
  Alcotest.(check bool) "registry non-empty" true (F.ids <> []);
  Alcotest.(check (option string)) "unknown id rejected" None
    (Option.map
       (fun f -> f.F.f_id)
       (F.run_by_id "nope" ~quick:true ~domains:1 ()))

(* --- JSON --- *)

let test_json_golden () =
  let j =
    Json.Obj
      [ ("name", Json.Str "x\ny");
        ("n", Json.Int (-3));
        ("pi", Json.Float 2.5);
        ("whole", Json.Float 4.0);
        ("flags", Json.List [ Json.Bool true; Json.Null ]);
        ("empty", Json.Obj []) ]
  in
  Alcotest.(check string) "compact golden"
    "{\"name\":\"x\\ny\",\"n\":-3,\"pi\":2.5,\"whole\":4.0,\"flags\":[true,null],\"empty\":{}}"
    (Json.to_string j);
  match Json.of_string (Json.to_string ~pretty:true j) with
  | Ok j' -> Alcotest.(check bool) "round-trips via pretty" true (Json.equal j j')
  | Error e -> Alcotest.fail e

let test_json_parser_rejects () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_numbers () =
  (match Json.of_string "[0,-7,2.5,1e3,-1.25e-2]" with
   | Ok
       (Json.List
          [ Json.Int 0; Json.Int (-7); Json.Float 2.5; Json.Float 1000.;
            Json.Float (-0.0125) ]) -> ()
   | Ok j -> Alcotest.failf "unexpected parse %s" (Json.to_string j)
   | Error e -> Alcotest.fail e);
  (* floats always re-parse as floats, even when integral *)
  match Json.of_string (Json.to_string (Json.Float 3.0)) with
  | Ok (Json.Float 3.0) -> ()
  | _ -> Alcotest.fail "integral float did not survive a round-trip"

(* --- Metrics --- *)

let sample_sim =
  { Metrics.sim_label = "cholesky_right/N=16/input";
    sim_machine = "sp2-like";
    sim_quality = "untuned";
    sim_flops = 816;
    sim_instances = 696;
    sim_accesses = 2328;
    sim_levels =
      [ { Metrics.lv_name = "L1";
          lv_accesses = 2328;
          lv_hits = 2295;
          lv_misses = 33;
          lv_evictions = 0 } ];
    sim_cycles = 4353.0;
    sim_mflops = 12.37;
    sim_seconds = 0.25;
    sim_trace = None;
    sim_sched = None }

let metrics_golden =
  "{\"label\":\"cholesky_right/N=16/input\",\"machine\":\"sp2-like\",\
   \"quality\":\"untuned\",\"flops\":816,\"instances\":696,\
   \"accesses\":2328,\"levels\":[{\"name\":\"L1\",\"accesses\":2328,\
   \"hits\":2295,\"misses\":33,\"evictions\":0}],\"cycles\":4353.0,\
   \"mflops\":12.37,\"seconds\":0.25}"

let test_metrics_golden_roundtrip () =
  Alcotest.(check string) "serializer golden" metrics_golden
    (Json.to_string (Metrics.sim_to_json sample_sim));
  match Json.of_string metrics_golden with
  | Error e -> Alcotest.fail e
  | Ok j ->
    (match Metrics.sim_of_json j with
     | Ok s -> Alcotest.(check bool) "round-trip" true (s = sample_sim)
     | Error e -> Alcotest.fail e)

let test_metrics_trace_roundtrip () =
  let with_trace =
    { sample_sim with
      Metrics.sim_trace =
        Some
          { Metrics.tr_executions = 1;
            tr_length = 2328;
            tr_chunks = 1;
            tr_bytes = 18624;
            tr_record_seconds = 0.5;
            tr_replay_seconds = 0.25 } }
  in
  match Json.of_string (Json.to_string (Metrics.sim_to_json with_trace)) with
  | Error e -> Alcotest.fail e
  | Ok j ->
    (match Metrics.sim_of_json j with
     | Ok s ->
       Alcotest.(check bool) "trace info round-trips" true (s = with_trace)
     | Error e -> Alcotest.fail e)

let test_metrics_of_json_rejects () =
  match Json.of_string "{\"label\":\"x\"}" with
  | Error e -> Alcotest.fail e
  | Ok j ->
    (match Metrics.sim_of_json j with
     | Ok _ -> Alcotest.fail "accepted a sim without counters"
     | Error msg ->
       Alcotest.(check bool) "names the field" true
         (String.length msg > 0))

let test_metrics_collect_isolates () =
  let (inner, inner_sims), outer_sims =
    Metrics.collect (fun () ->
        Metrics.record { sample_sim with Metrics.sim_label = "outer" };
        Metrics.collect (fun () ->
            Metrics.record { sample_sim with Metrics.sim_label = "inner" };
            42))
  in
  Alcotest.(check int) "value" 42 inner;
  Alcotest.(check (list string)) "inner sees only inner" [ "inner" ]
    (List.map (fun s -> s.Metrics.sim_label) inner_sims);
  Alcotest.(check (list string)) "outer sees only outer" [ "outer" ]
    (List.map (fun s -> s.Metrics.sim_label) outer_sims)

let test_metrics_recorded_per_point () =
  let fig = F.fig12_qr ~sizes:[ 12; 16 ] ~width:4 ~domains:2 () in
  (* three series per size *)
  Alcotest.(check int) "one metrics row per simulation" 6
    (List.length fig.F.f_metrics);
  List.iter
    (fun s ->
      Alcotest.(check bool) "level stats populated" true
        (s.Metrics.sim_levels <> []);
      Alcotest.(check bool) "accesses positive" true (s.Metrics.sim_accesses > 0))
    fig.F.f_metrics

(* --- Deque --- *)

let test_deque_lifo_fifo () =
  let d = Runner.Deque.create () in
  Alcotest.(check (option int)) "pop empty" None (Runner.Deque.pop d);
  Alcotest.(check (option int)) "steal empty" None (Runner.Deque.steal d);
  List.iter (Runner.Deque.push d) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Runner.Deque.length d);
  Alcotest.(check (option int)) "owner pops newest" (Some 4)
    (Runner.Deque.pop d);
  Alcotest.(check (option int)) "thief steals oldest" (Some 1)
    (Runner.Deque.steal d);
  Alcotest.(check (option int)) "next steal" (Some 2) (Runner.Deque.steal d);
  Alcotest.(check (option int)) "owner gets the rest" (Some 3)
    (Runner.Deque.pop d);
  Alcotest.(check (option int)) "now empty" None (Runner.Deque.pop d);
  Alcotest.(check int) "length 0" 0 (Runner.Deque.length d)

let test_deque_grows () =
  (* push far past any plausible initial capacity, then drain from both
     ends and check nothing was lost or reordered *)
  let d = Runner.Deque.create () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Runner.Deque.push d i
  done;
  let stolen = List.init (n / 2) (fun _ -> Runner.Deque.steal d) in
  let popped = List.init (n / 2) (fun _ -> Runner.Deque.pop d) in
  Alcotest.(check (list (option int))) "steals are FIFO"
    (List.init (n / 2) (fun i -> Some i))
    stolen;
  Alcotest.(check (list (option int))) "pops are LIFO"
    (List.init (n / 2) (fun i -> Some (n - 1 - i)))
    popped;
  Alcotest.(check (option int)) "drained" None (Runner.Deque.steal d)

let () =
  Alcotest.run "runner"
    [ ( "runner",
        [ Alcotest.test_case "map ordering" `Quick test_map_orders;
          Alcotest.test_case "mapi and run_all" `Quick test_mapi_and_run_all;
          Alcotest.test_case "uneven work" `Quick test_uneven_work_keeps_order;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates ] );
      ( "deque",
        [ Alcotest.test_case "lifo owner, fifo thief" `Quick
            test_deque_lifo_fifo;
          Alcotest.test_case "grows" `Quick test_deque_grows ] );
      ( "outcomes",
        [ Alcotest.test_case "all ok = map" `Quick test_outcomes_all_ok_equals_map;
          Alcotest.test_case "Failed keeps exn and backtrace" `Quick
            test_outcomes_failed_preserves_exn;
          Alcotest.test_case "deterministic across domain counts" `Quick
            test_outcomes_deterministic_across_domains;
          Alcotest.test_case "timeout does not poison later slots" `Quick
            test_outcomes_timeout_does_not_poison;
          Alcotest.test_case "retry recovers a flaky slot" `Quick
            test_outcomes_retry_recovers;
          Alcotest.test_case "on_outcome sees every slot" `Quick
            test_outcomes_on_outcome_sees_every_slot ] );
      ( "figures",
        [ Alcotest.test_case "parallel = sequential rows" `Quick
            test_figure_rows_identical;
          Alcotest.test_case "callback = replay" `Quick test_trace_modes_agree;
          Alcotest.test_case "replay executes once per variant" `Quick
            test_replay_executes_once_per_variant;
          Alcotest.test_case "registry" `Quick test_registry_covers_quick_run ] );
      ( "json",
        [ Alcotest.test_case "golden" `Quick test_json_golden;
          Alcotest.test_case "rejects malformed" `Quick test_json_parser_rejects;
          Alcotest.test_case "numbers" `Quick test_json_numbers ] );
      ( "metrics",
        [ Alcotest.test_case "golden round-trip" `Quick
            test_metrics_golden_roundtrip;
          Alcotest.test_case "trace info round-trip" `Quick
            test_metrics_trace_roundtrip;
          Alcotest.test_case "rejects partial" `Quick test_metrics_of_json_rejects;
          Alcotest.test_case "collect isolates" `Quick
            test_metrics_collect_isolates;
          Alcotest.test_case "per-point records" `Quick
            test_metrics_recorded_per_point ] ) ]
