(* Tests for the fuzzing subsystem itself: the generator's validity
   invariants, determinism of whole campaigns, the shrinker, and — the key
   one — that a deliberately broken legality checker is caught by the
   brute-force oracle and minimized to a tiny repro. *)

module Ast = Loopir.Ast
module Rng = Fuzzing.Rng
module Gen = Fuzzing.Gen
module Brute = Fuzzing.Brute
module Oracle = Fuzzing.Oracle
module Shrink = Fuzzing.Shrink
module Driver = Fuzzing.Driver

let stmt_count p = List.length (Ast.statements p)

(* --- rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 43 in
  Alcotest.(check bool) "different seeds differ" true
    (List.init 20 (fun _ -> Rng.int a 1000)
    <> List.init 20 (fun _ -> Rng.int c 1000))

let test_rng_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.range rng (-3) 5 in
    if v < -3 || v > 5 then Alcotest.failf "range out of bounds: %d" v
  done

(* --- generator invariants --- *)

let test_generator_valid () =
  (* every generated program is well-formed, executes in range for small N,
     and survives print -> parse -> print *)
  for seed = 1 to 60 do
    let prog = Gen.program ~quick:(seed mod 2 = 0) (Rng.create seed) in
    if not (Ast.arity_ok prog) then Alcotest.failf "arity_ok fails at seed %d" seed;
    List.iter
      (fun n ->
        match
          Exec.Verify.run_program prog ~params:[ ("N", n) ] ~init:(fun _ _ -> 1.0)
        with
        | exception e ->
          Alcotest.failf "seed %d raises at N=%d: %s\n%s" seed n
            (Printexc.to_string e)
            (Ast.program_to_string prog)
        | _ -> ())
      [ 2; 3; 4; 5 ];
    let s = Ast.program_to_string prog in
    let s' = Ast.program_to_string (Loopir.Parser.program s) in
    if not (String.equal s s') then
      Alcotest.failf "roundtrip not a fixpoint at seed %d" seed
  done

let test_generator_deterministic () =
  for seed = 1 to 20 do
    let p1 = Gen.program (Rng.create seed) in
    let p2 = Gen.program (Rng.create seed) in
    Alcotest.(check string)
      (Printf.sprintf "seed %d" seed)
      (Ast.program_to_string p1) (Ast.program_to_string p2)
  done

(* --- brute-force layer --- *)

let test_brute_accesses () =
  (* a 2x2 matmul-style nest: N^3 instances, 4 accesses each *)
  let p = Loopir.Parser.program
      "! t (params: N)\n\
       real A(N, N)\n\
       do I = 1, N\n\
       do J = 1, N\n\
       do K = 1, N\n\
       S1: A(I, J) = A(I, J) + A(I, K) * A(K, J)\n\
       end do\n\
       end do\n\
       end do\n"
  in
  let acc = Brute.accesses p ~params:[ ("N", 2) ] in
  Alcotest.(check int) "4 accesses x 8 instances" 32 (List.length acc);
  let writes = List.filter (fun (a : Brute.access) -> a.is_write) acc in
  Alcotest.(check int) "one write per instance" 8 (List.length writes)

let test_brute_lex () =
  Alcotest.(check bool) "lt" true (Brute.lex_lt [| 1; 5 |] [| 2; 0 |]);
  Alcotest.(check bool) "eq" false (Brute.lex_lt [| 1; 5 |] [| 1; 5 |]);
  Alcotest.(check bool) "gt" false (Brute.lex_lt [| 2; 0 |] [| 1; 5 |])

(* --- campaign: zero discrepancies, deterministic, domain independent --- *)

let run_quick ~domains ~seeds =
  Driver.run ~domains ~quick:true ~seeds ~first_seed:1 ()

let test_campaign_clean () =
  let r = run_quick ~domains:1 ~seeds:40 in
  List.iter (fun f -> print_endline (Driver.failure_to_string f)) r.Driver.failures;
  Alcotest.(check int) "no failures" 0 (List.length r.Driver.failures);
  Alcotest.(check bool) "some specs checked" true (r.Driver.stats.Oracle.specs > 0);
  Alcotest.(check bool) "some runs verified" true (r.Driver.stats.Oracle.verified > 0)

let test_campaign_deterministic () =
  let j1 = Observe.Json.to_string (Driver.to_json (run_quick ~domains:1 ~seeds:15)) in
  let j2 = Observe.Json.to_string (Driver.to_json (run_quick ~domains:3 ~seeds:15)) in
  Alcotest.(check string) "same report for any domain count" j1 j2

(* --- the acceptance-criterion test: an injected legality bug is caught
   and shrunk to a small repro --- *)

let test_injected_bug_caught () =
  let config = Oracle.quick in
  let rec hunt seed =
    if seed > 100 then Alcotest.fail "no seed caught the injected bug"
    else
      match
        Driver.run_seed ~hooks:Oracle.always_legal_hooks ~config ~quick:true seed
      with
      | Ok _ -> hunt (seed + 1)
      | Error f ->
        print_endline (Driver.failure_to_string f);
        (* the broken checker calls illegal shackles legal; the oracle must
           report it as a legality or codegen divergence and shrink hard *)
        Alcotest.(check bool) "kind is legality" true (f.Driver.kind = Oracle.Legality);
        Alcotest.(check bool)
          (Printf.sprintf "minimized to <= 5 statements (got %d)"
             f.Driver.minimized_stmts)
          true
          (f.Driver.minimized_stmts <= 5);
        Alcotest.(check bool) "shrinking never grows" true
          (f.Driver.minimized_stmts <= f.Driver.original_stmts)
  in
  hunt 1

(* --- shrinker --- *)

let test_shrinker_minimizes () =
  (* purely syntactic keep predicate: "statement S2 still present";
     the minimum is the single statement S2 at top level with constant
     subscripts *)
  let p = Loopir.Parser.program
      "! t (params: N)\n\
       real A(N, N)\n\
       real B(N)\n\
       do I = 1, N\n\
       S1: A(I, 1) = 2.0\n\
       do J = 1, I\n\
       if (J >= 2) then\n\
       S2: A(I, J) = A(I, J) + B(J) * 0.5\n\
       end if\n\
       S3: B(J) = A(I, J)\n\
       end do\n\
       end do\n"
  in
  let keep q =
    List.exists (fun (_, s) -> String.equal s.Ast.label "S2") (Ast.statements q)
  in
  let m = Shrink.minimize ~keep p in
  Alcotest.(check bool) "keep holds" true (keep m);
  Alcotest.(check int) "single statement" 1 (stmt_count m);
  Alcotest.(check int) "no loops or guards left" 1 (List.length m.Ast.body);
  match m.Ast.body with
  | [ Ast.Stmt s ] -> Alcotest.(check string) "it is S2" "S2" s.Ast.label
  | _ -> Alcotest.fail "expected a bare statement"

let test_shrinker_respects_keep () =
  (* a keep predicate nothing satisfies leaves the program unchanged *)
  let p = Gen.program (Rng.create 5) in
  let m = Shrink.minimize ~keep:(fun _ -> false) p in
  Alcotest.(check string) "unchanged" (Ast.program_to_string p)
    (Ast.program_to_string m)

let () =
  Alcotest.run "fuzz"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "range" `Quick test_rng_range ] );
      ( "generator",
        [ Alcotest.test_case "valid programs" `Quick test_generator_valid;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic ] );
      ( "brute",
        [ Alcotest.test_case "accesses" `Quick test_brute_accesses;
          Alcotest.test_case "lex order" `Quick test_brute_lex ] );
      ( "campaign",
        [ Alcotest.test_case "clean on quick seeds" `Quick test_campaign_clean;
          Alcotest.test_case "deterministic across domains" `Quick
            test_campaign_deterministic ] );
      ( "oracle",
        [ Alcotest.test_case "injected legality bug caught and shrunk" `Quick
            test_injected_bug_caught ] );
      ( "shrinker",
        [ Alcotest.test_case "minimizes to the core" `Quick test_shrinker_minimizes;
          Alcotest.test_case "respects keep" `Quick test_shrinker_respects_keep ] ) ]
