(* Tests for the fuzzing subsystem itself: the generator's validity
   invariants, determinism of whole campaigns, the shrinker, and — the key
   one — that a deliberately broken legality checker is caught by the
   brute-force oracle and minimized to a tiny repro. *)

module Ast = Loopir.Ast
module Rng = Fuzzing.Rng
module Gen = Fuzzing.Gen
module Brute = Fuzzing.Brute
module Oracle = Fuzzing.Oracle
module Shrink = Fuzzing.Shrink
module Driver = Fuzzing.Driver
module Fault = Fuzzing.Fault
module Json = Observe.Json

let stmt_count p = List.length (Ast.statements p)

(* --- rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 43 in
  Alcotest.(check bool) "different seeds differ" true
    (List.init 20 (fun _ -> Rng.int a 1000)
    <> List.init 20 (fun _ -> Rng.int c 1000))

let test_rng_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.range rng (-3) 5 in
    if v < -3 || v > 5 then Alcotest.failf "range out of bounds: %d" v
  done

(* --- generator invariants --- *)

let test_generator_valid () =
  (* every generated program is well-formed, executes in range for small N,
     and survives print -> parse -> print *)
  for seed = 1 to 60 do
    let prog = Gen.program ~quick:(seed mod 2 = 0) (Rng.create seed) in
    if not (Ast.arity_ok prog) then Alcotest.failf "arity_ok fails at seed %d" seed;
    List.iter
      (fun n ->
        match
          Exec.Verify.run_program prog ~params:[ ("N", n) ] ~init:(fun _ _ -> 1.0)
        with
        | exception e ->
          Alcotest.failf "seed %d raises at N=%d: %s\n%s" seed n
            (Printexc.to_string e)
            (Ast.program_to_string prog)
        | _ -> ())
      [ 2; 3; 4; 5 ];
    let s = Ast.program_to_string prog in
    let s' = Ast.program_to_string (Loopir.Parser.program s) in
    if not (String.equal s s') then
      Alcotest.failf "roundtrip not a fixpoint at seed %d" seed
  done

let test_generator_deterministic () =
  for seed = 1 to 20 do
    let p1 = Gen.program (Rng.create seed) in
    let p2 = Gen.program (Rng.create seed) in
    Alcotest.(check string)
      (Printf.sprintf "seed %d" seed)
      (Ast.program_to_string p1) (Ast.program_to_string p2)
  done

(* --- brute-force layer --- *)

let test_brute_accesses () =
  (* a 2x2 matmul-style nest: N^3 instances, 4 accesses each *)
  let p = Loopir.Parser.program
      "! t (params: N)\n\
       real A(N, N)\n\
       do I = 1, N\n\
       do J = 1, N\n\
       do K = 1, N\n\
       S1: A(I, J) = A(I, J) + A(I, K) * A(K, J)\n\
       end do\n\
       end do\n\
       end do\n"
  in
  let acc = Brute.accesses p ~params:[ ("N", 2) ] in
  Alcotest.(check int) "4 accesses x 8 instances" 32 (List.length acc);
  let writes = List.filter (fun (a : Brute.access) -> a.is_write) acc in
  Alcotest.(check int) "one write per instance" 8 (List.length writes)

let test_brute_lex () =
  Alcotest.(check bool) "lt" true (Brute.lex_lt [| 1; 5 |] [| 2; 0 |]);
  Alcotest.(check bool) "eq" false (Brute.lex_lt [| 1; 5 |] [| 1; 5 |]);
  Alcotest.(check bool) "gt" false (Brute.lex_lt [| 2; 0 |] [| 1; 5 |])

(* --- campaign: zero discrepancies, deterministic, domain independent --- *)

let run_quick ~domains ~seeds =
  Driver.run ~domains ~quick:true ~seeds ~first_seed:1 ()

let test_campaign_clean () =
  let r = run_quick ~domains:1 ~seeds:40 in
  List.iter (fun f -> print_endline (Driver.failure_to_string f)) r.Driver.failures;
  Alcotest.(check int) "no failures" 0 (List.length r.Driver.failures);
  Alcotest.(check bool) "some specs checked" true (r.Driver.stats.Oracle.specs > 0);
  Alcotest.(check bool) "some runs verified" true (r.Driver.stats.Oracle.verified > 0)

let test_campaign_deterministic () =
  let j1 = Observe.Json.to_string (Driver.to_json (run_quick ~domains:1 ~seeds:15)) in
  let j2 = Observe.Json.to_string (Driver.to_json (run_quick ~domains:3 ~seeds:15)) in
  Alcotest.(check string) "same report for any domain count" j1 j2

(* --- the acceptance-criterion test: an injected legality bug is caught
   and shrunk to a small repro --- *)

let test_injected_bug_caught () =
  let config = Oracle.quick in
  let rec hunt seed =
    if seed > 100 then Alcotest.fail "no seed caught the injected bug"
    else
      match
        Driver.run_seed ~hooks:Oracle.always_legal_hooks ~config ~quick:true seed
      with
      | Ok _ -> hunt (seed + 1)
      | Error f ->
        print_endline (Driver.failure_to_string f);
        (* the broken checker calls illegal shackles legal; the oracle must
           report it as a legality or codegen divergence and shrink hard *)
        Alcotest.(check bool) "kind is legality" true (f.Driver.kind = Oracle.Legality);
        Alcotest.(check bool)
          (Printf.sprintf "minimized to <= 5 statements (got %d)"
             f.Driver.minimized_stmts)
          true
          (f.Driver.minimized_stmts <= 5);
        Alcotest.(check bool) "shrinking never grows" true
          (f.Driver.minimized_stmts <= f.Driver.original_stmts)
  in
  hunt 1

(* --- supervision: fault plans, injected campaigns, checkpoints --- *)

let test_fault_plan_roundtrip () =
  (match Fault.parse "crash:2,delay:3:250,starve:4:0" with
  | Ok p ->
    Alcotest.(check string) "round-trips" "crash:2,delay:3:250,starve:4:0"
      (Fault.to_string p);
    Alcotest.(check bool) "seed 2 is faulty" true (Fault.is_faulty p ~seed:2);
    Alcotest.(check bool) "seed 5 is clean" false (Fault.is_faulty p ~seed:5);
    Alcotest.(check string) "restrict keeps only the seed" "starve:4:0"
      (Fault.to_string (Fault.restrict p ~seed:4));
    Alcotest.(check (option int)) "starve threshold" (Some 0)
      (Fault.starve_for p ~seed:4)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "empty plan is none" true
    (match Fault.parse "" with Ok p -> Fault.is_none p | Error _ -> false);
  (match Fault.parse "explode:3" with
  | Ok _ -> Alcotest.fail "accepted an unknown fault shape"
  | Error msg ->
    Alcotest.(check bool) "error names the bad part" true
      (String.length msg > 0))

let test_injected_campaign_completes () =
  (* one crash, one delay past the deadline, one total fuel starvation:
     all three degradation paths in one campaign, which must run to the
     end with only injected failure rows *)
  let inject =
    match Fault.parse "crash:2,delay:3:2000,starve:4:0" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let r =
    Driver.run ~domains:2 ~timeout_ms:500 ~inject ~quick:true ~seeds:6
      ~first_seed:1 ()
  in
  Alcotest.(check int) "campaign reached every seed" 6 r.Driver.seeds;
  Alcotest.(check (list int)) "failures at the injected seeds" [ 2; 3 ]
    (List.map (fun f -> f.Driver.seed) r.Driver.failures);
  Alcotest.(check int) "no unexpected failures" 0
    (List.length (Driver.unexpected_failures r));
  (match r.Driver.failures with
  | [ crash; timeout ] ->
    Alcotest.(check bool) "crash row" true (crash.Driver.kind = Oracle.Crash);
    Alcotest.(check bool) "crash marked injected" true crash.Driver.injected;
    Alcotest.(check bool) "timeout row" true
      (timeout.Driver.kind = Oracle.Timeout);
    Alcotest.(check bool) "timeout marked injected" true
      timeout.Driver.injected;
    (* the repro command embeds everything needed to replay the seed *)
    let has needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "repro has --timeout-ms" true
      (has "--timeout-ms 500" crash.Driver.repro);
    Alcotest.(check bool) "repro has the restricted plan" true
      (has "--inject crash:2" crash.Driver.repro);
    Alcotest.(check bool) "repro pins the seed" true
      (has "--seed 2 --seeds 1" crash.Driver.repro)
  | fs -> Alcotest.failf "expected 2 failure rows, got %d" (List.length fs));
  (* the starved seed degrades (Unknown verdicts), it does not fail *)
  Alcotest.(check bool) "starved seed counted as gave-up" true
    (r.Driver.stats.Oracle.gave_up > 0)

let test_checkpoint_resume_byte_identical () =
  let ck = Filename.temp_file "fuzz_ck" ".jsonl" in
  let run ~resume () =
    Driver.run ~domains:1 ~checkpoint:ck ~resume ~quick:true ~seeds:8
      ~first_seed:1 ()
  in
  let full = Json.to_string (Driver.to_json (run ~resume:false ())) in
  (* simulate a mid-campaign kill: keep the meta line and the first three
     completed rows, drop the rest *)
  let ic = open_in ck in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  Alcotest.(check int) "checkpoint has meta + 8 rows" 9 (List.length lines);
  let oc = open_out ck in
  List.iteri (fun i l -> if i < 4 then output_string oc (l ^ "\n")) lines;
  close_out oc;
  let resumed = Json.to_string (Driver.to_json (run ~resume:true ())) in
  Sys.remove ck;
  Alcotest.(check string) "resumed report is byte-identical" full resumed

let test_resume_rejects_mismatched_config () =
  let ck = Filename.temp_file "fuzz_ck" ".jsonl" in
  ignore
    (Driver.run ~checkpoint:ck ~quick:true ~seeds:2 ~first_seed:1 ());
  let raised =
    try
      ignore
        (Driver.run ~checkpoint:ck ~resume:true ~quick:true ~seeds:5
           ~first_seed:1 ());
      false
    with Driver.Resume_mismatch _ -> true
  in
  Sys.remove ck;
  Alcotest.(check bool) "mismatched campaign rejected" true raised

(* --- shrinker --- *)

let test_shrinker_minimizes () =
  (* purely syntactic keep predicate: "statement S2 still present";
     the minimum is the single statement S2 at top level with constant
     subscripts *)
  let p = Loopir.Parser.program
      "! t (params: N)\n\
       real A(N, N)\n\
       real B(N)\n\
       do I = 1, N\n\
       S1: A(I, 1) = 2.0\n\
       do J = 1, I\n\
       if (J >= 2) then\n\
       S2: A(I, J) = A(I, J) + B(J) * 0.5\n\
       end if\n\
       S3: B(J) = A(I, J)\n\
       end do\n\
       end do\n"
  in
  let keep q =
    List.exists (fun (_, s) -> String.equal s.Ast.label "S2") (Ast.statements q)
  in
  let m = Shrink.minimize ~keep p in
  Alcotest.(check bool) "keep holds" true (keep m);
  Alcotest.(check int) "single statement" 1 (stmt_count m);
  Alcotest.(check int) "no loops or guards left" 1 (List.length m.Ast.body);
  match m.Ast.body with
  | [ Ast.Stmt s ] -> Alcotest.(check string) "it is S2" "S2" s.Ast.label
  | _ -> Alcotest.fail "expected a bare statement"

let test_shrinker_respects_keep () =
  (* a keep predicate nothing satisfies leaves the program unchanged *)
  let p = Gen.program (Rng.create 5) in
  let m = Shrink.minimize ~keep:(fun _ -> false) p in
  Alcotest.(check string) "unchanged" (Ast.program_to_string p)
    (Ast.program_to_string m)

let () =
  Alcotest.run "fuzz"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "range" `Quick test_rng_range ] );
      ( "generator",
        [ Alcotest.test_case "valid programs" `Quick test_generator_valid;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic ] );
      ( "brute",
        [ Alcotest.test_case "accesses" `Quick test_brute_accesses;
          Alcotest.test_case "lex order" `Quick test_brute_lex ] );
      ( "campaign",
        [ Alcotest.test_case "clean on quick seeds" `Quick test_campaign_clean;
          Alcotest.test_case "deterministic across domains" `Quick
            test_campaign_deterministic ] );
      ( "oracle",
        [ Alcotest.test_case "injected legality bug caught and shrunk" `Quick
            test_injected_bug_caught ] );
      ( "supervision",
        [ Alcotest.test_case "fault plan round-trip" `Quick
            test_fault_plan_roundtrip;
          Alcotest.test_case "injected campaign completes" `Quick
            test_injected_campaign_completes;
          Alcotest.test_case "checkpoint resume is byte-identical" `Quick
            test_checkpoint_resume_byte_identical;
          Alcotest.test_case "resume rejects a mismatched config" `Quick
            test_resume_rejects_mismatched_config ] );
      ( "shrinker",
        [ Alcotest.test_case "minimizes to the core" `Quick test_shrinker_minimizes;
          Alcotest.test_case "respects keep" `Quick test_shrinker_respects_keep ] ) ]
