(* Tests for the polyhedral substrate: affine forms, constraint systems,
   rational Fourier-Motzkin, and the exact integer Omega test.  The key
   property test compares Omega against brute-force enumeration over small
   boxes, which exercises the real-shadow / dark-shadow / splintering
   paths. *)

module B = Bigint
module A = Polyhedra.Affine
module C = Polyhedra.Constr
module S = Polyhedra.System
module Fm = Polyhedra.Fm
module Omega = Polyhedra.Omega

let names3 = [| "x"; "y"; "z" |]

let aff coeffs c = A.of_ints coeffs c

(* --- affine forms --- *)

let test_affine_basics () =
  let a = aff [ 1; 2; 0 ] 5 in
  Alcotest.(check string) "eval" "10" (B.to_string (A.eval_int a [| 1; 2; 3 |]));
  let b = A.add a (A.var 3 2) in
  Alcotest.(check string) "eval after add" "13"
    (B.to_string (A.eval_int b [| 1; 2; 3 |]));
  Alcotest.(check bool) "constant" false (A.is_constant a);
  Alcotest.(check bool) "constant 2" true (A.is_constant (A.of_int 3 7));
  Alcotest.(check (list int)) "vars" [ 0; 1 ] (A.vars a)

let test_affine_subst () =
  (* x + 2y + 5 with y := z - 1  gives  x + 2z + 3 *)
  let a = aff [ 1; 2; 0 ] 5 in
  let e = aff [ 0; 0; 1 ] (-1) in
  let r = A.subst a 1 e in
  Alcotest.(check bool) "subst" true (A.equal r (aff [ 1; 0; 2 ] 3))

let test_affine_rename () =
  let a = aff [ 1; 2 ] 7 in
  let r = A.rename a [| 2; 0 |] 3 in
  Alcotest.(check bool) "rename" true (A.equal r (aff [ 2; 0; 1 ] 7))

let test_affine_pp () =
  let s = Format.asprintf "%a" (A.pp names3) (aff [ 1; -2; 0 ] 3) in
  Alcotest.(check string) "pp" "x - 2*y + 3" s;
  let z = Format.asprintf "%a" (A.pp names3) (A.zero 3) in
  Alcotest.(check string) "pp zero" "0" z

(* --- constraints --- *)

let test_constr_normalize () =
  (* 2x + 4y - 5 >= 0 tightens to x + 2y - 3 >= 0 over the integers *)
  let c = C.normalize (C.ge (aff [ 2; 4; 0 ] (-5))) in
  Alcotest.(check bool) "tighten" true (A.equal c.C.aff (aff [ 1; 2; 0 ] (-3)));
  (* equality with non-dividing content stays (caught as unsat by Omega) *)
  let e = C.normalize (C.eq (aff [ 2; 4; 0 ] 1)) in
  Alcotest.(check bool) "eq kept" true (A.equal e.C.aff (aff [ 2; 4; 0 ] 1))

let test_constr_satisfied () =
  let c = C.ge_of (A.var 3 0) (A.var 3 1) in
  let env l = Array.map B.of_int (Array.of_list l) in
  Alcotest.(check bool) "x>=y true" true (C.satisfied_by c (env [ 3; 2; 0 ]));
  Alcotest.(check bool) "x>=y false" false (C.satisfied_by c (env [ 1; 2; 0 ]))

(* --- systems --- *)

let box lo hi =
  (* lo <= v <= hi for each of the three vars *)
  List.concat_map
    (fun i ->
      [ C.ge_of (A.var 3 i) (A.of_int 3 lo); C.le_of (A.var 3 i) (A.of_int 3 hi) ])
    [ 0; 1; 2 ]

let test_system_eval () =
  let s = S.make names3 (box 0 5) in
  Alcotest.(check bool) "inside" true (S.satisfied_by_ints s [| 0; 5; 3 |]);
  Alcotest.(check bool) "outside" false (S.satisfied_by_ints s [| 0; 6; 3 |])

(* --- Fourier-Motzkin --- *)

let test_fm_bounds () =
  (* 1 <= x <= 10, x <= y, with y to bound: lowers {y >= x}, uppers {} *)
  let s =
    S.make names3
      [ C.ge_of (A.var 3 0) (A.of_int 3 1);
        C.le_of (A.var 3 0) (A.of_int 3 10);
        C.le_of (A.var 3 0) (A.var 3 1) ]
  in
  let lowers, uppers = Fm.bounds_of s 1 in
  Alcotest.(check int) "one lower" 1 (List.length lowers);
  Alcotest.(check int) "no upper" 0 (List.length uppers);
  let b = List.hd lowers in
  Alcotest.(check bool) "lower is x" true
    (B.equal b.Fm.coef B.one && A.equal b.Fm.form (A.var 3 0))

let test_fm_eliminate () =
  (* x <= y <= z: eliminating y yields x <= z *)
  let s =
    S.make names3
      [ C.le_of (A.var 3 0) (A.var 3 1); C.le_of (A.var 3 1) (A.var 3 2) ]
  in
  let p = Fm.eliminate s 1 in
  let expect = C.normalize (C.le_of (A.var 3 0) (A.var 3 2)) in
  Alcotest.(check int) "one constraint" 1 (List.length (S.constraints p));
  Alcotest.(check bool) "x<=z" true (C.equal (List.hd (S.constraints p)) expect)

let test_fm_eliminate_equality () =
  (* y = x + 1, y <= 5: eliminating y gives x <= 4 *)
  let s =
    S.make names3
      [ C.eq_of (A.var 3 1) (A.add_const (A.var 3 0) B.one);
        C.le_of (A.var 3 1) (A.of_int 3 5) ]
  in
  let p = Fm.eliminate s 1 in
  Alcotest.(check bool) "x<=4" true
    (List.exists
       (fun c -> C.equal c (C.normalize (C.le_of (A.var 3 0) (A.of_int 3 4))))
       (S.constraints p))

let test_fm_compress () =
  let s =
    S.make names3
      [ C.ge_of (A.var 3 0) (A.of_int 3 1);
        C.ge_of (A.var 3 0) (A.of_int 3 1);
        C.ge_of (A.var 3 0) (A.of_int 3 3);
        C.ge (A.of_int 3 7) ]
  in
  let c = Fm.compress s in
  (* only the strongest lower bound x >= 3 should remain *)
  Alcotest.(check int) "one left" 1 (List.length (S.constraints c));
  Alcotest.(check bool) "x>=3" true
    (C.equal (List.hd (S.constraints c)) (C.normalize (C.ge_of (A.var 3 0) (A.of_int 3 3))))

(* --- Omega --- *)

let sat cs = Omega.satisfiable (S.make names3 cs)

let test_omega_basic () =
  Alcotest.(check bool) "empty" true (sat []);
  Alcotest.(check bool) "box" true (sat (box 0 5));
  Alcotest.(check bool) "1<=x<=0" false
    (sat [ C.ge_of (A.var 3 0) (A.of_int 3 1); C.le_of (A.var 3 0) (A.of_int 3 0) ]);
  Alcotest.(check bool) "0=1" false (sat [ C.eq (A.of_int 3 1) ])

let test_omega_divisibility () =
  (* 2x = 1 has no integer solution *)
  Alcotest.(check bool) "2x=1" false
    (sat [ C.eq (aff [ 2; 0; 0 ] (-1)) ]);
  (* 2x = 4y + 2 does *)
  Alcotest.(check bool) "2x=4y+2" true
    (sat [ C.eq (aff [ 2; -4; 0 ] (-2)) ])

let test_omega_dark_shadow () =
  (* 7 <= 3x <= 8: rationally satisfiable, integrally not *)
  Alcotest.(check bool) "7<=3x<=8" false
    (sat [ C.ge (aff [ 3; 0; 0 ] (-7)); C.ge (aff [ -3; 0; 0 ] 8) ]);
  (* 7 <= 3x <= 9 is fine (x = 3) *)
  Alcotest.(check bool) "7<=3x<=9" true
    (sat [ C.ge (aff [ 3; 0; 0 ] (-7)); C.ge (aff [ -3; 0; 0 ] 9) ])

let test_omega_coupled () =
  (* The classic: 3x + 5y = 1 with 0 <= x,y <= 10 -> x=2,y=-1 out of box;
     exact solutions: x = 2 + 5t, y = -1 - 3t; t=-1: x=-3; none in box. *)
  let cs =
    C.eq (aff [ 3; 5; 0 ] (-1))
    :: List.concat_map
         (fun i ->
           [ C.ge_of (A.var 3 i) (A.of_int 3 0);
             C.le_of (A.var 3 i) (A.of_int 3 10) ])
         [ 0; 1 ]
  in
  Alcotest.(check bool) "3x+5y=1 in box" false (sat cs);
  (* enlarging the box makes it satisfiable (x=7, y=-4 still not >= 0...
     x = 2, y = -1 -> allow y >= -1) *)
  let cs2 =
    C.eq (aff [ 3; 5; 0 ] (-1))
    :: [ C.ge_of (A.var 3 0) (A.of_int 3 0); C.le_of (A.var 3 0) (A.of_int 3 10);
         C.ge_of (A.var 3 1) (A.of_int 3 (-1)); C.le_of (A.var 3 1) (A.of_int 3 10) ]
  in
  Alcotest.(check bool) "3x+5y=1 wider box" true (sat cs2)

let test_omega_block_constraints () =
  (* Block-coordinate style systems: 25b-24 <= j <= 25b (paper Sec. 5.1). *)
  let names = [| "j"; "b" |] in
  let j = A.var 2 0 and b = A.var 2 1 in
  let blockc =
    [ C.ge_of j (A.add_const (A.scale_int 25 b) (B.of_int (-24)));
      C.le_of j (A.scale_int 25 b) ]
  in
  let sat cs = Omega.satisfiable (S.make names cs) in
  Alcotest.(check bool) "consistent" true
    (sat (C.ge_of j (A.of_int 2 1) :: C.le_of j (A.of_int 2 100) :: blockc));
  (* j <= 100 and b >= 5 forces j >= 101: unsat *)
  Alcotest.(check bool) "block out of range" false
    (sat
       (C.ge_of j (A.of_int 2 1) :: C.le_of j (A.of_int 2 100)
        :: C.ge_of b (A.of_int 2 5) :: blockc))

let test_omega_cholesky_legality_shape () =
  (* Section 5.1 of the paper: the flow dependence S1 -> S2 in right-looking
     Cholesky is respected by the LHS shackle.  Variables:
     jw (iteration writing A[j,j]), jr, ir (iteration reading A[j,j] in S2),
     bw (block coordinate of the write; diagonal so both coords equal),
     bi, bj (block coordinates of the read instance).  N = 100, 25-blocks.
     The dependence + "blocks in bad order" system must be unsatisfiable,
     for both lexicographic disjuncts. *)
  let names = [| "jw"; "jr"; "ir"; "bw"; "bi"; "bj" |] in
  let v i = A.var 6 i in
  let jw = v 0 and jr = v 1 and ir = v 2 and bw = v 3 and bi = v 4 and bj = v 5 in
  let n = A.of_int 6 100 in
  let in_block idx b =
    [ C.ge_of idx (A.add_const (A.scale_int 25 b) (B.of_int (-24)));
      C.le_of idx (A.scale_int 25 b) ]
  in
  let base =
    [ C.eq_of jr jw; (* same location A[j,j] *)
      C.ge_of jw (A.of_int 6 1); C.le_of jw n;
      C.ge_of jr (A.of_int 6 1); C.le_of jr n;
      C.ge_of ir (A.add_const jr B.one); C.le_of ir n;
      C.ge_of jr jw (* read after write *) ]
    @ in_block jw bw @ in_block ir bi @ in_block jr bj
  in
  let disjunct1 = C.lt_of bi bw in
  let disjunct2 = [ C.eq_of bi bw; C.lt_of bj bw ] in
  Alcotest.(check bool) "first disjunct unsat" false
    (Omega.satisfiable (S.make names (disjunct1 :: base)));
  Alcotest.(check bool) "second disjunct unsat" false
    (Omega.satisfiable (S.make names (disjunct2 @ base)))

let test_omega_implies () =
  let s =
    S.make names3
      [ C.ge_of (A.var 3 0) (A.of_int 3 2); C.ge_of (A.var 3 1) (A.var 3 0) ]
  in
  Alcotest.(check bool) "implies y>=2" true
    (Omega.implies s (C.ge_of (A.var 3 1) (A.of_int 3 2)));
  Alcotest.(check bool) "not implies y>=3" false
    (Omega.implies s (C.ge_of (A.var 3 1) (A.of_int 3 3)));
  Alcotest.(check bool) "implies x+y>=4" true
    (Omega.implies s (C.ge (aff [ 1; 1; 0 ] (-4))))

(* --- property: Omega vs brute force --- *)

let brute_force_sat cs lo hi =
  let s = S.make names3 cs in
  let found = ref false in
  for x = lo to hi do
    for y = lo to hi do
      for z = lo to hi do
        if (not !found) && S.satisfied_by_ints s [| x; y; z |] then found := true
      done
    done
  done;
  !found

let arb_constraint =
  QCheck.map
    (fun ((a, b, c, d), iseq) ->
      let f = aff [ a; b; c ] d in
      if iseq then C.eq f else C.ge f)
    QCheck.(pair
              (quad (int_range (-3) 3) (int_range (-3) 3) (int_range (-3) 3)
                 (int_range (-6) 6))
              bool)

let prop_omega_exact =
  QCheck.Test.make ~count:400 ~name:"Omega agrees with brute force"
    QCheck.(list_of_size (Gen.int_range 1 4) arb_constraint)
    (fun cs ->
      let full = cs @ box (-4) 4 in
      Omega.satisfiable (S.make names3 full) = brute_force_sat full (-4) 4)

let prop_fm_sound =
  (* every integer point of s satisfies the projection of s *)
  QCheck.Test.make ~count:200 ~name:"FM projection is a superset"
    QCheck.(pair (list_of_size (Gen.int_range 1 3) arb_constraint)
              (triple (int_range (-4) 4) (int_range (-4) 4) (int_range (-4) 4)))
    (fun (cs, (x, y, z)) ->
      let s = S.make names3 (cs @ box (-4) 4) in
      QCheck.assume (S.satisfied_by_ints s [| x; y; z |]);
      let p = Fm.eliminate s 2 in
      S.satisfied_by_ints p [| x; y; z |])

let prop_implies_respects_points =
  QCheck.Test.make ~count:200 ~name:"implies holds on all points"
    QCheck.(pair (list_of_size (Gen.int_range 1 3) arb_constraint) arb_constraint)
    (fun (cs, c) ->
      let s = S.make names3 (cs @ box (-3) 3) in
      QCheck.assume (Omega.implies s c);
      (* check the implication on every box point *)
      let ok = ref true in
      for x = -3 to 3 do
        for y = -3 to 3 do
          for z = -3 to 3 do
            let env = Array.map B.of_int [| x; y; z |] in
            if S.satisfied_by s env && not (C.satisfied_by c env) then
              ok := false
          done
        done
      done;
      !ok)

(* --- properties driven by the fuzz constraint sampler ---

   Gen.system includes the [-4, 4] box in the sampled system itself, so
   exhaustive enumeration of the box (Brute.feasible) is a complete decision
   procedure and both directions of each comparison are meaningful. *)

let test_omega_vs_brute_sampled () =
  for seed = 1 to 400 do
    let rng = Fuzzing.Rng.create seed in
    let dim = 2 + Fuzzing.Rng.int rng 3 in
    let sys = Fuzzing.Gen.system rng ~dim in
    let brute = Fuzzing.Brute.feasible sys ~bound:4 <> None in
    if Omega.satisfiable sys <> brute then
      Alcotest.failf "Omega disagrees with enumeration at seed %d on %s" seed
        (Format.asprintf "%a" S.pp sys)
  done

let test_fm_sound_sampled () =
  (* rational FM elimination only ever over-approximates: every integer
     point of the system satisfies every projection *)
  for seed = 1 to 300 do
    let rng = Fuzzing.Rng.create seed in
    let dim = 2 + Fuzzing.Rng.int rng 3 in
    let sys = Fuzzing.Gen.system rng ~dim in
    match Fuzzing.Brute.feasible sys ~bound:4 with
    | None -> ()
    | Some pt ->
      let k = Fuzzing.Rng.int rng dim in
      if not (S.satisfied_by_ints (Fm.eliminate sys k) pt) then
        Alcotest.failf "FM dropped a point at seed %d (eliminating %d)" seed k
  done

let test_omega_implies_vs_brute_sampled () =
  (* when Omega claims sys => c, no enumerated point may refute it *)
  let checked = ref 0 in
  for seed = 1 to 200 do
    let rng = Fuzzing.Rng.create seed in
    let dim = 2 + Fuzzing.Rng.int rng 2 in
    let sys = Fuzzing.Gen.system rng ~dim in
    let coeffs = List.init dim (fun _ -> Fuzzing.Rng.range rng (-2) 2) in
    let c = C.ge (A.of_ints coeffs (Fuzzing.Rng.range rng (-4) 4)) in
    if Omega.implies sys c then begin
      incr checked;
      let refuted =
        Fuzzing.Brute.feasible (S.add sys (C.negate_ge c)) ~bound:4
      in
      match refuted with
      | Some _ -> Alcotest.failf "implies refuted by a box point at seed %d" seed
      | None -> ()
    end
  done;
  Alcotest.(check bool) "some implications actually held" true (!checked > 0)

(* --- budget soundness: three-valued verdicts never lie ---

   The fuel/deadline machinery must degrade, not corrupt: a generously
   budgeted query answers exactly what the unbudgeted solver answers, and a
   starved query may give up (Unknown) but may never flip a verdict. *)

let decide_exact ~seed sys =
  match Omega.decide ~ctx:(Omega.Ctx.create ()) sys with
  | Omega.Sat -> Omega.Sat
  | Omega.Unsat -> Omega.Unsat
  | Omega.Unknown r ->
    Alcotest.failf "unbudgeted solver gave up (%s) at seed %d" r seed

let test_budget_soundness_sampled () =
  for seed = 1 to 250 do
    let rng = Fuzzing.Rng.create seed in
    let dim = 2 + Fuzzing.Rng.int rng 3 in
    let sys = Fuzzing.Gen.system rng ~dim in
    let exact = decide_exact ~seed sys in
    (* generous fuel: must agree exactly *)
    (match Omega.decide ~ctx:(Omega.Ctx.create ~fuel:1_000_000 ()) sys with
    | Omega.Unknown r ->
      Alcotest.failf "generous budget gave up (%s) at seed %d" r seed
    | v ->
      if v <> exact then
        Alcotest.failf "generous budget flipped the verdict at seed %d" seed);
    (* starved fuel: Unknown "fuel" or exact agreement, never a flip *)
    (match Omega.decide ~ctx:(Omega.Ctx.create ~fuel:1 ()) sys with
    | Omega.Unknown reason ->
      Alcotest.(check string) "starved reason" "fuel" reason
    | v ->
      if v <> exact then
        Alcotest.failf "starved budget flipped the verdict at seed %d" seed)
  done

let test_budget_zero_fuel_always_unknown () =
  let sys = Fuzzing.Gen.system (Fuzzing.Rng.create 7) ~dim:3 in
  let ctx = Omega.Ctx.create ~fuel:0 () in
  (match Omega.decide ~ctx sys with
  | Omega.Unknown "fuel" -> ()
  | _ -> Alcotest.fail "zero fuel must answer Unknown \"fuel\"");
  Alcotest.(check int) "unknowns counted" 1 (Omega.Ctx.unknowns ctx);
  (* the conservative boolean collapse says "may be satisfiable" *)
  Alcotest.(check bool) "satisfiable collapses Unknown to true" true
    (Omega.satisfiable ~ctx sys)

let test_budget_unknown_not_cached () =
  (* Starve a cached context, then lift the budget: the re-decision must be
     exact and must agree with a fresh solver, which proves the Unknown was
     never stored in the memo table. *)
  let sys = Fuzzing.Gen.system (Fuzzing.Rng.create 11) ~dim:3 in
  let exact = decide_exact ~seed:11 sys in
  let ctx = Omega.Ctx.create ~cache:true ~fuel:0 () in
  (match Omega.decide ~ctx sys with
  | Omega.Unknown _ -> ()
  | _ -> Alcotest.fail "expected the starved query to give up");
  Alcotest.(check int) "Unknown not stored" 0 (Omega.Ctx.cache_size ctx);
  Omega.Ctx.set_fuel ctx None;
  (match Omega.decide ~ctx sys with
  | Omega.Unknown r -> Alcotest.failf "unlimited re-decision gave up (%s)" r
  | v ->
    if v <> exact then Alcotest.fail "cached context flipped the verdict");
  Alcotest.(check int) "exact verdict stored" 1 (Omega.Ctx.cache_size ctx)

(* A sampled system whose unbudgeted decision costs at least [min_fuel]
   work units — found by scanning seeds, so the test stays generator-
   agnostic.  Used to guarantee the cancellation poll (every 64 units)
   actually fires. *)
let expensive_system ~min_fuel =
  let rec scan seed =
    if seed > 5000 then
      Alcotest.failf "no sampled system costs >= %d fuel" min_fuel
    else
      let rng = Fuzzing.Rng.create seed in
      let sys = Fuzzing.Gen.system rng ~dim:4 in
      let ctx = Omega.Ctx.create () in
      ignore (Omega.decide ~ctx sys);
      if Omega.Ctx.peak_query_fuel ctx >= min_fuel then sys else scan (seed + 1)
  in
  scan 1

let test_budget_cancel () =
  let sys = expensive_system ~min_fuel:128 in
  let ctx = Omega.Ctx.create ~cancel:(fun () -> true) () in
  match Omega.decide ~ctx sys with
  | Omega.Unknown reason ->
    Alcotest.(check string) "cancel reason" "cancelled" reason
  | _ -> Alcotest.fail "a cancelled query must answer Unknown"

let test_budget_starve_after () =
  let sys = Fuzzing.Gen.system (Fuzzing.Rng.create 3) ~dim:3 in
  let exact = decide_exact ~seed:3 sys in
  let ctx = Omega.Ctx.create ~starve_after:1 () in
  (match Omega.decide ~ctx sys with
  | Omega.Unknown r -> Alcotest.failf "query 0 should be exact, gave up (%s)" r
  | v -> if v <> exact then Alcotest.fail "query 0 flipped the verdict");
  (match Omega.decide ~ctx sys with
  | Omega.Unknown "fuel" -> ()
  | _ -> Alcotest.fail "queries past starve_after must answer Unknown \"fuel\"");
  Omega.Ctx.set_starve_after ctx None;
  match Omega.decide ~ctx sys with
  | Omega.Unknown r -> Alcotest.failf "un-starved query gave up (%s)" r
  | v -> if v <> exact then Alcotest.fail "un-starved query flipped the verdict"

let () =
  Alcotest.run "polyhedra"
    [ ( "affine",
        [ Alcotest.test_case "basics" `Quick test_affine_basics;
          Alcotest.test_case "subst" `Quick test_affine_subst;
          Alcotest.test_case "rename" `Quick test_affine_rename;
          Alcotest.test_case "pretty-print" `Quick test_affine_pp ] );
      ( "constr",
        [ Alcotest.test_case "normalize" `Quick test_constr_normalize;
          Alcotest.test_case "satisfied_by" `Quick test_constr_satisfied ] );
      ( "system",
        [ Alcotest.test_case "eval" `Quick test_system_eval ] );
      ( "fm",
        [ Alcotest.test_case "bounds_of" `Quick test_fm_bounds;
          Alcotest.test_case "eliminate" `Quick test_fm_eliminate;
          Alcotest.test_case "eliminate equality" `Quick test_fm_eliminate_equality;
          Alcotest.test_case "compress" `Quick test_fm_compress ] );
      ( "omega",
        [ Alcotest.test_case "basics" `Quick test_omega_basic;
          Alcotest.test_case "divisibility" `Quick test_omega_divisibility;
          Alcotest.test_case "dark shadow" `Quick test_omega_dark_shadow;
          Alcotest.test_case "coupled equality" `Quick test_omega_coupled;
          Alcotest.test_case "block constraints" `Quick test_omega_block_constraints;
          Alcotest.test_case "paper Sec 5.1 legality shape" `Quick
            test_omega_cholesky_legality_shape;
          Alcotest.test_case "implies" `Quick test_omega_implies ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ prop_omega_exact; prop_fm_sound; prop_implies_respects_points ] );
      ( "sampled",
        [ Alcotest.test_case "Omega = enumeration on sampled systems" `Quick
            test_omega_vs_brute_sampled;
          Alcotest.test_case "FM projection keeps sampled points" `Quick
            test_fm_sound_sampled;
          Alcotest.test_case "implies honored by box points" `Quick
            test_omega_implies_vs_brute_sampled ] );
      ( "budget",
        [ Alcotest.test_case "budgeted verdicts never lie (sampled)" `Quick
            test_budget_soundness_sampled;
          Alcotest.test_case "zero fuel gives up" `Quick
            test_budget_zero_fuel_always_unknown;
          Alcotest.test_case "Unknown is never cached" `Quick
            test_budget_unknown_not_cached;
          Alcotest.test_case "cancellation hook" `Quick test_budget_cancel;
          Alcotest.test_case "starve_after fault injection" `Quick
            test_budget_starve_after ] ) ]
