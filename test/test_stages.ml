(* The staged simplifier's equivalence obligations, checked end to end:
   every stage must preserve the final store, the flop count AND the full
   access trace (bit for bit) of any program it is applied to — that is the
   property that lets specialization claim trace-identical execution with
   zero Omega traffic per size.  Also covers the solver-free Entail prover
   and the parametric specialization path through Pipeline. *)

module Ast = Loopir.Ast
module E = Loopir.Expr
module Entail = Loopir.Entail
module Stages = Loopir.Stages
module K = Kernels.Builders
module Specs = Experiments.Specs
module Omega = Polyhedra.Omega

let params n = [ ("N", n) ]

let contains text sub =
  let lt = String.length text and ls = String.length sub in
  let rec go i =
    if i + ls > lt then false
    else if String.equal (String.sub text i ls) sub then true
    else go (i + 1)
  in
  go 0

(* --- Entail ------------------------------------------------------- *)

let f ?lo ?hi v = Entail.fact ?lo ?hi v

let test_entail_linear () =
  let facts = [ f ~lo:(E.Const 1) "N"; f ~lo:(E.Const 1) ~hi:(E.var "N") "i" ] in
  Alcotest.(check bool) "i <= N" true (Entail.le facts (E.var "i") (E.var "N"));
  Alcotest.(check bool) "1 <= i" true (Entail.le facts (E.Const 1) (E.var "i"));
  Alcotest.(check bool) "i <= N-1 unprovable" false
    (Entail.le facts (E.var "i") (E.Sub (E.var "N", E.Const 1)));
  Alcotest.(check bool) "N <= i unprovable" false
    (Entail.le facts (E.var "N") (E.var "i"))

let test_entail_atoms () =
  let facts = [ f ~lo:(E.Const 1) "N" ] in
  (* identical non-affine atoms cancel structurally *)
  let m = E.Min (E.var "N", E.Const 25) in
  Alcotest.(check bool) "min(N,25) <= min(N,25)" true (Entail.le facts m m);
  (* min is below both arms; max above both *)
  Alcotest.(check bool) "min(N,25) <= N" true (Entail.le facts m (E.var "N"));
  Alcotest.(check bool) "min(N,25) <= 25" true (Entail.le facts m (E.Const 25));
  Alcotest.(check bool) "N <= max(N,3)" true
    (Entail.le facts (E.var "N") (E.Max (E.var "N", E.Const 3)))

let test_entail_division () =
  let facts = [ f ~lo:(E.Const 1) "N" ] in
  (* floor(N/4) <= N and 4*ceil(N/4) >= N *)
  Alcotest.(check bool) "floor(N/4) <= N" true
    (Entail.le facts (E.FloorDiv (E.var "N", 4)) (E.var "N"));
  Alcotest.(check bool) "N <= 4*ceil(N/4)" true
    (Entail.le facts (E.var "N") (E.Mul (4, E.CeilDiv (E.var "N", 4))));
  Alcotest.(check bool) "N <= floor(N/4) unprovable" false
    (Entail.le facts (E.var "N") (E.FloorDiv (E.var "N", 4)))

let test_affine_delta () =
  (* 25*t1 - N with N = 90: delta in t1 is (25, -90) *)
  let a = E.Mul (25, E.var "t1") and b = E.Const 90 in
  Alcotest.(check (option (pair int int))) "25*t1 vs 90"
    (Some (25, -90))
    (Entail.affine_delta_in ~var:"t1" a b);
  Alcotest.(check (option (pair int int))) "depends on other var" None
    (Entail.affine_delta_in ~var:"t1" (E.var "i") b)

(* --- per-stage equivalence ---------------------------------------- *)

let run_traced prog ~params ~init =
  let r = Trace.create_recorder ~keep:true () in
  let store, flops =
    Exec.Verify.run_program ~sink:(Trace.Record r) prog ~params ~init
  in
  (store, flops, Trace.finish r)

let stores_identical (prog : Ast.program) s1 s2 =
  List.for_all
    (fun (d : Ast.array_decl) ->
      let a1 = Exec.Store.find s1 d.a_name and a2 = Exec.Store.find s2 d.a_name in
      a1.Exec.Store.data = a2.Exec.Store.data)
    prog.arrays

(* Apply [stage] to [prog] and require bit-identical store, flops and trace
   over the given parameter bindings. *)
let check_stage_equiv name stage prog ~params ~init =
  let prog' = stage.Stages.apply prog in
  let s1, fl1, t1 = run_traced prog ~params ~init in
  let s2, fl2, t2 = run_traced prog' ~params ~init in
  Alcotest.(check bool) (name ^ ": store bit-identical") true
    (stores_identical prog s1 s2);
  Alcotest.(check int) (name ^ ": flops") fl1 fl2;
  Alcotest.(check bool) (name ^ ": trace bit-identical") true
    (Trace.equal t1 t2)

let blocked_cases () =
  [ ("matmul_ca25",
     Codegen.Tighten.generate (K.matmul ()) (Specs.matmul_ca ~size:25),
     "matmul");
    ("cholesky_full16",
     Codegen.Tighten.generate (K.cholesky_right ())
       (Specs.cholesky_fully_blocked ~size:16),
     "cholesky_right") ]

let test_stages_preserve_symbolic () =
  List.iter
    (fun (cname, prog, kernel) ->
      List.iter
        (fun n ->
          let init = Kernels.Inits.for_kernel kernel ~n in
          List.iter
            (fun (st : Stages.stage) ->
              check_stage_equiv
                (Printf.sprintf "%s %s n=%d" cname st.Stages.name n)
                st prog ~params:(params n) ~init)
            Stages.all)
        [ 23; 40 ])
    (blocked_cases ())

(* The same property on the parameter-substituted program, which is what
   actually exercises peel and collapse (constants everywhere). *)
let test_stages_preserve_substituted () =
  List.iter
    (fun (cname, prog, kernel) ->
      List.iter
        (fun n ->
          let init = Kernels.Inits.for_kernel kernel ~n in
          let subst = (Stages.subst_params ~params:(params n)).Stages.apply prog in
          List.iter
            (fun (st : Stages.stage) ->
              check_stage_equiv
                (Printf.sprintf "%s/subst %s n=%d" cname st.Stages.name n)
                st subst ~params:(params n) ~init)
            Stages.all;
          (* and the whole pipeline composed, against the symbolic form *)
          check_stage_equiv
            (Printf.sprintf "%s full specialize n=%d" cname n)
            { Stages.name = "specialize";
              obligation = "composition of per-stage obligations";
              apply = Stages.specialize ~params:(params n) }
            prog ~params:(params n) ~init)
        [ 23; 40 ])
    (blocked_cases ())

(* minmax-peel on a hand-built loop: bound min(25*w, 90) flips at w=3 *)
let test_minmax_peel_splits () =
  let src =
    "! peelcase (params: N)\n\
     real A(N)\n\
     do w = 1, 4\n\
    \  do i = 1, min(25*w, 90)\n\
    \    S1: A(i) = A(i) + 1.0\n\
    \  end do\n\
     end do\n"
  in
  let prog =
    match Loopir.Parser.program src with
    | p -> p
    | exception Loopir.Parser.Parse_error (l, m) ->
      Alcotest.failf "parse error line %d: %s" l m
  in
  let peeled = Stages.minmax_peel.Stages.apply prog in
  let text = Ast.program_to_string peeled in
  Alcotest.(check bool) "no min remains" false (contains text "min(");
  let init = (fun _ _ -> 1.0) in
  let s1, fl1, t1 = run_traced prog ~params:(params 100) ~init in
  let s2, fl2, t2 = run_traced peeled ~params:(params 100) ~init in
  Alcotest.(check bool) "store" true (stores_identical prog s1 s2);
  Alcotest.(check int) "flops" fl1 fl2;
  Alcotest.(check bool) "trace" true (Trace.equal t1 t2)

(* --- specialization through Pipeline ------------------------------ *)

let test_specialize_trace_identical () =
  let prog = K.matmul () in
  let spec = Specs.matmul_ca ~size:25 in
  let pipe = Pipeline.create prog in
  let symbolic = Pipeline.codegen_cached pipe spec in
  List.iter
    (fun n ->
      let init = Kernels.Inits.for_kernel "matmul" ~n in
      let special = Pipeline.specialize ~spec pipe ~params:(params n) in
      let s1, fl1, t1 = run_traced symbolic ~params:(params n) ~init in
      let s2, fl2, t2 = run_traced special ~params:(params n) ~init in
      Alcotest.(check bool) (Printf.sprintf "store n=%d" n) true
        (stores_identical prog s1 s2);
      Alcotest.(check int) (Printf.sprintf "flops n=%d" n) fl1 fl2;
      Alcotest.(check bool) (Printf.sprintf "trace n=%d" n) true
        (Trace.equal t1 t2))
    [ 10; 25; 60; 90 ]

(* Specializing across a sweep must not touch the solver at all: the one
   Omega derivation happens at codegen_cached time. *)
let test_specialize_solver_free () =
  let prog = K.cholesky_right () in
  let spec = Specs.cholesky_fully_blocked ~size:16 in
  let solver = Omega.Ctx.create ~cache:true () in
  let pipe = Pipeline.create ~solver prog in
  ignore (Pipeline.codegen_cached pipe spec);
  let before = Omega.Ctx.queries solver in
  List.iter
    (fun n -> ignore (Pipeline.specialize ~spec pipe ~params:(params n)))
    [ 8; 16; 24; 32; 48; 64 ];
  Alcotest.(check int) "zero solver queries across the sweep" before
    (Omega.Ctx.queries solver)

(* Specialization must actually simplify: guard and loop counts shrink (or
   at worst match) and the matmul inner loops lose every min/max. *)
let test_specialize_simplifies () =
  let prog = K.matmul () in
  let spec = Specs.matmul_ca ~size:25 in
  let pipe = Pipeline.create prog in
  let symbolic = Pipeline.codegen_cached pipe spec in
  let _, sg = Codegen.Tighten.stats symbolic in
  List.iter
    (fun n ->
      let special = Pipeline.specialize ~spec pipe ~params:(params n) in
      let _, g = Codegen.Tighten.stats special in
      Alcotest.(check bool) (Printf.sprintf "guards shrink n=%d" n) true
        (g <= sg);
      Alcotest.(check int) (Printf.sprintf "matmul fully deguarded n=%d" n) 0 g;
      let text = Ast.program_to_string special in
      Alcotest.(check bool) (Printf.sprintf "no min left n=%d" n) false
        (contains text "min(");
      Alcotest.(check bool) (Printf.sprintf "no max left n=%d" n) false
        (contains text "max("))
    [ 25; 90 ]

(* The parameter list survives specialization so prepared frames still bind
   the same names. *)
let test_specialize_keeps_params () =
  let prog = K.matmul () in
  let pipe = Pipeline.create prog in
  let special =
    Pipeline.specialize ~spec:(Specs.matmul_ca ~size:25) pipe
      ~params:(params 50)
  in
  Alcotest.(check (list string)) "params kept" prog.Ast.params
    special.Ast.params;
  let init = Kernels.Inits.for_kernel "matmul" ~n:50 in
  let store = Exec.Store.create special ~params:(params 50) ~init in
  (* invoking with the N binding must not raise even though the body no
     longer mentions N *)
  ignore (Exec.Interp.run store special ~params:(params 50))

let () =
  Alcotest.run "stages"
    [ ( "entail",
        [ Alcotest.test_case "linear facts" `Quick test_entail_linear;
          Alcotest.test_case "min/max atoms" `Quick test_entail_atoms;
          Alcotest.test_case "division envelopes" `Quick test_entail_division;
          Alcotest.test_case "affine delta" `Quick test_affine_delta ] );
      ( "stage-equivalence",
        [ Alcotest.test_case "symbolic programs" `Slow
            test_stages_preserve_symbolic;
          Alcotest.test_case "substituted programs" `Slow
            test_stages_preserve_substituted;
          Alcotest.test_case "minmax peel splits" `Quick
            test_minmax_peel_splits ] );
      ( "specialize",
        [ Alcotest.test_case "trace bit-identical" `Slow
            test_specialize_trace_identical;
          Alcotest.test_case "solver-free sweep" `Quick
            test_specialize_solver_free;
          Alcotest.test_case "guards vanish" `Quick test_specialize_simplifies;
          Alcotest.test_case "params kept" `Quick test_specialize_keeps_params ] ) ]
