(* Round-trip tests for the concrete syntax: every kernel, and every
   generated (blocked) program, must survive pretty-print -> parse ->
   pretty-print both textually and semantically. *)

module Ast = Loopir.Ast
module P = Loopir.Parser
module K = Kernels.Builders

let text_roundtrip name p =
  let s1 = Ast.program_to_string p in
  let p2 = P.program s1 in
  let s2 = Ast.program_to_string p2 in
  Alcotest.(check string) (name ^ " pp fixpoint") s1 s2

let semantic_roundtrip name p ~params ~init =
  let p2 = P.roundtrip p in
  Alcotest.(check bool) (name ^ " same results") true
    (Exec.Verify.equivalent ~tol:0.0 p p2 ~params ~init)

let test_kernels_roundtrip () =
  List.iter (fun (name, p) -> text_roundtrip name p) (K.all ())

let test_kernels_semantic () =
  List.iter
    (fun (name, p) ->
      let n = 9 in
      let params =
        if List.mem "BW" p.Ast.params then [ ("N", n); ("BW", 3) ]
        else [ ("N", n) ]
      in
      let base = Kernels.Inits.for_kernel name ~n in
      let init a idx =
        if String.equal name "trisolve_backward" && String.equal a "U"
           && idx.(0) > idx.(1)
        then 0.0
        else if String.equal a "U" && idx.(0) = idx.(1) then 5.0
        else base a idx
      in
      semantic_roundtrip name p ~params ~init)
    (K.all ())

let test_generated_roundtrip () =
  (* blocked programs exercise min/max/floor/ceil bounds and guards *)
  let cases =
    [ ("matmul blocked",
       Codegen.Tighten.generate (K.matmul ()) (Experiments.Specs.matmul_ca ~size:25));
      ("matmul naive",
       Codegen.Naive.generate (K.matmul ()) (Experiments.Specs.matmul_c ~size:25));
      ("cholesky blocked",
       Codegen.Tighten.generate (K.cholesky_right ())
         (Experiments.Specs.cholesky_fully_blocked ~size:16));
      ("two-level",
       Codegen.Tighten.generate (K.matmul ())
         (Experiments.Specs.matmul_two_level ~outer:64 ~inner:8));
      ("adi fused",
       Codegen.Tighten.generate (K.adi ()) (Experiments.Specs.adi_fused ())) ]
  in
  List.iter (fun (name, p) -> text_roundtrip name p) cases

let test_generated_semantic () =
  let p =
    Codegen.Tighten.generate (K.cholesky_right ())
      (Experiments.Specs.cholesky_fully_blocked ~size:8)
  in
  semantic_roundtrip "cholesky blocked" p ~params:[ ("N", 21) ]
    ~init:(Kernels.Inits.for_kernel "cholesky_right" ~n:21)

let test_statement_ids_sequential () =
  let p = P.roundtrip (K.cholesky_right ()) in
  let ids = List.map (fun (_, s) -> s.Ast.id) (Ast.statements p) in
  Alcotest.(check (list int)) "ids in textual order" [ 0; 1; 2 ] ids

let test_parse_errors () =
  let bad lineno text =
    match P.program text with
    | exception P.Parse_error (l, _) -> Alcotest.(check int) "line" lineno l
    | _ -> Alcotest.fail "expected parse error"
  in
  bad 1 "do I = 1";
  bad 1 "S1: A(I = 2.0";
  bad 2 "do I = 1, N\nS1: A(I) = I * I\nend do";
  (* non-linear product in a subscript: I * I *)
  bad 1 "S1: A(3 $) = 1.0"

let test_analysis_after_parse () =
  (* a parsed program is a first-class citizen: dependence analysis and
     shackling work on it *)
  let p = P.roundtrip (K.cholesky_right ()) in
  Alcotest.(check bool) "deps found" true (Dependence.Dep.analyze p <> []);
  Alcotest.(check bool) "shackle legal" true
    (Shackle.Legality.is_legal p (Experiments.Specs.cholesky_write ~size:16))

let prop_iexpr_roundtrip =
  (* random index expressions survive print -> parse with the same value *)
  let gen =
    QCheck.Gen.(
      sized
        (fix (fun self n ->
             if n <= 0 then
               oneof
                 [ map (fun i -> Loopir.Expr.Const i) (int_range (-30) 30);
                   oneofl [ Loopir.Expr.Var "x"; Loopir.Expr.Var "y" ] ]
             else
               frequency
                 [ (3, map2 (fun a b -> Loopir.Expr.Add (a, b)) (self (n / 2)) (self (n / 2)));
                   (3, map2 (fun a b -> Loopir.Expr.Sub (a, b)) (self (n / 2)) (self (n / 2)));
                   (2, map2 (fun k a -> Loopir.Expr.Mul (k, a)) (int_range (-5) 5) (self (n - 1)));
                   (1, map2 (fun a b -> Loopir.Expr.Max (a, b)) (self (n / 2)) (self (n / 2)));
                   (1, map2 (fun a b -> Loopir.Expr.Min (a, b)) (self (n / 2)) (self (n / 2)));
                   (1, map2 (fun a d -> Loopir.Expr.FloorDiv (a, d)) (self (n - 1)) (int_range 1 7));
                   (1, map2 (fun a d -> Loopir.Expr.CeilDiv (a, d)) (self (n - 1)) (int_range 1 7)) ])))
  in
  QCheck.Test.make ~count:500 ~name:"index expressions roundtrip"
    (QCheck.make ~print:Loopir.Expr.to_string gen)
    (fun e ->
      (* embed in a loop bound, print the program, parse it back *)
      let prog =
        { Ast.p_name = "t";
          params = [ "x"; "y" ];
          arrays = [ { Ast.a_name = "A"; extents = [ Loopir.Expr.Const 9 ] } ];
          body =
            [ Ast.loop "i" (Loopir.Expr.Const 1) e
                [ Ast.stmt ~id:0 ~label:"S1"
                    (Loopir.Fexpr.ref_ "A" [ Loopir.Expr.Const 1 ])
                    (Loopir.Fexpr.f 1.0) ] ] }
      in
      let prog2 = P.roundtrip prog in
      match prog2.Ast.body with
      | [ Ast.Loop l ] ->
        let env = function "x" -> 3 | "y" -> -2 | _ -> assert false in
        Loopir.Expr.eval env l.Ast.hi = Loopir.Expr.eval env e
      | _ -> false)

let test_fuzzed_roundtrip () =
  (* fuzz-generated programs: imperfect nests, triangular bounds, guards,
     1-3D arrays — print -> parse must be a textual fixpoint and preserve
     semantics exactly (same instances in the same order) *)
  for seed = 1 to 120 do
    let p = Fuzzing.Gen.program (Fuzzing.Rng.create seed) in
    text_roundtrip (Printf.sprintf "fuzzed seed %d" seed) p;
    semantic_roundtrip
      (Printf.sprintf "fuzzed seed %d" seed)
      p
      ~params:[ ("N", 5) ]
      ~init:(fun a idx ->
        float_of_int ((Char.code a.[0] + (17 * Array.fold_left ( + ) 0 idx)) mod 13)
        /. 8.0)
  done

let () =
  Alcotest.run "parser"
    [ ( "roundtrip",
        [ Alcotest.test_case "kernels (textual)" `Quick test_kernels_roundtrip;
          Alcotest.test_case "kernels (semantic)" `Quick test_kernels_semantic;
          Alcotest.test_case "generated code (textual)" `Quick
            test_generated_roundtrip;
          Alcotest.test_case "generated code (semantic)" `Quick
            test_generated_semantic;
          Alcotest.test_case "statement ids" `Quick test_statement_ids_sequential;
          Alcotest.test_case "fuzzed programs" `Quick test_fuzzed_roundtrip ] );
      ( "errors",
        [ Alcotest.test_case "parse errors" `Quick test_parse_errors ] );
      ( "integration",
        [ Alcotest.test_case "analysis after parse" `Quick
            test_analysis_after_parse ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest [ prop_iexpr_roundtrip ] ) ]
