(* Tests for the analytic communication lower bounds: the HBL exponent of
   the classic kernels, soundness of the per-level bound against the cache
   simulator (no execution — original or any legal blocked variant — may
   incur fewer misses than the bound claims), sharpening under a spec,
   monotonicity across deeper hierarchies, and the exact rational LP. *)

module K = Kernels.Builders
module Model = Machine.Model
module Blocking = Shackle.Blocking
module Spec = Shackle.Spec
module Rng = Fuzzing.Rng
module Gen = Fuzzing.Gen
module Q = Ratio

let init = Kernels.Inits.generic

(* cumulative levels of a machine, in bounds units (elements) *)
let levels_of_machine (m : Model.t) =
  Bounds.levels_of
    ~line_elems:((List.hd m.Model.levels).Model.l_cache.Machine.Cache.line_bytes
                 / m.Model.elem_bytes)
    (List.map
       (fun (l : Model.level_spec) ->
         (l.Model.l_name, l.Model.l_cache.Machine.Cache.size_bytes / m.Model.elem_bytes))
       m.Model.levels)

(* a deliberately tiny machine so capacity bounds bite at N = 6..16:
   16 lines of one element each *)
let tiny =
  { Model.m_name = "tiny";
    levels =
      [ { Model.l_name = "L1";
          l_cache = { Machine.Cache.size_bytes = 128; line_bytes = 8; assoc = 16 };
          l_hit_cycles = 1.0 } ];
    mem_cycles = 10.0;
    flop_cycles = 0.5;
    clock_mhz = 100.0;
    elem_bytes = 8 }

let check_sound ~what t machine r =
  let levels = levels_of_machine machine in
  List.iter2
    (fun lv (st : Model.level_stat) ->
      let b = Bounds.misses t lv in
      if b > st.Model.s_misses then
        Alcotest.failf "%s: bound %d exceeds simulated %s misses %d" what b
          lv.Bounds.lv_name st.Model.s_misses;
      Alcotest.(check bool)
        (what ^ ": bound positive at " ^ lv.Bounds.lv_name)
        true (b >= 1))
    levels r.Model.r_levels

(* --- the HBL exponent --- *)

let test_sigma_matmul () =
  let t = Bounds.analyze ~params:[ ("N", 8) ] (K.matmul ()) in
  match Bounds.stmts t with
  | [ s ] ->
    Alcotest.(check bool) "matmul sigma = 3/2" true
      (Q.equal s.Bounds.si_sigma (Q.of_ints 3 2));
    Alcotest.(check int) "iterations" 512 s.Bounds.si_iterations
  | l -> Alcotest.failf "expected one statement, got %d" (List.length l)

let test_sigma_syrk () =
  let t = Bounds.analyze ~params:[ ("N", 8) ] (K.syrk ()) in
  match Bounds.stmts t with
  | [ s ] ->
    Alcotest.(check bool) "syrk sigma = 3/2" true
      (Q.equal s.Bounds.si_sigma (Q.of_ints 3 2))
  | l -> Alcotest.failf "expected one statement, got %d" (List.length l)

(* --- soundness on the paper kernels, real machines --- *)

let test_sound_kernels () =
  List.iter
    (fun (name, prog) ->
      let params =
        ("N", 16) :: (if name = "cholesky_banded" then [ ("BW", 4) ] else [])
      in
      let t = Bounds.analyze ~params prog in
      List.iter
        (fun machine ->
          List.iter
            (fun quality ->
              let r =
                Model.simulate ~machine ~quality prog ~params
                  ~init:(Kernels.Inits.for_kernel name ~n:16)
              in
              check_sound
                ~what:(Printf.sprintf "%s/%s/%s" name machine.Model.m_name
                         quality.Model.q_name)
                t machine r)
            [ Model.untuned; Model.tuned ])
        [ Model.sp2_like; Model.two_level; tiny ])
    (K.all ())

(* --- soundness of the per-candidate bound over every legal tiling --- *)

let all_block_specs pipe prog ~sizes =
  let arrays = List.map (fun a -> a.Loopir.Ast.a_name) prog.Loopir.Ast.arrays in
  List.concat_map
    (fun array ->
      List.concat_map
        (fun size ->
          let blocking = Blocking.blocks_2d ~array ~size in
          List.map
            (fun choices -> [ { Spec.blocking; choices } ])
            (Pipeline.choices pipe ~array))
        sizes)
    (List.filter
       (fun a ->
         let decl =
           List.find (fun d -> d.Loopir.Ast.a_name = a) prog.Loopir.Ast.arrays
         in
         List.length decl.Loopir.Ast.extents = 2)
       arrays)

let test_sound_all_tilings () =
  List.iter
    (fun name ->
      let prog = List.assoc name (K.all ()) in
      let n = 6 in
      let params = [ ("N", n) ] in
      let pipe = Pipeline.create prog in
      let specs = all_block_specs pipe prog ~sizes:[ 2; 3 ] in
      let legal = List.filter (fun s -> Pipeline.is_legal pipe s) specs in
      Alcotest.(check bool) (name ^ ": some legal tiling") true (legal <> []);
      (* the no-spec bound is order-independent: it must hold for every
         legal blocked execution, which is brute force over the tiling
         space at this size *)
      let t0 = Bounds.analyze ~params prog in
      List.iter
        (fun spec ->
          let r =
            Pipeline.simulate pipe ~spec ~machine:tiny ~quality:Model.untuned
              ~params ~init
          in
          check_sound ~what:(name ^ "/order-free") t0 tiny r;
          (* the spec-aware bound is sound for that spec's execution *)
          let ts = Bounds.analyze ~spec ~params prog in
          check_sound ~what:(name ^ "/windowed") ts tiny r;
          (* and never weaker than the order-free bound *)
          let lv = List.hd (levels_of_machine tiny) in
          Alcotest.(check bool) (name ^ ": windowed >= order-free") true
            (Bounds.misses ts lv >= Bounds.misses t0 lv))
        legal)
    [ "matmul"; "cholesky_right" ]

(* --- soundness on fuzz-generated programs --- *)

let test_sound_fuzzed () =
  for seed = 1 to 25 do
    let rng = Rng.create seed in
    let prog = Gen.program ~quick:true rng in
    let params = [ ("N", 5) ] in
    match Bounds.analyze ~params prog with
    | exception Loopir.Domain.Not_affine _ -> ()
    | t ->
      List.iter
        (fun machine ->
          let r =
            Model.simulate ~machine ~quality:Model.untuned prog ~params ~init
          in
          if r.Model.r_accesses > 0 then
            check_sound
              ~what:(Printf.sprintf "fuzz seed %d/%s" seed machine.Model.m_name)
              t machine r)
        [ Model.sp2_like; tiny ]
  done

(* --- multi-level monotonicity --- *)

let test_multilevel_monotone () =
  let prog = K.matmul () in
  let spec = [ { Spec.blocking = Blocking.blocks_2d ~array:"C" ~size:4;
                 choices = [ ("S1", (List.hd (Loopir.Ast.statements prog) |> snd).Loopir.Ast.lhs) ] } ]
  in
  let t = Bounds.analyze ~spec ~params:[ ("N", 24) ] prog in
  let levels =
    Bounds.levels_of ~line_elems:2
      [ ("L1", 32); ("L2", 256); ("L3", 2048) ]
  in
  let bs = List.map (Bounds.misses t) levels in
  let rec mono = function
    | a :: (b :: _ as tl) ->
      Alcotest.(check bool) "bound non-increasing outward" true (a >= b);
      mono tl
    | _ -> ()
  in
  mono bs;
  Alcotest.(check bool) "deepest level still >= compulsory" true
    (List.for_all (fun b -> b >= 1) bs)

(* --- the exact LP --- *)

let test_lp () =
  let one = Q.one in
  (* max x + y  s.t.  x <= 1, y <= 1, x + y <= 3/2, x,y >= 0 *)
  let rows =
    [ ([| one; Q.zero |], one);
      ([| Q.zero; one |], one);
      ([| one; one |], Q.of_ints 3 2);
      ([| Q.neg one; Q.zero |], Q.zero);
      ([| Q.zero; Q.neg one |], Q.zero) ]
  in
  (match Bounds.Lp.optimize ~maximize:true ~dim:2 ~objective:[| one; one |] rows with
  | Some (v, _) ->
    Alcotest.(check bool) "max = 3/2" true (Q.equal v (Q.of_ints 3 2))
  | None -> Alcotest.fail "LP infeasible");
  (* min x  s.t.  x >= 2 (written -x <= -2) over the x >= 0 ray *)
  let rows = [ ([| Q.neg one |], Q.of_int (-2)); ([| Q.neg one |], Q.zero) ] in
  match Bounds.Lp.optimize ~maximize:false ~dim:1 ~objective:[| one |] rows with
  | Some (v, _) -> Alcotest.(check bool) "min = 2" true (Q.equal v (Q.of_int 2))
  | None -> Alcotest.fail "LP infeasible"

let () =
  Alcotest.run "bounds"
    [ ( "sigma",
        [ Alcotest.test_case "matmul 3/2" `Quick test_sigma_matmul;
          Alcotest.test_case "syrk 3/2" `Quick test_sigma_syrk ] );
      ( "soundness",
        [ Alcotest.test_case "paper kernels" `Slow test_sound_kernels;
          Alcotest.test_case "all tilings N=6" `Slow test_sound_all_tilings;
          Alcotest.test_case "fuzzed programs" `Slow test_sound_fuzzed ] );
      ( "structure",
        [ Alcotest.test_case "multi-level monotone" `Quick test_multilevel_monotone;
          Alcotest.test_case "rational lp" `Quick test_lp ] ) ]
