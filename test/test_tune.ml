(* Tests for the shackle autotuner: determinism across domain counts and
   candidate order, memoized-vs-fresh solver agreement, the report schema,
   and the golden geometries where the tuner must pick exactly the paper's
   hand-written blocked variants, bit-for-bit. *)

module K = Kernels.Builders
module Specs = Experiments.Specs
module Model = Machine.Model
module Json = Observe.Json
module Ctx = Polyhedra.Omega.Ctx
module Rng = Fuzzing.Rng
module Gen = Fuzzing.Gen

let exact = Alcotest.float 0.0

(* everything outside these keys is specified to be byte-identical across
   runs and across [domains] ("domains" itself is run configuration,
   echoed into the report like bench's "trace_mode") *)
let volatile = [ "timing"; "metrics"; "cache_compare"; "domains" ]

let stable_json rp =
  match Tune.report_to_json rp with
  | Json.Obj fields ->
    Json.to_string
      (Json.Obj (List.filter (fun (k, _) -> not (List.mem k volatile)) fields))
  | j -> Json.to_string j

let matmul_report ?(domains = 1) ?shuffle_seed () =
  let options =
    { Tune.default_options with sizes = [ 8 ]; domains; shuffle_seed }
  in
  Tune.tune ~options ~kernel:"matmul" ~params:[ ("N", 32) ] (K.matmul ())

(* --- determinism --- *)

let test_domains_deterministic () =
  let r1 = matmul_report ~domains:1 () in
  let r4 = matmul_report ~domains:4 () in
  Alcotest.(check string) "report identical for 1 vs 4 domains"
    (stable_json r1) (stable_json r4)

let test_shuffle_stable () =
  let plain = matmul_report () in
  let shuffled = matmul_report ~shuffle_seed:42 () in
  let table rp =
    List.map
      (fun s -> (s.Tune.s_cand.Tune.c_label, s.Tune.s_cycles))
      rp.Tune.rp_table
  in
  Alcotest.(check (list (pair string exact)))
    "ranked table independent of candidate order" (table plain) (table shuffled)

(* --- the memoized legality engine --- *)

let test_cache_hits () =
  let pipe = Pipeline.create (K.matmul ()) in
  let spec = Specs.matmul_c ~size:8 in
  let a = Pipeline.is_legal pipe spec in
  let b = Pipeline.is_legal pipe spec in
  Alcotest.(check bool) "same verdict" a b;
  Alcotest.(check bool) "second query hits the memo table" true
    (Ctx.cache_hits (Pipeline.solver pipe) > 0)

let test_cache_consistency_fuzz () =
  (* cached and cache-less contexts must agree on every legality verdict
     over 200 generated programs *)
  let checked = ref 0 in
  for seed = 1 to 200 do
    let prog = Gen.program ~quick:true (Rng.create seed) in
    match Tune.consistency_step prog with
    | Ok n -> checked := !checked + n
    | Error msg -> Alcotest.failf "seed %d: %s" seed msg
  done;
  Alcotest.(check bool) "compared some specs" true (!checked > 0)

let test_cache_compare_pass () =
  let options =
    { Tune.default_options with sizes = [ 8 ]; cache_compare = true }
  in
  let rp =
    Tune.tune ~options ~kernel:"matmul" ~params:[ ("N", 32) ] (K.matmul ())
  in
  match rp.Tune.rp_cache_compare with
  | None -> Alcotest.fail "cache_compare pass did not run"
  | Some cc ->
    Alcotest.(check bool) "cold and warm verdicts agree" true cc.Tune.cc_agree;
    Alcotest.(check bool) "warm pass hits the memo table" true
      (cc.Tune.cc_warm_hits > 0)

(* --- report schema --- *)

let test_report_schema () =
  let rp = matmul_report () in
  let j = Tune.report_to_json rp in
  (match Tune.check_report_json j with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "self-check rejects the report: %s" msg);
  (match Json.of_string (Json.to_string ~pretty:true j) with
  | Ok j' ->
    Alcotest.(check bool) "JSON round-trips" true (Json.equal j j')
  | Error msg -> Alcotest.failf "report does not reparse: %s" msg);
  Alcotest.(check bool) "legality queries were counted" true
    (rp.Tune.rp_solver.Observe.Metrics.so_queries > 0);
  Alcotest.(check bool) "memo table was effective" true
    (rp.Tune.rp_solver.Observe.Metrics.so_cache_hits > 0)

(* --- resource budgets --- *)

let test_starved_tune_completes () =
  (* one unit of fuel per query: every legality probe gives up, so the
     campaign finds no legal candidates — but it completes, counts the
     gave-ups, and the report still validates *)
  let options =
    { Tune.default_options with sizes = [ 8 ]; fuel = Some 1 }
  in
  let rp =
    Tune.tune ~options ~kernel:"matmul" ~params:[ ("N", 32) ] (K.matmul ())
  in
  Alcotest.(check bool) "candidates counted as unknown" true
    (rp.Tune.rp_counts.Tune.n_unknown > 0);
  Alcotest.(check int) "none admitted" 0 rp.Tune.rp_counts.Tune.n_legal;
  Alcotest.(check bool) "solver counted the gave-ups" true
    (rp.Tune.rp_solver.Observe.Metrics.so_unknowns > 0);
  match Tune.check_report_json (Tune.report_to_json rp) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "starved report fails validation: %s" msg

let test_generous_budget_matches_unbudgeted () =
  let budgeted =
    { Tune.default_options with
      sizes = [ 8 ];
      fuel = Some 10_000_000;
      timeout_ms = Some 600_000 }
  in
  let r1 =
    Tune.tune ~options:budgeted ~kernel:"matmul" ~params:[ ("N", 32) ]
      (K.matmul ())
  in
  let r2 = matmul_report () in
  let table rp =
    List.map
      (fun s -> (s.Tune.s_cand.Tune.c_label, s.Tune.s_cycles))
      rp.Tune.rp_table
  in
  Alcotest.(check (list (pair string exact)))
    "generous budget ranks identically" (table r2) (table r1);
  Alcotest.(check int) "nothing gave up" 0 r1.Tune.rp_counts.Tune.n_unknown

(* --- golden geometries --- *)

(* N=64 with 16x16 blocks: one 16x64 panel of A (8 KB) plus a 16x16 tile
   of C fit the 64 KB cache but whole rows of everything do not, so the
   fully blocked C x A product strictly beats both single shackles. *)
let test_matmul_golden () =
  let p = K.matmul () in
  let n = 64 in
  let golden = Specs.matmul_ca ~size:16 in
  let rp =
    Tune.tune
      ~arrays:[ "C"; "A" ]
      ~kernel:"matmul"
      ~params:[ ("N", n) ]
      p
  in
  let best =
    match Tune.best rp with
    | Some s -> s
    | None -> Alcotest.fail "no legal candidate for matmul"
  in
  Alcotest.(check string) "best is the fully blocked C x A product"
    (Tune.spec_label golden) best.Tune.s_cand.Tune.c_label;
  Alcotest.(check bool) "winner is fully constrained (Theorem 2)" true
    best.Tune.s_cand.Tune.c_fully_constrained;
  let r =
    Pipeline.simulate (Pipeline.create p) ~spec:golden ~machine:Model.sp2_like
      ~quality:Model.untuned
      ~params:[ ("N", n) ]
      ~init:(Kernels.Inits.for_kernel "matmul" ~n)
  in
  Alcotest.check exact "cycles bit-for-bit equal to the hand-written variant"
    r.Model.r_cycles best.Tune.s_cycles;
  Alcotest.(check bool) "strictly faster than the unblocked input" true
    (best.Tune.s_cycles < rp.Tune.rp_input_cycles)

(* N=128 with 32x32 blocks (tuned inner loops): the read shackle — the
   paper's left-looking variant — wins; the write x read fully blocked
   product of Section 6 must also be in the table, again bit-for-bit. *)
let test_cholesky_golden () =
  let p = K.cholesky_right () in
  let n = 128 in
  let options =
    { Tune.default_options with sizes = [ 32 ]; qualities = [ Model.tuned ] }
  in
  let rp =
    Tune.tune ~options ~kernel:"cholesky_right" ~params:[ ("N", n) ] p
  in
  let best =
    match Tune.best rp with
    | Some s -> s
    | None -> Alcotest.fail "no legal candidate for cholesky"
  in
  let init = Kernels.Inits.for_kernel "cholesky_right" ~n in
  let pipe = Pipeline.create p in
  let sim spec =
    (Pipeline.simulate pipe ~spec ~machine:Model.sp2_like ~quality:Model.tuned
       ~params:[ ("N", n) ]
       ~init)
      .Model.r_cycles
  in
  let read = Specs.cholesky_read ~size:32 in
  Alcotest.(check string) "best is the read (left-looking) shackle"
    (Tune.spec_label read) best.Tune.s_cand.Tune.c_label;
  Alcotest.check exact "cycles bit-for-bit equal to the hand-written variant"
    (sim read) best.Tune.s_cycles;
  let full = Specs.cholesky_fully_blocked ~size:32 in
  (match
     List.find_opt
       (fun s -> String.equal s.Tune.s_cand.Tune.c_label (Tune.spec_label full))
       rp.Tune.rp_table
   with
  | None -> Alcotest.fail "write x read product missing from the table"
  | Some s ->
    Alcotest.check exact "product cycles bit-for-bit" (sim full)
      s.Tune.s_cycles);
  Alcotest.(check bool) "strictly faster than the unblocked input" true
    (best.Tune.s_cycles < rp.Tune.rp_input_cycles)

(* --- analytic lower-bound pruning --- *)

(* On the small fully-associative single-element-line machine the windowed
   communication bound is tight enough that pruning actually fires for
   matmul; for Cholesky every ref hits the same array, the projective
   per-array bound is nearly flat across candidates, and nothing can be
   pruned — but the winner must still be byte-identical either way. *)
let pruned_vs_exhaustive ~kernel ~n ~sizes prog =
  let base =
    { Tune.default_options with sizes; machines = [ Model.small_cache ] }
  in
  let run prune_bounds =
    Tune.tune
      ~options:{ base with prune_bounds }
      ~kernel
      ~params:[ ("N", n) ]
      prog
  in
  let exhaustive = run false and pruned = run true in
  (match (Tune.best exhaustive, Tune.best pruned) with
  | Some e, Some p ->
    Alcotest.(check string) "same winner with and without pruning"
      e.Tune.s_cand.Tune.c_label p.Tune.s_cand.Tune.c_label;
    Alcotest.check exact "same winning cycles" e.Tune.s_cycles p.Tune.s_cycles
  | _ -> Alcotest.fail "a run produced no winner");
  Alcotest.(check int) "exhaustive run prunes nothing" 0
    exhaustive.Tune.rp_counts.Tune.n_pruned_by_bound;
  (match Tune.check_report_json (Tune.report_to_json pruned) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "pruned report fails validation: %s" msg);
  pruned.Tune.rp_counts.Tune.n_pruned_by_bound

let test_prune_bounds_matmul () =
  let n_pruned =
    pruned_vs_exhaustive ~kernel:"matmul" ~n:48 ~sizes:[ 4; 8; 16 ]
      (K.matmul ())
  in
  Alcotest.(check bool) "the bound pruner fired" true (n_pruned > 0)

let test_prune_bounds_cholesky () =
  let n_pruned =
    pruned_vs_exhaustive ~kernel:"cholesky_right" ~n:40 ~sizes:[ 4; 8 ]
      (K.cholesky_right ())
  in
  (* single-array kernel: the bound is flat, so nothing should be (and
     nothing may unsoundly be) discarded *)
  Alcotest.(check int) "flat bound prunes nothing" 0 n_pruned

let test_headroom_sound () =
  (* every reported candidate's simulated misses must be >= its bound,
     per machine, per level *)
  let options =
    { Tune.default_options with
      sizes = [ 8; 16 ];
      machines = [ Model.small_cache; Model.sp2_like ] }
  in
  let rp =
    Tune.tune ~options ~kernel:"matmul" ~params:[ ("N", 48) ] (K.matmul ())
  in
  Alcotest.(check bool) "table is nonempty" true (rp.Tune.rp_table <> []);
  List.iter
    (fun s ->
      List.iter
        (fun (machine, per_level) ->
          match
            List.find_opt
              (fun (m, _, _) -> String.equal m machine)
              s.Tune.s_results
          with
          | None -> ()
          | Some (_, _, r) ->
            List.iter2
              (fun (lname, bound) (st : Model.level_stat) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s %s/%s: misses %d >= bound %d"
                     s.Tune.s_cand.Tune.c_label machine lname st.Model.s_misses
                     bound)
                  true
                  (st.Model.s_misses >= bound))
              per_level r.Model.r_levels)
        s.Tune.s_bounds)
    rp.Tune.rp_table

let () =
  Alcotest.run "tune"
    [ ( "determinism",
        [ Alcotest.test_case "domains 1 vs 4" `Slow test_domains_deterministic;
          Alcotest.test_case "shuffled candidates" `Quick test_shuffle_stable ] );
      ( "legality cache",
        [ Alcotest.test_case "repeat query hits" `Quick test_cache_hits;
          Alcotest.test_case "cached vs fresh on 200 fuzz programs" `Slow
            test_cache_consistency_fuzz;
          Alcotest.test_case "cold/warm compare pass" `Quick
            test_cache_compare_pass ] );
      ( "report",
        [ Alcotest.test_case "schema self-check and round-trip" `Quick
            test_report_schema ] );
      ( "budget",
        [ Alcotest.test_case "starved run completes" `Quick
            test_starved_tune_completes;
          Alcotest.test_case "generous budget = unbudgeted" `Quick
            test_generous_budget_matches_unbudgeted ] );
      ( "golden",
        [ Alcotest.test_case "matmul picks C x A, bit-for-bit" `Slow
            test_matmul_golden;
          Alcotest.test_case "cholesky picks read shackle, bit-for-bit" `Slow
            test_cholesky_golden ] );
      ( "bounds",
        [ Alcotest.test_case "matmul: pruning fires, winner unchanged" `Slow
            test_prune_bounds_matmul;
          Alcotest.test_case "cholesky: flat bound, winner unchanged" `Slow
            test_prune_bounds_cholesky;
          Alcotest.test_case "headroom >= 1 on every row" `Quick
            test_headroom_sound ] ) ]
