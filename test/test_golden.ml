(* Golden codegen tests: the pretty-printed blocked code for the paper's two
   flagship kernels is pinned to checked-in expected files.  Any change to
   code generation, bound tightening, guard elimination or pretty-printing
   that alters the emitted text shows up as a readable diff here.

   To regenerate after an intentional change:
     dune exec test/test_golden.exe -- --regen   (from the repo root)
   then review the diff and commit the new .expected files. *)

module Ast = Loopir.Ast
module K = Kernels.Builders
module Specs = Experiments.Specs

let cases () =
  [ ( "matmul_ca_25",
      Codegen.Tighten.generate (K.matmul ()) (Specs.matmul_ca ~size:25) );
    ( "cholesky_full_16",
      Codegen.Tighten.generate (K.cholesky_right ())
        (Specs.cholesky_fully_blocked ~size:16) ) ]

let path name = Filename.concat "golden" (name ^ ".expected")

let read_file f =
  let ic = open_in_bin f in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file f s =
  let oc = open_out_bin f in
  output_string oc s;
  close_out oc

let check_case (name, prog) =
  let got = Ast.program_to_string prog in
  let expected = read_file (path name) in
  Alcotest.(check string) (name ^ " matches golden file") expected got

let () =
  if Array.length Sys.argv > 1 && String.equal Sys.argv.(1) "--regen" then begin
    List.iter
      (fun (name, prog) ->
        write_file (path name) (Ast.program_to_string prog);
        Printf.printf "wrote %s\n" (path name))
      (cases ())
  end
  else
    Alcotest.run "golden"
      [ ( "codegen",
          List.map
            (fun ((name, _) as case) ->
              Alcotest.test_case name `Quick (fun () -> check_case case))
            (cases ()) ) ]
