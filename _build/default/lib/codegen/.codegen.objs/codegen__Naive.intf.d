lib/codegen/naive.mli: Loopir Shackle
