lib/codegen/tighten.mli: Loopir Shackle
