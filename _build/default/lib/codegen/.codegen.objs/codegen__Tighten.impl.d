lib/codegen/tighten.ml: Array Bigint Hashtbl List Loopir Polyhedra Printf Shackle String
