lib/codegen/naive.ml: List Loopir Shackle String
