module Ast = Loopir.Ast
module E = Loopir.Expr
module Fexpr = Loopir.Fexpr

exception Not_perfectly_nested of string

(* Peel a perfect nest: a chain of single-child loops ending in statements. *)
let rec peel acc = function
  | [ Ast.Loop l ] -> peel (l :: acc) l.body
  | body ->
    if
      List.for_all (function Ast.Stmt _ -> true | _ -> false) body
      && body <> []
    then (List.rev acc, body)
    else raise (Not_perfectly_nested "statements must all be innermost")

let tile (prog : Ast.program) ~sizes =
  let loops, stmts = peel [] prog.body in
  let loop_vars = List.map (fun (l : Ast.loop) -> l.var) loops in
  List.iter
    (fun (v, s) ->
      if s <= 0 then invalid_arg "Tiling.tile: nonpositive tile size";
      if not (List.mem v loop_vars) then
        raise (Not_perfectly_nested ("no loop named " ^ v)))
    sizes;
  (* tiled bounds must not reference any loop variable *)
  List.iter
    (fun (l : Ast.loop) ->
      if List.mem_assoc l.var sizes then
        List.iter
          (fun bound ->
            List.iter
              (fun v ->
                if List.mem v loop_vars then
                  raise
                    (Not_perfectly_nested
                       ("bound of tiled loop " ^ l.var ^ " references " ^ v)))
              (E.vars bound))
          [ l.lo; l.hi ])
    loops;
  let tile_var v = v ^ "_t" in
  List.iter
    (fun (v, _) ->
      if List.mem (tile_var v) loop_vars then
        raise (Not_perfectly_nested ("name collision on " ^ tile_var v)))
    sizes;
  (* point loops, innermost structure *)
  let point_body =
    List.fold_right
      (fun (l : Ast.loop) inner ->
        match List.assoc_opt l.var sizes with
        | None -> [ Ast.Loop { l with body = inner } ]
        | Some s ->
          let z = E.Var (tile_var l.var) in
          (* point range: lo + (z-1)*s  ..  min(hi, lo + z*s - 1) *)
          let lo' =
            E.simplify (E.Add (l.lo, E.Mul (s, E.Sub (z, E.Const 1))))
          in
          let hi' =
            E.simplify
              (E.Min (l.hi, E.Add (l.lo, E.Sub (E.Mul (s, z), E.Const 1))))
          in
          [ Ast.Loop { l with lo = lo'; hi = hi'; body = inner } ])
      loops stmts
  in
  let body =
    List.fold_right
      (fun (l : Ast.loop) inner ->
        match List.assoc_opt l.var sizes with
        | None -> inner
        | Some s ->
          (* number of tiles: ceil((hi - lo + 1) / s) *)
          let count =
            E.simplify
              (E.CeilDiv (E.Add (E.Sub (l.hi, l.lo), E.Const 1), s))
          in
          [ Ast.Loop { var = tile_var l.var; lo = E.Const 1; hi = count; body = inner } ])
      loops point_body
  in
  { prog with Ast.p_name = prog.p_name ^ "_tiled"; body }

let cholesky_update_tiled ~size =
  let base = Kernels.Builders.cholesky_right () in
  let v = E.var and c = E.int in
  let n_ = v "N" in
  let a idx = Fexpr.read "A" idx in
  let s1 =
    Ast.stmt ~id:0 ~label:"S1"
      (Fexpr.ref_ "A" [ v "J"; v "J" ])
      (Fexpr.sqrt_ (a [ v "J"; v "J" ]))
  in
  let s2 =
    Ast.stmt ~id:1 ~label:"S2"
      (Fexpr.ref_ "A" [ v "I"; v "J" ])
      (Fexpr.( / ) (a [ v "I"; v "J" ]) (a [ v "J"; v "J" ]))
  in
  let s3 =
    Ast.stmt ~id:2 ~label:"S3"
      (Fexpr.ref_ "A" [ v "L"; v "K" ])
      (Fexpr.( - ) (a [ v "L"; v "K" ])
         (Fexpr.( * ) (a [ v "L"; v "J" ]) (a [ v "K"; v "J" ])))
  in
  (* L, K in J+1..N, tiled rectangularly; the triangular constraint K <= L
     survives in the K point loop's upper bound *)
  let block z = E.simplify E.(Add (Add (v "J", Mul (size, Sub (z, Const 1))), Const 1)) in
  let block_hi z = E.simplify E.(Add (v "J", Mul (size, z))) in
  let tiles = E.simplify (E.CeilDiv (E.Sub (n_, v "J"), size)) in
  let update =
    Ast.loop "Lt" (c 1) tiles
      [ Ast.loop "Kt" (c 1) (v "Lt")
          [ Ast.loop "L" (block (v "Lt")) (E.Min (n_, block_hi (v "Lt")))
              [ Ast.loop "K" (block (v "Kt"))
                  (E.min_list [ v "L"; block_hi (v "Kt"); n_ ])
                  [ s3 ] ] ] ]
  in
  { base with
    Ast.p_name = "cholesky_update_tiled";
    body =
      [ Ast.loop "J" (c 1) n_
          [ s1; Ast.loop "I" E.(Add (v "J", Const 1)) n_ [ s2 ]; update ] ] }
