(** The control-centric baseline: Wolfe-style iteration-space tiling
    (strip-mine and interchange) of perfectly nested loops.

    This is the technology the paper compares data shackling against
    (Section 3).  Its key limitation is built into the signature: only
    perfectly nested loops whose bounds do not involve the tiled loop
    variables can be tiled; imperfectly nested codes like Cholesky first
    need code sinking, and the quality of the result depends on how the
    sinking choices are made.  [cholesky_update_tiled] materializes the
    outcome the paper describes for the straightforward choice: only the
    update loops get tiled. *)

exception Not_perfectly_nested of string

val tile :
  Loopir.Ast.program -> sizes:(string * int) list -> Loopir.Ast.program
(** Tiles the named loops of a perfectly nested program.  Tile-index loops
    (named [<var>_t]) are placed outermost in original loop order, point
    loops keep their names.
    @raise Not_perfectly_nested if the program is not a single perfect
    nest, a tiled bound references an inner variable, or a name collides. *)

val cholesky_update_tiled : size:int -> Loopir.Ast.program
(** Right-looking Cholesky with only the [L]/[K] update loops tiled — the
    result of sinking S1/S2 naively and tiling what remains legal, the
    weaker control-centric result discussed in Section 3. *)
