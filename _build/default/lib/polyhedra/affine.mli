(** Affine forms [c0 + a1*x1 + ... + an*xn] over a fixed-dimension variable
    space, with {!Bigint} coefficients. *)

type t = private { coeffs : Bigint.t array; const : Bigint.t }

val dim : t -> int
val make : Bigint.t array -> Bigint.t -> t
val zero : int -> t
val const : int -> Bigint.t -> t
val of_int : int -> int -> t
(** [of_int dim c] is the constant form [c]. *)

val var : int -> int -> t
(** [var dim i] is the form [xi]. *)

val of_ints : int list -> int -> t
(** [of_ints coeffs const] builds a form from native ints. *)

val coeff : t -> int -> Bigint.t
val const_of : t -> Bigint.t
val is_constant : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Bigint.t -> t -> t
val scale_int : int -> t -> t
val add_const : t -> Bigint.t -> t
val set_coeff : t -> int -> Bigint.t -> t

val eval : t -> Bigint.t array -> Bigint.t
val eval_int : t -> int array -> Bigint.t

val subst : t -> int -> t -> t
(** [subst a k e] replaces variable [k] by the form [e] in [a].
    [e] must not mention [k]. *)

val extend : t -> int -> t
(** [extend a n] reinterprets [a] in a larger space of dimension [n]
    (new trailing variables get coefficient 0). *)

val rename : t -> int array -> int -> t
(** [rename a perm n] maps variable [i] of [a] to variable [perm.(i)] of a
    new [n]-dimensional space. *)

val content : t -> Bigint.t
(** Gcd of all coefficients (not the constant); zero for constant forms. *)

val divexact : t -> Bigint.t -> t
val equal : t -> t -> bool
val vars : t -> int list
(** Indices with nonzero coefficient, ascending. *)

val pp : string array -> Format.formatter -> t -> unit
(** Pretty-print with the given variable names. *)
