(** Exact integer feasibility of conjunctions of linear constraints —
    the Omega test (Pugh, CACM 1992).

    This is the decision procedure behind both dependence testing and the
    paper's Theorem 1 legality test for data shackles: a shackle is legal iff
    for every dependence, the system "(dependence exists) and (blocks visited
    in the wrong order)" has no integer solution. *)

val satisfiable : System.t -> bool
(** Exact: uses equality reduction, Fourier-Motzkin with real/dark shadows,
    and splintering when the projection is inexact. *)

val implies : System.t -> Constr.t -> bool
(** [implies s c] is true when every integer point of [s] satisfies [c]. *)

val implies_all : System.t -> Constr.t list -> bool

val equivalent : System.t -> System.t -> bool
(** Mutual implication over the same variable space. *)

val stats : unit -> int * int
(** (satisfiability queries answered, splinters explored) — for tests and
    benchmarks. *)
