(** Linear constraints: an affine form compared to zero. *)

type kind =
  | Eq  (** form = 0 *)
  | Ge  (** form >= 0 *)

type t = { kind : kind; aff : Affine.t }

val eq : Affine.t -> t
val ge : Affine.t -> t

val ge_of : Affine.t -> Affine.t -> t
(** [ge_of a b] is the constraint [a >= b]. *)

val le_of : Affine.t -> Affine.t -> t
val eq_of : Affine.t -> Affine.t -> t
val lt_of : Affine.t -> Affine.t -> t
(** Strict, encoded as [a <= b - 1] (integer semantics). *)

val gt_of : Affine.t -> Affine.t -> t
val dim : t -> int

val normalize : t -> t
(** Divides by the gcd of the coefficients.  For inequalities the constant is
    floored (integer tightening); for equalities the gcd must divide the
    constant, otherwise the constraint is unsatisfiable and [normalize]
    returns the canonical false constraint [0 >= 1] unchanged in kind Eq
    ([0 = 1]). *)

val is_trivially_true : t -> bool
val is_trivially_false : t -> bool
val satisfied_by : t -> Bigint.t array -> bool
val extend : t -> int -> t
val rename : t -> int array -> int -> t
val subst : t -> int -> Affine.t -> t
val equal : t -> t -> bool
val negate_ge : t -> t
(** Negation of an inequality [f >= 0] as the integer inequality
    [-f - 1 >= 0].  @raise Invalid_argument on equalities. *)

val pp : string array -> Format.formatter -> t -> unit
