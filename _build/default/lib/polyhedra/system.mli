(** Conjunctions of linear constraints over a named variable space.
    This is the "polyhedron" (really: Presburger conjunct) that dependence
    analysis, legality testing and code generation all manipulate. *)

type t = { dim : int; names : string array; cs : Constr.t list }

val make : string array -> Constr.t list -> t
(** @raise Invalid_argument if a constraint has the wrong dimension. *)

val universe : string array -> t
val dim : t -> int
val names : t -> string array
val constraints : t -> Constr.t list
val add : t -> Constr.t -> t
val add_list : t -> Constr.t list -> t

val conjoin : t -> t -> t
(** Both systems must share the variable space. *)

val extend : t -> string array -> t
(** [extend s extra] appends fresh variables named [extra]. *)

val rename_into : t -> int array -> t -> t
(** [rename_into s perm target] reinterprets [s]'s constraints in [target]'s
    space, mapping variable [i] to [perm.(i)], and conjoins with [target]. *)

val var : t -> string -> int
(** Index of a variable by name. @raise Not_found *)

val aff_var : t -> string -> Affine.t
val aff_const : t -> int -> Affine.t

val satisfied_by : t -> Bigint.t array -> bool
val satisfied_by_ints : t -> int array -> bool
val has_trivially_false : t -> bool
val simplify_trivial : t -> t
(** Drops trivially-true constraints and duplicates. *)

val pp : Format.formatter -> t -> unit
