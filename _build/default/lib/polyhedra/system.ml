type t = { dim : int; names : string array; cs : Constr.t list }

let make names cs =
  let dim = Array.length names in
  List.iter
    (fun c ->
      if Constr.dim c <> dim then
        invalid_arg "System.make: constraint dimension mismatch")
    cs;
  { dim; names; cs }

let universe names = make names []
let dim s = s.dim
let names s = s.names
let constraints s = s.cs

let add s c =
  if Constr.dim c <> s.dim then invalid_arg "System.add: dimension mismatch";
  { s with cs = c :: s.cs }

let add_list s cs = List.fold_left add s cs

let conjoin a b =
  if a.dim <> b.dim then invalid_arg "System.conjoin: dimension mismatch";
  { a with cs = a.cs @ b.cs }

let extend s extra =
  let names = Array.append s.names extra in
  let dim = Array.length names in
  { dim; names; cs = List.map (fun c -> Constr.extend c dim) s.cs }

let rename_into s perm target =
  let cs = List.map (fun c -> Constr.rename c perm target.dim) s.cs in
  { target with cs = cs @ target.cs }

let var s name =
  let rec go i =
    if i >= s.dim then raise Not_found
    else if String.equal s.names.(i) name then i
    else go (i + 1)
  in
  go 0

let aff_var s name = Affine.var s.dim (var s name)
let aff_const s c = Affine.of_int s.dim c
let satisfied_by s env = List.for_all (fun c -> Constr.satisfied_by c env) s.cs

let satisfied_by_ints s env =
  satisfied_by s (Array.map Bigint.of_int env)

let has_trivially_false s = List.exists Constr.is_trivially_false s.cs

let simplify_trivial s =
  let cs =
    List.filter (fun c -> not (Constr.is_trivially_true c)) s.cs
  in
  let cs =
    List.fold_left
      (fun acc c -> if List.exists (Constr.equal c) acc then acc else c :: acc)
      [] cs
  in
  { s with cs = List.rev cs }

let pp fmt s =
  Format.fprintf fmt "@[<v 2>{ %a :@ %a }@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       Format.pp_print_string)
    (Array.to_list s.names)
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt " and@ ")
       (Constr.pp s.names))
    s.cs
