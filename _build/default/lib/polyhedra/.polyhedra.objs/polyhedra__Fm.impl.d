lib/polyhedra/fm.ml: Affine Array Bigint Buffer Constr Fun Hashtbl List System
