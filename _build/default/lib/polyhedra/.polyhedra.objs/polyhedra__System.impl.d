lib/polyhedra/system.ml: Affine Array Bigint Constr Format List String
