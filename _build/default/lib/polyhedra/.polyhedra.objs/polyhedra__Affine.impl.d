lib/polyhedra/affine.ml: Array Bigint Format List
