lib/polyhedra/constr.mli: Affine Bigint Format
