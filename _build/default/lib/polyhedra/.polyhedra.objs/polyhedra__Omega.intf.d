lib/polyhedra/omega.mli: Constr System
