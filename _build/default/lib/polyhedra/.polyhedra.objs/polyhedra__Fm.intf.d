lib/polyhedra/fm.mli: Affine Bigint System
