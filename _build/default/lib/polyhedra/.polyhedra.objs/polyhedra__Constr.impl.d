lib/polyhedra/constr.ml: Affine Array Bigint Format
