lib/polyhedra/system.mli: Affine Bigint Constr Format
