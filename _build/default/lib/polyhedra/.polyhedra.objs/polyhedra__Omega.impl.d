lib/polyhedra/omega.ml: Affine Array Bigint Buffer Constr Hashtbl List Option System
