lib/polyhedra/affine.mli: Bigint Format
