module B = Bigint

type kind = Eq | Ge

type t = { kind : kind; aff : Affine.t }

let eq aff = { kind = Eq; aff }
let ge aff = { kind = Ge; aff }
let ge_of a b = ge (Affine.sub a b)
let le_of a b = ge (Affine.sub b a)
let eq_of a b = eq (Affine.sub a b)
let lt_of a b = ge (Affine.add_const (Affine.sub b a) B.minus_one)
let gt_of a b = lt_of b a
let dim c = Affine.dim c.aff

let normalize c =
  let g = Affine.content c.aff in
  if B.is_zero g then c
  else begin
    match c.kind with
    | Eq ->
      if B.is_zero (B.frem (Affine.const_of c.aff) g) then
        { c with aff = Affine.divexact c.aff g }
      else c
    | Ge ->
      if B.equal g B.one then c
      else begin
        let coeffs =
          Array.map (fun x -> B.divexact x g) (c.aff : Affine.t).coeffs
        in
        let const = B.fdiv (Affine.const_of c.aff) g in
        { c with aff = Affine.make coeffs const }
      end
  end

let is_trivially_true c =
  Affine.is_constant c.aff
  &&
  match c.kind with
  | Eq -> B.is_zero (Affine.const_of c.aff)
  | Ge -> B.sign (Affine.const_of c.aff) >= 0

let is_trivially_false c =
  Affine.is_constant c.aff
  &&
  match c.kind with
  | Eq -> not (B.is_zero (Affine.const_of c.aff))
  | Ge -> B.sign (Affine.const_of c.aff) < 0

let satisfied_by c env =
  let v = Affine.eval c.aff env in
  match c.kind with Eq -> B.is_zero v | Ge -> B.sign v >= 0

let extend c n = { c with aff = Affine.extend c.aff n }
let rename c perm n = { c with aff = Affine.rename c.aff perm n }
let subst c k e = { c with aff = Affine.subst c.aff k e }
let equal a b = a.kind = b.kind && Affine.equal a.aff b.aff

let negate_ge c =
  match c.kind with
  | Ge -> ge (Affine.add_const (Affine.neg c.aff) B.minus_one)
  | Eq -> invalid_arg "Constr.negate_ge: equality"

let pp names fmt c =
  Format.fprintf fmt "%a %s 0" (Affine.pp names) c.aff
    (match c.kind with Eq -> "=" | Ge -> ">=")
