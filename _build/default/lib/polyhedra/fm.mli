(** Rational Fourier-Motzkin elimination with bound extraction.

    Used for projecting dependence/legality systems and, crucially, by the
    code generator: the bounds of a loop variable are exactly the lower/upper
    bound forms of that variable in the statement's polyhedron after the
    deeper variables have been eliminated. *)

type bound = { coef : Bigint.t; form : Affine.t }
(** A lower bound [coef * x >= form] or an upper bound [coef * x <= form];
    [coef > 0] and [form] does not mention [x]. *)

val bounds_of : System.t -> int -> bound list * bound list
(** [(lowers, uppers)] for the given variable.  Equalities contribute to
    both sides. *)

val eliminate : System.t -> int -> System.t
(** Rational FM elimination of one variable.  The result has the same
    dimension, with the variable unconstrained.  Constraints are normalized
    with integer tightening (safe because all our systems denote integer
    sets). *)

val eliminate_all_but : System.t -> int list -> System.t
(** Eliminates every variable not in the kept list. *)

val eliminate_list : System.t -> int list -> System.t

val compress : System.t -> System.t
(** Normalization, syntactic deduplication, and removal of constraints
    dominated by a parallel constraint with a stronger constant. *)
