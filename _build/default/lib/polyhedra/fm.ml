module B = Bigint

type bound = { coef : B.t; form : Affine.t }

(* Split the constraints of [s] on variable [k] into lower bounds, upper
   bounds and constraints not mentioning [k].  Equalities mentioning [k] are
   split into a (lower, upper) pair. *)
let split s k =
  let lowers = ref [] and uppers = ref [] and rest = ref [] in
  let add_ineq aff =
    (* aff >= 0; look at coefficient of k *)
    let c = Affine.coeff aff k in
    let sign = B.sign c in
    if sign = 0 then rest := Constr.ge aff :: !rest
    else begin
      let form = Affine.set_coeff aff k B.zero in
      if sign > 0 then
        (* c*k + form >= 0  <=>  c*k >= -form *)
        lowers := { coef = c; form = Affine.neg form } :: !lowers
      else
        (* c*k + form >= 0 with c<0  <=>  |c|*k <= form *)
        uppers := { coef = B.neg c; form } :: !uppers
    end
  in
  List.iter
    (fun (c : Constr.t) ->
      match c.kind with
      | Constr.Ge -> add_ineq c.aff
      | Constr.Eq ->
        if B.is_zero (Affine.coeff c.aff k) then rest := c :: !rest
        else begin
          add_ineq c.aff;
          add_ineq (Affine.neg c.aff)
        end)
    (System.constraints s);
  (!lowers, !uppers, !rest)

let bounds_of s k =
  let lowers, uppers, _ = split s k in
  (lowers, uppers)

(* Among normalized parallel inequalities [coeffs.x + const >= 0] (identical
   coefficient vectors) only the one with the smallest constant matters. *)
let compress s =
  let table : (string, Constr.t) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let key (c : Constr.t) =
    let buf = Buffer.create 32 in
    Buffer.add_string buf (match c.kind with Constr.Eq -> "=" | Constr.Ge -> ">");
    Array.iter
      (fun x ->
        Buffer.add_string buf (B.to_string x);
        Buffer.add_char buf ',')
      (c.aff : Affine.t).coeffs;
    (* Equalities are only duplicates when the constant matches too. *)
    (match c.kind with
     | Constr.Eq -> Buffer.add_string buf (B.to_string (Affine.const_of c.aff))
     | Constr.Ge -> ());
    Buffer.contents buf
  in
  List.iter
    (fun c ->
      let c = Constr.normalize c in
      if not (Constr.is_trivially_true c) then begin
        let k = key c in
        match Hashtbl.find_opt table k with
        | None ->
          Hashtbl.add table k c;
          order := k :: !order
        | Some old ->
          if
            B.compare (Affine.const_of c.aff) (Affine.const_of old.aff) < 0
          then Hashtbl.replace table k c
      end)
    (System.constraints s);
  System.make (System.names s)
    (List.rev_map (fun k -> Hashtbl.find table k) !order)

let eliminate s k =
  let lowers, uppers, rest = split s k in
  let combined =
    List.concat_map
      (fun (l : bound) ->
        List.map
          (fun (u : bound) ->
            (* l.coef*k >= l.form and u.coef*k <= u.form
               =>  l.coef * u.form - u.coef * l.form >= 0 *)
            Constr.ge
              (Affine.sub (Affine.scale l.coef u.form)
                 (Affine.scale u.coef l.form)))
          uppers)
      lowers
  in
  compress (System.make (System.names s) (combined @ List.rev rest))

let eliminate_list s ks = List.fold_left eliminate s ks

let eliminate_all_but s keep =
  let ks =
    List.filter
      (fun i -> not (List.mem i keep))
      (List.init (System.dim s) Fun.id)
  in
  eliminate_list s ks
