module B = Bigint

type t = { coeffs : B.t array; const : B.t }

let dim a = Array.length a.coeffs
let make coeffs const = { coeffs = Array.copy coeffs; const }
let zero n = { coeffs = Array.make n B.zero; const = B.zero }
let const n c = { coeffs = Array.make n B.zero; const = c }
let of_int n c = const n (B.of_int c)

let var n i =
  if i < 0 || i >= n then invalid_arg "Affine.var: index out of range";
  let coeffs = Array.make n B.zero in
  coeffs.(i) <- B.one;
  { coeffs; const = B.zero }

let of_ints coeffs c =
  { coeffs = Array.of_list (List.map B.of_int coeffs); const = B.of_int c }

let coeff a i = a.coeffs.(i)
let const_of a = a.const
let is_constant a = Array.for_all B.is_zero a.coeffs

let check_dim a b =
  if dim a <> dim b then invalid_arg "Affine: dimension mismatch"

let add a b =
  check_dim a b;
  { coeffs = Array.map2 B.add a.coeffs b.coeffs; const = B.add a.const b.const }

let neg a = { coeffs = Array.map B.neg a.coeffs; const = B.neg a.const }
let sub a b = add a (neg b)

let scale k a =
  { coeffs = Array.map (B.mul k) a.coeffs; const = B.mul k a.const }

let scale_int k a = scale (B.of_int k) a
let add_const a c = { a with const = B.add a.const c }

let set_coeff a i v =
  let coeffs = Array.copy a.coeffs in
  coeffs.(i) <- v;
  { a with coeffs }

let eval a env =
  if Array.length env <> dim a then invalid_arg "Affine.eval: dimension";
  let acc = ref a.const in
  for i = 0 to dim a - 1 do
    if not (B.is_zero a.coeffs.(i)) then
      acc := B.add !acc (B.mul a.coeffs.(i) env.(i))
  done;
  !acc

let eval_int a env = eval a (Array.map B.of_int env)

let subst a k e =
  check_dim a e;
  if not (B.is_zero e.coeffs.(k)) then
    invalid_arg "Affine.subst: replacement mentions the variable";
  let ak = a.coeffs.(k) in
  if B.is_zero ak then a
  else begin
    let scaled = scale ak e in
    let a' = set_coeff a k B.zero in
    add a' scaled
  end

let extend a n =
  if n < dim a then invalid_arg "Affine.extend: shrinking";
  let coeffs = Array.make n B.zero in
  Array.blit a.coeffs 0 coeffs 0 (dim a);
  { coeffs; const = a.const }

let rename a perm n =
  if Array.length perm <> dim a then invalid_arg "Affine.rename: perm size";
  let coeffs = Array.make n B.zero in
  Array.iteri
    (fun i c ->
      if not (B.is_zero c) then begin
        let j = perm.(i) in
        if j < 0 || j >= n then invalid_arg "Affine.rename: target out of range";
        coeffs.(j) <- B.add coeffs.(j) c
      end)
    a.coeffs;
  { coeffs; const = a.const }

let content a = Array.fold_left B.gcd B.zero a.coeffs

let divexact a k =
  { coeffs = Array.map (fun c -> B.divexact c k) a.coeffs;
    const = B.divexact a.const k }

let equal a b =
  dim a = dim b && B.equal a.const b.const
  && Array.for_all2 B.equal a.coeffs b.coeffs

let vars a =
  let acc = ref [] in
  for i = dim a - 1 downto 0 do
    if not (B.is_zero a.coeffs.(i)) then acc := i :: !acc
  done;
  !acc

let pp names fmt a =
  let first = ref true in
  let term fmt c name =
    let c_abs = B.abs c in
    if !first then begin
      first := false;
      if B.sign c < 0 then Format.pp_print_string fmt "-"
    end
    else if B.sign c < 0 then Format.pp_print_string fmt " - "
    else Format.pp_print_string fmt " + ";
    match name with
    | None -> Format.pp_print_string fmt (B.to_string c_abs)
    | Some n ->
      if B.equal c_abs B.one then Format.pp_print_string fmt n
      else Format.fprintf fmt "%s*%s" (B.to_string c_abs) n
  in
  Array.iteri
    (fun i c ->
      if not (B.is_zero c) then
        term fmt c
          (Some (if i < Array.length names then names.(i)
                 else "x" ^ string_of_int i)))
    a.coeffs;
  if not (B.is_zero a.const) || !first then term fmt a.const None
