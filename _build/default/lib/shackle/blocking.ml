module E = Loopir.Expr
module Ast = Loopir.Ast
module A = Polyhedra.Affine
module C = Polyhedra.Constr
module B = Bigint

type plane = { normal : int list; width : int; offset : int }

type t = { array : string; rank : int; planes : plane list }

let make ~array ~rank planes =
  List.iter
    (fun p ->
      if p.width <= 0 then invalid_arg "Blocking.make: width must be positive";
      if List.length p.normal <> rank then
        invalid_arg "Blocking.make: normal has wrong arity";
      if List.for_all (fun c -> c = 0) p.normal then
        invalid_arg "Blocking.make: zero normal")
    planes;
  { array; rank; planes }

let coords_dim b = List.length b.planes

let unit_normal rank i = List.init rank (fun j -> if i = j then 1 else 0)

let blocks_2d ~array ~size =
  make ~array ~rank:2
    [ { normal = unit_normal 2 0; width = size; offset = 1 };
      { normal = unit_normal 2 1; width = size; offset = 1 } ]

let blocks_2d_colmajor ~array ~size =
  make ~array ~rank:2
    [ { normal = unit_normal 2 1; width = size; offset = 1 };
      { normal = unit_normal 2 0; width = size; offset = 1 } ]

let by_columns ~array ~width =
  make ~array ~rank:2 [ { normal = unit_normal 2 1; width; offset = 1 } ]

let by_rows ~array ~width =
  make ~array ~rank:2 [ { normal = unit_normal 2 0; width; offset = 1 } ]

let storage_order ~array ~rank order =
  let dims =
    match order with
    | `Col_major -> List.rev (List.init rank Fun.id)  (* last subscript outermost *)
    | `Row_major -> List.init rank Fun.id
  in
  make ~array ~rank
    (List.map (fun i -> { normal = unit_normal rank i; width = 1; offset = 1 }) dims)

let dot_expr normal point =
  let terms =
    List.filter_map
      (fun (c, e) -> if c = 0 then None else Some (E.Mul (c, e)))
      (List.combine normal point)
  in
  match terms with
  | [] -> E.Const 0
  | hd :: tl -> List.fold_left (fun a t -> E.Add (a, t)) hd tl

let coord_exprs b point =
  if List.length point <> b.rank then
    invalid_arg "Blocking.coord_exprs: wrong point arity";
  List.map
    (fun p ->
      E.simplify
        (E.Add (E.FloorDiv (E.Sub (dot_expr p.normal point, E.Const p.offset), p.width),
                E.Const 1)))
    b.planes

let coord_of_point b point =
  let exprs = coord_exprs b (List.map E.int (Array.to_list point)) in
  Array.of_list (List.map (E.eval (fun _ -> assert false)) exprs)

let membership_guards b point ~coords =
  if List.length coords <> coords_dim b then
    invalid_arg "Blocking.membership_guards: wrong coords arity";
  List.concat
  @@ List.map2
    (fun p z ->
      let v = E.simplify (dot_expr p.normal point) in
      let hi_off = p.offset - 1 in
      let lo =
        E.simplify (E.Add (E.Const p.offset, E.Mul (p.width, E.Sub (z, E.Const 1))))
      in
      let hi = E.simplify (E.Add (E.Const hi_off, E.Mul (p.width, z))) in
      [ Ast.guard v Ast.Ge lo; Ast.guard v Ast.Le hi ])
    b.planes coords

let membership_constraints b ~point ~coord_vars =
  if List.length point <> b.rank then
    invalid_arg "Blocking.membership_constraints: wrong point arity";
  if List.length coord_vars <> coords_dim b then
    invalid_arg "Blocking.membership_constraints: wrong coords arity";
  let dim = A.dim (List.hd point) in
  List.concat
  @@ List.map2
    (fun p zi ->
      let z = A.var dim zi in
      let v =
        List.fold_left2
          (fun acc c e -> A.add acc (A.scale_int c e))
          (A.zero dim) p.normal point
      in
      (* o + (z-1)w <= v <= o + z*w - 1 *)
      let lo = A.add_const (A.scale_int p.width z) (B.of_int (p.offset - p.width)) in
      let hi = A.add_const (A.scale_int p.width z) (B.of_int (p.offset - 1)) in
      [ C.ge_of v lo; C.le_of v hi ])
    b.planes coord_vars

let range_constraints b ~extent_affs ~coord_vars =
  if List.length extent_affs <> b.rank then
    invalid_arg "Blocking.range_constraints: wrong extent arity";
  if List.length coord_vars <> coords_dim b then
    invalid_arg "Blocking.range_constraints: wrong coords arity";
  let dim = A.dim (List.hd extent_affs) in
  List.concat
  @@ List.map2
       (fun p zi ->
         let z = A.var dim zi in
         (* interval of n.a over the data space prod [1..e_i] *)
         let mini, maxi =
           List.fold_left2
             (fun (mn, mx) c e ->
               if c = 0 then (mn, mx)
               else if c > 0 then
                 (A.add_const mn (B.of_int c), A.add (A.scale_int c e) mx)
               else (A.add (A.scale_int c e) mn, A.add_const mx (B.of_int c)))
             (A.zero dim, A.zero dim) p.normal extent_affs
         in
         (* the block intersects the data range:
            o + w*z - 1 >= min  and  o + w*(z-1) <= max *)
         [ C.ge_of
             (A.add_const (A.scale_int p.width z) (B.of_int (p.offset - 1)))
             mini;
           C.le_of
             (A.add_const (A.scale_int p.width z)
                (B.of_int (p.offset - p.width)))
             maxi ])
       b.planes coord_vars

let coord_ranges b ~extents =
  if List.length extents <> b.rank then
    invalid_arg "Blocking.coord_ranges: wrong extent arity";
  List.map
    (fun p ->
      (* n.a over a in prod [1..e_i]: min/max per component sign *)
      let mini, maxi =
        List.fold_left2
          (fun (mn, mx) c e ->
            if c = 0 then (mn, mx)
            else if c > 0 then
              (E.Add (mn, E.Const c), E.Add (mx, E.Mul (c, e)))
            else (E.Add (mn, E.Mul (c, e)), E.Add (mx, E.Const c)))
          (E.Const 0, E.Const 0) p.normal extents
      in
      let z_of v =
        E.simplify
          (E.Add (E.FloorDiv (E.Sub (v, E.Const p.offset), p.width), E.Const 1))
      in
      (z_of mini, z_of maxi))
    b.planes

let pp fmt b =
  Format.fprintf fmt "@[<v>blocking of %s (rank %d):@,%a@]" b.array b.rank
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt p ->
         Format.fprintf fmt "  normal [%s], width %d, offset %d"
           (String.concat "; " (List.map string_of_int p.normal))
           p.width p.offset))
    b.planes
