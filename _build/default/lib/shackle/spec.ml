module Ast = Loopir.Ast
module Fexpr = Loopir.Fexpr
module E = Loopir.Expr
module Dom = Loopir.Domain

type factor = {
  blocking : Blocking.t;
  choices : (string * Fexpr.ref_) list;
}

type t = factor list

let factor blocking choices =
  List.iter
    (fun (label, (r : Fexpr.ref_)) ->
      if not (String.equal r.array blocking.Blocking.array) then
        invalid_arg
          (Printf.sprintf "Spec.factor: choice for %s references %s, not %s"
             label r.array blocking.Blocking.array);
      if List.length r.idx <> blocking.Blocking.rank then
        invalid_arg
          (Printf.sprintf "Spec.factor: choice for %s has arity %d, rank is %d"
             label (List.length r.idx) blocking.Blocking.rank))
    choices;
  { blocking; choices }

let product a b = a @ b
let coords_dim t =
  List.fold_left (fun acc f -> acc + Blocking.coords_dim f.blocking) 0 t

let choice_for f (s : Ast.stmt) = List.assoc s.label f.choices

let validate prog t =
  let stmts = Ast.statements prog in
  let check_factor i f =
    List.fold_left
      (fun acc (ctx, (s : Ast.stmt)) ->
        match acc with
        | Error _ -> acc
        | Ok () -> begin
          match choice_for f s with
          | exception Not_found ->
            Error
              (Printf.sprintf "factor %d has no choice for statement %s" i
                 s.label)
          | r ->
            let sp = Dom.space_of prog ctx in
            (match Dom.access sp r with
             | _ -> Ok ()
             | exception Dom.Not_affine e ->
               Error
                 (Printf.sprintf
                    "factor %d: choice for %s has non-affine subscript %s" i
                    s.label e))
        end)
      (Ok ()) stmts
  in
  List.fold_left
    (fun acc (i, f) -> match acc with Error _ -> acc | Ok () -> check_factor i f)
    (Ok ())
    (List.mapi (fun i f -> (i, f)) t)

let block_vector t (s : Ast.stmt) env =
  let coords =
    List.concat_map
      (fun f ->
        let r = choice_for f s in
        List.map (E.eval env) (Blocking.coord_exprs f.blocking r.idx))
      t
  in
  Array.of_list coords

let coord_names t = List.init (coords_dim t) (fun i -> "t" ^ string_of_int (i + 1))

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt f ->
         Format.fprintf fmt "%a@,  choices: %a" Blocking.pp f.blocking
           (Format.pp_print_list
              ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
              (fun fmt (l, r) ->
                Format.fprintf fmt "%s:%a" l Fexpr.pp_ref r))
           f.choices))
    t
