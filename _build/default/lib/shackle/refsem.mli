(** Reference semantics of a shackled program.

    The paper defines the transformed execution directly: traverse the
    block-coordinate space in lexicographic order and, at each block,
    execute the statement instances mapped there in original program order.
    This module materializes that order by enumerating instances — an
    executable specification used as the oracle against which generated
    code is tested. *)

type instance = {
  stmt : Loopir.Ast.stmt;
  env : Loopir.Walk.env;
  block : int array;
}

val order :
  Loopir.Ast.program ->
  Spec.t ->
  params:(string * int) list ->
  instance list
(** All instances, sorted by (block vector, original position); the sort is
    stable so within a block the original order is preserved. *)

val original_order :
  Loopir.Ast.program -> params:(string * int) list -> (Loopir.Ast.stmt * Loopir.Walk.env) list

val same_instances : instance list -> (Loopir.Ast.stmt * Loopir.Walk.env) list -> bool
(** The shackled order is a permutation of the original instances. *)
