(** Theorem 2: an unshackled reference in statement [S] touches a bounded
    amount of data per block iff every row of its access matrix is in the
    rational row span of the shackled references' access matrices.  This
    guides how far to carry Cartesian products (Section 6.2: "if no
    statement has an unconstrained reference, there is no benefit in
    extending the product"). *)

val constrains :
  Loopir.Ast.program ->
  Loopir.Ast.context ->
  shackled:Loopir.Fexpr.ref_ list ->
  target:Loopir.Fexpr.ref_ ->
  bool

val unconstrained_refs :
  Loopir.Ast.program ->
  Spec.t ->
  (Loopir.Ast.stmt * Loopir.Fexpr.ref_) list
(** References (across all statements, LHS and reads) whose data is not
    bounded by the product's choices. *)

val fully_constrained : Loopir.Ast.program -> Spec.t -> bool
