(** Blockings of data arrays by sets of parallel cutting planes
    (Section 4.1 of the paper).

    A blocking of an array of rank [r] is an ordered list of cutting-plane
    sets.  Each set has an integer normal vector [n] (length [r]), a width
    [w > 0] and an offset [o]; the block coordinate of a data point [a]
    along this set is the unique [z] with

      [o + (z-1)*w  <=  n . a  <=  o + z*w - 1]

    i.e. [z = floor((n.a - o) / w) + 1].  Block coordinates are ordered
    lexicographically in the order the plane sets are listed; this is the
    order in which the processor touches the blocks. *)

type plane = { normal : int list; width : int; offset : int }

type t = { array : string; rank : int; planes : plane list }

val make : array:string -> rank:int -> plane list -> t
(** @raise Invalid_argument on zero/negative width, wrong normal length or
    zero normal. *)

val coords_dim : t -> int

val blocks_2d : array:string -> size:int -> t
(** The Figure 4 blocking: square [size x size] blocks of a rank-2 array,
    cutting planes matrix [[1 0],[0 1]], i.e. row-block-major (top to
    bottom, left to right). *)

val blocks_2d_colmajor : array:string -> size:int -> t
(** Same blocks visited column-of-blocks first. *)

val by_columns : array:string -> width:int -> t
(** Vertical panels of [width] columns of a rank-2 array (used for QR). *)

val by_rows : array:string -> width:int -> t

val storage_order : array:string -> rank:int -> [ `Col_major | `Row_major ] -> t
(** 1x1 blocks visited in storage order (unit-separation cutting planes,
    Section 4.2); with [`Col_major] the last subscript varies slowest...
    i.e. blocks are visited column by column, as Fortran stores them. *)

val coord_exprs : t -> Loopir.Expr.t list -> Loopir.Expr.t list
(** Block coordinates of the data point given by subscript expressions:
    [floor((n.a - o)/w) + 1] per plane set. *)

val coord_of_point : t -> int array -> int array
(** Runtime block coordinate of a concrete data point. *)

val membership_guards :
  t -> Loopir.Expr.t list -> coords:Loopir.Expr.t list -> Loopir.Ast.guard list
(** Guards pinning the data point into the block with the given coordinate
    expressions — the conditionals of the paper's Figure 5. *)

val membership_constraints :
  t ->
  point:Polyhedra.Affine.t list ->
  coord_vars:int list ->
  Polyhedra.Constr.t list
(** Same, as polyhedral constraints: the subscript forms [point] and the
    block-coordinate variables live in a common space. *)

val range_constraints :
  t ->
  extent_affs:Polyhedra.Affine.t list ->
  coord_vars:int list ->
  Polyhedra.Constr.t list
(** Affine form of "the block with these coordinates intersects the data
    space [1..extent] in every dimension" — the constraints the naive
    coordinate loops enforce.  Redundant given membership + domain, but
    making them explicit lets Fourier-Motzkin produce the tight coordinate
    bounds of the paper's figures. *)

val coord_ranges :
  t -> extents:Loopir.Expr.t list -> (Loopir.Expr.t * Loopir.Expr.t) list
(** Inclusive [lo, hi] bounds of each block coordinate, from the array
    extents (subscripts range over [1..extent]). *)

val pp : Format.formatter -> t -> unit
