lib/shackle/blocking.mli: Format Loopir Polyhedra
