lib/shackle/blocking.ml: Array Bigint Format Fun List Loopir Polyhedra String
