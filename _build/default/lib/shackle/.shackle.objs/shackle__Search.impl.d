lib/shackle/search.ml: Blocking Dependence Float Legality List Loopir Span Spec String
