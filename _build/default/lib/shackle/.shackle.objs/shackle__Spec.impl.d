lib/shackle/spec.ml: Array Blocking Format List Loopir Printf String
