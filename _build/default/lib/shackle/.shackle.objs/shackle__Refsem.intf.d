lib/shackle/refsem.mli: Loopir Spec
