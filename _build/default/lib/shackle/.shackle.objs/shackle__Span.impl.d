lib/shackle/span.ml: Array Linalg List Loopir Spec
