lib/shackle/refsem.ml: Array List Loopir Spec
