lib/shackle/search.mli: Dependence Loopir Spec
