lib/shackle/legality.mli: Dependence Format Loopir Spec
