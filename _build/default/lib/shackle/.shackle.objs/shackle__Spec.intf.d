lib/shackle/spec.mli: Blocking Format Loopir
