lib/shackle/legality.ml: Array Blocking Dependence Format List Loopir Polyhedra Spec String
