lib/shackle/span.mli: Loopir Spec
