module Ast = Loopir.Ast
module Walk = Loopir.Walk

type instance = {
  stmt : Ast.stmt;
  env : Walk.env;
  block : int array;
}

let compare_blocks a b =
  let rec go i =
    if i >= Array.length a then 0
    else if a.(i) <> b.(i) then compare a.(i) b.(i)
    else go (i + 1)
  in
  go 0

let order prog spec ~params =
  let acc = ref [] in
  Walk.iter_instances prog ~params ~f:(fun stmt env ->
      let block = Spec.block_vector spec stmt (Walk.lookup env) in
      acc := { stmt; env; block } :: !acc);
  let in_program_order = List.rev !acc in
  (* stable sort keeps original order within equal blocks *)
  List.stable_sort (fun a b -> compare_blocks a.block b.block) in_program_order

let original_order prog ~params = Walk.instances prog ~params

let same_instances shackled original =
  let key (s : Ast.stmt) env =
    (s.id, List.sort compare env)
  in
  let a = List.map (fun i -> key i.stmt i.env) shackled in
  let b = List.map (fun (s, env) -> key s env) original in
  List.sort compare a = List.sort compare b
