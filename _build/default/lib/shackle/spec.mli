(** Data shackles and their Cartesian products (Sections 4.1, 5.3, 6).

    A shackle pairs a blocking of one array with, for every statement of the
    program, a single data-centric reference to that array (the paper's
    choice of "reference R from statement S").  A statement that has no
    reference to the blocked array gets a {e dummy reference} — made-up
    subscript expressions in the enclosing loop variables, exactly the
    [+ 0*B[I,J]] device of Section 5.3.

    A product shackle is an ordered list of factors; block coordinate
    vectors are concatenated and compared lexicographically, which makes an
    n-ary product (and products of products, Section 6.3 multi-level
    blocking) the same thing as a longer list. *)

type factor = {
  blocking : Blocking.t;
  choices : (string * Loopir.Fexpr.ref_) list;
      (** statement label -> data-centric reference (array must match the
          blocking; dummies allowed and marked only by not occurring in the
          statement). *)
}

type t = factor list

val factor :
  Blocking.t -> (string * Loopir.Fexpr.ref_) list -> factor
(** @raise Invalid_argument if a choice references a different array or has
    the wrong arity. *)

val product : t -> t -> t
val coords_dim : t -> int

val choice_for : factor -> Loopir.Ast.stmt -> Loopir.Fexpr.ref_
(** @raise Not_found when the statement has no choice in this factor. *)

val validate : Loopir.Ast.program -> t -> (unit, string) result
(** Checks that every statement of the program has a choice in every factor
    and that subscripts are affine in the statement's enclosing loops. *)

val block_vector :
  t -> Loopir.Ast.stmt -> (string -> int) -> int array
(** The paper's map M: block coordinates of a statement instance under the
    product, given an environment for its loop variables.  Concatenation of
    the factors' coordinates. *)

val coord_names : t -> string list
(** Fresh names for the block-coordinate loop variables, [t1; t2; ...] in
    factor order (the paper's naming). *)

val pp : Format.formatter -> t -> unit
