module Ast = Loopir.Ast
module Fexpr = Loopir.Fexpr
module Dom = Loopir.Domain
module Mat = Linalg.Mat

let stacked_matrix prog ctx refs =
  let mats = List.map (Dom.access_matrix prog ctx) refs in
  Array.concat (List.map Array.to_list mats |> List.map Array.of_list)

let constrains prog ctx ~shackled ~target =
  let m = stacked_matrix prog ctx shackled in
  let f = Dom.access_matrix prog ctx target in
  Mat.rows_span m f

let unconstrained_refs prog (spec : Spec.t) =
  let stmts = Ast.statements prog in
  List.concat_map
    (fun (ctx, (s : Ast.stmt)) ->
      let shackled =
        List.filter_map
          (fun f ->
            match Spec.choice_for f s with
            | r -> Some r
            | exception Not_found -> None)
          spec
      in
      let targets = s.lhs :: Fexpr.reads s.rhs in
      List.filter_map
        (fun r ->
          if constrains prog ctx ~shackled ~target:r then None else Some (s, r))
        targets)
    stmts

let fully_constrained prog spec = unconstrained_refs prog spec = []
