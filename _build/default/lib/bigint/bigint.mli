(** Arbitrary-precision signed integers.

    This is the arithmetic substrate for the polyhedral layer: exact
    Fourier-Motzkin elimination and the Omega test produce coefficients that
    overflow native integers, and no bignum package is available offline.

    Values are immutable.  The representation is sign-magnitude with
    little-endian base-[2^15] digits; all operations are schoolbook, which is
    more than fast enough for polyhedral coefficients (typically well under
    256 bits). *)

type t

val zero : t
val one : t
val minus_one : t
val two : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val of_string : string -> t
(** Accepts an optional leading [-] followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val succ : t -> t
val pred : t -> t

val div_rem : t -> t -> t * t
(** Truncated division: quotient rounds toward zero, and
    [a = q*b + r] with [|r| < |b|] and [sign r = sign a] (or [0]).
    @raise Division_by_zero *)

val fdiv : t -> t -> t
(** Floor division: rounds toward negative infinity. *)

val frem : t -> t -> t
(** [frem a b = a - b * fdiv a b]; has the sign of [b] (or zero). *)

val cdiv : t -> t -> t
(** Ceiling division: rounds toward positive infinity. *)

val divexact : t -> t -> t
(** Division known to be exact. @raise Failure if it is not. *)

val gcd : t -> t -> t
(** Non-negative; [gcd 0 0 = 0]. *)

val lcm : t -> t -> t

val min : t -> t -> t
val max : t -> t -> t

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative exponent. *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
