(* Sign-magnitude bignums over little-endian base-2^15 digit arrays.
   The magnitude never has leading (most-significant) zero digits and
   [sign = 0] exactly when the magnitude is empty, so structural equality
   of the record coincides with numeric equality. *)

let base = 32768
let base_bits = 15

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

(* Magnitude (unsigned) primitives. *)

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land (base - 1);
    carry := s lsr base_bits
  done;
  r

(* Requires [a >= b] as magnitudes. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land (base - 1);
        carry := s lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    r
  end

(* Shift left by [s] bits, [0 <= s < base_bits]. *)
let shl_mag a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (a.(i) lsl s) lor !carry in
      r.(i) <- v land (base - 1);
      carry := v lsr base_bits
    done;
    r.(la) <- !carry;
    r
  end

let shr_mag a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    let carry = ref 0 in
    for i = la - 1 downto 0 do
      r.(i) <- (a.(i) lsr s) lor (!carry lsl (base_bits - s));
      carry := a.(i) land ((1 lsl s) - 1)
    done;
    r
  end

(* Knuth algorithm D.  Returns (quotient, remainder) of magnitudes. *)
let divmod_mag u v =
  let lv = Array.length v in
  if lv = 0 then raise Division_by_zero;
  if cmp_mag u v < 0 then ([||], Array.copy u)
  else if lv = 1 then begin
    let d = v.(0) in
    let lu = Array.length u in
    let q = Array.make lu 0 in
    let r = ref 0 in
    for i = lu - 1 downto 0 do
      let cur = (!r lsl base_bits) lor u.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (q, if !r = 0 then [||] else [| !r |])
  end
  else begin
    (* Normalize so the top digit of v is >= base/2. *)
    let s = ref 0 in
    while v.(lv - 1) lsl !s < base / 2 do
      incr s
    done;
    let vn = shr_mag (shl_mag v !s) 0 in
    let vn =
      (* shl_mag appends a digit that is zero here (top digit stays < base) *)
      if vn.(Array.length vn - 1) = 0 then Array.sub vn 0 (Array.length vn - 1)
      else vn
    in
    (* Knuth's D1 gives un one more digit than u; shl_mag only appends it
       when the shift is nonzero. *)
    let un =
      if !s = 0 then Array.append (Array.copy u) [| 0 |] else shl_mag u !s
    in
    let m = Array.length un - 1 and n = Array.length vn in
    (* un has m+1 digits; quotient has m+1-n digits. *)
    let q = Array.make (m + 1 - n) 0 in
    for j = m - n downto 0 do
      let top = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
      let qhat = ref (top / vn.(n - 1)) and rhat = ref (top mod vn.(n - 1)) in
      let continue = ref true in
      while
        !continue
        && (!qhat >= base
           || !qhat * vn.(n - 2) > (!rhat lsl base_bits) lor un.(j + n - 2))
      do
        decr qhat;
        rhat := !rhat + vn.(n - 1);
        if !rhat >= base then continue := false
      done;
      (* Multiply and subtract. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * vn.(i)) + !carry in
        carry := p lsr base_bits;
        let d = un.(i + j) - (p land (base - 1)) - !borrow in
        if d < 0 then begin
          un.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          un.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = un.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add v back. *)
        un.(j + n) <- d + base;
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = un.(i + j) + vn.(i) + !carry in
          un.(i + j) <- s land (base - 1);
          carry := s lsr base_bits
        done;
        un.(j + n) <- (un.(j + n) + !carry) land (base - 1)
      end
      else un.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = shr_mag (Array.sub un 0 n) !s in
    (q, r)
  end

(* Signed layer. *)

let mk sign mag = normalize sign mag

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* Work with a negative accumulator so [min_int] is handled. *)
    let m = if n > 0 then -n else n in
    let rec digits m acc =
      if m = 0 then List.rev acc
      else digits (m / base) (-(m mod base) :: acc)
    in
    mk sign (Array.of_list (digits m []))
  end

let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2
let sign x = x.sign
let is_zero x = x.sign = 0
let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0

let hash x =
  Array.fold_left (fun h d -> (h * 65599) + d) (x.sign + 1) x.mag
  land max_int

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then mk a.sign (add_mag a.mag b.mag)
  else begin
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk a.sign (sub_mag a.mag b.mag)
    else mk b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else mk (a.sign * b.sign) (mul_mag a.mag b.mag)

let mul_int a n = mul a (of_int n)
let succ a = add a one
let pred a = sub a one

let div_rem a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = divmod_mag a.mag b.mag in
  (mk (a.sign * b.sign) q, mk a.sign r)

let fdiv a b =
  let q, r = div_rem a b in
  if r.sign <> 0 && r.sign <> b.sign then sub q one else q

let frem a b =
  let r = sub a (mul b (fdiv a b)) in
  r

let cdiv a b =
  let q, r = div_rem a b in
  if r.sign <> 0 && r.sign = b.sign then add q one else q

let divexact a b =
  let q, r = div_rem a b in
  if r.sign <> 0 then failwith "Bigint.divexact: inexact division";
  q

let rec gcd_aux a b = if b.sign = 0 then a else gcd_aux b (snd (div_rem a b))
let gcd a b = gcd_aux (abs a) (abs b)

let lcm a b =
  if a.sign = 0 || b.sign = 0 then zero
  else abs (mul (divexact a (gcd a b)) b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc x n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc x) (mul x x) (n lsr 1)
    else go acc (mul x x) (n lsr 1)
  in
  go one x n

let to_int_opt x =
  (* Accumulate negatively to cover min_int. *)
  let rec go i acc =
    if i < 0 then Some acc
    else begin
      let digit = x.mag.(i) in
      (* Truncating division of the negative numerator acts as ceiling, so
         this is the exact smallest safe accumulator for this digit. *)
      if acc < (Stdlib.min_int + digit) / base then None
      else go (i - 1) ((acc * base) - digit)
    end
  in
  match go (Array.length x.mag - 1) 0 with
  | None -> None
  | Some neg_v ->
    if x.sign >= 0 then if neg_v = Stdlib.min_int then None else Some (-neg_v)
    else Some neg_v

let to_int_exn x =
  match to_int_opt x with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: does not fit in native int"

let billion = of_int 1_000_000_000

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks v acc =
      if v.sign = 0 then acc
      else begin
        let q, r = div_rem v billion in
        chunks q (to_int_exn r :: acc)
      end
    in
    (match chunks (abs x) [] with
     | [] -> assert false
     | first :: rest ->
       if x.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if negative then neg !acc else !acc

let pp fmt x = Format.pp_print_string fmt (to_string x)
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
