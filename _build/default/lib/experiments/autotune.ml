(* Simulation-backed ranking for the Section 8 shackle search: generate
   code for each legal candidate and order them by simulated cycles. *)

module Model = Machine.Model
module Search = Shackle.Search

let cost_of prog ~n ~kernel spec =
  let generated = Codegen.Tighten.generate prog spec in
  let r =
    Model.simulate ~machine:Model.sp2_like ~quality:Model.untuned generated
      ~params:[ ("N", n) ]
      ~init:(Kernels.Inits.for_kernel kernel ~n)
  in
  r.Model.r_cycles

let rank_by_simulation prog ~candidates ~n ~kernel =
  Search.rank ~candidates ~cost:(cost_of prog ~n ~kernel)

let autotune ?arrays prog ~size ~n ~kernel =
  let candidates = Search.search ?arrays prog ~size in
  match rank_by_simulation prog ~candidates ~n ~kernel with
  | [] -> None
  | (best, cycles) :: _ -> Some (best, cycles)
