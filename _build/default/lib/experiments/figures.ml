(* One runner per table/figure of the paper's evaluation (plus the
   code-shape figures from the body of the paper and two ablations).
   Each runner returns a [figure] whose rows are printed by bench/main.ml
   and recorded in EXPERIMENTS.md. *)

module Ast = Loopir.Ast
module K = Kernels.Builders
module Model = Machine.Model
module Tighten = Codegen.Tighten
module Legality = Shackle.Legality

type row = { r_label : string; r_cols : (string * float) list }

type figure = {
  f_id : string;
  f_title : string;
  f_header : string list;
  f_rows : row list;
  f_note : string;
}

let mflops r = r.Model.r_mflops
let l1_misses r = (List.hd r.Model.r_levels).Model.s_misses

let simulate ?layouts ?(machine = Model.sp2_like) ~quality prog ~n ?(params = []) ~kernel () =
  let params = ("N", n) :: params in
  Model.simulate ?layouts ~machine ~quality prog ~params
    ~init:(Kernels.Inits.for_kernel kernel ~n)

(* ------------------------------------------------------------------ *)
(* Code-shape figures                                                  *)
(* ------------------------------------------------------------------ *)

let fig3_code () =
  Ast.program_to_string
    (Tighten.generate (K.matmul ()) (Specs.matmul_ca ~size:25))

let fig5_code () =
  Ast.program_to_string
    (Codegen.Naive.generate (K.matmul ()) (Specs.matmul_c ~size:25))

let fig6_code () =
  Ast.program_to_string
    (Tighten.generate (K.matmul ()) (Specs.matmul_c ~size:25))

let fig7_code () =
  Ast.program_to_string
    (Tighten.generate (K.cholesky_right ()) (Specs.cholesky_write ~size:64))

let fig10_code () =
  Ast.program_to_string
    (Tighten.generate (K.matmul ()) (Specs.matmul_two_level ~outer:64 ~inner:8))

let fig14_code () =
  ( Ast.program_to_string (K.adi ()),
    Ast.program_to_string (Tighten.generate (K.adi ()) (Specs.adi_fused ())) )

(* ------------------------------------------------------------------ *)
(* Performance figures                                                 *)
(* ------------------------------------------------------------------ *)

(* Figure 11: Cholesky factorization.  Series: the input right-looking
   code; the compiler-generated fully blocked code (untuned inner loops,
   as produced by xlf in the paper); the same code with the inner loops at
   hand-tuned quality ("matmul replaced by DGEMM"); and the LAPACK-style
   hand-blocked left-looking algorithm (here: the other product order) at
   tuned quality. *)
let fig11_cholesky ?(sizes = [ 60; 120; 180; 240 ]) ?(block = 32) () =
  let p = K.cholesky_right () in
  let blocked = Tighten.generate p (Specs.cholesky_fully_blocked ~size:block) in
  let left = Tighten.generate p (Specs.cholesky_left_looking_blocked ~size:block) in
  let rows =
    List.map
      (fun n ->
        let sim prog quality =
          simulate ~quality prog ~n ~kernel:"cholesky_right" ()
        in
        { r_label = string_of_int n;
          r_cols =
            [ ("input", mflops (sim p Model.untuned));
              ("compiler", mflops (sim blocked Model.untuned));
              ("compiler+DGEMM", mflops (sim blocked Model.tuned));
              ("LAPACK-style", mflops (sim left Model.tuned)) ] })
      sizes
  in
  { f_id = "fig11";
    f_title = "Figure 11: Cholesky factorization (MFlops proxy vs N)";
    f_header = [ "input"; "compiler"; "compiler+DGEMM"; "LAPACK-style" ];
    f_rows = rows;
    f_note =
      "Expected shape: input flat and lowest; compiler-generated much \
       better; DGEMM-quality inner loops better still; LAPACK-style \
       comparable to compiler+DGEMM." }

(* Figure 12: QR factorization, blocked by columns only. *)
let fig12_qr ?(sizes = [ 40; 80; 120; 160 ]) ?(width = 16) () =
  let p = K.qr () in
  let blocked = Tighten.generate p (Specs.qr_columns ~width) in
  let rows =
    List.map
      (fun n ->
        let sim prog quality = simulate ~quality prog ~n ~kernel:"qr" () in
        { r_label = string_of_int n;
          r_cols =
            [ ("input", mflops (sim p Model.untuned));
              ("compiler", mflops (sim blocked Model.untuned));
              ("compiler+DGEMM", mflops (sim blocked Model.tuned)) ] })
      sizes
  in
  { f_id = "fig12";
    f_title = "Figure 12: QR factorization (MFlops proxy vs N)";
    f_header = [ "input"; "compiler"; "compiler+DGEMM" ];
    f_rows = rows;
    f_note =
      "Expected shape: blocking helps somewhat, DGEMM-quality inner loops \
       help substantially.  The paper's LAPACK line uses the \
       domain-specific WY representation, which a compiler cannot derive \
       (Section 8); it is not reproduced." }

(* Figure 13(i): the Gmtry kernel (Gaussian elimination). *)
let fig13_gmtry ?(n = 192) ?(block = 32) () =
  let p = K.gmtry () in
  let blocked = Tighten.generate p (Specs.gmtry_write ~size:block) in
  let sim prog quality = simulate ~quality prog ~n ~kernel:"gmtry" () in
  let input = sim p Model.untuned in
  let shackled = sim blocked Model.untuned in
  { f_id = "fig13i";
    f_title =
      Printf.sprintf "Figure 13(i): Gmtry Gaussian elimination (N = %d)" n;
    f_header = [ "cycles"; "mflops"; "l1 misses" ];
    f_rows =
      [ { r_label = "input";
          r_cols =
            [ ("cycles", input.Model.r_cycles); ("mflops", mflops input);
              ("l1 misses", float_of_int (l1_misses input)) ] };
        { r_label = "shackled";
          r_cols =
            [ ("cycles", shackled.Model.r_cycles);
              ("mflops", mflops shackled);
              ("l1 misses", float_of_int (l1_misses shackled)) ] };
        { r_label = "speedup";
          r_cols =
            [ ("cycles", input.Model.r_cycles /. shackled.Model.r_cycles) ] } ];
    f_note = "Paper: Gaussian elimination sped up ~3x by 2-D shackling." }

(* Figure 13(ii): ADI. *)
let fig13_adi ?(n = 1000) () =
  let p = K.adi () in
  let fused = Tighten.generate p (Specs.adi_fused ()) in
  let sim prog quality = simulate ~quality prog ~n ~kernel:"adi" () in
  let input = sim p Model.untuned in
  let shackled = sim fused Model.untuned in
  { f_id = "fig13ii";
    f_title = Printf.sprintf "Figure 13(ii): ADI kernel (N = %d)" n;
    f_header = [ "cycles"; "mflops"; "l1 misses" ];
    f_rows =
      [ { r_label = "input";
          r_cols =
            [ ("cycles", input.Model.r_cycles); ("mflops", mflops input);
              ("l1 misses", float_of_int (l1_misses input)) ] };
        { r_label = "shackled";
          r_cols =
            [ ("cycles", shackled.Model.r_cycles);
              ("mflops", mflops shackled);
              ("l1 misses", float_of_int (l1_misses shackled)) ] };
        { r_label = "speedup";
          r_cols =
            [ ("cycles", input.Model.r_cycles /. shackled.Model.r_cycles) ] } ];
    f_note =
      "Paper: transformed ADI runs 8.9x faster at n = 1000 (fusion + \
       interchange via a 1x1 storage-order shackle)." }

(* Figure 15: banded Cholesky over band storage.  LAPACK-style band code
   carries a fixed per-panel blocking cost (dgbtrf-style), so the compiler
   code wins at small bandwidths and LAPACK wins at large ones. *)
let fig15_band ?(n = 400) ?(bands = [ 8; 16; 32; 64; 128 ]) ?(block = 32) () =
  let p = K.cholesky_banded () in
  let blocked = Tighten.generate p (Specs.cholesky_banded_write ~size:block) in
  let lapack_panel_cycles = 25_000.0 in
  let rows =
    List.map
      (fun bw ->
        let layouts = [ ("A", Exec.Store.Banded bw) ] in
        let dense = Kernels.Inits.for_kernel "cholesky_banded" ~n in
        let init name idx =
          if abs (idx.(0) - idx.(1)) > bw then 0.0 else dense name idx
        in
        let sim prog quality =
          Model.simulate ~layouts ~machine:Model.sp2_like ~quality prog
            ~params:[ ("N", n); ("BW", bw) ]
            ~init
        in
        let compiler = sim blocked Model.untuned in
        let lapack = sim blocked Model.tuned in
        let panels = float_of_int ((n + block - 1) / block) in
        let lapack_cycles =
          lapack.Model.r_cycles +. (panels *. lapack_panel_cycles)
        in
        let mf cycles flops =
          if cycles = 0.0 then 0.0
          else
            float_of_int flops /. 1e6
            /. (cycles /. (Model.sp2_like.Model.clock_mhz *. 1e6))
        in
        { r_label = string_of_int bw;
          r_cols =
            [ ("compiler", mflops compiler);
              ("LAPACK-style", mf lapack_cycles lapack.Model.r_flops) ] })
      bands
  in
  { f_id = "fig15";
    f_title =
      Printf.sprintf
        "Figure 15: banded Cholesky on band storage, N = %d (MFlops proxy vs bandwidth)"
        n;
    f_header = [ "compiler"; "LAPACK-style" ];
    f_rows = rows;
    f_note =
      "Expected shape: compiler-generated code wins at small bandwidths; \
       the LAPACK-style code amortizes its per-panel blocking cost and \
       wins at large bandwidths (crossover in between)." }

(* Section 6.1: the six ways to shackle right-looking Cholesky. *)
let tab_legality () =
  let p = K.cholesky_right () in
  let blk size = Shackle.Blocking.blocks_2d ~array:"A" ~size in
  let rows =
    List.map
      (fun choices ->
        let spec = [ Shackle.Spec.factor (blk 16) choices ] in
        let legal = Legality.is_legal p spec in
        let label =
          String.concat ", "
            (List.map
               (fun (l, r) ->
                 Printf.sprintf "%s:%s" l
                   (Format.asprintf "%a" Loopir.Fexpr.pp_ref r))
               choices)
        in
        { r_label = label; r_cols = [ ("legal", if legal then 1.0 else 0.0) ] })
      (Legality.enumerate_choices p ~array:"A")
  in
  { f_id = "tab-legality";
    f_title = "Section 6.1: legality of the six Cholesky shackles";
    f_header = [ "legal" ];
    f_rows = rows;
    f_note =
      "The paper claims exactly two legal choices; the exact Omega-based \
       test finds three (see EXPERIMENTS.md for the analysis)." }

(* Ablation: block size sweep for the fully blocked Cholesky. *)
let abl_blocksize ?(n = 192) ?(blocks = [ 8; 16; 32; 64; 96 ]) () =
  let p = K.cholesky_right () in
  let rows =
    List.map
      (fun b ->
        let blocked =
          Tighten.generate p (Specs.cholesky_fully_blocked ~size:b)
        in
        let r =
          simulate ~quality:Model.untuned blocked ~n ~kernel:"cholesky_right" ()
        in
        { r_label = string_of_int b;
          r_cols =
            [ ("mflops", mflops r);
              ("l1 misses", float_of_int (l1_misses r)) ] })
      blocks
  in
  { f_id = "abl-blocksize";
    f_title =
      Printf.sprintf "Ablation: block size sweep, Cholesky N = %d" n;
    f_header = [ "mflops"; "l1 misses" ];
    f_rows = rows;
    f_note =
      "Misses are minimized when three blocks fit in cache; too small \
       wastes bandwidth on block boundaries, too large thrashes." }

(* Ablation: shackling vs control-centric tiling on Cholesky (Section 3). *)
let abl_tiling ?(n = 144) ?(block = 24) () =
  let p = K.cholesky_right () in
  let shackled = Tighten.generate p (Specs.cholesky_fully_blocked ~size:block) in
  let update_tiled = Tiling.cholesky_update_tiled ~size:block in
  let sim prog = simulate ~quality:Model.untuned prog ~n ~kernel:"cholesky_right" () in
  let rows =
    List.map
      (fun (label, r) ->
        { r_label = label;
          r_cols =
            [ ("mflops", mflops r);
              ("l1 misses", float_of_int (l1_misses r)) ] })
      [ ("input", sim p); ("update loops tiled", sim update_tiled);
        ("data shackled", sim shackled) ]
  in
  { f_id = "abl-tiling";
    f_title =
      Printf.sprintf
        "Ablation: control-centric tiling vs data shackling, Cholesky N = %d"
        n;
    f_header = [ "mflops"; "l1 misses" ];
    f_rows = rows;
    f_note =
      "Naive code sinking lets tiling block only the update loops \
       (Section 3); the data-centric product blocks the whole \
       factorization." }

(* Ablation: one-level vs two-level blocking on the deeper machine
   (Section 6.3). *)
let abl_multilevel ?(n = 250) () =
  let p = K.matmul () in
  let one = Tighten.generate p (Specs.matmul_ca ~size:96) in
  let two = Tighten.generate p (Specs.matmul_two_level ~outer:96 ~inner:16) in
  let sim prog =
    simulate ~machine:Model.two_level ~quality:Model.untuned prog ~n
      ~kernel:"matmul" ()
  in
  let rows =
    List.map
      (fun (label, r) ->
        let l1 = List.nth r.Model.r_levels 0 and l2 = List.nth r.Model.r_levels 1 in
        { r_label = label;
          r_cols =
            [ ("mflops", mflops r);
              ("L1 misses", float_of_int l1.Model.s_misses);
              ("L2 misses", float_of_int l2.Model.s_misses) ] })
      [ ("unblocked", sim p); ("one-level 96", sim one);
        ("two-level 96/16", sim two) ]
  in
  { f_id = "abl-multilevel";
    f_title =
      Printf.sprintf
        "Section 6.3: multi-level blocking on a two-level hierarchy, matmul N = %d"
        n;
    f_header = [ "mflops"; "L1 misses"; "L2 misses" ];
    f_rows = rows;
    f_note =
      "The outer factor blocks for L2, the inner factor for L1; two-level \
       blocking should beat both the unblocked code and L2-only blocking." }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_figure fmt f =
  Format.fprintf fmt "@.== %s ==@." f.f_title;
  let w = 22 in
  Format.fprintf fmt "%-28s" "";
  List.iter (fun h -> Format.fprintf fmt "%*s" w h) f.f_header;
  Format.fprintf fmt "@.";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-28s" r.r_label;
      List.iter
        (fun h ->
          match List.assoc_opt h r.r_cols with
          | Some v ->
            if Float.is_integer v && Float.abs v < 1e7 then
              Format.fprintf fmt "%*.0f" w v
            else Format.fprintf fmt "%*.2f" w v
          | None -> Format.fprintf fmt "%*s" w "-")
        f.f_header;
      Format.fprintf fmt "@.")
    f.f_rows;
  Format.fprintf fmt "note: %s@." f.f_note
