lib/experiments/figures.ml: Array Codegen Exec Float Format Kernels List Loopir Machine Printf Shackle Specs String Tiling
