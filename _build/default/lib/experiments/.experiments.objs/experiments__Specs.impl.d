lib/experiments/specs.ml: List Loopir Shackle
