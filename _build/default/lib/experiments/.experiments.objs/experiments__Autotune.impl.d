lib/experiments/autotune.ml: Codegen Kernels Machine Shackle
