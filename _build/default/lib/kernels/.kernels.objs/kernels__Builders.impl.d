lib/kernels/builders.ml: List Loopir
