lib/kernels/builders.mli: Loopir
