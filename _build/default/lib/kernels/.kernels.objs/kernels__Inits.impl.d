lib/kernels/inits.ml: Array Hashtbl
