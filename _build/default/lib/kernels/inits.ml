(* Deterministic initial data for each kernel, chosen so the computations
   are numerically well behaved: Cholesky and Gaussian elimination get
   diagonally dominant (hence SPD / nonsingular) matrices, ADI gets
   denominators bounded away from zero. *)

(* A cheap deterministic hash onto [0, 1). *)
let unit_hash name idx =
  let h = ref (Hashtbl.hash name land 0xFFFF) in
  Array.iter (fun i -> h := ((!h * 1000003) + i) land 0xFFFFFF) idx;
  float_of_int (!h land 0xFFFF) /. 65536.0

let generic name idx = 0.5 +. unit_hash name idx

let spd ~n name idx =
  if Array.length idx = 2 then begin
    let i = idx.(0) and j = idx.(1) in
    let v = 1.0 /. (1.0 +. float_of_int (abs (i - j))) in
    if i = j then v +. (2.0 *. float_of_int n) else v
  end
  else generic name idx

let for_kernel kernel ~n =
  match kernel with
  | "cholesky_right" | "cholesky_left" | "cholesky_banded" | "gmtry" ->
    spd ~n
  | "matmul" | "syrk" | "adi" | "qr" | _ -> generic
