module Ast = Loopir.Ast
module Expr = Loopir.Expr
module Fexpr = Loopir.Fexpr

let v = Expr.var
let c = Expr.int
let ( +! ) = Expr.( + )
let ( -! ) = Expr.( - )
let n_ = v "N"
let one = c 1

let rd = Fexpr.read
let ( +. ) = Fexpr.( + )
let ( -. ) = Fexpr.( - )
let ( *. ) = Fexpr.( * )
let ( /. ) = Fexpr.( / )

type order = I_J_K | I_K_J | J_I_K | J_K_I | K_I_J | K_J_I

let order_vars = function
  | I_J_K -> [ "I"; "J"; "K" ]
  | I_K_J -> [ "I"; "K"; "J" ]
  | J_I_K -> [ "J"; "I"; "K" ]
  | J_K_I -> [ "J"; "K"; "I" ]
  | K_I_J -> [ "K"; "I"; "J" ]
  | K_J_I -> [ "K"; "J"; "I" ]

let square name = { Ast.a_name = name; extents = [ n_; n_ ] }
let vector name = { Ast.a_name = name; extents = [ n_ ] }

let matmul ?(order = I_J_K) () =
  let update =
    Ast.stmt ~id:0 ~label:"S1"
      (Fexpr.ref_ "C" [ v "I"; v "J" ])
      (rd "C" [ v "I"; v "J" ] +. (rd "A" [ v "I"; v "K" ] *. rd "B" [ v "K"; v "J" ]))
  in
  let body =
    List.fold_right
      (fun var inner -> [ Ast.loop var one n_ inner ])
      (order_vars order) [ update ]
  in
  { Ast.p_name = "matmul";
    params = [ "N" ];
    arrays = [ square "C"; square "A"; square "B" ];
    body }

let cholesky_right () =
  let a idx = rd "A" idx in
  let s1 =
    Ast.stmt ~id:0 ~label:"S1"
      (Fexpr.ref_ "A" [ v "J"; v "J" ])
      (Fexpr.sqrt_ (a [ v "J"; v "J" ]))
  in
  let s2 =
    Ast.stmt ~id:1 ~label:"S2"
      (Fexpr.ref_ "A" [ v "I"; v "J" ])
      (a [ v "I"; v "J" ] /. a [ v "J"; v "J" ])
  in
  let s3 =
    Ast.stmt ~id:2 ~label:"S3"
      (Fexpr.ref_ "A" [ v "L"; v "K" ])
      (a [ v "L"; v "K" ] -. (a [ v "L"; v "J" ] *. a [ v "K"; v "J" ]))
  in
  { Ast.p_name = "cholesky_right";
    params = [ "N" ];
    arrays = [ square "A" ];
    body =
      [ Ast.loop "J" one n_
          [ s1;
            Ast.loop "I" (v "J" +! one) n_ [ s2 ];
            Ast.loop "L" (v "J" +! one) n_
              [ Ast.loop "K" (v "J" +! one) (v "L") [ s3 ] ] ] ] }

let cholesky_left () =
  let a idx = rd "A" idx in
  let s3 =
    Ast.stmt ~id:0 ~label:"S3"
      (Fexpr.ref_ "A" [ v "L"; v "J" ])
      (a [ v "L"; v "J" ] -. (a [ v "L"; v "K" ] *. a [ v "J"; v "K" ]))
  in
  let s1 =
    Ast.stmt ~id:1 ~label:"S1"
      (Fexpr.ref_ "A" [ v "J"; v "J" ])
      (Fexpr.sqrt_ (a [ v "J"; v "J" ]))
  in
  let s2 =
    Ast.stmt ~id:2 ~label:"S2"
      (Fexpr.ref_ "A" [ v "I"; v "J" ])
      (a [ v "I"; v "J" ] /. a [ v "J"; v "J" ])
  in
  { Ast.p_name = "cholesky_left";
    params = [ "N" ];
    arrays = [ square "A" ];
    body =
      [ Ast.loop "J" one n_
          [ Ast.loop "L" (v "J") n_
              [ Ast.loop "K" one (v "J" -! one) [ s3 ] ];
            s1;
            Ast.loop "I" (v "J" +! one) n_ [ s2 ] ] ] }

let cholesky_banded () =
  (* The band guard [I - J <= BW] keeps every executed instance inside the
     band; for S3 the guard [L - J <= BW] implies [L - K <= BW] since
     K > J. *)
  let a idx = rd "A" idx in
  let bw = v "BW" in
  let s1 =
    Ast.stmt ~id:0 ~label:"S1"
      (Fexpr.ref_ "A" [ v "J"; v "J" ])
      (Fexpr.sqrt_ (a [ v "J"; v "J" ]))
  in
  let s2 =
    Ast.stmt ~id:1 ~label:"S2"
      (Fexpr.ref_ "A" [ v "I"; v "J" ])
      (a [ v "I"; v "J" ] /. a [ v "J"; v "J" ])
  in
  let s3 =
    Ast.stmt ~id:2 ~label:"S3"
      (Fexpr.ref_ "A" [ v "L"; v "K" ])
      (a [ v "L"; v "K" ] -. (a [ v "L"; v "J" ] *. a [ v "K"; v "J" ]))
  in
  { Ast.p_name = "cholesky_banded";
    params = [ "N"; "BW" ];
    arrays = [ square "A" ];
    body =
      [ Ast.loop "J" one n_
          [ s1;
            Ast.loop "I" (v "J" +! one) n_
              [ Ast.If ([ Ast.guard (v "I" -! v "J") Ast.Le bw ], [ s2 ]) ];
            Ast.loop "L" (v "J" +! one) n_
              [ Ast.If
                  ( [ Ast.guard (v "L" -! v "J") Ast.Le bw ],
                    [ Ast.loop "K" (v "J" +! one) (v "L") [ s3 ] ] ) ] ] ] }

let adi () =
  let s1 =
    Ast.stmt ~id:0 ~label:"S1"
      (Fexpr.ref_ "X" [ v "i"; v "k" ])
      (rd "X" [ v "i"; v "k" ]
      -. (rd "X" [ v "i" -! one; v "k" ] *. rd "A" [ v "i"; v "k" ]
          /. rd "B" [ v "i" -! one; v "k" ]))
  in
  let s2 =
    Ast.stmt ~id:1 ~label:"S2"
      (Fexpr.ref_ "B" [ v "i"; v "k" ])
      (rd "B" [ v "i"; v "k" ]
      -. (rd "A" [ v "i"; v "k" ] *. rd "A" [ v "i"; v "k" ]
          /. rd "B" [ v "i" -! one; v "k" ]))
  in
  { Ast.p_name = "adi";
    params = [ "N" ];
    arrays = [ square "X"; square "A"; square "B" ];
    body =
      [ Ast.loop "i" (c 2) n_
          [ Ast.loop "k" one n_ [ s1 ]; Ast.loop "k" one n_ [ s2 ] ] ] }

let gmtry () =
  let a idx = rd "A" idx in
  let s1 =
    Ast.stmt ~id:0 ~label:"S1"
      (Fexpr.ref_ "A" [ v "i"; v "k" ])
      (a [ v "i"; v "k" ] /. a [ v "k"; v "k" ])
  in
  let s2 =
    Ast.stmt ~id:1 ~label:"S2"
      (Fexpr.ref_ "A" [ v "i"; v "j" ])
      (a [ v "i"; v "j" ] -. (a [ v "i"; v "k" ] *. a [ v "k"; v "j" ]))
  in
  { Ast.p_name = "gmtry";
    params = [ "N" ];
    arrays = [ square "A" ];
    body =
      [ Ast.loop "k" one n_
          [ Ast.loop "i" (v "k" +! one) n_ [ s1 ];
            Ast.loop "i" (v "k" +! one) n_
              [ Ast.loop "j" (v "k" +! one) n_ [ s2 ] ] ] ] }

let qr () =
  (* Householder-style pointwise QR with the reflector normalized in place:
     tau(k) accumulates the column norm, the column is scaled to a unit
     reflector, then each later column j gets w(j) = v^T A(:,j) and the
     rank-1 update A(:,j) -= 2 v w(j).  Scalars are expanded into tau/w so
     every reference is affine (see DESIGN.md). *)
  let a idx = rd "A" idx in
  let s0 =
    Ast.stmt ~id:0 ~label:"S0" (Fexpr.ref_ "tau" [ v "k" ]) (Fexpr.f 0.0)
  in
  let s1 =
    Ast.stmt ~id:1 ~label:"S1"
      (Fexpr.ref_ "tau" [ v "k" ])
      (rd "tau" [ v "k" ] +. (a [ v "i"; v "k" ] *. a [ v "i"; v "k" ]))
  in
  let s2 =
    Ast.stmt ~id:2 ~label:"S2"
      (Fexpr.ref_ "tau" [ v "k" ])
      (Fexpr.sqrt_ (rd "tau" [ v "k" ]))
  in
  let s3 =
    Ast.stmt ~id:3 ~label:"S3"
      (Fexpr.ref_ "A" [ v "i"; v "k" ])
      (a [ v "i"; v "k" ] /. rd "tau" [ v "k" ])
  in
  let s4 = Ast.stmt ~id:4 ~label:"S4" (Fexpr.ref_ "w" [ v "j" ]) (Fexpr.f 0.0) in
  let s5 =
    Ast.stmt ~id:5 ~label:"S5"
      (Fexpr.ref_ "w" [ v "j" ])
      (rd "w" [ v "j" ] +. (a [ v "i"; v "k" ] *. a [ v "i"; v "j" ]))
  in
  let s6 =
    Ast.stmt ~id:6 ~label:"S6"
      (Fexpr.ref_ "A" [ v "i"; v "j" ])
      (a [ v "i"; v "j" ] -. (Fexpr.f 2.0 *. a [ v "i"; v "k" ] *. rd "w" [ v "j" ]))
  in
  { Ast.p_name = "qr";
    params = [ "N" ];
    arrays = [ square "A"; vector "tau"; vector "w" ];
    body =
      [ Ast.loop "k" one n_
          [ s0;
            Ast.loop "i" (v "k") n_ [ s1 ];
            s2;
            Ast.loop "i" (v "k") n_ [ s3 ];
            Ast.loop "j" (v "k" +! one) n_
              [ s4;
                Ast.loop "i" (v "k") n_ [ s5 ];
                Ast.loop "i" (v "k") n_ [ s6 ] ] ] ] }

let syrk () =
  let update =
    Ast.stmt ~id:0 ~label:"S1"
      (Fexpr.ref_ "C" [ v "I"; v "J" ])
      (rd "C" [ v "I"; v "J" ]
      +. (rd "A" [ v "I"; v "K" ] *. rd "A" [ v "J"; v "K" ]))
  in
  { Ast.p_name = "syrk";
    params = [ "N" ];
    arrays = [ square "C"; square "A" ];
    body =
      [ Ast.loop "I" one n_
          [ Ast.loop "J" one (v "I") [ Ast.loop "K" one n_ [ update ] ] ] ] }

let trisolve_backward () =
  (* Back substitution for an upper-triangular system U x = b, column
     oriented; columns are processed right to left, so the natural blocked
     traversal is *reversed* (Section 8: "traversing the blocks bottom to
     top or right to left will be legal").  The reversal is affine:
     column j = N+1-jj. *)
  let s1 =
    Ast.stmt ~id:0 ~label:"S1"
      (Fexpr.ref_ "X" [ n_ +! one -! v "jj" ])
      (rd "B" [ n_ +! one -! v "jj" ]
      /. rd "U" [ n_ +! one -! v "jj"; n_ +! one -! v "jj" ])
  in
  let s2 =
    Ast.stmt ~id:1 ~label:"S2"
      (Fexpr.ref_ "B" [ v "i" ])
      (rd "B" [ v "i" ]
      -. (rd "U" [ v "i"; n_ +! one -! v "jj" ] *. rd "X" [ n_ +! one -! v "jj" ]))
  in
  { Ast.p_name = "trisolve_backward";
    params = [ "N" ];
    arrays = [ square "U"; vector "X"; vector "B" ];
    body =
      [ Ast.loop "jj" one n_
          [ s1; Ast.loop "i" one (n_ -! v "jj") [ s2 ] ] ] }

let all () =
  [ ("matmul", matmul ());
    ("cholesky_right", cholesky_right ());
    ("cholesky_left", cholesky_left ());
    ("cholesky_banded", cholesky_banded ());
    ("adi", adi ());
    ("gmtry", gmtry ());
    ("qr", qr ());
    ("syrk", syrk ());
    ("trisolve_backward", trisolve_backward ()) ]
