(** IR builders for the paper's running examples and benchmark kernels.

    All programs use the square parameter [N] (and [BW] for the banded
    kernel) and 1-based Fortran-style loops, matching Figure 1 and
    Section 7 of the paper. *)

module Ast = Loopir.Ast

type order = I_J_K | I_K_J | J_I_K | J_K_I | K_I_J | K_J_I

val matmul : ?order:order -> unit -> Ast.program
(** Figure 1(i): [C(I,J) += A(I,K) * B(K,J)], loop order selectable (all six
    permutations are legal, as the paper notes). *)

val cholesky_right : unit -> Ast.program
(** Figure 1(ii): right-looking Cholesky; statements S1, S2, S3. *)

val cholesky_left : unit -> Ast.program
(** Figure 1(iii): left-looking Cholesky; statements S3, S1, S2. *)

val cholesky_banded : unit -> Ast.program
(** Right-looking Cholesky restricted to the band [0 <= i-j <= BW]
    (Section 7, Figure 15): the point code whose instances touch only data
    within the band. *)

val adi : unit -> Ast.program
(** Figure 14(i): the ADI kernel of McKinley et al, two inner k-loops over
    X and B sweeps. *)

val gmtry : unit -> Ast.program
(** The Gmtry kernel of the Dnasa7 SPEC benchmark: Gaussian elimination
    across rows without pivoting (Section 7, Figure 13(i)). *)

val qr : unit -> Ast.program
(** Householder-style QR factorization in pointwise form with scalars
    expanded into [tau] and [w] arrays (Section 7, Figure 12).  Reflectors
    are stored in the strict lower part of [A], as in LAPACK. *)

val syrk : unit -> Ast.program
(** Triangular matrix update [C(I,J) += A(I,K)*A(J,K)] for J <= I: a
    perfectly nested but triangular kernel, used in tests and ablations. *)

val trisolve_backward : unit -> Ast.program
(** Column-oriented back substitution for an upper-triangular system
    [U x = b]; columns are visited right to left ([j = N+1-jj]), the
    Section 8 example of a kernel whose blocked traversal must be
    reversed. *)

val all : unit -> (string * Ast.program) list
(** Every kernel, keyed by name. *)
