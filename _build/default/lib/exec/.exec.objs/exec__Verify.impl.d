lib/exec/verify.ml: Interp Store
