lib/exec/verify.mli: Interp Loopir Store
