lib/exec/store.ml: Array Float Hashtbl List Loopir Option Printf
