lib/exec/store.mli: Loopir
