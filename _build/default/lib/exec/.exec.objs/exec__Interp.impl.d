lib/exec/interp.ml: Array Hashtbl List Loopir Store
