lib/exec/interp.mli: Loopir Store
