module Ast = Loopir.Ast
module E = Loopir.Expr

type layout =
  | Col_major
  | Row_major
  | Banded of int

type arr = {
  name : string;
  extents : int array;
  layout : layout;
  data : float array;
  base : int;
}

type t = { tbl : (string, arr) Hashtbl.t; order : string list }

let size_of extents layout =
  match layout with
  | Col_major | Row_major -> Array.fold_left ( * ) 1 extents
  | Banded bw ->
    if Array.length extents <> 2 then
      invalid_arg "Store: banded layout needs a rank-2 array";
    (bw + 1) * extents.(1)

let offset arr idx =
  if Array.length idx <> Array.length arr.extents then
    invalid_arg ("Store.offset: arity mismatch on " ^ arr.name);
  (match arr.layout with
   | Banded _ -> ()
   | _ ->
     Array.iteri
       (fun d i ->
         if i < 1 || i > arr.extents.(d) then
           invalid_arg
             (Printf.sprintf "Store.offset: %s index %d out of [1..%d]"
                arr.name i arr.extents.(d)))
       idx);
  match arr.layout with
  | Col_major ->
    let off = ref 0 and stride = ref 1 in
    for d = 0 to Array.length idx - 1 do
      off := !off + ((idx.(d) - 1) * !stride);
      stride := !stride * arr.extents.(d)
    done;
    !off
  | Row_major ->
    let off = ref 0 and stride = ref 1 in
    for d = Array.length idx - 1 downto 0 do
      off := !off + ((idx.(d) - 1) * !stride);
      stride := !stride * arr.extents.(d)
    done;
    !off
  | Banded bw ->
    let i = idx.(0) and j = idx.(1) in
    if i - j < 0 || i - j > bw || j < 1 || j > arr.extents.(1) then
      invalid_arg
        (Printf.sprintf "Store.offset: %s(%d,%d) outside band %d" arr.name i j
           bw);
    i - j + ((j - 1) * (bw + 1))

let create ?(layouts = []) (prog : Ast.program) ~params ~init =
  let env name =
    match List.assoc_opt name params with
    | Some v -> v
    | None -> invalid_arg ("Store.create: unbound parameter " ^ name)
  in
  let tbl = Hashtbl.create 8 in
  let base = ref 0 in
  let order = ref [] in
  List.iter
    (fun (d : Ast.array_decl) ->
      let extents =
        Array.of_list (List.map (fun e -> E.eval env e) d.extents)
      in
      let layout =
        Option.value ~default:Col_major (List.assoc_opt d.a_name layouts)
      in
      let size = size_of extents layout in
      let data = Array.make size 0.0 in
      let arr = { name = d.a_name; extents; layout; data; base = !base } in
      (* initialize through the layout so banded stores only hold the band *)
      (match layout with
       | Banded bw ->
         for j = 1 to extents.(1) do
           for i = j to min extents.(0) (j + bw) do
             data.(offset arr [| i; j |]) <- init d.a_name [| i; j |]
           done
         done
       | Col_major | Row_major ->
         let rec fill idx d' =
           if d' < 0 then data.(offset arr idx) <- init d.a_name idx
           else
             for v = 1 to extents.(d') do
               idx.(d') <- v;
               fill idx (d' - 1)
             done
         in
         if Array.length extents = 0 then ()
         else fill (Array.make (Array.length extents) 1) (Array.length extents - 1));
      base := !base + size;
      order := d.a_name :: !order;
      Hashtbl.add tbl d.a_name arr)
    prog.arrays;
  { tbl; order = List.rev !order }

let find t name =
  match Hashtbl.find_opt t.tbl name with
  | Some a -> a
  | None -> invalid_arg ("Store.find: unknown array " ^ name)

let get t name idx =
  let a = find t name in
  a.data.(offset a idx)

let set t name idx v =
  let a = find t name in
  a.data.(offset a idx) <- v

let copy t =
  let tbl = Hashtbl.create 8 in
  Hashtbl.iter
    (fun k a -> Hashtbl.add tbl k { a with data = Array.copy a.data })
    t.tbl;
  { t with tbl }

let arrays t = List.map (fun n -> find t n) t.order

let max_abs_diff a b =
  List.fold_left2
    (fun acc (x : arr) (y : arr) ->
      if Array.length x.data <> Array.length y.data then
        invalid_arg "Store.max_abs_diff: shape mismatch";
      let m = ref acc in
      Array.iteri
        (fun i v ->
          let d = Float.abs (v -. y.data.(i)) in
          if d > !m then m := d)
        x.data;
      !m)
    0.0 (arrays a) (arrays b)

let total_elements t =
  List.fold_left (fun acc a -> acc + Array.length a.data) 0 (arrays t)
