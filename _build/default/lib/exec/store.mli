(** Array storage for the interpreter.

    Arrays are flat [float array]s with a pluggable layout.  The flat offset
    doubles as the element address for the memory-hierarchy simulator, so
    choosing a layout is exactly the paper's "physical data reshaping"
    (Section 5.3, banded Cholesky in Section 7). *)

type layout =
  | Col_major  (** Fortran order, the paper's baseline assumption *)
  | Row_major
  | Banded of int
      (** [Banded bw]: rank-2 lower-band storage; element (i,j) with
          [0 <= i-j <= bw] lives at [(i-j) + (j-1)*(bw+1)], i.e. LAPACK
          band storage, column by column. *)

type arr = {
  name : string;
  extents : int array;
  layout : layout;
  data : float array;
  base : int;  (** element address of the first element, for tracing *)
}

type t

val create :
  ?layouts:(string * layout) list ->
  Loopir.Ast.program ->
  params:(string * int) list ->
  init:(string -> int array -> float) ->
  t
(** Evaluates array extents under [params], allocates and initializes.
    Arrays are placed one after another in a single address space. *)

val find : t -> string -> arr
val offset : arr -> int array -> int
(** Flat offset of 1-based indices. @raise Invalid_argument out of range
    (including outside the band for banded layout). *)

val get : t -> string -> int array -> float
val set : t -> string -> int array -> float -> unit
val copy : t -> t

val max_abs_diff : t -> t -> float
(** Largest elementwise difference across all arrays (both stores must have
    the same shape). *)

val total_elements : t -> int
val arrays : t -> arr list
