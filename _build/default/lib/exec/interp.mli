(** A compiled interpreter for the loop IR.

    Programs are compiled to closures over an integer frame (one slot per
    variable name), so running blocked code on realistic sizes is cheap
    enough to drive the memory-hierarchy simulator.  Every array element
    access can be reported to a trace callback with its element address;
    reads are reported left-to-right, then the write — the access order the
    paper's machine would perform. *)

type trace = write:bool -> addr:int -> unit

val run :
  ?trace:trace ->
  Store.t ->
  Loopir.Ast.program ->
  params:(string * int) list ->
  int
(** Executes the program in place on the store; returns the number of
    floating-point operations performed (adds, subs, muls, divs, sqrts,
    negations). *)
