module B = Bigint

type t = B.t array array

let of_int_rows rows =
  let m = Array.of_list (List.map (fun r -> Array.of_list (List.map B.of_int r)) rows) in
  (match Array.length m with
   | 0 -> ()
   | _ ->
     let c = Array.length m.(0) in
     Array.iter
       (fun r -> if Array.length r <> c then invalid_arg "Mat: ragged rows")
       m);
  m

let rows (m : t) = Array.length m
let cols (m : t) = if rows m = 0 then 0 else Array.length m.(0)
let row (m : t) i = Array.copy m.(i)
let transpose m = Array.init (cols m) (fun j -> Array.init (rows m) (fun i -> m.(i).(j)))

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then B.one else B.zero))

let mul a b =
  if cols a <> rows b then invalid_arg "Mat.mul: dimension mismatch";
  let bt = transpose b in
  Array.init (rows a) (fun i -> Array.init (cols b) (fun j -> Vec.dot a.(i) bt.(j)))

let apply m v = Array.init (rows m) (fun i -> Vec.dot m.(i) v)

let equal a b =
  rows a = rows b && cols a = cols b
  && Array.for_all2 (fun r s -> Array.for_all2 B.equal r s) a b

(* Fraction-free elimination.  Rows are rescaled by their content after each
   combination step, which keeps coefficient growth polynomial for the small
   matrices (access matrices, cutting-plane matrices) we handle. *)
let rank m =
  let m = Array.map Array.copy m in
  let nr = rows m and nc = cols m in
  let rank = ref 0 in
  let pivot_row = ref 0 in
  for col = 0 to nc - 1 do
    if !pivot_row < nr then begin
      (* Find a row with nonzero entry in this column. *)
      let piv = ref (-1) in
      for i = !pivot_row to nr - 1 do
        if !piv < 0 && not (B.is_zero m.(i).(col)) then piv := i
      done;
      if !piv >= 0 then begin
        let tmp = m.(!pivot_row) in
        m.(!pivot_row) <- m.(!piv);
        m.(!piv) <- tmp;
        let p = m.(!pivot_row).(col) in
        for i = !pivot_row + 1 to nr - 1 do
          if not (B.is_zero m.(i).(col)) then begin
            let f = m.(i).(col) in
            let combined =
              Array.init nc (fun j ->
                  B.sub (B.mul p m.(i).(j)) (B.mul f m.(!pivot_row).(j)))
            in
            let g = Vec.content combined in
            m.(i) <-
              (if B.is_zero g || B.equal g B.one then combined
               else Vec.divexact combined g)
          end
        done;
        incr pivot_row;
        incr rank
      end
    end
  done;
  !rank

let in_row_span m v =
  let extended = Array.append m [| Array.copy v |] in
  if rows m = 0 then Vec.is_zero v else rank extended = rank m

let rows_span m f = Array.for_all (fun r -> in_row_span m r) f

let pp fmt m =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Vec.pp)
    (Array.to_list m)
