(** Dense vectors over {!Bigint}. *)

type t = Bigint.t array

val make : int -> t
(** Zero vector of the given length. *)

val of_ints : int list -> t
val dim : t -> int
val get : t -> int -> Bigint.t
val set : t -> int -> Bigint.t -> unit
val copy : t -> t
val unit : int -> int -> t
(** [unit n i] is the [i]-th standard basis vector of dimension [n]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : Bigint.t -> t -> t
val dot : t -> t -> Bigint.t

val content : t -> Bigint.t
(** Gcd of all entries (non-negative; zero for the zero vector). *)

val divexact : t -> Bigint.t -> t
val pp : Format.formatter -> t -> unit
