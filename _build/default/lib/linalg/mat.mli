(** Dense matrices over {!Bigint}, with the exact operations the shackle
    layer needs: rank (for Theorem 2's row-span test) and rational solving. *)

type t = Bigint.t array array
(** Row-major; possibly zero rows. All rows must share a length. *)

val of_int_rows : int list list -> t
val rows : t -> int
val cols : t -> int
(** [cols] of a 0-row matrix is 0. *)

val row : t -> int -> Vec.t
val transpose : t -> t
val identity : int -> t
val mul : t -> t -> t
val apply : t -> Vec.t -> Vec.t
val equal : t -> t -> bool

val rank : t -> int
(** Rank over the rationals, computed by fraction-free Gaussian
    elimination. *)

val in_row_span : t -> Vec.t -> bool
(** [in_row_span m v] is true when [v] is a rational linear combination of
    the rows of [m].  This is the test of Theorem 2 in the paper: a
    reference with access matrix row [v] is constrained by shackled
    references with access matrix [m] iff [v] lies in the row span. *)

val rows_span : t -> t -> bool
(** [rows_span m f] is true when every row of [f] is in the row span of
    [m]. *)

val pp : Format.formatter -> t -> unit
