module B = Bigint

type t = B.t array

let make n = Array.make n B.zero
let of_ints l = Array.of_list (List.map B.of_int l)
let dim = Array.length
let get (v : t) i = v.(i)
let set (v : t) i x = v.(i) <- x
let copy = Array.copy

let unit n i =
  let v = make n in
  v.(i) <- B.one;
  v

let is_zero v = Array.for_all B.is_zero v
let equal a b = dim a = dim b && Array.for_all2 B.equal a b
let neg v = Array.map B.neg v

let map2 f a b =
  if dim a <> dim b then invalid_arg "Vec: dimension mismatch";
  Array.init (dim a) (fun i -> f a.(i) b.(i))

let add = map2 B.add
let sub = map2 B.sub
let scale k v = Array.map (B.mul k) v

let dot a b =
  if dim a <> dim b then invalid_arg "Vec.dot: dimension mismatch";
  let acc = ref B.zero in
  for i = 0 to dim a - 1 do
    acc := B.add !acc (B.mul a.(i) b.(i))
  done;
  !acc

let content v = Array.fold_left (fun g x -> B.gcd g x) B.zero v
let divexact v k = Array.map (fun x -> B.divexact x k) v

let pp fmt v =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       B.pp)
    (Array.to_list v)
