lib/linalg/mat.ml: Array Bigint Format List Vec
