lib/linalg/vec.ml: Array Bigint Format List
