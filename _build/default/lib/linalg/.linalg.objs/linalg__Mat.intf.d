lib/linalg/mat.mli: Bigint Format Vec
