(** Statement domains as polyhedral systems.

    The space of a statement is [params ++ loop variables (outer to inner)].
    The domain contains the loop-bound constraints and the enclosing guards.
    Only analysable (affine) programs are accepted; blocked code produced by
    the code generator is executed, never re-analysed. *)

exception Not_affine of string

type space = {
  names : string array;   (** params first, then loop vars outer-to-inner *)
  param_count : int;
}

val space_of : Ast.program -> Ast.context -> space
val depth : space -> int
(** Number of loop variables. *)

val var_index : space -> string -> int

val domain_of : Ast.program -> Ast.context -> Polyhedra.System.t
(** @raise Not_affine on non-affine bounds or guards. *)

val guard_constraints :
  space -> Ast.guard list -> Polyhedra.Constr.t list
(** @raise Not_affine *)

val access : space -> Fexpr.ref_ -> Polyhedra.Affine.t list
(** Affine forms of each subscript, over the space.
    @raise Not_affine on non-affine subscripts. *)

val access_matrix : Ast.program -> Ast.context -> Fexpr.ref_ -> Linalg.Mat.t
(** The paper's data access matrix F (Theorem 2): rows are subscripts,
    columns are the enclosing loop variables; parameters and constants are
    dropped. *)

val bound_constraints :
  space -> string -> lo:Expr.t -> hi:Expr.t -> Polyhedra.Constr.t list
(** Constraints [lo <= v <= hi], decomposing min/max bounds.
    @raise Not_affine on divisions. *)
