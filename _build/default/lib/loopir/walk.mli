(** Enumeration of dynamic statement instances in program execution order.
    Used by the shackle reference semantics (the paper's definition of the
    transformed execution order) and by tests; the float interpreter lives
    in [lib/exec]. *)

type env = (string * int) list
(** Parameter and loop-variable bindings, innermost first. *)

val lookup : env -> string -> int

val iter_instances :
  Ast.program -> params:(string * int) list -> f:(Ast.stmt -> env -> unit) -> unit
(** Calls [f] on every executed statement instance, in program order.
    Guards are honoured. *)

val instances :
  Ast.program -> params:(string * int) list -> (Ast.stmt * env) list

val count_instances : Ast.program -> params:(string * int) list -> int
