(** A parser for the concrete syntax the pretty-printer emits, so programs
    round-trip through text and the CLI can read kernels from files.

    The grammar is line oriented:

    {v
    ! <name> (params: N, M)
    real A(N, N)
    do I = <bound>, <bound>
      if (<affine> <rel> <affine> and ...) then
        S1: A(I, J) = A(I, J) + B(I, J) * 2.0
      end if
    end do
    v}

    Bounds allow [min(...)], [max(...)], [floor((e)/d)] and [ceil((e)/d)];
    subscripts and guards must be linear. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val program : string -> Ast.program
(** @raise Parse_error *)

val roundtrip : Ast.program -> Ast.program
(** [program (Ast.program_to_string p)] — used by tests. *)
