type env = (string * int) list

let lookup env name =
  match List.assoc_opt name env with
  | Some v -> v
  | None -> invalid_arg ("Walk.lookup: unbound variable " ^ name)

let iter_instances (prog : Ast.program) ~params ~f =
  let rec go env node =
    let get name = lookup env name in
    match node with
    | Ast.Stmt s -> f s env
    | Ast.If (gs, body) ->
      if List.for_all (Ast.eval_guard get) gs then List.iter (go env) body
    | Ast.Loop l ->
      let lo = Expr.eval get l.lo and hi = Expr.eval get l.hi in
      for v = lo to hi do
        List.iter (go ((l.var, v) :: env)) l.body
      done
  in
  List.iter (go params) prog.body

let instances prog ~params =
  let acc = ref [] in
  iter_instances prog ~params ~f:(fun s env -> acc := (s, env) :: !acc);
  List.rev !acc

let count_instances prog ~params =
  let n = ref 0 in
  iter_instances prog ~params ~f:(fun _ _ -> incr n);
  !n
