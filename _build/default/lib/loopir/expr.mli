(** Integer index expressions.

    Array subscripts in analysable programs must be affine (no division,
    min or max); generated blocked code additionally uses floor/ceiling
    division and min/max in loop bounds, exactly as in the paper's figures
    (e.g. [do It = (t1-1)*25 + 1, min(t1*25, N)]). *)

type t =
  | Var of string
  | Const of int
  | Add of t * t
  | Sub of t * t
  | Mul of int * t
  | FloorDiv of t * int  (** divisor > 0 *)
  | CeilDiv of t * int   (** divisor > 0 *)
  | Max of t * t
  | Min of t * t

val var : string -> t
val int : int -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : int -> t -> t
val max_ : t -> t -> t
val min_ : t -> t -> t
val max_list : t list -> t
(** @raise Invalid_argument on the empty list *)

val min_list : t list -> t

val eval : (string -> int) -> t -> int
(** @raise Division_by_zero on division by a non-positive constant. *)

val simplify : t -> t
(** Constant folding and neutral-element elimination; keeps the expression
    readable in pretty-printed code. *)

val to_affine : lookup:(string -> int option) -> dim:int -> t -> Polyhedra.Affine.t option
(** Affine extraction for analysis: [lookup] maps variable names to indices
    in the target space.  Returns [None] for non-affine expressions
    (div/min/max) or unknown variables. *)

val of_affine : names:string array -> Polyhedra.Affine.t -> t
(** Inverse embedding, used by the code generator. *)

val vars : t -> string list
val subst_var : t -> string -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
